(* Command-line front end: equivalence checking, distribution extraction,
   transformation, and benchmark-circuit generation over OpenQASM files. *)

open Cmdliner

let load path =
  try Circuit.Qasm3_parser.parse_any_file path with
  | Circuit.Qasm_parser.Parse_error (msg, line) ->
    Fmt.epr "%s:%d: %s@." path line msg;
    exit 2
  | Sys_error msg ->
    Fmt.epr "%s@." msg;
    exit 2

let strategy_conv =
  let parse s =
    match Qcec.Strategy.of_string s with
    | Ok s -> Ok s
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Qcec.Strategy.name s))

(* -- application-scheme selection ------------------------------------- *)

(* [--scheme] overrides [--strategy]: either a fixed strategy by name, or
   [auto] — run the analysis passes over both circuits and let the cost
   profiles pick between proportional and lookahead alternation. *)
type scheme_opt =
  | Scheme_auto
  | Scheme_fixed of Qcec.Strategy.t

let scheme_conv =
  let parse s =
    if s = "auto" then Ok Scheme_auto
    else
      match Qcec.Strategy.of_string s with
      | Ok st -> Ok (Scheme_fixed st)
      | Error e -> Error (`Msg e)
  in
  Arg.conv
    ( parse
    , fun ppf -> function
        | Scheme_auto -> Fmt.string ppf "auto"
        | Scheme_fixed s -> Fmt.string ppf (Qcec.Strategy.name s) )

let scheme_arg =
  Arg.(
    value
    & opt (some scheme_conv) None
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Application scheme: any strategy name, or $(b,auto) to run the \
           static analysis passes over both circuits and let their cost \
           profiles pick between proportional and lookahead alternation.  \
           Overrides $(b,--strategy)")

let resolve_scheme ~strategy ~scheme a b =
  match scheme with
  | None -> strategy
  | Some (Scheme_fixed s) -> s
  | Some Scheme_auto ->
    (match
       Obs.Span.with_ "analysis.route" (fun () ->
         Analysis.Classify.route_application (Analysis.Cost.profile a)
           (Analysis.Cost.profile b))
     with
     | Analysis.Cost.Proportional_order -> Qcec.Strategy.Proportional
     | Analysis.Cost.Lookahead_order -> Qcec.Strategy.Lookahead)

(* -- portfolio racing -------------------------------------------------- *)

(* [--strategy portfolio] races a composed candidate field (first
   definitive verdict wins) instead of running a single decider. *)
type strat_opt =
  | Strat of Qcec.Strategy.t
  | Strat_portfolio

let strat_opt_conv =
  let parse s =
    if s = "portfolio" then Ok Strat_portfolio
    else
      match Qcec.Strategy.of_string s with
      | Ok st -> Ok (Strat st)
      | Error e -> Error (`Msg e)
  in
  Arg.conv
    ( parse
    , fun ppf -> function
        | Strat s -> Fmt.string ppf (Qcec.Strategy.name s)
        | Strat_portfolio -> Fmt.string ppf "portfolio" )

let portfolio_width_arg =
  Arg.(
    value
    & opt int 4
    & info [ "portfolio-width" ] ~docv:"K"
        ~doc:
          "Candidate deciders raced by $(b,--strategy portfolio): the \
           cost-model's solo pick leads a field of alternation orders and \
           simulative stimuli classes; the first definitive verdict wins \
           and the losers are cancelled at their next DD safepoint")

(* Compose the race field: the most dynamic classification of the pair
   gates the candidate set (simulative candidates cannot decide dynamic
   circuits), the cost profiles order it. *)
let portfolio_candidates ~width ~backend a b =
  let kind =
    let k c = (Analysis.classify c).Analysis.Classify.kind in
    let rank = function
      | Analysis.Classify.Unitary -> 0
      | Analysis.Classify.Measure_terminal -> 1
      | Analysis.Classify.Dynamic -> 2
    in
    if rank (k a) >= rank (k b) then k a else k b
  in
  Obs.Span.with_ "analysis.compose_portfolio" (fun () ->
    Analysis.Classify.compose_portfolio ~width kind (Analysis.Cost.profile a)
      (Analysis.Cost.profile b))
  |> List.map (fun c -> (Qcec.Strategy.of_candidate c, backend))

let pp_portfolio_report ppf (r : Qcec.Verify.portfolio_result) =
  Fmt.pf ppf "@[<v>portfolio race: %d candidates, winner %s (#%d%s) in %.4fs"
    (List.length r.Qcec.Verify.candidates)
    (Qcec.Strategy.name r.Qcec.Verify.winner_strategy)
    r.Qcec.Verify.winner_index
    (if r.Qcec.Verify.winner_definitive then ""
     else ", probabilistic: all shots agreed but no exact decider finished")
    r.Qcec.Verify.t_wall;
  List.iteri
    (fun i (c : Qcec.Verify.candidate_report) ->
      Fmt.pf ppf "@,  [%d] %-26s %-16s %.4fs" i
        (Qcec.Strategy.name c.Qcec.Verify.c_strategy)
        (Fmt.str "%a" Qcec.Verify.pp_candidate_outcome c.Qcec.Verify.c_outcome)
        c.Qcec.Verify.c_wall)
    r.Qcec.Verify.candidates;
  Fmt.pf ppf "@]"

let portfolio_json (r : Qcec.Verify.portfolio_result) =
  Obs.Json.Obj
    [ ("width", Obs.Json.Int (List.length r.Qcec.Verify.candidates))
    ; ("winner_index", Obs.Json.Int r.Qcec.Verify.winner_index)
    ; ( "winner_strategy"
      , Obs.Json.String (Qcec.Strategy.name r.Qcec.Verify.winner_strategy) )
    ; ("definitive", Obs.Json.Bool r.Qcec.Verify.winner_definitive)
    ; ("cancelled", Obs.Json.Int r.Qcec.Verify.races_cancelled)
    ; ("t_wall", Obs.Json.Float r.Qcec.Verify.t_wall)
    ; ( "candidates"
      , Obs.Json.List
          (List.map
             (fun (c : Qcec.Verify.candidate_report) ->
               Obs.Json.Obj
                 [ ( "strategy"
                   , Obs.Json.String (Qcec.Strategy.name c.Qcec.Verify.c_strategy) )
                 ; ("backend", Obs.Json.String c.Qcec.Verify.c_backend)
                 ; ( "outcome"
                   , Obs.Json.String
                       (Fmt.str "%a" Qcec.Verify.pp_candidate_outcome
                          c.Qcec.Verify.c_outcome) )
                 ; ("wall_seconds", Obs.Json.Float c.Qcec.Verify.c_wall)
                 ])
             r.Qcec.Verify.candidates) )
    ]

let perm_conv =
  let parse s =
    try
      Ok (String.split_on_char ',' s |> List.map int_of_string |> Array.of_list)
    with Failure _ -> Error (`Msg "expected a comma-separated permutation, e.g. 0,3,1,2")
  in
  Arg.conv (parse, fun ppf p ->
    Fmt.pf ppf "%a" Fmt.(array ~sep:(any ",") int) p)

(* -- DD memory management --------------------------------------------- *)

let cache_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:
          "Bound every DD operation cache to $(docv) entries (second-chance \
           eviction; 0 disables caching, default unbounded)")

let gc_threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "gc-threshold" ] ~docv:"N"
        ~doc:
          "Compact the DD package automatically once its unique tables grow \
           by $(docv) nodes since the last sweep (default: no auto-GC)")

let no_kernels_arg =
  Arg.(
    value
    & flag
    & info [ "no-kernels" ]
        ~doc:
          "Apply gates via the generic build-gate-DD-then-multiply path \
           instead of the direct gate-application kernels (A/B escape \
           hatch; verdicts are bit-identical either way)")

let backend_arg =
  Arg.(
    value
    & opt string Dd.Registry.default
    & info [ "backend" ] ~docv:"NAME"
        ~doc:
          "DD backend: $(b,classic) (hash-consed node records, the \
           default) or $(b,packed) (packed int-array nodes).  Both build \
           isomorphic diagrams and produce identical verdicts; they \
           differ only in memory layout and speed")

(* exit code 2 = usage error, consistent with the other input failures *)
let resolve_backend name =
  match Dd.Registry.find name with
  | Some b -> b
  | None ->
    Fmt.epr "qcec: unknown backend %S (available: %s)@." name
      (String.concat ", " (Dd.Registry.names ()));
    exit 2

let dd_config_of cache_cap gc_threshold : Dd.Pkg.config option =
  match (cache_cap, gc_threshold) with
  | None, None -> None
  | _ ->
    let caps =
      match cache_cap with
      | None -> Dd.Pkg.caps_unbounded
      | Some n -> Dd.Pkg.caps_uniform n
    in
    Some { Dd.Pkg.caps; gc_threshold }

(* exit code 2 = usage/input error, matching the parser failures above *)
let report_non_unitary op =
  Fmt.epr
    "qcec: circuit contains the non-unitary operation %a; transform it first \
     (qcec transform)@."
    Circuit.Op.pp op;
  exit 2

(* -- observability ---------------------------------------------------- *)

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Enable DD-package metrics collection and write counters, timing \
           spans and the result to $(docv) as JSON (schema qcec-stats/v1, \
           see docs/OBSERVABILITY.md)")

(* collection must be on before any DD work happens *)
let enable_stats = function None -> () | Some _ -> Obs.Metrics.set_enabled true

let write_stats path ~command ~files ~result =
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.String "qcec-stats/v1")
      ; ("command", Obs.Json.String command)
      ; ("files", Obs.Json.List (List.map (fun f -> Obs.Json.String f) files))
      ; ("result", Obs.Json.Obj result)
      ; ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot ()))
      ; ("spans", Obs.Span.to_json ())
      ]
  in
  try Obs.Json.to_file path doc
  with Sys_error msg ->
    Fmt.epr "qcec: cannot write stats file: %s@." msg;
    exit 2

let maybe_write_stats stats_json ~command ~files ~result =
  match stats_json with
  | None -> ()
  | Some path -> write_stats path ~command ~files ~result

(* -- verdict cache ----------------------------------------------------- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Open (creating if needed) the content-addressed verdict store at \
           $(docv): verdicts for already-seen circuit pairs are served from \
           it without any decision-diagram work, fresh verdicts are \
           appended (see docs/CACHING.md)")

let no_result_cache_arg =
  Arg.(
    value
    & flag
    & info [ "no-result-cache" ]
        ~doc:
          "Ignore the verdict store even when $(b,--cache-dir) or the \
           manifest requests one: every pair is recomputed")

(* Caching is strictly opt-in: no [--cache-dir] (or manifest [cache_dir])
   means no store is opened and every verdict is computed. *)
let open_store ~cache_dir ~no_result_cache =
  match cache_dir with
  | Some dir when not no_result_cache ->
    (match Cache_store.Store.open_dir dir with
     | Ok store -> Some store
     | Error msg ->
       Fmt.epr "qcec: cannot open verdict store: %s@." msg;
       exit 2)
  | _ -> None

(* -- check ------------------------------------------------------------ *)

let check_cmd =
  let run file_a file_b strategy scheme perm quiet stats_json cache_cap
      gc_threshold no_kernels backend width =
    enable_stats stats_json;
    let dd_config = dd_config_of cache_cap gc_threshold in
    let module B = (val resolve_backend backend : Dd.Backend.S) in
    let module V = Qcec.Verify.Make (B) in
    let a = load file_a and b = load file_b in
    let r, portfolio =
      match strategy, scheme with
      | Strat_portfolio, None ->
        let candidates = portfolio_candidates ~width ~backend a b in
        let pr =
          try
            Qcec.Verify.portfolio ~candidates ?perm ?dd_config
              ~use_kernels:(not no_kernels) a b
          with Qcec.Strategy.Non_unitary op -> report_non_unitary op
        in
        if not quiet then Fmt.pr "%a@." pp_portfolio_report pr;
        (pr.Qcec.Verify.winner, Some pr)
      | Strat_portfolio, Some _ ->
        (* silently coercing the race to a solo run would drop an explicit
           request; the combination is a contradiction, so refuse it *)
        Fmt.epr
          "qcec check: --strategy portfolio cannot be combined with --scheme \
           (the race composes its own candidate field)@.";
        exit 2
      | Strat strategy, _ ->
        let strategy = resolve_scheme ~strategy ~scheme a b in
        let r =
          try
            V.functional ~strategy ?perm ?dd_config
              ~use_kernels:(not no_kernels) a b
          with Qcec.Strategy.Non_unitary op -> report_non_unitary op
        in
        (r, None)
    in
    if not quiet then Fmt.pr "%a@." Qcec.Verify.pp_functional r;
    let strategy_name =
      match portfolio with
      | Some pr ->
        Fmt.str "portfolio(%s)"
          (Qcec.Strategy.name pr.Qcec.Verify.winner_strategy)
      | None -> Qcec.Strategy.name r.Qcec.Verify.strategy
    in
    maybe_write_stats stats_json ~command:"check" ~files:[ file_a; file_b ]
      ~result:
        ([ ("equivalent", Obs.Json.Bool r.Qcec.Verify.equivalent)
         ; ("exactly_equal", Obs.Json.Bool r.Qcec.Verify.exactly_equal)
         ; ("strategy", Obs.Json.String strategy_name)
         ; ("t_transform", Obs.Json.Float r.Qcec.Verify.t_transform)
         ; ("t_check", Obs.Json.Float r.Qcec.Verify.t_check)
         ; ("transformed_qubits", Obs.Json.Int r.Qcec.Verify.transformed_qubits)
         ; ("peak_nodes", Obs.Json.Int r.Qcec.Verify.peak_nodes)
         ; ("backend", Obs.Json.String backend)
         ; ("metrics", Obs.Metrics.to_json r.Qcec.Verify.metrics)
         ]
        @
        match portfolio with
        | Some pr -> [ ("portfolio", portfolio_json pr) ]
        | None -> []);
    if r.Qcec.Verify.equivalent then begin
      Fmt.pr "equivalent@.";
      exit 0
    end
    else begin
      Fmt.pr "not equivalent@.";
      exit 1
    end
  in
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A.qasm") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B.qasm") in
  let strategy =
    Arg.(
      value
      & opt strat_opt_conv (Strat Qcec.Strategy.Proportional)
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "construction, proportional, simulation:<shots>, or portfolio \
             (race candidate deciders, first verdict wins)")
  in
  let perm =
    Arg.(
      value
      & opt (some perm_conv) None
      & info [ "p"; "perm" ] ~docv:"PERM"
          ~doc:"wire alignment applied to the second circuit, e.g. 0,3,1,2")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"only print the verdict") in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check full functional equivalence of two circuits (dynamic inputs are \
          transformed with the Section 4 scheme first)")
    Term.(
      const run $ file_a $ file_b $ strategy $ scheme_arg $ perm $ quiet
      $ stats_json_arg $ cache_cap_arg $ gc_threshold_arg $ no_kernels_arg
      $ backend_arg $ portfolio_width_arg)

(* -- distribution ------------------------------------------------------ *)

let distribution_cmd =
  let run dyn_file static_file cutoff domains eps stats_json cache_cap gc_threshold
      no_kernels backend =
    enable_stats stats_json;
    let dd_config = dd_config_of cache_cap gc_threshold in
    let module B = (val resolve_backend backend : Dd.Backend.S) in
    let module V = Qcec.Verify.Make (B) in
    let dyn = load dyn_file and static = load static_file in
    let r =
      V.distribution ~eps ~cutoff ~domains ?dd_config
        ~use_kernels:(not no_kernels) dyn static
    in
    Fmt.pr "%a@." Qcec.Verify.pp_distribution r;
    maybe_write_stats stats_json ~command:"distribution"
      ~files:[ dyn_file; static_file ]
      ~result:
        [ ("distributions_equal", Obs.Json.Bool r.Qcec.Verify.distributions_equal)
        ; ("total_variation", Obs.Json.Float r.Qcec.Verify.total_variation)
        ; ("t_extract", Obs.Json.Float r.Qcec.Verify.t_extract)
        ; ("t_simulate", Obs.Json.Float r.Qcec.Verify.t_simulate)
        ; ( "extraction"
          , Obs.Json.Obj
              [ ("leaves", Obs.Json.Int r.Qcec.Verify.extraction_stats.Qsim.Extraction.leaves)
              ; ( "branch_points"
                , Obs.Json.Int
                    r.Qcec.Verify.extraction_stats.Qsim.Extraction.branch_points )
              ; ("pruned", Obs.Json.Int r.Qcec.Verify.extraction_stats.Qsim.Extraction.pruned)
              ; ( "gate_applications"
                , Obs.Json.Int
                    r.Qcec.Verify.extraction_stats.Qsim.Extraction.gate_applications )
              ] )
        ; ("metrics", Obs.Metrics.to_json r.Qcec.Verify.metrics)
        ];
    exit (if r.Qcec.Verify.distributions_equal then 0 else 1)
  in
  let dyn = Arg.(required & pos 0 (some file) None & info [] ~docv:"DYNAMIC.qasm") in
  let static = Arg.(required & pos 1 (some file) None & info [] ~docv:"STATIC.qasm") in
  let cutoff =
    Arg.(value & opt float 1e-12 & info [ "cutoff" ] ~doc:"branch pruning threshold")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "j"; "domains" ] ~doc:"parallel domains")
  in
  let eps =
    Arg.(value & opt float 1e-9 & info [ "eps" ] ~doc:"total-variation tolerance")
  in
  Cmd.v
    (Cmd.info "distribution"
       ~doc:
         "Compare the measurement-outcome distribution of a dynamic circuit \
          (extracted with the Section 5 scheme) against a static reference")
    Term.(
      const run $ dyn $ static $ cutoff $ domains $ eps $ stats_json_arg
      $ cache_cap_arg $ gc_threshold_arg $ no_kernels_arg $ backend_arg)

(* -- extract ------------------------------------------------------------ *)

let extract_cmd =
  let run file cutoff tree top stats_json cache_cap gc_threshold no_kernels
      backend =
    enable_stats stats_json;
    let dd_config = dd_config_of cache_cap gc_threshold in
    let module B = (val resolve_backend backend : Dd.Backend.S) in
    let module E = Qsim.Extraction.Make (B) in
    let use_kernels = not no_kernels in
    let c = load file in
    if tree then begin
      Fmt.pr "%a@." Qsim.Extraction.pp_tree
        (E.tree ~cutoff ~use_kernels ?dd_config c)
    end
    else begin
      let r = E.run ~cutoff ~use_kernels ?dd_config c in
      Fmt.pr "%a@." Qcec.Distribution.pp
        (Qcec.Distribution.most_probable ~count:top r.Qsim.Extraction.distribution);
      Fmt.pr "(%d leaves, %d branch points, %d pruned, mass %.6f)@."
        r.Qsim.Extraction.stats.Qsim.Extraction.leaves
        r.Qsim.Extraction.stats.Qsim.Extraction.branch_points
        r.Qsim.Extraction.stats.Qsim.Extraction.pruned
        (Qcec.Distribution.mass r.Qsim.Extraction.distribution);
      maybe_write_stats stats_json ~command:"extract" ~files:[ file ]
        ~result:
          [ ("leaves", Obs.Json.Int r.Qsim.Extraction.stats.Qsim.Extraction.leaves)
          ; ( "branch_points"
            , Obs.Json.Int r.Qsim.Extraction.stats.Qsim.Extraction.branch_points )
          ; ("pruned", Obs.Json.Int r.Qsim.Extraction.stats.Qsim.Extraction.pruned)
          ; ( "gate_applications"
            , Obs.Json.Int r.Qsim.Extraction.stats.Qsim.Extraction.gate_applications )
          ; ("mass", Obs.Json.Float (Qcec.Distribution.mass r.Qsim.Extraction.distribution))
          ]
    end
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.qasm") in
  let cutoff =
    Arg.(value & opt float 1e-12 & info [ "cutoff" ] ~doc:"branch pruning threshold")
  in
  let tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"print the branching tree (Fig. 4 style)")
  in
  let top = Arg.(value & opt int 20 & info [ "top" ] ~doc:"outcomes to print") in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Extract the measurement-outcome distribution of a dynamic circuit")
    Term.(
      const run $ file $ cutoff $ tree $ top $ stats_json_arg $ cache_cap_arg
      $ gc_threshold_arg $ no_kernels_arg $ backend_arg)

(* -- transform ------------------------------------------------------------ *)

let transform_cmd =
  let run file output draw =
    let c = load file in
    let out = Transform.Dynamic.to_static c in
    Fmt.epr "eliminated %d resets (+%d qubits), deferred %d measurements, replaced %d conditions@."
      out.Transform.Dynamic.resets_eliminated out.Transform.Dynamic.qubits_added
      out.Transform.Dynamic.measurements_deferred
      out.Transform.Dynamic.conditions_replaced;
    if draw then Circuit.Draw.print out.Transform.Dynamic.circuit
    else begin
      match output with
      | Some path -> Circuit.Qasm_printer.to_file path out.Transform.Dynamic.circuit
      | None -> print_string (Circuit.Qasm_printer.to_string out.Transform.Dynamic.circuit)
    end
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.qasm") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.qasm")
  in
  let draw = Arg.(value & flag & info [ "draw" ] ~doc:"print ASCII art instead of QASM") in
  Cmd.v
    (Cmd.info "transform"
       ~doc:
         "Apply the Section 4 scheme (reset substitution + deferred measurement) \
          and emit the unitary reconstruction")
    Term.(const run $ file $ output $ draw)

(* -- optimize ------------------------------------------------------------ *)

let optimize_cmd =
  let run file output verify =
    let c = load file in
    let out = Qcompile.Optimize.run c in
    let s = out.Qcompile.Optimize.stats in
    Fmt.epr "%d -> %d unitary ops (%d cancelled, %d merged, %d fused)@."
      s.Qcompile.Optimize.before s.Qcompile.Optimize.after s.Qcompile.Optimize.cancelled
      s.Qcompile.Optimize.merged s.Qcompile.Optimize.fused;
    if verify then begin
      let r =
        try Qcec.Verify.functional c out.Qcompile.Optimize.circuit
        with Qcec.Strategy.Non_unitary op -> report_non_unitary op
      in
      Fmt.epr "verified: %s@."
        (if r.Qcec.Verify.equivalent then "equivalent" else "NOT EQUIVALENT");
      if not r.Qcec.Verify.equivalent then exit 1
    end;
    match output with
    | Some path -> Circuit.Qasm_printer.to_file path out.Qcompile.Optimize.circuit
    | None -> print_string (Circuit.Qasm_printer.to_string out.Qcompile.Optimize.circuit)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.qasm") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.qasm")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"equivalence-check the result")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Peephole-optimize a circuit (cancellation, merging, fusion)")
    Term.(const run $ file $ output $ verify)

(* -- lint ------------------------------------------------------------- *)

(* Parse a file and lint it; a parse failure becomes a QA000 diagnostic
   rather than an abort, so one bad file doesn't hide the others.  Parsed
   files additionally get a classifier profile for the v2 report. *)
let lint_file path =
  match Circuit.Qasm3_parser.parse_any_file_located path with
  | c, lines ->
    Analysis.Report.entry ~profile:(Analysis.classify c) path
      (Analysis.lint ~file:path ~lines c)
  | exception Circuit.Qasm_parser.Parse_error (msg, line) ->
    Analysis.Report.entry path [ Analysis.Lint.of_parse_error ~file:path ~line msg ]
  | exception Sys_error msg ->
    Analysis.Report.entry path [ Analysis.Lint.of_parse_error ~file:path ~line:0 msg ]

let lint_cmd =
  let run files json quiet =
    let report = List.map lint_file files in
    let all =
      List.concat_map (fun e -> e.Analysis.Report.diagnostics) report
    in
    if not quiet then
      List.iter (fun d -> Fmt.pr "%a@." Analysis.Diagnostic.pp d) all;
    let s = Analysis.Diagnostic.summarize all in
    if not quiet then
      Fmt.epr "%d error%s, %d warning%s, %d info@."
        s.Analysis.Diagnostic.errors
        (if s.Analysis.Diagnostic.errors = 1 then "" else "s")
        s.Analysis.Diagnostic.warnings
        (if s.Analysis.Diagnostic.warnings = 1 then "" else "s")
        s.Analysis.Diagnostic.infos;
    (match json with
     | None -> ()
     | Some path ->
       let doc = Analysis.Report.to_json report in
       if path = "-" then print_string (Obs.Json.to_string ~pretty:true doc)
       else begin
         try Obs.Json.to_file path doc
         with Sys_error msg ->
           Fmt.epr "qcec: cannot write lint report: %s@." msg;
           exit 2
       end);
    exit (if Analysis.Diagnostic.has_errors all then 1 else 0)
  in
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE.qasm")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the report as JSON (schema qcec-lint/v2: the v1 fields \
             plus a per-file classifier block, see docs/ANALYSIS.md) to \
             $(docv), or to stdout for \"-\"")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"suppress text diagnostics")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze circuits: dataflow lint (unused qubits, gates \
          after final measurement, dead classical writes, constant \
          conditions, ...) with located diagnostics.  Exits 1 if any \
          error-severity finding is reported, 0 on warnings only")
    Term.(const run $ files $ json $ quiet)

(* -- analyze ----------------------------------------------------------- *)

(* Run the abstract-interpretation passes (Clifford domain, interaction
   graph, cancellation structure, cost model) and emit the per-file
   qcec-analysis/v1 profiles.  With exactly two files, the document also
   carries the cost curves' divergence and the recommended application
   scheme for checking them against each other. *)
let analyze_cmd =
  let run files output =
    let entries =
      List.map
        (fun path ->
          let c = load path in
          (path, Obs.Span.with_ "analysis.profile" (fun () ->
             Analysis.Cost.profile c)))
        files
    in
    let file_json (path, p) =
      match Analysis.Cost.to_json p with
      | Obs.Json.Obj fields ->
        Obs.Json.Obj (("file", Obs.Json.String path) :: fields)
      | other -> other
    in
    let pair_fields =
      match entries with
      | [ (_, a); (_, b) ] ->
        [ ("divergence", Obs.Json.Float (Analysis.Cost.divergence a b))
        ; ( "recommended_scheme"
          , Obs.Json.String
              (Analysis.Cost.scheme_name
                 (Analysis.Classify.route_application a b)) )
        ]
      | _ -> []
    in
    let doc =
      Obs.Json.Obj
        ([ ("schema", Obs.Json.String "qcec-analysis/v1")
         ; ("files", Obs.Json.List (List.map file_json entries))
         ]
        @ pair_fields)
    in
    match output with
    | None | Some "-" -> print_string (Obs.Json.to_string ~pretty:true doc)
    | Some path ->
      (try Obs.Json.to_file path doc
       with Sys_error msg ->
         Fmt.epr "qcec: cannot write analysis report: %s@." msg;
         exit 2)
  in
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.qasm")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the qcec-analysis/v1 JSON document to $(docv) instead of \
             stdout")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static analysis passes (Clifford prefix, qubit-interaction \
          graph, cancellation structure, per-gate cost profile) over \
          circuits and emit qcec-analysis/v1 JSON.  Given exactly two \
          files, also reports which application scheme their cost profiles \
          recommend for equivalence checking.  Exits 2 on parse failure")
    Term.(const run $ files $ output)

(* -- verify ------------------------------------------------------------ *)

(* [check] with a static pre-flight: lint both inputs, classify them, and
   reject circuits the selected unitary-only strategy cannot handle with a
   located QA008 — before any DD package is constructed.  [--transform]
   restores the automatic Section 4 routing of [check]. *)
let verify_cmd =
  let run file_a file_b strategy scheme perm transform quiet stats_json
      cache_cap gc_threshold no_kernels cache_dir no_result_cache backend
      width =
    enable_stats stats_json;
    let dd_config = dd_config_of cache_cap gc_threshold in
    let module B = (val resolve_backend backend : Dd.Backend.S) in
    let module V = Qcec.Verify.Make (B) in
    let store = open_store ~cache_dir ~no_result_cache in
    let load_located path =
      try Circuit.Qasm3_parser.parse_any_file_located path with
      | Circuit.Qasm_parser.Parse_error (msg, line) ->
        Fmt.epr "%a@."
          Analysis.Diagnostic.pp
          (Analysis.Lint.of_parse_error ~file:path ~line msg);
        exit 2
      | Sys_error msg ->
        Fmt.epr "%s@." msg;
        exit 2
    in
    let (a, lines_a) = load_located file_a in
    let (b, lines_b) = load_located file_b in
    (* pre-flight 1: lint; error-severity findings block the check *)
    let diags =
      Obs.Span.with_ "analysis.lint" (fun () ->
        Analysis.lint ~file:file_a ~lines:lines_a a
        @ Analysis.lint ~file:file_b ~lines:lines_b b)
    in
    List.iter (fun d -> Fmt.epr "%a@." Analysis.Diagnostic.pp d) diags;
    if Analysis.Diagnostic.has_errors diags then exit 2;
    (* pre-flight 2: scheme applicability *)
    let profiles =
      List.map
        (fun (file, lines, c) -> (file, lines, Analysis.classify c))
        [ (file_a, lines_a, a); (file_b, lines_b, b) ]
    in
    if not transform then
      List.iter
        (fun (file, lines, p) ->
          match
            Analysis.Classify.scheme_rejection ~file ~lines
              ~scheme:Analysis.Classify.Unitary_scheme p
          with
          | Some d ->
            Fmt.epr "%a@." Analysis.Diagnostic.pp d;
            exit 2
          | None -> ())
        profiles;
    let r, portfolio =
      match strategy, scheme with
      | Strat_portfolio, None ->
        let candidates = portfolio_candidates ~width ~backend a b in
        let pr =
          try
            Qcec.Verify.portfolio ~candidates ?perm
              ~on_dynamic:(if transform then `Transform else `Reject)
              ?dd_config ~use_kernels:(not no_kernels) ?cache:store a b
          with
          | Qcec.Strategy.Non_unitary op -> report_non_unitary op
          | Qcec.Verify.Rejected d ->
            Fmt.epr "%a@." Analysis.Diagnostic.pp d;
            exit 2
        in
        if not quiet then Fmt.pr "%a@." pp_portfolio_report pr;
        (pr.Qcec.Verify.winner, Some pr)
      | Strat_portfolio, Some _ ->
        (* silently coercing the race to a solo run would drop an explicit
           request; the combination is a contradiction, so refuse it *)
        Fmt.epr
          "qcec verify: --strategy portfolio cannot be combined with --scheme \
           (the race composes its own candidate field)@.";
        exit 2
      | Strat strategy, _ ->
        let strategy = resolve_scheme ~strategy ~scheme a b in
        let r =
          try
            V.functional ~strategy ?perm
              ~on_dynamic:(if transform then `Transform else `Reject)
              ?dd_config ~use_kernels:(not no_kernels) ?cache:store a b
          with
          | Qcec.Strategy.Non_unitary op -> report_non_unitary op
          | Qcec.Verify.Rejected d ->
            Fmt.epr "%a@." Analysis.Diagnostic.pp d;
            exit 2
        in
        (r, None)
    in
    Option.iter Cache_store.Store.close store;
    if not quiet then begin
      Fmt.pr "%a@." Qcec.Verify.pp_functional r;
      if r.Qcec.Verify.cached then Fmt.pr "verdict served from cache@."
    end;
    let strategy_name =
      match portfolio with
      | Some pr ->
        Fmt.str "portfolio(%s)"
          (Qcec.Strategy.name pr.Qcec.Verify.winner_strategy)
      | None -> Qcec.Strategy.name r.Qcec.Verify.strategy
    in
    maybe_write_stats stats_json ~command:"verify" ~files:[ file_a; file_b ]
      ~result:
        ([ ("equivalent", Obs.Json.Bool r.Qcec.Verify.equivalent)
         ; ("exactly_equal", Obs.Json.Bool r.Qcec.Verify.exactly_equal)
         ; ("strategy", Obs.Json.String strategy_name)
         ; ("t_transform", Obs.Json.Float r.Qcec.Verify.t_transform)
         ; ("t_check", Obs.Json.Float r.Qcec.Verify.t_check)
         ; ("transformed_qubits", Obs.Json.Int r.Qcec.Verify.transformed_qubits)
         ; ("peak_nodes", Obs.Json.Int r.Qcec.Verify.peak_nodes)
         ; ("cached", Obs.Json.Bool r.Qcec.Verify.cached)
         ; ("backend", Obs.Json.String backend)
         ; ( "profiles"
           , Obs.Json.List
               (List.map
                  (fun (_, _, p) -> Analysis.Classify.to_json p)
                  profiles) )
         ; ("metrics", Obs.Metrics.to_json r.Qcec.Verify.metrics)
         ]
        @
        match portfolio with
        | Some pr -> [ ("portfolio", portfolio_json pr) ]
        | None -> []);
    if r.Qcec.Verify.equivalent then begin
      Fmt.pr "equivalent@.";
      exit 0
    end
    else begin
      Fmt.pr "not equivalent@.";
      exit 1
    end
  in
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A.qasm") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B.qasm") in
  let strategy =
    Arg.(
      value
      & opt strat_opt_conv (Strat Qcec.Strategy.Proportional)
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "construction, proportional, simulation:<shots>, or portfolio \
             (race candidate deciders, first verdict wins)")
  in
  let perm =
    Arg.(
      value
      & opt (some perm_conv) None
      & info [ "p"; "perm" ] ~docv:"PERM"
          ~doc:"wire alignment applied to the second circuit, e.g. 0,3,1,2")
  in
  let transform =
    Arg.(
      value
      & flag
      & info [ "transform" ]
          ~doc:
            "Transform dynamic inputs with the Section 4 scheme instead of \
             rejecting them (the automatic routing $(b,check) performs)")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"only print the verdict") in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check functional equivalence with a static pre-flight: lint both \
          circuits and reject ones the selected (unitary-only) strategy \
          cannot handle, with located diagnostics, before any \
          decision-diagram work.  Exit 2 on rejection; $(b,--transform) \
          restores the automatic transformation of $(b,check)")
    Term.(
      const run $ file_a $ file_b $ strategy $ scheme_arg $ perm $ transform
      $ quiet $ stats_json_arg $ cache_cap_arg $ gc_threshold_arg
      $ no_kernels_arg $ cache_dir_arg $ no_result_cache_arg $ backend_arg
      $ portfolio_width_arg)

(* -- batch ------------------------------------------------------------ *)

(* Batch verification over the engine's domain worker pool: one manifest
   (or an even list of QASM files, paired consecutively) in, one
   qcec-result/v1 JSONL stream and an optional qcec-batch/v1 aggregate
   out.  Per-job failures are structured results, never batch aborts. *)
let batch_cmd =
  let run inputs workers out summary strategy timeout retries seed node_limit
      no_lint quiet cache_cap gc_threshold no_kernels cache_dir no_result_cache
      backend portfolio =
    (* per-job metric deltas are part of the result schema, so collection
       is on for batch runs (flipped before any worker spawns) *)
    Obs.Metrics.set_enabled true;
    (* validate up front so a typo fails before any parsing or spawning *)
    Option.iter (fun b -> ignore (resolve_backend b)) backend;
    let usage msg =
      Fmt.epr "qcec batch: %s@." msg;
      exit 2
    in
    (match portfolio with
     | Some w when w <> 0 && w < 2 ->
       usage (Fmt.str "--portfolio must be a width >= 2 (or 0 to disable), got %d" w)
     | _ -> ());
    let dd_config = dd_config_of cache_cap gc_threshold in
    let manifest =
      match inputs with
      | [ path ] when Filename.check_suffix path ".json" ->
        (match Engine.Manifest.load path with Ok m -> m | Error e -> usage e)
      | files ->
        (match Engine.Manifest.pair_files files with
         | Ok pairs -> Engine.Manifest.of_pairs ?seed pairs
         | Error e -> usage e)
    in
    (* command-line settings override manifest defaults job by job *)
    let specs =
      List.map
        (fun (s : Engine.Job.spec) ->
          { s with
            Engine.Job.strategy =
              (match s.Engine.Job.strategy with
               | Some _ as st -> st
               | None -> strategy)
          ; timeout =
              (match timeout with Some _ as t -> t | None -> s.Engine.Job.timeout)
          ; retries = (match retries with Some r -> r | None -> s.Engine.Job.retries)
          ; seed =
              (match seed with
               | Some s0 -> Some (s0 + s.Engine.Job.index)
               | None -> s.Engine.Job.seed)
          ; kernels = s.Engine.Job.kernels && not no_kernels
          ; backend =
              (match backend with Some b -> b | None -> s.Engine.Job.backend)
          ; portfolio =
              (match portfolio with
               | Some 0 -> None
               | Some _ as p -> p
               | None -> s.Engine.Job.portfolio)
          })
        manifest.Engine.Manifest.jobs
    in
    (* an empty (or all-skipped) manifest is a legitimate no-op batch, not
       a usage error: it reports a zero-job summary and exits 0 *)
    if specs = [] && not quiet then
      Fmt.epr "qcec batch: 0 jobs (manifest is empty or every job is skipped)@.";
    let store =
      let cache_dir =
        match cache_dir with
        | Some _ as d -> d
        | None -> manifest.Engine.Manifest.cache_dir
      in
      open_store ~cache_dir ~no_result_cache
    in
    let oc, close_oc =
      match out with
      | "-" -> (stdout, fun () -> ())
      | path ->
        (match open_out path with
         | oc -> (oc, fun () -> close_out oc)
         | exception Sys_error msg -> usage msg)
    in
    let cfg =
      { Engine.Pool.workers
      ; dd_config
      ; node_limit
      ; lint = not no_lint
      ; gc_retry_scale = 4
      ; on_result =
          Some
            (fun r ->
              Engine.Results.write_jsonl oc r;
              if (not quiet) && out <> "-" then
                Fmt.epr "%a@." Engine.Job.pp_result r)
      ; cache = store
      }
    in
    let batch = Engine.Pool.run cfg specs in
    Option.iter Cache_store.Store.close store;
    close_oc ();
    (match summary with
     | None -> ()
     | Some path ->
       let doc = Engine.Results.aggregate batch in
       if path = "-" then Fmt.pr "%s@." (Obs.Json.to_string ~pretty:true doc)
       else (
         try Obs.Json.to_file path doc
         with Sys_error msg -> usage (Fmt.str "cannot write summary: %s" msg)));
    let not_ok =
      List.filter
        (fun r -> not (Engine.Job.succeeded r))
        batch.Engine.Pool.results
    in
    if not quiet then begin
      Fmt.epr "%d jobs on %d workers in %.2fs wall; %d not equivalent or failed@."
        (List.length batch.Engine.Pool.results)
        batch.Engine.Pool.workers batch.Engine.Pool.wall_seconds
        (List.length not_ok);
      if store <> None then
        Fmt.epr "verdict cache: %d hits, %d misses, %d inserted@."
          (Obs.Metrics.find batch.Engine.Pool.metrics "cache.result.hits")
          (Obs.Metrics.find batch.Engine.Pool.metrics "cache.result.misses")
          (Obs.Metrics.find batch.Engine.Pool.metrics "cache.result.inserts")
    end;
    exit (if not_ok = [] then 0 else 1)
  in
  let inputs =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"MANIFEST.json|A.qasm B.qasm ..."
          ~doc:
            "Either a single qcec-manifest/v1 JSON file, or an even list of \
             QASM files paired consecutively")
  in
  let workers =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (default: the runtime's recommended domain \
             count); clamped to the number of jobs")
  in
  let out =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Stream per-job results (schema qcec-result/v1, one JSON object \
             per line) to $(docv), or to stdout for \"-\" (the default)")
  in
  let summary =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Write the end-of-run aggregate (schema qcec-batch/v1: latency \
             percentiles, speedup, exit classes, merged metrics) to $(docv), \
             or to stdout for \"-\"")
  in
  let strategy =
    Arg.(
      value
      & opt (some strategy_conv) None
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:"default strategy for jobs that do not pin one")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-job wall-clock budget (cancelled cooperatively at DD \
             safepoints); overrides manifest timeouts")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Extra attempts for timed-out jobs, each with a 4x relaxed \
             auto-GC threshold; overrides manifest retries")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Batch stimuli seed; job $(i,i) draws its random stimuli from \
             seed N+i, making simulative verdicts reproducible across \
             worker counts")
  in
  let node_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-limit" ] ~docv:"N"
          ~doc:
            "Fail a job (exit class node_limit) once its DD package holds \
             more than $(docv) live nodes")
  in
  let no_lint =
    Arg.(
      value & flag
      & info [ "no-lint" ] ~doc:"skip the per-job lint pre-flight")
  in
  let backend =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend" ] ~docv:"NAME"
          ~doc:
            "Run every job on this DD backend (classic or packed), \
             overriding manifest defaults and per-job settings")
  in
  let portfolio =
    Arg.(
      value
      & opt (some int) None
      & info [ "portfolio" ] ~docv:"K"
          ~doc:
            "Race up to $(docv) candidate deciders per job (first definitive \
             verdict wins; losers are cancelled at their next safepoint), \
             overriding manifest portfolio settings.  Race domains are \
             borrowed from the $(b,--jobs) budget, so total parallelism \
             never exceeds it.  0 disables a manifest-defaulted portfolio")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"suppress progress on stderr")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Verify many circuit pairs in parallel on a domain worker pool. \
          Results stream as qcec-result/v1 JSONL; per-job parse errors, \
          lint errors, rejections and timeouts become structured failures \
          instead of aborting the batch.  Exits 0 only if every job \
          verified equivalent")
    Term.(
      const run $ inputs $ workers $ out $ summary $ strategy $ timeout
      $ retries $ seed $ node_limit $ no_lint $ quiet $ cache_cap_arg
      $ gc_threshold_arg $ no_kernels_arg $ cache_dir_arg $ no_result_cache_arg
      $ backend $ portfolio)

(* -- stats ------------------------------------------------------------ *)

let stats_cmd =
  let run file =
    let c = load file in
    let s = Circuit.Stats.compute c in
    Fmt.pr "%s: %d qubits, %d classical bits@." c.Circuit.Circ.name
      c.Circuit.Circ.num_qubits c.Circuit.Circ.num_cbits;
    Fmt.pr "%a@." Circuit.Stats.pp s;
    Fmt.pr "dynamic: %b@." (Circuit.Circ.is_dynamic c)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.qasm") in
  Cmd.v (Cmd.info "stats" ~doc:"Print structural circuit metrics") Term.(const run $ file)

(* -- draw ------------------------------------------------------------ *)

let draw_cmd =
  let run file =
    Circuit.Draw.print (load file)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.qasm") in
  Cmd.v (Cmd.info "draw" ~doc:"Render a circuit as ASCII art") Term.(const run $ file)

(* -- gen ------------------------------------------------------------ *)

let gen_cmd =
  let run family n theta dynamic output =
    let circuit =
      match family with
      | "bv" ->
        let s = Algorithms.Bv.hidden_string ~seed:n n in
        if dynamic then Algorithms.Bv.dynamic s else Algorithms.Bv.static s
      | "qft" -> if dynamic then Algorithms.Qft.dynamic n else Algorithms.Qft.static n
      | "qpe" ->
        let theta =
          match theta with
          | Some t -> t
          | None -> Algorithms.Qpe.random_theta ~seed:n ~bits:n
        in
        if dynamic then Algorithms.Qpe.dynamic ~theta ~bits:n
        else Algorithms.Qpe.static ~theta ~bits:n
      | "ghz" -> Algorithms.Ghz.static n
      | other ->
        Fmt.epr "unknown family %S (bv, qft, qpe, ghz)@." other;
        exit 2
    in
    match output with
    | Some path -> Circuit.Qasm_printer.to_file path circuit
    | None -> print_string (Circuit.Qasm_printer.to_string circuit)
  in
  let family =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc:"bv|qft|qpe|ghz")
  in
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"size (qubits / precision bits)") in
  let theta =
    Arg.(value & opt (some float) None & info [ "theta" ] ~doc:"QPE phase in [0,1)")
  in
  let dynamic = Arg.(value & flag & info [ "dynamic" ] ~doc:"emit the dynamic variant") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.qasm")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark circuit as OpenQASM")
    Term.(const run $ family $ n $ theta $ dynamic $ output)

(* [qcec batch ... | head] must exit quietly once the reader is gone: with
   SIGPIPE ignored, writes fail as EPIPE ([Sys_error "Broken pipe"] on
   channels), which we treat as a clean early exit.  The [Format] std
   formatters register an at_exit flush that would re-raise on the same
   broken pipe, so their output functions are muted first. *)
let mute_std_formatters () =
  List.iter
    (fun fmt ->
      Format.pp_set_formatter_out_functions fmt
        { (Format.pp_get_formatter_out_functions fmt ()) with
          Format.out_string = (fun _ _ _ -> ())
        ; out_flush = ignore
        })
    [ Format.std_formatter; Format.err_formatter ]

let is_broken_pipe = function
  | Sys_error msg -> msg = "Broken pipe" || String.length msg > 11 && String.sub msg 0 11 = "Broken pipe"
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | _ -> false

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let info =
    Cmd.info "qcec" ~version:Qcec.Version.string
      ~doc:"Equivalence checking of quantum circuits with non-unitary operations"
  in
  let cmd =
    Cmd.group info
      [ check_cmd; verify_cmd; batch_cmd; lint_cmd; analyze_cmd
      ; distribution_cmd; extract_cmd; transform_cmd; optimize_cmd
      ; stats_cmd; draw_cmd; gen_cmd ]
  in
  let code =
    try Cmd.eval ~catch:false cmd with
    | e when is_broken_pipe e ->
      mute_std_formatters ();
      0
    | e ->
      Fmt.epr "qcec: internal error, uncaught exception:@.%s@." (Printexc.to_string e);
      Cmd.Exit.internal_error
  in
  (try flush stdout with Sys_error _ -> mute_std_formatters ());
  exit code
