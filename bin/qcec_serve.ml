(* qcec_serve: the verification-as-a-service daemon.

   Thin Cmdliner wrapper around [Serve.Server]: parse flags into a
   [Server.config], start, then block until SIGTERM/SIGINT requests the
   graceful drain.  Everything interesting lives in lib/serve. *)

open Cmdliner

let log_line msg =
  let now = Unix.gettimeofday () in
  let tm = Unix.localtime now in
  Printf.eprintf "[%04d-%02d-%02d %02d:%02d:%02d] qcec_serve: %s\n%!" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec msg

let run host port workers queue_capacity rate burst max_body heartbeat timeout node_limit
    cache_dir no_lint max_connections quiet =
  let cache =
    match cache_dir with
    | None -> None
    | Some dir -> (
      match Cache_store.Store.open_dir dir with
      | Ok store ->
        if not quiet then
          log_line
            (Printf.sprintf "verdict store %s: %d entries recovered" dir
               (Cache_store.Store.recovered store));
        Some store
      | Error e ->
        Fmt.epr "qcec_serve: cannot open cache directory %s: %s@." dir e;
        exit 2)
  in
  let cfg =
    { Serve.Server.default_config with
      Serve.Server.host
    ; port
    ; workers
    ; queue_capacity
    ; rate
    ; burst
    ; max_body
    ; heartbeat_interval = heartbeat
    ; default_timeout = timeout
    ; node_limit
    ; cache
    ; lint = not no_lint
    ; max_connections
    ; log = (if quiet then None else Some log_line)
    }
  in
  let server =
    try Serve.Server.start cfg with
    | Unix.Unix_error (err, _, _) ->
      Fmt.epr "qcec_serve: cannot bind %s:%d: %s@." host port (Unix.error_message err);
      exit 2
  in
  Printf.printf "qcec_serve %s listening on http://%s:%d\n%!" Qcec.Version.string host
    (Serve.Server.port server);
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Thread.delay 0.2
  done;
  if not quiet then log_line "signal received: draining";
  Serve.Server.stop server;
  Option.iter Cache_store.Store.close cache;
  if not quiet then log_line "shutdown complete"

let cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 8077
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks an ephemeral port).")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_capacity =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Admission queue bound; submissions beyond it get 429 + Retry-After.")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"R"
          ~doc:"Per-client submission rate limit (jobs/second); 0 disables.")
  in
  let burst =
    Arg.(value & opt int 16 & info [ "burst" ] ~docv:"N" ~doc:"Per-client rate-limit burst.")
  in
  let max_body =
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "max-body" ] ~docv:"BYTES" ~doc:"Request body size bound (HTTP 413 beyond it).")
  in
  let heartbeat =
    Arg.(
      value & opt float 0.25
      & info [ "heartbeat" ] ~docv:"SECONDS" ~doc:"Progress/keep-alive event interval.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Default per-job wall-clock budget.")
  in
  let node_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-limit" ] ~docv:"N" ~doc:"Live DD node budget per job.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Persistent verdict store shared by all jobs.")
  in
  let no_lint = Arg.(value & flag & info [ "no-lint" ] ~doc:"Skip the lint pre-flight.") in
  let max_connections =
    Arg.(
      value & opt int 64
      & info [ "max-connections" ] ~docv:"N" ~doc:"Concurrent connection bound (503 beyond it).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the server log.") in
  let info =
    Cmd.info "qcec_serve" ~version:Qcec.Version.string
      ~doc:"Equivalence-checking daemon: submit jobs over HTTP, stream progress as SSE"
  in
  Cmd.v info
    Term.(
      const run $ host $ port $ workers $ queue_capacity $ rate $ burst $ max_body $ heartbeat
      $ timeout $ node_limit $ cache_dir $ no_lint $ max_connections $ quiet)

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  exit (Cmd.eval cmd)
