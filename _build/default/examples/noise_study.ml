(* Noise study: how decoherence erodes the iterative QPE estimate.

   The density-matrix backend (the mixed-state alternative the paper's
   Section 5 discusses) naturally hosts error channels; sweeping the
   depolarizing probability shows the success probability of the phase
   estimate collapsing towards the uniform floor, and the distribution
   drifting away from the ideal one extracted by the Section 5 scheme.

   Run with: dune exec examples/noise_study.exe *)

let () =
  let bits = 4 in
  let theta = 5.0 /. 16.0 (* 0.0101 binary: exactly representable *) in
  let dyn = Algorithms.Qpe.dynamic ~theta ~bits in
  let ideal = (Qsim.Extraction.run dyn).Qsim.Extraction.distribution in
  let target =
    (* theta = 0.c3c2c1c0 -> bits c0..c3 as the classical string *)
    match Qcec.Distribution.most_probable ~count:1 ideal with
    | [ (bits, _) ] -> bits
    | _ -> assert false
  in
  Fmt.pr "Ideal IQPE, theta = 5/16: estimate |%s> with certainty@.@." target;
  Fmt.pr "%12s %14s %14s %10s@." "depolarizing" "P(correct)" "TVD vs ideal" "purity";
  List.iter
    (fun p ->
      let noise = { Qsim.Density.depolarizing = p; amplitude_damping = p /. 2.0 } in
      let d = Qsim.Density.run_noisy ~noise dyn in
      let dist = Qsim.Density.distribution d in
      let correct = Option.value ~default:0.0 (List.assoc_opt target dist) in
      let tvd = Qcec.Distribution.total_variation ideal dist in
      Fmt.pr "%12.3f %14.4f %14.4f %10.4f@." p correct tvd (Qsim.Density.purity d))
    [ 0.0; 0.001; 0.005; 0.01; 0.02; 0.05; 0.1 ];
  Fmt.pr
    "@.(the uniform floor over %d outcomes is %.4f; equivalence checking against@."
    (1 lsl bits)
    (1.0 /. float_of_int (1 lsl bits));
  Fmt.pr " the ideal distribution fails as soon as the noise is visible)@.";
  (* closing the loop: a noisy realization is NOT distribution-equivalent *)
  let noisy =
    Qsim.Density.distribution
      (Qsim.Density.run_noisy
         ~noise:{ Qsim.Density.depolarizing = 0.02; amplitude_damping = 0.01 }
         dyn)
  in
  let tv = Qcec.Distribution.total_variation ideal noisy in
  if tv < 1e-9 then exit 1
