(* Quickstart: verify that a dynamic (iterative) QPE implementation is
   equivalent to its static counterpart, with both of the paper's schemes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Estimate the phase theta = 3/16 of U = p(3 pi / 8) to 3 bits — the
     paper's running example.  [Qpe.make] returns the static circuit, the
     2-qubit dynamic realization, and the wire correspondence. *)
  let pair = Algorithms.Qpe.paper_example () in
  let static = pair.Algorithms.Pair.static_circuit in
  let dynamic = pair.Algorithms.Pair.dynamic_circuit in

  Fmt.pr "Static QPE: %d qubits, %d gates@." static.Circuit.Circ.num_qubits
    (Circuit.Circ.gate_count static);
  Fmt.pr "Dynamic IQPE: %d qubits, %d operations@.@." dynamic.Circuit.Circ.num_qubits
    (Circuit.Circ.total_ops dynamic);

  (* Scheme 1 (paper Section 4): transform the dynamic circuit to unitary
     form — substituting resets with fresh qubits and deferring the
     measurements — then check full functional equivalence. *)
  let r =
    Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static static dynamic
  in
  Fmt.pr "== Scheme 1: full functional verification ==@.%a@.@."
    Qcec.Verify.pp_functional r;

  (* Scheme 2 (paper Section 5): extract the dynamic circuit's complete
     measurement-outcome distribution by branching simulation and compare
     with the classically simulated static circuit. *)
  let d = Qcec.Verify.distribution dynamic static in
  Fmt.pr "== Scheme 2: fixed-input distribution ==@.%a@.@."
    Qcec.Verify.pp_distribution d;
  Fmt.pr "Most probable estimates (bits are c0 c1 c2, estimate = 0.c2c1c0):@.%a@."
    Qcec.Distribution.pp
    (Qcec.Distribution.most_probable ~count:4 d.Qcec.Verify.dynamic_distribution);

  if r.Qcec.Verify.equivalent && d.Qcec.Verify.distributions_equal then
    Fmt.pr "@.Both schemes agree: the circuits are equivalent.@."
  else begin
    Fmt.pr "@.Mismatch detected!@.";
    exit 1
  end
