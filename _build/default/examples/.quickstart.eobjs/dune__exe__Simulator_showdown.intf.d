examples/simulator_showdown.mli:
