examples/teleportation.ml: Algorithms Circuit Fmt List Qcec Qsim
