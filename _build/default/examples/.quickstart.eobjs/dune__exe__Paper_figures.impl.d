examples/paper_figures.ml: Algorithms Circuit Dd Fmt List Qcec Qcompile Qsim Transform
