examples/quickstart.ml: Algorithms Circuit Fmt Qcec
