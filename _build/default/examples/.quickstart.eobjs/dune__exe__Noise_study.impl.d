examples/noise_study.ml: Algorithms Fmt List Option Qcec Qsim
