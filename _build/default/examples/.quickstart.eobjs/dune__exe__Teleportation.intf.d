examples/teleportation.mli:
