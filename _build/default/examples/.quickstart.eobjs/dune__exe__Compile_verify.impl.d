examples/compile_verify.ml: Algorithms Circuit Fmt List Qcec Qcompile Unix
