examples/simulator_showdown.ml: Algorithms Circuit Fmt Qcec Qsim Unix
