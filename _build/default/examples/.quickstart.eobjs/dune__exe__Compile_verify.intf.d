examples/compile_verify.mli:
