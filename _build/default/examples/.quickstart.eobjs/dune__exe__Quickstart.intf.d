examples/quickstart.mli:
