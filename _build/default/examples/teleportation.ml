(* Quantum teleportation — the canonical dynamic circuit (two mid-circuit
   measurements steering classically-controlled corrections), exercising the
   paper's Section 5 scheme.

   Teleportation is *not* unitarily equivalent to preparing the state on the
   output qubit directly (the circuits treat non-|0> ancilla inputs
   differently), so full functional verification is the wrong tool; what
   holds is that for the fixed |000> input the teleported qubit's
   measurement distribution equals the direct preparation's.  This is
   exactly the distinction the paper draws between its two schemes.

   Run with: dune exec examples/teleportation.exe *)

module Gates = Circuit.Gates

let () =
  (* an arbitrary state to teleport: ry/rz rotations of |0> *)
  let prep = [ Gates.RY 1.234; Gates.RZ 0.567 ] in
  let tele = Algorithms.Teleport.circuit ~prep in
  let reference = Algorithms.Teleport.reference ~prep in

  Fmt.pr "Teleportation circuit:@.";
  Circuit.Draw.print tele;

  (* extract the dynamic circuit's complete outcome distribution *)
  let result = Qsim.Extraction.run tele in
  Fmt.pr "@.Extracted distribution over (c0, c1, c2):@.%a@." Qcec.Distribution.pp
    result.Qsim.Extraction.distribution;

  (* the Bell measurement must be uniform... *)
  let bell =
    Qcec.Distribution.marginalize result.Qsim.Extraction.distribution ~bits:[ 0; 1 ]
  in
  Fmt.pr "@.Bell measurement marginal (expect uniform):@.%a@." Qcec.Distribution.pp bell;

  (* ...and the output qubit must reproduce the prepared state *)
  let output =
    Qcec.Distribution.marginalize result.Qsim.Extraction.distribution ~bits:[ 2 ]
  in
  let expected = Qsim.Statevector.extract_distribution reference in
  Fmt.pr "@.Output qubit marginal vs direct preparation:@.";
  Fmt.pr "teleported: %a@." Qcec.Distribution.pp output;
  Fmt.pr "direct:     %a@." Qcec.Distribution.pp expected;
  let tv = Qcec.Distribution.total_variation output expected in
  Fmt.pr "@.total variation distance: %.3g — %s@." tv
    (if tv < 1e-9 then "teleportation verified" else "MISMATCH");

  (* and the two schemes really differ: the unitary reconstructions are NOT
     equal (teleport vs direct preparation on 3 qubits) *)
  let padded_reference =
    (* the reference on 3 qubits: prepare on qubit 2 directly *)
    let b = Circuit.Builder.create ~qubits:3 ~cbits:3 "direct3" in
    List.iter (fun g -> Circuit.Builder.add b (Circuit.Op.apply g 2)) prep;
    Circuit.Builder.measure b 2 2;
    Circuit.Builder.finish b
  in
  let r = Qcec.Verify.functional tele padded_reference in
  Fmt.pr
    "@.Full functional check (scheme 1) between teleport and direct preparation: %s@."
    (if r.Qcec.Verify.equivalent then "equivalent (unexpected!)"
     else "not equivalent — as expected; only the fixed-input distributions agree");
  if tv >= 1e-9 then exit 1
