(* Reproduces the figures of
   "Handling Non-Unitaries in Quantum Circuit Equivalence Checking"
   (Burgholzer & Wille, DAC 2022) as terminal output:

     Fig. 1a  static 3-bit QPE for U = p(3 pi/8), |psi> = |1>
     Fig. 1b  the same circuit compiled to {u3, cx} and a linear coupling
     Fig. 2   the dynamic (iterative) realization
     Fig. 3a  after substituting fresh qubits for the resets
     Fig. 3b  after applying the deferred measurement principle
     Fig. 4   the extraction branching tree with check-pointed probabilities

   Run with: dune exec examples/paper_figures.exe *)

let heading fmt = Fmt.kstr (fun s -> Fmt.pr "@.=== %s ===@.@." s) fmt

let () =
  let pair = Algorithms.Qpe.paper_example () in
  let static = pair.Algorithms.Pair.static_circuit in
  let dynamic = pair.Algorithms.Pair.dynamic_circuit in

  heading "Fig. 1a: 3-bit precision QPE for U = p(3pi/8), estimate 0.c2c1c0";
  Circuit.Draw.print static;

  heading "Fig. 1b: compiled to {u3, cx} on the T-shaped IBMQ London coupling";
  (* the device has five qubits; pad the four-qubit circuit before routing *)
  let padded =
    Circuit.Circ.make ~name:"qpe_padded" ~qubits:5 ~cbits:static.Circuit.Circ.num_cbits
      static.Circuit.Circ.ops
  in
  let compiled =
    (Qcompile.Mapping.coupled ~edges:Qcompile.Mapping.ibmq_london
       (Qcompile.Decompose.to_basis padded))
      .Qcompile.Mapping.circuit
  in
  Circuit.Draw.print compiled;
  let r = Qcec.Verify.functional padded compiled in
  Fmt.pr "@.compilation verified: %s@."
    (if r.Qcec.Verify.equivalent then "equivalent" else "NOT equivalent");

  heading "Fig. 2: dynamic version (2 qubits, measure/reset/classical control)";
  Circuit.Draw.print dynamic;

  heading "Fig. 3a: after substituting a fresh qubit for every reset";
  let noreset = (Transform.Resets.eliminate dynamic).Transform.Resets.circuit in
  Circuit.Draw.print noreset;

  heading "Fig. 3b: after applying the deferred measurement principle";
  let deferred = (Transform.Deferral.defer noreset).Transform.Deferral.circuit in
  Circuit.Draw.print deferred;
  Fmt.pr
    "@.Example 6: comparing Fig. 3b with Fig. 1a (after aligning wires)...@.";
  let aligned = Algorithms.Pair.align_transformed pair deferred in
  let p = Dd.Pkg.create () in
  let u = Qsim.Dd_sim.build_unitary p (Circuit.Circ.strip_measurements aligned) in
  let u' = Qsim.Dd_sim.build_unitary p (Circuit.Circ.strip_measurements static) in
  Fmt.pr "they are %s.@."
    (if Dd.Mat.equal p u u' then "exactly the same unitary" else "DIFFERENT");

  heading "Fig. 4: measurement-outcome extraction for the IQPE circuit";
  let tree = Qsim.Extraction.tree dynamic in
  Fmt.pr "%a@." Qsim.Extraction.pp_tree tree;
  let result = Qsim.Extraction.run dynamic in
  Fmt.pr
    "@.Example 7: P(estimate |001>) = P(c0=1, c1=0, c2=0) = %.4f (paper: ~0.408)@."
    (List.assoc "100" result.Qsim.Extraction.distribution);
  Fmt.pr "Most probable estimates:@.%a@." Qcec.Distribution.pp
    (Qcec.Distribution.most_probable ~count:2 result.Qsim.Extraction.distribution)
