(* Verification of compilation results (the paper's use case (1)): compile
   a batch of circuits — basis decomposition to {u3, cx} followed by naive
   routing onto a linear coupling — and verify every result against its
   source with the equivalence checker.  One compilation is deliberately
   broken to show the checker catching it.

   Run with: dune exec examples/compile_verify.exe *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let compile c =
  let basis = Qcompile.Decompose.to_basis c in
  Qcompile.Mapping.linear basis

let verify_compilation name original =
  let out = compile original in
  let compiled = out.Qcompile.Mapping.circuit in
  let t0 = Unix.gettimeofday () in
  let r = Qcec.Verify.functional original compiled in
  let dt = Unix.gettimeofday () -. t0 in
  Fmt.pr "%-24s %4d -> %4d gates (%2d swaps)  %-14s %.4fs@." name
    (Circ.gate_count original)
    (Circ.gate_count compiled)
    out.Qcompile.Mapping.swaps_inserted
    (if r.Qcec.Verify.equivalent then "equivalent" else "NOT EQUIVALENT")
    dt;
  r.Qcec.Verify.equivalent

let () =
  Fmt.pr "Verifying compilation results (decompose to {u3,cx} + route to a line):@.@.";
  let batch =
    [ ("ghz_8", Circ.strip_measurements (Algorithms.Ghz.static 8))
    ; ("qft_6", Circ.strip_measurements (Algorithms.Qft.static 6))
    ; ( "qpe_3bit (Fig. 1b)"
      , Circ.strip_measurements (Algorithms.Qpe.static ~theta:(3.0 /. 16.0) ~bits:3) )
    ; ("bv_7", Circ.strip_measurements (Algorithms.Bv.static (Algorithms.Bv.hidden_string ~seed:1 7)))
    ; ("random_5q", Algorithms.Random_circuit.unitary ~seed:99 ~qubits:5 ~gates:30)
    ]
  in
  let all_ok = List.for_all (fun (n, c) -> verify_compilation n c) batch in

  (* a buggy "optimization": drop a single CNOT from the compiled QFT *)
  Fmt.pr "@.Injecting a bug (dropping one CNOT) into a compiled circuit:@.@.";
  let original = Circ.strip_measurements (Algorithms.Qft.static 5) in
  let compiled = (compile original).Qcompile.Mapping.circuit in
  let dropped = ref false in
  let buggy_ops =
    List.filter
      (fun op ->
        match (op : Op.t) with
        | Apply { gate = Gates.X; controls = [ _ ]; _ } when not !dropped ->
          dropped := true;
          false
        | _ -> true)
      compiled.Circ.ops
  in
  let buggy = { compiled with Circ.ops = buggy_ops; Circ.name = "qft_5_buggy" } in
  let r = Qcec.Verify.functional original buggy in
  Fmt.pr "%-24s %-14s@." "qft_5 with dropped CNOT"
    (if r.Qcec.Verify.equivalent then "equivalent (BUG MISSED!)"
     else "NOT equivalent — bug caught");
  if (not all_ok) || r.Qcec.Verify.equivalent then exit 1
