(* The Section 5 argument, live: three ways to obtain the measurement
   outcome distribution of a dynamic circuit.

     1. stochastic sampling   — repeat the whole simulation, realizing each
                                measurement/reset probabilistically; cheap
                                per run, but the answer carries O(1/sqrt N)
                                statistical error
     2. density matrices      — handle the non-unitaries natively in the
                                mixed-state picture; exact, but each state
                                is 2^n x 2^n
     3. branching extraction  — the paper's scheme: exact, pure-state
                                sized, zero-probability branches pruned

   Run with: dune exec examples/simulator_showdown.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let bits = 6 in
  let theta = Algorithms.Qpe.random_theta ~seed:2026 ~bits:(bits + 3) in
  let dyn = Algorithms.Qpe.dynamic ~theta ~bits in
  Fmt.pr "Dynamic IQPE, %d bits, theta = %.6f (not exactly representable):@.@."
    bits theta;

  let exact, t_extract = time (fun () -> Qsim.Extraction.run dyn) in
  Fmt.pr "extraction:  %.4f s, %d leaves explored, %d pruned@." t_extract
    exact.Qsim.Extraction.stats.Qsim.Extraction.leaves
    exact.Qsim.Extraction.stats.Qsim.Extraction.pruned;

  let density, t_density = time (fun () -> Qsim.Density.run dyn) in
  let density_dist = Qsim.Density.distribution density in
  Fmt.pr "density:     %.4f s, %d ensemble entries (each a %dx%d matrix)@."
    t_density (Qsim.Density.entries density)
    (1 lsl dyn.Circuit.Circ.num_qubits)
    (1 lsl dyn.Circuit.Circ.num_qubits);

  let shots = 4096 in
  let sampled, t_sample = time (fun () -> Qsim.Sampler.run ~seed:1 ~shots dyn) in
  Fmt.pr "sampling:    %.4f s for %d shots@." t_sample shots;

  let tvd_density =
    Qcec.Distribution.total_variation exact.Qsim.Extraction.distribution density_dist
  in
  let tvd_sample =
    Qcec.Distribution.total_variation exact.Qsim.Extraction.distribution
      (Qsim.Sampler.empirical sampled)
  in
  Fmt.pr "@.agreement with the exact distribution:@.";
  Fmt.pr "  density matrices: TVD = %.3g (exact, as expected)@." tvd_density;
  Fmt.pr "  sampling:         TVD = %.3g (statistical error at %d shots)@."
    tvd_sample shots;

  Fmt.pr "@.top outcomes (exact):@.%a@." Qcec.Distribution.pp
    (Qcec.Distribution.most_probable ~count:4 exact.Qsim.Extraction.distribution);
  if tvd_density > 1e-9 then exit 1
