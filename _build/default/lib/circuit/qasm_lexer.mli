(** Hand-written lexer for the OpenQASM 2.0 subset accepted by
    {!Qasm_parser}. *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMICOLON
  | COMMA
  | ARROW  (** [->] *)
  | EQEQ  (** [==] *)
  | EQUALS  (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of string * int  (** message, line number *)

(** [tokenize src] lexes the whole input, stripping [//] comments.  Each
    token is paired with its 1-based line number. *)
val tokenize : string -> (token * int) list

val pp_token : Format.formatter -> token -> unit
