let pp_params ppf gate =
  match Gates.params gate with
  | [] -> ()
  | ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") (fmt "%.17g")) ps

let rec pp_op ppf op =
  match (op : Op.t) with
  | Apply { gate; controls = []; target } ->
    Fmt.pf ppf "%s%a q[%d];" (Gates.name gate) pp_params gate target
  | Apply { gate; controls; target } ->
    let negatives = List.filter (fun (c : Op.control) -> not c.pos) controls in
    let flip (c : Op.control) = Fmt.pf ppf "x q[%d];@," c.cq in
    List.iter flip negatives;
    pp_positive ppf gate (List.map (fun (c : Op.control) -> c.cq) controls) target;
    List.iter flip negatives
  | Swap (a, b) -> Fmt.pf ppf "swap q[%d], q[%d];" a b
  | Measure { qubit; cbit } -> Fmt.pf ppf "c[%d] = measure q[%d];" cbit qubit
  | Reset q -> Fmt.pf ppf "reset q[%d];" q
  | Cond { cond = { bits = [ bit ]; value }; op } ->
    Fmt.pf ppf "if (c[%d] == %d) { %a }" bit value pp_op op
  | Cond _ -> failwith "Qasm3_printer: multi-bit conditions are not supported"
  | Barrier qs ->
    Fmt.pf ppf "barrier %a;" Fmt.(list ~sep:(any ", ") (fmt "q[%d]")) qs

and pp_positive ppf gate controls target =
  match (gate, controls) with
  | Gates.X, [ c ] -> Fmt.pf ppf "cx q[%d], q[%d];" c target
  | Gates.X, [ c1; c2 ] -> Fmt.pf ppf "ccx q[%d], q[%d], q[%d];" c1 c2 target
  | Gates.Y, [ c ] -> Fmt.pf ppf "cy q[%d], q[%d];" c target
  | Gates.Z, [ c ] -> Fmt.pf ppf "cz q[%d], q[%d];" c target
  | Gates.H, [ c ] -> Fmt.pf ppf "ch q[%d], q[%d];" c target
  | Gates.P lam, [ c ] -> Fmt.pf ppf "cp(%.17g) q[%d], q[%d];" lam c target
  | Gates.RZ theta, [ c ] -> Fmt.pf ppf "crz(%.17g) q[%d], q[%d];" theta c target
  | Gates.U3 (t, p, l), [ c ] ->
    Fmt.pf ppf "cu3(%.17g,%.17g,%.17g) q[%d], q[%d];" t p l c target
  | _ ->
    failwith
      (Fmt.str
         "Qasm3_printer: no supported spelling for controlled %s with %d controls"
         (Gates.name gate) (List.length controls))

let pp ppf (c : Circ.t) =
  Fmt.pf ppf "@[<v>OPENQASM 3.0;@,include \"stdgates.inc\";@,";
  Fmt.pf ppf "qubit[%d] q;@," c.num_qubits;
  if c.num_cbits > 0 then Fmt.pf ppf "bit[%d] c;@," c.num_cbits;
  List.iter (fun op -> Fmt.pf ppf "%a@," pp_op op) c.ops;
  Fmt.pf ppf "@]"

let to_string c = Fmt.str "%a" pp c

let to_file path c =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp ppf c;
  Format.pp_print_flush ppf ();
  close_out oc
