(** OpenQASM 3 output — the language whose dynamic-circuit primitives
    (mid-circuit measurement assignment, [reset], [if] over measured bits)
    motivate the paper.

    Emits one [qubit[n] q;] and one [bit[m] c;] declaration, stdgates
    mnemonics, measurements as [c[i] = measure q[j];], and single-bit
    conditions as [if (c[k] == v) { ... }].

    @raise Failure on operations with no supported OpenQASM 3 spelling
    (multi-bit conditions, exotic multi-controlled gates). *)

val pp : Format.formatter -> Circ.t -> unit
val to_string : Circ.t -> string
val to_file : string -> Circ.t -> unit
