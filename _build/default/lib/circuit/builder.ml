type t =
  { name : string
  ; qubits : int
  ; cbits : int
  ; mutable rev_ops : Op.t list
  }

let create ~qubits ~cbits name = { name; qubits; cbits; rev_ops = [] }
let add b op = b.rev_ops <- op :: b.rev_ops

let finish b =
  Circ.make ~name:b.name ~qubits:b.qubits ~cbits:b.cbits (List.rev b.rev_ops)

let gate1 g b q = add b (Op.apply g q)
let x = gate1 Gates.X
let y = gate1 Gates.Y
let z = gate1 Gates.Z
let h = gate1 Gates.H
let s = gate1 Gates.S
let sdg = gate1 Gates.Sdg
let tgate = gate1 Gates.T
let tdg = gate1 Gates.Tdg
let sx = gate1 Gates.SX
let rx b theta q = add b (Op.apply (Gates.RX theta) q)
let ry b theta q = add b (Op.apply (Gates.RY theta) q)
let rz b theta q = add b (Op.apply (Gates.RZ theta) q)
let p b lam q = add b (Op.apply (Gates.P lam) q)
let u3 b theta phi lam q = add b (Op.apply (Gates.U3 (theta, phi, lam)) q)
let cx b c t = add b (Op.controlled Gates.X ~control:c ~target:t)
let cz b c t = add b (Op.controlled Gates.Z ~control:c ~target:t)
let cp b lam c t = add b (Op.controlled (Gates.P lam) ~control:c ~target:t)

let ccx b c1 c2 t =
  add b
    (Op.Apply
       { gate = Gates.X
       ; controls = [ { cq = c1; pos = true }; { cq = c2; pos = true } ]
       ; target = t
       })

let swap b a c = add b (Op.Swap (a, c))
let measure b q c = add b (Op.Measure { qubit = q; cbit = c })
let reset b q = add b (Op.Reset q)
let if_bit b ~bit ~value op = add b (Op.if_bit ~bit ~value op)
let barrier b qs = add b (Op.Barrier qs)
