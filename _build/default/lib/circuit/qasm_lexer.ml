type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMICOLON
  | COMMA
  | ARROW
  | EQEQ
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let len = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let rec go i =
    if i >= len then emit EOF
    else begin
      match src.[i] with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < len && src.[i + 1] = '/' ->
        let rec skip j = if j < len && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '(' ->
        emit LPAREN;
        go (i + 1)
      | ')' ->
        emit RPAREN;
        go (i + 1)
      | '[' ->
        emit LBRACKET;
        go (i + 1)
      | ']' ->
        emit RBRACKET;
        go (i + 1)
      | '{' ->
        emit LBRACE;
        go (i + 1)
      | '}' ->
        emit RBRACE;
        go (i + 1)
      | ';' ->
        emit SEMICOLON;
        go (i + 1)
      | ',' ->
        emit COMMA;
        go (i + 1)
      | '+' ->
        emit PLUS;
        go (i + 1)
      | '*' ->
        emit STAR;
        go (i + 1)
      | '/' ->
        emit SLASH;
        go (i + 1)
      | '-' when i + 1 < len && src.[i + 1] = '>' ->
        emit ARROW;
        go (i + 2)
      | '-' ->
        emit MINUS;
        go (i + 1)
      | '=' when i + 1 < len && src.[i + 1] = '=' ->
        emit EQEQ;
        go (i + 2)
      | '=' ->
        emit EQUALS;
        go (i + 1)
      | '"' ->
        let rec scan j =
          if j >= len then raise (Lex_error ("unterminated string", !line))
          else if src.[j] = '"' then j
          else scan (j + 1)
        in
        let close = scan (i + 1) in
        emit (STRING (String.sub src (i + 1) (close - i - 1)));
        go (close + 1)
      | c when is_digit c || (c = '.' && i + 1 < len && is_digit src.[i + 1]) ->
        let rec scan j seen_dot seen_exp =
          if j >= len then j
          else begin
            match src.[j] with
            | c when is_digit c -> scan (j + 1) seen_dot seen_exp
            | '.' when not seen_dot -> scan (j + 1) true seen_exp
            | 'e' | 'E' when not seen_exp -> scan (j + 1) seen_dot true
            | '+' | '-' when j > i && (src.[j - 1] = 'e' || src.[j - 1] = 'E') ->
              scan (j + 1) seen_dot seen_exp
            | _ -> j
          end
        in
        let stop = scan i false false in
        let text = String.sub src i (stop - i) in
        (match float_of_string_opt text with
         | Some f -> emit (NUMBER f)
         | None -> raise (Lex_error ("bad number: " ^ text, !line)));
        go stop
      | c when is_ident_start c ->
        let rec scan j = if j < len && is_ident_char src.[j] then scan (j + 1) else j in
        let stop = scan (i + 1) in
        emit (IDENT (String.sub src i (stop - i)));
        go stop
      | c -> raise (Lex_error (Fmt.str "unexpected character %C" c, !line))
    end
  in
  go 0;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | NUMBER f -> Fmt.pf ppf "number %g" f
  | STRING s -> Fmt.pf ppf "string %S" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | SEMICOLON -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | ARROW -> Fmt.string ppf "'->'"
  | EQEQ -> Fmt.string ppf "'=='"
  | EQUALS -> Fmt.string ppf "'='"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | SLASH -> Fmt.string ppf "'/'"
  | EOF -> Fmt.string ppf "end of input"
