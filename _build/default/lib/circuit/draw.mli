(** ASCII rendering of circuits, used to reproduce the paper's figures in
    terminal output.

    Layout: one text row per qubit plus connector rows in between; operations
    are packed greedily into columns from the left.  Controls are drawn as
    [*] (positive) or [o] (negative), swaps as [x], measurements as [M=ck],
    resets as [|0>], and a classically-conditioned gate carries a [?ck=v]
    suffix in its label. *)

(** [render ?max_columns c] lays the circuit out as a list of text lines.
    Circuits wider than [max_columns] (default 500) are truncated with an
    ellipsis marker. *)
val render : ?max_columns:int -> Circ.t -> string list

val pp : Format.formatter -> Circ.t -> unit
val print : Circ.t -> unit
