(** Single-qubit gate alphabet.

    Multi-qubit operations are expressed as controlled versions of these (see
    {!Op}), which is the universal form decision-diagram construction
    consumes.  Angles are in radians. *)

type t =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | SX
  | SXdg
  | RX of float
  | RY of float
  | RZ of float
  | P of float  (** phase gate diag(1, e^{i lambda}); [P pi = Z] *)
  | U2 of float * float
  | U3 of float * float * float
      (** IBM's generic single-qubit gate
          [u3(theta, phi, lambda)] *)

(** [matrix g] is the 2x2 unitary, row-major [|u00; u01; u10; u11|]. *)
val matrix : t -> Cxnum.Cx.t array

(** [adjoint g] is a gate whose matrix is the conjugate transpose of
    [matrix g]. *)
val adjoint : t -> t

(** [name g] is the lower-case OpenQASM mnemonic (without parameters). *)
val name : t -> string

(** [params g] lists the angle parameters, possibly empty. *)
val params : t -> float list

(** [equal ~tol a b] compares structurally, angles within [tol]. *)
val equal : tol:float -> t -> t -> bool

(** [to_u3 g] expresses any gate as an equivalent [U3] (up to global
    phase). *)
val to_u3 : t -> t

(** [global_phase_to_u3 g] is the phase [alpha] such that
    [matrix g = exp(i alpha) * matrix (to_u3 g)]. *)
val global_phase_to_u3 : t -> float

val pp : Format.formatter -> t -> unit
