type t =
  { depth : int
  ; two_qubit_gates : int
  ; unitary_gates : int
  ; measurements : int
  ; resets : int
  ; conditioned : int
  ; qubit_activity : int array
  }

let compute (c : Circ.t) =
  let counts = Circ.op_counts c in
  let qubit_level = Array.make (max c.Circ.num_qubits 1) 0 in
  let cbit_level = Array.make (max c.Circ.num_cbits 1) 0 in
  let activity = Array.make (max c.Circ.num_qubits 1) 0 in
  let two_qubit = ref 0 in
  let depth = ref 0 in
  let place op =
    match (op : Op.t) with
    | Barrier _ -> ()
    | _ ->
      let qs = List.sort_uniq compare (Op.qubits op) in
      let cs =
        List.sort_uniq compare (Op.cbits_read op @ Op.cbits_written op)
      in
      if List.length qs >= 2 then incr two_qubit;
      List.iter (fun q -> activity.(q) <- activity.(q) + 1) qs;
      let level =
        1
        + List.fold_left (fun acc q -> max acc qubit_level.(q)) 0 qs
        |> fun l -> List.fold_left (fun acc b -> max acc (cbit_level.(b) + 1)) l cs
      in
      List.iter (fun q -> qubit_level.(q) <- level) qs;
      List.iter (fun b -> cbit_level.(b) <- level) cs;
      if level > !depth then depth := level
  in
  List.iter place c.Circ.ops;
  { depth = !depth
  ; two_qubit_gates = !two_qubit
  ; unitary_gates = counts.Circ.gates
  ; measurements = counts.Circ.measurements
  ; resets = counts.Circ.resets
  ; conditioned = counts.Circ.conditioned
  ; qubit_activity = Array.sub activity 0 c.Circ.num_qubits
  }

let pp ppf s =
  Fmt.pf ppf
    "depth %d, %d unitary gates (%d two-qubit), %d measurements, %d resets, %d \
     conditioned"
    s.depth s.unitary_gates s.two_qubit_gates s.measurements s.resets s.conditioned
