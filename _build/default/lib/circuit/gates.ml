module Cx = Cxnum.Cx

type t =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | SX
  | SXdg
  | RX of float
  | RY of float
  | RZ of float
  | P of float
  | U2 of float * float
  | U3 of float * float * float

let half = 0.5

(* Phases of common angles go through [Cx.e_i_pi] so that multiples of pi/4
   hit exact constants instead of accumulating transcendental drift. *)
let e_i theta = Cx.e_i_pi (theta /. Float.pi)

let u3_matrix theta phi lam =
  let c = Cx.of_float (Float.cos (half *. theta)) in
  let s = Float.sin (half *. theta) in
  [| c
   ; Cx.mul (Cx.of_float (-.s)) (e_i lam)
   ; Cx.mul (Cx.of_float s) (e_i phi)
   ; Cx.mul c (e_i (phi +. lam))
  |]

let matrix = function
  | I -> [| Cx.one; Cx.zero; Cx.zero; Cx.one |]
  | X -> [| Cx.zero; Cx.one; Cx.one; Cx.zero |]
  | Y -> [| Cx.zero; Cx.neg Cx.i; Cx.i; Cx.zero |]
  | Z -> [| Cx.one; Cx.zero; Cx.zero; Cx.minus_one |]
  | H ->
    let a = Cx.of_float Cx.sqrt2_inv in
    [| a; a; a; Cx.neg a |]
  | S -> [| Cx.one; Cx.zero; Cx.zero; Cx.i |]
  | Sdg -> [| Cx.one; Cx.zero; Cx.zero; Cx.neg Cx.i |]
  | T -> [| Cx.one; Cx.zero; Cx.zero; Cx.e_i_pi 0.25 |]
  | Tdg -> [| Cx.one; Cx.zero; Cx.zero; Cx.e_i_pi (-0.25) |]
  | SX ->
    let p = Cx.make 0.5 0.5 and m = Cx.make 0.5 (-0.5) in
    [| p; m; m; p |]
  | SXdg ->
    let p = Cx.make 0.5 0.5 and m = Cx.make 0.5 (-0.5) in
    [| m; p; p; m |]
  | RX theta ->
    let c = Cx.of_float (Float.cos (half *. theta)) in
    let s = Cx.make 0.0 (-.Float.sin (half *. theta)) in
    [| c; s; s; c |]
  | RY theta ->
    let c = Cx.of_float (Float.cos (half *. theta)) in
    let s = Float.sin (half *. theta) in
    [| c; Cx.of_float (-.s); Cx.of_float s; c |]
  | RZ theta -> [| e_i (-.half *. theta); Cx.zero; Cx.zero; e_i (half *. theta) |]
  | P lam -> [| Cx.one; Cx.zero; Cx.zero; e_i lam |]
  | U2 (phi, lam) -> u3_matrix (half *. Float.pi) phi lam
  | U3 (theta, phi, lam) -> u3_matrix theta phi lam

let adjoint = function
  | I -> I
  | X -> X
  | Y -> Y
  | Z -> Z
  | H -> H
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | SX -> SXdg
  | SXdg -> SX
  | RX theta -> RX (-.theta)
  | RY theta -> RY (-.theta)
  | RZ theta -> RZ (-.theta)
  | P lam -> P (-.lam)
  | U2 (phi, lam) -> U3 (-.half *. Float.pi, -.lam, -.phi)
  | U3 (theta, phi, lam) -> U3 (-.theta, -.lam, -.phi)

let name = function
  | I -> "id"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | SX -> "sx"
  | SXdg -> "sxdg"
  | RX _ -> "rx"
  | RY _ -> "ry"
  | RZ _ -> "rz"
  | P _ -> "p"
  | U2 _ -> "u2"
  | U3 _ -> "u3"

let params = function
  | I | X | Y | Z | H | S | Sdg | T | Tdg | SX | SXdg -> []
  | RX a | RY a | RZ a | P a -> [ a ]
  | U2 (a, b) -> [ a; b ]
  | U3 (a, b, c) -> [ a; b; c ]

let equal ~tol a b =
  name a = name b
  && List.for_all2 (fun x y -> Float.abs (x -. y) <= tol) (params a) (params b)

let to_u3 = function
  | I -> U3 (0.0, 0.0, 0.0)
  | X -> U3 (Float.pi, 0.0, Float.pi)
  | Y -> U3 (Float.pi, half *. Float.pi, half *. Float.pi)
  | Z -> U3 (0.0, 0.0, Float.pi)
  | H -> U3 (half *. Float.pi, 0.0, Float.pi)
  | S -> U3 (0.0, 0.0, half *. Float.pi)
  | Sdg -> U3 (0.0, 0.0, -.half *. Float.pi)
  | T -> U3 (0.0, 0.0, 0.25 *. Float.pi)
  | Tdg -> U3 (0.0, 0.0, -0.25 *. Float.pi)
  | SX -> U3 (half *. Float.pi, -.half *. Float.pi, half *. Float.pi)
  | SXdg -> U3 (half *. Float.pi, half *. Float.pi, -.half *. Float.pi)
  | RX theta -> U3 (theta, -.half *. Float.pi, half *. Float.pi)
  | RY theta -> U3 (theta, 0.0, 0.0)
  | RZ theta -> U3 (0.0, 0.0, theta)
  | P lam -> U3 (0.0, 0.0, lam)
  | U2 (phi, lam) -> U3 (half *. Float.pi, phi, lam)
  | U3 (theta, phi, lam) -> U3 (theta, phi, lam)

let global_phase_to_u3 = function
  | SX -> 0.25 *. Float.pi
  | SXdg -> -0.25 *. Float.pi
  | RZ theta -> -.half *. theta
  | I | X | Y | Z | H | S | Sdg | T | Tdg | RX _ | RY _ | P _ | U2 _ | U3 _ -> 0.0

let pp ppf g =
  match params g with
  | [] -> Fmt.pf ppf "%s" (name g)
  | ps -> Fmt.pf ppf "%s(%a)" (name g) Fmt.(list ~sep:(any ",") float) ps
