(* Angles are pretty-printed as small multiples of pi when possible, which
   keeps the paper's circuits legible (e.g. p(3pi/4)). *)
let angle_label a =
  let ratio = a /. Float.pi in
  let try_denominator d =
    let num = ratio *. float_of_int d in
    if Float.abs (num -. Float.round num) < 1e-9 then begin
      let n = int_of_float (Float.round num) in
      if n = 0 then Some "0"
      else begin
        let sign = if n < 0 then "-" else "" in
        let n = abs n in
        match (n, d) with
        | 1, 1 -> Some (sign ^ "pi")
        | _, 1 -> Some (Fmt.str "%s%dpi" sign n)
        | 1, _ -> Some (Fmt.str "%spi/%d" sign d)
        | _ -> Some (Fmt.str "%s%dpi/%d" sign n d)
      end
    end
    else None
  in
  let rec search = function
    | [] -> Fmt.str "%.3f" a
    | d :: rest -> (match try_denominator d with Some s -> s | None -> search rest)
  in
  search [ 1; 2; 3; 4; 6; 8; 16; 32; 64; 128; 256 ]

let gate_label (g : Gates.t) =
  match Gates.params g with
  | [] -> String.uppercase_ascii (Gates.name g)
  | ps ->
    Fmt.str "%s(%s)"
      (String.uppercase_ascii (Gates.name g))
      (String.concat "," (List.map angle_label ps))

(* A rendered column: a label or marker per involved qubit row, plus the
   inclusive qubit span that must be vertically connected. *)
type cell =
  | Box of string
  | Ctrl of bool
  | Cross

type column =
  { cells : (int * cell) list
  ; span : int * int
  }

let rec column_of_op (op : Op.t) =
  match op with
  | Apply { gate; controls; target } ->
    let cells =
      (target, Box (gate_label gate))
      :: List.map (fun (c : Op.control) -> (c.cq, Ctrl c.pos)) controls
    in
    let qs = List.map fst cells in
    { cells; span = (List.fold_left min target qs, List.fold_left max target qs) }
  | Swap (a, b) ->
    { cells = [ (a, Cross); (b, Cross) ]; span = (min a b, max a b) }
  | Measure { qubit; cbit } ->
    { cells = [ (qubit, Box (Fmt.str "M=c%d" cbit)) ]; span = (qubit, qubit) }
  | Reset q -> { cells = [ (q, Box "|0>") ]; span = (q, q) }
  | Cond { cond; op } ->
    let inner = column_of_op op in
    let suffix =
      match cond.bits with
      | [ b ] -> Fmt.str "?c%d=%d" b cond.value
      | bs ->
        Fmt.str "?c[%s]=%d" (String.concat "," (List.map string_of_int bs)) cond.value
    in
    let tag = function
      | Box s -> Box (s ^ suffix)
      | (Ctrl _ | Cross) as cell -> cell
    in
    { inner with
      cells = List.map (fun (q, cell) -> (q, tag cell)) inner.cells
    }
  | Barrier qs ->
    let qs = match qs with [] -> [ 0 ] | _ -> qs in
    { cells = List.map (fun q -> (q, Box "~")) qs
    ; span = (List.fold_left min (List.hd qs) qs, List.fold_left max (List.hd qs) qs)
    }

(* Greedy left packing: a column of the drawing holds several operations as
   long as their qubit spans do not overlap. *)
let pack_columns ops =
  let columns : column list list ref = ref [] in
  let place op =
    let col = column_of_op op in
    let overlaps existing =
      let lo1, hi1 = col.span in
      List.exists
        (fun c ->
          let lo2, hi2 = c.span in
          not (hi1 < lo2 || hi2 < lo1))
        existing
    in
    match !columns with
    | last :: rest when not (overlaps last) -> columns := (col :: last) :: rest
    | _ -> columns := [ col ] :: !columns
  in
  List.iter place ops;
  List.rev_map List.rev !columns

let render ?(max_columns = 500) (c : Circ.t) =
  let packed = pack_columns c.ops in
  let truncated = List.length packed > max_columns in
  let packed = List.filteri (fun i _ -> i < max_columns) packed in
  let nrows = (2 * c.num_qubits) - 1 in
  let row_of_q q = 2 * q in
  let buffers = Array.init (max nrows 1) (fun _ -> Buffer.create 256) in
  let pad_to width =
    Array.iter
      (fun b ->
        while Buffer.length b < width do
          Buffer.add_char b ' '
        done)
      buffers
  in
  (* wire prefix *)
  for q = 0 to c.num_qubits - 1 do
    Buffer.add_string buffers.(row_of_q q) (Fmt.str "q%-2d: " q)
  done;
  pad_to (Array.fold_left (fun acc b -> max acc (Buffer.length b)) 0 buffers);
  let emit_column cols =
    let width =
      List.fold_left
        (fun acc col ->
          List.fold_left
            (fun acc (_, cell) ->
              match cell with
              | Box s -> max acc (String.length s + 2)
              | Ctrl _ | Cross -> max acc 3)
            acc col.cells)
        3 cols
    in
    let base = Buffer.length buffers.(0) in
    pad_to base;
    (* default: wires on qubit rows, blanks between *)
    for q = 0 to c.num_qubits - 1 do
      Buffer.add_string buffers.(row_of_q q) (String.make width '-')
    done;
    for q = 0 to c.num_qubits - 2 do
      Buffer.add_string buffers.((2 * q) + 1) (String.make width ' ')
    done;
    let set_text row text =
      let b = buffers.(row) in
      let s = Buffer.to_bytes b in
      let start = base + ((width - String.length text) / 2) in
      String.iteri (fun i ch -> Bytes.set s (start + i) ch) text;
      Buffer.clear b;
      Buffer.add_bytes b s
    in
    let draw_col col =
      let lo, hi = col.span in
      (* vertical connector through the span *)
      if hi > lo then
        for row = (2 * lo) + 1 to (2 * hi) - 1 do
          set_text row "|"
        done;
      let draw_cell (q, cell) =
        let text =
          match cell with
          | Box s -> "[" ^ s ^ "]"
          | Ctrl true -> "*"
          | Ctrl false -> "o"
          | Cross -> "x"
        in
        set_text (row_of_q q) text
      in
      List.iter draw_cell col.cells
    in
    List.iter draw_col cols
  in
  List.iter emit_column packed;
  if truncated then
    for q = 0 to c.num_qubits - 1 do
      Buffer.add_string buffers.(row_of_q q) "..."
    done;
  Array.to_list (Array.map Buffer.contents buffers)
  |> List.filter (fun line -> String.trim line <> "" || true)

let pp ppf c = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut string) (render c)
let print c = List.iter print_endline (render c)
