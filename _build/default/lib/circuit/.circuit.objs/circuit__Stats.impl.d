lib/circuit/stats.ml: Array Circ Fmt List Op
