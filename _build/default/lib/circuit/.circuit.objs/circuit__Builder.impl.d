lib/circuit/builder.ml: Circ Gates List Op
