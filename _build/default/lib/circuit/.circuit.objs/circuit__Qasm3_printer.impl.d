lib/circuit/qasm3_printer.ml: Circ Fmt Format Gates List Op
