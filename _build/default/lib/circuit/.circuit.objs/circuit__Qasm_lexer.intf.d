lib/circuit/qasm_lexer.mli: Format
