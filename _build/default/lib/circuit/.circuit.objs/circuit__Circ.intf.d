lib/circuit/circ.mli: Format Op
