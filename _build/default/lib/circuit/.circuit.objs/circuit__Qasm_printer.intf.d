lib/circuit/qasm_printer.mli: Circ Format
