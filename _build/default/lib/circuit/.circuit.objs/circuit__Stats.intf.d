lib/circuit/stats.mli: Circ Format
