lib/circuit/qasm_printer.ml: Circ Fmt Format Gates List Op
