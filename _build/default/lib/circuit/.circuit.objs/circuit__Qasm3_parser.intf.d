lib/circuit/qasm3_parser.mli: Circ
