lib/circuit/gates.ml: Cxnum Float Fmt List
