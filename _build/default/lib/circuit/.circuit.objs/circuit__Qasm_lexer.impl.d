lib/circuit/qasm_lexer.ml: Fmt List String
