lib/circuit/qasm3_printer.mli: Circ Format
