lib/circuit/qasm_parser.ml: Circ Filename Float Fmt Gates Hashtbl List Op Qasm_lexer
