lib/circuit/qasm_parser.mli: Circ Op Qasm_lexer
