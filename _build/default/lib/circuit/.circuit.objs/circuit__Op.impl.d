lib/circuit/op.ml: Fmt Gates List
