lib/circuit/op.mli: Format Gates
