lib/circuit/gates.mli: Cxnum Format
