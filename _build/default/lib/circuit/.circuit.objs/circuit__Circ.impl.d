lib/circuit/circ.ml: Array Fmt List Op
