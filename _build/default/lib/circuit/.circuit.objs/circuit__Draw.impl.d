lib/circuit/draw.ml: Array Buffer Bytes Circ Float Fmt Gates List Op String
