lib/circuit/builder.mli: Circ Op
