lib/circuit/qasm3_parser.ml: Filename Fmt List Op Qasm_lexer Qasm_parser
