(** Imperative circuit builder with gate-level convenience functions.

    Typical use:
    {[
      let b = Builder.create ~qubits:3 ~cbits:3 "demo" in
      Builder.h b 0;
      Builder.cx b 0 1;
      Builder.measure b 0 0;
      let circuit = Builder.finish b
    ]} *)

type t

val create : qubits:int -> cbits:int -> string -> t

(** [add b op] appends a raw operation. *)
val add : t -> Op.t -> unit

(** [finish b] validates and returns the circuit. *)
val finish : t -> Circ.t

(** {1 Single-qubit gates} *)

val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val h : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit
val tgate : t -> int -> unit
val tdg : t -> int -> unit
val sx : t -> int -> unit
val rx : t -> float -> int -> unit
val ry : t -> float -> int -> unit
val rz : t -> float -> int -> unit
val p : t -> float -> int -> unit
val u3 : t -> float -> float -> float -> int -> unit

(** {1 Controlled gates} ([control] first, [target] second) *)

val cx : t -> int -> int -> unit
val cz : t -> int -> int -> unit
val cp : t -> float -> int -> int -> unit
val ccx : t -> int -> int -> int -> unit
val swap : t -> int -> int -> unit

(** {1 Non-unitary primitives} *)

val measure : t -> int -> int -> unit

val reset : t -> int -> unit

(** [if_bit b ~bit ~value op] appends [op] conditioned on classical [bit]
    holding [value]. *)
val if_bit : t -> bit:int -> value:bool -> Op.t -> unit

val barrier : t -> int list -> unit
