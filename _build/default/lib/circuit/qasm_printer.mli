(** OpenQASM 2.0 output (with the `reset` and per-bit `if` style used by
    IBM's dynamic-circuit examples).

    Classical bits are emitted as one single-bit register each ([creg c0[1];
    creg c1[1]; ...]) so that single-bit classical conditions — the only kind
    the paper's circuits need — are expressible in OpenQASM 2.0 [if]
    statements.

    @raise Failure on operations with no OpenQASM 2.0 spelling (multi-bit
    conditions, exotic multi-controlled gates). *)

val pp : Format.formatter -> Circ.t -> unit
val to_string : Circ.t -> string
val to_file : string -> Circ.t -> unit
