(** Structural circuit metrics: depth, two-qubit gate count, per-qubit
    activity — the numbers compilation papers (this one included) report
    next to raw gate counts. *)

type t =
  { depth : int
        (** longest dependency chain; operations on disjoint qubits (and
            classical bits) may share a layer, measurements and conditions
            chain through their classical bit *)
  ; two_qubit_gates : int  (** gates touching >= 2 qubits, swaps included *)
  ; unitary_gates : int
  ; measurements : int
  ; resets : int
  ; conditioned : int
  ; qubit_activity : int array  (** operations touching each qubit *)
  }

val compute : Circ.t -> t
val pp : Format.formatter -> t -> unit
