(** Graphviz export of decision diagrams, for debugging and documentation. *)

open Types

(** [vector ppf e] prints a DOT digraph of the vector DD rooted at [e]. *)
val vector : Format.formatter -> vedge -> unit

(** [matrix ppf e] prints a DOT digraph of the matrix DD rooted at [e]. *)
val matrix : Format.formatter -> medge -> unit

(** [vector_to_file path e] and [matrix_to_file path e] write the DOT text
    to [path]. *)
val vector_to_file : string -> vedge -> unit

val matrix_to_file : string -> medge -> unit
