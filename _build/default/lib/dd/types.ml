(* Node and edge representations shared by the whole DD package.

   Decision diagrams here are *quasi-reduced*: every root-to-terminal path
   visits every variable level in order, with one exception — an edge whose
   weight is (canonical) zero always points directly to the terminal and
   stands for the all-zero vector/matrix of whatever dimension its context
   requires.  This keeps every recursive algorithm a simple simultaneous
   descent without level-skipping case analysis. *)

type weight = Cxnum.Cx_table.value

(* Vector DDs: a node at variable [vvar] splits on qubit [vvar]; [v0] is the
   |0>-successor, [v1] the |1>-successor.  [vt = None] is the terminal. *)
type vnode =
  { vid : int
  ; vvar : int
  ; v0 : vedge
  ; v1 : vedge
  }

and vedge =
  { vw : weight
  ; vt : vnode option
  }

(* Matrix DDs: four successors indexed row-major, [m.(2*i + j)] being the
   block mapping |j> to |i> on qubit [mvar]. *)
type mnode =
  { mid : int
  ; mvar : int
  ; m00 : medge
  ; m01 : medge
  ; m10 : medge
  ; m11 : medge
  }

and medge =
  { mw : weight
  ; mt : mnode option
  }

let vedge_is_zero e = Cxnum.Cx_table.is_zero e.vw
let medge_is_zero e = Cxnum.Cx_table.is_zero e.mw
let vnode_id = function None -> -1 | Some n -> n.vid
let mnode_id = function None -> -1 | Some n -> n.mid

(* Keys for the unique tables: variable index plus the weight ids and target
   node ids of all successors. *)
type vkey = int * (int * int) * (int * int)
type mkey = int * (int * int) * (int * int) * (int * int) * (int * int)

let vkey_of var (e0 : vedge) (e1 : vedge) : vkey =
  (var, (e0.vw.id, vnode_id e0.vt), (e1.vw.id, vnode_id e1.vt))

let mkey_of var (e00 : medge) (e01 : medge) (e10 : medge) (e11 : medge) : mkey =
  ( var
  , (e00.mw.id, mnode_id e00.mt)
  , (e01.mw.id, mnode_id e01.mt)
  , (e10.mw.id, mnode_id e10.mt)
  , (e11.mw.id, mnode_id e11.mt) )
