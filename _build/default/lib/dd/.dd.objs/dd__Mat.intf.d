lib/dd/mat.mli: Cxnum Pkg Types
