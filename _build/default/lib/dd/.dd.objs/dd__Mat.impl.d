lib/dd/mat.ml: Array Cxnum Float Hashtbl Pkg Types Vec
