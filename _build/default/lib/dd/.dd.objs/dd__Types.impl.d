lib/dd/types.ml: Cxnum
