lib/dd/dot.mli: Format Types
