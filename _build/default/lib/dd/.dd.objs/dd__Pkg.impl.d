lib/dd/pkg.ml: Array Cxnum Float Hashtbl List Types
