lib/dd/dot.ml: Cxnum Fmt Format Hashtbl Types
