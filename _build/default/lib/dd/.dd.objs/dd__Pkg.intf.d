lib/dd/pkg.mli: Cxnum Hashtbl Types
