lib/dd/vec.ml: Array Cxnum Float Hashtbl List Pkg Types
