lib/dd/vec.mli: Cxnum Pkg Types
