open Types
module Ct = Cxnum.Cx_table

let weight_label (w : weight) = Fmt.str "%a" Ct.pp w

let vector ppf (root : vedge) =
  Fmt.pf ppf "digraph vector_dd {@.";
  Fmt.pf ppf "  root [shape=point];@.";
  Fmt.pf ppf "  t [label=\"1\", shape=box];@.";
  let seen = Hashtbl.create 64 in
  let rec node = function
    | None -> ()
    | Some n ->
      if not (Hashtbl.mem seen n.vid) then begin
        Hashtbl.add seen n.vid ();
        Fmt.pf ppf "  v%d [label=\"q%d\", shape=circle];@." n.vid n.vvar;
        edge n.vid 0 n.v0;
        edge n.vid 1 n.v1
      end
  and edge src branch (e : vedge) =
    if not (vedge_is_zero e) then begin
      let dst = match e.vt with None -> "t" | Some m -> Fmt.str "v%d" m.vid in
      let style = if branch = 0 then "dashed" else "solid" in
      Fmt.pf ppf "  v%d -> %s [label=\"%s\", style=%s];@." src dst
        (weight_label e.vw) style;
      node e.vt
    end
  in
  if vedge_is_zero root then Fmt.pf ppf "  root -> t [label=\"0\"];@."
  else begin
    let dst = match root.vt with None -> "t" | Some m -> Fmt.str "v%d" m.vid in
    Fmt.pf ppf "  root -> %s [label=\"%s\"];@." dst (weight_label root.vw);
    node root.vt
  end;
  Fmt.pf ppf "}@."

let matrix ppf (root : medge) =
  Fmt.pf ppf "digraph matrix_dd {@.";
  Fmt.pf ppf "  root [shape=point];@.";
  Fmt.pf ppf "  t [label=\"1\", shape=box];@.";
  let seen = Hashtbl.create 64 in
  let rec node = function
    | None -> ()
    | Some n ->
      if not (Hashtbl.mem seen n.mid) then begin
        Hashtbl.add seen n.mid ();
        Fmt.pf ppf "  m%d [label=\"q%d\", shape=circle];@." n.mid n.mvar;
        edge n.mid "00" n.m00;
        edge n.mid "01" n.m01;
        edge n.mid "10" n.m10;
        edge n.mid "11" n.m11
      end
  and edge src branch (e : medge) =
    if not (medge_is_zero e) then begin
      let dst = match e.mt with None -> "t" | Some m -> Fmt.str "m%d" m.mid in
      Fmt.pf ppf "  m%d -> %s [label=\"%s:%s\"];@." src dst branch
        (weight_label e.mw);
      node e.mt
    end
  in
  if medge_is_zero root then Fmt.pf ppf "  root -> t [label=\"0\"];@."
  else begin
    let dst = match root.mt with None -> "t" | Some m -> Fmt.str "m%d" m.mid in
    Fmt.pf ppf "  root -> %s [label=\"%s\"];@." dst (weight_label root.mw);
    node root.mt
  end;
  Fmt.pf ppf "}@."

let to_file path pp_root root =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp_root ppf root;
  Format.pp_print_flush ppf ();
  close_out oc

let vector_to_file path e = to_file path vector e
let matrix_to_file path e = to_file path matrix e
