(** Operations on matrix decision diagrams (quantum operators). *)

open Types

(** [add p a b] is the element-wise sum of same-dimension operators. *)
val add : Pkg.t -> medge -> medge -> medge

(** [apply p m v] is the matrix-vector product [m * v]. *)
val apply : Pkg.t -> medge -> vedge -> vedge

(** [mul p a b] is the matrix-matrix product [a * b]. *)
val mul : Pkg.t -> medge -> medge -> medge

(** [adjoint p a] is the conjugate transpose. *)
val adjoint : Pkg.t -> medge -> medge

(** [trace p a ~n] is the trace of an [n]-qubit operator. *)
val trace : Pkg.t -> medge -> n:int -> Cxnum.Cx.t

(** [entry p a ~n ~row ~col] is a single matrix element (qubit 0 least
    significant in both indices). *)
val entry : Pkg.t -> medge -> n:int -> row:int -> col:int -> Cxnum.Cx.t

(** [to_array p a ~n] materializes the dense matrix, row-major.  Only for
    small [n]. *)
val to_array : Pkg.t -> medge -> n:int -> Cxnum.Cx.t array array

(** [of_array p m] builds a DD from a dense square matrix whose dimension
    must be a power of two. *)
val of_array : Pkg.t -> Cxnum.Cx.t array array -> medge

(** [equal p a b] holds when the two operators are exactly equal (same node
    and approximately equal weights). *)
val equal : Pkg.t -> medge -> medge -> bool

(** [equal_up_to_phase p a b] holds when [a = exp(i phi) * b] for some
    global phase [phi]. *)
val equal_up_to_phase : Pkg.t -> medge -> medge -> bool

(** [is_identity p a ~n ~up_to_phase] checks against [Pkg.ident p n]. *)
val is_identity : Pkg.t -> medge -> n:int -> up_to_phase:bool -> bool

(** [process_fidelity p a b ~n] is [|Tr(a^dagger b)| / 2^n], 1 iff the
    unitaries are equal up to global phase. *)
val process_fidelity : Pkg.t -> medge -> medge -> n:int -> float

(** Number of distinct nodes reachable from this edge (terminal excluded). *)
val node_count : medge -> int
