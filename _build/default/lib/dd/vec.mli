(** Operations on vector decision diagrams (quantum states).

    All functions take the owning {!Pkg.t} first; edges from other packages
    must not be passed in. *)

open Types

(** [add p a b] is the element-wise sum; [a] and [b] must represent vectors
    of the same dimension. *)
val add : Pkg.t -> vedge -> vedge -> vedge

(** [inner_product p a b] is the Hermitian inner product [<a|b>]. *)
val inner_product : Pkg.t -> vedge -> vedge -> Cxnum.Cx.t

(** [fidelity p a b] is [|<a|b>|^2] for normalized [a], [b]. *)
val fidelity : Pkg.t -> vedge -> vedge -> float

(** [norm p a] is the 2-norm of the vector. *)
val norm : Pkg.t -> vedge -> float

(** [normalize p a] rescales so the norm is 1 (keeping the global phase of
    the root weight).  Raises [Invalid_argument] on the zero vector. *)
val normalize : Pkg.t -> vedge -> vedge

(** [probabilities p a q] is [(p0, p1)], the probabilities of measuring
    qubit [q] of the normalized state [a] as |0> and |1>. *)
val probabilities : Pkg.t -> vedge -> int -> float * float

(** [project p a q outcome] projects qubit [q] onto |outcome> and
    renormalizes, returning the post-measurement state.  Raises
    [Invalid_argument] if the outcome has probability ~0. *)
val project : Pkg.t -> vedge -> int -> int -> vedge

(** [amplitude p a bits] is the amplitude of the basis state with qubit [i]
    equal to [bits i], for an [n]-qubit vector rooted at level [n-1]. *)
val amplitude : Pkg.t -> vedge -> n:int -> (int -> bool) -> Cxnum.Cx.t

(** [to_array p a ~n] materializes the full state vector (index = basis
    state, qubit 0 least significant).  Only for small [n]. *)
val to_array : Pkg.t -> vedge -> n:int -> Cxnum.Cx.t array

(** [of_array p v] builds a DD from a dense vector whose length must be a
    power of two. *)
val of_array : Pkg.t -> Cxnum.Cx.t array -> vedge

(** [nonzero_paths p a ~n ~limit] enumerates basis states with probability
    above [cutoff] (default [1e-12]) as [(bits, probability)] pairs, qubit 0
    least significant, stopping after [limit] entries.  The state is assumed
    normalized. *)
val nonzero_paths :
  Pkg.t -> vedge -> n:int -> ?cutoff:float -> limit:int -> unit -> (int array * float) list

(** Number of distinct nodes reachable from this edge (terminal excluded). *)
val node_count : vedge -> int
