(** Decision-diagram package: owns the complex table, the unique tables for
    vector and matrix nodes, and all operation caches.

    A package is the unit of state: DDs created in one package must never be
    mixed with those of another.  Creating a package is cheap, so
    independent tasks (tests, extraction branches run in parallel) should
    each use their own. *)

open Types

type t

(** [create ?tol ()] makes a fresh, empty package.  [tol] is the numerical
    tolerance used for interning complex weights (default [1e-10]). *)
val create : ?tol:float -> unit -> t

val tol : t -> float
val ctab : t -> Cxnum.Cx_table.t

(** {1 Weights} *)

(** [weight p z] interns an amplitude. *)
val weight : t -> Cxnum.Cx.t -> weight

val w_zero : weight
val w_one : weight

(** {1 Edges and nodes} *)

(** The canonical zero vector / matrix of any dimension. *)
val vzero : vedge

val mzero : medge

(** Scalar edges to the terminal (0-qubit vector / matrix). *)
val vterminal : t -> Cxnum.Cx.t -> vedge

val mterminal : t -> Cxnum.Cx.t -> medge

(** [make_vnode p var e0 e1] builds the normalized, hash-consed node with the
    given successors and returns the edge to it (carrying the normalization
    factor).  Successor edges must be rooted at level [var - 1] (or be zero
    stubs).  Normalization: successor weights are divided by their 2-norm and
    by the phase of the first non-zero weight, so that the node's weights
    have unit norm and the first non-zero one is real positive. *)
val make_vnode : t -> int -> vedge -> vedge -> vedge

(** [make_mnode p var e00 e01 e10 e11] is the matrix analogue.
    Normalization divides by the largest-magnitude weight (ties broken by
    lowest index), so the largest weight becomes exactly 1. *)
val make_mnode : t -> int -> medge -> medge -> medge -> medge -> medge

(** [vscale p z e] multiplies an edge weight by [z]. *)
val vscale : t -> Cxnum.Cx.t -> vedge -> vedge

val mscale : t -> Cxnum.Cx.t -> medge -> medge

(** {1 Common diagrams} *)

(** [ident p n] is the identity matrix on [n] qubits (cached). *)
val ident : t -> int -> medge

(** [basis_state p n bits] is the computational basis state |b_{n-1} ... b_0>
    where [bits i] gives the value of qubit [i]. *)
val basis_state : t -> int -> (int -> bool) -> vedge

(** [zero_state p n] is |0...0> on [n] qubits. *)
val zero_state : t -> int -> vedge

(** [product_state p amps] builds the product state whose qubit [i] is
    [fst amps.(i)] |0> + [snd amps.(i)] |1>.  Amplitudes need not be
    normalized; the result is. *)
val product_state : t -> (Cxnum.Cx.t * Cxnum.Cx.t) array -> vedge

(** [gate p ~n ~controls ~target u] builds the matrix DD of the [n]-qubit
    operator applying the single-qubit matrix [u] (row-major
    [|u00; u01; u10; u11|]) to [target] under the given controls.  A control
    [(q, true)] activates on |1>, [(q, false)] on |0>. *)
val gate :
  t -> n:int -> controls:(int * bool) list -> target:int -> Cxnum.Cx.t array -> medge

(** {1 Caches}

    Operation caches used by {!Vec} and {!Mat}; exposed for them only. *)

val vadd_cache : t -> (int * int * int, vedge) Hashtbl.t
val madd_cache : t -> (int * int * int, medge) Hashtbl.t
val mv_cache : t -> (int * int, vedge) Hashtbl.t
val mm_cache : t -> (int * int, medge) Hashtbl.t
val ip_cache : t -> (int * int, Cxnum.Cx.t) Hashtbl.t
val adj_cache : t -> (int, medge) Hashtbl.t

(** Drop all operation caches (keeps the unique tables). *)
val clear_caches : t -> unit

(** [compact p ~vector_roots ~matrix_roots] garbage-collects the unique
    tables: only nodes reachable from the given roots (plus the cached
    identities) survive; all operation caches are dropped.  Edges held by
    the caller stay valid — their nodes are re-registered — but any edge
    not passed as a root must no longer be used with this package. *)
val compact : t -> vector_roots:vedge list -> matrix_roots:medge list -> unit

(** {1 Statistics} *)

type stats =
  { vector_nodes : int  (** live vector nodes in the unique table *)
  ; matrix_nodes : int  (** live matrix nodes in the unique table *)
  ; weights : int  (** interned complex values *)
  }

val stats : t -> stats
