module Op = Circuit.Op
module Circ = Circuit.Circ

type outcome =
  { circuit : Circuit.Circ.t
  ; resets_eliminated : int
  ; wire_of : int array
  }

let eliminate (c : Circ.t) =
  let n = c.Circ.num_qubits in
  let resets = (Circ.op_counts c).Circ.resets in
  let wire_of = Array.init n (fun q -> q) in
  let next_fresh = ref n in
  let rev_ops = ref [] in
  let route op = Op.map_qubits (fun q -> wire_of.(q)) op in
  let step op =
    match (op : Op.t) with
    | Reset q ->
      wire_of.(q) <- !next_fresh;
      incr next_fresh
    | Apply _ | Swap _ | Measure _ | Cond _ | Barrier _ ->
      rev_ops := route op :: !rev_ops
  in
  List.iter step c.Circ.ops;
  let circuit =
    Circ.make ~name:(c.Circ.name ^ "_noreset") ~qubits:(n + resets)
      ~cbits:c.Circ.num_cbits (List.rev !rev_ops)
  in
  { circuit; resets_eliminated = resets; wire_of }
