type outcome =
  { circuit : Circuit.Circ.t
  ; resets_eliminated : int
  ; measurements_deferred : int
  ; conditions_replaced : int
  ; qubits_added : int
  }

let to_static c =
  let r = Resets.eliminate c in
  let d = Deferral.defer r.Resets.circuit in
  { circuit =
      Circuit.Circ.with_name d.Deferral.circuit (c.Circuit.Circ.name ^ "_static")
  ; resets_eliminated = r.Resets.resets_eliminated
  ; measurements_deferred = d.Deferral.measurements_deferred
  ; conditions_replaced = d.Deferral.conditions_replaced
  ; qubits_added = r.Resets.resets_eliminated
  }

let transform c = (to_static c).circuit
