lib/transform/deferral.mli: Circuit
