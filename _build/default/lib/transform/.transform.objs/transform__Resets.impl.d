lib/transform/resets.ml: Array Circuit List
