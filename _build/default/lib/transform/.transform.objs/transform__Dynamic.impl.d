lib/transform/dynamic.ml: Circuit Deferral Resets
