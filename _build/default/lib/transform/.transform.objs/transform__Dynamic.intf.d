lib/transform/dynamic.mli: Circuit
