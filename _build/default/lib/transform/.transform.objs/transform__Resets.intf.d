lib/transform/resets.mli: Circuit
