lib/transform/deferral.ml: Circuit Fmt Hashtbl List
