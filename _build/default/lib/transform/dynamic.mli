(** The complete Section 4 pipeline: reset elimination followed by the
    deferred measurement principle.  Any dynamic circuit becomes a circuit
    of unitary operations followed only by measurements, suitable for
    functional equivalence checking with any existing (static) method. *)

type outcome =
  { circuit : Circuit.Circ.t  (** unitary prefix + final measurements *)
  ; resets_eliminated : int
  ; measurements_deferred : int
  ; conditions_replaced : int
  ; qubits_added : int
  }

(** [to_static c] transforms [c].  Raises [Invalid_argument] when the
    circuit has no unitary reconstruction (see {!Deferral.defer}). *)
val to_static : Circuit.Circ.t -> outcome

(** [transform c] is [to_static c] keeping only the circuit. *)
val transform : Circuit.Circ.t -> Circuit.Circ.t
