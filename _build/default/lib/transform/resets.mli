(** Reset elimination — the first half of the paper's Section 4 scheme.

    Every [reset q] is replaced by a fresh qubit: all operations after the
    reset that would have touched [q] are rerouted to the new qubit, which
    starts in |0> as the reset demands.  An [n]-qubit circuit with [r]
    resets becomes an [(n + r)]-qubit circuit with none.  Fresh qubits are
    appended after the original ones, in reset order. *)

type outcome =
  { circuit : Circuit.Circ.t
  ; resets_eliminated : int
  ; wire_of : int array
        (** final physical wire of each original qubit (the wire carrying
            its value at the end of the circuit) *)
  }

val eliminate : Circuit.Circ.t -> outcome
