module Op = Circuit.Op
module Circ = Circuit.Circ

type outcome =
  { circuit : Circuit.Circ.t
  ; measurements_deferred : int
  ; conditions_replaced : int
  }

(* Replace a classical condition by quantum controls on the qubits that were
   measured into the condition's bits: bit k of the expected value gives the
   polarity of the control on the qubit behind [cond.bits] entry k. *)
let quantum_controls qubit_of_cbit (cond : Op.cond) =
  List.mapi
    (fun k bit ->
      let qubit =
        match Hashtbl.find_opt qubit_of_cbit bit with
        | Some q -> q
        | None ->
          invalid_arg
            (Fmt.str "Deferral.defer: condition reads c[%d] before it is measured" bit)
      in
      { Op.cq = qubit; pos = (cond.value lsr k) land 1 = 1 })
    cond.bits

let add_controls extra op =
  match (op : Op.t) with
  | Apply { gate; controls; target } -> [ Op.Apply { gate; controls = extra @ controls; target } ]
  | Swap (a, b) ->
    (* a controlled product of the three CNOTs is a controlled swap *)
    let cnot c t = Op.Apply { gate = Circuit.Gates.X; controls = ({ Op.cq = c; pos = true } :: extra); target = t } in
    [ cnot a b; cnot b a; cnot a b ]
  | Measure _ | Reset _ | Cond _ | Barrier _ ->
    invalid_arg "Deferral: condition on a non-unitary operation"

let defer (c : Circ.t) =
  if (Circ.op_counts c).Circ.resets > 0 then
    invalid_arg "Deferral.defer: eliminate resets first";
  let qubit_of_cbit : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let measured : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let deferred = ref [] (* measurements, in program order, reversed *) in
  let rev_ops = ref [] in
  let conditions = ref 0 in
  let check_not_reused op =
    let bad q =
      if Hashtbl.mem measured q then
        invalid_arg
          (Fmt.str
             "Deferral.defer: qubit %d is used as a gate target/swap operand after \
              being measured; the circuit has no unitary reconstruction"
             q)
    in
    match (op : Op.t) with
    | Apply { target; _ } -> bad target
    | Swap (a, b) ->
      bad a;
      bad b
    | Measure _ | Reset _ | Cond _ | Barrier _ -> ()
  in
  let step op =
    match (op : Op.t) with
    | Reset _ -> assert false (* excluded above *)
    | Barrier _ -> ()
    | Measure { qubit; cbit } ->
      if Hashtbl.mem qubit_of_cbit cbit then
        invalid_arg
          (Fmt.str "Deferral.defer: classical bit %d is written twice" cbit);
      if Hashtbl.mem measured qubit then
        invalid_arg (Fmt.str "Deferral.defer: qubit %d is measured twice" qubit);
      Hashtbl.replace qubit_of_cbit cbit qubit;
      Hashtbl.replace measured qubit ();
      deferred := (qubit, cbit) :: !deferred
    | Cond { cond; op = inner } ->
      incr conditions;
      check_not_reused inner;
      let extra = quantum_controls qubit_of_cbit cond in
      List.iter (fun op -> rev_ops := op :: !rev_ops) (add_controls extra inner)
    | Apply _ | Swap _ ->
      check_not_reused op;
      rev_ops := op :: !rev_ops
  in
  List.iter step c.Circ.ops;
  let measures =
    List.rev !deferred
    |> List.sort (fun (_, c1) (_, c2) -> compare c1 c2)
    |> List.map (fun (q, cb) -> Op.Measure { qubit = q; cbit = cb })
  in
  let ops = List.rev_append !rev_ops measures in
  { circuit =
      Circ.make ~name:(c.Circ.name ^ "_deferred") ~qubits:c.Circ.num_qubits
        ~cbits:c.Circ.num_cbits ops
  ; measurements_deferred = List.length measures
  ; conditions_replaced = !conditions
  }
