(** Deferred measurement — the second half of the paper's Section 4 scheme.

    All mid-circuit measurements are delayed to the end of the circuit;
    classically-controlled operations along the way are replaced by proper
    quantum-controlled operations whose controls are the measured qubits
    (with negative polarity where the condition expects a 0 bit).

    Preconditions (checked, [Invalid_argument] otherwise):
    {ul
    {- the circuit contains no resets (run {!Resets.eliminate} first);}
    {- no classical bit is written twice;}
    {- once measured, a qubit is never again the target of a gate or part
       of a swap (being a control is fine — controls commute with the
       Z-basis measurement, which is what makes the principle sound).}} *)

type outcome =
  { circuit : Circuit.Circ.t
        (** the unitary part followed by all measurements, in classical-bit
            order *)
  ; measurements_deferred : int
  ; conditions_replaced : int
  }

val defer : Circuit.Circ.t -> outcome
