lib/cxnum/cx.ml: Float Fmt
