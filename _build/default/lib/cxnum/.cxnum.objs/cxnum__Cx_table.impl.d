lib/cxnum/cx_table.ml: Cx Float Hashtbl List
