lib/cxnum/cx.mli: Format
