lib/cxnum/cx_table.mli: Cx Format
