(** Complex numbers for quantum-state amplitudes.

    A thin layer over a pair of [float]s providing the arithmetic needed by
    decision diagrams and state-vector simulation, plus tolerance-based
    comparison helpers.  Values of this type are plain records; the
    hash-consed, identity-comparable variant used as decision-diagram edge
    weights lives in {!Cx_table}. *)

type t = { re : float; im : float }

(** {1 Constants} *)

val zero : t
val one : t
val i : t

(** [minus_one] is [-1 + 0i]. *)
val minus_one : t

(** [sqrt2_inv] is [1/sqrt 2], the ubiquitous Hadamard amplitude. *)
val sqrt2_inv : float

(** {1 Construction} *)

val make : float -> float -> t
val of_float : float -> t

(** [polar r phi] is [r * exp(i * phi)]. *)
val polar : float -> float -> t

(** [e_i_pi x] is [exp(i * pi * x)], computed so that rational [x] with a
    small power-of-two denominator gives exact results for the real and
    imaginary parts that are exactly representable (0, ±1, ±1/sqrt2). *)
val e_i_pi : float -> t

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val scale : float -> t -> t

(** [abs2 z] is [|z|^2]; cheaper than [abs] and exact for probabilities. *)
val abs2 : t -> float

val abs : t -> float

(** [arg z] is the principal argument of [z] in (-pi, pi]. *)
val arg : t -> float

val sqrt : t -> t
val inv : t -> t

(** {1 Comparison} *)

(** [approx_eq ~tol a b] holds when both components differ by at most
    [tol]. *)
val approx_eq : tol:float -> t -> t -> bool

(** [is_zero ~tol z] holds when both components are within [tol] of 0. *)
val is_zero : tol:float -> t -> bool

(** [is_one ~tol z] holds when [z] is within [tol] of [1 + 0i]. *)
val is_one : tol:float -> t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
