type t = { re : float; im : float }

let zero = { re = 0.0; im = 0.0 }
let one = { re = 1.0; im = 0.0 }
let i = { re = 0.0; im = 1.0 }
let minus_one = { re = -1.0; im = 0.0 }
let sqrt2_inv = 1.0 /. Float.sqrt 2.0
let make re im = { re; im }
let of_float re = { re; im = 0.0 }
let polar r phi = { re = r *. Float.cos phi; im = r *. Float.sin phi }

(* For multiples of pi/4 we return the exact constants so that repeated gate
   applications do not accumulate drift on the most common amplitudes. *)
let e_i_pi x =
  let frac = Float.rem x 2.0 in
  let frac = if frac < 0.0 then frac +. 2.0 else frac in
  let eighth = frac *. 4.0 in
  let near k = Float.abs (eighth -. k) < 1e-12 in
  if near 0.0 || near 8.0 then one
  else if near 1.0 then { re = sqrt2_inv; im = sqrt2_inv }
  else if near 2.0 then i
  else if near 3.0 then { re = -.sqrt2_inv; im = sqrt2_inv }
  else if near 4.0 then minus_one
  else if near 5.0 then { re = -.sqrt2_inv; im = -.sqrt2_inv }
  else if near 6.0 then { re = 0.0; im = -1.0 }
  else if near 7.0 then { re = sqrt2_inv; im = -.sqrt2_inv }
  else polar 1.0 (frac *. Float.pi)

let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }

let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im)
  ; im = (a.re *. b.im) +. (a.im *. b.re)
  }

let neg a = { re = -.a.re; im = -.a.im }
let conj a = { re = a.re; im = -.a.im }
let scale s a = { re = s *. a.re; im = s *. a.im }
let abs2 a = (a.re *. a.re) +. (a.im *. a.im)
let abs a = Float.sqrt (abs2 a)
let arg a = Float.atan2 a.im a.re

let div a b =
  let d = abs2 b in
  { re = ((a.re *. b.re) +. (a.im *. b.im)) /. d
  ; im = ((a.im *. b.re) -. (a.re *. b.im)) /. d
  }

let sqrt a =
  let r = abs a in
  let phi = arg a in
  polar (Float.sqrt r) (phi /. 2.0)

let inv a =
  let d = abs2 a in
  { re = a.re /. d; im = -.(a.im /. d) }

let approx_eq ~tol a b =
  Float.abs (a.re -. b.re) <= tol && Float.abs (a.im -. b.im) <= tol

let is_zero ~tol z = Float.abs z.re <= tol && Float.abs z.im <= tol
let is_one ~tol z = Float.abs (z.re -. 1.0) <= tol && Float.abs z.im <= tol

let pp ppf z =
  if Float.abs z.im < 1e-15 then Fmt.pf ppf "%g" z.re
  else if Float.abs z.re < 1e-15 then Fmt.pf ppf "%gi" z.im
  else if z.im < 0.0 then Fmt.pf ppf "%g-%gi" z.re (Float.abs z.im)
  else Fmt.pf ppf "%g+%gi" z.re z.im

let to_string z = Fmt.str "%a" pp z
