lib/qcompile/optimize.ml: Array Circuit Cxnum Decompose Float Hashtbl List Option
