lib/qcompile/mapping.mli: Circuit
