lib/qcompile/decompose.mli: Circuit Cxnum
