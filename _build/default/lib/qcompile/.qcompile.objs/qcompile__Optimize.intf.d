lib/qcompile/optimize.mli: Circuit
