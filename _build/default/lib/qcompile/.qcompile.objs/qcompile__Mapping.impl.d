lib/qcompile/mapping.ml: Array Circuit Fun List Queue
