lib/qcompile/decompose.ml: Array Circuit Cxnum Float List
