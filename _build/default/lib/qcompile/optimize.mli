(** Peephole circuit optimization — the paper's second motivating use case:
    "ensuring that alternative (e.g., optimized) realizations ... are
    functionally equivalent to their original implementation".  Every
    rewrite here preserves functionality up to global phase, and the test
    suite closes the loop by checking optimizer outputs with the
    equivalence checker itself.

    Passes, applied to a fixpoint:
    {ul
    {- {b cancellation}: an operation meeting its own adjoint with only
       disjoint-qubit operations in between is removed together with it
       (covers [H H], [CX CX], [SWAP SWAP], [S Sdg], ...);}
    {- {b rotation merging}: adjacent (same target, same controls)
       [RX]/[RY]/[RZ]/[P] rotations merge by adding angles, vanishing when
       the sum is a multiple of 2 pi;}
    {- {b single-qubit fusion}: maximal runs of uncontrolled,
       unconditioned single-qubit gates on one qubit collapse into a single
       [U3] (runs of length 1 are kept as-is).}}

    Non-unitary operations (measure / reset / classical conditions) act as
    barriers for the qubits and classical bits they touch; gates under a
    classical condition are never rewritten (their global phase is
    observable after the Section 4 transformation). *)

type stats =
  { cancelled : int  (** operations removed by cancellation (pairs x 2) *)
  ; merged : int  (** rotations merged away *)
  ; fused : int  (** gates absorbed by single-qubit fusion *)
  ; before : int  (** unitary operation count before *)
  ; after : int  (** unitary operation count after *)
  }

type outcome =
  { circuit : Circuit.Circ.t
  ; stats : stats
  }

(** [run c] optimizes to a fixpoint. *)
val run : Circuit.Circ.t -> outcome
