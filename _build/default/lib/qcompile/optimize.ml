module Cx = Cxnum.Cx
module Op = Circuit.Op
module Gates = Circuit.Gates
module Circ = Circuit.Circ

type stats =
  { cancelled : int
  ; merged : int
  ; fused : int
  ; before : int
  ; after : int
  }

type outcome =
  { circuit : Circuit.Circ.t
  ; stats : stats
  }

type counters =
  { mutable c_cancelled : int
  ; mutable c_merged : int
  ; mutable c_fused : int
  }

let sorted_controls cs =
  List.sort compare (List.map (fun (c : Op.control) -> (c.cq, c.pos)) cs)

(* Two operations occupy the same "site" when cancellation/merging between
   them is a purely local 2^k x 2^k matrix identity. *)
let same_site a b =
  match ((a : Op.t), (b : Op.t)) with
  | Apply a, Apply b ->
    a.target = b.target && sorted_controls a.controls = sorted_controls b.controls
  | Swap (a1, a2), Swap (b1, b2) -> (a1, a2) = (b1, b2) || (a1, a2) = (b2, b1)
  | _ -> false

let angle_is_trivial a =
  let r = Float.rem a (4.0 *. Float.pi) in
  let r = if r < 0.0 then r +. (4.0 *. Float.pi) else r in
  r < 1e-12 || (4.0 *. Float.pi) -. r < 1e-12

(* [RX/RY/RZ] have period 4 pi (with a global sign at 2 pi, which is only a
   global phase for *uncontrolled* gates); [P] has period 2 pi always. *)
let rotations_merge ~controlled ga gb =
  let trivial_rot a =
    if controlled then angle_is_trivial a (* multiples of 4 pi only *)
    else begin
      let r = Float.abs (Float.rem a (2.0 *. Float.pi)) in
      r < 1e-12 || (2.0 *. Float.pi) -. r < 1e-12
    end
  in
  match ((ga : Gates.t), (gb : Gates.t)) with
  | RX a, RX b -> Some (if trivial_rot (a +. b) then None else Some (Gates.RX (a +. b)))
  | RY a, RY b -> Some (if trivial_rot (a +. b) then None else Some (Gates.RY (a +. b)))
  | RZ a, RZ b -> Some (if trivial_rot (a +. b) then None else Some (Gates.RZ (a +. b)))
  | P a, P b ->
    let s = a +. b in
    let r = Float.rem s (2.0 *. Float.pi) in
    let r = if r < 0.0 then r +. (2.0 *. Float.pi) else r in
    Some (if r < 1e-12 || (2.0 *. Float.pi) -. r < 1e-12 then None else Some (Gates.P s))
  | _ -> None

let is_adjoint_pair a b =
  match ((a : Op.t), (b : Op.t)) with
  | Swap _, Swap _ -> same_site a b
  | Apply x, Apply y ->
    same_site a b && Gates.equal ~tol:1e-12 (Gates.adjoint x.gate) y.gate
  | _ -> false

let disjoint a b =
  let qa = Op.qubits a and qb = Op.qubits b in
  let ca = Op.cbits_read a @ Op.cbits_written a in
  let cb = Op.cbits_read b @ Op.cbits_written b in
  (not (List.exists (fun q -> List.mem q qb) qa))
  && not (List.exists (fun c -> List.mem c cb) ca)

(* Cancellation / rotation-merging pass.  Operations are pushed onto an
   "emitted" stack; a new unitary operation scans down the stack past
   disjoint operations looking for a partner at the same site.  The scan
   stops at the first overlapping operation, so no reordering beyond
   commuting over disjoint qubits ever happens. *)
let cancellation_pass counters ops =
  let try_absorb stack op =
    let rec scan above = function
      | [] -> None
      | entry :: below ->
        if is_adjoint_pair entry op then begin
          counters.c_cancelled <- counters.c_cancelled + 2;
          Some (List.rev_append above below)
        end
        else begin
          let merged =
            match ((entry : Op.t), (op : Op.t)) with
            | Apply a, Apply b when same_site entry op ->
              (match
                 rotations_merge ~controlled:(a.controls <> []) a.gate b.gate
               with
               | None -> None
               | Some replacement ->
                 counters.c_merged <- counters.c_merged + 1;
                 (match replacement with
                  | None ->
                    counters.c_cancelled <- counters.c_cancelled + 1;
                    Some (List.rev_append above below)
                  | Some gate ->
                    Some
                      (List.rev_append above
                         (Op.Apply { a with gate } :: below))))
            | _ -> None
          in
          match merged with
          | Some _ as r -> r
          | None -> if disjoint entry op then scan (entry :: above) below else None
        end
    in
    scan [] stack
  in
  let step stack op =
    match (op : Op.t) with
    | Apply _ | Swap _ ->
      (match try_absorb stack op with
       | Some stack -> stack
       | None -> op :: stack)
    | Measure _ | Reset _ | Cond _ | Barrier _ -> op :: stack
  in
  List.rev (List.fold_left step [] ops)

(* Single-qubit fusion: collapse maximal runs of uncontrolled, unconditioned
   single-qubit gates into one U3 via the ZYZ decomposition (dropping the
   global phase).  Runs shorter than 2 stay untouched. *)
let mat_mul a b =
  [| Cx.add (Cx.mul a.(0) b.(0)) (Cx.mul a.(1) b.(2))
   ; Cx.add (Cx.mul a.(0) b.(1)) (Cx.mul a.(1) b.(3))
   ; Cx.add (Cx.mul a.(2) b.(0)) (Cx.mul a.(3) b.(2))
   ; Cx.add (Cx.mul a.(2) b.(1)) (Cx.mul a.(3) b.(3))
  |]

let is_identity_up_to_phase m =
  Cx.abs m.(1) < 1e-12
  && Cx.abs m.(2) < 1e-12
  && Cx.abs (Cx.sub m.(0) m.(3)) < 1e-12
  && Float.abs (Cx.abs m.(0) -. 1.0) < 1e-12

let fusion_pass counters ops =
  let pending : (int, Gates.t list) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  let emit op = out := op :: !out in
  let flush q =
    match Hashtbl.find_opt pending q with
    | None -> ()
    | Some run ->
      Hashtbl.remove pending q;
      (match run with
       | [] -> ()
       | [ g ] -> emit (Op.apply g q)
       | run ->
         (* run is most-recent-first: the matrix product in application
            order is head-first *)
         let product =
           List.fold_left (fun acc g -> mat_mul acc (Gates.matrix g)) (Gates.matrix (List.hd run)) (List.tl run)
         in
         counters.c_fused <- counters.c_fused + List.length run - 1;
         if is_identity_up_to_phase product then
           counters.c_fused <- counters.c_fused + 1
         else begin
           let _, beta, gamma, delta = Decompose.zyz product in
           emit (Op.apply (Gates.U3 (gamma, beta, delta)) q)
         end)
  in
  let step op =
    match (op : Op.t) with
    | Apply { gate; controls = []; target } ->
      let run = Option.value ~default:[] (Hashtbl.find_opt pending target) in
      Hashtbl.replace pending target (gate :: run)
    | _ ->
      List.iter flush (Op.qubits op);
      emit op
  in
  List.iter step ops;
  let remaining = Hashtbl.fold (fun q _ acc -> q :: acc) pending [] in
  List.iter flush (List.sort compare remaining);
  List.rev !out

let unitary_count ops =
  List.length
    (List.filter (function Op.Apply _ | Op.Swap _ | Op.Cond _ -> true | _ -> false) ops)

let run (c : Circ.t) =
  let counters = { c_cancelled = 0; c_merged = 0; c_fused = 0 } in
  let before = unitary_count c.Circ.ops in
  let rec fix ops n =
    let ops' = cancellation_pass counters ops in
    let ops' = fusion_pass counters ops' in
    if n = 0 || List.length ops' = List.length ops then ops' else fix ops' (n - 1)
  in
  let ops = fix c.Circ.ops 10 in
  { circuit = Circ.make ~name:(c.Circ.name ^ "_opt") ~qubits:c.Circ.num_qubits
      ~cbits:c.Circ.num_cbits ops
  ; stats =
      { cancelled = counters.c_cancelled
      ; merged = counters.c_merged
      ; fused = counters.c_fused
      ; before
      ; after = unitary_count ops
      }
  }
