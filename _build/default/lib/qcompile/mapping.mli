(** Naive qubit mapping to a linear-nearest-neighbour architecture
    (paper Section 2.3: circuits must be mapped to the device's coupling
    graph before execution; Fig. 1b shows such a compiled QPE circuit).

    The router keeps a logical-to-physical assignment, and whenever a
    two-qubit gate spans non-adjacent wires it inserts SWAP chains moving
    the control next to the target.  A final layer of SWAPs restores the
    identity assignment, so the mapped circuit is {e functionally
    equivalent} to its input and can be handed straight to the equivalence
    checker — the use case the paper's introduction motivates. *)

type outcome =
  { circuit : Circuit.Circ.t
  ; swaps_inserted : int
  }

(** [linear c] maps onto the chain [0 - 1 - ... - n-1].  The input must
    contain only single-qubit gates and singly-controlled gates (run
    {!Decompose.to_basis} first); measurements and barriers pass through,
    but dynamic primitives are rejected with [Invalid_argument] (map before
    making the circuit dynamic, or transform first). *)
val linear : Circuit.Circ.t -> outcome

(** [coupled ~edges c] maps onto an arbitrary connected, undirected coupling
    graph given as an edge list over physical wires [0 .. n-1]: whenever a
    two-qubit gate spans non-adjacent wires, SWAP chains (3 CNOTs each) move
    the control along a BFS shortest path.  A final layer restores the
    identity assignment, so the output is exactly equivalent to the input.
    Same input restrictions as {!linear}. *)
val coupled : edges:(int * int) list -> Circuit.Circ.t -> outcome

(** The five-qubit, T-shaped IBMQ London coupling of the paper's Fig. 1b:
    [0-1, 1-2, 1-3, 3-4]. *)
val ibmq_london : (int * int) list
