module Cx = Cxnum.Cx
module Op = Circuit.Op
module Gates = Circuit.Gates
module Circ = Circuit.Circ

(* u = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta), derived from
   u' = e^{-i alpha} u in SU(2):
     u'00 = cos(g/2) e^{-i(b+d)/2}   u'01 = -sin(g/2) e^{-i(b-d)/2}
     u'10 = sin(g/2) e^{ i(b-d)/2}   u'11 = cos(g/2) e^{ i(b+d)/2} *)
let zyz u =
  let det = Cx.sub (Cx.mul u.(0) u.(3)) (Cx.mul u.(1) u.(2)) in
  let alpha = Cx.arg det /. 2.0 in
  let phase = Cx.polar 1.0 (-.alpha) in
  let a = Cx.mul phase u.(0) and c = Cx.mul phase u.(2) in
  let gamma = 2.0 *. Float.atan2 (Cx.abs c) (Cx.abs a) in
  let sum, diff =
    if Cx.abs a > 1e-12 && Cx.abs c > 1e-12 then (-2.0 *. Cx.arg a, 2.0 *. Cx.arg c)
    else if Cx.abs a > 1e-12 then (-2.0 *. Cx.arg a, 0.0) (* gamma ~ 0: only b+d matters *)
    else (0.0, 2.0 *. Cx.arg c) (* gamma ~ pi: only b-d matters *)
  in
  let beta = (sum +. diff) /. 2.0 and delta = (sum -. diff) /. 2.0 in
  (alpha, beta, gamma, delta)

let rz theta q = Op.apply (Gates.RZ theta) q
let ry theta q = Op.apply (Gates.RY theta) q
let cx c t = Op.controlled Gates.X ~control:c ~target:t

let nontrivial theta = Float.abs theta > 1e-12

(* controlled-V via V = e^{ia} A X B X C with A B C = I:
   A = Rz(b) Ry(g/2), B = Ry(-g/2) Rz(-(d+b)/2), C = Rz((d-b)/2);
   the phase becomes P(a) on the control.  Ops are listed in application
   order (C first). *)
let controlled_u ~control ~target u =
  let alpha, beta, gamma, delta = zyz u in
  let ops =
    List.concat
      [ (if nontrivial ((delta -. beta) /. 2.0) then
           [ rz ((delta -. beta) /. 2.0) target ]
         else [])
      ; [ cx control target ]
      ; (if nontrivial ((delta +. beta) /. 2.0) then
           [ rz (-.(delta +. beta) /. 2.0) target ]
         else [])
      ; (if nontrivial gamma then [ ry (-.gamma /. 2.0) target ] else [])
      ; [ cx control target ]
      ; (if nontrivial gamma then [ ry (gamma /. 2.0) target ] else [])
      ; (if nontrivial beta then [ rz beta target ] else [])
      ; (if nontrivial alpha then [ Op.apply (Gates.P alpha) control ] else [])
      ]
  in
  ops

(* textbook 6-CNOT Toffoli (controls a b, target c) *)
let toffoli a b c =
  [ Op.apply Gates.H c
  ; cx b c
  ; Op.apply Gates.Tdg c
  ; cx a c
  ; Op.apply Gates.T c
  ; cx b c
  ; Op.apply Gates.Tdg c
  ; cx a c
  ; Op.apply Gates.T b
  ; Op.apply Gates.T c
  ; Op.apply Gates.H c
  ; cx a b
  ; Op.apply Gates.T a
  ; Op.apply Gates.Tdg b
  ; cx a b
  ]

(* Principal square root of a 2x2 unitary via its Pauli-axis form:
   U = e^{i delta} (cos a I - i sin a (n . sigma)), so
   sqrt U = e^{i delta/2} (cos (a/2) I - i sin (a/2) (n . sigma)). *)
let sqrt_unitary u =
  let det = Cx.sub (Cx.mul u.(0) u.(3)) (Cx.mul u.(1) u.(2)) in
  let delta = Cx.arg det /. 2.0 in
  let ph = Cx.polar 1.0 (-.delta) in
  let s = Array.map (fun z -> Cx.mul ph z) u in
  (* s in SU(2): s00 = cos a - i nz sin a, s01 = (-i nx - ny) sin a,
     s10 = (-i nx + ny) sin a, s11 = cos a + i nz sin a *)
  let cos_a = (s.(0).Cx.re +. s.(3).Cx.re) /. 2.0 in
  let snz = -.(s.(0).Cx.im -. s.(3).Cx.im) /. 2.0 in
  let snx = -.(s.(1).Cx.im +. s.(2).Cx.im) /. 2.0 in
  let sny = (s.(2).Cx.re -. s.(1).Cx.re) /. 2.0 in
  let sin_a = Float.sqrt ((snx *. snx) +. (sny *. sny) +. (snz *. snz)) in
  let a = Float.atan2 sin_a cos_a in
  let nx, ny, nz =
    if sin_a > 1e-12 then (snx /. sin_a, sny /. sin_a, snz /. sin_a)
    else (0.0, 0.0, 1.0) (* s = +-I: any axis works *)
  in
  let c = Cx.of_float (Float.cos (a /. 2.0)) in
  let s2 = Float.sin (a /. 2.0) in
  let half =
    [| Cx.sub c (Cx.make 0.0 (nz *. s2))
     ; Cx.make (-.(ny *. s2)) (-.(nx *. s2))
     ; Cx.make (ny *. s2) (-.(nx *. s2))
     ; Cx.add c (Cx.make 0.0 (nz *. s2))
    |]
  in
  let phase = Cx.polar 1.0 (delta /. 2.0) in
  Array.map (fun z -> Cx.mul phase z) half

let conj_2x2 u =
  [| Cx.conj u.(0); Cx.conj u.(2); Cx.conj u.(1); Cx.conj u.(3) |]

let x_2x2 = Gates.matrix Gates.X

let is_x_2x2 u =
  Cx.abs u.(0) < 1e-12
  && Cx.abs (Cx.sub u.(1) Cx.one) < 1e-12
  && Cx.abs (Cx.sub u.(2) Cx.one) < 1e-12
  && Cx.abs u.(3) < 1e-12

(* Barenco recursion over positive controls; ops listed in application
   order. *)
let rec multi_controlled ~controls ~target u =
  match controls with
  | [] -> invalid_arg "Decompose.multi_controlled: no controls"
  | [ c ] -> if is_x_2x2 u then [ cx c target ] else controlled_u ~control:c ~target u
  | [ c1; c2 ] when is_x_2x2 u -> toffoli c1 c2 target
  | cn :: rest ->
    let v = sqrt_unitary u in
    List.concat
      [ multi_controlled ~controls:[ cn ] ~target v
      ; multi_controlled ~controls:rest ~target:cn x_2x2
      ; multi_controlled ~controls:[ cn ] ~target (conj_2x2 v)
      ; multi_controlled ~controls:rest ~target:cn x_2x2
      ; multi_controlled ~controls:rest ~target v
      ]

let with_negative_controls negs ops =
  let flips = List.map (fun q -> Op.apply Gates.X q) negs in
  flips @ ops @ flips

(* [exact] forces phase-exact output; it is set inside classical conditions,
   where a gate's global phase becomes a relative phase once the Section 4
   transformation turns the condition into a quantum control. *)
let rec expand ~exact op =
  match (op : Op.t) with
  | Apply { gate; controls = []; target } ->
    if exact && Gates.global_phase_to_u3 gate <> 0.0 then [ op ]
    else [ Op.apply (Gates.to_u3 gate) target ]
  | Apply { gate; controls; target } ->
    let negs = List.filter_map (fun (c : Op.control) -> if c.pos then None else Some c.cq) controls in
    let cqs = List.map (fun (c : Op.control) -> c.cq) controls in
    let body = multi_controlled ~controls:cqs ~target (Gates.matrix gate) in
    with_negative_controls negs body
  | Swap (a, b) -> [ cx a b; cx b a; cx a b ]
  | Measure _ | Reset _ | Barrier _ -> [ op ]
  | Cond { cond; op } ->
    List.map (fun op -> Op.Cond { cond; op }) (expand ~exact:true op)

let to_basis (c : Circ.t) =
  let ops = List.concat_map (expand ~exact:false) c.Circ.ops in
  (* pieces emitted by the controlled decompositions (rz, ry, h, t, ...) are
     uncontrolled, so rewriting them to u3 only moves global phase — except
     under a classical condition, which [expand] already kept exact *)
  let normalize op =
    match (op : Op.t) with
    | Apply { gate; controls = []; target } -> Op.apply (Gates.to_u3 gate) target
    | Apply _ | Swap _ | Measure _ | Reset _ | Cond _ | Barrier _ -> op
  in
  Circ.make ~name:(c.Circ.name ^ "_u3cx") ~qubits:c.Circ.num_qubits
    ~cbits:c.Circ.num_cbits (List.map normalize ops)
