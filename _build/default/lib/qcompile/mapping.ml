module Op = Circuit.Op
module Circ = Circuit.Circ

type outcome =
  { circuit : Circuit.Circ.t
  ; swaps_inserted : int
  }

let ibmq_london = [ (0, 1); (1, 2); (1, 3); (3, 4) ]

(* BFS over the coupling graph: predecessor array from [src], giving
   shortest paths to every physical wire. *)
let bfs_predecessors adjacency n src =
  let pred = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(src) <- true;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          pred.(w) <- v;
          Queue.add w queue
        end)
      adjacency.(v)
  done;
  pred

let coupled ~edges (c : Circ.t) =
  let n = c.Circ.num_qubits in
  let adjacency = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Mapping.coupled: bad edge";
      adjacency.(a) <- b :: adjacency.(a);
      adjacency.(b) <- a :: adjacency.(b))
    edges;
  let phys = Array.init n (fun q -> q) in
  let logical = Array.init n (fun q -> q) in
  let rev_ops = ref [] in
  let swaps = ref 0 in
  let emit op = rev_ops := op :: !rev_ops in
  let swap_phys a b =
    emit (Op.controlled Circuit.Gates.X ~control:a ~target:b);
    emit (Op.controlled Circuit.Gates.X ~control:b ~target:a);
    emit (Op.controlled Circuit.Gates.X ~control:a ~target:b);
    incr swaps;
    let la = logical.(a) and lb = logical.(b) in
    logical.(a) <- lb;
    logical.(b) <- la;
    phys.(la) <- b;
    phys.(lb) <- a
  in
  (* move logical [l] adjacent to physical wire [goal_phys] by swapping it
     along a shortest path *)
  let bring_adjacent l goal_phys =
    let here = phys.(l) in
    if here <> goal_phys && not (List.mem goal_phys adjacency.(here)) then begin
      let pred = bfs_predecessors adjacency n here in
      if pred.(goal_phys) < 0 && goal_phys <> here then
        invalid_arg "Mapping.coupled: coupling graph is disconnected";
      (* walk back from the goal; stop one hop short of it *)
      let rec path_to acc v = if v = here then acc else path_to (v :: acc) pred.(v) in
      let path = path_to [] goal_phys in
      let rec hop = function
        | [] | [ _ ] -> ()
        | step :: rest ->
          swap_phys phys.(l) step;
          hop rest
      in
      hop path
    end
  in
  (* measurements are re-emitted after the final restore layer (where the
     assignment is the identity again); sound because the input is static,
     so nothing acts on a measured qubit afterwards *)
  let measures = ref [] in
  let step op =
    match (op : Op.t) with
    | Apply { gate; controls = []; target } -> emit (Op.apply gate phys.(target))
    | Apply { gate; controls = [ ctrl ]; target } ->
      bring_adjacent ctrl.Op.cq phys.(target);
      emit
        (Op.Apply
           { gate
           ; controls = [ { ctrl with Op.cq = phys.(ctrl.Op.cq) } ]
           ; target = phys.(target)
           })
    | Swap (a, b) ->
      bring_adjacent a phys.(b);
      emit (Op.Swap (phys.(a), phys.(b)))
    | Measure _ as m -> measures := m :: !measures
    | Barrier qs -> emit (Op.Barrier (List.map (fun q -> phys.(q)) qs))
    | Apply _ -> invalid_arg "Mapping.coupled: multi-controlled gate (decompose first)"
    | Reset _ | Cond _ -> invalid_arg "Mapping.coupled: dynamic primitive (transform first)"
  in
  List.iter step c.Circ.ops;
  (* Restore the identity assignment by routing over a BFS spanning tree:
     wires are finalized deepest-first, and every move stays on tree paths
     through shallower (not yet finalized) wires, so a finalized wire is
     never disturbed and the loop provably terminates. *)
  let parent = bfs_predecessors adjacency n 0 in
  let depth = Array.make n 0 in
  let rec depth_of v = if parent.(v) < 0 then 0 else 1 + depth_of parent.(v) in
  for v = 0 to n - 1 do
    if v <> 0 && parent.(v) < 0 then
      invalid_arg "Mapping.coupled: coupling graph is disconnected";
    depth.(v) <- depth_of v
  done;
  let tree_path a b =
    (* the hops from [a] to [b] along the tree (excluding [a] itself):
       climb to the lowest common ancestor, then descend *)
    let rec root_path x acc = if x < 0 then acc else root_path parent.(x) (x :: acc) in
    let rec strip lca pa pb =
      match (pa, pb) with
      | x :: xs, y :: ys when x = y -> strip x xs ys
      | _ -> (lca, pa, pb)
    in
    let lca, below_a, below_b = strip (-1) (root_path a []) (root_path b []) in
    assert (lca >= 0);
    let upward =
      match List.rev below_a with
      | [] -> [] (* a is the lca itself; no climbing *)
      | _ :: ancestors -> ancestors @ [ lca ]
    in
    upward @ below_b
  in
  let order = List.sort (fun u v -> compare depth.(v) depth.(u)) (List.init n Fun.id) in
  List.iter
    (fun v ->
      if phys.(v) <> v then
        List.iter (fun hop -> swap_phys phys.(v) hop) (tree_path phys.(v) v))
    order;
  List.iter emit (List.rev !measures);
  { circuit =
      Circ.make ~name:(c.Circ.name ^ "_mapped") ~qubits:n ~cbits:c.Circ.num_cbits
        (List.rev !rev_ops)
  ; swaps_inserted = !swaps
  }

let linear (c : Circ.t) =
  let n = c.Circ.num_qubits in
  if n <= 1 then { circuit = Circ.with_name c (c.Circ.name ^ "_lnn"); swaps_inserted = 0 }
  else begin
    let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
    let out = coupled ~edges:chain c in
    { out with circuit = Circ.with_name out.circuit (c.Circ.name ^ "_lnn") }
  end
