(** Decomposition into the IBM-style basis {u3, cx} (paper Section 2.3 /
    Fig. 1b): arbitrary single-qubit gates become [U3], singly-controlled
    gates go through the standard ZYZ "ABC" construction, Toffolis through
    the textbook 6-CNOT circuit, swaps through 3 CNOTs, and negative
    controls are conjugated with X.

    The result is functionally equivalent to the input up to global phase
    ({e exactly} equivalent for the controlled decompositions, which track
    the relative phase on the control). *)

(** [zyz u] decomposes a 2x2 unitary as
    [u = exp(i alpha) Rz(beta) Ry(gamma) Rz(delta)], returning
    [(alpha, beta, gamma, delta)]. *)
val zyz : Cxnum.Cx.t array -> float * float * float * float

(** [controlled_u ~control ~target u] is the {u3, cx} expansion of the
    controlled-[u] operation. *)
val controlled_u : control:int -> target:int -> Cxnum.Cx.t array -> Circuit.Op.t list

(** [sqrt_unitary u] is the principal square root of a 2x2 unitary (computed
    through its Pauli-axis form). *)
val sqrt_unitary : Cxnum.Cx.t array -> Cxnum.Cx.t array

(** [multi_controlled ~controls ~target u] expands a gate with any number of
    (positive) controls by the Barenco recursion
    [C^n(U) = C(V) . C^{n-1}(X) . C(V^dagger) . C^{n-1}(X) . C^{n-1}(V)]
    with [V = sqrt U]; exact including phases.  Gate count grows as O(3^n), which
    is fine for the small control counts occurring in practice.  [controls]
    must be non-empty. *)
val multi_controlled :
  controls:int list -> target:int -> Cxnum.Cx.t array -> Circuit.Op.t list

(** [to_basis c] rewrites the whole circuit; non-unitary operations pass
    through (the body of a classically-controlled gate is decomposed, each
    piece keeping the classical condition). *)
val to_basis : Circuit.Circ.t -> Circuit.Circ.t
