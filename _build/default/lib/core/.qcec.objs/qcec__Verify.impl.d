lib/core/verify.ml: Array Circuit Dd Distribution Fmt Hashtbl List Qsim Strategy Transform Unix
