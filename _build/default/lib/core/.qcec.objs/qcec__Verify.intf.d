lib/core/verify.mli: Circuit Distribution Format Qsim Strategy
