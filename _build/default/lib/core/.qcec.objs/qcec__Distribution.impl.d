lib/core/distribution.ml: Float Fmt Hashtbl List Option Qsim String
