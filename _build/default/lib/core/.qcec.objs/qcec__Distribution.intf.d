lib/core/distribution.mli: Format
