lib/core/strategy.mli: Circuit Dd Format
