lib/core/strategy.ml: Array Circuit Cxnum Dd Float Fmt List Qsim Random
