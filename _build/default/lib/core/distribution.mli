(** Measurement-outcome distributions and their comparison.

    A distribution maps classical assignments (a '0'/'1' string indexed by
    classical bit) to probabilities. *)

type t = (string * float) list

(** [total_variation a b] is [1/2 * sum |a(x) - b(x)|], 0 for equal
    distributions, 1 for disjoint ones. *)
val total_variation : t -> t -> float

(** [fidelity a b] is the Bhattacharyya coefficient
    [sum sqrt (a(x) * b(x))], 1 for equal distributions. *)
val fidelity : t -> t -> float

(** [equal ?eps a b] holds when the total-variation distance is at most
    [eps] (default [1e-9]). *)
val equal : ?eps:float -> t -> t -> bool

(** [marginalize d ~bits] projects onto the given classical bits (in the
    given order: output character [k] is input bit [List.nth bits k]),
    summing probabilities. *)
val marginalize : t -> bits:int list -> t

(** [mass d] is the total probability (should be ~1 unless branches were
    pruned). *)
val mass : t -> float

(** [most_probable ?count d] lists the heaviest outcomes first (default top
    10). *)
val most_probable : ?count:int -> t -> t

val pp : Format.formatter -> t -> unit
