type t = (string * float) list

let to_table d =
  let tbl = Hashtbl.create (List.length d) in
  List.iter (fun (k, v) -> Qsim.Classical.add_weighted tbl k v) d;
  tbl

let total_variation a b =
  let ta = to_table a and tb = to_table b in
  let keys = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) ta;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tb;
  let get t k = Option.value ~default:0.0 (Hashtbl.find_opt t k) in
  Hashtbl.fold (fun k () acc -> acc +. Float.abs (get ta k -. get tb k)) keys 0.0
  /. 2.0

let fidelity a b =
  let tb = to_table b in
  let get k = Option.value ~default:0.0 (Hashtbl.find_opt tb k) in
  List.fold_left (fun acc (k, v) -> acc +. Float.sqrt (v *. get k)) 0.0 a

let equal ?(eps = 1e-9) a b = total_variation a b <= eps

let marginalize d ~bits =
  let tbl = Hashtbl.create 64 in
  let project key =
    String.init (List.length bits) (fun k -> key.[List.nth bits k])
  in
  List.iter (fun (k, v) -> Qsim.Classical.add_weighted tbl (project k) v) d;
  Qsim.Classical.sorted_bindings tbl

let mass d = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 d

let most_probable ?(count = 10) d =
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) d in
  List.filteri (fun i _ -> i < count) sorted

let pp ppf d =
  let entry ppf (k, v) = Fmt.pf ppf "|%s> : %.6f" k v in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut entry) d
