module B = Circuit.Builder

type oracle =
  | Constant of bool
  | Balanced_parity of bool array

let random_balanced ~seed n =
  let st = Random.State.make [| seed; n; 0xd7 |] in
  let rec draw () =
    let mask = Array.init n (fun _ -> Random.State.bool st) in
    if Array.exists Fun.id mask then mask else draw ()
  in
  Balanced_parity (draw ())

(* the oracle acting on (data qubit k, ancilla): phase-kickback form *)
let apply_oracle_bit b oracle k ~data ~ancilla =
  match oracle with
  | Constant _ -> () (* handled once, globally *)
  | Balanced_parity mask -> if mask.(k) then B.cx b data ancilla

let apply_constant b oracle ~ancilla =
  match oracle with
  | Constant true -> B.x b ancilla
  | Constant false | Balanced_parity _ -> ()

let static oracle n =
  let b = B.create ~qubits:(n + 1) ~cbits:n (Fmt.str "dj_static_%d" n) in
  B.x b n;
  B.h b n;
  for k = 0 to n - 1 do
    B.h b k
  done;
  apply_constant b oracle ~ancilla:n;
  for k = 0 to n - 1 do
    apply_oracle_bit b oracle k ~data:k ~ancilla:n
  done;
  for k = 0 to n - 1 do
    B.h b k
  done;
  for k = 0 to n - 1 do
    B.measure b k k
  done;
  B.finish b

let dynamic oracle n =
  let b = B.create ~qubits:2 ~cbits:n (Fmt.str "dj_dynamic_%d" n) in
  B.x b 1;
  B.h b 1;
  apply_constant b oracle ~ancilla:1;
  for k = 0 to n - 1 do
    B.h b 0;
    apply_oracle_bit b oracle k ~data:0 ~ancilla:1;
    B.h b 0;
    B.measure b 0 k;
    if k < n - 1 then B.reset b 0
  done;
  B.finish b

(* same wire bookkeeping as BV: fresh wire 1 + k carries data bit k *)
let make oracle n =
  let dyn_to_static = Array.make (n + 1) 0 in
  dyn_to_static.(0) <- 0;
  dyn_to_static.(1) <- n;
  for w = 2 to n do
    dyn_to_static.(w) <- w - 1
  done;
  { Pair.static_circuit = static oracle n
  ; dynamic_circuit = dynamic oracle n
  ; dyn_to_static
  }
