(** A benchmark instance: a static circuit, its dynamic realization, and the
    wire correspondence that makes the transformed dynamic circuit
    comparable with the static one. *)

type t =
  { static_circuit : Circuit.Circ.t
  ; dynamic_circuit : Circuit.Circ.t
  ; dyn_to_static : int array
        (** permutation: wire [w] of the {e transformed} (Section 4) dynamic
            circuit corresponds to wire [dyn_to_static.(w)] of the static
            circuit *)
  }

(** [align_transformed pair transformed] renames the transformed dynamic
    circuit's wires into the static circuit's wire order. *)
val align_transformed : t -> Circuit.Circ.t -> Circuit.Circ.t
