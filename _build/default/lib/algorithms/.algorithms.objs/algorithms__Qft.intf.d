lib/algorithms/qft.mli: Circuit Pair
