lib/algorithms/random_circuit.ml: Array Circuit Float Fmt List Random
