lib/algorithms/ghz.mli: Circuit
