lib/algorithms/deutsch_jozsa.mli: Circuit Pair
