lib/algorithms/qft.ml: Array Circuit Float Fmt Pair
