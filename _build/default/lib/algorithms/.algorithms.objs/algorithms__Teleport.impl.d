lib/algorithms/teleport.ml: Circuit List
