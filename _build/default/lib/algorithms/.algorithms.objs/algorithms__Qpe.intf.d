lib/algorithms/qpe.mli: Circuit Pair
