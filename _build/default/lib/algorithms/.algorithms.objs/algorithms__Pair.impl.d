lib/algorithms/pair.ml: Circuit
