lib/algorithms/deutsch_jozsa.ml: Array Circuit Fmt Fun Pair Random
