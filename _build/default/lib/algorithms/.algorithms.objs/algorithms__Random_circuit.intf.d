lib/algorithms/random_circuit.mli: Circuit
