lib/algorithms/grover.ml: Circuit Float Fmt List
