lib/algorithms/ghz.ml: Circuit Fmt
