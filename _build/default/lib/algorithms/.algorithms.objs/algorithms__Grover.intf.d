lib/algorithms/grover.mli: Circuit
