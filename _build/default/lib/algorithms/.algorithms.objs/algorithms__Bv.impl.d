lib/algorithms/bv.ml: Array Circuit Fmt Pair Random
