lib/algorithms/qpe.ml: Array Circuit Float Fmt List Pair Random
