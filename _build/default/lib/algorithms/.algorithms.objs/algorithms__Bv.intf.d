lib/algorithms/bv.mli: Circuit Pair
