lib/algorithms/pair.mli: Circuit
