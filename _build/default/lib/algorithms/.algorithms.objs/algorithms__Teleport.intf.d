lib/algorithms/teleport.mli: Circuit
