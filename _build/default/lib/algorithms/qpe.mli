(** Quantum Phase Estimation (the paper's running example) and Iterative QPE
    [29].

    The task: estimate [theta] (as a fraction of a full turn, [0 <= theta <
    1]) of the single-qubit unitary [p(2 pi theta)] on eigenstate |1> to
    [bits] fractional bits, giving the estimate [0.c_{m-1} ... c_0] with
    classical bit [k] holding [c_k] ([c_0] least significant, measured first
    by the iterative version).

    Static layout: wires [0 .. m-1] are the counting qubits (wire [k]
    measured into bit [k]), wire [m] is the eigenstate qubit.  Dynamic
    layout: wire 0 is the re-used work qubit, wire 1 the eigenstate. *)

(** [random_theta ~seed ~bits] draws a reproducible phase of full [bits]-bit
    precision (a random odd multiple of [2^-bits]). *)
val random_theta : seed:int -> bits:int -> float

(** [frac_pow2 theta t] is the fractional part of [theta * 2^t], computed by
    repeated doubling so dyadic phases stay exact; both generators derive
    their rotation angles from it. *)
val frac_pow2 : float -> int -> float

val static : theta:float -> bits:int -> Circuit.Circ.t

(** [static_textbook] computes the same unitary with the standard textbook
    structure: kickback [U^{2^k}] controlled by counting qubit [k]
    (ascending), then an inverse QFT {e with} the explicit swap layer.
    Functionally equivalent to {!static} — but the gate sequences have no
    local correspondence, which makes alternating equivalence checking
    drift far from the identity.  This is the variant that reproduces the
    paper's steeply growing QPE verification times; {!static} is the
    aligned formulation, benchmarked as an ablation. *)
val static_textbook : theta:float -> bits:int -> Circuit.Circ.t

val dynamic : theta:float -> bits:int -> Circuit.Circ.t
val make : theta:float -> bits:int -> Pair.t

(** [make_textbook] pairs {!static_textbook} with the dynamic circuit. *)
val make_textbook : theta:float -> bits:int -> Pair.t

(** The paper's Fig. 1/2 instance: [theta = 3/16], [bits = 3]. *)
val paper_example : unit -> Pair.t
