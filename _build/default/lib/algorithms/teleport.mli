(** Quantum teleportation [28] — the canonical dynamic circuit: two
    mid-circuit measurements steer classically-controlled X and Z
    corrections.

    Teleportation is only distribution-equivalent (not unitary-equivalent)
    to directly preparing the state on the output qubit, so it exercises
    the paper's Section 5 scheme. *)

(** [circuit ~prep] teleports the state [prep]|0> from wire 0 to wire 2
    through a Bell pair on wires 1 and 2; classical bits 0 and 1 hold the
    Bell measurement, bit 2 the final Z-basis measurement of the output
    qubit. *)
val circuit : prep:Circuit.Gates.t list -> Circuit.Circ.t

(** [reference ~prep] prepares the same state directly on a single qubit
    and measures it into classical bit 0 — the distribution teleportation
    must reproduce on bit 2, marginalized over bits 0 and 1. *)
val reference : prep:Circuit.Gates.t list -> Circuit.Circ.t
