module B = Circuit.Builder
module Op = Circuit.Op
module Gates = Circuit.Gates

let circuit ~prep =
  let b = B.create ~qubits:3 ~cbits:3 "teleport" in
  List.iter (fun g -> B.add b (Op.apply g 0)) prep;
  B.h b 1;
  B.cx b 1 2;
  B.cx b 0 1;
  B.h b 0;
  B.measure b 0 0;
  B.measure b 1 1;
  B.if_bit b ~bit:1 ~value:true (Op.apply Gates.X 2);
  B.if_bit b ~bit:0 ~value:true (Op.apply Gates.Z 2);
  B.measure b 2 2;
  B.finish b

let reference ~prep =
  let b = B.create ~qubits:1 ~cbits:1 "teleport_reference" in
  List.iter (fun g -> B.add b (Op.apply g 0)) prep;
  B.measure b 0 0;
  B.finish b
