(** Deutsch–Jozsa: decide whether an n-bit boolean oracle is constant or
    balanced with a single query.  Structurally a sibling of
    Bernstein–Vazirani, so it admits the same 2-qubit dynamic realization
    with measure/reset qubit re-use. *)

type oracle =
  | Constant of bool
  | Balanced_parity of bool array
      (** f(x) = s.x mod 2 for a non-zero mask — the standard balanced
          family realizable with CNOTs *)

(** [static oracle n] — n data qubits + 1 ancilla; data wire [k] is measured
    into classical bit [k]; the all-zero outcome means "constant". *)
val static : oracle -> int -> Circuit.Circ.t

(** [dynamic oracle n] — 2 qubits with qubit re-use, like the dynamic BV. *)
val dynamic : oracle -> int -> Circuit.Circ.t

val make : oracle -> int -> Pair.t

(** [random_balanced ~seed n] draws a reproducible non-zero parity mask. *)
val random_balanced : seed:int -> int -> oracle
