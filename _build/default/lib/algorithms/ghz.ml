module B = Circuit.Builder

let static n =
  let b = B.create ~qubits:n ~cbits:n (Fmt.str "ghz_%d" n) in
  B.h b 0;
  for k = 1 to n - 1 do
    B.cx b (k - 1) k
  done;
  for k = 0 to n - 1 do
    B.measure b k k
  done;
  B.finish b

let with_parity_check n =
  if n < 2 then invalid_arg "Ghz.with_parity_check: need at least 2 qubits";
  let b = B.create ~qubits:(n + 1) ~cbits:(n + 1) (Fmt.str "ghz_parity_%d" n) in
  B.h b 0;
  for k = 1 to n - 1 do
    B.cx b (k - 1) k
  done;
  (* parity of the first two data qubits, accumulated on the ancilla *)
  B.cx b 0 n;
  B.cx b 1 n;
  B.measure b n n;
  for k = 0 to n - 1 do
    B.measure b k k
  done;
  B.finish b
