(** Reproducible random circuits for property-based testing. *)

(** [unitary ~seed ~qubits ~gates] draws single-qubit gates (from the whole
    alphabet, with random angles) and controlled gates (including negative
    controls and swaps), no non-unitary operations. *)
val unitary : seed:int -> qubits:int -> gates:int -> Circuit.Circ.t

(** [dynamic ~seed ~qubits ~cbits ~ops] additionally draws measurements,
    resets, and single-bit classically-controlled gates.  The circuit is
    guaranteed transformable by the Section 4 scheme: a classical bit is
    written at most once, and a measured qubit is reset before being acted
    on again. *)
val dynamic : seed:int -> qubits:int -> cbits:int -> ops:int -> Circuit.Circ.t

(** [clifford_dynamic ~seed ~qubits ~cbits ~ops] is like {!dynamic} but
    draws only Clifford gates ([H S Sdg X Y Z], [CX], [CZ], [Swap]), so the
    result is simulable by the {!Qsim.Stabilizer} backend as well. *)
val clifford_dynamic : seed:int -> qubits:int -> cbits:int -> ops:int -> Circuit.Circ.t
