(** Grover search over [n] qubits for a single marked basis state, used as
    an additional static workload for the simulators, the compiler, and the
    equivalence checker.  The success probability after the standard
    [round (pi/4 sqrt (2^n))] iterations is close to 1. *)

(** [static ~marked ~qubits ?iterations ()] builds the circuit (phase
    oracle + diffusion operator per iteration) and measures every qubit.
    [marked] is the searched basis state, qubit 0 least significant. *)
val static : marked:int -> qubits:int -> ?iterations:int -> unit -> Circuit.Circ.t

(** Success probability of finding [marked], computed analytically. *)
val success_probability : qubits:int -> iterations:int -> float

val default_iterations : qubits:int -> int
