(** Quantum Fourier Transform (swapless form) and its one-qubit
    semiclassical realization (Griffiths–Niu [44]).

    The static circuit processes qubits from the top: [h q_i] followed by
    controlled phases from [q_i] onto every lower qubit (controlled-phase
    being symmetric, this is the textbook circuit read with the processed
    qubit as control), then measures qubit [k] into classical bit [k].  The
    dynamic circuit re-uses one work qubit: iteration [i] (from [n-1] down)
    first applies the accumulated classically-controlled corrections, then
    [h], measure into bit [i], reset. *)

(** [static n] — [n(n+1)/2] gates, as in the paper's Table 1. *)
val static : int -> Circuit.Circ.t

(** [dynamic n] — 1 qubit, [n(n+1)/2 + 2n - 1] operations. *)
val dynamic : int -> Circuit.Circ.t

val make : int -> Pair.t
