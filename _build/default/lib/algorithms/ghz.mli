(** GHZ state preparation, plus a dynamic variant that verifies the state
    with a mid-circuit parity check — small circuits used by tests and
    examples. *)

(** [static n] prepares (|0...0> + |1...1>)/sqrt 2 and measures every qubit
    into its classical bit. *)
val static : int -> Circuit.Circ.t

(** [with_parity_check n] prepares GHZ, measures a parity ancilla
    mid-circuit (always 0 on the ideal state), then measures the data
    qubits; [n >= 2], uses [n + 1] qubits and [n + 1] classical bits (parity
    in bit [n]). *)
val with_parity_check : int -> Circuit.Circ.t
