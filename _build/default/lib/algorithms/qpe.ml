module B = Circuit.Builder
module Op = Circuit.Op
module Gates = Circuit.Gates

let two_pi = 2.0 *. Float.pi

let random_theta ~seed ~bits =
  let st = Random.State.make [| seed; bits; 0x9e37 |] in
  let rec draw q acc =
    if q = bits then acc
    else draw (q + 1) ((2.0 *. acc) +. (if Random.State.bool st then 1.0 else 0.0))
  in
  let k = draw 0 0.0 in
  (* force the least significant bit so the estimate really needs [bits] *)
  let k = if Float.rem k 2.0 = 0.0 then k +. 1.0 else k in
  k /. Float.pow 2.0 (float_of_int bits)

let frac_pow2 theta t =
  let rec go x t =
    if t = 0 then x
    else begin
      let y = 2.0 *. x in
      go (y -. Float.floor y) (t - 1)
    end
  in
  go (theta -. Float.floor theta) t

(* Rotation angle of the controlled-U^{2^{m-1-i}} kickback for counting
   bit i. *)
let kickback_angle theta ~bits i = two_pi *. frac_pow2 theta (bits - 1 - i)

(* Correction removing an already-known lower bit j from iteration i. *)
let correction_angle ~i ~j = -.Float.pi /. Float.pow 2.0 (float_of_int (i - j))

let static ~theta ~bits =
  let m = bits in
  let b = B.create ~qubits:(m + 1) ~cbits:m (Fmt.str "qpe_static_%d" (m + 1)) in
  B.x b m;
  for k = 0 to m - 1 do
    B.h b k
  done;
  for k = 0 to m - 1 do
    B.cp b (kickback_angle theta ~bits k) k m
  done;
  (* swapless inverse QFT on the counting register *)
  for i = 0 to m - 1 do
    for j = 0 to i - 1 do
      B.cp b (correction_angle ~i ~j) j i
    done;
    B.h b i
  done;
  for k = 0 to m - 1 do
    B.measure b k k
  done;
  B.finish b

(* Textbook formulation: U^{2^k} controlled by counting qubit k (so the
   register holds QFT|2^m theta>), then the full inverse QFT including its
   swap layer.  Same unitary as [static]; wildly different gate order. *)
let static_textbook ~theta ~bits =
  let m = bits in
  let b = B.create ~qubits:(m + 1) ~cbits:m (Fmt.str "qpe_textbook_%d" (m + 1)) in
  (* the textbook form reads the counting register in reversed bit order;
     an explicit leading swap layer restores the convention of [static], so
     both variants realize the very same unitary *)
  for k = 0 to (m / 2) - 1 do
    B.swap b k (m - 1 - k)
  done;
  B.x b m;
  for k = 0 to m - 1 do
    B.h b k
  done;
  for k = 0 to m - 1 do
    B.cp b (two_pi *. frac_pow2 theta k) k m
  done;
  (* inverse of the standard QFT circuit F = SWAPS . R: apply the swap
     layer first, then R's rotations reversed and conjugated *)
  for k = 0 to (m / 2) - 1 do
    B.swap b k (m - 1 - k)
  done;
  let rotation_block = Circuit.Builder.create ~qubits:(m + 1) ~cbits:0 "rot" in
  for i = m - 1 downto 0 do
    Circuit.Builder.h rotation_block i;
    for j = i - 1 downto 0 do
      Circuit.Builder.cp rotation_block
        (Float.pi /. Float.pow 2.0 (float_of_int (i - j)))
        j i
    done
  done;
  let r = Circuit.Builder.finish rotation_block in
  List.iter (fun op -> B.add b op) (Circuit.Circ.inverse r).Circuit.Circ.ops;
  for k = 0 to m - 1 do
    B.measure b k k
  done;
  B.finish b

let dynamic ~theta ~bits =
  let m = bits in
  let b = B.create ~qubits:2 ~cbits:m (Fmt.str "qpe_dynamic_%d" (m + 1)) in
  B.x b 1;
  for i = 0 to m - 1 do
    B.h b 0;
    B.cp b (kickback_angle theta ~bits i) 0 1;
    for j = 0 to i - 1 do
      B.if_bit b ~bit:j ~value:true (Op.apply (Gates.P (correction_angle ~i ~j)) 0)
    done;
    B.h b 0;
    B.measure b 0 i;
    if i < m - 1 then B.reset b 0
  done;
  B.finish b

(* Transformed dynamic wires: 0 = counting bit 0, 1 = eigenstate, fresh wire
   1 + i = counting bit i (i >= 1); static keeps counting bit i on wire i
   with the eigenstate last. *)
let make ~theta ~bits =
  let m = bits in
  let dyn_to_static = Array.make (m + 1) 0 in
  dyn_to_static.(0) <- 0;
  dyn_to_static.(1) <- m;
  for w = 2 to m do
    dyn_to_static.(w) <- w - 1
  done;
  { Pair.static_circuit = static ~theta ~bits
  ; dynamic_circuit = dynamic ~theta ~bits
  ; dyn_to_static
  }

let make_textbook ~theta ~bits =
  let aligned = make ~theta ~bits in
  { aligned with Pair.static_circuit = static_textbook ~theta ~bits }

let paper_example () = make ~theta:(3.0 /. 16.0) ~bits:3
