(** Bernstein–Vazirani [42]: recover a hidden bit string [s] from a single
    oracle query.

    The static circuit uses [n] data qubits plus one ancilla; the dynamic
    realization [43] re-uses a single work qubit through measure/reset,
    needing only 2 qubits for any [n]. *)

(** [hidden_string ~seed n] is a reproducible pseudo-random hidden string. *)
val hidden_string : seed:int -> int -> bool array

(** [static s] is the textbook circuit on [length s + 1] qubits: the
    ancilla is wire [n]; data wire [k] is measured into classical bit
    [k]. *)
val static : bool array -> Circuit.Circ.t

(** [dynamic s] is the 2-qubit realization: wire 0 is the re-used work
    qubit, wire 1 the ancilla; iteration [k] measures classical bit [k]. *)
val dynamic : bool array -> Circuit.Circ.t

(** [make s] bundles both with the wire alignment. *)
val make : bool array -> Pair.t
