module B = Circuit.Builder
module Op = Circuit.Op
module Gates = Circuit.Gates

let default_iterations ~qubits =
  let n = float_of_int (1 lsl qubits) in
  max 1 (int_of_float (Float.round (Float.pi /. 4.0 *. Float.sqrt n)))

let success_probability ~qubits ~iterations =
  let n = float_of_int (1 lsl qubits) in
  let theta = Float.asin (1.0 /. Float.sqrt n) in
  let s = Float.sin ((2.0 *. float_of_int iterations +. 1.0) *. theta) in
  s *. s

(* phase flip of exactly the state |pattern>: a Z on the last qubit
   controlled on every other qubit matching its pattern bit, with X
   conjugation making the last qubit's 0-case work too *)
let phase_flip b ~qubits pattern =
  let target = qubits - 1 in
  let target_bit = (pattern lsr target) land 1 = 1 in
  if not target_bit then B.x b target;
  if qubits = 1 then B.z b target
  else begin
    let controls =
      List.init (qubits - 1) (fun q -> { Op.cq = q; pos = (pattern lsr q) land 1 = 1 })
    in
    B.add b (Op.Apply { gate = Gates.Z; controls; target })
  end;
  if not target_bit then B.x b target

let static ~marked ~qubits ?iterations () =
  if marked < 0 || marked >= 1 lsl qubits then invalid_arg "Grover.static: bad marked";
  let iterations =
    match iterations with Some k -> k | None -> default_iterations ~qubits
  in
  let b = B.create ~qubits ~cbits:qubits (Fmt.str "grover_%d_%d" qubits marked) in
  for q = 0 to qubits - 1 do
    B.h b q
  done;
  for _ = 1 to iterations do
    (* oracle: flip the phase of |marked> *)
    phase_flip b ~qubits marked;
    (* diffusion: 2|s><s| - I = H X (flip |1..1>) X H up to global phase *)
    for q = 0 to qubits - 1 do
      B.h b q
    done;
    phase_flip b ~qubits 0;
    for q = 0 to qubits - 1 do
      B.h b q
    done
  done;
  for q = 0 to qubits - 1 do
    B.measure b q q
  done;
  B.finish b
