module B = Circuit.Builder
module Op = Circuit.Op
module Gates = Circuit.Gates

(* pi / 2^k, float exponentiation so deep circuits (k > 62) stay finite *)
let rotation k = Float.pi /. Float.pow 2.0 (float_of_int k)

(* Gate order mirrors the unitary reconstruction of the semiclassical
   version (each qubit receives its accumulated controlled phases, then its
   Hadamard); controlled-phase gates are diagonal and commute, so this is
   the textbook circuit — and the one-to-one correspondence keeps the
   alternating equivalence check at the identity throughout (cf. the
   paper's flat QFT verification times). *)
let static n =
  let b = B.create ~qubits:n ~cbits:n (Fmt.str "qft_static_%d" n) in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      B.cp b (rotation (j - i)) j i
    done;
    B.h b i
  done;
  for k = 0 to n - 1 do
    B.measure b k k
  done;
  B.finish b

let dynamic n =
  let b = B.create ~qubits:1 ~cbits:n (Fmt.str "qft_dynamic_%d" n) in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      B.if_bit b ~bit:j ~value:true (Op.apply (Gates.P (rotation (j - i))) 0)
    done;
    B.h b 0;
    B.measure b 0 i;
    if i > 0 then B.reset b 0
  done;
  B.finish b

(* Wire 0 of the transformed dynamic circuit carried the first-processed
   (most significant) bit c_{n-1}; static keeps c_k on wire k, so the
   alignment is a reversal. *)
let make n =
  { Pair.static_circuit = static n
  ; dynamic_circuit = dynamic n
  ; dyn_to_static = Array.init n (fun w -> n - 1 - w)
  }
