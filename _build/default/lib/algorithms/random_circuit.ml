module Op = Circuit.Op
module Gates = Circuit.Gates
module Circ = Circuit.Circ

let random_gate st =
  let angle () = Random.State.float st (2.0 *. Float.pi) -. Float.pi in
  match Random.State.int st 17 with
  | 0 -> Gates.I
  | 1 -> Gates.X
  | 2 -> Gates.Y
  | 3 -> Gates.Z
  | 4 -> Gates.H
  | 5 -> Gates.S
  | 6 -> Gates.Sdg
  | 7 -> Gates.T
  | 8 -> Gates.Tdg
  | 9 -> Gates.SX
  | 10 -> Gates.SXdg
  | 11 -> Gates.RX (angle ())
  | 12 -> Gates.RY (angle ())
  | 13 -> Gates.RZ (angle ())
  | 14 -> Gates.P (angle ())
  | 15 -> Gates.U2 (angle (), angle ())
  | _ -> Gates.U3 (angle (), angle (), angle ())

let distinct_pair st n =
  let a = Random.State.int st n in
  let rec draw () =
    let b = Random.State.int st n in
    if b = a then draw () else b
  in
  (a, draw ())

let random_unitary_op st qubits =
  if qubits >= 2 && Random.State.int st 4 = 0 then begin
    match Random.State.int st 3 with
    | 0 ->
      let a, b = distinct_pair st qubits in
      Op.Swap (a, b)
    | 1 ->
      let c, t = distinct_pair st qubits in
      Op.Apply
        { gate = random_gate st
        ; controls = [ { cq = c; pos = Random.State.bool st } ]
        ; target = t
        }
    | _ ->
      if qubits >= 3 then begin
        let t = Random.State.int st qubits in
        let rec two () =
          let c1 = Random.State.int st qubits and c2 = Random.State.int st qubits in
          if c1 = c2 || c1 = t || c2 = t then two () else (c1, c2)
        in
        let c1, c2 = two () in
        Op.Apply
          { gate = Gates.X
          ; controls = [ { cq = c1; pos = true }; { cq = c2; pos = Random.State.bool st } ]
          ; target = t
          }
      end
      else Op.apply (random_gate st) (Random.State.int st qubits)
  end
  else Op.apply (random_gate st) (Random.State.int st qubits)

let random_clifford_gate st =
  match Random.State.int st 6 with
  | 0 -> Gates.H
  | 1 -> Gates.S
  | 2 -> Gates.Sdg
  | 3 -> Gates.X
  | 4 -> Gates.Y
  | _ -> Gates.Z

let unitary ~seed ~qubits ~gates =
  let st = Random.State.make [| seed; qubits; gates |] in
  let ops = List.init gates (fun _ -> random_unitary_op st qubits) in
  Circ.make ~name:(Fmt.str "random_u_%d_%d_%d" seed qubits gates) ~qubits ~cbits:0 ops

let dynamic_core ~clifford ~seed ~qubits ~cbits ~ops =
  let st = Random.State.make [| seed; qubits; cbits; ops |] in
  let draw_gate st = if clifford then random_clifford_gate st else random_gate st in
  (* Track which qubits are "spent" (measured, not yet reset) so the result
     is always transformable, and which classical bits are written/readable. *)
  let spent = Array.make qubits false in
  let written = Array.make cbits false in
  let free_qubits () =
    List.filter (fun q -> not spent.(q)) (List.init qubits (fun q -> q))
  in
  let readable_bits () =
    List.filter (fun b -> written.(b)) (List.init cbits (fun b -> b))
  in
  let unwritten_bits () =
    List.filter (fun b -> not written.(b)) (List.init cbits (fun b -> b))
  in
  let pick st xs = List.nth xs (Random.State.int st (List.length xs)) in
  let rec draw_op () =
    match Random.State.int st 10 with
    | 0 ->
      (* measurement, if a fresh classical bit and a live qubit exist *)
      (match (unwritten_bits (), free_qubits ()) with
       | [], _ | _, [] -> draw_op ()
       | bits, qs ->
         let q = pick st qs and b = pick st bits in
         spent.(q) <- true;
         written.(b) <- true;
         Op.Measure { qubit = q; cbit = b })
    | 1 ->
      (* reset revives a spent qubit (or interrupts a live one) *)
      let q = Random.State.int st qubits in
      spent.(q) <- false;
      Op.Reset q
    | 2 | 3 ->
      (match (readable_bits (), free_qubits ()) with
       | [], _ | _, [] -> draw_op ()
       | bits, qs ->
         let b = pick st bits in
         Op.if_bit ~bit:b ~value:(Random.State.bool st)
           (Op.apply (draw_gate st) (pick st qs)))
    | _ ->
      (match free_qubits () with
       | [] -> draw_op ()
       | [ q ] -> Op.apply (draw_gate st) q
       | qs ->
         (* controlled gates restricted to live qubits *)
         if Random.State.int st 3 = 0 then begin
           let t = pick st qs in
           let rec ctrl () =
             let c = pick st qs in
             if c = t then ctrl () else c
           in
           if clifford then begin
             (* stabilizer backend supports positively-controlled X/Z *)
             let gate = if Random.State.bool st then Gates.X else Gates.Z in
             Op.Apply
               { gate; controls = [ { cq = ctrl (); pos = true } ]; target = t }
           end
           else
             Op.Apply
               { gate = random_gate st
               ; controls = [ { cq = ctrl (); pos = Random.State.bool st } ]
               ; target = t
               }
         end
         else Op.apply (draw_gate st) (pick st qs))
  in
  let ops = List.init ops (fun _ -> draw_op ()) in
  Circ.make ~name:(Fmt.str "random_d_%d_%d" seed qubits) ~qubits ~cbits ops

let dynamic ~seed ~qubits ~cbits ~ops =
  dynamic_core ~clifford:false ~seed ~qubits ~cbits ~ops

let clifford_dynamic ~seed ~qubits ~cbits ~ops =
  dynamic_core ~clifford:true ~seed ~qubits ~cbits ~ops
