type t =
  { static_circuit : Circuit.Circ.t
  ; dynamic_circuit : Circuit.Circ.t
  ; dyn_to_static : int array
  }

let align_transformed pair transformed =
  Circuit.Circ.remap transformed ~perm:pair.dyn_to_static
