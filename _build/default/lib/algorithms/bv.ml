module B = Circuit.Builder

let hidden_string ~seed n =
  let st = Random.State.make [| seed; n |] in
  Array.init n (fun _ -> Random.State.bool st)

let static s =
  let n = Array.length s in
  let b = B.create ~qubits:(n + 1) ~cbits:n (Fmt.str "bv_static_%d" n) in
  B.x b n;
  B.h b n;
  for k = 0 to n - 1 do
    B.h b k
  done;
  for k = 0 to n - 1 do
    if s.(k) then B.cx b k n
  done;
  for k = 0 to n - 1 do
    B.h b k
  done;
  for k = 0 to n - 1 do
    B.measure b k k
  done;
  B.finish b

let dynamic s =
  let n = Array.length s in
  let b = B.create ~qubits:2 ~cbits:n (Fmt.str "bv_dynamic_%d" n) in
  B.x b 1;
  B.h b 1;
  for k = 0 to n - 1 do
    B.h b 0;
    if s.(k) then B.cx b 0 1;
    B.h b 0;
    B.measure b 0 k;
    if k < n - 1 then B.reset b 0
  done;
  B.finish b

(* After reset elimination the dynamic circuit's wires are: 0 = data bit 0,
   1 = ancilla, and fresh wire 1 + k = data bit k (k >= 1); the static
   circuit keeps data bit k on wire k with the ancilla last. *)
let make s =
  let n = Array.length s in
  let dyn_to_static = Array.make (n + 1) 0 in
  dyn_to_static.(0) <- 0;
  dyn_to_static.(1) <- n;
  for w = 2 to n do
    dyn_to_static.(w) <- w - 1
  done;
  { Pair.static_circuit = static s; dynamic_circuit = dynamic s; dyn_to_static }
