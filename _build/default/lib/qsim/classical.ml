let cond_holds (cond : Circuit.Op.cond) cvals =
  let bit_value i b = if Bytes.get cvals b = '1' then 1 lsl i else 0 in
  List.fold_left ( + ) 0 (List.mapi bit_value cond.bits) = cond.value

let add_weighted tbl key prob =
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (prev +. prob)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
