(** Decision-diagram based circuit simulation and unitary construction.

    This is the scalable backend (cf. [35] in the paper): circuits over a
    hundred qubits are routinely simulated as long as their states compress
    well. *)

(** [op_unitary p ~n op] is the matrix DD of a unitary operation ([Apply] or
    [Swap]; swaps are built from three CNOTs).  Raises [Invalid_argument]
    on non-unitary operations. *)
val op_unitary : Dd.Pkg.t -> n:int -> Circuit.Op.t -> Dd.Types.medge

(** [apply_op p ~n state op] applies a unitary operation to a state. *)
val apply_op : Dd.Pkg.t -> n:int -> Dd.Types.vedge -> Circuit.Op.t -> Dd.Types.vedge

(** [simulate p c] runs a unitary circuit from |0...0> (final measurements
    and barriers are skipped).  Raises [Invalid_argument] on dynamic
    circuits. *)
val simulate : Dd.Pkg.t -> Circuit.Circ.t -> Dd.Types.vedge

(** [build_unitary p c] multiplies all gate DDs into the circuit's system
    matrix.  Raises [Invalid_argument] if [c] contains non-unitary
    operations (strip measurements first). *)
val build_unitary : Dd.Pkg.t -> Circuit.Circ.t -> Dd.Types.medge

(** [measured_distribution p state ~n ~measures] marginalizes the final
    state onto the classical bits written by [measures] ([(qubit, cbit)]
    pairs): the result maps a classical assignment (a '0'/'1' string indexed
    by cbit, of length [num_cbits]) to its probability.  Enumerates only
    paths with probability above [cutoff]; stops after [limit] basis states
    (default [2^22]). *)
val measured_distribution :
     Dd.Pkg.t
  -> Dd.Types.vedge
  -> n:int
  -> num_cbits:int
  -> measures:(int * int) list
  -> ?cutoff:float
  -> ?limit:int
  -> unit
  -> (string * float) list
