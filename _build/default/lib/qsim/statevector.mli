(** Dense state-vector simulator.

    The reference backend: exponential in qubits, but simple enough to trust,
    so every decision-diagram result is cross-checked against it in the test
    suite.  Index convention: basis state [i] has qubit [q] equal to bit [q]
    of [i] (qubit 0 least significant). *)

type t =
  { n : int
  ; amps : Cxnum.Cx.t array  (** length [2^n], mutated in place *)
  }

(** [init n] is |0...0>. *)
val init : int -> t

(** [of_bits n bits] is the computational basis state with qubit [q] set to
    [bits q]. *)
val of_bits : int -> (int -> bool) -> t

val copy : t -> t

(** {1 Evolution} *)

(** [apply_gate sv ~controls ~target u] applies the 2x2 matrix [u]
    (row-major) to [target] under the given [(qubit, polarity)] controls. *)
val apply_gate : t -> controls:(int * bool) list -> target:int -> Cxnum.Cx.t array -> unit

(** [apply_unitary_op sv op] applies a gate or swap.  Raises
    [Invalid_argument] on non-unitary operations. *)
val apply_unitary_op : t -> Circuit.Op.t -> unit

(** [run_unitary c] simulates a unitary circuit (measurements at the end are
    ignored) from |0...0>.  Raises [Invalid_argument] if [c] is dynamic. *)
val run_unitary : Circuit.Circ.t -> t

(** {1 Measurement} *)

(** [probabilities sv q] is [(p0, p1)] for qubit [q]. *)
val probabilities : t -> int -> float * float

(** [project sv q outcome] collapses qubit [q] (renormalizing).  Raises
    [Invalid_argument] when the outcome probability is ~0. *)
val project : t -> int -> int -> unit

(** [probability_of sv bits] is the probability of the full basis outcome
    [bits]. *)
val probability_of : t -> (int -> bool) -> float

(** [norm sv] is the 2-norm. *)
val norm : t -> float

(** [fidelity a b] is |<a|b>|^2. *)
val fidelity : t -> t -> float

(** {1 Dense extraction oracle}

    An independent (dense) implementation of the paper's Section 5 scheme,
    used to validate the decision-diagram implementation in {!Extraction}. *)

(** [extract_distribution c] simulates the (possibly dynamic) circuit,
    branching at measurements and resets, and returns the measurement
    outcome distribution as [(classical bits as a '0'/'1' string indexed by
    cbit, probability)] pairs, probabilities above [cutoff] (default
    [1e-12]). *)
val extract_distribution : ?cutoff:float -> Circuit.Circ.t -> (string * float) list

(** {1 Dense functional oracle} *)

(** [unitary_matrix c] is the full [2^n x 2^n] system matrix of a unitary
    circuit (row-major), for cross-checking DD construction on small
    circuits. *)
val unitary_matrix : Circuit.Circ.t -> Cxnum.Cx.t array array
