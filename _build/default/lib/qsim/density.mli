(** Dense density-matrix simulation with a classical register — the
    alternative the paper's Section 5 weighs against its extraction scheme
    (cf. refs [38]-[40] there).

    The simulator represents the joint classical/quantum state as an
    ensemble: a map from classical-bit assignments to unnormalized density
    matrices.  Unitaries and classically-controlled operations act on the
    matching entries; a reset applies the channel
    [rho -> P0 rho P0 + X P1 rho P1 X] {e without} splitting the ensemble
    (the advantage of the mixed-state picture); a measurement splits an
    entry into its two projected branches, keyed by the written bit.

    The cost is the flip side the paper points out: every entry is a
    [2^n x 2^n] matrix, quadratically heavier than the state vectors the
    extraction scheme branches over, and the ensemble still grows with the
    number of {e recorded} measurements.  The test suite uses this module
    as a third independent oracle for the extraction scheme. *)

type t

(** [run c] simulates the whole (possibly dynamic) circuit from |0...0>. *)
val run : Circuit.Circ.t -> t

(** {1 Noise}

    Mixed states are the natural home for decoherence (cf. [39] in the
    paper); a {!noise} model applies single-qubit error channels to every
    qubit an operation touches, right after the operation. *)

type noise =
  { depolarizing : float
        (** probability of replacing the qubit with the maximally mixed
            state component: [rho -> (1-p) rho + p/3 (X rho X + Y rho Y +
            Z rho Z)] *)
  ; amplitude_damping : float  (** decay probability |1> to |0> per step *)
  }

val noiseless : noise

(** [run_noisy ~noise c] is {!run} with the error channels applied after
    every gate, measurement and reset. *)
val run_noisy : noise:noise -> Circuit.Circ.t -> t

val num_qubits : t -> int

(** Number of classical-ensemble entries (at most [2^measurements]). *)
val entries : t -> int

(** [distribution d] is the probability of each classical assignment —
    directly comparable with {!Extraction.run}. *)
val distribution : t -> (string * float) list

(** [final_density d] sums the ensemble into the overall density matrix
    (trace ~1). *)
val final_density : t -> Cxnum.Cx.t array array

(** [trace d] is the total probability mass (should be ~1). *)
val trace : t -> float

(** [purity d] is [Tr(rho^2)] of {!final_density}: 1 for pure states,
    [1/2^n] for the maximally mixed state. *)
val purity : t -> float

(** [qubit_probability d q] is the probability that measuring qubit [q] of
    the final mixed state yields |1>. *)
val qubit_probability : t -> int -> float
