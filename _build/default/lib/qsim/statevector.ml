module Cx = Cxnum.Cx
module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

type t =
  { n : int
  ; amps : Cx.t array
  }

let init n =
  let amps = Array.make (1 lsl n) Cx.zero in
  amps.(0) <- Cx.one;
  { n; amps }

let of_bits n bits =
  let amps = Array.make (1 lsl n) Cx.zero in
  let idx = ref 0 in
  for q = 0 to n - 1 do
    if bits q then idx := !idx lor (1 lsl q)
  done;
  amps.(!idx) <- Cx.one;
  { n; amps }

let copy sv = { sv with amps = Array.copy sv.amps }

let apply_gate sv ~controls ~target u =
  let mask = 1 lsl target in
  let active i =
    List.for_all (fun (q, pos) -> (i lsr q) land 1 = Bool.to_int pos) controls
  in
  let dim = Array.length sv.amps in
  for i = 0 to dim - 1 do
    (* visit each amplitude pair once, via its low member *)
    if i land mask = 0 && active i then begin
      let j = i lor mask in
      let a0 = sv.amps.(i) and a1 = sv.amps.(j) in
      sv.amps.(i) <- Cx.add (Cx.mul u.(0) a0) (Cx.mul u.(1) a1);
      sv.amps.(j) <- Cx.add (Cx.mul u.(2) a0) (Cx.mul u.(3) a1)
    end
  done

let apply_swap sv a b =
  let dim = Array.length sv.amps in
  let ma = 1 lsl a and mb = 1 lsl b in
  for i = 0 to dim - 1 do
    if i land ma <> 0 && i land mb = 0 then begin
      let j = (i lxor ma) lor mb in
      let tmp = sv.amps.(i) in
      sv.amps.(i) <- sv.amps.(j);
      sv.amps.(j) <- tmp
    end
  done

let apply_unitary_op sv op =
  match (op : Op.t) with
  | Apply { gate; controls; target } ->
    let controls = List.map (fun (c : Op.control) -> (c.cq, c.pos)) controls in
    apply_gate sv ~controls ~target (Gates.matrix gate)
  | Swap (a, b) -> apply_swap sv a b
  | Measure _ | Reset _ | Cond _ | Barrier _ ->
    invalid_arg "Statevector.apply_unitary_op: non-unitary operation"

let run_unitary c =
  if Circ.is_dynamic c then
    invalid_arg "Statevector.run_unitary: dynamic circuit (use extract_distribution)";
  let sv = init c.Circ.num_qubits in
  let step op =
    match (op : Op.t) with
    | Measure _ | Barrier _ -> ()
    | Apply _ | Swap _ -> apply_unitary_op sv op
    | Reset _ | Cond _ -> assert false (* excluded by is_dynamic *)
  in
  List.iter step c.Circ.ops;
  sv

let probabilities sv q =
  let mask = 1 lsl q in
  let p0 = ref 0.0 and p1 = ref 0.0 in
  Array.iteri
    (fun i a -> if i land mask = 0 then p0 := !p0 +. Cx.abs2 a else p1 := !p1 +. Cx.abs2 a)
    sv.amps;
  (!p0, !p1)

let project sv q outcome =
  let mask = 1 lsl q in
  let keep i = (if outcome = 0 then i land mask = 0 else i land mask <> 0) in
  let p = ref 0.0 in
  Array.iteri (fun i a -> if keep i then p := !p +. Cx.abs2 a) sv.amps;
  if !p <= 1e-14 then invalid_arg "Statevector.project: outcome has zero probability";
  let scale = 1.0 /. Float.sqrt !p in
  Array.iteri
    (fun i a -> sv.amps.(i) <- (if keep i then Cx.scale scale a else Cx.zero))
    sv.amps

let probability_of sv bits =
  let idx = ref 0 in
  for q = 0 to sv.n - 1 do
    if bits q then idx := !idx lor (1 lsl q)
  done;
  Cx.abs2 sv.amps.(!idx)

let norm sv =
  Float.sqrt (Array.fold_left (fun acc a -> acc +. Cx.abs2 a) 0.0 sv.amps)

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: size mismatch";
  let ip = ref Cx.zero in
  Array.iteri (fun i x -> ip := Cx.add !ip (Cx.mul (Cx.conj x) b.amps.(i))) a.amps;
  Cx.abs2 !ip

(* Dense branching extraction: the same algorithm as the paper's Section 5
   (and Extraction in this library), but over dense vectors; kept as an
   independent oracle for the DD implementation. *)
let extract_distribution ?(cutoff = 1e-12) (c : Circ.t) =
  let dist : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let record cvals prob = Classical.add_weighted dist (Bytes.to_string cvals) prob in
  let rec walk sv ops cvals prob =
    if prob > cutoff then begin
      match ops with
      | [] -> record cvals prob
      | op :: rest ->
        (match (op : Op.t) with
         | Apply _ | Swap _ ->
           apply_unitary_op sv op;
           walk sv rest cvals prob
         | Barrier _ -> walk sv rest cvals prob
         | Cond { cond; op } ->
           if Classical.cond_holds cond cvals then apply_unitary_op sv op;
           walk sv rest cvals prob
         | Measure { qubit; cbit } ->
           let p0, p1 = probabilities sv qubit in
           let total = p0 +. p1 in
           let p0 = p0 /. total and p1 = p1 /. total in
           if p1 *. prob > cutoff then begin
             let sv1 = copy sv in
             project sv1 qubit 1;
             let cvals1 = Bytes.copy cvals in
             Bytes.set cvals1 cbit '1';
             walk sv1 rest cvals1 (prob *. p1)
           end;
           if p0 *. prob > cutoff then begin
             project sv qubit 0;
             Bytes.set cvals cbit '0';
             walk sv rest cvals (prob *. p0)
           end
         | Reset qubit ->
           let p0, p1 = probabilities sv qubit in
           let total = p0 +. p1 in
           let p0 = p0 /. total and p1 = p1 /. total in
           if p1 *. prob > cutoff then begin
             let sv1 = copy sv in
             project sv1 qubit 1;
             apply_gate sv1 ~controls:[] ~target:qubit (Gates.matrix Gates.X);
             walk sv1 rest (Bytes.copy cvals) (prob *. p1)
           end;
           if p0 *. prob > cutoff then begin
             project sv qubit 0;
             walk sv rest cvals (prob *. p0)
           end)
    end
  in
  let cvals = Bytes.make c.Circ.num_cbits '0' in
  walk (init c.Circ.num_qubits) c.Circ.ops cvals 1.0;
  Classical.sorted_bindings dist

let unitary_matrix (c : Circ.t) =
  let n = c.Circ.num_qubits in
  let dim = 1 lsl n in
  let cols =
    Array.init dim (fun col ->
      let sv = of_bits n (fun q -> (col lsr q) land 1 = 1) in
      let step op =
        match (op : Op.t) with
        | Measure _ | Barrier _ -> ()
        | Apply _ | Swap _ -> apply_unitary_op sv op
        | Reset _ | Cond _ ->
          invalid_arg "Statevector.unitary_matrix: non-unitary circuit"
      in
      List.iter step c.Circ.ops;
      sv.amps)
  in
  Array.init dim (fun row -> Array.init dim (fun col -> cols.(col).(row)))
