(** Stabilizer (Clifford) simulation in the Aaronson–Gottesman tableau
    formalism — a substrate where the paper's non-unitary primitives are
    native and polynomial: measurement outcomes of stabilizer states are
    always deterministic or unbiased coin flips, so the Section 5 branching
    extraction runs without any amplitude bookkeeping at all.

    Only Clifford operations are supported ([H S Sdg X Y Z SX SXdg], [CX CZ],
    [Swap], single-qubit Paulis under any Clifford control are {e not} —
    controls are restricted to [CX]/[CZ] as usual).  Use
    {!is_clifford_circuit} to test applicability; the DD backend covers the
    general case. *)

type t

(** [init n] is the stabilizer state |0...0>. *)
val init : int -> t

val num_qubits : t -> int
val copy : t -> t

(** [is_clifford_gate g] — gates this backend can apply (uncontrolled). *)
val is_clifford_gate : Circuit.Gates.t -> bool

(** [is_clifford_circuit c] — every operation (including conditioned ones)
    is Clifford; measurements and resets are always fine. *)
val is_clifford_circuit : Circuit.Circ.t -> bool

(** [apply_unitary_op st op] applies a Clifford gate/swap.  Raises
    [Invalid_argument] on anything else. *)
val apply_unitary_op : t -> Circuit.Op.t -> unit

(** [measure_probabilities st q] is [(p0, p1)] — always [(1, 0)], [(0, 1)]
    or [(0.5, 0.5)] for stabilizer states. *)
val measure_probabilities : t -> int -> float * float

(** [project st q outcome] collapses qubit [q].  Raises [Invalid_argument]
    if the outcome has probability 0. *)
val project : t -> int -> int -> unit

(** [extract_distribution c] — the Section 5 scheme on the tableau backend:
    deterministic measurements do not branch, random ones branch into two
    probability-1/2 successors.  Exact, polynomial per branch. *)
val extract_distribution : Circuit.Circ.t -> (string * float) list

(** [run_shot ~rng c] samples one end-to-end execution, returning the
    classical bits. *)
val run_shot : rng:Random.State.t -> Circuit.Circ.t -> string
