lib/qsim/statevector.mli: Circuit Cxnum
