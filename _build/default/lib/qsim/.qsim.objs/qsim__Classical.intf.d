lib/qsim/classical.mli: Bytes Circuit Hashtbl
