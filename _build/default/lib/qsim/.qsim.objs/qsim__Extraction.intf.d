lib/qsim/extraction.mli: Circuit Format
