lib/qsim/stabilizer.ml: Array Bytes Circuit Classical Fmt Hashtbl List Random
