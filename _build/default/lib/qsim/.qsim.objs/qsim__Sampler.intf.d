lib/qsim/sampler.mli: Circuit
