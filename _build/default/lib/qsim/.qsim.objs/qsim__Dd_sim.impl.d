lib/qsim/dd_sim.ml: Array Bytes Circuit Cxnum Dd Hashtbl List Option String
