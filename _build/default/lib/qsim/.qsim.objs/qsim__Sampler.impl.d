lib/qsim/sampler.ml: Bytes Circuit Classical Dd Dd_sim Hashtbl List Option Random String
