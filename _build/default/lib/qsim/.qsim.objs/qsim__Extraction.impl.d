lib/qsim/extraction.ml: Array Bytes Circuit Classical Dd Dd_sim Domain Fmt Hashtbl List
