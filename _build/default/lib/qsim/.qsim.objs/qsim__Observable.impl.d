lib/qsim/observable.ml: Array Circuit Cxnum Dd Density List Statevector
