lib/qsim/dd_sim.mli: Circuit Dd
