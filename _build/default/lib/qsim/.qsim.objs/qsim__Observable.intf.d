lib/qsim/observable.mli: Dd Density Statevector
