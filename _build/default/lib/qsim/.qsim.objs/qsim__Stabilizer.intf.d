lib/qsim/stabilizer.mli: Circuit Random
