lib/qsim/classical.ml: Bytes Circuit Hashtbl List Option String
