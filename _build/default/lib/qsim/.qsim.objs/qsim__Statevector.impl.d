lib/qsim/statevector.ml: Array Bool Bytes Circuit Classical Cxnum Float Hashtbl List
