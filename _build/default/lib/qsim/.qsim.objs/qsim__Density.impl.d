lib/qsim/density.ml: Array Bool Bytes Circuit Classical Cxnum Float Hashtbl List String
