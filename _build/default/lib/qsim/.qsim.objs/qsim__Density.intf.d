lib/qsim/density.mli: Circuit Cxnum
