module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

(* Aaronson-Gottesman tableau: rows 0..n-1 are destabilizers, n..2n-1
   stabilizers; each row is a Pauli string with x/z bit vectors and a sign
   bit. *)
type t =
  { n : int
  ; x : Bytes.t array (* (2n) rows of n bytes, 0/1 *)
  ; z : Bytes.t array
  ; r : Bytes.t (* 2n sign bits *)
  }

let getb b i = Bytes.get_uint8 b i
let setb b i v = Bytes.set_uint8 b i v

let init n =
  let x = Array.init (2 * n) (fun _ -> Bytes.make n '\000') in
  let z = Array.init (2 * n) (fun _ -> Bytes.make n '\000') in
  (* destabilizer i = X_i, stabilizer n+i = Z_i *)
  for i = 0 to n - 1 do
    setb x.(i) i 1;
    setb z.(n + i) i 1
  done;
  { n; x; z; r = Bytes.make (2 * n) '\000' }

let num_qubits st = st.n

let copy st =
  { st with
    x = Array.map Bytes.copy st.x
  ; z = Array.map Bytes.copy st.z
  ; r = Bytes.copy st.r
  }

(* single-qubit Clifford conjugations *)
let apply_h st q =
  for i = 0 to (2 * st.n) - 1 do
    let xi = getb st.x.(i) q and zi = getb st.z.(i) q in
    setb st.r i (getb st.r i lxor (xi land zi));
    setb st.x.(i) q zi;
    setb st.z.(i) q xi
  done

let apply_s st q =
  for i = 0 to (2 * st.n) - 1 do
    let xi = getb st.x.(i) q and zi = getb st.z.(i) q in
    setb st.r i (getb st.r i lxor (xi land zi));
    setb st.z.(i) q (zi lxor xi)
  done

let apply_x st q =
  for i = 0 to (2 * st.n) - 1 do
    setb st.r i (getb st.r i lxor getb st.z.(i) q)
  done

let apply_z st q =
  for i = 0 to (2 * st.n) - 1 do
    setb st.r i (getb st.r i lxor getb st.x.(i) q)
  done

let apply_y st q =
  for i = 0 to (2 * st.n) - 1 do
    setb st.r i (getb st.r i lxor (getb st.x.(i) q lxor getb st.z.(i) q))
  done

let apply_cx st c t =
  for i = 0 to (2 * st.n) - 1 do
    let xc = getb st.x.(i) c and zc = getb st.z.(i) c in
    let xt = getb st.x.(i) t and zt = getb st.z.(i) t in
    setb st.r i (getb st.r i lxor (xc land zt land (xt lxor zc lxor 1)));
    setb st.x.(i) t (xt lxor xc);
    setb st.z.(i) c (zc lxor zt)
  done

let is_clifford_gate (g : Gates.t) =
  match g with
  | Gates.I | Gates.X | Gates.Y | Gates.Z | Gates.H | Gates.S | Gates.Sdg
  | Gates.SX | Gates.SXdg -> true
  | Gates.T | Gates.Tdg | Gates.RX _ | Gates.RY _ | Gates.RZ _ | Gates.P _
  | Gates.U2 _ | Gates.U3 _ -> false

let apply_gate st (g : Gates.t) q =
  match g with
  | Gates.I -> ()
  | Gates.X -> apply_x st q
  | Gates.Y -> apply_y st q
  | Gates.Z -> apply_z st q
  | Gates.H -> apply_h st q
  | Gates.S -> apply_s st q
  | Gates.Sdg ->
    apply_s st q;
    apply_z st q
  | Gates.SX ->
    (* sqrt X = H . S . H up to global phase *)
    apply_h st q;
    apply_s st q;
    apply_h st q
  | Gates.SXdg ->
    apply_h st q;
    apply_s st q;
    apply_z st q;
    apply_h st q
  | Gates.T | Gates.Tdg | Gates.RX _ | Gates.RY _ | Gates.RZ _ | Gates.P _
  | Gates.U2 _ | Gates.U3 _ ->
    invalid_arg (Fmt.str "Stabilizer: %s is not a Clifford gate" (Gates.name g))

let apply_unitary_op st (op : Op.t) =
  match op with
  | Apply { gate; controls = []; target } -> apply_gate st gate target
  | Apply { gate = Gates.X; controls = [ { cq; pos = true } ]; target } ->
    apply_cx st cq target
  | Apply { gate = Gates.Z; controls = [ { cq; pos = true } ]; target } ->
    apply_h st target;
    apply_cx st cq target;
    apply_h st target
  | Swap (a, b) ->
    apply_cx st a b;
    apply_cx st b a;
    apply_cx st a b
  | Apply _ -> invalid_arg "Stabilizer: unsupported controlled operation"
  | Measure _ | Reset _ | Cond _ | Barrier _ ->
    invalid_arg "Stabilizer.apply_unitary_op: non-unitary operation"

let clifford_op (op : Op.t) =
  match op with
  | Apply { gate; controls = []; _ } -> is_clifford_gate gate
  | Apply { gate = Gates.X; controls = [ { pos = true; _ } ]; _ } -> true
  | Apply { gate = Gates.Z; controls = [ { pos = true; _ } ]; _ } -> true
  | Apply _ -> false
  | Swap _ | Measure _ | Reset _ | Barrier _ -> true
  | Cond _ -> false (* handled by the recursive check below *)

let rec clifford_op_rec (op : Op.t) =
  match op with
  | Cond { op; _ } -> clifford_op_rec op
  | _ -> clifford_op op

let is_clifford_circuit (c : Circ.t) = List.for_all clifford_op_rec c.Circ.ops

(* phase-tracking row multiplication: row h <- row h * row i (AG's rowsum),
   with the exponent of the i prefactor accumulated mod 4 *)
let rowsum st h i =
  let g x1 z1 x2 z2 =
    (* exponent of i contributed by multiplying single-qubit Paulis *)
    if x1 = 0 && z1 = 0 then 0
    else if x1 = 1 && z1 = 1 then z2 - x2
    else if x1 = 1 && z1 = 0 then z2 * ((2 * x2) - 1)
    else x2 * (1 - (2 * z2))
  in
  let total = ref ((2 * getb st.r h) + (2 * getb st.r i)) in
  for j = 0 to st.n - 1 do
    total :=
      !total + g (getb st.x.(i) j) (getb st.z.(i) j) (getb st.x.(h) j) (getb st.z.(h) j)
  done;
  (* stabilizer-row sums are always 0 or 2 mod 4; destabilizer rows may
     anticommute with the row being merged in, giving odd sums — their
     phases carry no meaning, so any consistent choice works *)
  let m = ((!total mod 4) + 4) mod 4 in
  setb st.r h ((m / 2) land 1);
  for j = 0 to st.n - 1 do
    setb st.x.(h) j (getb st.x.(h) j lxor getb st.x.(i) j);
    setb st.z.(h) j (getb st.z.(h) j lxor getb st.z.(i) j)
  done

(* does any stabilizer row anticommute with Z_q? *)
let random_row st q =
  let rec find p = if p = 2 * st.n then None
    else if getb st.x.(p) q = 1 then Some p
    else find (p + 1)
  in
  find st.n

(* deterministic outcome of measuring Z_q: combine the stabilizer rows
   singled out by the destabilizers into a scratch row *)
let deterministic_outcome st q =
  let scratch_x = Bytes.make st.n '\000' and scratch_z = Bytes.make st.n '\000' in
  let scratch_r = ref 0 in
  (* emulate rowsum into a scratch row *)
  let g x1 z1 x2 z2 =
    if x1 = 0 && z1 = 0 then 0
    else if x1 = 1 && z1 = 1 then z2 - x2
    else if x1 = 1 && z1 = 0 then z2 * ((2 * x2) - 1)
    else x2 * (1 - (2 * z2))
  in
  let add_row i =
    let total = ref ((2 * !scratch_r) + (2 * getb st.r i)) in
    for j = 0 to st.n - 1 do
      total := !total + g (getb st.x.(i) j) (getb st.z.(i) j) (getb scratch_x j) (getb scratch_z j)
    done;
    let m = ((!total mod 4) + 4) mod 4 in
    scratch_r := m / 2;
    for j = 0 to st.n - 1 do
      setb scratch_x j (getb scratch_x j lxor getb st.x.(i) j);
      setb scratch_z j (getb scratch_z j lxor getb st.z.(i) j)
    done
  in
  for i = 0 to st.n - 1 do
    if getb st.x.(i) q = 1 then add_row (i + st.n)
  done;
  !scratch_r

let measure_probabilities st q =
  match random_row st q with
  | Some _ -> (0.5, 0.5)
  | None -> if deterministic_outcome st q = 0 then (1.0, 0.0) else (0.0, 1.0)

(* collapse after a random-outcome measurement *)
let collapse_random st p q outcome =
  for i = 0 to (2 * st.n) - 1 do
    if i <> p && getb st.x.(i) q = 1 then rowsum st i p
  done;
  (* destabilizer takes the old stabilizer row; the stabilizer becomes
     (+/-) Z_q *)
  Bytes.blit st.x.(p) 0 st.x.(p - st.n) 0 st.n;
  Bytes.blit st.z.(p) 0 st.z.(p - st.n) 0 st.n;
  setb st.r (p - st.n) (getb st.r p);
  Bytes.fill st.x.(p) 0 st.n '\000';
  Bytes.fill st.z.(p) 0 st.n '\000';
  setb st.z.(p) q 1;
  setb st.r p outcome

let project st q outcome =
  match random_row st q with
  | Some p -> collapse_random st p q outcome
  | None ->
    if deterministic_outcome st q <> outcome then
      invalid_arg "Stabilizer.project: outcome has zero probability"


(* Section 5 extraction on the tableau: deterministic measurements follow a
   single branch, random ones split 50/50. *)
let extract_distribution (c : Circ.t) =
  if not (is_clifford_circuit c) then
    invalid_arg "Stabilizer.extract_distribution: non-Clifford circuit";
  let dist : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let rec walk st ops cvals prob =
    match ops with
    | [] -> Classical.add_weighted dist (Bytes.to_string cvals) prob
    | op :: rest ->
      (match (op : Op.t) with
       | Barrier _ -> walk st rest cvals prob
       | Apply _ | Swap _ ->
         apply_unitary_op st op;
         walk st rest cvals prob
       | Cond { cond; op } ->
         if Classical.cond_holds cond cvals then apply_unitary_op st op;
         walk st rest cvals prob
       | Reset q ->
         (* a reset of an entangled qubit is a branching point too: the two
            projection outcomes leave different states on the other qubits,
            they just feed the same classical assignment *)
         (match random_row st q with
          | None ->
            if deterministic_outcome st q = 1 then apply_x st q;
            walk st rest cvals prob
          | Some p ->
            let other = copy st in
            collapse_random st p q 0;
            walk st rest cvals (prob /. 2.0);
            (match random_row other q with
             | Some p1 ->
               collapse_random other p1 q 1;
               apply_x other q
             | None -> assert false);
            walk other rest (Bytes.copy cvals) (prob /. 2.0))
       | Measure { qubit; cbit } ->
         (match random_row st qubit with
          | None ->
            let outcome = deterministic_outcome st qubit in
            Bytes.set cvals cbit (if outcome = 1 then '1' else '0');
            walk st rest cvals prob
          | Some p ->
            let other = copy st in
            collapse_random st p qubit 0;
            Bytes.set cvals cbit '0';
            let cvals1 = Bytes.copy cvals in
            Bytes.set cvals1 cbit '1';
            walk st rest cvals (prob /. 2.0);
            (match random_row other qubit with
             | Some p1 -> collapse_random other p1 qubit 1
             | None -> assert false);
            walk other rest cvals1 (prob /. 2.0)))
  in
  walk (init c.Circ.num_qubits) c.Circ.ops (Bytes.make c.Circ.num_cbits '0') 1.0;
  Classical.sorted_bindings dist

let run_shot ~rng (c : Circ.t) =
  let st = init c.Circ.num_qubits in
  let cvals = Bytes.make c.Circ.num_cbits '0' in
  let sample q =
    match random_row st q with
    | None -> deterministic_outcome st q
    | Some p ->
      let outcome = if Random.State.bool rng then 1 else 0 in
      collapse_random st p q outcome;
      outcome
  in
  let step op =
    match (op : Op.t) with
    | Barrier _ -> ()
    | Apply _ | Swap _ -> apply_unitary_op st op
    | Cond { cond; op } ->
      if Classical.cond_holds cond cvals then apply_unitary_op st op
    | Reset q ->
      let outcome = sample q in
      if outcome = 1 then apply_x st q
    | Measure { qubit; cbit } ->
      let outcome = sample qubit in
      Bytes.set cvals cbit (if outcome = 1 then '1' else '0')
  in
  List.iter step c.Circ.ops;
  Bytes.to_string cvals
