(** Classical-bit bookkeeping shared by the extraction implementations. *)

(** [cond_holds cond cvals] evaluates a classical condition against the
    current bit values ([cvals] is a byte per classical bit, ['0'] or
    ['1']). *)
val cond_holds : Circuit.Op.cond -> Bytes.t -> bool

(** [add_weighted tbl key prob] accumulates [prob] onto [key]. *)
val add_weighted : (string, float) Hashtbl.t -> string -> float -> unit

(** [sorted_bindings tbl] lists the table sorted by key. *)
val sorted_bindings : (string, float) Hashtbl.t -> (string * float) list
