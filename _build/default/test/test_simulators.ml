(* Tests for the alternative simulation backends the paper's Section 5
   discusses: the density-matrix simulator (with classical register) and the
   stochastic shot sampler — both must agree with the extraction scheme. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module Cx = Cxnum.Cx

let extraction c = (Qsim.Extraction.run c).Qsim.Extraction.distribution

(* -- density matrix ---------------------------------------------------- *)

let test_density_pure_state () =
  let c = Circ.make ~name:"bell" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0; Op.controlled Gates.X ~control:0 ~target:1 ]
  in
  let d = Qsim.Density.run c in
  Util.check_float "trace" 1.0 (Qsim.Density.trace d);
  Util.check_float "purity of a pure state" 1.0 (Qsim.Density.purity d);
  Util.check_float "P(q1=1)" 0.5 (Qsim.Density.qubit_probability d 1);
  let rho = Qsim.Density.final_density d in
  Util.check_cx "rho_00,11 coherence" (Cx.of_float 0.5) rho.(0).(3)

let test_density_reset_decoheres () =
  (* H then reset: the measurement inside the reset destroys coherence but
     the channel keeps the state pure |0> *)
  let c = Circ.make ~name:"hr" ~qubits:1 ~cbits:0 [ Op.apply Gates.H 0; Op.Reset 0 ] in
  let d = Qsim.Density.run c in
  Util.check_float "purity" 1.0 (Qsim.Density.purity d);
  Util.check_float "back to |0>" 0.0 (Qsim.Density.qubit_probability d 0);
  Alcotest.(check int) "reset does not split the ensemble" 1 (Qsim.Density.entries d)

let test_density_measurement_dephasing () =
  (* H then measure (recorded): the overall state becomes maximally mixed *)
  let c =
    Circ.make ~name:"hm" ~qubits:1 ~cbits:1
      [ Op.apply Gates.H 0; Op.Measure { qubit = 0; cbit = 0 } ]
  in
  let d = Qsim.Density.run c in
  Util.check_float "half purity" 0.5 (Qsim.Density.purity d);
  Alcotest.(check int) "two ensemble entries" 2 (Qsim.Density.entries d);
  Util.check_distributions "unbiased" [ ("0", 0.5); ("1", 0.5) ]
    (Qsim.Density.distribution d)

let test_density_matches_extraction_iqpe () =
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let d = Qsim.Density.run dyn in
  Util.check_distributions "IQPE density = extraction" (extraction dyn)
    (Qsim.Density.distribution d)

let test_density_teleport () =
  let prep = [ Gates.RY 0.9 ] in
  let tele = Algorithms.Teleport.circuit ~prep in
  let d = Qsim.Density.run tele in
  Util.check_distributions "teleport density = extraction" (extraction tele)
    (Qsim.Density.distribution d)

let prop_density_matches_extraction =
  QCheck.Test.make ~name:"density simulation = extraction (random dynamic)" ~count:40
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:3 ~ops:12 in
      let d = Qsim.Density.run dyn in
      Qcec.Distribution.total_variation (extraction dyn) (Qsim.Density.distribution d)
      < 1e-8)

let prop_density_trace_preserved =
  QCheck.Test.make ~name:"density simulation is trace preserving" ~count:40
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:14 in
      Float.abs (Qsim.Density.trace (Qsim.Density.run dyn) -. 1.0) < 1e-9)

(* -- sampler ------------------------------------------------------------ *)

let test_sampler_deterministic_circuit () =
  (* representable phase: IQPE is deterministic, so every shot agrees *)
  let dyn = Algorithms.Qpe.dynamic ~theta:(5.0 /. 8.0) ~bits:3 in
  let r = Qsim.Sampler.run ~seed:1 ~shots:64 dyn in
  (match r.Qsim.Sampler.counts with
   | [ ("101", 64) ] -> ()
   | _ -> Alcotest.fail "expected all shots on 101");
  Util.check_distributions "empirical = exact" (extraction dyn)
    (Qsim.Sampler.empirical r)

let test_sampler_converges () =
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let exact = extraction dyn in
  let r = Qsim.Sampler.run ~seed:7 ~shots:20000 dyn in
  let tv = Qcec.Distribution.total_variation exact (Qsim.Sampler.empirical r) in
  (* O(1/sqrt shots): ~0.007 expected spread over 8 outcomes; be generous *)
  Alcotest.(check bool) (Fmt.str "TVD %.4f within statistical error" tv) true (tv < 0.05)

let test_sampler_reproducible () =
  let dyn = Algorithms.Teleport.circuit ~prep:[ Gates.RY 0.4 ] in
  let a = Qsim.Sampler.run ~seed:42 ~shots:100 dyn in
  let b = Qsim.Sampler.run ~seed:42 ~shots:100 dyn in
  Alcotest.(check bool) "same seed, same counts" true
    (a.Qsim.Sampler.counts = b.Qsim.Sampler.counts)

let prop_sampler_within_statistical_error =
  QCheck.Test.make ~name:"sampler converges to extraction" ~count:10
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:2 ~cbits:2 ~ops:8 in
      let exact = extraction dyn in
      let r = Qsim.Sampler.run ~seed ~shots:4000 dyn in
      Qcec.Distribution.total_variation exact (Qsim.Sampler.empirical r) < 0.1)

(* -- new algorithm families against the oracles ------------------------- *)

let test_deutsch_jozsa_outcomes () =
  let n = 5 in
  (* constant: all-zero outcome with certainty *)
  let c = Algorithms.Deutsch_jozsa.dynamic (Algorithms.Deutsch_jozsa.Constant true) n in
  (match extraction c with
   | [ (bits, p) ] ->
     Alcotest.(check string) "constant -> all zeros" (String.make n '0') bits;
     Util.check_float "certainty" 1.0 p
   | _ -> Alcotest.fail "expected deterministic outcome");
  (* balanced: never the all-zero outcome *)
  let oracle = Algorithms.Deutsch_jozsa.random_balanced ~seed:5 n in
  let c = Algorithms.Deutsch_jozsa.dynamic oracle n in
  List.iter
    (fun (bits, p) ->
      if bits = String.make n '0' && p > 1e-9 then
        Alcotest.fail "balanced oracle produced all-zero outcome")
    (extraction c)

let test_deutsch_jozsa_equivalence () =
  let n = 5 in
  List.iter
    (fun oracle ->
      let pair = Algorithms.Deutsch_jozsa.make oracle n in
      let r =
        Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static
          pair.Algorithms.Pair.static_circuit pair.Algorithms.Pair.dynamic_circuit
      in
      Alcotest.(check bool) "DJ static = dynamic" true r.Qcec.Verify.equivalent)
    [ Algorithms.Deutsch_jozsa.Constant false
    ; Algorithms.Deutsch_jozsa.Constant true
    ; Algorithms.Deutsch_jozsa.random_balanced ~seed:9 n
    ]

let test_grover_success_probability () =
  let qubits = 4 in
  let iterations = Algorithms.Grover.default_iterations ~qubits in
  let c = Algorithms.Grover.static ~marked:11 ~qubits ~iterations () in
  let p = Dd.Pkg.create () in
  let final = Qsim.Dd_sim.simulate p c in
  let measured = Dd.Vec.amplitude p final ~n:qubits (fun q -> (11 lsr q) land 1 = 1) in
  let expected = Algorithms.Grover.success_probability ~qubits ~iterations in
  Util.check_float ~tol:1e-9 "analytic success probability" expected
    (Cxnum.Cx.abs2 measured);
  Alcotest.(check bool) "high success" true (Cxnum.Cx.abs2 measured > 0.9)

let test_grover_matches_dense () =
  let c = Algorithms.Grover.static ~marked:5 ~qubits:3 ~iterations:2 () in
  Util.check_circuit_unitary "grover DD vs dense" c

let suite =
  [ Alcotest.test_case "density: pure state" `Quick test_density_pure_state
  ; Alcotest.test_case "density: reset channel" `Quick test_density_reset_decoheres
  ; Alcotest.test_case "density: measurement dephasing" `Quick
      test_density_measurement_dephasing
  ; Alcotest.test_case "density: IQPE distribution" `Quick
      test_density_matches_extraction_iqpe
  ; Alcotest.test_case "density: teleport" `Quick test_density_teleport
  ; Alcotest.test_case "sampler: deterministic circuit" `Quick
      test_sampler_deterministic_circuit
  ; Alcotest.test_case "sampler: convergence" `Quick test_sampler_converges
  ; Alcotest.test_case "sampler: reproducible" `Quick test_sampler_reproducible
  ; Alcotest.test_case "deutsch-jozsa outcomes" `Quick test_deutsch_jozsa_outcomes
  ; Alcotest.test_case "deutsch-jozsa equivalence" `Quick test_deutsch_jozsa_equivalence
  ; Alcotest.test_case "grover success probability" `Quick
      test_grover_success_probability
  ; Alcotest.test_case "grover vs dense oracle" `Quick test_grover_matches_dense
  ; Util.qtest prop_density_matches_extraction
  ; Util.qtest prop_density_trace_preserved
  ; Util.qtest prop_sampler_within_statistical_error
  ]
