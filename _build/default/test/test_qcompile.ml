(* Compiler tests: basis decomposition and linear mapping must both preserve
   functionality — verified with the equivalence checker itself, plus dense
   oracles for the primitive decompositions. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module Cx = Cxnum.Cx

let test_zyz_reconstruction () =
  let gates =
    [ Gates.H; Gates.S; Gates.T; Gates.SX; Gates.X; Gates.Y; Gates.Z
    ; Gates.RX 0.7; Gates.RY (-1.3); Gates.RZ 2.1; Gates.P 0.5
    ; Gates.U3 (0.9, -0.4, 1.8); Gates.U2 (0.2, 0.6); Gates.I
    ]
  in
  List.iter
    (fun g ->
      let u = Gates.matrix g in
      let alpha, beta, gamma, delta = Qcompile.Decompose.zyz u in
      (* rebuild e^{i alpha} Rz(beta) Ry(gamma) Rz(delta) *)
      let mul a b =
        [| Cx.add (Cx.mul a.(0) b.(0)) (Cx.mul a.(1) b.(2))
         ; Cx.add (Cx.mul a.(0) b.(1)) (Cx.mul a.(1) b.(3))
         ; Cx.add (Cx.mul a.(2) b.(0)) (Cx.mul a.(3) b.(2))
         ; Cx.add (Cx.mul a.(2) b.(1)) (Cx.mul a.(3) b.(3))
        |]
      in
      let m =
        mul (Gates.matrix (Gates.RZ beta))
          (mul (Gates.matrix (Gates.RY gamma)) (Gates.matrix (Gates.RZ delta)))
      in
      let phase = Cx.polar 1.0 alpha in
      Array.iteri
        (fun i x ->
          Util.check_cx (Fmt.str "zyz %s entry %d" (Gates.name g) i) x
            (Cx.mul phase m.(i)))
        u)
    gates

let test_controlled_u_matches_dense () =
  let gates =
    [ Gates.H; Gates.T; Gates.Y; Gates.RX 0.8; Gates.U3 (1.2, 0.3, -0.7); Gates.P 1.1
    ; Gates.Z; Gates.RZ 0.9
    ]
  in
  List.iter
    (fun g ->
      let direct =
        Circ.make ~name:"direct" ~qubits:2 ~cbits:0
          [ Op.controlled g ~control:0 ~target:1 ]
      in
      let decomposed =
        Circ.make ~name:"dec" ~qubits:2 ~cbits:0
          (Qcompile.Decompose.controlled_u ~control:0 ~target:1 (Gates.matrix g))
      in
      let a = Qsim.Statevector.unitary_matrix direct in
      let b = Qsim.Statevector.unitary_matrix decomposed in
      if not (Util.matrices_equal ~tol:1e-8 a b) then
        Alcotest.failf "controlled-%s decomposition differs (exactly)" (Gates.name g))
    gates

let test_toffoli_swap_exact () =
  let direct =
    Circ.make ~name:"d" ~qubits:3 ~cbits:0
      [ Op.Apply
          { gate = Gates.X
          ; controls = [ { cq = 0; pos = true }; { cq = 1; pos = true } ]
          ; target = 2
          }
      ; Op.Swap (0, 2)
      ]
  in
  let decomposed = Qcompile.Decompose.to_basis direct in
  let a = Qsim.Statevector.unitary_matrix direct in
  let b = Qsim.Statevector.unitary_matrix decomposed in
  Alcotest.(check bool) "toffoli+swap exact" true (Util.matrices_equal ~tol:1e-8 a b)

let test_to_basis_gate_set () =
  let c = Algorithms.Qpe.static ~theta:0.3 ~bits:4 in
  let out = Qcompile.Decompose.to_basis c in
  let ok_op op =
    match (op : Op.t) with
    | Apply { gate = Gates.U3 _; controls = []; _ } -> true
    | Apply { gate = Gates.X; controls = [ { pos = true; _ } ]; _ } -> true
    | Measure _ | Barrier _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "only u3 and cx remain" true (List.for_all ok_op out.Circ.ops)

let prop_decompose_preserves_functionality =
  QCheck.Test.make ~name:"to_basis preserves functionality (up to phase)" ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:3 ~gates:12 in
      let out = Qcompile.Decompose.to_basis c in
      let a = Qsim.Statevector.unitary_matrix c in
      let b = Qsim.Statevector.unitary_matrix out in
      Util.matrices_equal_up_to_phase ~tol:1e-7 a b)

let prop_decompose_dynamic_preserves_distribution =
  QCheck.Test.make ~name:"to_basis preserves dynamic distributions" ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:10 in
      let out = Qcompile.Decompose.to_basis dyn in
      let d1 = Qsim.Statevector.extract_distribution dyn in
      let d2 = Qsim.Statevector.extract_distribution out in
      Qcec.Distribution.total_variation d1 d2 < 1e-8)

let test_mapping_adjacency () =
  let c = Algorithms.Ghz.static 5 in
  let mapped = (Qcompile.Mapping.linear c).Qcompile.Mapping.circuit in
  let adjacent op =
    match (op : Op.t) with
    | Apply { controls = [ { cq; _ } ]; target; _ } -> abs (cq - target) = 1
    | Apply { controls = []; _ } | Measure _ | Barrier _ -> true
    | Swap (a, b) -> abs (a - b) = 1
    | _ -> false
  in
  Alcotest.(check bool) "all 2q gates adjacent" true
    (List.for_all adjacent mapped.Circ.ops)

let test_mapping_preserves_functionality () =
  (* long-range entangler forces routing; the checker closes the loop *)
  let c =
    Circ.make ~name:"lr" ~qubits:4 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.controlled Gates.X ~control:0 ~target:3
      ; Op.controlled (Gates.P 0.6) ~control:3 ~target:1
      ; Op.apply Gates.H 2
      ; Op.controlled Gates.X ~control:2 ~target:0
      ]
  in
  let out = Qcompile.Mapping.linear (Qcompile.Decompose.to_basis c) in
  Alcotest.(check bool) "swaps were inserted" true (out.Qcompile.Mapping.swaps_inserted > 0);
  let r = Qcec.Verify.functional c out.Qcompile.Mapping.circuit in
  Alcotest.(check bool) "mapped circuit equivalent" true r.Qcec.Verify.equivalent

let prop_mapping_preserves_functionality =
  QCheck.Test.make ~name:"linear mapping preserves functionality" ~count:20
    QCheck.(int_range 0 100000)
    (fun seed ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:4 ~gates:10 in
      let basis = Qcompile.Decompose.to_basis c in
      let out = Qcompile.Mapping.linear basis in
      (Qcec.Verify.functional c out.Qcompile.Mapping.circuit).Qcec.Verify.equivalent)

let test_coupled_mapping_adjacency () =
  let edges = Qcompile.Mapping.ibmq_london in
  let adjacent a b = List.mem (a, b) edges || List.mem (b, a) edges in
  let c =
    Circ.make ~name:"t" ~qubits:5 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.controlled Gates.X ~control:0 ~target:4 (* distance 3 on the T *)
      ; Op.controlled Gates.X ~control:2 ~target:4
      ; Op.controlled (Gates.P 0.4) ~control:0 ~target:2
      ]
  in
  let out = Qcompile.Mapping.coupled ~edges c in
  let ok op =
    match (op : Op.t) with
    | Apply { controls = [ { cq; _ } ]; target; _ } -> adjacent cq target
    | Apply { controls = []; _ } | Measure _ | Barrier _ -> true
    | Swap (a, b) -> adjacent a b
    | _ -> false
  in
  Alcotest.(check bool) "all 2q gates on coupled edges" true
    (List.for_all ok out.Qcompile.Mapping.circuit.Circ.ops);
  let r = Qcec.Verify.functional c out.Qcompile.Mapping.circuit in
  Alcotest.(check bool) "coupled mapping equivalent" true r.Qcec.Verify.equivalent

let prop_coupled_mapping_preserves_functionality =
  QCheck.Test.make ~name:"T-coupling mapping preserves functionality" ~count:15
    QCheck.(int_range 0 100000)
    (fun seed ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:5 ~gates:12 in
      let basis = Qcompile.Decompose.to_basis c in
      let out = Qcompile.Mapping.coupled ~edges:Qcompile.Mapping.ibmq_london basis in
      (Qcec.Verify.functional c out.Qcompile.Mapping.circuit).Qcec.Verify.equivalent)

let test_compile_then_verify_dynamic_qpe () =
  (* the full use case from the paper's introduction: compile a dynamic
     circuit (decompose only — mapping needs no routing on 2 qubits) and
     verify it against the original static algorithm *)
  let pair = Algorithms.Qpe.paper_example () in
  let compiled = Qcompile.Decompose.to_basis pair.Algorithms.Pair.dynamic_circuit in
  let r =
    Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static
      pair.Algorithms.Pair.static_circuit compiled
  in
  Alcotest.(check bool) "compiled dynamic QPE equivalent to static" true
    r.Qcec.Verify.equivalent

let suite =
  [ Alcotest.test_case "ZYZ reconstruction" `Quick test_zyz_reconstruction
  ; Alcotest.test_case "controlled-U decomposition exact" `Quick
      test_controlled_u_matches_dense
  ; Alcotest.test_case "toffoli and swap exact" `Quick test_toffoli_swap_exact
  ; Alcotest.test_case "to_basis gate set" `Quick test_to_basis_gate_set
  ; Alcotest.test_case "mapping adjacency" `Quick test_mapping_adjacency
  ; Alcotest.test_case "mapping preserves functionality" `Quick
      test_mapping_preserves_functionality
  ; Alcotest.test_case "coupled (T-graph) mapping" `Quick test_coupled_mapping_adjacency
  ; Util.qtest prop_coupled_mapping_preserves_functionality
  ; Alcotest.test_case "compile+verify dynamic QPE" `Quick
      test_compile_then_verify_dynamic_qpe
  ; Util.qtest prop_decompose_preserves_functionality
  ; Util.qtest prop_decompose_dynamic_preserves_distribution
  ; Util.qtest prop_mapping_preserves_functionality
  ]
