(* Complex kernel and tolerance-interning tests. *)

module Cx = Cxnum.Cx
module Ct = Cxnum.Cx_table

let test_constants () =
  Util.check_cx "one" (Cx.make 1.0 0.0) Cx.one;
  Util.check_cx "i*i" Cx.minus_one (Cx.mul Cx.i Cx.i);
  Util.check_float "sqrt2_inv" (1.0 /. Float.sqrt 2.0) Cx.sqrt2_inv

let test_arithmetic () =
  let a = Cx.make 1.5 (-2.0) and b = Cx.make (-0.25) 3.0 in
  Util.check_cx "add" (Cx.make 1.25 1.0) (Cx.add a b);
  Util.check_cx "sub" (Cx.make 1.75 (-5.0)) (Cx.sub a b);
  Util.check_cx "mul" (Cx.make 5.625 5.0) (Cx.mul a b);
  Util.check_cx "div-roundtrip" a (Cx.mul (Cx.div a b) b);
  Util.check_cx "inv" Cx.one (Cx.mul a (Cx.inv a));
  Util.check_cx "conj-involution" a (Cx.conj (Cx.conj a));
  Util.check_float "abs2" (Cx.abs2 a) (Cx.abs a *. Cx.abs a)

let test_e_i_pi_exact () =
  (* multiples of pi/4 must be bit-exact *)
  let v = Cx.e_i_pi 0.0 in
  Alcotest.(check bool) "e^0 exact" true (v = Cx.one);
  let v = Cx.e_i_pi 1.0 in
  Alcotest.(check bool) "e^{i pi} exact" true (v = Cx.minus_one);
  let v = Cx.e_i_pi 0.5 in
  Alcotest.(check bool) "e^{i pi/2} exact" true (v = Cx.i);
  let v = Cx.e_i_pi 0.25 in
  Util.check_cx "e^{i pi/4}" (Cx.make Cx.sqrt2_inv Cx.sqrt2_inv) v;
  Alcotest.(check bool) "components exact"
    true
    (v.Cx.re = Cx.sqrt2_inv && v.Cx.im = Cx.sqrt2_inv);
  (* negative arguments and periodicity *)
  Util.check_cx "e^{-i pi/2}" (Cx.neg Cx.i) (Cx.e_i_pi (-0.5));
  Util.check_cx "periodicity" (Cx.e_i_pi 0.3) (Cx.e_i_pi 2.3)

let test_polar () =
  let z = Cx.polar 2.0 (Float.pi /. 6.0) in
  Util.check_float "polar abs" 2.0 (Cx.abs z);
  Util.check_float "polar arg" (Float.pi /. 6.0) (Cx.arg z);
  Util.check_cx "sqrt" z (Cx.mul (Cx.sqrt z) (Cx.sqrt z))

let test_table_identifies_close_values () =
  let t = Ct.create ~tol:1e-10 ()
  in
  let a = Ct.lookup t (Cx.make 0.5 0.25) in
  let b = Ct.lookup t (Cx.make (0.5 +. 1e-12) (0.25 -. 1e-12)) in
  Alcotest.(check int) "same id for close values" a.Ct.id b.Ct.id;
  let c = Ct.lookup t (Cx.make 0.5001 0.25) in
  Alcotest.(check bool) "distinct id for far values" true (a.Ct.id <> c.Ct.id)

let test_table_relative_scale () =
  (* values at magnitude 1e-20 must intern non-zero and identify relatively *)
  let t = Ct.create () in
  let tiny = 5.4e-20 in
  let a = Ct.lookup t (Cx.make tiny 0.0) in
  Alcotest.(check bool) "tiny value is not zero" false (Ct.is_zero a);
  let b = Ct.lookup t (Cx.make (tiny *. (1.0 +. 1e-12)) 0.0) in
  Alcotest.(check int) "relative identification at 1e-20" a.Ct.id b.Ct.id;
  let c = Ct.lookup t (Cx.make (tiny *. 1.001) 0.0) in
  Alcotest.(check bool) "relative distinction at 1e-20" true (a.Ct.id <> c.Ct.id)

let test_table_zero_one () =
  let t = Ct.create () in
  Alcotest.(check bool) "0 interns to zero" true (Ct.is_zero (Ct.lookup t Cx.zero));
  Alcotest.(check bool) "1 interns to one" true (Ct.is_one (Ct.lookup t Cx.one));
  let near_one = Ct.lookup t (Cx.make (1.0 +. 1e-13) 1e-13) in
  Alcotest.(check bool) "value near 1 interns to one" true (Ct.is_one near_one);
  let sub = Ct.lookup t (Cx.make 1e-300 0.0) in
  Alcotest.(check bool) "below hard floor is zero" true (Ct.is_zero sub)

let prop_interning_idempotent =
  QCheck.Test.make ~name:"interning is idempotent" ~count:500
    QCheck.(pair (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
    (fun (re, im) ->
      let t = Ct.create () in
      let a = Ct.lookup t (Cx.make re im) in
      let b = Ct.lookup t (Ct.to_cx a) in
      a.Ct.id = b.Ct.id)

let prop_mul_commutes =
  QCheck.Test.make ~name:"multiplication commutes" ~count:500
    QCheck.(
      quad (float_range (-2.) 2.) (float_range (-2.) 2.) (float_range (-2.) 2.)
        (float_range (-2.) 2.))
    (fun (a, b, c, d) ->
      let x = Cx.make a b and y = Cx.make c d in
      Util.cx_close (Cx.mul x y) (Cx.mul y x))

let prop_abs_multiplicative =
  QCheck.Test.make ~name:"|xy| = |x||y|" ~count:500
    QCheck.(
      quad (float_range (-2.) 2.) (float_range (-2.) 2.) (float_range (-2.) 2.)
        (float_range (-2.) 2.))
    (fun (a, b, c, d) ->
      let x = Cx.make a b and y = Cx.make c d in
      Float.abs (Cx.abs (Cx.mul x y) -. (Cx.abs x *. Cx.abs y)) < 1e-9)

let suite =
  [ Alcotest.test_case "constants" `Quick test_constants
  ; Alcotest.test_case "arithmetic" `Quick test_arithmetic
  ; Alcotest.test_case "e_i_pi exactness" `Quick test_e_i_pi_exact
  ; Alcotest.test_case "polar form" `Quick test_polar
  ; Alcotest.test_case "table identifies close values" `Quick
      test_table_identifies_close_values
  ; Alcotest.test_case "table works at tiny scales" `Quick test_table_relative_scale
  ; Alcotest.test_case "table zero/one handling" `Quick test_table_zero_one
  ; Util.qtest prop_interning_idempotent
  ; Util.qtest prop_mul_commutes
  ; Util.qtest prop_abs_multiplicative
  ]
