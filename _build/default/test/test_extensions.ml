(* Tests for the extension features: automatic measurement-based wire
   alignment, the lookahead strategy, multi-controlled decomposition, and
   noisy density simulation. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module Cx = Cxnum.Cx

(* -- automatic alignment ------------------------------------------------- *)

let test_auto_align_families () =
  (* the pairs verify WITHOUT the hand-written permutation *)
  let check name (pair : Algorithms.Pair.t) =
    let r =
      Qcec.Verify.functional pair.Algorithms.Pair.static_circuit
        pair.Algorithms.Pair.dynamic_circuit
    in
    Alcotest.(check bool) (name ^ " auto-aligned") true r.Qcec.Verify.equivalent
  in
  check "BV" (Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:3 6));
  check "QFT" (Algorithms.Qft.make 6);
  check "QPE" (Algorithms.Qpe.paper_example ());
  check "DJ" (Algorithms.Deutsch_jozsa.make (Algorithms.Deutsch_jozsa.random_balanced ~seed:1 5) 5)

let test_auto_align_matches_known_perm () =
  let pair = Algorithms.Qpe.paper_example () in
  let static = pair.Algorithms.Pair.static_circuit in
  let transformed =
    Transform.Dynamic.transform pair.Algorithms.Pair.dynamic_circuit
  in
  match Qcec.Verify.measurement_alignment static transformed with
  | None -> Alcotest.fail "expected an alignment"
  | Some perm ->
    Alcotest.(check (array int)) "inferred = generator's"
      pair.Algorithms.Pair.dyn_to_static perm

let test_auto_align_disabled () =
  let pair = Algorithms.Qft.make 4 in
  let r =
    Qcec.Verify.functional ~auto_align:false pair.Algorithms.Pair.static_circuit
      pair.Algorithms.Pair.dynamic_circuit
  in
  (* without alignment the wires are reversed, so they must NOT match *)
  Alcotest.(check bool) "misaligned circuits differ" false r.Qcec.Verify.equivalent

let test_alignment_rejects_mismatch () =
  let a = Algorithms.Ghz.static 3 in
  let b =
    (* same size but measuring fewer bits *)
    Circ.make ~name:"b" ~qubits:3 ~cbits:3
      [ Op.apply Gates.H 0; Op.Measure { qubit = 0; cbit = 0 } ]
  in
  Alcotest.(check bool) "no alignment for mismatched measurements" true
    (Qcec.Verify.measurement_alignment a b = None)

(* -- lookahead strategy --------------------------------------------------- *)

let test_lookahead_positive_negative () =
  let pair = Algorithms.Qpe.make_textbook ~theta:0.3 ~bits:5 in
  let r =
    Qcec.Verify.functional ~strategy:Qcec.Strategy.Lookahead
      pair.Algorithms.Pair.static_circuit pair.Algorithms.Pair.dynamic_circuit
  in
  Alcotest.(check bool) "lookahead proves equivalence" true r.Qcec.Verify.equivalent;
  let broken =
    let ops = Op.apply (Gates.P 0.2) 0 :: pair.Algorithms.Pair.static_circuit.Circ.ops in
    { pair.Algorithms.Pair.static_circuit with Circ.ops = ops }
  in
  let r =
    Qcec.Verify.functional ~strategy:Qcec.Strategy.Lookahead broken
      pair.Algorithms.Pair.dynamic_circuit
  in
  Alcotest.(check bool) "lookahead catches difference" false r.Qcec.Verify.equivalent

let prop_all_strategies_agree =
  (* The exact strategies must agree with the ground truth in both
     directions.  Simulative checking is one-sided: a fidelity mismatch
     proves non-equivalence, but agreement on finitely many stimuli cannot
     prove equivalence (the mutation may act trivially on the sampled
     states), so it is only required to accept equal circuits. *)
  QCheck.Test.make ~name:"strategies agree on random circuits" ~count:15
    QCheck.(pair (int_range 0 100000) bool)
    (fun (seed, mutate) ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:3 ~gates:14 in
      let c' =
        if mutate then begin
          let ops = c.Circ.ops @ [ Op.apply (Gates.RY 0.17) 0 ] in
          { c with Circ.ops = ops }
        end
        else c
      in
      let expected = not mutate in
      let exact_ok =
        List.for_all
          (fun strategy ->
            (Qcec.Verify.functional ~strategy c c').Qcec.Verify.equivalent = expected)
          [ Qcec.Strategy.Construction; Qcec.Strategy.Sequential
          ; Qcec.Strategy.Proportional; Qcec.Strategy.Lookahead ]
      in
      let sim_ok =
        mutate
        || (Qcec.Verify.functional ~strategy:(Qcec.Strategy.Simulation 6) c c')
             .Qcec.Verify.equivalent
      in
      exact_ok && sim_ok)

let test_stimuli_kinds () =
  let pair = Algorithms.Qpe.paper_example () in
  List.iter
    (fun kind ->
      let r =
        Qcec.Verify.functional
          ~strategy:(Qcec.Strategy.Random_stimuli { kind; shots = 6 })
          pair.Algorithms.Pair.static_circuit pair.Algorithms.Pair.dynamic_circuit
      in
      Alcotest.(check bool)
        (Fmt.str "%s stimuli accept equivalence"
           (Qcec.Strategy.name (Qcec.Strategy.Random_stimuli { kind; shots = 6 })))
        true r.Qcec.Verify.equivalent)
    [ Qcec.Strategy.Basis; Qcec.Strategy.Product; Qcec.Strategy.Entangled ]

let test_product_stimuli_catch_phases () =
  (* Z acts only as a phase on basis states, so basis stimuli are blind to
     it; product stimuli are not *)
  let a = Circ.make ~name:"a" ~qubits:1 ~cbits:0 [ Op.apply Gates.Z 0 ] in
  let b = Circ.make ~name:"b" ~qubits:1 ~cbits:0 [] in
  let check kind =
    (Qcec.Verify.functional
       ~strategy:(Qcec.Strategy.Random_stimuli { kind; shots = 8 })
       a b)
      .Qcec.Verify.equivalent
  in
  Alcotest.(check bool) "basis stimuli blind to Z" true (check Qcec.Strategy.Basis);
  Alcotest.(check bool) "product stimuli catch Z" false (check Qcec.Strategy.Product)

let test_approximate () =
  let c = Algorithms.Random_circuit.unitary ~seed:8 ~qubits:3 ~gates:15 in
  let r = Qcec.Verify.approximate c c in
  Util.check_float "self fidelity" 1.0 r.Qcec.Verify.process_fidelity;
  Alcotest.(check bool) "within" true r.Qcec.Verify.within;
  let mutated =
    { c with Circ.ops = c.Circ.ops @ [ Op.apply (Gates.RY 0.1) 1 ] }
  in
  let r = Qcec.Verify.approximate c mutated in
  (* |Tr(U^d U')| / 2^n = |Tr RY(0.1)| / 2 = cos 0.05 *)
  Util.check_float ~tol:1e-9 "perturbed fidelity" (Float.cos 0.05)
    r.Qcec.Verify.process_fidelity;
  Alcotest.(check bool) "outside tight threshold" false r.Qcec.Verify.within;
  let r = Qcec.Verify.approximate ~threshold:0.99 c mutated in
  Alcotest.(check bool) "inside loose threshold" true r.Qcec.Verify.within

let test_dynamic_vs_dynamic_distribution () =
  (* both sides dynamic: IQPE against itself with a different (equivalent)
     correction representation *)
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let r = Qcec.Verify.distribution dyn dyn in
  Alcotest.(check bool) "dynamic reference accepted" true
    r.Qcec.Verify.distributions_equal

(* -- multi-controlled decomposition -------------------------------------- *)

let test_sqrt_unitary () =
  let gates =
    [ Gates.X; Gates.Y; Gates.Z; Gates.H; Gates.S; Gates.T; Gates.RX 0.7
    ; Gates.U3 (1.1, -0.3, 0.8); Gates.I; Gates.P 2.9
    ]
  in
  let mul a b =
    [| Cx.add (Cx.mul a.(0) b.(0)) (Cx.mul a.(1) b.(2))
     ; Cx.add (Cx.mul a.(0) b.(1)) (Cx.mul a.(1) b.(3))
     ; Cx.add (Cx.mul a.(2) b.(0)) (Cx.mul a.(3) b.(2))
     ; Cx.add (Cx.mul a.(2) b.(1)) (Cx.mul a.(3) b.(3))
    |]
  in
  List.iter
    (fun g ->
      let u = Gates.matrix g in
      let v = Qcompile.Decompose.sqrt_unitary u in
      let vv = mul v v in
      Array.iteri
        (fun i x ->
          Util.check_cx (Fmt.str "sqrt %s entry %d" (Gates.name g) i) x vv.(i))
        u)
    gates

let test_multi_controlled_vs_dense () =
  (* 2, 3 and 4 controls on a 5-qubit register, several gates *)
  let cases =
    [ (Gates.Z, [ 0; 1 ], 2)
    ; (Gates.X, [ 0; 1; 2 ], 3)
    ; (Gates.Z, [ 0; 1; 2; 3 ], 4)
    ; (Gates.P 0.7, [ 4; 2 ], 0)
    ; (Gates.H, [ 1; 3 ], 2)
    ; (Gates.U3 (0.5, 0.2, -0.9), [ 0; 4; 2 ], 3)
    ]
  in
  List.iter
    (fun (gate, controls, target) ->
      let direct =
        Circ.make ~name:"mc" ~qubits:5 ~cbits:0
          [ Op.Apply
              { gate
              ; controls = List.map (fun cq -> { Op.cq; pos = true }) controls
              ; target
              }
          ]
      in
      let expanded =
        Circ.make ~name:"mc_exp" ~qubits:5 ~cbits:0
          (Qcompile.Decompose.multi_controlled ~controls ~target (Gates.matrix gate))
      in
      let a = Qsim.Statevector.unitary_matrix direct in
      let b = Qsim.Statevector.unitary_matrix expanded in
      if not (Util.matrices_equal ~tol:1e-7 a b) then
        Alcotest.failf "multi-controlled %s with %d controls differs" (Gates.name gate)
          (List.length controls))
    cases

let test_grover_decomposes () =
  let c = Circ.strip_measurements (Algorithms.Grover.static ~marked:9 ~qubits:4 ()) in
  let basis = Qcompile.Decompose.to_basis c in
  let r = Qcec.Verify.functional c basis in
  Alcotest.(check bool) "grover decomposition equivalent" true r.Qcec.Verify.equivalent

(* -- noisy density simulation --------------------------------------------- *)

let test_noise_trace_preserving () =
  let noise = { Qsim.Density.depolarizing = 0.05; amplitude_damping = 0.03 } in
  let c = Algorithms.Ghz.static 3 in
  let d = Qsim.Density.run_noisy ~noise c in
  Util.check_float ~tol:1e-9 "trace 1 under noise" 1.0 (Qsim.Density.trace d)

let test_noise_reduces_purity () =
  let c =
    Circ.make ~name:"bell" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0; Op.controlled Gates.X ~control:0 ~target:1 ]
  in
  let clean = Qsim.Density.run c in
  let noisy =
    Qsim.Density.run_noisy
      ~noise:{ Qsim.Density.depolarizing = 0.1; amplitude_damping = 0.0 }
      c
  in
  Alcotest.(check bool) "purity drops" true
    (Qsim.Density.purity noisy < Qsim.Density.purity clean -. 0.05)

let test_amplitude_damping_decays () =
  (* X then many identity steps with damping: P(1) decays towards 0 *)
  let gamma = 0.2 in
  let steps = 10 in
  let ops = Op.apply Gates.X 0 :: List.init steps (fun _ -> Op.apply Gates.I 0) in
  let c = Circ.make ~name:"decay" ~qubits:1 ~cbits:0 ops in
  let d =
    Qsim.Density.run_noisy
      ~noise:{ Qsim.Density.depolarizing = 0.0; amplitude_damping = gamma }
      c
  in
  let expected = Float.pow (1.0 -. gamma) (float_of_int (steps + 1)) in
  Util.check_float ~tol:1e-9 "exponential decay" expected
    (Qsim.Density.qubit_probability d 0)

let test_noise_perturbs_distribution () =
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let clean = Qsim.Density.distribution (Qsim.Density.run dyn) in
  let noisy =
    Qsim.Density.distribution
      (Qsim.Density.run_noisy
         ~noise:{ Qsim.Density.depolarizing = 0.02; amplitude_damping = 0.01 }
         dyn)
  in
  let tv = Qcec.Distribution.total_variation clean noisy in
  Alcotest.(check bool) (Fmt.str "noise visible (TVD %.4f)" tv) true (tv > 0.01);
  Util.check_float ~tol:1e-9 "still a distribution" 1.0 (Qcec.Distribution.mass noisy)

let suite =
  [ Alcotest.test_case "auto alignment on all families" `Quick test_auto_align_families
  ; Alcotest.test_case "inferred permutation matches" `Quick
      test_auto_align_matches_known_perm
  ; Alcotest.test_case "alignment can be disabled" `Quick test_auto_align_disabled
  ; Alcotest.test_case "alignment rejects mismatches" `Quick
      test_alignment_rejects_mismatch
  ; Alcotest.test_case "lookahead strategy" `Quick test_lookahead_positive_negative
  ; Alcotest.test_case "stimuli kinds" `Quick test_stimuli_kinds
  ; Alcotest.test_case "product stimuli catch phases" `Quick
      test_product_stimuli_catch_phases
  ; Alcotest.test_case "approximate equivalence" `Quick test_approximate
  ; Alcotest.test_case "dynamic vs dynamic distribution" `Quick
      test_dynamic_vs_dynamic_distribution
  ; Alcotest.test_case "sqrt of unitaries" `Quick test_sqrt_unitary
  ; Alcotest.test_case "multi-controlled vs dense" `Quick test_multi_controlled_vs_dense
  ; Alcotest.test_case "grover decomposes" `Quick test_grover_decomposes
  ; Alcotest.test_case "noise: trace preserving" `Quick test_noise_trace_preserving
  ; Alcotest.test_case "noise: purity drops" `Quick test_noise_reduces_purity
  ; Alcotest.test_case "noise: amplitude damping" `Quick test_amplitude_damping_decays
  ; Alcotest.test_case "noise: perturbs distribution" `Quick
      test_noise_perturbs_distribution
  ; Util.qtest prop_all_strategies_agree
  ]
