(* Stabilizer-backend tests: tableau mechanics, agreement with the DD
   extraction on Clifford dynamic circuits, and the polynomial-time win on
   wide instances. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module Stab = Qsim.Stabilizer

let test_basic_measurements () =
  let st = Stab.init 2 in
  Util.check_float "fresh |0>" 1.0 (fst (Stab.measure_probabilities st 0));
  Stab.apply_unitary_op st (Op.apply Gates.X 0);
  Util.check_float "after X" 1.0 (snd (Stab.measure_probabilities st 0));
  Stab.apply_unitary_op st (Op.apply Gates.H 1);
  let p0, p1 = Stab.measure_probabilities st 1 in
  Util.check_float "H gives 1/2" 0.5 p0;
  Util.check_float "H gives 1/2 (b)" 0.5 p1

let test_bell_correlations () =
  let st = Stab.init 2 in
  Stab.apply_unitary_op st (Op.apply Gates.H 0);
  Stab.apply_unitary_op st (Op.controlled Gates.X ~control:0 ~target:1);
  let p0, _ = Stab.measure_probabilities st 0 in
  Util.check_float "bell unbiased" 0.5 p0;
  Stab.project st 0 1;
  Util.check_float "collapse propagates" 1.0 (snd (Stab.measure_probabilities st 1))

let test_project_impossible () =
  let st = Stab.init 1 in
  match Stab.project st 0 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected impossible-outcome rejection"

let test_clifford_detection () =
  Alcotest.(check bool) "H is clifford" true (Stab.is_clifford_gate Gates.H);
  Alcotest.(check bool) "T is not" false (Stab.is_clifford_gate Gates.T);
  let good = Algorithms.Teleport.circuit ~prep:[ Gates.H; Gates.S ] in
  Alcotest.(check bool) "teleport with Clifford prep" true
    (Stab.is_clifford_circuit good);
  let bad = Algorithms.Qpe.dynamic ~theta:0.3 ~bits:2 in
  Alcotest.(check bool) "IQPE is not Clifford" false (Stab.is_clifford_circuit bad)

let test_ghz_parity () =
  let dist = Stab.extract_distribution (Algorithms.Ghz.with_parity_check 4) in
  Util.check_distributions "GHZ parity via tableau"
    [ ("00000", 0.5); ("11110", 0.5) ]
    dist

let test_teleport () =
  let tele = Algorithms.Teleport.circuit ~prep:[ Gates.H ] in
  let stab = Stab.extract_distribution tele in
  let dd = (Qsim.Extraction.run tele).Qsim.Extraction.distribution in
  Util.check_distributions "teleport tableau = DD" dd stab

let test_dynamic_bv_wide () =
  (* 64-bit dynamic Bernstein-Vazirani: 65 measurements, all deterministic
     except trivial branches; the tableau extraction is instant *)
  let s = Algorithms.Bv.hidden_string ~seed:12 64 in
  let dyn = Algorithms.Bv.dynamic s in
  Alcotest.(check bool) "dynamic BV is Clifford" true (Stab.is_clifford_circuit dyn);
  match Stab.extract_distribution dyn with
  | [ (bits, p) ] ->
    Util.check_float "deterministic" 1.0 p;
    String.iteri
      (fun k ch ->
        Alcotest.(check char) (Fmt.str "bit %d" k) (if s.(k) then '1' else '0') ch)
      bits
  | _ -> Alcotest.fail "expected a single outcome"

let test_run_shot_deterministic () =
  let s = Algorithms.Bv.hidden_string ~seed:3 10 in
  let dyn = Algorithms.Bv.dynamic s in
  let rng = Random.State.make [| 1 |] in
  let bits = Stab.run_shot ~rng dyn in
  String.iteri
    (fun k ch ->
      Alcotest.(check char) (Fmt.str "bit %d" k) (if s.(k) then '1' else '0') ch)
    bits

let prop_matches_dd_extraction =
  QCheck.Test.make ~name:"tableau extraction = DD extraction (random Clifford)"
    ~count:60
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let dyn =
        Algorithms.Random_circuit.clifford_dynamic ~seed ~qubits:4 ~cbits:4 ~ops:18
      in
      let stab = Stab.extract_distribution dyn in
      let dd = (Qsim.Extraction.run dyn).Qsim.Extraction.distribution in
      Qcec.Distribution.total_variation stab dd < 1e-9)

let prop_unitary_matches_dd =
  QCheck.Test.make ~name:"tableau probabilities = DD probabilities" ~count:60
    QCheck.(pair (int_range 0 100000) (int_range 0 3))
    (fun (seed, q) ->
      let qubits = 4 in
      let dyn =
        Algorithms.Random_circuit.clifford_dynamic ~seed ~qubits ~cbits:0 ~ops:15
      in
      (* keep only the unitary prefix *)
      let unitary_ops =
        List.filter (function Op.Apply _ | Op.Swap _ -> true | _ -> false)
          dyn.Circ.ops
      in
      let c = Circ.make ~name:"u" ~qubits ~cbits:0 unitary_ops in
      let st = Stab.init qubits in
      List.iter (Stab.apply_unitary_op st) c.Circ.ops;
      let sp0, _ = Stab.measure_probabilities st q in
      let p = Dd.Pkg.create () in
      let dp0, _ = Dd.Vec.probabilities p (Qsim.Dd_sim.simulate p c) q in
      Float.abs (sp0 -. dp0) < 1e-9)

let prop_probabilities_are_clifford =
  QCheck.Test.make ~name:"stabilizer outcome probabilities are 0, 1/2 or 1"
    ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dist =
        Stab.extract_distribution
          (Algorithms.Random_circuit.clifford_dynamic ~seed ~qubits:3 ~cbits:3
             ~ops:14)
      in
      List.for_all
        (fun (_, p) ->
          (* every leaf probability is a dyadic fraction 2^-k *)
          let log = Float.log p /. Float.log 2.0 in
          Float.abs (log -. Float.round log) < 1e-9)
        dist)

let suite =
  [ Alcotest.test_case "basic measurements" `Quick test_basic_measurements
  ; Alcotest.test_case "bell correlations" `Quick test_bell_correlations
  ; Alcotest.test_case "impossible projection" `Quick test_project_impossible
  ; Alcotest.test_case "clifford detection" `Quick test_clifford_detection
  ; Alcotest.test_case "GHZ parity" `Quick test_ghz_parity
  ; Alcotest.test_case "teleportation" `Quick test_teleport
  ; Alcotest.test_case "wide dynamic BV" `Quick test_dynamic_bv_wide
  ; Alcotest.test_case "shot sampling" `Quick test_run_shot_deterministic
  ; Util.qtest prop_matches_dd_extraction
  ; Util.qtest prop_unitary_matches_dd
  ; Util.qtest prop_probabilities_are_clifford
  ]
