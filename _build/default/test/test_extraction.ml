(* Section 5 scheme tests: the DD-based branching extraction against the
   dense oracle, pruning, statistics, the Fig. 4 tree, and the parallel
   driver. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let extract c = (Qsim.Extraction.run c).Qsim.Extraction.distribution

let test_paper_fig4_numbers () =
  (* theta = 3/16: first measurement is unbiased, and the probability of
     estimate |001> is 1/2 * 0.85 * 0.96 ~ 0.408 (paper Example 7) *)
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let tree = Qsim.Extraction.tree dyn in
  (match tree with
   | Qsim.Extraction.Branch { p0; p1; _ } ->
     Util.check_float ~tol:1e-9 "first checkpoint p0" 0.5 p0;
     Util.check_float ~tol:1e-9 "first checkpoint p1" 0.5 p1
   | Qsim.Extraction.Leaf _ -> Alcotest.fail "expected a branch");
  let dist = extract dyn in
  (* classical bits are indexed c0 c1 c2; estimate 0.c2c1c0 = 001 means
     c0 = 1, c1 = 0, c2 = 0 *)
  let p001 = List.assoc "100" dist in
  Util.check_float ~tol:1e-3 "P(estimate 001)" 0.4105 p001;
  let p010 = List.assoc "010" dist in
  Util.check_float ~tol:1e-3 "P(estimate 010)" 0.4105 p010;
  (* success probability of QPE is at least 4/pi^2 ~ 0.405 (paper 2.2) *)
  Alcotest.(check bool) "QPE success bound" true (p001 >= 4.0 /. (Float.pi *. Float.pi))

let test_exact_theta_deterministic () =
  (* representable phase: the algorithm succeeds with certainty and the
     extraction collapses to a single path *)
  let theta = 5.0 /. 8.0 in
  let dyn = Algorithms.Qpe.dynamic ~theta ~bits:3 in
  let r = Qsim.Extraction.run dyn in
  Alcotest.(check int) "single leaf" 1 r.Qsim.Extraction.stats.Qsim.Extraction.leaves;
  match r.Qsim.Extraction.distribution with
  | [ (bits, p) ] ->
    Util.check_float "probability 1" 1.0 p;
    (* 5/8 = 0.101: c2=1 c1=0 c0=1 *)
    Alcotest.(check string) "estimate bits" "101" bits
  | _ -> Alcotest.fail "expected a deterministic outcome"

let test_pruning_counts () =
  let theta = 5.0 /. 8.0 in
  let dyn = Algorithms.Qpe.dynamic ~theta ~bits:3 in
  let r = Qsim.Extraction.run dyn in
  (* every measurement and reset has a zero-probability side: all pruned *)
  Alcotest.(check bool) "pruned branches recorded" true
    (r.Qsim.Extraction.stats.Qsim.Extraction.pruned > 0)

let test_mass_conservation () =
  let dyn = Algorithms.Qft.dynamic 5 in
  let r = Qsim.Extraction.run dyn in
  Util.check_float "total mass 1" 1.0
    (Qcec.Distribution.mass r.Qsim.Extraction.distribution);
  Alcotest.(check int) "uniform over 32 outcomes" 32
    (List.length r.Qsim.Extraction.distribution)

let test_bare_reset_merges_branches () =
  (* reset of an unmeasured superposed qubit: both branches carry mass into
     the same classical assignment *)
  let c =
    Circ.make ~name:"bare" ~qubits:1 ~cbits:1
      [ Op.apply Gates.H 0
      ; Op.Reset 0
      ; Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ]
  in
  let dist = extract c in
  Util.check_distributions "reset then H is unbiased"
    [ ("0", 0.5); ("1", 0.5) ]
    dist;
  let dense = Qsim.Statevector.extract_distribution c in
  Util.check_distributions "matches dense oracle" dense dist

let test_ghz_parity () =
  let c = Algorithms.Ghz.with_parity_check 3 in
  let dist = extract c in
  (* parity bit (cbit 3) is always 0; data is 000 or 111 *)
  Util.check_distributions "GHZ parity distribution"
    [ ("0000", 0.5); ("1110", 0.5) ]
    dist

let test_teleport_distribution () =
  let prep = [ Gates.RY 1.1; Gates.RZ 0.4 ] in
  let tele = Algorithms.Teleport.circuit ~prep in
  let reference = Algorithms.Teleport.reference ~prep in
  let out = Qcec.Distribution.marginalize (extract tele) ~bits:[ 2 ] in
  let ref_dist = extract reference in
  Util.check_distributions "teleported marginal = direct preparation" ref_dist out;
  (* Bell measurement outcomes are uniform *)
  let bell = Qcec.Distribution.marginalize (extract tele) ~bits:[ 0; 1 ] in
  Util.check_distributions "Bell outcomes uniform"
    [ ("00", 0.25); ("01", 0.25); ("10", 0.25); ("11", 0.25) ]
    bell

let test_tree_structure () =
  let dyn = Algorithms.Bv.dynamic [| true; false |] in
  let rec depth = function
    | Qsim.Extraction.Leaf _ -> 0
    | Qsim.Extraction.Branch { zero; one; _ } ->
      let d side = match side with None -> 0 | Some t -> depth t in
      1 + max (d zero) (d one)
  in
  let t = Qsim.Extraction.tree dyn in
  (* 2 measurements + 1 reset = depth 3 along the surviving path *)
  Alcotest.(check int) "tree depth" 3 (depth t);
  let rendered = Fmt.str "%a" Qsim.Extraction.pp_tree t in
  Alcotest.(check bool) "render mentions measure" true
    (String.length rendered > 0 && String.sub rendered 0 7 = "measure")

let test_parallel_matches_sequential () =
  let dyn = Algorithms.Qft.dynamic 6 in
  let seq = Qsim.Extraction.run dyn in
  let par = Qsim.Extraction.run ~domains:4 dyn in
  Util.check_distributions "parallel = sequential"
    seq.Qsim.Extraction.distribution par.Qsim.Extraction.distribution;
  Alcotest.(check int) "same leaf count"
    seq.Qsim.Extraction.stats.Qsim.Extraction.leaves
    par.Qsim.Extraction.stats.Qsim.Extraction.leaves

let prop_extraction_matches_dense =
  QCheck.Test.make ~name:"DD extraction = dense extraction (random dynamic)"
    ~count:80
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let dyn =
        Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:3 ~ops:15
      in
      let dd = extract dyn in
      let dense = Qsim.Statevector.extract_distribution dyn in
      Qcec.Distribution.total_variation dd dense < 1e-8)

let prop_mass_is_one =
  QCheck.Test.make ~name:"extracted mass is 1" ~count:80
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let dyn =
        Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:4 ~ops:18
      in
      Float.abs (Qcec.Distribution.mass (extract dyn) -. 1.0) < 1e-8)

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel extraction = sequential" ~count:12
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let dyn =
        Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:3 ~ops:12
      in
      let s = Qsim.Extraction.run dyn in
      let p = Qsim.Extraction.run ~domains:2 dyn in
      Qcec.Distribution.total_variation s.Qsim.Extraction.distribution
        p.Qsim.Extraction.distribution
      < 1e-9)

let suite =
  [ Alcotest.test_case "paper Fig. 4 checkpoints" `Quick test_paper_fig4_numbers
  ; Alcotest.test_case "exact phase is deterministic" `Quick
      test_exact_theta_deterministic
  ; Alcotest.test_case "pruning statistics" `Quick test_pruning_counts
  ; Alcotest.test_case "mass conservation (dense QFT)" `Quick test_mass_conservation
  ; Alcotest.test_case "bare reset merges branches" `Quick
      test_bare_reset_merges_branches
  ; Alcotest.test_case "GHZ parity check" `Quick test_ghz_parity
  ; Alcotest.test_case "teleportation distribution" `Quick test_teleport_distribution
  ; Alcotest.test_case "branching tree structure" `Quick test_tree_structure
  ; Alcotest.test_case "parallel driver" `Quick test_parallel_matches_sequential
  ; Util.qtest prop_extraction_matches_dense
  ; Util.qtest prop_mass_is_one
  ; Util.qtest prop_parallel_matches_sequential
  ]
