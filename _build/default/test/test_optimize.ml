(* Optimizer tests: every rewrite must be verified by the equivalence
   checker (the paper's "optimized realizations" use case), plus targeted
   cases for each pass. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let optimize c = Qcompile.Optimize.run c

let test_cancellation () =
  let c =
    Circ.make ~name:"cc" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.controlled Gates.X ~control:0 ~target:1
      ; Op.controlled Gates.X ~control:0 ~target:1
      ; Op.apply Gates.H 0
      ; Op.apply Gates.S 1
      ; Op.apply Gates.Sdg 1
      ]
  in
  let out = optimize c in
  Alcotest.(check int) "everything cancels" 0
    (Circ.gate_count out.Qcompile.Optimize.circuit);
  Alcotest.(check int) "six ops cancelled" 6
    out.Qcompile.Optimize.stats.Qcompile.Optimize.cancelled

let test_cancellation_through_disjoint () =
  (* the pair is separated by gates on other qubits *)
  let c =
    Circ.make ~name:"cd" ~qubits:3 ~cbits:0
      [ Op.Swap (0, 2)
      ; Op.apply Gates.T 1
      ; Op.apply (Gates.RX 0.4) 1
      ; Op.Swap (0, 2)
      ]
  in
  let out = optimize c in
  let remaining = out.Qcompile.Optimize.circuit.Circ.ops in
  Alcotest.(check bool) "swaps cancelled through disjoint gates" true
    (List.for_all (function Op.Swap _ -> false | _ -> true) remaining)

let test_no_cancellation_through_overlap () =
  (* an overlapping gate in between must block the cancellation *)
  let c =
    Circ.make ~name:"no" ~qubits:2 ~cbits:0
      [ Op.controlled Gates.X ~control:0 ~target:1
      ; Op.apply Gates.H 1
      ; Op.controlled Gates.X ~control:0 ~target:1
      ]
  in
  let out = optimize c in
  Alcotest.(check int) "nothing cancelled" 0
    out.Qcompile.Optimize.stats.Qcompile.Optimize.cancelled

let test_rotation_merging () =
  let c =
    Circ.make ~name:"rm" ~qubits:1 ~cbits:0
      [ Op.apply (Gates.RZ 0.4) 0; Op.apply (Gates.RZ 0.6) 0 ]
  in
  let out = optimize c in
  (match out.Qcompile.Optimize.circuit.Circ.ops with
   | [ Op.Apply { gate; _ } ] ->
     (* merging happens first, single-gate runs are kept verbatim *)
     Alcotest.(check bool) "merged angle" true (Gates.equal ~tol:1e-12 gate (Gates.RZ 1.0))
   | _ -> Alcotest.fail "expected one merged rotation")

let test_controlled_rotation_merging () =
  let cp a = Op.controlled (Gates.P a) ~control:0 ~target:1 in
  let c = Circ.make ~name:"cpm" ~qubits:2 ~cbits:0 [ cp 0.3; cp (-0.3) ] in
  let out = optimize c in
  Alcotest.(check int) "controlled phases vanish" 0
    (Circ.gate_count out.Qcompile.Optimize.circuit)

let test_controlled_rx_2pi_not_dropped () =
  (* CRX(2 pi) = controlled(-I) is NOT the identity: it is a CZ-like
     relative phase.  The optimizer must keep it. *)
  let crx a = Op.controlled (Gates.RX a) ~control:0 ~target:1 in
  let c = Circ.make ~name:"crx" ~qubits:2 ~cbits:0 [ crx Float.pi; crx Float.pi ] in
  let out = optimize c in
  Alcotest.(check int) "merged but kept" 1 (Circ.gate_count out.Qcompile.Optimize.circuit);
  let r = Qcec.Verify.functional c out.Qcompile.Optimize.circuit in
  Alcotest.(check bool) "still equivalent" true r.Qcec.Verify.equivalent

let test_fusion () =
  let c =
    Circ.make ~name:"fu" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.apply Gates.T 0
      ; Op.apply (Gates.RY 0.3) 0
      ; Op.controlled Gates.X ~control:0 ~target:1
      ]
  in
  let out = optimize c in
  Alcotest.(check int) "three singles fused into one u3" 2
    (Circ.gate_count out.Qcompile.Optimize.circuit);
  let r = Qcec.Verify.functional c out.Qcompile.Optimize.circuit in
  Alcotest.(check bool) "equivalent after fusion" true r.Qcec.Verify.equivalent

let test_conditioned_gates_untouched () =
  let c =
    Circ.make ~name:"cond" ~qubits:2 ~cbits:1
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.if_bit ~bit:0 ~value:true (Op.apply (Gates.RZ 0.2) 1)
      ; Op.if_bit ~bit:0 ~value:true (Op.apply (Gates.RZ (-0.2)) 1)
      ]
  in
  let out = optimize c in
  (* conditioned rotations must not merge: their global phases are
     observable after transformation *)
  Alcotest.(check int) "conditions preserved" 2
    (Circ.op_counts out.Qcompile.Optimize.circuit).Circ.conditioned

let test_measurement_blocks () =
  let c =
    Circ.make ~name:"mb" ~qubits:1 ~cbits:2
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.apply Gates.H 0
      ]
  in
  let out = optimize c in
  Alcotest.(check int) "hadamards not cancelled across measurement" 2
    (Circ.gate_count out.Qcompile.Optimize.circuit)

let test_optimizes_decomposed_circuits () =
  (* decompose + optimize: the round trip must stay equivalent and shrink *)
  let original = Circ.strip_measurements (Algorithms.Qft.static 5) in
  let decomposed = Qcompile.Decompose.to_basis original in
  let out = optimize decomposed in
  Alcotest.(check bool) "got smaller" true
    (Circ.gate_count out.Qcompile.Optimize.circuit <= Circ.gate_count decomposed);
  let r = Qcec.Verify.functional original out.Qcompile.Optimize.circuit in
  Alcotest.(check bool) "equivalent" true r.Qcec.Verify.equivalent

let prop_optimize_preserves_functionality =
  QCheck.Test.make ~name:"optimizer preserves functionality (checker-verified)"
    ~count:40
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:3 ~gates:25 in
      let out = optimize c in
      (Qcec.Verify.functional c out.Qcompile.Optimize.circuit).Qcec.Verify.equivalent)

let prop_optimize_preserves_distributions =
  QCheck.Test.make ~name:"optimizer preserves dynamic distributions" ~count:30
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:15 in
      let out = optimize dyn in
      let d1 = Qsim.Statevector.extract_distribution dyn in
      let d2 = Qsim.Statevector.extract_distribution out.Qcompile.Optimize.circuit in
      Qcec.Distribution.total_variation d1 d2 < 1e-8)

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"optimizer is idempotent" ~count:30
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:3 ~gates:20 in
      let once = (optimize c).Qcompile.Optimize.circuit in
      let twice = (optimize once).Qcompile.Optimize.circuit in
      Circ.gate_count once = Circ.gate_count twice)

let suite =
  [ Alcotest.test_case "adjacent cancellation" `Quick test_cancellation
  ; Alcotest.test_case "cancellation through disjoint gates" `Quick
      test_cancellation_through_disjoint
  ; Alcotest.test_case "overlap blocks cancellation" `Quick
      test_no_cancellation_through_overlap
  ; Alcotest.test_case "rotation merging" `Quick test_rotation_merging
  ; Alcotest.test_case "controlled rotation merging" `Quick
      test_controlled_rotation_merging
  ; Alcotest.test_case "controlled RX 2pi kept" `Quick test_controlled_rx_2pi_not_dropped
  ; Alcotest.test_case "single-qubit fusion" `Quick test_fusion
  ; Alcotest.test_case "conditioned gates untouched" `Quick
      test_conditioned_gates_untouched
  ; Alcotest.test_case "measurement blocks rewrites" `Quick test_measurement_blocks
  ; Alcotest.test_case "decompose + optimize round trip" `Quick
      test_optimizes_decomposed_circuits
  ; Util.qtest prop_optimize_preserves_functionality
  ; Util.qtest prop_optimize_preserves_distributions
  ; Util.qtest prop_optimize_idempotent
  ]
