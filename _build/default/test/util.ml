(* Shared test helpers: approximate comparisons between dense oracles and
   decision-diagram results. *)

module Cx = Cxnum.Cx

let cx_close ?(tol = 1e-9) a b = Cx.approx_eq ~tol a b

let check_cx ?(tol = 1e-9) msg expected actual =
  if not (cx_close ~tol expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Cx.to_string expected)
      (Cx.to_string actual)

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Matrices equal up to a global phase factor. *)
let matrices_equal_up_to_phase ?(tol = 1e-8) a b =
  let dim = Array.length a in
  let phase = ref None in
  let ok = ref (Array.length b = dim) in
  for r = 0 to dim - 1 do
    for c = 0 to dim - 1 do
      if !ok then begin
        let x = a.(r).(c) and y = b.(r).(c) in
        let mx = Cx.abs x and my = Cx.abs y in
        if Float.abs (mx -. my) > tol then ok := false
        else if mx > tol then begin
          let ratio = Cx.div y x in
          match !phase with
          | None -> phase := Some ratio
          | Some ph -> if not (cx_close ~tol ph ratio) then ok := false
        end
      end
    done
  done;
  !ok

let matrices_equal ?(tol = 1e-8) a b =
  let dim = Array.length a in
  Array.length b = dim
  && begin
       let ok = ref true in
       for r = 0 to dim - 1 do
         for c = 0 to dim - 1 do
           if not (cx_close ~tol a.(r).(c) b.(r).(c)) then ok := false
         done
       done;
       !ok
     end

let check_distributions ?(eps = 1e-9) msg expected actual =
  let tv = Qcec.Distribution.total_variation expected actual in
  if tv > eps then
    Alcotest.failf "%s: distributions differ (TVD %.3g)@.expected:@.%s@.actual:@.%s" msg
      tv
      (Fmt.str "%a" Qcec.Distribution.pp expected)
      (Fmt.str "%a" Qcec.Distribution.pp actual)

(* DD of a circuit vs the dense oracle. *)
let check_circuit_unitary ?(tol = 1e-8) msg (c : Circuit.Circ.t) =
  let p = Dd.Pkg.create () in
  let dd = Qsim.Dd_sim.build_unitary p (Circuit.Circ.strip_measurements c) in
  let dense = Qsim.Statevector.unitary_matrix c in
  let materialized = Dd.Mat.to_array p dd ~n:c.Circuit.Circ.num_qubits in
  if not (matrices_equal ~tol dense materialized) then
    Alcotest.failf "%s: DD unitary differs from dense oracle" msg

let qtest = QCheck_alcotest.to_alcotest
