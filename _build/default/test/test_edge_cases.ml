(* Boundary-condition tests across the whole stack: empty circuits,
   single-qubit registers, measurement-only circuits, and degenerate
   parameters. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let test_empty_circuit () =
  let c = Circ.make ~name:"empty" ~qubits:2 ~cbits:0 [] in
  Alcotest.(check bool) "not dynamic" false (Circ.is_dynamic c);
  let p = Dd.Pkg.create () in
  let u = Qsim.Dd_sim.build_unitary p c in
  Alcotest.(check bool) "unitary is identity" true
    (Dd.Mat.is_identity p u ~n:2 ~up_to_phase:false);
  let r = Qcec.Verify.functional c c in
  Alcotest.(check bool) "empty = empty" true r.Qcec.Verify.equivalent;
  let s = Circuit.Stats.compute c in
  Alcotest.(check int) "zero depth" 0 s.Circuit.Stats.depth

let test_zero_qubit_register () =
  let c = Circ.make ~name:"none" ~qubits:0 ~cbits:0 [] in
  Alcotest.(check int) "no ops" 0 (Circ.total_ops c);
  let p = Dd.Pkg.create () in
  let v = Dd.Pkg.zero_state p 0 in
  Util.check_float "norm of scalar state" 1.0 (Dd.Vec.norm p v)

let test_single_qubit_everything () =
  let dyn =
    Circ.make ~name:"one" ~qubits:1 ~cbits:2
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.Reset 0
      ; Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 0)
      ; Op.Measure { qubit = 0; cbit = 1 }
      ]
  in
  let dist = (Qsim.Extraction.run dyn).Qsim.Extraction.distribution in
  (* c1 = c0: X applied iff the first measurement was 1 *)
  Util.check_distributions "copy via classical control"
    [ ("00", 0.5); ("11", 0.5) ]
    dist;
  let dense = Qsim.Statevector.extract_distribution dyn in
  Util.check_distributions "matches dense" dense dist;
  let density = Qsim.Density.distribution (Qsim.Density.run dyn) in
  Util.check_distributions "matches density" density dist

let test_extraction_on_static_circuit () =
  (* no dynamic primitive at all: extraction = final-state marginal *)
  let c = Algorithms.Ghz.static 3 in
  let dist = (Qsim.Extraction.run c).Qsim.Extraction.distribution in
  Util.check_distributions "GHZ outcome" [ ("000", 0.5); ("111", 0.5) ] dist

let test_measure_only_circuit () =
  let c =
    Circ.make ~name:"m" ~qubits:2 ~cbits:2
      [ Op.Measure { qubit = 0; cbit = 0 }; Op.Measure { qubit = 1; cbit = 1 } ]
  in
  let dist = (Qsim.Extraction.run c).Qsim.Extraction.distribution in
  Util.check_distributions "measuring |00>" [ ("00", 1.0) ] dist

let test_qpe_one_bit () =
  (* smallest possible instance of the running example *)
  let pair = Algorithms.Qpe.make ~theta:0.5 ~bits:1 in
  let r =
    Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static
      pair.Algorithms.Pair.static_circuit pair.Algorithms.Pair.dynamic_circuit
  in
  Alcotest.(check bool) "1-bit QPE equivalent" true r.Qcec.Verify.equivalent;
  let d =
    Qcec.Verify.distribution pair.Algorithms.Pair.dynamic_circuit
      pair.Algorithms.Pair.static_circuit
  in
  Util.check_distributions "theta = 1/2 detected" [ ("1", 1.0) ]
    d.Qcec.Verify.dynamic_distribution

let test_bv_empty_string () =
  (* n = 1 with hidden bit 0: the oracle is the identity *)
  let pair = Algorithms.Bv.make [| false |] in
  let r =
    Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static
      pair.Algorithms.Pair.static_circuit pair.Algorithms.Pair.dynamic_circuit
  in
  Alcotest.(check bool) "trivial BV equivalent" true r.Qcec.Verify.equivalent

let test_transform_of_static_circuit_is_identity_action () =
  let c = Algorithms.Ghz.static 3 in
  let out = Transform.Dynamic.to_static c in
  Alcotest.(check int) "no resets to eliminate" 0
    out.Transform.Dynamic.resets_eliminated;
  Alcotest.(check int) "same qubit count" 3
    out.Transform.Dynamic.circuit.Circ.num_qubits

let test_angle_wrapping () =
  (* p(2 pi) equals identity; p(4 pi) too; rz(2 pi) only up to phase *)
  let mk g = Circ.make ~name:"a" ~qubits:1 ~cbits:0 [ Op.apply g 0 ] in
  let id = Circ.make ~name:"i" ~qubits:1 ~cbits:0 [] in
  let r = Qcec.Verify.functional (mk (Gates.P (2.0 *. Float.pi))) id in
  Alcotest.(check bool) "p(2pi) = I exactly" true r.Qcec.Verify.exactly_equal;
  let r = Qcec.Verify.functional (mk (Gates.RZ (2.0 *. Float.pi))) id in
  Alcotest.(check bool) "rz(2pi) = I up to phase" true r.Qcec.Verify.equivalent;
  Alcotest.(check bool) "rz(2pi) = -I, not I" false r.Qcec.Verify.exactly_equal

let test_draw_wide_circuit_truncation () =
  let c = Algorithms.Qft.static 9 in
  let lines = Circuit.Draw.render ~max_columns:5 c in
  Alcotest.(check bool) "truncated marker" true
    (List.exists
       (fun l -> String.length l >= 3 && String.sub l (String.length l - 3) 3 = "...")
       lines)

let test_extraction_cutoff_extremes () =
  let dyn = Algorithms.Qft.dynamic 4 in
  (* a cutoff of 0.9 kills every branch: mass collapses to zero *)
  let r = Qsim.Extraction.run ~cutoff:0.9 dyn in
  Util.check_float "everything pruned" 0.0
    (Qcec.Distribution.mass r.Qsim.Extraction.distribution);
  Alcotest.(check bool) "prune counter saw it" true
    (r.Qsim.Extraction.stats.Qsim.Extraction.pruned > 0)

let suite =
  [ Alcotest.test_case "empty circuit" `Quick test_empty_circuit
  ; Alcotest.test_case "zero-qubit register" `Quick test_zero_qubit_register
  ; Alcotest.test_case "single-qubit dynamics" `Quick test_single_qubit_everything
  ; Alcotest.test_case "extraction of static circuit" `Quick
      test_extraction_on_static_circuit
  ; Alcotest.test_case "measure-only circuit" `Quick test_measure_only_circuit
  ; Alcotest.test_case "1-bit QPE" `Quick test_qpe_one_bit
  ; Alcotest.test_case "trivial BV" `Quick test_bv_empty_string
  ; Alcotest.test_case "transform of static circuit" `Quick
      test_transform_of_static_circuit_is_identity_action
  ; Alcotest.test_case "angle wrapping" `Quick test_angle_wrapping
  ; Alcotest.test_case "drawing truncation" `Quick test_draw_wide_circuit_truncation
  ; Alcotest.test_case "extreme extraction cutoff" `Quick
      test_extraction_cutoff_extremes
  ]
