(* OpenQASM 3 front-end tests: parsing the dynamic-circuit syntax, round
   trips through the printer, version dispatch, and cross-format
   agreement. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let parse = Circuit.Qasm3_parser.parse

let test_parse_dynamic_program () =
  let c =
    parse
      {|OPENQASM 3.0;
        include "stdgates.inc";
        qubit[2] q;
        bit[2] c;
        h q[0];
        c[0] = measure q[0];
        reset q[0];
        if (c[0] == 1) { x q[1]; z q[1]; }
        if (c[0]) h q[0];
        c[1] = measure q[1];|}
  in
  Alcotest.(check int) "qubits" 2 c.Circ.num_qubits;
  Alcotest.(check int) "cbits" 2 c.Circ.num_cbits;
  Alcotest.(check bool) "dynamic" true (Circ.is_dynamic c);
  let counts = Circ.op_counts c in
  Alcotest.(check int) "measurements" 2 counts.Circ.measurements;
  Alcotest.(check int) "resets" 1 counts.Circ.resets;
  (* the block if distributes over both gates; if(c[0]) defaults to == 1 *)
  Alcotest.(check int) "conditioned" 3 counts.Circ.conditioned

let test_declarations_without_size () =
  let c =
    parse {|OPENQASM 3.0; qubit a; qubit[2] b; bit f; h a; cx a, b[1];
            f = measure a;|}
  in
  Alcotest.(check int) "flattened qubits" 3 c.Circ.num_qubits;
  Alcotest.(check int) "one bit" 1 c.Circ.num_cbits

let test_gate_definitions_v3 () =
  let c =
    parse
      {|OPENQASM 3.0;
        qubit[2] q;
        gate entangle a, b { h a; cx a, b; }
        entangle q[0], q[1];|}
  in
  Alcotest.(check int) "expanded" 2 (Circ.total_ops c)

let test_roundtrip_v3 () =
  List.iter
    (fun original ->
      let text = Circuit.Qasm3_printer.to_string original in
      let back = parse text in
      let d1 = Qsim.Statevector.extract_distribution original in
      let d2 = Qsim.Statevector.extract_distribution back in
      Util.check_distributions ("v3 round trip " ^ original.Circ.name) d1 d2)
    [ Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3
    ; Algorithms.Teleport.circuit ~prep:[ Gates.RY 0.7 ]
    ; Algorithms.Bv.dynamic [| true; false; true |]
    ]

let test_cross_format_equivalence () =
  (* the same circuit through both printers and both parsers must verify
     equivalent *)
  let original = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let via_v2 = Circuit.Qasm_parser.parse (Circuit.Qasm_printer.to_string original) in
  let via_v3 = parse (Circuit.Qasm3_printer.to_string original) in
  let r = Qcec.Verify.functional via_v2 via_v3 in
  Alcotest.(check bool) "v2 path = v3 path" true r.Qcec.Verify.equivalent

let test_version_dispatch () =
  let v2 = {|OPENQASM 2.0; qreg q[1]; creg c[1]; h q[0]; measure q[0] -> c[0];|} in
  let v3 = {|OPENQASM 3.0; qubit[1] q; bit[1] c; h q[0]; c[0] = measure q[0];|} in
  let a = Circuit.Qasm3_parser.parse_any v2 in
  let b = Circuit.Qasm3_parser.parse_any v3 in
  Alcotest.(check int) "v2 parsed" 2 (Circ.total_ops a);
  Alcotest.(check int) "v3 parsed" 2 (Circ.total_ops b);
  let d = Qcec.Verify.distribution a b in
  Alcotest.(check bool) "same behaviour" true d.Qcec.Verify.distributions_equal

let test_parse_errors_v3 () =
  let expect_error src =
    match parse src with
    | exception Circuit.Qasm_parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" src
  in
  expect_error {|OPENQASM 3.0; qubit[1] q; c[0] = measure q[0];|} (* undeclared bit *);
  expect_error {|OPENQASM 3.0; qubit[1] q; bit[1] c; c[0] = x q[0];|};
  expect_error {|OPENQASM 3.0; qubit[1] q; if (q[0]) x q[0];|} (* qubit as condition *)

let suite =
  [ Alcotest.test_case "parse dynamic program" `Quick test_parse_dynamic_program
  ; Alcotest.test_case "unsized declarations" `Quick test_declarations_without_size
  ; Alcotest.test_case "gate definitions" `Quick test_gate_definitions_v3
  ; Alcotest.test_case "round trips" `Quick test_roundtrip_v3
  ; Alcotest.test_case "cross-format equivalence" `Quick test_cross_format_equivalence
  ; Alcotest.test_case "version dispatch" `Quick test_version_dispatch
  ; Alcotest.test_case "parse errors" `Quick test_parse_errors_v3
  ]
