(* End-to-end verification tests: both schemes on the paper's three
   benchmark families, every strategy, and negative cases (the checker must
   catch genuinely inequivalent circuits). *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module Pair = Algorithms.Pair

let check_pair ?strategy (pair : Pair.t) =
  Qcec.Verify.functional ?strategy ~perm:pair.Pair.dyn_to_static
    pair.Pair.static_circuit pair.Pair.dynamic_circuit

let test_bv_functional () =
  List.iter
    (fun n ->
      let pair = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:11 n) in
      let r = check_pair pair in
      Alcotest.(check bool) (Fmt.str "BV %d equivalent" n) true r.Qcec.Verify.equivalent;
      Alcotest.(check int)
        (Fmt.str "BV %d transformed qubits" n)
        (n + 1) r.Qcec.Verify.transformed_qubits)
    [ 1; 2; 5; 9 ]

let test_qft_functional () =
  List.iter
    (fun n ->
      let r = check_pair (Algorithms.Qft.make n) in
      Alcotest.(check bool) (Fmt.str "QFT %d equivalent" n) true r.Qcec.Verify.equivalent)
    [ 1; 2; 4; 7 ]

let test_qpe_functional () =
  List.iter
    (fun m ->
      let theta = Algorithms.Qpe.random_theta ~seed:23 ~bits:m in
      let r = check_pair (Algorithms.Qpe.make ~theta ~bits:m) in
      Alcotest.(check bool) (Fmt.str "QPE %d equivalent" m) true r.Qcec.Verify.equivalent;
      let r = check_pair (Algorithms.Qpe.make_textbook ~theta ~bits:m) in
      Alcotest.(check bool)
        (Fmt.str "textbook QPE %d equivalent" m)
        true r.Qcec.Verify.equivalent)
    [ 2; 4; 6 ]

let test_strategies_agree () =
  let pair = Algorithms.Qpe.paper_example () in
  List.iter
    (fun strategy ->
      let r = check_pair ~strategy pair in
      Alcotest.(check bool)
        (Fmt.str "%s finds equivalence" (Qcec.Strategy.name strategy))
        true r.Qcec.Verify.equivalent)
    [ Qcec.Strategy.Construction; Qcec.Strategy.Proportional; Qcec.Strategy.Simulation 8 ]

let mutate_one_gate (c : Circ.t) =
  (* flip the angle of the first parameterized gate — a subtle bug *)
  let changed = ref false in
  let ops =
    List.map
      (fun op ->
        match (op : Op.t) with
        | Apply { gate = Gates.P lam; controls; target } when not !changed ->
          changed := true;
          Op.Apply { gate = Gates.P (lam +. 0.1); controls; target }
        | _ -> op)
      c.Circ.ops
  in
  assert !changed;
  { c with Circ.ops }

let test_negative_functional () =
  let pair = Algorithms.Qpe.paper_example () in
  let broken = mutate_one_gate pair.Pair.dynamic_circuit in
  List.iter
    (fun strategy ->
      let r =
        Qcec.Verify.functional ~strategy ~perm:pair.Pair.dyn_to_static
          pair.Pair.static_circuit broken
      in
      Alcotest.(check bool)
        (Fmt.str "%s catches mutation" (Qcec.Strategy.name strategy))
        false r.Qcec.Verify.equivalent)
    [ Qcec.Strategy.Construction; Qcec.Strategy.Proportional; Qcec.Strategy.Simulation 8 ]

let test_negative_distribution () =
  let pair = Algorithms.Qpe.paper_example () in
  let broken = mutate_one_gate pair.Pair.dynamic_circuit in
  let r = Qcec.Verify.distribution broken pair.Pair.static_circuit in
  Alcotest.(check bool) "distribution check catches mutation" false
    r.Qcec.Verify.distributions_equal

let test_distribution_families () =
  List.iter
    (fun (name, (pair : Pair.t)) ->
      let r =
        Qcec.Verify.distribution pair.Pair.dynamic_circuit pair.Pair.static_circuit
      in
      Alcotest.(check bool) (name ^ " distributions equal") true
        r.Qcec.Verify.distributions_equal)
    [ ("BV", Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:2 7))
    ; ("QFT", Algorithms.Qft.make 6)
    ; ("QPE", Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:3 ~bits:6) ~bits:6)
    ]

let test_global_phase_freedom () =
  (* two circuits equal only up to a global phase: RZ(pi) vs P(pi)=Z *)
  let a = Circ.make ~name:"a" ~qubits:1 ~cbits:0 [ Op.apply (Gates.RZ Float.pi) 0 ] in
  let b = Circ.make ~name:"b" ~qubits:1 ~cbits:0 [ Op.apply Gates.Z 0 ] in
  let r = Qcec.Verify.functional ~strategy:Qcec.Strategy.Construction a b in
  Alcotest.(check bool) "equivalent up to phase" true r.Qcec.Verify.equivalent;
  Alcotest.(check bool) "not exactly equal" false r.Qcec.Verify.exactly_equal

let test_qubit_count_mismatch () =
  (* differing widths are padded with idle wires: GHZ-2 is then compared
     against GHZ-3 on three qubits and correctly found inequivalent *)
  let a = Algorithms.Ghz.static 2 and b = Algorithms.Ghz.static 3 in
  let r = Qcec.Verify.functional a b in
  Alcotest.(check bool) "padded comparison says no" false r.Qcec.Verify.equivalent;
  (* but a circuit really ignoring its extra wire is equivalent *)
  let wide =
    Circ.make ~name:"wide" ~qubits:3 ~cbits:2 (Algorithms.Ghz.static 2).Circ.ops
  in
  let r = Qcec.Verify.functional wide (Algorithms.Ghz.static 2) in
  Alcotest.(check bool) "idle wire accepted" true r.Qcec.Verify.equivalent

let test_distribution_helpers () =
  let d1 = [ ("00", 0.5); ("11", 0.5) ] in
  let d2 = [ ("00", 0.25); ("01", 0.25); ("10", 0.25); ("11", 0.25) ] in
  Util.check_float "TVD" 0.5 (Qcec.Distribution.total_variation d1 d2);
  Util.check_float "TVD self" 0.0 (Qcec.Distribution.total_variation d1 d1);
  Util.check_float "fidelity self" 1.0 (Qcec.Distribution.fidelity d1 d1);
  Util.check_float "fidelity" (Float.sqrt 0.125 *. 2.0) (Qcec.Distribution.fidelity d1 d2);
  let marg = Qcec.Distribution.marginalize d2 ~bits:[ 1 ] in
  Util.check_distributions "marginal" [ ("0", 0.5); ("1", 0.5) ] marg;
  (match Qcec.Distribution.most_probable ~count:1 d1 with
   | [ (_, p) ] -> Util.check_float "top-1" 0.5 p
   | _ -> Alcotest.fail "most_probable size")

(* property: random unitary circuit is equivalent to itself composed with
   identity-preserving rewrites, and inequivalent to a mutated version *)
let prop_self_equivalence =
  QCheck.Test.make ~name:"random circuit equivalent to itself (all strategies)"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:4 ~gates:20 in
      List.for_all
        (fun strategy -> (Qcec.Verify.functional ~strategy c c).Qcec.Verify.equivalent)
        [ Qcec.Strategy.Construction; Qcec.Strategy.Proportional; Qcec.Strategy.Simulation 3 ])

let prop_transform_then_check_random_dynamic =
  QCheck.Test.make ~name:"random dynamic circuit equivalent to its own transform"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:10 in
      let static = Transform.Dynamic.transform dyn in
      (* the functional flow transforms [dyn] internally; compare to the
         pre-transformed version *)
      (Qcec.Verify.functional static dyn).Qcec.Verify.equivalent)

let suite =
  [ Alcotest.test_case "BV functional" `Quick test_bv_functional
  ; Alcotest.test_case "QFT functional" `Quick test_qft_functional
  ; Alcotest.test_case "QPE functional (both variants)" `Quick test_qpe_functional
  ; Alcotest.test_case "strategies agree" `Quick test_strategies_agree
  ; Alcotest.test_case "mutations caught (functional)" `Quick test_negative_functional
  ; Alcotest.test_case "mutations caught (distribution)" `Quick
      test_negative_distribution
  ; Alcotest.test_case "distribution equivalence families" `Quick
      test_distribution_families
  ; Alcotest.test_case "global phase freedom" `Quick test_global_phase_freedom
  ; Alcotest.test_case "register width padding" `Quick test_qubit_count_mismatch
  ; Alcotest.test_case "distribution helpers" `Quick test_distribution_helpers
  ; Util.qtest prop_self_equivalence
  ; Util.qtest prop_transform_then_check_random_dynamic
  ]
