(* Section 4 scheme tests: reset elimination, measurement deferral, and the
   semantic theorem behind the whole construction — the transformed circuit
   reproduces the dynamic circuit's measurement-outcome distribution. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let test_reset_elimination_counts () =
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let out = Transform.Resets.eliminate dyn in
  Alcotest.(check int) "2 resets eliminated" 2 out.Transform.Resets.resets_eliminated;
  Alcotest.(check int) "4 qubits after" 4 out.Transform.Resets.circuit.Circ.num_qubits;
  Alcotest.(check int) "no resets remain" 0
    (Circ.op_counts out.Transform.Resets.circuit).Circ.resets;
  (* the work qubit ends on the last fresh wire *)
  Alcotest.(check int) "work qubit final wire" 3 out.Transform.Resets.wire_of.(0);
  Alcotest.(check int) "eigenstate qubit untouched" 1 out.Transform.Resets.wire_of.(1)

let test_reset_on_fresh_wire_targets () =
  (* ops after a reset must act on the fresh wire, ops before on the old *)
  let c =
    Circ.make ~name:"r" ~qubits:1 ~cbits:2
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.Reset 0
      ; Op.apply Gates.X 0
      ; Op.Measure { qubit = 0; cbit = 1 }
      ]
  in
  let out = Transform.Resets.eliminate c in
  match out.Transform.Resets.circuit.Circ.ops with
  | [ Op.Apply { target = 0; _ }
    ; Op.Measure { qubit = 0; cbit = 0 }
    ; Op.Apply { target = 1; gate = Gates.X; _ }
    ; Op.Measure { qubit = 1; cbit = 1 }
    ] -> ()
  | _ -> Alcotest.fail "rerouting after reset is wrong"

let test_deferral_moves_measurements_to_end () =
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let noreset = (Transform.Resets.eliminate dyn).Transform.Resets.circuit in
  let out = Transform.Deferral.defer noreset in
  Alcotest.(check int) "3 measurements deferred" 3
    out.Transform.Deferral.measurements_deferred;
  Alcotest.(check int) "3 conditions replaced" 3
    out.Transform.Deferral.conditions_replaced;
  let ops = out.Transform.Deferral.circuit.Circ.ops in
  let rec check_suffix = function
    | [] -> Alcotest.fail "no ops"
    | Op.Measure _ :: rest ->
      List.iter
        (function Op.Measure _ -> () | _ -> Alcotest.fail "op after measurement")
        rest
    | _ :: rest -> check_suffix rest
  in
  check_suffix ops;
  Alcotest.(check bool) "result is static" false
    (Circ.is_dynamic out.Transform.Deferral.circuit)

let test_deferral_rejects_reuse () =
  let c =
    Circ.make ~name:"bad" ~qubits:1 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 }; Op.apply Gates.H 0 ]
  in
  match Transform.Deferral.defer c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of gate on measured qubit"

let test_deferral_rejects_double_write () =
  let c =
    Circ.make ~name:"bad" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 }; Op.Measure { qubit = 1; cbit = 0 } ]
  in
  match Transform.Deferral.defer c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of double classical write"

let test_deferral_rejects_unmeasured_condition () =
  let c =
    Circ.make ~name:"bad" ~qubits:1 ~cbits:1
      [ Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 0) ]
  in
  match Transform.Deferral.defer c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of condition on unwritten bit"

let test_condition_polarity () =
  (* an if on value 0 must become a negative control *)
  let c =
    Circ.make ~name:"neg" ~qubits:2 ~cbits:1
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.if_bit ~bit:0 ~value:false (Op.apply Gates.X 1)
      ]
  in
  let out = Transform.Deferral.defer c in
  let has_negative_control =
    List.exists
      (function
        | Op.Apply { controls = [ { cq = 0; pos = false } ]; target = 1; _ } -> true
        | _ -> false)
      out.Transform.Deferral.circuit.Circ.ops
  in
  Alcotest.(check bool) "negative control" true has_negative_control

let test_transform_paper_example () =
  let pair = Algorithms.Qpe.paper_example () in
  let out = Transform.Dynamic.to_static pair.Algorithms.Pair.dynamic_circuit in
  Alcotest.(check int) "qubits: 2 + 2 resets = 4 (Fig. 3a)" 4
    out.Transform.Dynamic.circuit.Circ.num_qubits;
  (* Example 6: the transformed circuit equals the static QPE *)
  let aligned =
    Algorithms.Pair.align_transformed pair out.Transform.Dynamic.circuit
  in
  let p = Dd.Pkg.create () in
  let u = Qsim.Dd_sim.build_unitary p (Circ.strip_measurements aligned) in
  let u' =
    Qsim.Dd_sim.build_unitary p
      (Circ.strip_measurements pair.Algorithms.Pair.static_circuit)
  in
  Alcotest.(check bool) "transformed IQPE = static QPE (exactly)" true
    (Dd.Mat.equal p u u')

(* The core semantic property: for any dynamic circuit, the transformed
   static circuit's measured distribution equals the branching extraction of
   the dynamic circuit.  This is the theorem that makes Section 4 sound. *)
let prop_transform_preserves_distribution =
  QCheck.Test.make ~name:"transform preserves measurement distribution" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn =
        Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:3 ~ops:14
      in
      let static = Transform.Dynamic.transform dyn in
      let dyn_dist = Qsim.Statevector.extract_distribution dyn in
      let p = Dd.Pkg.create () in
      let final = Qsim.Dd_sim.simulate p static in
      let static_dist =
        Qsim.Dd_sim.measured_distribution p final ~n:static.Circ.num_qubits
          ~num_cbits:static.Circ.num_cbits ~measures:(Circ.measurements static) ()
      in
      Qcec.Distribution.total_variation dyn_dist static_dist < 1e-8)

let prop_transform_output_is_static =
  QCheck.Test.make ~name:"transform output contains no dynamic primitive" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn =
        Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:3 ~ops:16
      in
      let static = Transform.Dynamic.transform dyn in
      not (Circ.is_dynamic static))

let prop_qubit_arithmetic =
  QCheck.Test.make ~name:"n_dyn + resets = n_transformed" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn =
        Algorithms.Random_circuit.dynamic ~seed ~qubits:4 ~cbits:3 ~ops:12
      in
      let out = Transform.Dynamic.to_static dyn in
      out.Transform.Dynamic.circuit.Circ.num_qubits
      = dyn.Circ.num_qubits + out.Transform.Dynamic.resets_eliminated)

let suite =
  [ Alcotest.test_case "reset elimination counts" `Quick test_reset_elimination_counts
  ; Alcotest.test_case "rerouting to fresh wires" `Quick test_reset_on_fresh_wire_targets
  ; Alcotest.test_case "deferral moves measurements" `Quick
      test_deferral_moves_measurements_to_end
  ; Alcotest.test_case "deferral rejects qubit reuse" `Quick test_deferral_rejects_reuse
  ; Alcotest.test_case "deferral rejects double write" `Quick
      test_deferral_rejects_double_write
  ; Alcotest.test_case "deferral rejects unmeasured condition" `Quick
      test_deferral_rejects_unmeasured_condition
  ; Alcotest.test_case "condition polarity" `Quick test_condition_polarity
  ; Alcotest.test_case "paper Fig. 3 example" `Quick test_transform_paper_example
  ; Util.qtest prop_transform_preserves_distribution
  ; Util.qtest prop_transform_output_is_static
  ; Util.qtest prop_qubit_arithmetic
  ]
