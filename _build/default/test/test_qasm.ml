(* OpenQASM parser and printer tests, including dynamic-circuit primitives
   and round trips. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let parse = Circuit.Qasm_parser.parse

let test_parse_basic () =
  let c =
    parse
      {|OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0],q[1];
        ccx q[0],q[1],q[2];
        p(pi/4) q[2];
        u3(0.1,0.2,0.3) q[1];
        barrier q[0],q[1];
        measure q[0] -> c[0];|}
  in
  Alcotest.(check int) "qubits" 3 c.Circ.num_qubits;
  Alcotest.(check int) "cbits" 3 c.Circ.num_cbits;
  Alcotest.(check int) "ops" 7 (Circ.total_ops c);
  match c.Circ.ops with
  | Op.Apply { gate = Gates.H; _ }
    :: Op.Apply { gate = Gates.X; controls = [ { cq = 0; pos = true } ]; target = 1 }
    :: Op.Apply { gate = Gates.X; controls = [ _; _ ]; target = 2 }
    :: Op.Apply { gate = Gates.P angle; _ } :: _
    when Float.abs (angle -. (Float.pi /. 4.0)) < 1e-12 -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_expressions () =
  let c =
    parse
      {|qreg q[1];
        rz(-pi/2) q[0];
        rx(2*pi/8) q[0];
        ry(pi*(1/4+1/4)) q[0];
        p(1.5e-1) q[0];|}
  in
  match c.Circ.ops with
  | [ Op.Apply { gate = Gates.RZ a; _ }
    ; Op.Apply { gate = Gates.RX b; _ }
    ; Op.Apply { gate = Gates.RY c'; _ }
    ; Op.Apply { gate = Gates.P d; _ }
    ] ->
    Util.check_float "-pi/2" (-.Float.pi /. 2.0) a;
    Util.check_float "2pi/8" (Float.pi /. 4.0) b;
    Util.check_float "pi*(1/4+1/4)" (Float.pi /. 2.0) c';
    Util.check_float "scientific" 0.15 d
  | _ -> Alcotest.fail "unexpected ops"

let test_parse_dynamic () =
  let c =
    parse
      {|qreg q[2];
        creg c0[1];
        creg c1[1];
        h q[0];
        measure q[0] -> c0[0];
        reset q[0];
        if (c0 == 1) x q[1];
        measure q[1] -> c1[0];|}
  in
  Alcotest.(check bool) "dynamic" true (Circ.is_dynamic c);
  match List.nth c.Circ.ops 3 with
  | Op.Cond { cond = { bits = [ 0 ]; value = 1 }; op = Op.Apply { gate = Gates.X; _ } } ->
    ()
  | _ -> Alcotest.fail "if statement parsed wrong"

let test_parse_multibit_condition () =
  let c =
    parse
      {|qreg q[1];
        creg c[3];
        if (c == 5) x q[0];|}
  in
  match c.Circ.ops with
  | [ Op.Cond { cond = { bits = [ 0; 1; 2 ]; value = 5 }; _ } ] -> ()
  | _ -> Alcotest.fail "multi-bit condition parsed wrong"

let test_parse_errors () =
  let expect_error src =
    match parse src with
    | exception Circuit.Qasm_parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" src
  in
  expect_error "qreg q[2]; bogus q[0];";
  expect_error "qreg q[1]; h q[5];";
  expect_error "qreg q[1]; h p[0];";
  expect_error "qreg q[1]; rx() q[0];";
  expect_error "h q[0];" (* undeclared register *)

let test_roundtrip_static () =
  let original = Algorithms.Qft.static 5 in
  let text = Circuit.Qasm_printer.to_string original in
  let back = parse text in
  (* same unitary, up to the creg renaming the printer applies *)
  let p = Dd.Pkg.create () in
  let u = Qsim.Dd_sim.build_unitary p (Circ.strip_measurements original) in
  let u' = Qsim.Dd_sim.build_unitary p (Circ.strip_measurements back) in
  Alcotest.(check bool) "same unitary after round trip" true (Dd.Mat.equal p u u')

let test_roundtrip_dynamic () =
  let original = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let text = Circuit.Qasm_printer.to_string original in
  let back = parse text in
  Alcotest.(check int) "same ops" (Circ.total_ops original) (Circ.total_ops back);
  (* identical measurement distribution *)
  let d1 = Qsim.Statevector.extract_distribution original in
  let d2 = Qsim.Statevector.extract_distribution back in
  Util.check_distributions "round-tripped dynamic circuit" d1 d2

let test_roundtrip_teleport () =
  let original = Algorithms.Teleport.circuit ~prep:[ Gates.RY 0.8; Gates.RZ 0.3 ] in
  let back = parse (Circuit.Qasm_printer.to_string original) in
  let d1 = Qsim.Statevector.extract_distribution original in
  let d2 = Qsim.Statevector.extract_distribution back in
  Util.check_distributions "round-tripped teleport" d1 d2

let test_gate_definitions () =
  let c =
    parse
      {|qreg q[3];
        gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }
        gate rot(theta) t { rz(theta/2) t; rx(-theta) t; }
        gate double(theta) u,v { rot(theta) u; rot(2*theta) v; }
        majority q[0],q[1],q[2];
        double(pi/2) q[0],q[2];|}
  in
  (* majority expands to 3 ops; double -> 2 rot -> 4 ops *)
  Alcotest.(check int) "expanded op count" 7 (Circ.total_ops c);
  (match List.nth c.Circ.ops 3 with
   | Op.Apply { gate = Gates.RZ a; target = 0; _ } ->
     Util.check_float "theta/2 substituted" (Float.pi /. 4.0) a
   | _ -> Alcotest.fail "rot body wrong");
  match List.nth c.Circ.ops 5 with
  | Op.Apply { gate = Gates.RZ a; target = 2; _ } ->
    Util.check_float "2*theta threaded" (Float.pi /. 2.0) a
  | _ -> Alcotest.fail "nested definition wrong"

let test_gate_definition_semantics () =
  (* a defined bell gate behaves like the inline circuit *)
  let defined =
    parse
      {|qreg q[2];
        gate bell a,b { h a; cx a,b; }
        bell q[0],q[1];|}
  in
  let inline = parse {|qreg q[2]; h q[0]; cx q[0],q[1];|} in
  let p = Dd.Pkg.create () in
  let u = Qsim.Dd_sim.build_unitary p defined in
  let u' = Qsim.Dd_sim.build_unitary p inline in
  Alcotest.(check bool) "same unitary" true (Dd.Mat.equal p u u')

let test_conditioned_defined_gate () =
  let c =
    parse
      {|qreg q[2];
        creg c[1];
        gate fx a,b { x a; x b; }
        measure q[0] -> c[0];
        if (c == 1) fx q[0],q[1];|}
  in
  (* the condition distributes over both expanded gates *)
  let conds = (Circ.op_counts c).Circ.conditioned in
  Alcotest.(check int) "condition distributed" 2 conds

let test_gate_definition_errors () =
  let expect_error src =
    match parse src with
    | exception Circuit.Qasm_parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" src
  in
  expect_error "qreg q[1]; gate g a { h a; } g q[0],q[0];" (* arity *)
  ;
  expect_error "qreg q[1]; gate g(t) a { rz(t) a; } g q[0];" (* missing param *)
  ;
  expect_error "qreg q[1]; gate g a { h b; } g q[0];" (* unknown operand *)

let suite =
  [ Alcotest.test_case "parse basics" `Quick test_parse_basic
  ; Alcotest.test_case "gate definitions" `Quick test_gate_definitions
  ; Alcotest.test_case "gate definition semantics" `Quick
      test_gate_definition_semantics
  ; Alcotest.test_case "conditioned defined gate" `Quick test_conditioned_defined_gate
  ; Alcotest.test_case "gate definition errors" `Quick test_gate_definition_errors
  ; Alcotest.test_case "parse expressions" `Quick test_parse_expressions
  ; Alcotest.test_case "parse dynamic primitives" `Quick test_parse_dynamic
  ; Alcotest.test_case "parse multi-bit condition" `Quick test_parse_multibit_condition
  ; Alcotest.test_case "parse errors" `Quick test_parse_errors
  ; Alcotest.test_case "round trip static" `Quick test_roundtrip_static
  ; Alcotest.test_case "round trip dynamic" `Quick test_roundtrip_dynamic
  ; Alcotest.test_case "round trip teleport" `Quick test_roundtrip_teleport
  ]
