let () =
  Alcotest.run "non-unitary equivalence checking"
    [ ("complex numbers", Test_cx.suite)
    ; ("decision diagrams", Test_dd.suite)
    ; ("circuit IR", Test_circuit.suite)
    ; ("openqasm", Test_qasm.suite)
    ; ("openqasm 3", Test_qasm3.suite)
    ; ("transformation (section 4)", Test_transform.suite)
    ; ("extraction (section 5)", Test_extraction.suite)
    ; ("verification flows", Test_verify.suite)
    ; ("compilation", Test_qcompile.suite)
    ; ("alternative simulators", Test_simulators.suite)
    ; ("optimizer", Test_optimize.suite)
    ; ("extensions", Test_extensions.suite)
    ; ("observables", Test_observable.suite)
    ; ("stabilizer backend", Test_stabilizer.suite)
    ; ("edge cases", Test_edge_cases.suite)
    ; ("integration", Test_integration.suite)
    ]
