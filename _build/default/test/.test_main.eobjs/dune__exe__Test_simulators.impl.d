test/test_simulators.ml: Alcotest Algorithms Array Circuit Cxnum Dd Float Fmt List QCheck Qcec Qsim String Util
