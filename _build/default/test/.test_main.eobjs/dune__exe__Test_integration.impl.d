test/test_integration.ml: Alcotest Algorithms Circuit QCheck Qcec Qcompile Qsim Transform Util
