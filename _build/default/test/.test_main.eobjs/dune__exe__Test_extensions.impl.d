test/test_extensions.ml: Alcotest Algorithms Array Circuit Cxnum Float Fmt List QCheck Qcec Qcompile Qsim Transform Util
