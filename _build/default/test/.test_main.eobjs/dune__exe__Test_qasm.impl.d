test/test_qasm.ml: Alcotest Algorithms Circuit Dd Float List Qsim Util
