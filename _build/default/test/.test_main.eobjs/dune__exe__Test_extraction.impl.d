test/test_extraction.ml: Alcotest Algorithms Circuit Float Fmt List QCheck Qcec Qsim String Util
