test/util.ml: Alcotest Array Circuit Cxnum Dd Float Fmt QCheck_alcotest Qcec Qsim
