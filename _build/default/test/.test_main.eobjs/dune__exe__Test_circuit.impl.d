test/test_circuit.ml: Alcotest Algorithms Array Circuit Cxnum Dd Fmt List Qsim String Util
