test/test_qasm3.ml: Alcotest Algorithms Circuit List Qcec Qsim Util
