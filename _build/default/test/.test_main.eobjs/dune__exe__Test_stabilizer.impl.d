test/test_stabilizer.ml: Alcotest Algorithms Array Circuit Dd Float Fmt List QCheck Qcec Qsim Random String Util
