test/test_qcompile.ml: Alcotest Algorithms Array Circuit Cxnum Fmt List QCheck Qcec Qcompile Qsim Util
