test/test_dd.ml: Alcotest Algorithms Array Circuit Cxnum Dd Float Fmt List QCheck Qsim String Util
