test/test_edge_cases.ml: Alcotest Algorithms Circuit Dd Float List Qcec Qsim String Transform Util
