test/test_optimize.ml: Alcotest Algorithms Circuit Float List QCheck Qcec Qcompile Qsim Util
