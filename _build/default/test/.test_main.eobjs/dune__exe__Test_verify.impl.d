test/test_verify.ml: Alcotest Algorithms Circuit Float Fmt List QCheck Qcec Transform Util
