test/test_cx.ml: Alcotest Cxnum Float QCheck Util
