test/test_transform.ml: Alcotest Algorithms Array Circuit Dd List QCheck Qcec Qsim Transform Util
