test/test_observable.ml: Alcotest Algorithms Circuit Dd Float Fmt QCheck Qsim Util
