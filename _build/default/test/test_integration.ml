(* Cross-cutting integration tests: whole tool-chains wired end to end,
   the way a user would compose them. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

(* The grand tour: dynamic IQPE -> OpenQASM 3 -> parse -> Section 4
   transform -> peephole optimizer -> {u3,cx} decomposition -> routing onto
   the IBMQ London coupling -> equivalence check against the original
   static algorithm.  Every arrow is a separate subsystem; the checker
   closes the loop over all of them at once. *)
let test_grand_tour () =
  let pair = Algorithms.Qpe.paper_example () in
  let dynamic = pair.Algorithms.Pair.dynamic_circuit in
  (* ship as OpenQASM 3 and read it back *)
  let shipped = Circuit.Qasm3_printer.to_string dynamic in
  let received = Circuit.Qasm3_parser.parse_any shipped in
  (* unitary reconstruction (Section 4) *)
  let static = Transform.Dynamic.transform received in
  Alcotest.(check bool) "reconstruction is static" false (Circ.is_dynamic static);
  (* optimize, decompose, route on the paper's device *)
  let optimized = (Qcompile.Optimize.run static).Qcompile.Optimize.circuit in
  let basis = Qcompile.Decompose.to_basis optimized in
  let padded = Circ.make ~name:"padded" ~qubits:5 ~cbits:basis.Circ.num_cbits basis.Circ.ops in
  let routed =
    (Qcompile.Mapping.coupled ~edges:Qcompile.Mapping.ibmq_london padded)
      .Qcompile.Mapping.circuit
  in
  (* the original static QPE, padded to the device size *)
  let reference = pair.Algorithms.Pair.static_circuit in
  let r = Qcec.Verify.functional reference routed in
  Alcotest.(check bool) "grand tour preserves functionality" true
    r.Qcec.Verify.equivalent

(* All five simulation backends on the same dynamic Clifford circuit. *)
let test_five_backends_agree () =
  let prep = [ Gates.H; Gates.S ] in
  let tele = Algorithms.Teleport.circuit ~prep in
  let extraction = (Qsim.Extraction.run tele).Qsim.Extraction.distribution in
  let dense = Qsim.Statevector.extract_distribution tele in
  let density = Qsim.Density.distribution (Qsim.Density.run tele) in
  let tableau = Qsim.Stabilizer.extract_distribution tele in
  Util.check_distributions "dense" dense extraction;
  Util.check_distributions "density" density extraction;
  Util.check_distributions "tableau" tableau extraction;
  let sampled = Qsim.Sampler.empirical (Qsim.Sampler.run ~seed:5 ~shots:20000 tele) in
  Alcotest.(check bool) "sampler within statistical error" true
    (Qcec.Distribution.total_variation sampled extraction < 0.05)

(* Scheme 1 and scheme 2 must never disagree on equivalent pairs, and the
   distribution scheme must accept whatever the transformation scheme
   produced (the paper's two views of the same fact). *)
let prop_schemes_consistent =
  QCheck.Test.make ~name:"scheme 1 accepts -> scheme 2 accepts" ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:3 ~ops:12 in
      let static = Transform.Dynamic.transform dyn in
      let s1 = (Qcec.Verify.functional static dyn).Qcec.Verify.equivalent in
      let s2 = (Qcec.Verify.distribution dyn static).Qcec.Verify.distributions_equal in
      s1 && s2)

(* Optimizing a dynamic circuit then transforming equals transforming then
   comparing against the optimized-then-transformed version. *)
let prop_optimize_commutes_with_transform =
  QCheck.Test.make ~name:"optimize and transform commute (as functionality)"
    ~count:20
    QCheck.(int_range 0 100000)
    (fun seed ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:12 in
      let a = Transform.Dynamic.transform (Qcompile.Optimize.run dyn).Qcompile.Optimize.circuit in
      let b = Transform.Dynamic.transform dyn in
      (Qcec.Verify.functional a b).Qcec.Verify.equivalent)

let test_qasm2_and_qasm3_pipelines_agree () =
  let dyn = Algorithms.Bv.dynamic (Algorithms.Bv.hidden_string ~seed:4 5) in
  let via2 = Circuit.Qasm3_parser.parse_any (Circuit.Qasm_printer.to_string dyn) in
  let via3 = Circuit.Qasm3_parser.parse_any (Circuit.Qasm3_printer.to_string dyn) in
  let d2 = (Qsim.Extraction.run via2).Qsim.Extraction.distribution in
  let d3 = (Qsim.Extraction.run via3).Qsim.Extraction.distribution in
  Util.check_distributions "both serializations behave alike" d2 d3

let suite =
  [ Alcotest.test_case "grand tour" `Quick test_grand_tour
  ; Alcotest.test_case "five backends agree" `Quick test_five_backends_agree
  ; Alcotest.test_case "qasm2/qasm3 pipelines agree" `Quick
      test_qasm2_and_qasm3_pipelines_agree
  ; Util.qtest prop_schemes_consistent
  ; Util.qtest prop_optimize_commutes_with_transform
  ]
