(* Benchmark harness reproducing the paper's experimental evaluation:

     table1    the paper's Table 1 (all three benchmark families, all four
               timing columns), at sizes scaled to this OCaml implementation
     fig4      the extraction branching tree of the running example
     ablation  design-choice studies: QPE generator alignment, extraction
               pruning thresholds, parallel extraction, checking strategies
     backends  DD backend A/B: every registered backend over Table 1
     micro     Bechamel micro-benchmarks (one per table/figure)

   Run everything:       dune exec bench/main.exe
   One section:          dune exec bench/main.exe -- table1
   Paper-scale sizes:    dune exec bench/main.exe -- table1 --full
   CI smoke sizes:       dune exec bench/main.exe -- table1 --quick
   Machine-readable:     dune exec bench/main.exe -- table1 --json bench.json *)

module Circ = Circuit.Circ
module Pair = Algorithms.Pair

let pr fmt = Fmt.pr fmt

(* Equivalence failures no longer abort the run: they are recorded (so a
   --json report still covers every row) and turn the exit code non-zero,
   which is what the CI bench-smoke job gates on. *)
let failures = ref 0

let report_failure fmt =
  incr failures;
  Fmt.epr fmt

(* DD memory-manager knobs (--cache-cap, --gc-threshold): [None] keeps the
   historical unbounded/no-GC behaviour. *)
let dd_config : Dd.Pkg.config option ref = ref None

(* --no-kernels routes every check through the generic
   build-gate-DD-then-multiply path; the dedicated "kernels" section always
   runs both paths regardless of this flag. *)
let use_kernels = ref true

(* --backend NAME runs every section under that DD backend (a
   [Dd.Registry] name); the dedicated "backends" section always A/Bs every
   registered backend regardless of this flag. *)
let backend_name = ref Dd.Registry.default

let backend_module () =
  match Dd.Registry.find !backend_name with
  | Some b -> b
  | None ->
    Fmt.epr "unknown backend %S (available: %s)@." !backend_name
      (String.concat ", " (Dd.Registry.names ()));
    exit 2

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

type row =
  { n_static : int
  ; g_static : int
  ; n_dyn : int
  ; g_dyn : int
  ; t_trans : float option
  ; t_ver : float option
  ; t_extract : float option
  ; t_sim : float option
  ; equivalent : bool option  (* functional check verdict, if run *)
  ; distributions_equal : bool option  (* distribution check verdict, if run *)
  ; metrics : Obs.Metrics.snapshot  (* DD counters for this row (--json only) *)
  }

let pp_time ppf = function
  | None -> Fmt.pf ppf "%10s" "-"
  | Some t -> Fmt.pf ppf "%10.4f" t

let print_row r =
  pr "%5d %6d %5d %6d %a %a %a %a@." r.n_static r.g_static r.n_dyn r.g_dyn pp_time
    r.t_trans pp_time r.t_ver pp_time r.t_extract pp_time r.t_sim

let print_header () =
  pr "%5s %6s %5s %6s %10s %10s %10s %10s@." "n" "|G|" "n_dyn" "|G|dyn" "t_trans"
    "t_ver" "t_extract" "t_sim";
  pr "%s@." (String.make 68 '-')

(* One Table 1 row: functional verification via the Section 4 scheme and,
   when requested, the Section 5 extraction against plain simulation. *)
let bench_pair ?(extract = true) ?(verify = true) (pair : Pair.t) =
  let module B = (val backend_module () : Dd.Backend.S) in
  let module V = Qcec.Verify.Make (B) in
  let module Sim = Qsim.Dd_sim.Make (B) in
  let m0 = Obs.Metrics.snapshot () in
  let static = pair.Pair.static_circuit and dyn = pair.Pair.dynamic_circuit in
  (* static-analyzer overhead, reported as the analysis.lint span in the
     --json output; generated pairs must be lint-clean of errors *)
  let diags =
    Obs.Span.with_ "analysis.lint" (fun () ->
      Analysis.lint static @ Analysis.lint dyn)
  in
  if Analysis.Diagnostic.has_errors diags then
    report_failure "%s: lint errors on a generated pair!@." static.Circ.name;
  let t_trans, t_ver, equivalent =
    if verify then begin
      let r =
        V.functional ~perm:pair.Pair.dyn_to_static ?dd_config:!dd_config
          ~use_kernels:!use_kernels static dyn
      in
      if not r.Qcec.Verify.equivalent then
        report_failure "%s: NOT equivalent!@." static.Circ.name;
      ( Some r.Qcec.Verify.t_transform
      , Some r.Qcec.Verify.t_check
      , Some r.Qcec.Verify.equivalent )
    end
    else begin
      (* still time the transformation itself *)
      let t0 = Qcec.Verify.now () in
      ignore (Transform.Dynamic.transform dyn);
      (Some (Qcec.Verify.now () -. t0), None, None)
    end
  in
  let t_extract, t_sim, distributions_equal =
    if extract then begin
      let r =
        V.distribution ?dd_config:!dd_config ~use_kernels:!use_kernels dyn static
      in
      if not r.Qcec.Verify.distributions_equal then
        report_failure "%s: distributions differ!@." static.Circ.name;
      ( Some r.Qcec.Verify.t_extract
      , Some r.Qcec.Verify.t_simulate
      , Some r.Qcec.Verify.distributions_equal )
    end
    else begin
      let p = B.Pkg.create ?config:!dd_config () in
      let t0 = Qcec.Verify.now () in
      ignore (Sim.simulate p static);
      (None, Some (Qcec.Verify.now () -. t0), None)
    end
  in
  { n_static = static.Circ.num_qubits
  ; g_static = Circ.gate_count static
  ; n_dyn = dyn.Circ.num_qubits
  ; g_dyn = Circ.total_ops dyn
  ; t_trans
  ; t_ver
  ; t_extract
  ; t_sim
  ; equivalent
  ; distributions_equal
  ; metrics = Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ())
  }

let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

(* ------------------------------------------------------------------ *)
(* JSON sink (schema qcec-bench/v1, documented in docs/OBSERVABILITY.md):
   Table 1 rows plus the DD counters attributable to each row, written as
   one document at exit.  Enabling it also enables metrics collection.    *)

let json_path : string option ref = ref None
let json_rows : (string * row) list ref = ref []

(* filled by the scaling section, emitted as the "scaling" field *)
let scaling_json : Obs.Json.t option ref = ref None

(* filled by the kernels section, emitted as the "kernels" field *)
let kernels_json : Obs.Json.t option ref = ref None

(* filled by the cache section, emitted as the "cache" field *)
let cache_json : Obs.Json.t option ref = ref None

(* filled by the backends section, emitted as the "backends" field *)
let backends_json : Obs.Json.t option ref = ref None

(* filled by the lookahead section, emitted as the "lookahead" field *)
let lookahead_json : Obs.Json.t option ref = ref None

(* filled by the portfolio section, emitted as the "portfolio" field *)
let portfolio_json : Obs.Json.t option ref = ref None

let collect family row =
  if !json_path <> None then json_rows := (family, row) :: !json_rows

let row_json (r : row) =
  let time = function None -> Obs.Json.Null | Some t -> Obs.Json.Float t in
  let verdict = function None -> Obs.Json.Null | Some b -> Obs.Json.Bool b in
  Obs.Json.Obj
    [ ("n", Obs.Json.Int r.n_static)
    ; ("g_static", Obs.Json.Int r.g_static)
    ; ("n_dyn", Obs.Json.Int r.n_dyn)
    ; ("g_dyn", Obs.Json.Int r.g_dyn)
    ; ("t_trans", time r.t_trans)
    ; ("t_ver", time r.t_ver)
    ; ("t_extract", time r.t_extract)
    ; ("t_sim", time r.t_sim)
    ; ("equivalent", verdict r.equivalent)
    ; ("distributions_equal", verdict r.distributions_equal)
    ; ("metrics", Obs.Metrics.to_json r.metrics)
    ]

let write_json ~mode path =
  (* group collected rows by family, preserving encounter order *)
  let families = ref [] in
  List.iter
    (fun (family, row) ->
      match List.assoc_opt family !families with
      | Some rows -> rows := row :: !rows
      | None -> families := !families @ [ (family, ref [ row ]) ])
    (List.rev !json_rows);
  let table1 =
    List.map
      (fun (family, rows) ->
        Obs.Json.Obj
          [ ("family", Obs.Json.String family)
          ; ("rows", Obs.Json.List (List.rev_map row_json !rows))
          ])
      !families
  in
  let scaling =
    match !scaling_json with None -> [] | Some j -> [ ("scaling", j) ]
  in
  let kernels =
    match !kernels_json with None -> [] | Some j -> [ ("kernels", j) ]
  in
  let cache =
    match !cache_json with None -> [] | Some j -> [ ("cache", j) ]
  in
  let backends =
    match !backends_json with None -> [] | Some j -> [ ("backends", j) ]
  in
  let lookahead =
    match !lookahead_json with None -> [] | Some j -> [ ("lookahead", j) ]
  in
  let portfolio =
    match !portfolio_json with None -> [] | Some j -> [ ("portfolio", j) ]
  in
  let doc =
    Obs.Json.Obj
      ([ ("schema", Obs.Json.String "qcec-bench/v1")
       ; ("mode", Obs.Json.String mode)
       ; ("backend", Obs.Json.String !backend_name)
       ; ("table1", Obs.Json.List table1)
       ]
      @ scaling
      @ kernels
      @ cache
      @ backends
      @ lookahead
      @ portfolio
      @ [ ("failures", Obs.Json.Int !failures)
        ; ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot ()))
        ; ("spans", Obs.Span.to_json ())
        ])
  in
  Obs.Json.to_file path doc

(* Optional CSV sink for downstream plotting: one file per Table 1 block. *)
let csv_dir : string option ref = ref None

let with_csv block f =
  match !csv_dir with
  | None -> f (fun _ -> ())
  | Some dir ->
    let path = Filename.concat dir (Fmt.str "table1_%s.csv" block) in
    let oc = open_out path in
    output_string oc "n,g_static,n_dyn,g_dyn,t_trans,t_ver,t_extract,t_sim\n";
    let cell = function None -> "" | Some t -> Fmt.str "%.6f" t in
    let write r =
      Printf.fprintf oc "%d,%d,%d,%d,%s,%s,%s,%s\n" r.n_static r.g_static r.n_dyn
        r.g_dyn (cell r.t_trans) (cell r.t_ver) (cell r.t_extract) (cell r.t_sim)
    in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f write)

let table1 ~full ~quick () =
  pr "@.== Table 1: handling non-unitaries in equivalence checking ==@.";
  pr "(columns as in the paper; sizes scaled to this implementation,@.";
  pr " --full uses paper-scale ranges where feasible, --quick CI-smoke sizes)@.@.";

  pr "Bernstein-Vazirani@.";
  print_header ();
  let bv_range = if quick then range 8 10 else range 121 128 in
  with_csv "bv" (fun write ->
    List.iter
      (fun n ->
        (* the paper's n counts data + ancilla qubits *)
        let pair = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:n (n - 1)) in
        let row = bench_pair pair in
        write row;
        collect "bv" row;
        print_row row)
      bv_range);

  pr "@.Quantum Fourier Transform (extraction regime: dense output)@.";
  print_header ();
  let qft_small = if quick then range 6 8 else if full then range 17 20 else range 13 16 in
  with_csv "qft_extraction" (fun write ->
    List.iter
      (fun n ->
        let row = bench_pair (Algorithms.Qft.make n) in
        write row;
        collect "qft_extraction" row;
        print_row row)
      qft_small);

  pr "@.Quantum Fourier Transform (functional regime, extraction skipped)@.";
  print_header ();
  let qft_large = if quick then range 10 12 else range 125 128 in
  with_csv "qft_functional" (fun write ->
    List.iter
      (fun n ->
        let row = bench_pair ~extract:false (Algorithms.Qft.make n) in
        write row;
        collect "qft_functional" row;
        print_row row)
      qft_large);

  pr "@.Quantum Phase Estimation (textbook static generator; t_ver grows@.";
  pr "steeply with the precision, as in the paper)@.";
  print_header ();
  let qpe_bits = if quick then range 4 6 else if full then range 8 15 else range 8 13 in
  with_csv "qpe" (fun write ->
    List.iter
      (fun m ->
        let theta = Algorithms.Qpe.random_theta ~seed:m ~bits:m in
        let row = bench_pair (Algorithms.Qpe.make_textbook ~theta ~bits:m) in
        write row;
        collect "qpe" row;
        print_row row)
      qpe_bits);
  pr "@.note: the paper reports QPE at n = 43..50 on a 64 GiB C++ setup; the@.";
  pr "textbook construction doubles its verification cost roughly every bit@.";
  pr "(see the ablation: the aligned generator verifies n = 50 in seconds).@."

(* ------------------------------------------------------------------ *)
(* Fig. 4                                                             *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  pr "@.== Fig. 4: extraction for IQPE with theta = 3/16 (3 bits) ==@.@.";
  let dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let tree = Qsim.Extraction.tree dyn in
  pr "%a@.@." Qsim.Extraction.pp_tree tree;
  let r = Qsim.Extraction.run dyn in
  pr "P(|001>) = %.4f (paper: 1/2 * 0.85 * 0.96 ~ 0.408)@."
    (List.assoc "100" r.Qsim.Extraction.distribution);
  pr "full distribution:@.%a@." Qcec.Distribution.pp
    (Qcec.Distribution.most_probable ~count:8 r.Qsim.Extraction.distribution)

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let ablation_qpe_alignment ~full () =
  pr "@.== Ablation: QPE static-generator alignment ==@.";
  pr "(the aligned generator mirrors the deferred dynamic circuit gate by@.";
  pr " gate, keeping the alternating product at the identity; the textbook@.";
  pr " generator forces it to drift)@.@.";
  pr "%6s %14s %14s@." "bits" "aligned [s]" "textbook [s]";
  let bits = if full then [ 8; 10; 12; 14 ] else [ 8; 10; 12 ] in
  List.iter
    (fun m ->
      let theta = Algorithms.Qpe.random_theta ~seed:m ~bits:m in
      let run mk =
        let pair = mk ~theta ~bits:m in
        let r =
          Qcec.Verify.functional ~perm:pair.Pair.dyn_to_static
            pair.Pair.static_circuit pair.Pair.dynamic_circuit
        in
        assert r.Qcec.Verify.equivalent;
        r.Qcec.Verify.t_check
      in
      pr "%6d %14.4f %14.4f@." m (run Algorithms.Qpe.make)
        (run Algorithms.Qpe.make_textbook))
    bits;
  pr "@.aligned generator at paper-scale precision:@.";
  List.iter
    (fun m ->
      let theta = Algorithms.Qpe.random_theta ~seed:m ~bits:m in
      let pair = Algorithms.Qpe.make ~theta ~bits:m in
      let r =
        Qcec.Verify.functional ~perm:pair.Pair.dyn_to_static pair.Pair.static_circuit
          pair.Pair.dynamic_circuit
      in
      assert r.Qcec.Verify.equivalent;
      pr "  bits = %2d (n = %2d): t_ver = %.4f s@." m (m + 1) r.Qcec.Verify.t_check)
    [ 25; 42; 49 ]

let ablation_pruning () =
  pr "@.== Ablation: extraction pruning threshold ==@.";
  pr "(IQPE with a non-representable phase: leaf probabilities span many@.";
  pr " orders of magnitude, so the cutoff trades accuracy for work)@.@.";
  let m = 10 in
  let theta = Algorithms.Qpe.random_theta ~seed:7 ~bits:14 (* needs > m bits *) in
  let dyn = Algorithms.Qpe.dynamic ~theta ~bits:m in
  pr "%10s %8s %8s %10s %10s@." "cutoff" "leaves" "pruned" "mass" "time [s]";
  List.iter
    (fun cutoff ->
      let t0 = Qcec.Verify.now () in
      let r = Qsim.Extraction.run ~cutoff dyn in
      let dt = Qcec.Verify.now () -. t0 in
      pr "%10.0e %8d %8d %10.6f %10.4f@." cutoff
        r.Qsim.Extraction.stats.Qsim.Extraction.leaves
        r.Qsim.Extraction.stats.Qsim.Extraction.pruned
        (Qcec.Distribution.mass r.Qsim.Extraction.distribution)
        dt)
    [ 1e-12; 1e-6; 1e-3; 1e-2 ]

let ablation_parallel () =
  pr "@.== Ablation: parallel extraction (Section 5 notes the branches are@.";
  pr "embarrassingly parallel; the paper's own evaluation is sequential) ==@.@.";
  let n = 13 in
  let dyn = Algorithms.Qft.dynamic n in
  pr "QFT %d (%d branches):@." n (1 lsl n);
  List.iter
    (fun domains ->
      let t0 = Qcec.Verify.now () in
      let r = Qsim.Extraction.run ~domains dyn in
      let dt = Qcec.Verify.now () -. t0 in
      pr "  domains = %d: %.4f s (%d leaves)@." domains dt
        r.Qsim.Extraction.stats.Qsim.Extraction.leaves)
    [ 1; 2; 4; 8 ]

let ablation_strategies () =
  pr "@.== Ablation: equivalence-checking strategies (QPE textbook, 8 bits) ==@.@.";
  let theta = Algorithms.Qpe.random_theta ~seed:3 ~bits:8 in
  let pair = Algorithms.Qpe.make_textbook ~theta ~bits:8 in
  List.iter
    (fun strategy ->
      let r =
        Qcec.Verify.functional ~strategy ~perm:pair.Pair.dyn_to_static
          pair.Pair.static_circuit pair.Pair.dynamic_circuit
      in
      pr "  %-16s equivalent = %b, t_ver = %.4f s, peak nodes = %d@."
        (Qcec.Strategy.name strategy) r.Qcec.Verify.equivalent r.Qcec.Verify.t_check
        r.Qcec.Verify.peak_nodes)
    [ Qcec.Strategy.Construction; Qcec.Strategy.Sequential; Qcec.Strategy.Proportional
    ; Qcec.Strategy.Lookahead; Qcec.Strategy.Simulation 16 ]

(* The paper's Section 5 argues the extraction scheme beats both obvious
   alternatives: stochastic sampling (too many runs for statistical
   significance) and density-matrix simulation (quadratically larger
   states).  Quantify all three on growing IQPE instances. *)
let ablation_alternatives () =
  pr "@.== Ablation: extraction vs. the Section 5 alternatives ==@.@.";
  pr "%6s %14s %14s %14s %12s@." "bits" "extract [s]" "density [s]" "sample [s]"
    "sample TVD";
  List.iter
    (fun m ->
      let theta = Algorithms.Qpe.random_theta ~seed:m ~bits:(m + 4) in
      let dyn = Algorithms.Qpe.dynamic ~theta ~bits:m in
      let t0 = Qcec.Verify.now () in
      let exact = Qsim.Extraction.run dyn in
      let t1 = Qcec.Verify.now () in
      let density = Qsim.Density.run dyn in
      let t2 = Qcec.Verify.now () in
      let shots = 4096 in
      let sampled = Qsim.Sampler.run ~seed:m ~shots dyn in
      let t3 = Qcec.Verify.now () in
      let tvd_density =
        Qcec.Distribution.total_variation exact.Qsim.Extraction.distribution
          (Qsim.Density.distribution density)
      in
      if tvd_density > 1e-8 then failwith "density simulation disagrees";
      let tvd_sample =
        Qcec.Distribution.total_variation exact.Qsim.Extraction.distribution
          (Qsim.Sampler.empirical sampled)
      in
      pr "%6d %14.4f %14.4f %14.4f %12.4f@." m (t1 -. t0) (t2 -. t1) (t3 -. t2)
        tvd_sample)
    [ 4; 5; 6; 7 ];
  pr "(sampling uses 4096 shots; its TVD column shows the statistical error@.";
  pr " that exact extraction avoids)@.";
  pr "@.growing the circuit width instead (random dynamic circuits, 4@.";
  pr "measurements): the density-matrix state is 2^n x 2^n, the extraction@.";
  pr "scheme stays vector-sized —@.@.";
  pr "%8s %14s %14s@." "qubits" "extract [s]" "density [s]";
  List.iter
    (fun qubits ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed:5 ~qubits ~cbits:4 ~ops:40 in
      let t0 = Qcec.Verify.now () in
      let exact = Qsim.Extraction.run dyn in
      let t1 = Qcec.Verify.now () in
      let density = Qsim.Density.run dyn in
      let t2 = Qcec.Verify.now () in
      let tvd =
        Qcec.Distribution.total_variation exact.Qsim.Extraction.distribution
          (Qsim.Density.distribution density)
      in
      if tvd > 1e-8 then failwith "density simulation disagrees";
      pr "%8d %14.4f %14.4f@." qubits (t1 -. t0) (t2 -. t1))
    [ 4; 6; 8; 10 ]

(* Clifford dynamic circuits admit a polynomial tableau backend; quantify
   its advantage over the DD extraction on wide dynamic BV instances. *)
let ablation_stabilizer () =
  pr "@.== Ablation: tableau backend on Clifford dynamic circuits ==@.@.";
  pr "%8s %16s %16s@." "n" "DD extract [s]" "tableau [s]";
  List.iter
    (fun n ->
      let dyn = Algorithms.Bv.dynamic (Algorithms.Bv.hidden_string ~seed:n n) in
      let t0 = Qcec.Verify.now () in
      let dd = Qsim.Extraction.run dyn in
      let t1 = Qcec.Verify.now () in
      let stab = Qsim.Stabilizer.extract_distribution dyn in
      let t2 = Qcec.Verify.now () in
      let tvd =
        Qcec.Distribution.total_variation dd.Qsim.Extraction.distribution stab
      in
      if tvd > 1e-9 then failwith "stabilizer extraction disagrees";
      pr "%8d %16.4f %16.4f@." n (t1 -. t0) (t2 -. t1))
    [ 32; 64; 128; 256 ]

(* Verifying optimized realizations — the paper's second use case. *)
let ablation_optimizer () =
  pr "@.== Ablation: verifying optimized realizations ==@.@.";
  pr "%-14s %8s %8s %10s %12s@." "circuit" "before" "after" "verified" "t_ver [s]";
  List.iter
    (fun (name, c) ->
      let decomposed = Qcompile.Decompose.to_basis c in
      let out = Qcompile.Optimize.run decomposed in
      let t0 = Qcec.Verify.now () in
      let r = Qcec.Verify.functional c out.Qcompile.Optimize.circuit in
      let dt = Qcec.Verify.now () -. t0 in
      pr "%-14s %8d %8d %10s %12.4f@." name
        (Circ.gate_count decomposed)
        (Circ.gate_count out.Qcompile.Optimize.circuit)
        (if r.Qcec.Verify.equivalent then "yes" else "NO!")
        dt)
    [ ("qft_8", Circ.strip_measurements (Algorithms.Qft.static 8))
    ; ( "qpe_8"
      , Circ.strip_measurements
          (Algorithms.Qpe.static ~theta:(Algorithms.Qpe.random_theta ~seed:2 ~bits:8)
             ~bits:8) )
    ; ("grover_5", Circ.strip_measurements (Algorithms.Grover.static ~marked:19 ~qubits:5 ()))
    ; ("ghz_10", Circ.strip_measurements (Algorithms.Ghz.static 10))
    ]

let ablation ~full () =
  ablation_qpe_alignment ~full ();
  ablation_pruning ();
  ablation_parallel ();
  ablation_strategies ();
  ablation_stabilizer ();
  ablation_alternatives ();
  ablation_optimizer ()

(* ------------------------------------------------------------------ *)
(* Scaling: the batch engine, sequential vs parallel                   *)
(* ------------------------------------------------------------------ *)

(* --jobs N for the scaling section (default: what the runtime
   recommends, i.e. roughly the core count) *)
let jobs_n = ref (Domain.recommended_domain_count ())

(* Run one batch of independent verification jobs (the Table 1 families)
   through the engine's worker pool, once on a single worker and once on
   [--jobs] workers, and report the wall-clock speedup.  Verdicts must be
   identical across the two runs — scheduling is not allowed to change
   answers. *)
let scaling ~full ~quick () =
  pr "@.== Scaling: batch verification on the domain worker pool ==@.@.";
  let pairs =
    let bv n = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:n n) in
    let qft n = Algorithms.Qft.make n in
    let qpe m =
      Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m) ~bits:m
    in
    if quick then List.map bv [ 8; 10 ] @ List.map qft [ 5; 6 ] @ List.map qpe [ 4; 5 ]
    else if full then
      List.map bv [ 48; 56; 64; 72 ]
      @ List.map qft [ 9; 10; 11; 12 ]
      @ List.map qpe [ 10; 11; 12; 13 ]
    else
      List.map bv [ 24; 28; 32; 36 ]
      @ List.map qft [ 7; 8; 9; 10 ]
      @ List.map qpe [ 8; 9; 10; 11 ]
  in
  let specs =
    List.mapi
      (fun index (pair : Pair.t) ->
        Engine.Job.circuits ~perm:pair.Pair.dyn_to_static ~backend:!backend_name
          ~index pair.Pair.static_circuit pair.Pair.dynamic_circuit)
      pairs
  in
  let run workers =
    Engine.Pool.run
      { Engine.Pool.default_config with
        Engine.Pool.workers
      ; dd_config = !dd_config
      }
      specs
  in
  let check_verdicts (b : Engine.Pool.batch) =
    List.iter
      (fun (r : Engine.Job.result) ->
        if not (Engine.Job.succeeded r) then
          report_failure "scaling: %a@." Engine.Job.pp_result r)
      b.Engine.Pool.results
  in
  let seq = run 1 in
  check_verdicts seq;
  let jobs = max 1 !jobs_n in
  let par = run jobs in
  check_verdicts par;
  if
    List.exists2
      (fun (a : Engine.Job.result) (b : Engine.Job.result) ->
        not (Engine.Job.same_outcome a.Engine.Job.outcome b.Engine.Job.outcome))
      seq.Engine.Pool.results par.Engine.Pool.results
  then report_failure "scaling: verdicts differ between 1 and %d workers!@." jobs;
  let speedup =
    if par.Engine.Pool.wall_seconds > 0.0 then
      seq.Engine.Pool.wall_seconds /. par.Engine.Pool.wall_seconds
    else 1.0
  in
  pr "%8s %10s@." "workers" "wall [s]";
  pr "%8d %10.4f@." 1 seq.Engine.Pool.wall_seconds;
  pr "%8d %10.4f@." jobs par.Engine.Pool.wall_seconds;
  pr "@.%d jobs; speedup at %d workers: %.2fx@." (List.length pairs) jobs speedup;
  scaling_json :=
    Some
      (Obs.Json.Obj
         [ ("jobs", Obs.Json.Int (List.length pairs))
         ; ("workers", Obs.Json.Int jobs)
         ; ("wall_seconds_sequential", Obs.Json.Float seq.Engine.Pool.wall_seconds)
         ; ("wall_seconds_parallel", Obs.Json.Float par.Engine.Pool.wall_seconds)
         ; ("speedup", Obs.Json.Float speedup)
         ; ("batch", Engine.Results.aggregate par)
         ])

(* ------------------------------------------------------------------ *)
(* Kernels: direct gate-application kernels vs the generic path        *)
(* ------------------------------------------------------------------ *)

(* A/B leg over the Table 1 functional workload: every pair is verified
   once with the direct kernels and once through the generic
   build-gate-DD-then-multiply path.  Verdicts must be identical (the
   kernels are bit-identical by construction, and qcheck-tested to be);
   the wall-clock ratio is the speedup the kernels buy. *)
let kernels_section ~full ~quick () =
  pr "@.== Kernels: direct gate application vs generic gate-DD multiply ==@.@.";
  let pairs =
    let bv n = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:n n) in
    let qft n = Algorithms.Qft.make n in
    let qpe m =
      Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m) ~bits:m
    in
    if quick then List.map bv [ 16; 24 ] @ List.map qft [ 8; 9 ] @ List.map qpe [ 8; 9 ]
    else if full then
      List.map bv [ 64; 96; 128 ] @ List.map qft [ 11; 12; 13 ] @ List.map qpe [ 12; 13; 14 ]
    else
      List.map bv [ 32; 48 ] @ List.map qft [ 9; 10 ] @ List.map qpe [ 10; 11 ]
  in
  (* the speedup compares the check phase only: the dynamic-to-static
     transform and wire alignment run identically on both legs and would
     just dilute the ratio the kernels actually change *)
  let run_leg ~kernels =
    let m0 = Obs.Metrics.snapshot () in
    let t0 = Qcec.Verify.now () in
    let check = ref 0.0 in
    let verdicts =
      List.map
        (fun (pair : Pair.t) ->
          let r =
            Qcec.Verify.functional ~perm:pair.Pair.dyn_to_static
              ?dd_config:!dd_config ~use_kernels:kernels pair.Pair.static_circuit
              pair.Pair.dynamic_circuit
          in
          check := !check +. r.Qcec.Verify.t_check;
          if not r.Qcec.Verify.equivalent then
            report_failure "kernels: %s NOT equivalent (kernels = %b)!@."
              pair.Pair.static_circuit.Circ.name kernels;
          (r.Qcec.Verify.equivalent, r.Qcec.Verify.exactly_equal))
        pairs
    in
    let dt = Qcec.Verify.now () -. t0 in
    (verdicts, dt, !check, Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ()))
  in
  let v_kernel, t_kernel, c_kernel, m_kernel = run_leg ~kernels:true in
  let v_generic, t_generic, c_generic, m_generic = run_leg ~kernels:false in
  if v_kernel <> v_generic then
    report_failure "kernels: verdicts differ between kernel and generic paths!@.";
  (* best-of-N: each leg keeps its fastest repetition, and the extra
     repetitions alternate legs, so a transient machine-load spike cannot
     land entirely on one side of the ratio *)
  let reps = if quick || full then 1 else 3 in
  let t_kernel = ref t_kernel and c_kernel = ref c_kernel in
  let t_generic = ref t_generic and c_generic = ref c_generic in
  for _ = 2 to reps do
    let _, t, c, _ = run_leg ~kernels:true in
    if c < !c_kernel then begin t_kernel := t; c_kernel := c end;
    let _, t, c, _ = run_leg ~kernels:false in
    if c < !c_generic then begin t_generic := t; c_generic := c end
  done;
  let t_kernel = !t_kernel and c_kernel = !c_kernel in
  let t_generic = !t_generic and c_generic = !c_generic in
  let speedup = if c_kernel > 0.0 then c_generic /. c_kernel else 1.0 in
  pr "%10s %12s %12s@." "path" "wall [s]" "check [s]";
  pr "%10s %12.4f %12.4f@." "kernels" t_kernel c_kernel;
  pr "%10s %12.4f %12.4f@." "generic" t_generic c_generic;
  pr "@.%d functional checks; kernel check-phase speedup: %.2fx@."
    (List.length pairs) speedup;
  kernels_json :=
    Some
      (Obs.Json.Obj
         [ ("jobs", Obs.Json.Int (List.length pairs))
         ; ("reps", Obs.Json.Int reps)
         ; ("verdicts_equal", Obs.Json.Bool (v_kernel = v_generic))
         ; ("wall_seconds_kernels", Obs.Json.Float t_kernel)
         ; ("wall_seconds_generic", Obs.Json.Float t_generic)
         ; ("check_seconds_kernels", Obs.Json.Float c_kernel)
         ; ("check_seconds_generic", Obs.Json.Float c_generic)
         ; ("speedup", Obs.Json.Float speedup)
         ; ("metrics_kernels", Obs.Metrics.to_json m_kernel)
         ; ("metrics_generic", Obs.Metrics.to_json m_generic)
         ])

(* ------------------------------------------------------------------ *)
(* Cache: cold vs warm verification through the verdict store          *)
(* ------------------------------------------------------------------ *)

(* Cold/warm A/B over a Table-1-style workload: the cold leg verifies
   every pair through an empty persistent store, then the store is closed
   and reopened so the warm leg replays the verdicts from disk — proving
   the records round-trip through the JSONL segments, not just the
   in-memory index.  Every warm result must carry [cached = true] and
   match its cold verdict; the wall-clock ratio is what the cache buys. *)
let cache_section ~full ~quick () =
  pr "@.== Cache: cold vs warm verification through the verdict store ==@.@.";
  let pairs =
    let bv n = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:n n) in
    let qft n = Algorithms.Qft.make n in
    let qpe m =
      Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m) ~bits:m
    in
    if quick then List.map bv [ 16; 24 ] @ List.map qft [ 8; 9 ] @ List.map qpe [ 8; 9 ]
    else if full then
      List.map bv [ 64; 96; 128 ] @ List.map qft [ 11; 12; 13 ] @ List.map qpe [ 12; 13; 14 ]
    else
      List.map bv [ 32; 48 ] @ List.map qft [ 9; 10 ] @ List.map qpe [ 10; 11 ]
  in
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qcec-bench-cache-%d" (Unix.getpid ()))
  in
  let open_store () =
    match Cache_store.Store.open_dir store_dir with
    | Ok s -> s
    | Error msg ->
      Fmt.epr "cache: cannot open store at %s: %s@." store_dir msg;
      exit 2
  in
  let run_leg store =
    let m0 = Obs.Metrics.snapshot () in
    let t0 = Qcec.Verify.now () in
    let results =
      List.map
        (fun (pair : Pair.t) ->
          let r =
            Qcec.Verify.functional ~perm:pair.Pair.dyn_to_static
              ?dd_config:!dd_config ~cache:store pair.Pair.static_circuit
              pair.Pair.dynamic_circuit
          in
          if not r.Qcec.Verify.equivalent then
            report_failure "cache: %s NOT equivalent!@."
              pair.Pair.static_circuit.Circ.name;
          r)
        pairs
    in
    let dt = Qcec.Verify.now () -. t0 in
    (results, dt, Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ()))
  in
  let cold_store = open_store () in
  let r_cold, t_cold, m_cold = run_leg cold_store in
  Cache_store.Store.close cold_store;
  let warm_store = open_store () in
  let r_warm, t_warm, m_warm = run_leg warm_store in
  Cache_store.Store.close warm_store;
  let verdict (r : Qcec.Verify.functional_result) =
    (r.Qcec.Verify.equivalent, r.Qcec.Verify.exactly_equal)
  in
  let verdicts_equal = List.map verdict r_cold = List.map verdict r_warm in
  if not verdicts_equal then
    report_failure "cache: verdicts differ between cold and warm legs!@.";
  let served = List.length (List.filter (fun r -> r.Qcec.Verify.cached) r_warm) in
  if served <> List.length pairs then
    report_failure "cache: only %d/%d warm verdicts served from the store!@."
      served (List.length pairs);
  let speedup = if t_warm > 0.0 then t_cold /. t_warm else 1.0 in
  pr "%8s %12s %8s@." "leg" "wall [s]" "cached";
  pr "%8s %12.4f %8d@." "cold" t_cold
    (List.length (List.filter (fun r -> r.Qcec.Verify.cached) r_cold));
  pr "%8s %12.4f %8d@." "warm" t_warm served;
  pr "@.%d pairs; warm served %d from store; cold/warm speedup: %.2fx@."
    (List.length pairs) served speedup;
  cache_json :=
    Some
      (Obs.Json.Obj
         [ ("jobs", Obs.Json.Int (List.length pairs))
         ; ("verdicts_equal", Obs.Json.Bool verdicts_equal)
         ; ("warm_cached", Obs.Json.Int served)
         ; ("wall_seconds_cold", Obs.Json.Float t_cold)
         ; ("wall_seconds_warm", Obs.Json.Float t_warm)
         ; ("speedup", Obs.Json.Float speedup)
         ; ("pkg_created_warm", Obs.Json.Int (Obs.Metrics.find m_warm "dd.pkg.created"))
         ; ("metrics_cold", Obs.Metrics.to_json m_cold)
         ; ("metrics_warm", Obs.Metrics.to_json m_warm)
         ]);
  (* best-effort temp-store cleanup: the dir only ever holds our segments *)
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat store_dir f))
       (Sys.readdir store_dir);
     Sys.rmdir store_dir
   with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Backends: every registered DD backend over the Table 1 workload     *)
(* ------------------------------------------------------------------ *)

(* A/B leg across the {!Dd.Registry}: every registered backend verifies
   the same Table-1-style pairs through its own [Qcec.Verify.Make]
   instance.  Verdicts must be identical across backends, and each
   backend must actually exercise its direct kernels on its leg
   ([dd.kernel.calls] > 0) — a backend silently falling back to the
   generic path is a failure, not a slowdown.  The wall-clock columns are
   the honest cost comparison between the hash-consed classic package and
   the packed-array layout. *)
let backends_section ~full ~quick () =
  pr "@.== Backends: DD backend A/B over the Table 1 workload ==@.@.";
  let pairs =
    let bv n = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:n n) in
    let qft n = Algorithms.Qft.make n in
    let qpe m =
      Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m) ~bits:m
    in
    if quick then List.map bv [ 16; 24 ] @ List.map qft [ 8; 9 ] @ List.map qpe [ 8; 9 ]
    else if full then
      List.map bv [ 64; 96; 128 ] @ List.map qft [ 11; 12; 13 ] @ List.map qpe [ 12; 13; 14 ]
    else
      List.map bv [ 32; 48 ] @ List.map qft [ 9; 10 ] @ List.map qpe [ 10; 11 ]
  in
  (* the kernel-usage gate below needs live counters even without --json *)
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let run_leg name =
    let module B =
      (val (match Dd.Registry.find name with
            | Some b -> b
            | None -> assert false (* names come from the registry itself *))
        : Dd.Backend.S)
    in
    let module V = Qcec.Verify.Make (B) in
    let m0 = Obs.Metrics.snapshot () in
    let t0 = Qcec.Verify.now () in
    let check = ref 0.0 in
    let verdicts =
      List.map
        (fun (pair : Pair.t) ->
          let r =
            V.functional ~perm:pair.Pair.dyn_to_static ?dd_config:!dd_config
              ~use_kernels:true pair.Pair.static_circuit pair.Pair.dynamic_circuit
          in
          check := !check +. r.Qcec.Verify.t_check;
          if not r.Qcec.Verify.equivalent then
            report_failure "backends: %s NOT equivalent under %s!@."
              pair.Pair.static_circuit.Circ.name name;
          (r.Qcec.Verify.equivalent, r.Qcec.Verify.exactly_equal))
        pairs
    in
    let dt = Qcec.Verify.now () -. t0 in
    (verdicts, dt, !check, Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ()))
  in
  let legs = List.map (fun name -> (name, run_leg name)) (Dd.Registry.names ()) in
  Obs.Metrics.set_enabled was_enabled;
  let verdicts_equal =
    match legs with
    | [] -> true
    | (_, (reference, _, _, _)) :: rest ->
      List.for_all (fun (_, (v, _, _, _)) -> v = reference) rest
  in
  if not verdicts_equal then
    report_failure "backends: verdicts differ across DD backends!@.";
  pr "%10s %12s %12s %14s@." "backend" "wall [s]" "check [s]" "kernel calls";
  List.iter
    (fun (name, (_, dt, check, m)) ->
      let kernel_calls = Obs.Metrics.find m "dd.kernel.calls" in
      if kernel_calls = 0 then
        report_failure "backends: %s recorded no kernel calls!@." name;
      pr "%10s %12.4f %12.4f %14d@." name dt check kernel_calls)
    legs;
  pr "@.%d functional checks per backend; verdicts identical: %b@."
    (List.length pairs) verdicts_equal;
  backends_json :=
    Some
      (Obs.Json.Obj
         [ ("jobs", Obs.Json.Int (List.length pairs))
         ; ("verdicts_equal", Obs.Json.Bool verdicts_equal)
         ; ( "legs"
           , Obs.Json.List
               (List.map
                  (fun (name, (_, dt, check, m)) ->
                    Obs.Json.Obj
                      [ ("backend", Obs.Json.String name)
                      ; ("wall_seconds", Obs.Json.Float dt)
                      ; ("check_seconds", Obs.Json.Float check)
                      ; ("kernel_calls", Obs.Json.Int (Obs.Metrics.find m "dd.kernel.calls"))
                      ; ("metrics", Obs.Metrics.to_json m)
                      ])
                  legs) )
         ])

(* ------------------------------------------------------------------ *)
(* Lookahead: analysis-driven scheduling vs proportional alternation   *)
(* ------------------------------------------------------------------ *)

(* A/B over the Table 1 pairs: every pair is verified once under plain
   proportional alternation and once under the cost-aware lookahead
   scheme.  Verdicts must be bit-identical — scheduling only reorders the
   alternating multiplications, it must never change the answer.  The
   peak-intermediate-node columns are the quantity the lookahead scheme
   exists to reduce; on the QPE textbook pair (where the dynamic
   realization front-loads its non-Clifford cost mass) lookahead must not
   exceed proportional. *)
let lookahead_section ~full ~quick () =
  pr "@.== Lookahead: cost-aware scheduling vs proportional alternation ==@.@.";
  let pairs =
    let bv n = ("bv", Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:n n)) in
    let qft n = ("qft", Algorithms.Qft.make n) in
    let qpe m =
      ( "qpe"
      , Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m)
          ~bits:m )
    in
    let qpe_tb m =
      ( "qpe_textbook"
      , Algorithms.Qpe.make_textbook
          ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m) ~bits:m )
    in
    if quick then [ bv 12; qft 6; qpe 5; qpe_tb 5 ]
    else if full then [ bv 64; qft 11; qpe 11; qpe_tb 10 ]
    else [ bv 32; qft 9; qpe 9; qpe_tb 8 ]
  in
  let rows =
    List.map
      (fun (family, (pair : Pair.t)) ->
        let leg strategy =
          Qcec.Verify.functional ~strategy ~perm:pair.Pair.dyn_to_static
            ?dd_config:!dd_config pair.Pair.static_circuit pair.Pair.dynamic_circuit
        in
        let p = leg Qcec.Strategy.Proportional in
        let l = leg Qcec.Strategy.Lookahead in
        let verdicts_equal =
          p.Qcec.Verify.equivalent = l.Qcec.Verify.equivalent
          && p.Qcec.Verify.exactly_equal = l.Qcec.Verify.exactly_equal
        in
        if not verdicts_equal then
          report_failure "lookahead: %s verdict differs from proportional!@."
            pair.Pair.static_circuit.Circ.name;
        if not p.Qcec.Verify.equivalent then
          report_failure "lookahead: %s NOT equivalent!@."
            pair.Pair.static_circuit.Circ.name;
        (family, pair, p, l, verdicts_equal))
      pairs
  in
  pr "%-14s %6s %10s %12s %12s %12s %12s@." "pair" "n" "verdict" "peak_prop"
    "peak_look" "t_prop [s]" "t_look [s]";
  List.iter
    (fun (_family, (pair : Pair.t), p, l, verdicts_equal) ->
      pr "%-14s %6d %10s %12d %12d %12.4f %12.4f@."
        pair.Pair.static_circuit.Circ.name
        pair.Pair.static_circuit.Circ.num_qubits
        (if verdicts_equal then "same" else "DIFFER")
        p.Qcec.Verify.peak_nodes l.Qcec.Verify.peak_nodes p.Qcec.Verify.t_check
        l.Qcec.Verify.t_check)
    rows;
  (* the acceptance gate: on the QPE textbook pair, where the cost curves
     actually diverge, the scheme must pay for itself in peak nodes *)
  (match
     List.find_opt (fun (family, _, _, _, _) -> family = "qpe_textbook") rows
   with
   | Some (_, (pair : Pair.t), p, l, _) ->
     if l.Qcec.Verify.peak_nodes > p.Qcec.Verify.peak_nodes then
       report_failure
         "lookahead: peak nodes regressed on %s (%d > %d)!@."
         pair.Pair.static_circuit.Circ.name l.Qcec.Verify.peak_nodes
         p.Qcec.Verify.peak_nodes
   | None -> ());
  let all_equal = List.for_all (fun (_, _, _, _, eq) -> eq) rows in
  pr "@.%d pairs; verdicts identical: %b@." (List.length rows) all_equal;
  lookahead_json :=
    Some
      (Obs.Json.Obj
         [ ("jobs", Obs.Json.Int (List.length rows))
         ; ("verdicts_equal", Obs.Json.Bool all_equal)
         ; ( "pairs"
           , Obs.Json.List
               (List.map
                  (fun (family, (pair : Pair.t), p, l, eq) ->
                    Obs.Json.Obj
                      [ ("family", Obs.Json.String family)
                      ; ( "name"
                        , Obs.Json.String pair.Pair.static_circuit.Circ.name )
                      ; ( "qubits"
                        , Obs.Json.Int pair.Pair.static_circuit.Circ.num_qubits )
                      ; ("verdicts_equal", Obs.Json.Bool eq)
                      ; ("equivalent", Obs.Json.Bool p.Qcec.Verify.equivalent)
                      ; ( "peak_nodes_proportional"
                        , Obs.Json.Int p.Qcec.Verify.peak_nodes )
                      ; ( "peak_nodes_lookahead"
                        , Obs.Json.Int l.Qcec.Verify.peak_nodes )
                      ; ( "t_check_proportional"
                        , Obs.Json.Float p.Qcec.Verify.t_check )
                      ; ("t_check_lookahead", Obs.Json.Float l.Qcec.Verify.t_check)
                      ])
                  rows) )
         ])

(* ------------------------------------------------------------------ *)
(* Portfolio: first-verdict-wins racing over the composed field        *)
(* ------------------------------------------------------------------ *)

(* Race over the Table 1 pairs: every pair is verified solo under each
   candidate of the analysis-composed field, then once as a
   first-verdict-wins race over the same candidates.  Two gates: the race
   verdict must agree with every solo verdict (racing only changes who
   answers, never the answer), and the race wall-clock must stay at or
   below the slowest solo candidate (the whole point of racing: portfolio
   latency is bounded by the winner, not the field).  The JSON also
   records on which pairs the cost model's solo recommendation — always
   candidate 0 of the composed field — lost its race. *)
let portfolio_section ~full ~quick () =
  pr "@.== Portfolio: first-verdict-wins racing over candidate deciders ==@.@.";
  let pairs =
    let bv n = ("bv", Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:n n)) in
    let qft n = ("qft", Algorithms.Qft.make n) in
    let qpe m =
      ( "qpe"
      , Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m)
          ~bits:m )
    in
    let qpe_tb m =
      ( "qpe_textbook"
      , Algorithms.Qpe.make_textbook
          ~theta:(Algorithms.Qpe.random_theta ~seed:m ~bits:m) ~bits:m )
    in
    (* Sizes stay modest even in the default row: each pair is verified
       once per candidate (solo baselines) plus once as a race, and the
       simulative solos dominate the bill. *)
    if quick then [ bv 12; qft 6; qpe 5; qpe_tb 5 ]
    else if full then [ bv 32; qft 9; qpe 9; qpe_tb 8 ]
    else [ bv 16; qft 7; qpe 7; qpe_tb 6 ]
  in
  let width = 5 in
  let seed = 11 in
  let shots = 64 in
  let rows =
    List.map
      (fun (family, (pair : Pair.t)) ->
        let a = pair.Pair.static_circuit and b = pair.Pair.dynamic_circuit in
        let kind =
          let k c = (Analysis.classify c).Analysis.Classify.kind in
          let rank = function
            | Analysis.Classify.Unitary -> 0
            | Analysis.Classify.Measure_terminal -> 1
            | Analysis.Classify.Dynamic -> 2
          in
          if rank (k a) >= rank (k b) then k a else k b
        in
        let candidates =
          Analysis.Classify.compose_portfolio ~width ~shots kind
            (Analysis.Cost.profile a) (Analysis.Cost.profile b)
          |> List.map Qcec.Strategy.of_candidate
        in
        let solo =
          List.map
            (fun strategy ->
              let t0 = Qcec.Verify.now () in
              let r =
                Qcec.Verify.functional ~strategy ~seed ~perm:pair.Pair.dyn_to_static
                  ?dd_config:!dd_config ~use_kernels:!use_kernels a b
              in
              (strategy, r, Qcec.Verify.now () -. t0))
            candidates
        in
        let race =
          Qcec.Verify.portfolio
            ~candidates:(List.map (fun s -> (s, !backend_name)) candidates)
            ~seed ~perm:pair.Pair.dyn_to_static ?dd_config:!dd_config
            ~use_kernels:!use_kernels a b
        in
        let verdicts_equal =
          List.for_all
            (fun (_, (r : Qcec.Verify.functional_result), _) ->
              r.Qcec.Verify.equivalent
              = race.Qcec.Verify.winner.Qcec.Verify.equivalent)
            solo
        in
        if not verdicts_equal then
          report_failure "portfolio: %s race verdict differs from a solo run!@."
            a.Circ.name;
        if not race.Qcec.Verify.winner.Qcec.Verify.equivalent then
          report_failure "portfolio: %s NOT equivalent!@." a.Circ.name;
        (* every composed field contains an exact candidate, so a Table 1
           race must settle on a definitive verdict, never the simulative
           all-shots-pass fallback *)
        if not race.Qcec.Verify.winner_definitive then
          report_failure "portfolio: %s race verdict is not definitive!@."
            a.Circ.name;
        let worst_solo =
          List.fold_left (fun acc (_, _, t) -> Float.max acc t) 0.0 solo
        in
        if race.Qcec.Verify.t_wall > worst_solo then
          report_failure
            "portfolio: %s race (%.4fs) slower than the worst solo candidate \
             (%.4fs)!@."
            a.Circ.name race.Qcec.Verify.t_wall worst_solo;
        (family, pair, candidates, solo, race, verdicts_equal, worst_solo))
      pairs
  in
  pr "%-14s %6s %10s %-26s %12s %12s@." "pair" "n" "verdict" "winner" "t_race [s]"
    "t_worst [s]";
  List.iter
    (fun (_, (pair : Pair.t), _, _, (race : Qcec.Verify.portfolio_result),
          verdicts_equal, worst_solo) ->
      pr "%-14s %6d %10s %-26s %12.4f %12.4f@." pair.Pair.static_circuit.Circ.name
        pair.Pair.static_circuit.Circ.num_qubits
        (if verdicts_equal then "same" else "DIFFER")
        (Qcec.Strategy.name race.Qcec.Verify.winner_strategy)
        race.Qcec.Verify.t_wall worst_solo)
    rows;
  let all_equal = List.for_all (fun (_, _, _, _, _, eq, _) -> eq) rows in
  let recommended_lost =
    List.length
      (List.filter
         (fun (_, _, _, _, (r : Qcec.Verify.portfolio_result), _, _) ->
           r.Qcec.Verify.winner_index <> 0)
         rows)
  in
  pr "@.%d pairs; verdicts identical: %b; cost-model pick lost %d race(s)@."
    (List.length rows) all_equal recommended_lost;
  portfolio_json :=
    Some
      (Obs.Json.Obj
         [ ("jobs", Obs.Json.Int (List.length rows))
         ; ("width", Obs.Json.Int width)
         ; ("seed", Obs.Json.Int seed)
         ; ("verdicts_equal", Obs.Json.Bool all_equal)
         ; ("recommended_lost", Obs.Json.Int recommended_lost)
         ; ( "pairs"
           , Obs.Json.List
               (List.map
                  (fun (family, (pair : Pair.t), candidates, solo,
                        (race : Qcec.Verify.portfolio_result), eq, worst_solo) ->
                    Obs.Json.Obj
                      [ ("family", Obs.Json.String family)
                      ; ( "name"
                        , Obs.Json.String pair.Pair.static_circuit.Circ.name )
                      ; ( "qubits"
                        , Obs.Json.Int pair.Pair.static_circuit.Circ.num_qubits )
                      ; ( "candidates"
                        , Obs.Json.List
                            (List.map
                               (fun s -> Obs.Json.String (Qcec.Strategy.name s))
                               candidates) )
                      ; ("verdicts_equal", Obs.Json.Bool eq)
                      ; ( "equivalent"
                        , Obs.Json.Bool
                            race.Qcec.Verify.winner.Qcec.Verify.equivalent )
                      ; ( "winner"
                        , Obs.Json.String
                            (Qcec.Strategy.name race.Qcec.Verify.winner_strategy) )
                      ; ("winner_index", Obs.Json.Int race.Qcec.Verify.winner_index)
                      ; ( "winner_definitive"
                        , Obs.Json.Bool race.Qcec.Verify.winner_definitive )
                      ; ( "recommended_lost"
                        , Obs.Json.Bool (race.Qcec.Verify.winner_index <> 0) )
                      ; ("cancelled", Obs.Json.Int race.Qcec.Verify.races_cancelled)
                      ; ("t_race", Obs.Json.Float race.Qcec.Verify.t_wall)
                      ; ("t_worst_solo", Obs.Json.Float worst_solo)
                      ; ( "solo"
                        , Obs.Json.List
                            (List.map
                               (fun (s, (r : Qcec.Verify.functional_result), t) ->
                                 Obs.Json.Obj
                                   [ ( "strategy"
                                     , Obs.Json.String (Qcec.Strategy.name s) )
                                   ; ( "equivalent"
                                     , Obs.Json.Bool r.Qcec.Verify.equivalent )
                                   ; ("t_wall", Obs.Json.Float t)
                                   ])
                               solo) )
                      ])
                  rows) )
         ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  pr "@.== Bechamel micro-benchmarks (one per table/figure) ==@.@.";
  let bv_pair = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:1 32) in
  let qft_pair = Algorithms.Qft.make 8 in
  let qpe_pair = Algorithms.Qpe.make ~theta:(3.0 /. 16.0) ~bits:8 in
  let fig4_dyn = Algorithms.Qpe.dynamic ~theta:(3.0 /. 16.0) ~bits:3 in
  let functional (pair : Pair.t) () =
    ignore
      (Qcec.Verify.functional ~perm:pair.Pair.dyn_to_static pair.Pair.static_circuit
         pair.Pair.dynamic_circuit)
  in
  let tests =
    Test.make_grouped ~name:"paper" ~fmt:"%s/%s"
      [ Test.make ~name:"table1-bv32-functional" (Staged.stage (functional bv_pair))
      ; Test.make ~name:"table1-qft8-functional" (Staged.stage (functional qft_pair))
      ; Test.make ~name:"table1-qpe8-functional" (Staged.stage (functional qpe_pair))
      ; Test.make ~name:"table1-qpe8-extraction"
          (Staged.stage (fun () ->
             ignore (Qsim.Extraction.run qpe_pair.Pair.dynamic_circuit)))
      ; Test.make ~name:"fig4-extraction-tree"
          (Staged.stage (fun () -> ignore (Qsim.Extraction.tree fig4_dyn)))
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  List.iter
    (fun name ->
      let result = Hashtbl.find results name in
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> pr "  %-34s %14.1f ns/run@." name ns
      | Some _ | None -> pr "  %-34s (no estimate)@." name)
    names

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let quick = List.mem "--quick" args in
  let set_dd_config f =
    let cfg = Option.value ~default:Dd.Pkg.default_config !dd_config in
    dd_config := Some (f cfg)
  in
  let int_opt flag v =
    match int_of_string_opt v with
    | Some n -> n
    | None ->
      Fmt.epr "%s expects an integer, got %S@." flag v;
      exit 2
  in
  let rec extract_opts acc = function
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      extract_opts acc rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      extract_opts acc rest
    | "--cache-cap" :: n :: rest ->
      let n = int_opt "--cache-cap" n in
      set_dd_config (fun cfg -> { cfg with Dd.Pkg.caps = Dd.Pkg.caps_uniform n });
      extract_opts acc rest
    | "--gc-threshold" :: n :: rest ->
      let n = int_opt "--gc-threshold" n in
      set_dd_config (fun cfg -> { cfg with Dd.Pkg.gc_threshold = Some n });
      extract_opts acc rest
    | "--jobs" :: n :: rest ->
      jobs_n := int_opt "--jobs" n;
      extract_opts acc rest
    | "--no-kernels" :: rest ->
      use_kernels := false;
      extract_opts acc rest
    | "--backend" :: name :: rest ->
      backend_name := name;
      ignore (backend_module ()) (* unknown names exit 2 before any work *);
      extract_opts acc rest
    | x :: rest -> extract_opts (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_opts [] args in
  if !json_path <> None then Obs.Metrics.set_enabled true;
  let sections = List.filter (fun a -> a <> "--full" && a <> "--quick") args in
  let sections = if sections = [] then [ "all" ] else sections in
  let run = function
    | "table1" -> table1 ~full ~quick ()
    | "fig4" -> fig4 ()
    | "ablation" -> ablation ~full ()
    | "scaling" -> scaling ~full ~quick ()
    | "kernels" -> kernels_section ~full ~quick ()
    | "cache" -> cache_section ~full ~quick ()
    | "backends" -> backends_section ~full ~quick ()
    | "lookahead" -> lookahead_section ~full ~quick ()
    | "portfolio" -> portfolio_section ~full ~quick ()
    | "micro" -> micro ()
    | "all" ->
      table1 ~full ~quick ();
      fig4 ();
      ablation ~full ();
      scaling ~full ~quick ();
      kernels_section ~full ~quick ();
      cache_section ~full ~quick ();
      backends_section ~full ~quick ();
      lookahead_section ~full ~quick ();
      portfolio_section ~full ~quick ();
      micro ()
    | other ->
      Fmt.epr
        "unknown section %S (expected \
         table1|fig4|ablation|scaling|kernels|cache|backends|lookahead|portfolio|\
         micro|all)@."
        other;
      exit 2
  in
  List.iter run sections;
  (match !json_path with
   | None -> ()
   | Some path ->
     let mode = if quick then "quick" else if full then "full" else "default" in
     (try
        write_json ~mode path;
        Fmt.epr "wrote %s@." path
      with Sys_error msg ->
        Fmt.epr "cannot write %s: %s@." path msg;
        exit 2));
  if !failures > 0 then begin
    Fmt.epr "%d equivalence check(s) FAILED@." !failures;
    exit 1
  end
