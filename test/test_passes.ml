(* The abstract-interpretation passes behind the cost-aware scheduler: the
   Clifford/stabilizer domain, the qubit-interaction graph, the
   cancellation/commutation scan (and the QA009/QA010 lint rules it
   feeds), the cost profile that folds them together, and the
   qcec-lint/v2 / qcec-analysis/v1 JSON surfaces. *)

module Circ = Circuit.Circ
module Op = Circuit.Op
module Gates = Circuit.Gates
module A = Analysis

let pi = Float.pi

let codes diags = List.map (fun d -> d.A.Diagnostic.code) diags

let has code diags = List.mem code (codes diags)

let check_has msg code diags = Alcotest.(check bool) msg true (has code diags)

let check_not msg code diags = Alcotest.(check bool) msg false (has code diags)

(* -- Clifford domain ---------------------------------------------------- *)

let test_clifford_gates () =
  List.iter
    (fun (g, expect) ->
      Alcotest.(check bool) (Gates.name g) expect (A.Clifford.is_clifford_gate g))
    [ (Gates.H, true)
    ; (Gates.S, true)
    ; (Gates.Sdg, true)
    ; (Gates.X, true)
    ; (Gates.T, false)
    ; (Gates.Tdg, false)
    ; (Gates.RZ (pi /. 2.0), true)
    ; (Gates.RZ (3.0 *. pi), true)
    ; (Gates.RZ 0.3, false)
    ; (Gates.RX pi, true)
    ; (Gates.P (pi /. 2.0), true)
    ; (Gates.P (pi /. 4.0), false)
    ]

let test_clifford_ops () =
  let clifford =
    [ Op.apply Gates.H 0
    ; Op.controlled Gates.X ~control:0 ~target:1
    ; Op.controlled Gates.Z ~control:1 ~target:0
    ; Op.Swap (0, 1)
    ; Op.Measure { qubit = 0; cbit = 0 }
    ; Op.Reset 0
    ; Op.Barrier [ 0; 1 ]
    ; Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 1)
    ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Fmt.str "%a in fragment" Op.pp op)
        true (A.Clifford.is_clifford_op op))
    clifford;
  (* a controlled non-Pauli rotation and a doubly-controlled gate are out *)
  Alcotest.(check bool) "controlled T is out" false
    (A.Clifford.is_clifford_op (Op.controlled Gates.T ~control:0 ~target:1));
  Alcotest.(check bool) "Toffoli is out" false
    (A.Clifford.is_clifford_op
       (Op.apply
          ~controls:[ { Op.cq = 0; pos = true }; { Op.cq = 1; pos = true } ]
          Gates.X 2))

let test_clifford_scan () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.controlled Gates.X ~control:0 ~target:1
      ; Op.apply Gates.T 0
      ; Op.apply Gates.S 1
      ]
  in
  let r = A.Clifford.scan c in
  Alcotest.(check int) "prefix" 2 r.A.Clifford.clifford_prefix;
  Alcotest.(check (option int)) "first non-Clifford" (Some 2)
    r.A.Clifford.first_non_clifford;
  Alcotest.(check int) "clifford ops" 3 r.A.Clifford.clifford_ops;
  Alcotest.(check int) "non-clifford ops" 1 r.A.Clifford.non_clifford_ops;
  Alcotest.(check bool) "not all clifford" false r.A.Clifford.all_clifford;
  let ghz = Circ.strip_measurements (Algorithms.Ghz.static 5) in
  Alcotest.(check bool) "GHZ is Clifford" true
    (A.Clifford.scan ghz).A.Clifford.all_clifford

(* stabilizer-simulable random circuits never leave the abstract domain:
   the pass is sound on exactly the fragment the tableau backend accepts *)
let prop_clifford_never_flags =
  QCheck.Test.make ~count:100
    ~name:"Clifford pass accepts every stabilizer-simulable circuit"
    QCheck.Gen.(0 -- 10_000 |> QCheck.make ~print:string_of_int)
    (fun seed ->
      let c =
        Algorithms.Random_circuit.clifford_dynamic ~seed ~qubits:4 ~cbits:2
          ~ops:20
      in
      let r = A.Clifford.scan c in
      r.A.Clifford.all_clifford
      && r.A.Clifford.non_clifford_ops = 0
      && Array.for_all Fun.id r.A.Clifford.per_op)

(* -- interaction graph -------------------------------------------------- *)

let test_interact_components () =
  (* two disjoint entangled pairs plus an idle qubit *)
  let c =
    Circ.make ~name:"c" ~qubits:5 ~cbits:0
      [ Op.controlled Gates.X ~control:0 ~target:1
      ; Op.controlled Gates.X ~control:2 ~target:3
      ; Op.apply Gates.H 4
      ]
  in
  let g = A.Interact.of_circ c in
  Alcotest.(check int) "three components" 3 g.A.Interact.num_components;
  Alcotest.(check int) "two entangling ops" 2 g.A.Interact.entangling_ops;
  Alcotest.(check bool) "0 and 1 coupled" true
    (g.A.Interact.components.(0) = g.A.Interact.components.(1));
  Alcotest.(check bool) "1 and 2 separate" false
    (g.A.Interact.components.(1) = g.A.Interact.components.(2))

let test_interact_cutwidth () =
  (* a CX chain: the greedy arrangement achieves cut-width 1 *)
  let n = 6 in
  let chain =
    List.init (n - 1) (fun i -> Op.controlled Gates.X ~control:i ~target:(i + 1))
  in
  let g = A.Interact.of_circ (Circ.make ~name:"chain" ~qubits:n ~cbits:0 chain) in
  Alcotest.(check int) "one component" 1 g.A.Interact.num_components;
  Alcotest.(check int) "chain cut-width" 1 g.A.Interact.cutwidth;
  Alcotest.(check int) "order is a permutation" n
    (List.length
       (List.sort_uniq compare (Array.to_list g.A.Interact.order)))

(* -- cancellation scan -------------------------------------------------- *)

let find_kind p r = List.exists p r.A.Cancel.findings

let test_cancel_pairs () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0; Op.apply Gates.H 0 ]
  in
  let r = A.Cancel.scan c in
  Alcotest.(check bool) "H;H self-inverse" true
    (find_kind
       (function
         | A.Cancel.Self_inverse_pair { first = 0; second = 1; _ } -> true
         | _ -> false)
       r);
  Alcotest.(check bool) "both halves flagged" true
    (r.A.Cancel.cancels.(0) && r.A.Cancel.cancels.(1));
  (* an intervening op on the same qubit breaks adjacency *)
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0
      [ Op.apply Gates.H 0; Op.apply Gates.X 0; Op.apply Gates.H 0 ]
  in
  let r = A.Cancel.scan c in
  Alcotest.(check bool) "H;X;H does not cancel" false
    (find_kind (function A.Cancel.Self_inverse_pair _ -> true | _ -> false) r);
  (* S;Sdg cancels but is an adjoint pair, not self-inverse *)
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0
      [ Op.apply Gates.S 0; Op.apply Gates.Sdg 0 ]
  in
  let r = A.Cancel.scan c in
  Alcotest.(check bool) "S;Sdg adjoint pair" true
    (find_kind (function A.Cancel.Adjoint_pair _ -> true | _ -> false) r);
  Alcotest.(check bool) "S;Sdg not self-inverse" false
    (find_kind (function A.Cancel.Self_inverse_pair _ -> true | _ -> false) r);
  (* CX;CX on the same wires cancels; on crossed wires it does not *)
  let cx c t = Op.controlled Gates.X ~control:c ~target:t in
  let r = A.Cancel.scan (Circ.make ~name:"c" ~qubits:2 ~cbits:0 [ cx 0 1; cx 0 1 ]) in
  Alcotest.(check bool) "CX;CX cancels" true
    (find_kind (function A.Cancel.Self_inverse_pair _ -> true | _ -> false) r);
  let r = A.Cancel.scan (Circ.make ~name:"c" ~qubits:2 ~cbits:0 [ cx 0 1; cx 1 0 ]) in
  Alcotest.(check bool) "crossed CX does not cancel" false
    (find_kind (function A.Cancel.Self_inverse_pair _ -> true | _ -> false) r)

let test_cancel_rotations () =
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0
      [ Op.apply (Gates.RZ 0.3) 0; Op.apply (Gates.RZ 0.4) 0 ]
  in
  let r = A.Cancel.scan c in
  Alcotest.(check bool) "same-axis rotations merge" true
    (find_kind
       (function
         | A.Cancel.Mergeable_rotation { first = 0; second = 1; _ } -> true
         | _ -> false)
       r);
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0
      [ Op.apply (Gates.RZ (4.0 *. pi)) 0; Op.apply (Gates.RX 0.3) 0 ]
  in
  let r = A.Cancel.scan c in
  Alcotest.(check bool) "rz(4pi) is a zero rotation" true
    (find_kind
       (function A.Cancel.Zero_rotation { op_index = 0; _ } -> true | _ -> false)
       r);
  Alcotest.(check bool) "rx(0.3) is not" false
    (find_kind
       (function A.Cancel.Zero_rotation { op_index = 1; _ } -> true | _ -> false)
       r)

let test_cancel_diagonal_runs () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.T 0
      ; Op.apply (Gates.RZ 0.5) 1
      ; Op.controlled (Gates.P 0.25) ~control:0 ~target:1
      ; Op.apply Gates.H 0
      ]
  in
  let r = A.Cancel.scan c in
  Alcotest.(check bool) "diag flags" true
    (r.A.Cancel.diagonal.(0) && r.A.Cancel.diagonal.(1) && r.A.Cancel.diagonal.(2));
  Alcotest.(check bool) "H not diagonal" false r.A.Cancel.diagonal.(3);
  Alcotest.(check bool) "run of three" true
    (find_kind
       (function
         | A.Cancel.Diagonal_run { start = 0; length = 3 } -> true | _ -> false)
       r)

(* -- QA009 / QA010 through the linter ----------------------------------- *)

let test_qa009 () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.apply Gates.H 0
      ; Op.apply Gates.X 1
      ]
  in
  let diags = A.lint c in
  check_has "adjacent H;H" "QA009" diags;
  let d = List.find (fun d -> d.A.Diagnostic.code = "QA009") diags in
  Alcotest.(check (option int)) "anchored at the second op" (Some 1)
    d.A.Diagnostic.span.A.Diagnostic.op_index;
  (* adjoint pairs cancel too but are not the QA009 pattern *)
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0
      [ Op.apply Gates.T 0; Op.apply Gates.Tdg 0 ]
  in
  check_not "T;Tdg is not QA009" "QA009" (A.lint c);
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0
      [ Op.apply Gates.H 0; Op.apply Gates.S 0; Op.apply Gates.H 0 ]
  in
  check_not "no adjacent pair" "QA009" (A.lint c)

let test_qa010 () =
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0 [ Op.apply (Gates.RZ (2.0 *. pi)) 0 ]
  in
  check_has "rz(2pi)" "QA010" (A.lint c);
  let c = Circ.make ~name:"c" ~qubits:1 ~cbits:0 [ Op.apply (Gates.RY 0.7) 0 ] in
  check_not "rz(0.7)" "QA010" (A.lint c);
  (* located: the rule catalogue knows both new codes *)
  List.iter
    (fun code ->
      match A.Rules.find code with
      | Some meta ->
        Alcotest.(check bool)
          (code ^ " is a warning")
          true
          (meta.A.Rules.severity = A.Diagnostic.Warning)
      | None -> Alcotest.failf "missing %s in the catalogue" code)
    [ "QA009"; "QA010" ]

(* -- cost profile ------------------------------------------------------- *)

let test_cost_profile () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.controlled Gates.X ~control:0 ~target:1
      ; Op.apply Gates.T 0
      ; Op.Barrier [ 0; 1 ]
      ]
  in
  let p = A.Cost.profile c in
  Alcotest.(check int) "total ops" 4 p.A.Cost.total_ops;
  Alcotest.(check int) "cumulative length" 5 (Array.length p.A.Cost.cumulative);
  Alcotest.(check (float 1e-9)) "barrier weighs nothing" 0.0 p.A.Cost.weights.(3);
  Alcotest.(check bool) "entangling costs more than local Clifford" true
    (p.A.Cost.weights.(1) > p.A.Cost.weights.(0));
  Alcotest.(check bool) "non-Clifford beats Clifford" true
    (p.A.Cost.weights.(2) > p.A.Cost.weights.(0));
  (* the curve is the normalized cumulative cost: monotone, 0 to 1 *)
  Alcotest.(check (float 1e-9)) "cumulative starts at 0" 0.0 p.A.Cost.cumulative.(0);
  Alcotest.(check (float 1e-9)) "cumulative ends at total" p.A.Cost.total
    p.A.Cost.cumulative.(4);
  let mono = ref true in
  Array.iteri
    (fun i v -> if i > 0 && v < p.A.Cost.cumulative.(i - 1) then mono := false)
    p.A.Cost.cumulative;
  Alcotest.(check bool) "cumulative is monotone" true !mono

let test_cost_recommend () =
  (* identical circuits: curves coincide, proportional suffices *)
  let ghz = Circ.strip_measurements (Algorithms.Ghz.static 5) in
  let p = A.Cost.profile ghz in
  Alcotest.(check (float 1e-9)) "self-divergence" 0.0 (A.Cost.divergence p p);
  Alcotest.(check bool) "clifford pair stays proportional" true
    (A.Cost.recommend p p = A.Cost.Proportional_order);
  (* the QPE pair's realizations skew their cost mass: lookahead *)
  let pair = Algorithms.Qpe.make ~theta:(3.0 /. 16.0) ~bits:6 in
  let a = A.Cost.profile pair.Algorithms.Pair.static_circuit in
  let b = A.Cost.profile pair.Algorithms.Pair.dynamic_circuit in
  Alcotest.(check bool) "QPE pair diverges" true (A.Cost.divergence a b > 0.05);
  Alcotest.(check bool) "QPE routes to lookahead" true
    (A.Cost.recommend a b = A.Cost.Lookahead_order);
  Alcotest.(check bool) "classifier alias agrees" true
    (A.Classify.route_application a b = A.Cost.recommend a b)

(* -- JSON surfaces ------------------------------------------------------ *)

let member name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let test_analysis_json () =
  let pair = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:5 6) in
  let j = A.Cost.to_json (A.Cost.profile pair.Algorithms.Pair.static_circuit) in
  let str = Obs.Json.to_string ~pretty:true j in
  Alcotest.(check bool) "round trips" true
    (Obs.Json.equal j (Obs.Json.of_string str));
  List.iter
    (fun f -> ignore (member f j))
    [ "num_qubits"; "total_ops"; "clifford"; "interaction"; "cancellation"; "cost" ];
  match member "total" (member "cost" j) with
  | Obs.Json.Float t -> Alcotest.(check bool) "positive total" true (t > 0.0)
  | _ -> Alcotest.fail "cost.total is not a number"

let test_lint_v2_json () =
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0
      [ Op.apply Gates.H 0; Op.apply Gates.H 0 ]
  in
  let report =
    [ A.Report.entry ~profile:(A.classify c) "c.qasm" (A.lint c)
    ; A.Report.entry "broken.qasm"
        [ A.Lint.of_parse_error ~file:"broken.qasm" ~line:1 "nope" ]
    ]
  in
  let j = A.Report.to_json report in
  (match member "schema" j with
   | Obs.Json.String s -> Alcotest.(check string) "schema" "qcec-lint/v2" s
   | _ -> Alcotest.fail "schema is not a string");
  match member "files" j with
  | Obs.Json.List [ ok; broken ] ->
    (* v1 fields survive untouched next to the new classifier block *)
    ignore (member "diagnostics" ok);
    let classifier = member "classifier" ok in
    (match member "route" classifier with
     | Obs.Json.String s -> Alcotest.(check string) "routed" "unitary" s
     | _ -> Alcotest.fail "route is not a string");
    (match member "admits" classifier with
     | Obs.Json.Obj kvs ->
       Alcotest.(check (list string)) "admits keys"
         [ "unitary"; "transformation"; "extraction" ]
         (List.map fst kvs)
     | _ -> Alcotest.fail "admits is not an object");
    (match member "classifier" broken with
     | Obs.Json.Null -> ()
     | _ -> Alcotest.fail "unparsed file must carry a null classifier")
  | _ -> Alcotest.fail "files is not a 2-list"

let suite =
  [ Alcotest.test_case "Clifford gate fragment" `Quick test_clifford_gates
  ; Alcotest.test_case "Clifford op fragment" `Quick test_clifford_ops
  ; Alcotest.test_case "Clifford prefix scan" `Quick test_clifford_scan
  ; QCheck_alcotest.to_alcotest prop_clifford_never_flags
  ; Alcotest.test_case "interaction components" `Quick test_interact_components
  ; Alcotest.test_case "interaction cut-width" `Quick test_interact_cutwidth
  ; Alcotest.test_case "cancelling pairs" `Quick test_cancel_pairs
  ; Alcotest.test_case "rotation findings" `Quick test_cancel_rotations
  ; Alcotest.test_case "diagonal runs" `Quick test_cancel_diagonal_runs
  ; Alcotest.test_case "QA009 adjacent self-inverse pair" `Quick test_qa009
  ; Alcotest.test_case "QA010 zero-angle rotation" `Quick test_qa010
  ; Alcotest.test_case "cost profile" `Quick test_cost_profile
  ; Alcotest.test_case "scheme recommendation" `Quick test_cost_recommend
  ; Alcotest.test_case "qcec-analysis/v1 JSON" `Quick test_analysis_json
  ; Alcotest.test_case "qcec-lint/v2 JSON" `Quick test_lint_v2_json
  ]
