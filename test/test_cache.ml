(* Verification-cache tests: structural circuit digests (qcheck
   properties, including permutation canonicalization agreeing with the
   verifier), pair-key sensitivity, the JSONL verdict store (round trip,
   crash recovery from a torn segment), the shared read-mostly tier, and
   cache-aware verification end to end — direct and through the batch
   engine. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module Key = Cache_store.Key
module Store = Cache_store.Store
module Shared = Cache_store.Shared
module Job = Engine.Job
module Pool = Engine.Pool
module Manifest = Engine.Manifest
module Pair = Algorithms.Pair

let random_unitary seed = Algorithms.Random_circuit.unitary ~seed ~qubits:4 ~gates:20

let random_dynamic seed =
  Algorithms.Random_circuit.dynamic ~seed ~qubits:4 ~cbits:2 ~ops:20

let random_perm ~seed n =
  let st = Random.State.make [| seed |] in
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let invert_perm p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i pi -> inv.(pi) <- i) p;
  inv

(* -- digest properties -------------------------------------------------- *)

let prop_digest_deterministic =
  QCheck.Test.make ~name:"equal circuits digest equal" ~count:100
    QCheck.(pair (int_range 0 10_000) bool)
    (fun (seed, dynamic) ->
      let c = if dynamic then random_dynamic seed else random_unitary seed in
      let c' = if dynamic then random_dynamic seed else random_unitary seed in
      Circ.digest c = Circ.digest c'
      && Circ.digest ~perm_invariant:true c = Circ.digest ~perm_invariant:true c')

let prop_digest_metadata_insensitive =
  QCheck.Test.make ~name:"names and barriers never change the digest" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_unitary seed in
      let renamed = Circ.with_name c "something-else-entirely" in
      let barriered =
        Circ.make ~name:c.Circ.name ~qubits:c.Circ.num_qubits
          ~cbits:c.Circ.num_cbits
          ((Op.Barrier [ 0; 1 ] :: c.Circ.ops) @ [ Op.Barrier [ 2 ] ])
      in
      Circ.digest c = Circ.digest renamed && Circ.digest c = Circ.digest barriered)

let prop_digest_detects_edits =
  QCheck.Test.make ~name:"a single-gate edit changes the digest" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_unitary seed in
      let appended =
        Circ.make ~name:c.Circ.name ~qubits:c.Circ.num_qubits
          ~cbits:c.Circ.num_cbits
          (c.Circ.ops @ [ Op.apply Gates.X 0 ])
      in
      let truncated =
        Circ.make ~name:c.Circ.name ~qubits:c.Circ.num_qubits
          ~cbits:c.Circ.num_cbits
          (List.filteri (fun i _ -> i > 0) c.Circ.ops)
      in
      Circ.digest c <> Circ.digest appended
      && Circ.digest c <> Circ.digest truncated)

(* a relabeled circuit canonicalizes to the same perm-invariant digest,
   and the verifier agrees the relabeling is an equivalence when told the
   inverse wire map — the digest and the checker see the same symmetry *)
let prop_digest_perm_canonical =
  QCheck.Test.make ~name:"perm-invariant digest agrees with Verify under perm"
    ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (seed, pseed) ->
      let c = random_unitary seed in
      let p = random_perm ~seed:pseed c.Circ.num_qubits in
      let c' = Circ.remap c ~perm:p in
      let digests_agree =
        Circ.digest ~perm_invariant:true c = Circ.digest ~perm_invariant:true c'
      in
      let r = Qcec.Verify.functional ~perm:(invert_perm p) c c' in
      digests_agree && r.Qcec.Verify.equivalent)

(* -- pair keys ----------------------------------------------------------- *)

let test_key_sensitivity () =
  let base =
    { Key.strategy = "proportional"
    ; transform = true
    ; perm = None
    ; seed = None
    ; tol = 1e-10
    }
  in
  let da = "aaaa" and db = "bbbb" in
  let k cfg = Key.make ~digest_a:da ~digest_b:db cfg in
  Alcotest.(check string) "stable for identical inputs" (k base) (k base);
  let distinct =
    [ ("strategy", k { base with Key.strategy = "simulation(16)" })
    ; ("transform", k { base with Key.transform = false })
    ; ("perm", k { base with Key.perm = Some [| 1; 0 |] })
    ; ("seed", k { base with Key.seed = Some 7 })
    ; ("tol", k { base with Key.tol = 1e-6 })
    ; ("digest order", Key.make ~digest_a:db ~digest_b:da base)
    ]
  in
  List.iter
    (fun (what, key) ->
      Alcotest.(check bool) (what ^ " is part of the key") true (key <> k base))
    distinct;
  (* all distinct from each other too: no accidental collisions between
     the perturbations *)
  let keys = k base :: List.map snd distinct in
  Alcotest.(check int) "pairwise distinct"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* -- the verdict store --------------------------------------------------- *)

let entry ~key ~equivalent =
  { Store.key
  ; digest_a = "da-" ^ key
  ; digest_b = "db-" ^ key
  ; strategy = "proportional"
  ; equivalent
  ; exactly_equal = equivalent
  ; transformed_qubits = 5
  ; peak_nodes = 42
  ; t_transform = 0.25
  ; t_check = 1.5
  }

let temp_store_dir () =
  let path = Filename.temp_file "qcec_cache_test" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_store_roundtrip () =
  let s = Store.in_memory () in
  Alcotest.(check (option string)) "miss on empty" None
    (Option.map (fun e -> e.Store.key) (Store.lookup s "k0"));
  Store.insert s (entry ~key:"k0" ~equivalent:true);
  Store.insert s (entry ~key:"k1" ~equivalent:false);
  Alcotest.(check int) "two entries" 2 (Store.size s);
  (match Store.lookup s "k1" with
   | Some e -> Alcotest.(check bool) "verdict round trips" false e.Store.equivalent
   | None -> Alcotest.fail "k1 not found");
  Alcotest.(check (option string)) "in-memory stores have no dir" None
    (Store.dir s);
  (* the JSONL codec round-trips every field *)
  let e = entry ~key:"codec" ~equivalent:true in
  (match Store.entry_of_json (Store.entry_to_json e) with
   | Ok e' -> Alcotest.(check bool) "entry = decode (encode entry)" true (e = e')
   | Error msg -> Alcotest.fail msg)

let test_store_persistence () =
  let dir = temp_store_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (match Store.open_dir dir with
       | Error msg -> Alcotest.fail msg
       | Ok s ->
         for i = 0 to 9 do
           Store.insert s (entry ~key:(Printf.sprintf "k%d" i) ~equivalent:(i mod 2 = 0))
         done;
         Store.close s);
      match Store.open_dir dir with
      | Error msg -> Alcotest.fail msg
      | Ok s ->
        Alcotest.(check int) "all ten replayed" 10 (Store.recovered s);
        Alcotest.(check int) "nothing dropped" 0 (Store.dropped s);
        (match Store.lookup s "k3" with
         | Some e -> Alcotest.(check bool) "odd keys not equivalent" false e.Store.equivalent
         | None -> Alcotest.fail "k3 lost across reopen");
        Store.close s)

let test_store_crash_recovery () =
  let dir = temp_store_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (match Store.open_dir dir with
       | Error msg -> Alcotest.fail msg
       | Ok s ->
         for i = 0 to 4 do
           Store.insert s (entry ~key:(Printf.sprintf "k%d" i) ~equivalent:true)
         done;
         Store.close s);
      (* tear the final record: a crash mid-append leaves a truncated last
         line in the newest segment *)
      let seg = Filename.concat dir "seg-00000.jsonl" in
      let len = (Unix.stat seg).Unix.st_size in
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (len - 10);
      Unix.close fd;
      match Store.open_dir dir with
      | Error msg -> Alcotest.fail msg
      | Ok s ->
        Alcotest.(check int) "only the torn record is lost" 4 (Store.recovered s);
        Alcotest.(check int) "one dropped line" 1 (Store.dropped s);
        Alcotest.(check bool) "intact records still resolve" true
          (Store.lookup s "k3" <> None);
        Alcotest.(check bool) "the torn record is gone" true
          (Store.lookup s "k4" = None);
        (* the store keeps working: a fresh insert lands and survives
           another reopen *)
        Store.insert s (entry ~key:"k4" ~equivalent:false);
        Alcotest.(check bool) "reinsert visible" true (Store.lookup s "k4" <> None);
        Store.close s;
        (match Store.open_dir dir with
         | Error msg -> Alcotest.fail msg
         | Ok s2 ->
           Alcotest.(check int) "recovery then insert replays clean" 5
             (Store.recovered s2);
           Store.close s2))

(* -- the shared read-mostly tier ----------------------------------------- *)

let test_shared_tier () =
  let t = Shared.create () in
  Alcotest.(check (option int)) "empty tier misses" None (Shared.find t "a");
  Shared.publish t "a" 1;
  Shared.publish t "b" 2;
  Shared.publish t "a" 3;
  Alcotest.(check (option int)) "last publish wins" (Some 3) (Shared.find t "a");
  Alcotest.(check int) "replacement does not grow the tier" 2 (Shared.size t);
  (* concurrent readers on other domains always see a consistent snapshot *)
  let readers =
    List.init 3 (fun _ ->
      Domain.spawn (fun () ->
        let ok = ref true in
        for _ = 1 to 10_000 do
          match Shared.find t "a" with
          | Some v -> ok := !ok && v >= 3
          | None -> ok := false
        done;
        !ok))
  in
  for i = 4 to 100 do
    Shared.publish t "a" i
  done;
  List.iter
    (fun d ->
      Alcotest.(check bool) "readers never saw a torn snapshot" true
        (Domain.join d))
    readers;
  Shared.clear t;
  Alcotest.(check int) "clear empties the tier" 0 (Shared.size t)

(* -- cache-aware verification -------------------------------------------- *)

let test_verify_with_cache () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let p = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:3 6) in
      let store = Store.in_memory () in
      let check () =
        Qcec.Verify.functional ~perm:p.Pair.dyn_to_static ~cache:store
          p.Pair.static_circuit p.Pair.dynamic_circuit
      in
      let cold = check () in
      Alcotest.(check bool) "cold result is computed" false cold.Qcec.Verify.cached;
      Alcotest.(check int) "cold verdict inserted" 1 (Store.size store);
      let m0 = Obs.Metrics.snapshot () in
      let warm = check () in
      let dm = Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ()) in
      Alcotest.(check bool) "warm result is served from the store" true
        warm.Qcec.Verify.cached;
      Alcotest.(check int) "no DD package is built on a hit" 0
        (Obs.Metrics.find dm "dd.pkg.created");
      Alcotest.(check int) "the hit is counted" 1
        (Obs.Metrics.find dm "cache.result.hits");
      Alcotest.(check bool) "verdicts agree" true
        (cold.Qcec.Verify.equivalent = warm.Qcec.Verify.equivalent
        && cold.Qcec.Verify.exactly_equal = warm.Qcec.Verify.exactly_equal
        && cold.Qcec.Verify.peak_nodes = warm.Qcec.Verify.peak_nodes);
      (* a different seed is a different key: no false sharing *)
      let miss =
        Qcec.Verify.functional ~perm:p.Pair.dyn_to_static ~cache:store ~seed:99
          p.Pair.static_circuit p.Pair.dynamic_circuit
      in
      Alcotest.(check bool) "seed is part of the key" false miss.Qcec.Verify.cached)

let test_engine_with_cache () =
  let pair = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:5 5) in
  let spec ?(cache = true) index =
    { (Job.circuits ~perm:pair.Pair.dyn_to_static ~index pair.Pair.static_circuit
         pair.Pair.dynamic_circuit)
      with
      Job.cache
    }
  in
  let store = Store.in_memory () in
  let cfg = { Pool.default_config with Pool.workers = 1; cache = Some store } in
  let batch = Pool.run cfg [ spec 0; spec 1; spec ~cache:false 2 ] in
  let classes = List.map (fun (r : Job.result) -> Job.exit_class r.Job.outcome)
      batch.Pool.results
  in
  Alcotest.(check (list string))
    "duplicate hits the store; cache=false opts out"
    [ "equivalent"; "cached"; "equivalent" ] classes;
  List.iter
    (fun (r : Job.result) ->
      Alcotest.(check bool) "cached verdicts still count as success" true
        (Job.succeeded r))
    batch.Pool.results

(* -- manifest regressions: skip and the zero-job batch ------------------- *)

let test_manifest_skip () =
  let doc =
    Obs.Json.of_string
      {|{ "schema": "qcec-manifest/v1",
          "seed": 20,
          "jobs": [
            { "a": "a.qasm", "b": "b.qasm", "label": "first" },
            { "a": "c.qasm", "b": "d.qasm", "label": "skipped", "skip": true },
            { "a": "e.qasm", "b": "f.qasm", "label": "third" } ] }|}
  in
  match Manifest.of_json doc with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "skipped jobs are dropped" 2 (List.length m.Manifest.jobs);
    let j0 = List.nth m.Manifest.jobs 0 and j1 = List.nth m.Manifest.jobs 1 in
    Alcotest.(check (list string)) "survivors in order" [ "first"; "third" ]
      [ j0.Job.label; j1.Job.label ];
    (* manifest positions survive the drop, so derived seeds are stable
       whether or not a sibling is skipped *)
    Alcotest.(check (list int)) "indices and seeds keep manifest positions"
      [ 0; 2; 20; 22 ]
      [ j0.Job.index; j1.Job.index;
        Option.get j0.Job.seed; Option.get j1.Job.seed ]

let test_zero_job_batch () =
  (* every job skipped compiles to an empty manifest ... *)
  let doc =
    Obs.Json.of_string
      {|{ "schema": "qcec-manifest/v1",
          "jobs": [ { "a": "a.qasm", "b": "b.qasm", "skip": true } ] }|}
  in
  (match Manifest.of_json doc with
   | Error e -> Alcotest.fail e
   | Ok m -> Alcotest.(check int) "all-skipped manifest is empty" 0
               (List.length m.Manifest.jobs));
  (* ... and the pool and aggregator take an empty batch in stride *)
  let batch = Pool.run { Pool.default_config with Pool.workers = 4 } [] in
  Alcotest.(check int) "no results" 0 (List.length batch.Pool.results);
  match Engine.Results.aggregate batch with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool) "summary still counts zero jobs" true
      (List.assoc "jobs" fields = Obs.Json.Int 0)
  | _ -> Alcotest.fail "aggregate must produce an object"

let suite =
  [ QCheck_alcotest.to_alcotest prop_digest_deterministic
  ; QCheck_alcotest.to_alcotest prop_digest_metadata_insensitive
  ; QCheck_alcotest.to_alcotest prop_digest_detects_edits
  ; QCheck_alcotest.to_alcotest prop_digest_perm_canonical
  ; Alcotest.test_case "pair keys cover every config input" `Quick
      test_key_sensitivity
  ; Alcotest.test_case "store round trip (in memory + codec)" `Quick
      test_store_roundtrip
  ; Alcotest.test_case "store persists across reopen" `Quick test_store_persistence
  ; Alcotest.test_case "store recovers from a torn segment" `Quick
      test_store_crash_recovery
  ; Alcotest.test_case "shared tier: lock-free reads, last write wins" `Quick
      test_shared_tier
  ; Alcotest.test_case "Verify serves and fills the store" `Quick
      test_verify_with_cache
  ; Alcotest.test_case "engine short-circuits duplicate pairs" `Quick
      test_engine_with_cache
  ; Alcotest.test_case "manifest skip preserves indices and seeds" `Quick
      test_manifest_skip
  ; Alcotest.test_case "zero-job batches aggregate cleanly" `Quick
      test_zero_job_batch
  ]
