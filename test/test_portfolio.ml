(* Portfolio racing tests: the three stimuli classes (determinism,
   shape, tableau ground truth), first-definitive-verdict-wins racing
   with per-candidate seeds derived via [Verify.candidate_seed], loser
   cancellation at safepoints without leaked DD roots, the
   phase-blindness guard (a simulative all-shots-pass must never claim
   the race), and the engine / manifest wiring of the portfolio knob. *)

module Stimuli = Qsim.Stimuli
module Job = Engine.Job
module Pool = Engine.Pool
module Pair = Algorithms.Pair

let bv_pair seed = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed 4)

(* -- stimuli classes ---------------------------------------------------- *)

let draws ?seed kind ~num_qubits ~shots =
  let st = Stimuli.rng ?seed ~num_qubits ~shots () in
  List.init shots (fun _ -> Stimuli.draw st kind ~num_qubits)

let all_kinds = [ Stimuli.Classical; Stimuli.Local_quantum; Stimuli.Global_quantum ]

let test_stimuli_deterministic () =
  List.iter
    (fun kind ->
      let a = draws ~seed:11 kind ~num_qubits:5 ~shots:6 in
      let b = draws ~seed:11 kind ~num_qubits:5 ~shots:6 in
      Alcotest.(check bool)
        (Stimuli.kind_name kind ^ ": same seed, same stream") true (a = b);
      let c = draws ~seed:12 kind ~num_qubits:5 ~shots:6 in
      Alcotest.(check bool)
        (Stimuli.kind_name kind ^ ": different seed, different stream") true
        (a <> c))
    all_kinds

let test_stimuli_shapes () =
  let st = Stimuli.rng ~seed:3 ~num_qubits:4 ~shots:9 () in
  (match Stimuli.draw st Stimuli.Classical ~num_qubits:4 with
   | Stimuli.Basis_state bits ->
     Alcotest.(check int) "one bit per qubit" 4 (Array.length bits)
   | _ -> Alcotest.fail "classical stimuli draw basis states");
  (match Stimuli.draw st Stimuli.Local_quantum ~num_qubits:4 with
   | Stimuli.Product_state amps ->
     Alcotest.(check int) "one amplitude pair per qubit" 4 (Array.length amps);
     Array.iter
       (fun (a, b) ->
         Alcotest.(check (float 1e-9)) "each qubit state is normalized" 1.0
           (Cxnum.Cx.abs2 a +. Cxnum.Cx.abs2 b))
       amps
   | _ -> Alcotest.fail "local stimuli draw product states");
  match Stimuli.draw st Stimuli.Global_quantum ~num_qubits:4 with
  | Stimuli.Stabilizer_state { bits; prep } ->
    Alcotest.(check int) "starts from a full basis state" 4 (Array.length bits);
    Alcotest.(check int) "preparation depth is 2n" (Stimuli.prep_depth 4)
      (List.length prep);
    List.iter
      (fun (op : Circuit.Op.t) ->
        match op with
        | Circuit.Op.Apply { gate; _ } ->
          Alcotest.(check bool) "preparation uses only Clifford gates" true
            (Qsim.Stabilizer.is_clifford_gate gate)
        | _ -> Alcotest.fail "preparation contains a non-gate operation")
      prep
  | _ -> Alcotest.fail "global stimuli draw stabilizer preparations"

let test_stimuli_tableau () =
  let st = Stimuli.rng ~seed:5 ~num_qubits:5 ~shots:3 () in
  let classical = Stimuli.draw st Stimuli.Classical ~num_qubits:5 in
  let local = Stimuli.draw st Stimuli.Local_quantum ~num_qubits:5 in
  let global = Stimuli.draw st Stimuli.Global_quantum ~num_qubits:5 in
  Alcotest.(check bool) "classical stimuli replay on the tableau" true
    (Stimuli.tableau ~num_qubits:5 classical <> None);
  Alcotest.(check bool) "global stimuli replay on the tableau" true
    (Stimuli.tableau ~num_qubits:5 global <> None);
  Alcotest.(check bool) "local stimuli have no tableau form" true
    (Stimuli.tableau ~num_qubits:5 local = None)

(* the strategy layer materializes the same streams: a seeded simulative
   check is bit-for-bit reproducible *)
let test_stimuli_check_reproducible () =
  let pair = bv_pair 0 in
  List.iter
    (fun kind ->
      let run () =
        Qcec.Verify.functional
          ~strategy:(Qcec.Strategy.Random_stimuli { kind; shots = 4 })
          ~seed:17 ~perm:pair.Pair.dyn_to_static pair.Pair.static_circuit
          pair.Pair.dynamic_circuit
      in
      let a = run () and b = run () in
      Alcotest.(check bool) "seeded simulative runs agree" true
        (a.Qcec.Verify.equivalent = b.Qcec.Verify.equivalent
        && a.Qcec.Verify.peak_nodes = b.Qcec.Verify.peak_nodes))
    [ Qcec.Strategy.Basis; Qcec.Strategy.Product; Qcec.Strategy.Entangled ]

(* -- the race ----------------------------------------------------------- *)

let race_candidates =
  [ (Qcec.Strategy.Proportional, "classic")
  ; (Qcec.Strategy.Random_stimuli { kind = Qcec.Strategy.Entangled; shots = 4 }, "packed")
  ; (Qcec.Strategy.Lookahead, "classic")
  ]

let test_race_verdict_and_seeds () =
  let pair = bv_pair 0 in
  let r =
    Qcec.Verify.portfolio ~candidates:race_candidates ~seed:40
      ~perm:pair.Pair.dyn_to_static pair.Pair.static_circuit
      pair.Pair.dynamic_circuit
  in
  Alcotest.(check bool) "the race verdict is correct" true
    r.Qcec.Verify.winner.Qcec.Verify.equivalent;
  Alcotest.(check bool)
    "an equivalent pair with exact candidates settles definitively" true
    r.Qcec.Verify.winner_definitive;
  Alcotest.(check int) "one report per candidate" (List.length race_candidates)
    (List.length r.Qcec.Verify.candidates);
  List.iteri
    (fun i (c : Qcec.Verify.candidate_report) ->
      Alcotest.(check (option int)) "candidate seed uses the derivation rule"
        (Some (Qcec.Verify.candidate_seed ~seed:40 ~candidate:i))
        c.Qcec.Verify.c_seed)
    r.Qcec.Verify.candidates;
  (* the mix must never collide with the manifest's sibling-job rule:
     job j's candidate 1 and job j+1's candidate 0 get distinct keys *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "candidate streams are disjoint from sibling jobs"
        false
        (Qcec.Verify.candidate_seed ~seed:s ~candidate:1
        = Qcec.Verify.candidate_seed ~seed:(s + 1) ~candidate:0))
    [ 0; 1; 40; 1234 ];
  let w = List.nth r.Qcec.Verify.candidates r.Qcec.Verify.winner_index in
  (match w.Qcec.Verify.c_outcome with
   | `Won -> ()
   | _ -> Alcotest.fail "the winner's report must be `Won");
  Alcotest.(check bool) "winner strategy matches its report" true
    (r.Qcec.Verify.winner_strategy = w.Qcec.Verify.c_strategy);
  (* every candidate, run solo, agrees with the race verdict *)
  List.iter
    (fun (strategy, _) ->
      let solo =
        Qcec.Verify.functional ~strategy ~seed:40 ~perm:pair.Pair.dyn_to_static
          pair.Pair.static_circuit pair.Pair.dynamic_circuit
      in
      Alcotest.(check bool)
        ("solo " ^ Qcec.Strategy.name strategy ^ " agrees with the race") true
        (solo.Qcec.Verify.equivalent
        = r.Qcec.Verify.winner.Qcec.Verify.equivalent))
    race_candidates

let test_race_rejects_bad_input () =
  let pair = bv_pair 1 in
  (try
     ignore
       (Qcec.Verify.portfolio ~candidates:[] pair.Pair.static_circuit
          pair.Pair.dynamic_circuit);
     Alcotest.fail "empty candidate list must be rejected"
   with Invalid_argument _ -> ());
  (* a race where every candidate fails re-raises the first failure *)
  try
    ignore
      (Qcec.Verify.portfolio
         ~candidates:[ (Qcec.Strategy.Proportional, "no-such-backend") ]
         pair.Pair.static_circuit pair.Pair.dynamic_circuit);
    Alcotest.fail "unknown backend must propagate out of the race"
  with Invalid_argument _ -> ()

(* Slow loser vs. fast winner: the sequential candidate sleeps at each
   of its (many) safepoints, guaranteeing the proportional candidate —
   exact, hence allowed to claim the race — publishes first; the loser
   must then unwind at its next safepoint.  (A simulative candidate could
   not play the fast role here: its all-shots-pass on an equivalent pair
   is probabilistic and never claims the race.) *)
let test_loser_cancellation () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Span.reset ())
    (fun () ->
      let c = (Algorithms.Qft.make 5).Pair.static_circuit in
      let before = Obs.Metrics.find (Obs.Metrics.snapshot ()) "portfolio.cancelled" in
      let slow = Qcec.Strategy.name Qcec.Strategy.Sequential in
      let r =
        Qcec.Verify.portfolio
          ~candidates:
            [ (Qcec.Strategy.Sequential, "classic")
            ; (Qcec.Strategy.Proportional, "classic")
            ]
          ~seed:1
          ~safepoint:(fun ~candidate ~live_nodes:_ ->
            if candidate = slow then Unix.sleepf 0.005)
          c c
      in
      Alcotest.(check bool) "the fast candidate wins" true
        (r.Qcec.Verify.winner_index = 1
        && r.Qcec.Verify.winner.Qcec.Verify.equivalent
        && r.Qcec.Verify.winner_definitive);
      Alcotest.(check int) "the slow candidate is cancelled" 1
        r.Qcec.Verify.races_cancelled;
      (match
         (List.nth r.Qcec.Verify.candidates 0).Qcec.Verify.c_outcome
       with
       | `Cancelled -> ()
       | o ->
         Alcotest.failf "expected `Cancelled, got %a"
           Qcec.Verify.pp_candidate_outcome o);
      let after = Obs.Metrics.find (Obs.Metrics.snapshot ()) "portfolio.cancelled" in
      Alcotest.(check int) "portfolio.cancelled counts the loser" 1
        (after - before))

(* The soundness trap the race must not fall into: classical basis
   stimuli are deterministically blind to phase-only discrepancies
   (state fidelity is |<a|b>|^2 — S|b> and |b> have fidelity 1 for every
   basis state b), so a lone S gate vs the identity passes every basis
   shot.  The cheap simulative candidate finishes first, but its
   all-shots-pass must NOT claim the race: the exact decider, slowed at
   each safepoint to make the ordering deterministic, must still refute
   the pair. *)
let s_vs_identity () =
  ( Circuit.Circ.make ~name:"s" ~qubits:1 ~cbits:0
      [ Circuit.Op.apply Circuit.Gates.S 0 ]
  , Circuit.Circ.make ~name:"id" ~qubits:1 ~cbits:0 [] )

let test_simulative_pass_cannot_win () =
  let s, id = s_vs_identity () in
  let slow = Qcec.Strategy.name Qcec.Strategy.Proportional in
  let r =
    Qcec.Verify.portfolio
      ~candidates:
        [ ( Qcec.Strategy.Random_stimuli
              { kind = Qcec.Strategy.Basis; shots = 8 }
          , "classic" )
        ; (Qcec.Strategy.Proportional, "classic")
        ]
      ~seed:7
      ~safepoint:(fun ~candidate ~live_nodes:_ ->
        if candidate = slow then Unix.sleepf 0.005)
      s id
  in
  Alcotest.(check bool) "the race refutes the phase-only pair" false
    r.Qcec.Verify.winner.Qcec.Verify.equivalent;
  Alcotest.(check bool) "the refutation is definitive" true
    r.Qcec.Verify.winner_definitive;
  Alcotest.(check int) "the exact decider wins" 1 r.Qcec.Verify.winner_index;
  match (List.nth r.Qcec.Verify.candidates 0).Qcec.Verify.c_outcome with
  | `Finished -> ()
  | o ->
    Alcotest.failf "the blind simulative candidate must finish (lost), got %a"
      Qcec.Verify.pp_candidate_outcome o

(* With only basis-stimuli candidates in the field, the same pair can
   only produce the flagged fallback: all shots agree, nobody claims the
   race, and the result is marked probabilistic instead of posing as a
   definitive 'equivalent'. *)
let test_all_simulative_race_is_probabilistic () =
  let s, id = s_vs_identity () in
  let r =
    Qcec.Verify.portfolio
      ~candidates:
        [ ( Qcec.Strategy.Random_stimuli
              { kind = Qcec.Strategy.Basis; shots = 4 }
          , "classic" )
        ; ( Qcec.Strategy.Random_stimuli
              { kind = Qcec.Strategy.Basis; shots = 8 }
          , "packed" )
        ]
      ~seed:7 s id
  in
  Alcotest.(check bool) "all basis shots pass on the phase-only pair" true
    r.Qcec.Verify.winner.Qcec.Verify.equivalent;
  Alcotest.(check bool) "...but the verdict is flagged as probabilistic" false
    r.Qcec.Verify.winner_definitive;
  match
    (List.nth r.Qcec.Verify.candidates r.Qcec.Verify.winner_index)
      .Qcec.Verify.c_outcome
  with
  | `Won -> ()
  | o ->
    Alcotest.failf "the fallback winner's report must be `Won, got %a"
      Qcec.Verify.pp_candidate_outcome o

exception Stop

(* cancellation unwinds through the strategy code without leaving rooted
   DD edges behind: after a mid-run abort, compaction reclaims the
   package down to its cached identity chain (which [compact] keeps by
   design) and no registered roots remain *)
let test_cancellation_leaks_no_roots () =
  let c = (Algorithms.Qft.make 5).Pair.static_circuit in
  let baseline =
    let p = Dd.Pkg.create () in
    ignore (Dd.Pkg.ident p c.Circuit.Circ.num_qubits);
    Dd.Pkg.compact p;
    Dd.Pkg.live_nodes p
  in
  let p = Dd.Pkg.create () in
  let count = ref 0 in
  Dd.Pkg.set_safepoint_hook
    (Some
       (fun _ ->
         incr count;
         if !count = 5 then raise Stop));
  Fun.protect
    ~finally:(fun () -> Dd.Pkg.set_safepoint_hook None)
    (fun () ->
      match Qcec.Strategy.check p Qcec.Strategy.Sequential c c with
      | _ -> Alcotest.fail "expected the safepoint hook to cancel the check"
      | exception Stop -> ());
  Alcotest.(check int) "no roots remain registered after cancellation" 0
    (Dd.Pkg.live_roots p);
  Dd.Pkg.compact p;
  Alcotest.(check bool) "compaction reclaims everything but the identity chain"
    true
    (Dd.Pkg.live_nodes p <= baseline)

(* -- engine wiring ------------------------------------------------------ *)

let test_pool_portfolio_job () =
  let pair = bv_pair 0 in
  let spec =
    Job.circuits ~perm:pair.Pair.dyn_to_static ~portfolio:3 ~seed:9 ~index:0
      pair.Pair.static_circuit pair.Pair.dynamic_circuit
  in
  let batch = Pool.run { Pool.default_config with Pool.workers = 2 } [ spec ] in
  match (List.hd batch.Pool.results).Job.outcome with
  | Job.Verdict v ->
    Alcotest.(check bool) "portfolio job verifies" true v.Job.equivalent;
    Alcotest.(check bool) "verdict strategy records the race winner" true
      (String.length v.Job.strategy > 10
      && String.sub v.Job.strategy 0 10 = "portfolio(")
  | Job.Failed { message; _ } -> Alcotest.failf "portfolio job failed: %s" message

(* seeds derive via [Verify.candidate_seed], and portfolio verdict
   flags are independent of worker count and backend (the winning
   candidate may differ run to run; the verdict may not).  An
   all-simulative race on an equivalent pair settles on the flagged
   probabilistic fallback — no candidate may claim it. *)
let prop_portfolio_determinism =
  QCheck.Test.make ~count:4
    ~name:"portfolio: derived seeds and worker-count-independent verdicts"
    QCheck.(
      make
        Gen.(pair (int_bound 999) (oneofl [ "classic"; "packed" ])))
    (fun (seed, backend) ->
      let pair = bv_pair (seed mod 5) in
      let candidates =
        List.map
          (fun s -> (s, backend))
          [ Qcec.Strategy.Random_stimuli { kind = Qcec.Strategy.Basis; shots = 3 }
          ; Qcec.Strategy.Random_stimuli
              { kind = Qcec.Strategy.Entangled; shots = 3 }
          ]
      in
      let r =
        Qcec.Verify.portfolio ~candidates ~seed ~perm:pair.Pair.dyn_to_static
          pair.Pair.static_circuit pair.Pair.dynamic_circuit
      in
      List.iteri
        (fun i (c : Qcec.Verify.candidate_report) ->
          if c.Qcec.Verify.c_seed
             <> Some (Qcec.Verify.candidate_seed ~seed ~candidate:i)
          then
            QCheck.Test.fail_reportf "candidate %d ran under the wrong seed" i)
        r.Qcec.Verify.candidates;
      if r.Qcec.Verify.winner_definitive then
        QCheck.Test.fail_reportf
          "an all-simulative pass must be flagged probabilistic";
      let specs =
        List.init 3 (fun index ->
          let p = bv_pair index in
          Job.circuits ~perm:p.Pair.dyn_to_static ~backend ~portfolio:2
            ~seed:(seed + index) ~index p.Pair.static_circuit
            p.Pair.dynamic_circuit)
      in
      let flags workers =
        List.map
          (fun (res : Job.result) ->
            match res.Job.outcome with
            | Job.Verdict v -> Some (v.Job.equivalent, v.Job.exactly_equal)
            | Job.Failed _ -> None)
          (Pool.run { Pool.default_config with Pool.workers } specs).Pool.results
      in
      let w1 = flags 1 and w2 = flags 2 and w4 = flags 4 in
      if not (List.for_all Option.is_some w1) then
        QCheck.Test.fail_reportf "a portfolio job failed";
      w1 = w2 && w2 = w4 && r.Qcec.Verify.winner.Qcec.Verify.equivalent)

let test_manifest_portfolio () =
  let doc =
    Obs.Json.of_string
      {|{ "schema": "qcec-manifest/v1",
          "defaults": { "portfolio": 4 },
          "jobs": [
            { "a": "a.qasm", "b": "b.qasm" },
            { "a": "c.qasm", "b": "d.qasm", "portfolio": 0 },
            { "a": "e.qasm", "b": "f.qasm", "portfolio": 2 } ] }|}
  in
  (match Engine.Manifest.of_json doc with
   | Error e -> Alcotest.fail e
   | Ok m ->
     let p i = (List.nth m.Engine.Manifest.jobs i).Job.portfolio in
     Alcotest.(check (option int)) "defaults apply" (Some 4) (p 0);
     Alcotest.(check (option int)) "per-job 0 disables the default" None (p 1);
     Alcotest.(check (option int)) "per-job width overrides" (Some 2) (p 2));
  match
    Engine.Manifest.of_json
      (Obs.Json.of_string
         {|{ "schema": "qcec-manifest/v1",
             "jobs": [ { "a": "a.qasm", "b": "b.qasm", "portfolio": 1 } ] }|})
  with
  | Ok _ -> Alcotest.fail "portfolio width 1 must be rejected"
  | Error _ -> ()

(* the analysis layer composes the field: the cost model's solo pick
   always leads; on dynamic pairs the exact alternation orders lead and
   the simulative candidates trail (they race the transformed pair) *)
let test_compose_portfolio () =
  let pair = bv_pair 0 in
  let pa = Analysis.Cost.profile pair.Pair.static_circuit in
  let pb = Analysis.Cost.profile pair.Pair.dynamic_circuit in
  let lead = Analysis.Cost.recommend pa pb in
  let field =
    Analysis.Classify.compose_portfolio ~width:5 Analysis.Classify.Unitary pa pb
  in
  Alcotest.(check int) "width bounds the field" 5 (List.length field);
  (match (List.hd field, lead) with
   | Analysis.Cost.Proportional_candidate, Analysis.Cost.Proportional_order
   | Analysis.Cost.Lookahead_candidate, Analysis.Cost.Lookahead_order -> ()
   | _ -> Alcotest.fail "the cost model's solo pick must lead the field");
  let dyn =
    Analysis.Classify.compose_portfolio ~width:5 Analysis.Classify.Dynamic pa pb
  in
  let is_exact = function
    | Analysis.Cost.Proportional_candidate | Analysis.Cost.Lookahead_candidate ->
      true
    | _ -> false
  in
  (match dyn with
   | a :: b :: rest ->
     Alcotest.(check bool) "dynamic pairs: both exact orders lead the field"
       true
       (is_exact a && is_exact b);
     Alcotest.(check bool) "dynamic pairs: simulative candidates trail" true
       (rest <> [] && List.for_all (fun c -> not (is_exact c)) rest)
   | _ -> Alcotest.fail "dynamic field too narrow");
  Alcotest.(check int) "dynamic field still fills the width" 5 (List.length dyn)

let suite =
  [ Alcotest.test_case "stimuli streams are seeded and deterministic" `Quick
      test_stimuli_deterministic
  ; Alcotest.test_case "stimuli classes have the right shape" `Quick
      test_stimuli_shapes
  ; Alcotest.test_case "stabilizer stimuli replay on the tableau" `Quick
      test_stimuli_tableau
  ; Alcotest.test_case "seeded simulative checks reproduce" `Quick
      test_stimuli_check_reproducible
  ; Alcotest.test_case "race verdict, reports and derived seeds" `Quick
      test_race_verdict_and_seeds
  ; Alcotest.test_case "race input validation and error propagation" `Quick
      test_race_rejects_bad_input
  ; Alcotest.test_case "losers cancel at safepoints" `Quick
      test_loser_cancellation
  ; Alcotest.test_case "a simulative all-shots-pass cannot claim the race"
      `Quick test_simulative_pass_cannot_win
  ; Alcotest.test_case "all-simulative races are flagged probabilistic" `Quick
      test_all_simulative_race_is_probabilistic
  ; Alcotest.test_case "cancellation leaks no rooted DD edges" `Quick
      test_cancellation_leaks_no_roots
  ; Alcotest.test_case "pool runs portfolio jobs" `Quick test_pool_portfolio_job
  ; QCheck_alcotest.to_alcotest prop_portfolio_determinism
  ; Alcotest.test_case "manifest portfolio knob" `Quick test_manifest_portfolio
  ; Alcotest.test_case "analysis composes the candidate field" `Quick
      test_compose_portfolio
  ]
