(* Verification-service tests: the factored JSON module's control-character
   escaping, HTTP/1.1 request parsing (content-length, chunked, oversized and
   malformed bodies), SSE framing round-trips, token-bucket accounting, and
   end-to-end daemon behaviour over a real loopback socket — submit/poll/
   stream, verdict parity with a direct engine run, warm cache hits with zero
   new DD packages, admission-queue 429s, cancellation and graceful drain. *)

module Json = Qcec_json
module Job = Engine.Job
module Pool = Engine.Pool
module Http = Serve.Http
module Sse = Serve.Sse
module Server = Serve.Server

(* -- shared JSON module: control-character escaping ------------------- *)

let test_json_control_chars () =
  for c = 0 to 31 do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    let encoded = Json.to_string (Json.String s) in
    String.iter
      (fun ch -> Alcotest.(check bool) "no raw control byte in output" false (Char.code ch < 32))
      encoded;
    Alcotest.(check bool) "control char round-trips" true
      (Json.equal (Json.String s) (Json.of_string encoded))
  done;
  Alcotest.(check string) "named escapes" "\"\\u0001\\n\\t\\\\\""
    (Json.to_string (Json.String "\x01\n\t\\"))

let test_json_shared_with_obs () =
  (* lib/obs re-exports the factored module: the types are one and the
     same, so values cross layer boundaries without conversion *)
  let v = Json.Obj [ ("x", Json.Int 1) ] in
  Alcotest.(check string) "Obs.Json is Qcec_json" (Obs.Json.to_string v) (Json.to_string v)

(* -- HTTP request parsing --------------------------------------------- *)

let feed raw =
  let r, w = Unix.pipe () in
  let n = Unix.write_substring w raw 0 (String.length raw) in
  assert (n = String.length raw);
  Unix.close w;
  let reader = Http.reader r in
  Fun.protect ~finally:(fun () -> Unix.close r) (fun () -> Http.read_request ~max_body:4096 reader)

let test_http_simple () =
  match feed "GET /v1/jobs?after=3&tag=a%20b HTTP/1.1\r\nHost: x\r\nX-Th: 7\r\n\r\n" with
  | None -> Alcotest.fail "expected a request"
  | Some req ->
    Alcotest.(check string) "method" "GET" req.Http.meth;
    Alcotest.(check string) "path" "/v1/jobs" req.Http.path;
    Alcotest.(check (option string)) "query decodes" (Some "a b")
      (List.assoc_opt "tag" req.Http.query);
    Alcotest.(check (option string)) "headers lowercase" (Some "7") (Http.header req "x-th");
    Alcotest.(check string) "no body" "" req.Http.body

let test_http_body () =
  match feed "POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world" with
  | None -> Alcotest.fail "expected a request"
  | Some req -> Alcotest.(check string) "body" "hello world" req.Http.body

let test_http_chunked () =
  let raw =
    "POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    ^ "5;ext=1\r\nhello\r\n6\r\n world\r\n0\r\nTrailer: x\r\n\r\n"
  in
  match feed raw with
  | None -> Alcotest.fail "expected a request"
  | Some req -> Alcotest.(check string) "chunked body decodes" "hello world" req.Http.body

let test_http_oversized () =
  let raw =
    Printf.sprintf "POST /v1/jobs HTTP/1.1\r\nContent-Length: 8192\r\n\r\n%s"
      (String.make 8192 'x')
  in
  Alcotest.check_raises "oversized body" (Http.Payload_too_large 4096) (fun () ->
    ignore (feed raw))

let test_http_malformed () =
  let is_bad raw =
    match feed raw with
    | exception Http.Bad_request _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage request line" true (is_bad "NOT-HTTP\r\n\r\n");
  Alcotest.(check bool) "bad version" true (is_bad "GET / SPDY/9\r\n\r\n");
  Alcotest.(check bool) "bad content-length" true
    (is_bad "GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n");
  Alcotest.(check bool) "bad chunk size" true
    (is_bad "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n");
  Alcotest.(check bool) "clean EOF is not an error" true (feed "" = None)

(* -- SSE framing ------------------------------------------------------- *)

let test_sse_roundtrip () =
  let events =
    [ { Sse.id = Some 1; event = Some "queued"; data = "{\"a\":1}" }
    ; { Sse.id = Some 2; event = Some "progress"; data = "line1\nline2" }
    ; { Sse.id = None; event = None; data = "bare" }
    ]
  in
  let stream =
    String.concat "" (List.map Sse.encode events) ^ Sse.comment "keep-alive"
  in
  let decoded = Sse.decode stream in
  Alcotest.(check int) "all frames decode" (List.length events) (List.length decoded);
  List.iter2
    (fun (e : Sse.event) (d : Sse.event) ->
      Alcotest.(check (option int)) "id" e.Sse.id d.Sse.id;
      Alcotest.(check (option string)) "event" e.Sse.event d.Sse.event;
      Alcotest.(check string) "data" e.Sse.data d.Sse.data)
    events decoded

(* -- token bucket ------------------------------------------------------ *)

let test_limiter () =
  let l = Serve.Limiter.create ~rate:1.0 ~burst:2 in
  let ok r = match r with Ok () -> true | Error _ -> false in
  Alcotest.(check bool) "burst 1" true (ok (Serve.Limiter.check l ~key:"a" ~now:0.0));
  Alcotest.(check bool) "burst 2" true (ok (Serve.Limiter.check l ~key:"a" ~now:0.0));
  (match Serve.Limiter.check l ~key:"a" ~now:0.0 with
   | Ok () -> Alcotest.fail "third immediate submission must be limited"
   | Error wait -> Alcotest.(check bool) "retry-after is sane" true (wait > 0.0 && wait <= 1.0));
  Alcotest.(check bool) "other clients unaffected" true
    (ok (Serve.Limiter.check l ~key:"b" ~now:0.0));
  Alcotest.(check bool) "token refills with time" true
    (ok (Serve.Limiter.check l ~key:"a" ~now:1.5));
  let off = Serve.Limiter.create ~rate:0.0 ~burst:1 in
  Alcotest.(check bool) "rate 0 disables" true
    (List.for_all (fun _ -> ok (Serve.Limiter.check off ~key:"a" ~now:0.0)) [ 1; 2; 3; 4 ])

(* -- loopback HTTP client --------------------------------------------- *)

type reply =
  { status : int
  ; rheaders : (string * string) list
  ; rbody : string
  }

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents buf

let parse_reply raw =
  match String.index_opt raw '\r' with
  | None -> Alcotest.fail ("unparseable response: " ^ raw)
  | Some _ ->
    let head, body =
      let marker = "\r\n\r\n" in
      let rec find i =
        if i + 4 > String.length raw then Alcotest.fail "no header terminator"
        else if String.sub raw i 4 = marker then i
        else find (i + 1)
      in
      let i = find 0 in
      (String.sub raw 0 i, String.sub raw (i + 4) (String.length raw - i - 4))
    in
    let lines = String.split_on_char '\n' head in
    let status_line = List.hd lines in
    let status =
      match String.split_on_char ' ' status_line with
      | _ :: code :: _ -> int_of_string code
      | _ -> Alcotest.fail ("bad status line: " ^ status_line)
    in
    let rheaders =
      List.filter_map
        (fun l ->
          match String.index_opt l ':' with
          | None -> None
          | Some i ->
            Some
              ( String.lowercase_ascii (String.sub l 0 i)
              , String.trim (String.sub l (i + 1) (String.length l - i - 1)) ))
        (List.tl lines)
    in
    { status; rheaders; rbody = body }

let request ~port ~meth ~path ?(headers = []) ?body () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Buffer.create 512 in
      Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\n" meth path);
      List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
      (match body with
       | Some body ->
         Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length body));
         Buffer.add_string b body
       | None -> Buffer.add_string b "\r\n");
      Http.write_all fd (Buffer.contents b);
      parse_reply (read_all fd))

let get ~port path = request ~port ~meth:"GET" ~path ()
let post ~port path body = request ~port ~meth:"POST" ~path ~body ()

let json_of reply =
  match Json.of_string_opt reply.rbody with
  | Some j -> j
  | None -> Alcotest.fail ("response is not JSON: " ^ reply.rbody)

let str_member name j =
  match Json.member name j with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "missing string field %S in %s" name (Json.to_string j))

let error_code reply =
  match Json.member "error" (json_of reply) with
  | Some err -> str_member "code" err
  | None -> Alcotest.fail ("expected an error document: " ^ reply.rbody)

let job_id reply = str_member "id" (json_of reply)

let rec poll_done ~port id deadline =
  if Unix.gettimeofday () > deadline then Alcotest.fail ("job did not finish: " ^ id);
  let reply = get ~port (Printf.sprintf "/v1/jobs/%s" id) in
  let j = json_of reply in
  if str_member "state" j = "done" then
    match Json.member "result" j with
    | Some r -> (
      match Job.of_json r with
      | Ok result -> result
      | Error e -> Alcotest.fail ("unparseable embedded result: " ^ e))
    | None -> Alcotest.fail "done without result"
  else begin
    Thread.delay 0.05;
    poll_done ~port id deadline
  end

let wait_done ~port reply = poll_done ~port (job_id reply) (Unix.gettimeofday () +. 60.0)

(* -- end-to-end over loopback ----------------------------------------- *)

let qasm c = Circuit.Qasm_printer.to_string c

let qft_pair n =
  let c = Algorithms.Qft.static n in
  (qasm c, qasm c)

let inline_job ?(extra = []) ?shots n =
  let a, b = qft_pair n in
  let fields =
    [ ("a", Json.String a); ("b", Json.String b) ]
    @ (match shots with
       | Some s -> [ ("strategy", Json.String (Printf.sprintf "simulation:%d" s)) ]
       | None -> [])
    @ extra
  in
  Json.to_string (Json.Obj fields)

let with_server cfg f =
  let server = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let test_e2e_submit_poll_verdict () =
  let cache = Cache_store.Store.in_memory () in
  with_server
    { Server.default_config with Server.workers = 2; cache = Some cache; heartbeat_interval = 0.01 }
    (fun server ->
      let port = Server.port server in
      (* health and the single-sourced version *)
      let health = json_of (get ~port "/v1/health") in
      Alcotest.(check string) "health schema" "qcec-serve/v1" (str_member "schema" health);
      Alcotest.(check string) "health status" "ok" (str_member "status" health);
      Alcotest.(check string) "version is single-sourced" Qcec.Version.string
        (str_member "version" health);
      (* structured 4xx for the unroutable and the malformed *)
      Alcotest.(check int) "unknown route is 404" 404 (get ~port "/nope").status;
      Alcotest.(check string) "404 is structured" "not_found" (error_code (get ~port "/nope"));
      Alcotest.(check string) "405 on bad method" "method_not_allowed"
        (error_code (request ~port ~meth:"PUT" ~path:"/v1/jobs" ~body:"{}" ()));
      Alcotest.(check string) "non-JSON body" "invalid_json"
        (error_code (post ~port "/v1/jobs" "{not json"));
      Alcotest.(check string) "wrong field type" "invalid_request"
        (error_code (post ~port "/v1/jobs" "{\"a\": 42, \"b\": \"x\"}"));
      Alcotest.(check string) "unparsable circuit" "parse_error"
        (error_code (post ~port "/v1/jobs" "{\"a\": \"not qasm\", \"b\": \"also not\"}"));
      Alcotest.(check string) "unknown backend" "unknown_backend"
        (error_code
           (post ~port "/v1/jobs"
              (inline_job 3 ~extra:[ ("backend", Json.String "no-such-backend") ])));
      Alcotest.(check string) "missing job is 404" "not_found"
        (error_code (get ~port "/v1/jobs/job-999999"));
      (* submit, poll to verdict *)
      let accepted = post ~port "/v1/jobs" (inline_job 6) in
      Alcotest.(check int) "submission is 202" 202 accepted.status;
      let result = wait_done ~port accepted in
      Alcotest.(check string) "verdict" "equivalent" (Job.exit_class result.Job.outcome);
      (* parity with a direct engine run of the same pair *)
      let a, b = qft_pair 6 in
      let direct =
        Pool.run
          { Pool.default_config with Pool.workers = 1 }
          [ Job.circuits ~index:0
              (Circuit.Qasm3_parser.parse_any ~name:"a" a)
              (Circuit.Qasm3_parser.parse_any ~name:"b" b)
          ]
      in
      let direct = List.hd direct.Pool.results in
      Alcotest.(check bool) "daemon verdict matches qcec check" true
        (Job.same_outcome direct.Job.outcome result.Job.outcome);
      (* warm resubmission: cached verdict, zero new DD packages *)
      let packages_created () =
        match Json.member "metrics" (json_of (get ~port "/v1/metrics")) with
        | Some m -> (
          match Json.member "dd.pkg.created" m with
          | Some (Json.Int n) -> n
          | _ -> 0)
        | None -> Alcotest.fail "metrics missing"
      in
      let before = packages_created () in
      let warm = wait_done ~port (post ~port "/v1/jobs" (inline_job 6)) in
      (match warm.Job.outcome with
       | Job.Verdict v ->
         Alcotest.(check bool) "warm verdict is served from the store" true v.Job.cached;
         Alcotest.(check string) "warm exit class" "cached" (Job.exit_class warm.Job.outcome)
       | Job.Failed _ -> Alcotest.fail "warm resubmission failed");
      Alcotest.(check int) "warm hit builds zero DD packages" before (packages_created ());
      (* a deliberately-timing-out job classifies as timeout *)
      let slow =
        wait_done ~port
          (post ~port "/v1/jobs" (inline_job 10 ~shots:200000 ~extra:[ ("timeout", Json.Float 0.3) ]))
      in
      (match slow.Job.outcome with
       | Job.Failed { reason = Job.Timeout; _ } -> ()
       | o -> Alcotest.fail ("expected timeout, got " ^ Job.exit_class o));
      (* the job listing knows all of them *)
      match Json.member "jobs" (json_of (get ~port "/v1/jobs")) with
      | Some (Json.List jobs) ->
        Alcotest.(check bool) "listing has all jobs" true (List.length jobs >= 3)
      | _ -> Alcotest.fail "job listing missing")

let test_e2e_sse_stream () =
  with_server
    { Server.default_config with Server.workers = 1; heartbeat_interval = 0.005 }
    (fun server ->
      let port = Server.port server in
      let accepted = post ~port "/v1/jobs" (inline_job 10 ~shots:400) in
      let id = job_id accepted in
      (* the stream replays from the requested position and ends with the
         terminal [done] frame, after which the server closes the socket *)
      let reply = get ~port (Printf.sprintf "/v1/jobs/%s/events" id) in
      Alcotest.(check int) "stream status" 200 reply.status;
      Alcotest.(check (option string)) "stream content type" (Some "text/event-stream")
        (List.assoc_opt "content-type" reply.rheaders);
      let events = Sse.decode reply.rbody in
      let named name = List.filter (fun (e : Sse.event) -> e.Sse.event = Some name) events in
      Alcotest.(check int) "one queued frame" 1 (List.length (named "queued"));
      Alcotest.(check int) "one started frame" 1 (List.length (named "started"));
      Alcotest.(check int) "one done frame" 1 (List.length (named "done"));
      Alcotest.(check bool)
        (Printf.sprintf "at least 3 progress frames (got %d)" (List.length (named "progress")))
        true
        (List.length (named "progress") >= 3);
      (* ids are strictly increasing *)
      let ids = List.filter_map (fun (e : Sse.event) -> e.Sse.id) events in
      Alcotest.(check bool) "event ids increase" true
        (List.for_all2 (fun a b -> a < b) ids (List.tl ids @ [ max_int ]));
      (* progress frames carry the safepoint heartbeat fields *)
      (match named "progress" with
       | p :: _ ->
         let j = Json.of_string p.Sse.data in
         Alcotest.(check string) "phase" "check" (str_member "phase" j);
         Alcotest.(check bool) "live nodes reported" true (Json.member "live_nodes" j <> None)
       | [] -> ());
      (* Last-Event-ID resumption: everything after the first two frames *)
      let resumed =
        request ~port ~meth:"GET"
          ~path:(Printf.sprintf "/v1/jobs/%s/events" id)
          ~headers:[ ("Last-Event-ID", "2") ] ()
      in
      let resumed = Sse.decode resumed.rbody in
      Alcotest.(check bool) "resumed stream skips delivered frames" true
        (List.for_all
           (fun (e : Sse.event) -> match e.Sse.id with Some i -> i > 2 | None -> false)
           resumed))

let test_e2e_backpressure_and_cancel () =
  with_server
    { Server.default_config with
      Server.workers = 1
    ; queue_capacity = 1
    ; heartbeat_interval = 0.01
    }
    (fun server ->
      let port = Server.port server in
      (* occupy the single worker with a job slow enough to straddle the
         whole test (cancelled at the end, so nothing actually waits 30s) *)
      let running = post ~port "/v1/jobs" (inline_job 10 ~shots:30000) in
      Alcotest.(check int) "slow job accepted" 202 running.status;
      let running_id = job_id running in
      let rec wait_running n =
        if n = 0 then Alcotest.fail "job never started";
        let state = str_member "state" (json_of (get ~port ("/v1/jobs/" ^ running_id))) in
        if state <> "running" then begin
          Thread.delay 0.05;
          wait_running (n - 1)
        end
      in
      wait_running 200;
      (* fill the admission queue, then overflow it *)
      let queued = post ~port "/v1/jobs" (inline_job 4) in
      Alcotest.(check int) "queue has room for one" 202 queued.status;
      let overflow = post ~port "/v1/jobs" (inline_job 4) in
      Alcotest.(check int) "overflow is 429" 429 overflow.status;
      Alcotest.(check string) "overflow code" "queue_full" (error_code overflow);
      Alcotest.(check bool) "Retry-After present" true
        (List.mem_assoc "retry-after" overflow.rheaders);
      (* cancel the queued job: it must resolve without running *)
      let queued_id = job_id queued in
      let del id = request ~port ~meth:"DELETE" ~path:("/v1/jobs/" ^ id) () in
      Alcotest.(check int) "cancel queued" 202 (del queued_id).status;
      (* cancel the running job: it unwinds at the next DD safepoint *)
      Alcotest.(check int) "cancel running" 202 (del running_id).status;
      let r_running = poll_done ~port running_id (Unix.gettimeofday () +. 20.0) in
      let r_queued = poll_done ~port queued_id (Unix.gettimeofday () +. 20.0) in
      Alcotest.(check string) "running job cancelled" "cancelled"
        (Job.exit_class r_running.Job.outcome);
      Alcotest.(check string) "queued job cancelled" "cancelled"
        (Job.exit_class r_queued.Job.outcome);
      Alcotest.(check bool) "mid-run cancel is prompt" true (r_running.Job.duration < 15.0);
      Alcotest.(check int) "cancelling a finished job is 409" 409 (del running_id).status)

let test_e2e_rate_limit () =
  with_server
    { Server.default_config with Server.workers = 1; rate = 0.001; burst = 2 }
    (fun server ->
      let port = Server.port server in
      Alcotest.(check int) "first passes" 202 (post ~port "/v1/jobs" (inline_job 3)).status;
      Alcotest.(check int) "second passes" 202 (post ~port "/v1/jobs" (inline_job 3)).status;
      let limited = post ~port "/v1/jobs" (inline_job 3) in
      Alcotest.(check int) "third is 429" 429 limited.status;
      Alcotest.(check string) "limited code" "rate_limited" (error_code limited);
      Alcotest.(check bool) "Retry-After present" true
        (List.mem_assoc "retry-after" limited.rheaders))

let test_e2e_oversized_body () =
  with_server
    { Server.default_config with Server.workers = 1; max_body = 4096 }
    (fun server ->
      let port = Server.port server in
      let reply = post ~port "/v1/jobs" (String.make 8192 'x') in
      Alcotest.(check int) "oversized body is 413" 413 reply.status;
      Alcotest.(check string) "structured 413" "payload_too_large" (error_code reply))

let test_e2e_manifest_and_drain () =
  (* a manifest document with inline file references, then a graceful stop
     with jobs still queued: drain runs them to completion *)
  let dir = Filename.temp_file "qcec_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let a, _ = qft_pair 5 in
  let file name = Filename.concat dir name in
  let write name contents =
    let oc = open_out (file name) in
    output_string oc contents;
    close_out oc
  in
  write "a.qasm" a;
  write "b.qasm" a;
  let manifest =
    Json.Obj
      [ ("schema", Json.String "qcec-manifest/v1")
      ; ( "jobs"
        , Json.List
            [ Json.Obj
                [ ("a", Json.String (file "a.qasm"))
                ; ("b", Json.String (file "b.qasm"))
                ; ("label", Json.String "manifest pair")
                ]
            ] )
      ]
  in
  let cache = Cache_store.Store.in_memory () in
  let server =
    Server.start { Server.default_config with Server.workers = 1; cache = Some cache }
  in
  let port = Server.port server in
  let reply = post ~port "/v1/jobs" (Json.to_string manifest) in
  Alcotest.(check int) "manifest accepted" 202 reply.status;
  (match Json.member "jobs" (json_of reply) with
   | Some (Json.List [ _ ]) -> ()
   | _ -> Alcotest.fail "expected one job back");
  (* stop immediately: a graceful drain runs the queued job to completion,
     which the shared verdict store proves — its insert happened even
     though nobody polled the job *)
  Server.stop server;
  Alcotest.(check bool) "server reports stopped" true (Server.stopping server);
  Alcotest.(check int) "drained job reached the verdict store" 1
    (Cache_store.Store.size cache);
  (* stop is idempotent *)
  Server.stop server

let suite =
  [ Alcotest.test_case "json: control characters escape and round-trip" `Quick
      test_json_control_chars
  ; Alcotest.test_case "json: one module shared across layers" `Quick test_json_shared_with_obs
  ; Alcotest.test_case "http: request line, query, headers" `Quick test_http_simple
  ; Alcotest.test_case "http: content-length body" `Quick test_http_body
  ; Alcotest.test_case "http: chunked body" `Quick test_http_chunked
  ; Alcotest.test_case "http: oversized body is 413" `Quick test_http_oversized
  ; Alcotest.test_case "http: malformed requests are 400" `Quick test_http_malformed
  ; Alcotest.test_case "sse: encode/decode round-trip" `Quick test_sse_roundtrip
  ; Alcotest.test_case "limiter: token-bucket accounting" `Quick test_limiter
  ; Alcotest.test_case "e2e: submit, poll, verdict parity, warm cache" `Slow
      test_e2e_submit_poll_verdict
  ; Alcotest.test_case "e2e: SSE progress stream" `Slow test_e2e_sse_stream
  ; Alcotest.test_case "e2e: backpressure 429 and cancellation" `Slow
      test_e2e_backpressure_and_cancel
  ; Alcotest.test_case "e2e: per-client rate limit" `Quick test_e2e_rate_limit
  ; Alcotest.test_case "e2e: oversized body over the wire" `Quick test_e2e_oversized_body
  ; Alcotest.test_case "e2e: manifest submission and graceful drain" `Slow
      test_e2e_manifest_and_drain
  ]
