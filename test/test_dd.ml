(* Decision-diagram package tests: every operation is cross-checked against
   the dense state-vector / matrix oracle on small circuits, plus structural
   properties (canonicity, node sharing, normalization). *)

module Cx = Cxnum.Cx
module Gates = Circuit.Gates
module Op = Circuit.Op

let gate_matrix g = Gates.matrix g

let test_basis_states () =
  let p = Dd.Pkg.create () in
  let s = Dd.Pkg.basis_state p 3 (fun q -> q = 1) in
  let arr = Dd.Vec.to_array p s ~n:3 in
  Array.iteri
    (fun i z ->
      let expected = if i = 2 then Cx.one else Cx.zero in
      Util.check_cx (Fmt.str "amp %d" i) expected z)
    arr

let test_product_state () =
  let p = Dd.Pkg.create () in
  let a = (Cx.of_float 0.6, Cx.of_float 0.8) in
  let s = Dd.Pkg.product_state p [| a; (Cx.one, Cx.zero) |] in
  let arr = Dd.Vec.to_array p s ~n:2 in
  Util.check_cx "p00" (Cx.of_float 0.6) arr.(0);
  Util.check_cx "p01" (Cx.of_float 0.8) arr.(1);
  Util.check_cx "p10" Cx.zero arr.(2);
  Util.check_float "normalized" 1.0 (Dd.Vec.norm p s)

let test_vec_roundtrip () =
  let p = Dd.Pkg.create () in
  let v =
    [| Cx.make 0.1 0.2; Cx.make (-0.3) 0.0; Cx.make 0.0 0.5; Cx.make 0.7 (-0.1) |]
  in
  let dd = Dd.Vec.of_array p v in
  let back = Dd.Vec.to_array p dd ~n:2 in
  Array.iteri (fun i z -> Util.check_cx (Fmt.str "amp %d" i) v.(i) z) back

let test_mat_roundtrip () =
  let p = Dd.Pkg.create () in
  let m =
    [| [| Cx.one; Cx.zero; Cx.i; Cx.zero |]
     ; [| Cx.zero; Cx.make 0.5 0.5; Cx.zero; Cx.zero |]
     ; [| Cx.minus_one; Cx.zero; Cx.make 0.0 (-1.0); Cx.one |]
     ; [| Cx.zero; Cx.of_float 2.0; Cx.zero; Cx.make 0.25 0.0 |]
    |]
  in
  let dd = Dd.Mat.of_array p m in
  let back = Dd.Mat.to_array p dd ~n:2 in
  Alcotest.(check bool) "matrix round trip" true (Util.matrices_equal m back)

let test_gate_construction_matches_dense () =
  (* every gate, on each target of a 3-qubit register *)
  let gates =
    [ Gates.I; Gates.X; Gates.Y; Gates.Z; Gates.H; Gates.S; Gates.Sdg; Gates.T
    ; Gates.Tdg; Gates.SX; Gates.SXdg; Gates.RX 0.7; Gates.RY (-1.2); Gates.RZ 2.5
    ; Gates.P 0.9; Gates.U2 (0.3, -0.8); Gates.U3 (1.1, 0.4, -2.2)
    ]
  in
  List.iter
    (fun g ->
      for target = 0 to 2 do
        let c =
          Circuit.Circ.make ~name:"g" ~qubits:3 ~cbits:0 [ Op.apply g target ]
        in
        Util.check_circuit_unitary (Fmt.str "%s on q%d" (Gates.name g) target) c
      done)
    gates

let test_controlled_gates_match_dense () =
  let cases =
    [ Op.controlled Gates.X ~control:0 ~target:2
    ; Op.controlled Gates.X ~control:2 ~target:0
    ; Op.controlled (Gates.P 0.77) ~control:1 ~target:2
    ; Op.controlled Gates.H ~control:2 ~target:1
    ; Op.Apply
        { gate = Gates.X
        ; controls = [ { cq = 0; pos = false } ]
        ; target = 1
        } (* negative control *)
    ; Op.Apply
        { gate = Gates.Y
        ; controls = [ { cq = 2; pos = false }; { cq = 0; pos = true } ]
        ; target = 1
        }
    ; Op.Apply
        { gate = Gates.X
        ; controls = [ { cq = 0; pos = true }; { cq = 1; pos = true } ]
        ; target = 2
        } (* toffoli *)
    ; Op.Swap (0, 2)
    ]
  in
  List.iteri
    (fun i op ->
      let c = Circuit.Circ.make ~name:"c" ~qubits:3 ~cbits:0 [ op ] in
      Util.check_circuit_unitary (Fmt.str "controlled case %d" i) c)
    cases

let test_identity_properties () =
  let p = Dd.Pkg.create () in
  let id4 = Dd.Pkg.ident p 4 in
  Alcotest.(check bool) "I is identity" true
    (Dd.Mat.is_identity p id4 ~n:4 ~up_to_phase:false);
  Util.check_cx "tr I4 = 16" (Cx.of_float 16.0) (Dd.Mat.trace p id4 ~n:4);
  let h = Dd.Pkg.gate p ~n:4 ~controls:[] ~target:2 (gate_matrix Gates.H) in
  Alcotest.(check bool) "H*H = I" true
    (Dd.Mat.is_identity p (Dd.Mat.mul p h h) ~n:4 ~up_to_phase:false);
  let ha = Dd.Mat.adjoint p h in
  Alcotest.(check bool) "H = H^dagger" true (Dd.Mat.equal p h ha)

let test_canonicity_sharing () =
  (* the same state built along two different gate sequences must be the
     same node *)
  let p = Dd.Pkg.create () in
  let n = 2 in
  let h0 = Dd.Pkg.gate p ~n ~controls:[] ~target:0 (gate_matrix Gates.H) in
  let h1 = Dd.Pkg.gate p ~n ~controls:[] ~target:1 (gate_matrix Gates.H) in
  let s1 = Dd.Mat.apply p h1 (Dd.Mat.apply p h0 (Dd.Pkg.zero_state p n)) in
  let s2 = Dd.Mat.apply p h0 (Dd.Mat.apply p h1 (Dd.Pkg.zero_state p n)) in
  Alcotest.(check bool) "same node for |++>" true
    (match (s1.Dd.Types.vt, s2.Dd.Types.vt) with
     | Some a, Some b -> a == b
     | _ -> false);
  Util.check_cx "same weight" (Cxnum.Cx_table.to_cx s1.Dd.Types.vw)
    (Cxnum.Cx_table.to_cx s2.Dd.Types.vw)

let test_probabilities_and_project () =
  let p = Dd.Pkg.create () in
  let n = 2 in
  (* (|00> + |11>)/sqrt2 *)
  let h = Dd.Pkg.gate p ~n ~controls:[] ~target:0 (gate_matrix Gates.H) in
  let cx = Dd.Pkg.gate p ~n ~controls:[ (0, true) ] ~target:1 (gate_matrix Gates.X) in
  let bell = Dd.Mat.apply p cx (Dd.Mat.apply p h (Dd.Pkg.zero_state p n)) in
  let p0, p1 = Dd.Vec.probabilities p bell 1 in
  Util.check_float "bell p0" 0.5 p0;
  Util.check_float "bell p1" 0.5 p1;
  let collapsed = Dd.Vec.project p bell 0 1 in
  let arr = Dd.Vec.to_array p collapsed ~n in
  Util.check_cx "collapse to |11>" Cx.one arr.(3);
  Util.check_float "renormalized" 1.0 (Dd.Vec.norm p collapsed)

let test_project_zero_probability_rejected () =
  let p = Dd.Pkg.create () in
  let s = Dd.Pkg.zero_state p 2 in
  Alcotest.check_raises "projecting impossible outcome"
    (Invalid_argument "Vec.project: outcome has zero probability") (fun () ->
      ignore (Dd.Vec.project p s 0 1))

let test_inner_product () =
  let p = Dd.Pkg.create () in
  let plus = Dd.Pkg.product_state p [| (Cx.of_float Cx.sqrt2_inv, Cx.of_float Cx.sqrt2_inv) |] in
  let minus = Dd.Pkg.product_state p [| (Cx.of_float Cx.sqrt2_inv, Cx.of_float (-.Cx.sqrt2_inv)) |] in
  Util.check_cx "<+|-> = 0" Cx.zero (Dd.Vec.inner_product p plus minus);
  Util.check_float "<+|+> = 1" 1.0 (Cx.abs (Dd.Vec.inner_product p plus plus));
  Util.check_float "fidelity orthogonal" 0.0 (Dd.Vec.fidelity p plus minus)

let test_deep_chain_weights () =
  (* the regression behind the relative interning: a 128-qubit Hadamard
     layer has root weight (1/sqrt2)^128 ~ 5e-20 and must not collapse *)
  let p = Dd.Pkg.create () in
  let n = 128 in
  let layer =
    List.fold_left
      (fun acc t ->
        Dd.Mat.mul p (Dd.Pkg.gate p ~n ~controls:[] ~target:t (gate_matrix Gates.H)) acc)
      (Dd.Pkg.ident p n)
      (List.init n (fun q -> q))
  in
  Alcotest.(check bool) "H^128 layer is not zero" false
    (Dd.Types.medge_is_zero layer);
  let squared = Dd.Mat.mul p layer layer in
  Alcotest.(check bool) "H^128 squared is identity" true
    (Dd.Mat.is_identity p squared ~n ~up_to_phase:false)

let test_node_counts () =
  let p = Dd.Pkg.create () in
  let n = 20 in
  let s = Dd.Pkg.zero_state p n in
  Alcotest.(check int) "basis state has n nodes" n (Dd.Vec.node_count s);
  let id = Dd.Pkg.ident p n in
  Alcotest.(check int) "identity has n nodes" n (Dd.Mat.node_count id)

let test_process_fidelity () =
  let p = Dd.Pkg.create () in
  let n = 3 in
  let x1 = Dd.Pkg.gate p ~n ~controls:[] ~target:1 (gate_matrix Gates.X) in
  let z1 = Dd.Pkg.gate p ~n ~controls:[] ~target:1 (gate_matrix Gates.Z) in
  Util.check_float "pf(X,X)=1" 1.0 (Dd.Mat.process_fidelity p x1 x1 ~n);
  Util.check_float "pf(X,Z)=0" 0.0 (Dd.Mat.process_fidelity p x1 z1 ~n)

(* property: random circuit DD simulation equals dense simulation *)
let prop_simulation_matches_dense =
  QCheck.Test.make ~name:"DD simulation = dense simulation (random circuits)"
    ~count:60
    QCheck.(pair (int_range 1 5) (int_range 0 10000))
    (fun (qubits, seed) ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:25 in
      let p = Dd.Pkg.create () in
      let dd = Dd.Vec.to_array p (Qsim.Dd_sim.simulate p c) ~n:qubits in
      let dense = (Qsim.Statevector.run_unitary c).Qsim.Statevector.amps in
      Array.for_all2 (fun a b -> Util.cx_close ~tol:1e-8 a b) dd dense)

let prop_unitary_matches_dense =
  QCheck.Test.make ~name:"DD unitary = dense unitary (random circuits)" ~count:40
    QCheck.(pair (int_range 1 4) (int_range 0 10000))
    (fun (qubits, seed) ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:15 in
      let p = Dd.Pkg.create () in
      let dd =
        Dd.Mat.to_array p (Qsim.Dd_sim.build_unitary p c) ~n:qubits
      in
      Util.matrices_equal ~tol:1e-8 dd (Qsim.Statevector.unitary_matrix c))

let prop_probabilities_sum_to_one =
  QCheck.Test.make ~name:"measurement probabilities sum to 1" ~count:40
    QCheck.(triple (int_range 1 5) (int_range 0 1000) (int_range 0 4))
    (fun (qubits, seed, q) ->
      QCheck.assume (q < qubits);
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:20 in
      let p = Dd.Pkg.create () in
      let s = Qsim.Dd_sim.simulate p c in
      let p0, p1 = Dd.Vec.probabilities p s q in
      Float.abs (p0 +. p1 -. 1.0) < 1e-9)

let prop_add_commutes =
  QCheck.Test.make ~name:"vector addition commutes" ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (s1, s2) ->
      let qubits = 3 in
      let p = Dd.Pkg.create () in
      let mk seed =
        Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:10)
      in
      let a = mk s1 and b = mk s2 in
      let ab = Dd.Vec.add p a b and ba = Dd.Vec.add p b a in
      let x = Dd.Vec.to_array p ab ~n:qubits and y = Dd.Vec.to_array p ba ~n:qubits in
      Array.for_all2 (fun u v -> Util.cx_close ~tol:1e-9 u v) x y)

let prop_adjoint_involution =
  QCheck.Test.make ~name:"matrix adjoint is an involution" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (qubits, seed) ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:12 in
      let p = Dd.Pkg.create () in
      let u = Qsim.Dd_sim.build_unitary p c in
      Dd.Mat.equal p u (Dd.Mat.adjoint p (Dd.Mat.adjoint p u)))

let prop_unitary_times_adjoint_is_identity =
  QCheck.Test.make ~name:"U * U^dagger = I" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (qubits, seed) ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:12 in
      let p = Dd.Pkg.create () in
      let u = Qsim.Dd_sim.build_unitary p c in
      Dd.Mat.is_identity p
        (Dd.Mat.mul p u (Dd.Mat.adjoint p u))
        ~n:qubits ~up_to_phase:false)

let prop_mul_associative_on_states =
  QCheck.Test.make ~name:"(A B) v = A (B v)" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (s1, s2) ->
      let qubits = 3 in
      let p = Dd.Pkg.create () in
      let u c = Qsim.Dd_sim.build_unitary p (Algorithms.Random_circuit.unitary ~seed:c ~qubits ~gates:8) in
      let a = u s1 and b = u s2 in
      let v = Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed:(s1 + s2) ~qubits ~gates:8) in
      let lhs = Dd.Mat.apply p (Dd.Mat.mul p a b) v in
      let rhs = Dd.Mat.apply p a (Dd.Mat.apply p b v) in
      Dd.Vec.fidelity p lhs rhs > 1.0 -. 1e-9)

let prop_adjoint_reverses_products =
  QCheck.Test.make ~name:"(A B)^d = B^d A^d" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (s1, s2) ->
      let qubits = 3 in
      let p = Dd.Pkg.create () in
      let u c = Qsim.Dd_sim.build_unitary p (Algorithms.Random_circuit.unitary ~seed:c ~qubits ~gates:8) in
      let a = u s1 and b = u s2 in
      let lhs = Dd.Mat.adjoint p (Dd.Mat.mul p a b) in
      let rhs = Dd.Mat.mul p (Dd.Mat.adjoint p b) (Dd.Mat.adjoint p a) in
      Dd.Mat.equal p lhs rhs)

let prop_inner_product_unitary_invariant =
  QCheck.Test.make ~name:"<Ua|Ub> = <a|b>" ~count:30
    QCheck.(triple (int_range 0 1000) (int_range 0 1000) (int_range 0 1000))
    (fun (s1, s2, s3) ->
      let qubits = 3 in
      let p = Dd.Pkg.create () in
      let v c = Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed:c ~qubits ~gates:8) in
      let a = v s1 and b = v s2 in
      let u = Qsim.Dd_sim.build_unitary p (Algorithms.Random_circuit.unitary ~seed:s3 ~qubits ~gates:8) in
      let before = Dd.Vec.inner_product p a b in
      let after = Dd.Vec.inner_product p (Dd.Mat.apply p u a) (Dd.Mat.apply p u b) in
      Util.cx_close ~tol:1e-8 before after)

let test_dot_export () =
  let p = Dd.Pkg.create () in
  let s = Dd.Pkg.basis_state p 2 (fun _ -> true) in
  let text = Fmt.str "%a" (Dd.Dot.vector p) s in
  Alcotest.(check bool) "dot has digraph" true
    (String.length text > 0
     && String.sub text 0 7 = "digraph");
  let m = Dd.Pkg.ident p 2 in
  let text = Fmt.str "%a" (Dd.Dot.matrix p) m in
  Alcotest.(check bool) "matrix dot nonempty" true (String.length text > 20)

let test_repeated_apply_hits_cache () =
  (* the same (matrix node, vector node) pair must be served from the mv
     compute cache on the second application *)
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let p = Dd.Pkg.create () in
      let n = 3 in
      let h = Dd.Pkg.gate p ~n ~controls:[] ~target:1 (gate_matrix Gates.H) in
      let s = Dd.Pkg.zero_state p n in
      let before = Obs.Metrics.snapshot () in
      let first = Dd.Mat.apply p h s in
      let second = Dd.Mat.apply p h s in
      let d = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
      Alcotest.(check bool) "cached apply is pointer-identical" true
        (first.Dd.Types.vw == second.Dd.Types.vw && first.Dd.Types.vt == second.Dd.Types.vt);
      Alcotest.(check bool) "repeated mat-vec multiply reports cache hits" true
        (Obs.Metrics.find d "dd.cache.mv.hits" > 0))

let test_cache_replace_and_eviction () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let c : (int, string) Dd.Cache.t = Dd.Cache.create ~capacity:2 "testcache" in
      Dd.Cache.add c 1 "a";
      Dd.Cache.add c 1 "b";
      (* re-computed keys must shadow, not pile up as duplicate bindings *)
      Alcotest.(check int) "replace keeps one binding" 1 (Dd.Cache.length c);
      Alcotest.(check (option string)) "latest value wins" (Some "b") (Dd.Cache.find c 1);
      let before = Obs.Metrics.snapshot () in
      Dd.Cache.add c 2 "c";
      Dd.Cache.add c 3 "d";
      Dd.Cache.add c 4 "e";
      let d = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
      Alcotest.(check bool) "capacity bound holds" true (Dd.Cache.length c <= 2);
      Alcotest.(check bool) "evictions are counted" true
        (Obs.Metrics.find d "dd.cache.testcache.evictions" > 0);
      Dd.Cache.clear c;
      Alcotest.(check int) "clear empties" 0 (Dd.Cache.length c))

let test_zero_capacity_cache_disabled () =
  let c : (int, int) Dd.Cache.t = Dd.Cache.create ~capacity:0 "testcache0" in
  Dd.Cache.add c 1 10;
  Alcotest.(check (option int)) "capacity 0 stores nothing" None (Dd.Cache.find c 1);
  Alcotest.(check int) "stays empty" 0 (Dd.Cache.length c)

(* distinct non-canonical weight ids reachable from a rooted vector *)
let reachable_weight_count (e : Dd.Types.vedge) =
  let ids = Hashtbl.create 64 and seen = Hashtbl.create 64 in
  let keep (w : Cxnum.Cx_table.value) =
    if w.Cxnum.Cx_table.id > 1 then Hashtbl.replace ids w.Cxnum.Cx_table.id ()
  in
  let rec go (e : Dd.Types.vedge) =
    if not (Dd.Types.vedge_is_zero e) then begin
      keep e.Dd.Types.vw;
      match e.Dd.Types.vt with
      | None -> ()
      | Some n ->
        if not (Hashtbl.mem seen n.Dd.Types.vid) then begin
          Hashtbl.replace seen n.Dd.Types.vid ();
          go n.Dd.Types.v0;
          go n.Dd.Types.v1
        end
    end
  in
  go e;
  Hashtbl.length ids

let test_compact_rebuilds_weight_table () =
  let p = Dd.Pkg.create () in
  let n = 5 in
  let s = Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed:3 ~qubits:n ~gates:40) in
  ignore (Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed:4 ~qubits:n ~gates:40));
  let weights_before = (Dd.Pkg.stats p).Dd.Pkg.weights in
  let r = Dd.Pkg.root_v p s in
  Dd.Pkg.compact p;
  let weights_after = (Dd.Pkg.stats p).Dd.Pkg.weights in
  Alcotest.(check bool)
    (Fmt.str "weight table shrank (%d -> %d)" weights_before weights_after)
    true
    (weights_after < weights_before);
  (* the rebuilt table holds exactly the root-reachable weights plus the
     canonical 0 and 1 *)
  let reachable = reachable_weight_count (Dd.Pkg.vroot_edge r) in
  Alcotest.(check bool)
    (Fmt.str "weights (%d) <= reachable (%d) + canonical 2" weights_after reachable)
    true
    (weights_after <= reachable + 2);
  (* a second sweep is a fixpoint *)
  Dd.Pkg.compact p;
  Alcotest.(check int) "compaction is idempotent on weights" weights_after
    ((Dd.Pkg.stats p).Dd.Pkg.weights);
  Dd.Pkg.release_v p r

let cx_identical (a : Cx.t) (b : Cx.t) = a.Cx.re = b.Cx.re && a.Cx.im = b.Cx.im

let prop_compact_preserves_root_amplitudes =
  QCheck.Test.make ~name:"compact preserves rooted amplitudes bit-for-bit" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 10000))
    (fun (qubits, seed) ->
      let p = Dd.Pkg.create () in
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:20 in
      let s = Qsim.Dd_sim.simulate p c in
      let u = Qsim.Dd_sim.build_unitary p c in
      (* garbage for the sweep to collect *)
      ignore
        (Qsim.Dd_sim.simulate p
           (Algorithms.Random_circuit.unitary ~seed:(seed + 1) ~qubits ~gates:20));
      let v_before = Dd.Vec.to_array p s ~n:qubits in
      let m_before = Dd.Mat.to_array p u ~n:qubits in
      let rv = Dd.Pkg.root_v p s and rm = Dd.Pkg.root_m p u in
      Dd.Pkg.compact p;
      let v_after = Dd.Vec.to_array p (Dd.Pkg.vroot_edge rv) ~n:qubits in
      let m_after = Dd.Mat.to_array p (Dd.Pkg.mroot_edge rm) ~n:qubits in
      Dd.Pkg.release_v p rv;
      Dd.Pkg.release_m p rm;
      Array.for_all2 cx_identical v_before v_after
      && Array.for_all2 (fun r1 r2 -> Array.for_all2 cx_identical r1 r2) m_before
           m_after)

let prop_cache_capacity_invariance =
  QCheck.Test.make
    ~name:"identical results at cache capacity 0 / tiny / unbounded (+ auto-GC)"
    ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 10000))
    (fun (qubits, seed) ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:20 in
      let run config =
        let p = Dd.Pkg.create ?config () in
        Dd.Vec.to_array p (Qsim.Dd_sim.simulate p c) ~n:qubits
      in
      let reference = run None in
      let cfg caps gc_threshold = Some { Dd.Pkg.caps; gc_threshold } in
      (* capacity only changes what is recomputed, never the float ops, so
         the amplitudes are bit-identical; a sweep may re-intern a swept
         weight as a fresh representative that differs from the old one by
         up to the interning tolerance, so auto-GC runs are compared
         numerically *)
      List.for_all
        (fun config -> Array.for_all2 cx_identical reference (run config))
        [ cfg (Dd.Pkg.caps_uniform 0) None; cfg (Dd.Pkg.caps_uniform 3) None ]
      && List.for_all
           (fun config ->
             Array.for_all2 (fun a b -> Util.cx_close ~tol:1e-8 a b) reference
               (run config))
           [ cfg Dd.Pkg.caps_unbounded (Some 8); cfg (Dd.Pkg.caps_uniform 3) (Some 8) ])

let suite =
  [ Alcotest.test_case "basis states" `Quick test_basis_states
  ; Alcotest.test_case "cache replace + eviction" `Quick test_cache_replace_and_eviction
  ; Alcotest.test_case "capacity-0 cache disabled" `Quick
      test_zero_capacity_cache_disabled
  ; Alcotest.test_case "compact rebuilds the weight table" `Quick
      test_compact_rebuilds_weight_table
  ; Alcotest.test_case "repeated apply hits the mv cache" `Quick
      test_repeated_apply_hits_cache
  ; Alcotest.test_case "product state" `Quick test_product_state
  ; Alcotest.test_case "vector round trip" `Quick test_vec_roundtrip
  ; Alcotest.test_case "matrix round trip" `Quick test_mat_roundtrip
  ; Alcotest.test_case "gate construction vs dense" `Quick
      test_gate_construction_matches_dense
  ; Alcotest.test_case "controlled gates vs dense" `Quick
      test_controlled_gates_match_dense
  ; Alcotest.test_case "identity properties" `Quick test_identity_properties
  ; Alcotest.test_case "canonicity: node sharing" `Quick test_canonicity_sharing
  ; Alcotest.test_case "probabilities and projection" `Quick
      test_probabilities_and_project
  ; Alcotest.test_case "impossible projection rejected" `Quick
      test_project_zero_probability_rejected
  ; Alcotest.test_case "inner products" `Quick test_inner_product
  ; Alcotest.test_case "deep chains keep tiny weights" `Quick test_deep_chain_weights
  ; Alcotest.test_case "node counts" `Quick test_node_counts
  ; Alcotest.test_case "process fidelity" `Quick test_process_fidelity
  ; Alcotest.test_case "dot export" `Quick test_dot_export
  ; Util.qtest prop_simulation_matches_dense
  ; Util.qtest prop_unitary_matches_dense
  ; Util.qtest prop_probabilities_sum_to_one
  ; Util.qtest prop_add_commutes
  ; Util.qtest prop_adjoint_involution
  ; Util.qtest prop_unitary_times_adjoint_is_identity
  ; Util.qtest prop_mul_associative_on_states
  ; Util.qtest prop_adjoint_reverses_products
  ; Util.qtest prop_inner_product_unitary_invariant
  ; Util.qtest prop_compact_preserves_root_amplitudes
  ; Util.qtest prop_cache_capacity_invariance
  ]
