(* Batch-verification engine tests: queue draining, worker-count
   independence of verdicts, cooperative timeout/node-limit cancellation
   and retries, per-job failure isolation, manifest compilation, the
   qcec-result/v1 round trip, and the DD package's owner-domain guard. *)

module Job = Engine.Job
module Pool = Engine.Pool
module Manifest = Engine.Manifest
module Pair = Algorithms.Pair

let bv_pair seed = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed 4)

let specs_of_pairs pairs =
  List.mapi
    (fun index (p : Pair.t) ->
      Job.circuits ~perm:p.Pair.dyn_to_static ~index p.Pair.static_circuit
        p.Pair.dynamic_circuit)
    pairs

let run ?(workers = 2) ?node_limit ?(lint = true) ?on_result specs =
  Pool.run
    { Pool.default_config with Pool.workers; node_limit; lint; on_result }
    specs

let check_class = Alcotest.(check string)

let exit_of (b : Pool.batch) i =
  Job.exit_class (List.nth b.Pool.results i).Job.outcome

(* -- draining and ordering --------------------------------------------- *)

let test_queue_drains () =
  let n = 6 in
  let batch = run ~workers:3 (specs_of_pairs (List.init n bv_pair)) in
  Alcotest.(check int) "every job has a result" n (List.length batch.Pool.results);
  List.iteri
    (fun i (r : Job.result) ->
      Alcotest.(check int) "results are in index order" i r.Job.index;
      Alcotest.(check bool) "every pair verifies" true (Job.succeeded r))
    batch.Pool.results;
  Alcotest.(check bool) "workers clamp to the job count" true
    (batch.Pool.workers <= n)

let test_streaming_callback () =
  let seen = ref [] in
  let n = 5 in
  let batch =
    run ~workers:2
      ~on_result:(fun r -> seen := r.Job.index :: !seen)
      (specs_of_pairs (List.init n bv_pair))
  in
  Alcotest.(check int) "callback fired once per job" n (List.length !seen);
  Alcotest.(check (list int)) "callback saw every index"
    (List.init n Fun.id)
    (List.sort compare !seen);
  Alcotest.(check int) "results agree" n (List.length batch.Pool.results)

(* -- verdicts are scheduling-independent ------------------------------- *)

let test_worker_count_equivalence () =
  let specs = specs_of_pairs (List.init 6 bv_pair) in
  let one = run ~workers:1 specs in
  let four = run ~workers:4 specs in
  List.iter2
    (fun (a : Job.result) (b : Job.result) ->
      Alcotest.(check bool) "identical verdicts at 1 and 4 workers" true
        (Job.same_outcome a.Job.outcome b.Job.outcome))
    one.Pool.results four.Pool.results;
  (* and both agree with calling the verifier directly *)
  let direct = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:0 4) in
  let r =
    Qcec.Verify.functional ~perm:direct.Pair.dyn_to_static
      direct.Pair.static_circuit direct.Pair.dynamic_circuit
  in
  (match (List.hd one.Pool.results).Job.outcome with
   | Job.Verdict v ->
     Alcotest.(check bool) "pool verdict = direct verdict" r.Qcec.Verify.equivalent
       v.Job.equivalent
   | Job.Failed _ -> Alcotest.fail "job 0 unexpectedly failed")

(* per-job seeds derived from one batch seed keep simulative verdicts
   identical across worker counts *)
let test_seeded_stimuli_deterministic () =
  let specs =
    List.map
      (fun (s : Job.spec) ->
        { s with
          Job.strategy = Some (Qcec.Strategy.Simulation 8)
        ; seed = Some (41 + s.Job.index)
        })
      (specs_of_pairs (List.init 4 bv_pair))
  in
  let one = run ~workers:1 specs in
  let three = run ~workers:3 specs in
  List.iter2
    (fun (a : Job.result) (b : Job.result) ->
      Alcotest.(check bool) "seeded simulation is worker-count independent" true
        (Job.same_outcome a.Job.outcome b.Job.outcome))
    one.Pool.results three.Pool.results

(* -- robustness: failures are per-job, never batch aborts -------------- *)

let test_timeout_and_retries () =
  let pair = Algorithms.Qft.make 6 in
  let spec =
    { (List.hd (specs_of_pairs [ pair ])) with Job.timeout = Some 0.0 }
  in
  let batch = run ~workers:1 [ spec ] in
  check_class "zero budget times out" "timeout" (exit_of batch 0);
  Alcotest.(check int) "no retries by default" 1
    (List.hd batch.Pool.results).Job.attempts;
  let batch = run ~workers:1 [ { spec with Job.retries = 2 } ] in
  check_class "still times out after retries" "timeout" (exit_of batch 0);
  Alcotest.(check int) "each retry is an attempt" 3
    (List.hd batch.Pool.results).Job.attempts

let test_node_limit () =
  let pair = Algorithms.Qft.make 6 in
  let batch = run ~workers:1 ~node_limit:2 (specs_of_pairs [ pair ]) in
  check_class "node budget enforced at safepoints" "node_limit" (exit_of batch 0)

let test_bad_jobs_do_not_abort () =
  let with_temp_qasm contents f =
    let path = Filename.temp_file "engine_test" ".qasm" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc contents);
        f path)
  in
  (* QA004: condition on a bit no measurement writes — error severity *)
  let lint_broken =
    "OPENQASM 3.0;\nqubit[1] q;\nbit[1] c;\nif (c[0] == 1) { x q[0]; }\n"
  in
  with_temp_qasm lint_broken (fun bad_lint ->
    let good = bv_pair 1 in
    let specs =
      [ Job.files ~index:0 "no/such/file.qasm" "nor/this/one.qasm"
      ; Job.files ~index:1 bad_lint bad_lint
      ; Job.circuits ~index:2 ~perm:good.Pair.dyn_to_static
          good.Pair.static_circuit good.Pair.dynamic_circuit
      ]
    in
    let batch = run ~workers:2 specs in
    check_class "missing file is a parse_error" "parse_error" (exit_of batch 0);
    check_class "lint pre-flight failure is structured" "lint_error"
      (exit_of batch 1);
    check_class "the healthy job still verifies" "equivalent" (exit_of batch 2);
    (* with the pre-flight off the same job runs into the transformation,
       which cannot handle a condition no measurement writes: the failure
       is still contained, it just surfaces later and less precisely *)
    let unchecked = run ~workers:1 ~lint:false [ List.nth specs 1 ] in
    check_class "lint off: failure still contained" "crash" (Job.exit_class
      (List.hd unchecked.Pool.results).Job.outcome))

let test_reject_dynamic () =
  let file = Filename.concat "fixtures" "dynamic_teleport.qasm" in
  let batch = run ~workers:1 [ Job.files ~transform:false ~index:0 file file ] in
  check_class "dynamic input under transform=false is rejected" "rejected"
    (exit_of batch 0);
  let batch = run ~workers:1 [ Job.files ~transform:true ~index:0 file file ] in
  check_class "the same pair transforms and verifies" "equivalent"
    (exit_of batch 0)

(* -- batch metrics ------------------------------------------------------ *)

let test_batch_metrics () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Span.reset ())
    (fun () ->
      let n = 4 in
      let batch = run ~workers:2 (specs_of_pairs (List.init n bv_pair)) in
      let find = Obs.Metrics.find batch.Pool.metrics in
      Alcotest.(check int) "scheduled = jobs" n (find "engine.jobs.scheduled");
      Alcotest.(check int) "completed = jobs" n (find "engine.jobs.completed");
      Alcotest.(check int) "no failures" 0 (find "engine.jobs.failed");
      Alcotest.(check bool) "workers peak recorded" true
        (find "engine.workers.peak" >= 1);
      Alcotest.(check bool) "DD work is attributed to the batch" true
        (find "dd.unique.mat.inserts" > 0);
      List.iter
        (fun (r : Job.result) ->
          Alcotest.(check bool) "per-job metrics carry DD work" true
            (Obs.Metrics.find r.Job.metrics "dd.unique.mat.inserts" > 0))
        batch.Pool.results)

(* -- manifests ---------------------------------------------------------- *)

let test_manifest_compile () =
  let doc =
    Obs.Json.of_string
      {|{ "schema": "qcec-manifest/v1",
          "seed": 7,
          "defaults": { "strategy": "lookahead", "timeout": 30, "retries": 1 },
          "jobs": [
            { "a": "a.qasm", "b": "b.qasm" },
            { "a": "/abs/c.qasm", "b": "d.qasm", "label": "named",
              "strategy": "simulation:16", "timeout": 5, "retries": 0,
              "transform": false, "perm": [1, 0] } ] }|}
  in
  match Manifest.of_json ~dir:"batch" doc with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "two jobs" 2 (List.length m.Manifest.jobs);
    let j0 = List.nth m.Manifest.jobs 0 and j1 = List.nth m.Manifest.jobs 1 in
    (match j0.Job.source with
     | Job.Files { file_a; file_b } ->
       Alcotest.(check string) "relative paths resolve against the manifest dir"
         (Filename.concat "batch" "a.qasm") file_a;
       Alcotest.(check string) "both files" (Filename.concat "batch" "b.qasm")
         file_b
     | Job.Circuits _ -> Alcotest.fail "expected a Files source");
    (match j1.Job.source with
     | Job.Files { file_a; _ } ->
       Alcotest.(check string) "absolute paths pass through" "/abs/c.qasm" file_a
     | Job.Circuits _ -> Alcotest.fail "expected a Files source");
    Alcotest.(check bool) "defaults apply" true
      (j0.Job.strategy = Some Qcec.Strategy.Lookahead
      && j0.Job.timeout = Some 30.0
      && j0.Job.retries = 1 && j0.Job.transform);
    Alcotest.(check bool) "per-job overrides win" true
      (j1.Job.strategy = Some (Qcec.Strategy.Simulation 16)
      && j1.Job.timeout = Some 5.0
      && j1.Job.retries = 0
      && (not j1.Job.transform)
      && j1.Job.perm = Some [| 1; 0 |]);
    Alcotest.(check string) "labels" "named" j1.Job.label;
    Alcotest.(check (option int)) "seed derives per job: seed + index" (Some 7)
      j0.Job.seed;
    Alcotest.(check (option int)) "second job gets seed + 1" (Some 8) j1.Job.seed

let test_manifest_errors () =
  let bad s =
    match Manifest.of_json (Obs.Json.of_string s) with
    | Ok _ -> Alcotest.fail "expected a manifest error"
    | Error _ -> ()
  in
  bad {|{ "jobs": [] }|};
  bad {|{ "schema": "qcec-manifest/v2", "jobs": [] }|};
  bad {|{ "schema": "qcec-manifest/v1" }|};
  bad {|{ "schema": "qcec-manifest/v1", "jobs": [ { "a": "x.qasm" } ] }|};
  bad
    {|{ "schema": "qcec-manifest/v1",
        "jobs": [ { "a": "x.qasm", "b": "y.qasm", "strategy": "nope" } ] }|};
  match Manifest.pair_files [ "a"; "b"; "c" ] with
  | Ok _ -> Alcotest.fail "odd file count must be rejected"
  | Error _ ->
    (match Manifest.pair_files [ "a"; "b"; "c"; "d" ] with
     | Ok pairs ->
       Alcotest.(check int) "consecutive pairing" 2 (List.length pairs)
     | Error e -> Alcotest.fail e)

(* -- qcec-result/v1 round trip ------------------------------------------ *)

let gen_result =
  let open QCheck.Gen in
  let small_float = map (fun i -> float_of_int i /. 1024.0) (int_bound 5_000_000) in
  let label = map (fun i -> Printf.sprintf "job %d \"quoted\"" i) small_nat in
  let verdict =
    map
      (fun ((((equivalent, exactly_equal), cached), strategy), ((t1, t2), (q, p))) ->
        Job.Verdict
          { Job.equivalent
          ; exactly_equal
          ; strategy
          ; t_transform = t1
          ; t_check = t2
          ; transformed_qubits = q
          ; peak_nodes = p
          ; cached
          })
      (pair
         (pair
            (pair (pair bool bool) bool)
            (oneofl [ "proportional"; "lookahead"; "simulation(16)" ]))
         (pair (pair small_float small_float) (pair small_nat small_nat)))
  in
  let failure =
    map2
      (fun reason msg -> Job.Failed { reason; message = msg })
      (oneofl
         [ Job.Timeout; Job.Lint_error; Job.Parse_error; Job.Non_unitary
         ; Job.Rejected; Job.Node_limit; Job.Crash ])
      (map (Printf.sprintf "error #%d: \\ \"bad\"\n") small_nat)
  in
  let metrics =
    map
      (fun vs ->
        List.mapi (fun i v -> (Printf.sprintf "test.metric.%02d" i, v)) vs)
      (small_list small_nat)
  in
  map
    (fun ((((index, label), files), outcome), (((duration, attempts), (worker, seed)), metrics)) ->
      { Job.index
      ; label
      ; files_checked = files
      ; outcome
      ; duration
      ; attempts
      ; worker = fst worker
      ; seed
      ; backend = snd worker
      ; metrics
      })
    (pair
       (pair
          (pair (pair small_nat label)
             (opt (pair (map (Printf.sprintf "a%d.qasm") small_nat)
                     (map (Printf.sprintf "b%d.qasm") small_nat))))
          (oneof [ verdict; failure ]))
       (pair
          (pair (pair small_float small_nat)
             (pair (pair small_nat (oneofl [ "classic"; "packed" ])) (opt small_int)))
          metrics))

let prop_result_roundtrip =
  QCheck.Test.make ~count:200 ~name:"qcec-result/v1 JSONL round trip"
    (QCheck.make gen_result) (fun r ->
      match Job.of_string (Obs.Json.to_string (Job.to_json r)) with
      | Ok r' -> r = r'
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

(* -- the DD package is single-domain ------------------------------------ *)

let test_pkg_owner_guard () =
  let p = Dd.Pkg.create () in
  ignore (Dd.Pkg.weight p Cxnum.Cx.one);
  let raised =
    Domain.spawn (fun () ->
      match Dd.Pkg.weight p Cxnum.Cx.one with
      | _ -> false
      | exception Dd.Pkg.Cross_domain_use _ -> true)
    |> Domain.join
  in
  Alcotest.(check bool) "cross-domain use raises" true raised;
  (* a package created inside a domain is owned by it *)
  let ok =
    Domain.spawn (fun () ->
      let p = Dd.Pkg.create () in
      match Dd.Pkg.weight p Cxnum.Cx.one with _ -> true)
    |> Domain.join
  in
  Alcotest.(check bool) "same-domain use is fine" true ok

let suite =
  [ Alcotest.test_case "queue drains, results ordered" `Quick test_queue_drains
  ; Alcotest.test_case "streaming callback" `Quick test_streaming_callback
  ; Alcotest.test_case "verdicts independent of worker count" `Quick
      test_worker_count_equivalence
  ; Alcotest.test_case "seeded stimuli deterministic" `Quick
      test_seeded_stimuli_deterministic
  ; Alcotest.test_case "timeout and bounded retry" `Quick test_timeout_and_retries
  ; Alcotest.test_case "node-limit cancellation" `Quick test_node_limit
  ; Alcotest.test_case "bad jobs never abort the batch" `Quick
      test_bad_jobs_do_not_abort
  ; Alcotest.test_case "transform=false rejects dynamic inputs" `Quick
      test_reject_dynamic
  ; Alcotest.test_case "batch metrics merge worker registries" `Quick
      test_batch_metrics
  ; Alcotest.test_case "manifest compilation" `Quick test_manifest_compile
  ; Alcotest.test_case "manifest rejects malformed input" `Quick
      test_manifest_errors
  ; QCheck_alcotest.to_alcotest prop_result_roundtrip
  ; Alcotest.test_case "DD package owner-domain guard" `Quick test_pkg_owner_guard
  ]
