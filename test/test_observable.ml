(* Observable / expectation-value tests across all three backends. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module Obs = Qsim.Observable

let dd_expectation c obs =
  let p = Dd.Pkg.create () in
  let state = Qsim.Dd_sim.simulate p c in
  Obs.expectation p state ~n:c.Circ.num_qubits obs

let test_basis_states () =
  let zero = Circ.make ~name:"z" ~qubits:2 ~cbits:0 [] in
  Util.check_float "<Z0> on |00>" 1.0 (dd_expectation zero (Obs.z 0));
  let one = Circ.make ~name:"o" ~qubits:2 ~cbits:0 [ Op.apply Gates.X 1 ] in
  Util.check_float "<Z1> on |10>" (-1.0) (dd_expectation one (Obs.z 1));
  Util.check_float "<Z0> unaffected" 1.0 (dd_expectation one (Obs.z 0));
  Util.check_float "number operator" 1.0 (dd_expectation one (Obs.number [ 0; 1 ]))

let test_superposition () =
  let plus = Circ.make ~name:"p" ~qubits:1 ~cbits:0 [ Op.apply Gates.H 0 ] in
  Util.check_float "<Z> on |+>" 0.0 (dd_expectation plus (Obs.z 0));
  Util.check_float "<X> on |+>" 1.0
    (dd_expectation plus [ { Obs.coefficient = 1.0; paulis = [ (0, Obs.X) ] } ]);
  let y_state =
    (* |0> + i|1> is the +1 eigenstate of Y: H then S *)
    Circ.make ~name:"y" ~qubits:1 ~cbits:0 [ Op.apply Gates.H 0; Op.apply Gates.S 0 ]
  in
  Util.check_float "<Y> eigenstate" 1.0
    (dd_expectation y_state [ { Obs.coefficient = 1.0; paulis = [ (0, Obs.Y) ] } ])

let test_bell_correlations () =
  let bell =
    Circ.make ~name:"b" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0; Op.controlled Gates.X ~control:0 ~target:1 ]
  in
  Util.check_float "<Z0 Z1> on Bell" 1.0 (dd_expectation bell (Obs.zz 0 1));
  Util.check_float "<Z0> on Bell" 0.0 (dd_expectation bell (Obs.z 0));
  Util.check_float "parity" 1.0 (dd_expectation bell (Obs.parity [ 0; 1 ]));
  Util.check_float "<X0 X1> on Bell" 1.0
    (dd_expectation bell
       [ { Obs.coefficient = 1.0; paulis = [ (0, Obs.X); (1, Obs.X) ] } ])

let test_combinators () =
  let c = Circ.make ~name:"c" ~qubits:2 ~cbits:0 [ Op.apply Gates.X 0 ] in
  let obs = Obs.add (Obs.scale 2.0 (Obs.z 0)) (Obs.scale 3.0 (Obs.z 1)) in
  Util.check_float "2<Z0> + 3<Z1>" 1.0 (dd_expectation c obs)

let test_density_backend () =
  (* mixed state: H then recorded measurement -> <Z> = 0, <X> = 0 *)
  let c =
    Circ.make ~name:"m" ~qubits:1 ~cbits:1
      [ Op.apply Gates.H 0; Op.Measure { qubit = 0; cbit = 0 } ]
  in
  let d = Qsim.Density.run c in
  Util.check_float "<Z> of mixture" 0.0 (Obs.expectation_density d (Obs.z 0));
  Util.check_float "<X> decohered" 0.0
    (Obs.expectation_density d [ { Obs.coefficient = 1.0; paulis = [ (0, Obs.X) ] } ])

let test_rejects_duplicates () =
  let c = Circ.make ~name:"d" ~qubits:1 ~cbits:0 [] in
  match
    dd_expectation c [ { Obs.coefficient = 1.0; paulis = [ (0, Obs.Z); (0, Obs.X) ] } ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate-qubit rejection"

let prop_backends_agree =
  QCheck.Test.make ~name:"DD = dense = density expectations (random)" ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 0 2))
    (fun (seed, which) ->
      let qubits = 3 in
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits ~gates:12 in
      let obs =
        match which with
        | 0 -> Obs.z (seed mod qubits)
        | 1 -> Obs.zz 0 2
        | _ ->
          [ { Obs.coefficient = 0.7; paulis = [ (0, Obs.X); (1, Obs.Y) ] }
          ; { Obs.coefficient = -0.3; paulis = [ (2, Obs.Z) ] }
          ]
      in
      let p = Dd.Pkg.create () in
      let dd = Obs.expectation p (Qsim.Dd_sim.simulate p c) ~n:qubits obs in
      let dense = Obs.expectation_dense (Qsim.Statevector.run_unitary c) obs in
      let density = Obs.expectation_density (Qsim.Density.run c) obs in
      Float.abs (dd -. dense) < 1e-8 && Float.abs (dd -. density) < 1e-8)

let test_compaction () =
  (* exercise Pkg.compact: build junk, keep one root, table shrinks *)
  let p = Dd.Pkg.create () in
  let n = 6 in
  let keep = Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed:1 ~qubits:n ~gates:30) in
  for seed = 2 to 12 do
    ignore (Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed ~qubits:n ~gates:30))
  done;
  let before = (Dd.Pkg.stats p).Dd.Pkg.vector_nodes in
  let r = Dd.Pkg.root_v p keep in
  Dd.Pkg.compact p;
  let keep = Dd.Pkg.vroot_edge r in
  let after = (Dd.Pkg.stats p).Dd.Pkg.vector_nodes in
  Alcotest.(check bool) (Fmt.str "table shrank (%d -> %d)" before after) true
    (after < before);
  Alcotest.(check int) "exactly the root's nodes survive" (Dd.Vec.node_count keep) after;
  (* the package must still be fully usable *)
  let h = Dd.Pkg.gate p ~n ~controls:[] ~target:0 (Gates.matrix Gates.H) in
  let moved = Dd.Mat.apply p h keep in
  let back = Dd.Mat.apply p h moved in
  Util.check_float "round trip after compaction" 1.0 (Dd.Vec.fidelity p keep back);
  Dd.Pkg.release_v p r

let suite =
  [ Alcotest.test_case "basis-state expectations" `Quick test_basis_states
  ; Alcotest.test_case "superpositions" `Quick test_superposition
  ; Alcotest.test_case "bell correlations" `Quick test_bell_correlations
  ; Alcotest.test_case "combinators" `Quick test_combinators
  ; Alcotest.test_case "density backend" `Quick test_density_backend
  ; Alcotest.test_case "duplicate qubits rejected" `Quick test_rejects_duplicates
  ; Alcotest.test_case "table compaction" `Quick test_compaction
  ; Util.qtest prop_backends_agree
  ]
