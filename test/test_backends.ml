(* Differential testing across DD backends: [Dd.Classic] (hash-consed
   nodes) and [Dd.Packed] (int-indexed arrays) are independent
   implementations of the same canonical normal form, so every flow must
   agree between them — verdict for verdict, bitstring for bitstring,
   node count for node count.  Plus the runtime registry the CLI and
   engine dispatch through, and the cross-backend verdict cache. *)

module Circ = Circuit.Circ
module Op = Circuit.Op
module Pair = Algorithms.Pair
module Vc = Qcec.Verify.Make (Dd.Classic)
module Vp = Qcec.Verify.Make (Dd.Packed)
module Sim_c = Qsim.Dd_sim.Make (Dd.Classic)
module Sim_p = Qsim.Dd_sim.Make (Dd.Packed)

(* -- registry ---------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check (list string))
    "both built-in backends registered, sorted" [ "classic"; "packed" ]
    (Dd.Registry.names ());
  Alcotest.(check string) "classic is the default" "classic" Dd.Registry.default;
  Alcotest.(check bool) "find classic" true (Dd.Registry.find "classic" <> None);
  Alcotest.(check bool) "find packed" true (Dd.Registry.find "packed" <> None);
  Alcotest.(check bool) "unknown name resolves to None" true
    (Dd.Registry.find "bogus" = None)

(* The CLI and engine reject unknown backends before any work: the CLI
   exits 2 (exercised by the CI backend-matrix leg), the manifest
   compiler — tested here — fails the whole batch up front. *)
let test_manifest_rejects_unknown_backend () =
  let manifest name =
    Obs.Json.Obj
      [ ("schema", Obs.Json.String "qcec-manifest/v1")
      ; ("defaults", Obs.Json.Obj [ ("backend", Obs.Json.String name) ])
      ; ( "jobs"
        , Obs.Json.List
            [ Obs.Json.Obj
                [ ("a", Obs.Json.String "a.qasm"); ("b", Obs.Json.String "b.qasm") ]
            ] )
      ]
  in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match Engine.Manifest.of_json (manifest "bogus") with
   | Ok _ -> Alcotest.fail "unknown backend compiled"
   | Error msg ->
     Alcotest.(check bool)
       (Fmt.str "error names the backend: %s" msg)
       true
       (contains ~sub:"unknown backend" msg));
  match Engine.Manifest.of_json (manifest "packed") with
  | Ok m ->
    List.iter
      (fun (s : Engine.Job.spec) ->
        Alcotest.(check string) "defaults propagate" "packed" s.Engine.Job.backend)
      m.Engine.Manifest.jobs
  | Error msg -> Alcotest.failf "valid backend rejected: %s" msg

(* -- cross-backend verdict cache --------------------------------------- *)

(* The cache key deliberately excludes the backend: verdicts are
   bit-identical across backends, so a verdict computed under one must be
   served warm under the other. *)
let test_cache_cross_backend () =
  let pair = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:3 6) in
  let a = pair.Pair.static_circuit and b = pair.Pair.dynamic_circuit in
  let perm = pair.Pair.dyn_to_static in
  let check_direction name cold warm =
    let store = Cache_store.Store.in_memory () in
    let (rc : Qcec.Verify.functional_result) = cold ~perm ~cache:store a b in
    Alcotest.(check bool) (name ^ ": cold leg computed") false rc.Qcec.Verify.cached;
    let (rw : Qcec.Verify.functional_result) = warm ~perm ~cache:store a b in
    Alcotest.(check bool) (name ^ ": warm leg served from store") true
      rw.Qcec.Verify.cached;
    Alcotest.(check bool)
      (name ^ ": verdicts agree")
      true
      (rc.Qcec.Verify.equivalent = rw.Qcec.Verify.equivalent
      && rc.Qcec.Verify.exactly_equal = rw.Qcec.Verify.exactly_equal)
  in
  check_direction "classic -> packed"
    (fun ~perm ~cache a b -> Vc.functional ~perm ~cache a b)
    (fun ~perm ~cache a b -> Vp.functional ~perm ~cache a b);
  check_direction "packed -> classic"
    (fun ~perm ~cache a b -> Vp.functional ~perm ~cache a b)
    (fun ~perm ~cache a b -> Vc.functional ~perm ~cache a b)

(* -- differential properties ------------------------------------------- *)

let functional_fingerprint (r : Qcec.Verify.functional_result) =
  ( r.Qcec.Verify.equivalent
  , r.Qcec.Verify.exactly_equal
  , r.Qcec.Verify.transformed_qubits
  , r.Qcec.Verify.peak_nodes )

(* half the cases get a deliberate discrepancy so the [false] verdict is
   exercised differentially too, not just the happy path *)
let perturb c =
  { c with
    Circ.name = c.Circ.name ^ "+x"
  ; Circ.ops = c.Circ.ops @ [ Op.apply Circuit.Gates.X 0 ]
  }

let prop_unitary_functional =
  QCheck.Test.make ~name:"functional verdicts agree on random unitary pairs"
    ~count:60
    QCheck.(pair (int_range 1 5) (int_range 0 100000))
    (fun (n, seed) ->
      let a = Algorithms.Random_circuit.unitary ~seed ~qubits:n ~gates:12 in
      let b = if seed mod 2 = 0 then a else perturb a in
      functional_fingerprint (Vc.functional a b)
      = functional_fingerprint (Vp.functional a b))

let prop_measure_terminal_functional =
  QCheck.Test.make
    ~name:"functional verdicts agree on measure-terminal pairs" ~count:40
    QCheck.(pair (int_range 1 4) (int_range 0 100000))
    (fun (n, seed) ->
      let u = Algorithms.Random_circuit.unitary ~seed ~qubits:n ~gates:10 in
      let measured c =
        Circ.make ~name:(c.Circ.name ^ "+measure") ~qubits:n ~cbits:n
          (c.Circ.ops @ List.init n (fun q -> Op.Measure { qubit = q; cbit = q }))
      in
      let a = measured u in
      let b = if seed mod 2 = 0 then a else measured (perturb u) in
      functional_fingerprint (Vc.functional a b)
      = functional_fingerprint (Vp.functional a b))

let prop_dynamic_transformed_functional =
  QCheck.Test.make
    ~name:"functional verdicts agree on dynamic-vs-transformed pairs" ~count:40
    QCheck.(pair (int_range 2 4) (int_range 0 100000))
    (fun (n, seed) ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:n ~cbits:2 ~ops:12 in
      let static = Transform.Dynamic.transform dyn in
      functional_fingerprint (Vc.functional static dyn)
      = functional_fingerprint (Vp.functional static dyn))

(* the Section 5 flow: the extracted distribution (the would-be
   counterexample bitstrings and their probabilities) must be identical
   across backends, for agreeing and disagreeing pairs alike *)
let prop_distribution_bitstrings =
  QCheck.Test.make
    ~name:"distribution verdicts and bitstrings agree across backends"
    ~count:30
    QCheck.(pair (int_range 2 4) (int_range 0 100000))
    (fun (n, seed) ->
      let dyn = Algorithms.Random_circuit.dynamic ~seed ~qubits:n ~cbits:2 ~ops:10 in
      let static = Transform.Dynamic.transform dyn in
      let static =
        if seed mod 2 = 0 then static
        else
          (* X up front skews the outcome statistics: the non-equal
             verdict must also agree backend-to-backend *)
          { static with
            Circ.name = static.Circ.name ^ "+x"
          ; Circ.ops = Op.apply Circuit.Gates.X 0 :: static.Circ.ops
          }
      in
      let rc = Vc.distribution dyn static and rp = Vp.distribution dyn static in
      let sorted d = List.sort compare d in
      let close a b =
        List.length a = List.length b
        && List.for_all2
             (fun (ka, pa) (kb, pb) -> ka = kb && Float.abs (pa -. pb) < 1e-12)
             (sorted a) (sorted b)
      in
      rc.Qcec.Verify.distributions_equal = rp.Qcec.Verify.distributions_equal
      && Float.abs (rc.Qcec.Verify.total_variation -. rp.Qcec.Verify.total_variation)
         < 1e-12
      && close rc.Qcec.Verify.dynamic_distribution rp.Qcec.Verify.dynamic_distribution
      && close rc.Qcec.Verify.static_distribution rp.Qcec.Verify.static_distribution)

(* simulation end state: same final node count, same amplitudes — the
   packed layout must not change what gets merged, only where it lives *)
let prop_simulation_node_counts =
  QCheck.Test.make ~name:"simulated states match node-for-node" ~count:60
    QCheck.(pair (int_range 1 6) (int_range 0 100000))
    (fun (n, seed) ->
      let c = Algorithms.Random_circuit.unitary ~seed ~qubits:n ~gates:15 in
      let pc = Dd.Classic.Pkg.create () and pp = Dd.Packed.Pkg.create () in
      let vc = Sim_c.simulate pc c and vp = Sim_p.simulate pp c in
      Dd.Classic.Vec.node_count pc vc = Dd.Packed.Vec.node_count pp vp
      && Array.for_all2
           (fun a b -> Util.cx_close ~tol:1e-12 a b)
           (Dd.Classic.Vec.to_array pc vc ~n)
           (Dd.Packed.Vec.to_array pp vp ~n))

let suite =
  [ Alcotest.test_case "registry names/find/default" `Quick test_registry
  ; Alcotest.test_case "manifest rejects unknown backends" `Quick
      test_manifest_rejects_unknown_backend
  ; Alcotest.test_case "verdict cache crosses backends" `Quick
      test_cache_cross_backend
  ; Util.qtest prop_unitary_functional
  ; Util.qtest prop_measure_terminal_functional
  ; Util.qtest prop_dynamic_transformed_functional
  ; Util.qtest prop_distribution_bitstrings
  ; Util.qtest prop_simulation_node_counts
  ]
