OPENQASM 2.0;
include "qelib1.inc";
// deliberately smelly, but only warning/info findings: a gate after the
// final measurement (QA002), a dead classical write (QA003), an unused
// qubit (QA001) and a redundant reset (QA005)
qreg q[3];
creg c[1];
reset q[1];
h q[0];
measure q[0] -> c[0];
x q[0];
measure q[1] -> c[0];
