OPENQASM 3.0;
// one-qubit teleportation: measurements feed classical corrections,
// so the circuit is dynamic but has no error-severity lint findings
qubit[3] q;
bit[2] c;
ry(0.7) q[0];
h q[1];
cx q[1], q[2];
cx q[0], q[1];
h q[0];
c[0] = measure q[0];
c[1] = measure q[1];
if (c[1] == 1) {
  x q[2];
}
if (c[0] == 1) {
  z q[2];
}
