(* Observability layer tests: counter/gauge semantics, the global on/off
   switch, span nesting, and JSON serialization round-tripping through the
   parser.  Collection is restored to "off" after every test so the rest of
   the suite runs on the zero-cost path. *)

module M = Obs.Metrics
module Span = Obs.Span
module Json = Obs.Json

let with_metrics f =
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled false;
      M.reset ();
      Span.reset ())
    f

let test_counter_disabled () =
  let c = M.counter "test.obs.disabled" in
  M.set_enabled false;
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "disabled incr is a no-op" 0 (M.value c)

let test_counter_increment_and_reset () =
  with_metrics (fun () ->
    let c = M.counter "test.obs.counter" in
    Alcotest.(check int) "starts at zero" 0 (M.value c);
    M.incr c;
    M.incr c;
    M.add c 40;
    Alcotest.(check int) "incr + add accumulate" 42 (M.value c);
    Alcotest.(check bool) "same name, same counter" true
      (M.counter "test.obs.counter" == c);
    M.reset ();
    Alcotest.(check int) "reset zeroes" 0 (M.value c))

let test_gauge_peak () =
  with_metrics (fun () ->
    let g = M.gauge "test.obs.gauge" in
    M.observe g 3;
    M.observe g 17;
    M.observe g 5;
    Alcotest.(check int) "peak keeps the maximum" 17 (M.peak g))

let test_snapshot_diff () =
  with_metrics (fun () ->
    let c = M.counter "test.obs.diffc" in
    let g = M.gauge "test.obs.diffg" in
    M.incr c;
    M.observe g 10;
    let before = M.snapshot () in
    M.add c 5;
    M.observe g 30;
    let d = M.diff ~before ~after:(M.snapshot ()) in
    Alcotest.(check int) "counters subtract" 5 (M.find d "test.obs.diffc");
    Alcotest.(check int) "gauges keep the after-value" 30 (M.find d "test.obs.diffg");
    Alcotest.(check int) "absent names read zero" 0 (M.find d "no.such.metric"))

let test_span_nesting () =
  with_metrics (fun () ->
    Span.reset ();
    let r =
      Span.with_ "outer" (fun () ->
        Span.with_ "inner" (fun () -> 1 + 1)
        + Span.with_ "inner" (fun () -> 2))
    in
    Alcotest.(check int) "spans are transparent" 4 r;
    let report = Span.report () in
    let entry path =
      match List.find_opt (fun (e : Span.entry) -> e.path = path) report with
      | Some e -> e
      | None -> Alcotest.failf "missing span path %s" path
    in
    Alcotest.(check int) "outer completes once" 1 (entry "outer").count;
    Alcotest.(check int) "inner nests under outer, twice" 2 (entry "outer/inner").count;
    Alcotest.(check bool) "durations are non-negative" true
      (List.for_all (fun (e : Span.entry) -> e.seconds >= 0.0) report))

let test_domain_local_merge_absorb () =
  with_metrics (fun () ->
    let c = M.counter "test.obs.domc" in
    let g = M.gauge "test.obs.domg" in
    M.incr c;
    M.observe g 5;
    let worker =
      Domain.spawn (fun () ->
        M.add c 10;
        M.observe g 40;
        M.snapshot ())
      |> Domain.join
    in
    (* registries are domain-local: worker increments are invisible here *)
    Alcotest.(check int) "worker work does not leak across domains" 1 (M.value c);
    Alcotest.(check int) "worker snapshot sees only its own work" 10
      (M.find worker "test.obs.domc");
    let merged = M.merge [ M.snapshot (); worker ] in
    Alcotest.(check int) "merge sums counters" 11 (M.find merged "test.obs.domc");
    Alcotest.(check int) "merge maxes gauges" 40 (M.find merged "test.obs.domg");
    M.absorb worker;
    Alcotest.(check int) "absorb folds counters into this domain" 11 (M.value c);
    Alcotest.(check int) "absorb maxes gauges" 40 (M.peak g))

let test_span_absorb () =
  with_metrics (fun () ->
    Span.reset ();
    Span.with_ "absorbed" (fun () -> ());
    let worker =
      Domain.spawn (fun () ->
        Span.with_ "absorbed" (fun () -> ());
        Span.with_ "absorbed" (fun () -> ());
        Span.report ())
      |> Domain.join
    in
    Span.absorb worker;
    match List.find_opt (fun (e : Span.entry) -> e.path = "absorbed") (Span.report ()) with
    | Some e ->
      Alcotest.(check int) "absorbed counts accumulate" 3 e.count;
      Alcotest.(check bool) "absorbed durations accumulate" true (e.seconds >= 0.0)
    | None -> Alcotest.fail "absorbed span path missing")

let test_span_survives_exception () =
  with_metrics (fun () ->
    Span.reset ();
    (try Span.with_ "boom" (fun () -> failwith "expected") with Failure _ -> ());
    let report = Span.report () in
    Alcotest.(check int) "raising span still recorded" 1
      (List.length (List.filter (fun (e : Span.entry) -> e.path = "boom") report));
    (* the nesting stack was unwound: a new span is a root again *)
    Span.with_ "after" (fun () -> ());
    Alcotest.(check bool) "stack unwound after raise" true
      (List.exists (fun (e : Span.entry) -> e.path = "after") (Span.report ())))

let sample_json =
  Json.Obj
    [ ("schema", Json.String "qcec-stats/v1")
    ; ("ok", Json.Bool true)
    ; ("nothing", Json.Null)
    ; ("count", Json.Int 42)
    ; ("negative", Json.Int (-7))
    ; ("t", Json.Float 0.0025112719)
    ; ("big", Json.Float 1.5e300)
    ; ("weird \"name\"\n", Json.String "tab\there \\ slash / unicode \xe2\x9c\x93")
    ; ("empty_list", Json.List [])
    ; ("empty_obj", Json.Obj [])
    ; ( "rows"
      , Json.List
          [ Json.Obj [ ("n", Json.Int 8); ("t_ver", Json.Float 0.001) ]
          ; Json.Obj [ ("n", Json.Int 9); ("t_ver", Json.Null) ]
          ] )
    ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      let s = Json.to_string ~pretty sample_json in
      let parsed = Json.of_string s in
      Alcotest.(check bool)
        (Fmt.str "round trip (pretty=%b)" pretty)
        true
        (Json.equal sample_json parsed))
    [ false; true ]

let test_json_parser_strictness () =
  let rejects s =
    Alcotest.(check bool) (Fmt.str "rejects %S" s) true (Json.of_string_opt s = None)
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\":1,}";
  rejects "nul";
  rejects "1 2";
  rejects "\"unterminated";
  rejects "{\"a\" 1}";
  let accepts s expected =
    match Json.of_string_opt s with
    | Some v -> Alcotest.(check bool) (Fmt.str "parses %S" s) true (Json.equal expected v)
    | None -> Alcotest.failf "failed to parse %S" s
  in
  accepts "  [1, -2.5e3, \"x\", null, true] "
    (Json.List
       [ Json.Int 1; Json.Float (-2500.0); Json.String "x"; Json.Null; Json.Bool true ]);
  accepts "\"a\\u00e9\\u2713b\"" (Json.String "a\xc3\xa9\xe2\x9c\x93b")

let test_json_non_finite_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_metrics_to_json () =
  with_metrics (fun () ->
    let c = M.counter "test.obs.jsonc" in
    M.add c 7;
    let j = M.to_json (M.snapshot ()) in
    (* serialize and re-parse: the snapshot object must survive *)
    let parsed = Json.of_string (Json.to_string j) in
    match Json.member "test.obs.jsonc" parsed with
    | Some (Json.Int 7) -> ()
    | _ -> Alcotest.fail "snapshot JSON lost a counter")

let test_clock_monotonic () =
  let a = Obs.Clock.now () in
  let b = Obs.Clock.now () in
  Alcotest.(check bool) "clock never goes backwards" true (b >= a);
  Alcotest.(check bool) "elapsed is non-negative" true
    (Obs.Clock.elapsed_s ~since:(Obs.Clock.now_ns ()) >= 0.0)

let test_verify_reports_metrics () =
  (* end-to-end: a functional check with collection on yields nonzero DD
     counters in its [metrics] field, and none with collection off *)
  let pair = Algorithms.Qft.make 4 in
  let check () =
    Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static
      pair.Algorithms.Pair.static_circuit pair.Algorithms.Pair.dynamic_circuit
  in
  let off = check () in
  Alcotest.(check int) "metrics are zero when disabled" 0
    (List.fold_left (fun acc (_, v) -> acc + abs v) 0 off.Qcec.Verify.metrics);
  with_metrics (fun () ->
    let on = check () in
    Alcotest.(check bool) "equivalent" true on.Qcec.Verify.equivalent;
    Alcotest.(check bool) "unique-table inserts recorded" true
      (M.find on.Qcec.Verify.metrics "dd.unique.mat.inserts" > 0);
    Alcotest.(check bool) "kernel cache observed" true
      (M.find on.Qcec.Verify.metrics "dd.kernel.hits"
       + M.find on.Qcec.Verify.metrics "dd.kernel.misses"
       > 0);
    (* the generic path still reports through the mm cache *)
    let generic =
      Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static
        ~use_kernels:false pair.Algorithms.Pair.static_circuit
        pair.Algorithms.Pair.dynamic_circuit
    in
    Alcotest.(check bool) "mm cache observed" true
      (M.find generic.Qcec.Verify.metrics "dd.cache.mm.hits"
       + M.find generic.Qcec.Verify.metrics "dd.cache.mm.misses"
       > 0);
    Alcotest.(check bool) "timings non-negative" true
      (on.Qcec.Verify.t_transform >= 0.0 && on.Qcec.Verify.t_check >= 0.0))

let suite =
  [ Alcotest.test_case "counters off by default" `Quick test_counter_disabled
  ; Alcotest.test_case "counter increment and reset" `Quick
      test_counter_increment_and_reset
  ; Alcotest.test_case "gauge records peak" `Quick test_gauge_peak
  ; Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff
  ; Alcotest.test_case "domain-local registries, merge, absorb" `Quick
      test_domain_local_merge_absorb
  ; Alcotest.test_case "span absorb across domains" `Quick test_span_absorb
  ; Alcotest.test_case "spans nest" `Quick test_span_nesting
  ; Alcotest.test_case "span survives exception" `Quick test_span_survives_exception
  ; Alcotest.test_case "json round trip" `Quick test_json_roundtrip
  ; Alcotest.test_case "json parser strictness" `Quick test_json_parser_strictness
  ; Alcotest.test_case "json non-finite floats" `Quick test_json_non_finite_floats
  ; Alcotest.test_case "metrics snapshot to json" `Quick test_metrics_to_json
  ; Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic
  ; Alcotest.test_case "verify reports metrics" `Quick test_verify_reports_metrics
  ]
