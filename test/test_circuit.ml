(* Circuit IR tests: validation, queries, transformations, gate counts of
   the paper's benchmark families, drawing. *)

module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module B = Circuit.Builder

let test_validation () =
  let mk ops = Circ.make ~name:"t" ~qubits:2 ~cbits:1 ops in
  let expect_invalid msg ops =
    match mk ops with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected rejection: %s" msg
  in
  expect_invalid "target out of range" [ Op.apply Gates.X 2 ];
  expect_invalid "control = target" [ Op.controlled Gates.X ~control:1 ~target:1 ];
  expect_invalid "swap with itself" [ Op.Swap (0, 0) ];
  expect_invalid "cbit out of range" [ Op.Measure { qubit = 0; cbit = 3 } ];
  expect_invalid "condition on measure"
    [ Op.Cond
        { cond = { bits = [ 0 ]; value = 1 }; op = Op.Measure { qubit = 0; cbit = 0 } }
    ];
  expect_invalid "condition value out of range"
    [ Op.Cond { cond = { bits = [ 0 ]; value = 2 }; op = Op.apply Gates.X 0 } ];
  expect_invalid "duplicate controls"
    [ Op.Apply
        { gate = Gates.X
        ; controls = [ { cq = 0; pos = true }; { cq = 0; pos = false } ]
        ; target = 1
        }
    ];
  (* and a valid circuit goes through *)
  ignore
    (mk [ Op.apply Gates.H 0; Op.Measure { qubit = 0; cbit = 0 };
          Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 1) ])

let test_is_dynamic () =
  let static =
    Circ.make ~name:"s" ~qubits:2 ~cbits:2
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.Measure { qubit = 1; cbit = 1 }
      ]
  in
  Alcotest.(check bool) "final measurements are static" false (Circ.is_dynamic static);
  let reset =
    Circ.make ~name:"r" ~qubits:1 ~cbits:0 [ Op.apply Gates.H 0; Op.Reset 0 ]
  in
  Alcotest.(check bool) "reset is dynamic" true (Circ.is_dynamic reset);
  let midmeas =
    Circ.make ~name:"m" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 }; Op.apply Gates.X 0 ]
  in
  Alcotest.(check bool) "mid-circuit measurement is dynamic" true
    (Circ.is_dynamic midmeas);
  let meas_then_other =
    Circ.make ~name:"m2" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 }; Op.apply Gates.X 1 ]
  in
  Alcotest.(check bool) "measurement before unrelated gate is static" false
    (Circ.is_dynamic meas_then_other)

let test_op_counts_paper_formulas () =
  (* Table 1's |G| columns follow closed forms our generators must hit *)
  let qft = Algorithms.Qft.static 23 in
  Alcotest.(check int) "QFT23 gate count" 276 (Circ.gate_count qft);
  let qft_dyn = Algorithms.Qft.dynamic 23 in
  Alcotest.(check int) "dynamic QFT23 total ops" 321 (Circ.total_ops qft_dyn);
  let qpe = Algorithms.Qpe.static ~theta:0.3 ~bits:42 in
  Alcotest.(check int) "QPE(n=43) gate count" 988 (Circ.gate_count qpe);
  let qpe_dyn = Algorithms.Qpe.dynamic ~theta:0.3 ~bits:42 in
  Alcotest.(check int) "dynamic QPE(n=43) total ops" 1071 (Circ.total_ops qpe_dyn);
  let s = Algorithms.Bv.hidden_string ~seed:3 121 in
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s in
  let bv = Algorithms.Bv.static s in
  Alcotest.(check int) "BV121 gate count" (2 + 242 + ones) (Circ.gate_count bv);
  let bv_dyn = Algorithms.Bv.dynamic s in
  Alcotest.(check int) "dynamic BV121 total ops"
    (2 + (3 * 121) + ones + 120)
    (Circ.total_ops bv_dyn)

let test_inverse () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0
      ; Op.apply (Gates.RZ 0.4) 1
      ; Op.controlled Gates.X ~control:0 ~target:1
      ; Op.apply Gates.S 0
      ]
  in
  let composed = Circ.append c (Circ.inverse c) in
  Util.check_circuit_unitary "inverse composes to identity-equal DD" composed;
  let p = Dd.Pkg.create () in
  let u = Qsim.Dd_sim.build_unitary p composed in
  Alcotest.(check bool) "C * C^-1 = I" true
    (Dd.Mat.is_identity p u ~n:2 ~up_to_phase:false)

let test_inverse_rejects_non_unitary () =
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:1 [ Op.Measure { qubit = 0; cbit = 0 } ]
  in
  match Circ.inverse c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected inverse to reject measurements"

let test_remap () =
  let c =
    Circ.make ~name:"c" ~qubits:3 ~cbits:0
      [ Op.apply Gates.X 0; Op.controlled Gates.X ~control:1 ~target:2 ]
  in
  let r = Circ.remap c ~perm:[| 2; 0; 1 |] in
  (match r.Circ.ops with
   | [ Op.Apply { target = 2; _ }; Op.Apply { controls = [ { cq = 0; _ } ]; target = 1; _ } ] ->
     ()
   | _ -> Alcotest.fail "remap did not rename as expected");
  (match Circ.remap c ~perm:[| 0; 0; 1 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected non-permutation rejection")

let test_gate_adjoints () =
  (* g * adjoint g = identity matrix, for the whole alphabet *)
  let gates =
    [ Gates.I; Gates.X; Gates.Y; Gates.Z; Gates.H; Gates.S; Gates.Sdg; Gates.T
    ; Gates.Tdg; Gates.SX; Gates.SXdg; Gates.RX 0.3; Gates.RY 1.7; Gates.RZ (-0.6)
    ; Gates.P 2.1; Gates.U2 (0.5, 1.5); Gates.U3 (0.8, -0.2, 0.9)
    ]
  in
  let module Cx = Cxnum.Cx in
  List.iter
    (fun g ->
      let u = Gates.matrix g and v = Gates.matrix (Gates.adjoint g) in
      (* product v * u must be the 2x2 identity *)
      let prod i j =
        Cx.add (Cx.mul v.((2 * i) + 0) u.(j)) (Cx.mul v.((2 * i) + 1) u.(2 + j))
      in
      Util.check_cx (Gates.name g ^ " adj 00") Cx.one (prod 0 0);
      Util.check_cx (Gates.name g ^ " adj 01") Cx.zero (prod 0 1);
      Util.check_cx (Gates.name g ^ " adj 10") Cx.zero (prod 1 0);
      Util.check_cx (Gates.name g ^ " adj 11") Cx.one (prod 1 1))
    gates

let test_to_u3 () =
  let module Cx = Cxnum.Cx in
  let gates =
    [ Gates.X; Gates.Y; Gates.Z; Gates.H; Gates.S; Gates.T; Gates.SX; Gates.SXdg
    ; Gates.RX 0.9; Gates.RY (-0.4); Gates.RZ 1.3; Gates.P 0.2; Gates.U2 (1.0, -1.0)
    ]
  in
  List.iter
    (fun g ->
      let u = Gates.matrix g in
      let v = Gates.matrix (Gates.to_u3 g) in
      let alpha = Gates.global_phase_to_u3 g in
      let phase = Cx.polar 1.0 alpha in
      Array.iteri
        (fun i x ->
          Util.check_cx (Fmt.str "%s to_u3 entry %d" (Gates.name g) i) x
            (Cx.mul phase v.(i)))
        u)
    gates

let test_builder_and_counts () =
  let b = B.create ~qubits:3 ~cbits:2 "demo" in
  B.h b 0;
  B.cx b 0 1;
  B.ccx b 0 1 2;
  B.swap b 1 2;
  B.measure b 0 0;
  B.reset b 1;
  B.if_bit b ~bit:0 ~value:true (Op.apply Gates.Z 2);
  B.barrier b [ 0; 1; 2 ];
  let c = B.finish b in
  let counts = Circ.op_counts c in
  Alcotest.(check int) "gates" 5 counts.Circ.gates;
  Alcotest.(check int) "measurements" 1 counts.Circ.measurements;
  Alcotest.(check int) "resets" 1 counts.Circ.resets;
  Alcotest.(check int) "conditioned" 1 counts.Circ.conditioned;
  Alcotest.(check int) "barriers" 1 counts.Circ.barriers;
  Alcotest.(check int) "total" 8 (Circ.total_ops c)

let test_draw () =
  let pair = Algorithms.Qpe.paper_example () in
  let lines = Circuit.Draw.render pair.Algorithms.Pair.dynamic_circuit in
  Alcotest.(check bool) "drawing has lines" true (List.length lines >= 3);
  let any_box =
    List.exists (fun l -> String.length l > 0 && String.contains l '[') lines
  in
  Alcotest.(check bool) "drawing contains gate boxes" true any_box;
  (* angles render as pi fractions *)
  let text = String.concat "\n" lines in
  let contains_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pi fraction label" true (contains_sub text "pi")

let test_stats () =
  let c =
    Circ.make ~name:"st" ~qubits:3 ~cbits:2
      [ Op.apply Gates.H 0
      ; Op.apply Gates.H 1 (* parallel with the first: same layer *)
      ; Op.controlled Gates.X ~control:0 ~target:1
      ; Op.apply Gates.T 2 (* independent: still layer 1 *)
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.if_bit ~bit:0 ~value:true (Op.apply Gates.Z 2)
      ]
  in
  let s = Circuit.Stats.compute c in
  Alcotest.(check int) "two-qubit gates" 1 s.Circuit.Stats.two_qubit_gates;
  Alcotest.(check int) "unitary gates" 5 s.Circuit.Stats.unitary_gates;
  Alcotest.(check int) "measurements" 1 s.Circuit.Stats.measurements;
  (* depth: h(1) -> cx(2) -> measure(3) -> conditioned z(4): the condition
     chains through classical bit 0 even though qubit 2 was at layer 1 *)
  Alcotest.(check int) "depth includes classical dependency" 4 s.Circuit.Stats.depth;
  Alcotest.(check (array int)) "activity" [| 3; 2; 2 |] s.Circuit.Stats.qubit_activity

let test_stats_families () =
  (* QFT depth grows linearly-ish, never exceeds gate count *)
  let c = Algorithms.Qft.static 6 in
  let s = Circuit.Stats.compute c in
  Alcotest.(check bool) "depth <= ops" true (s.Circuit.Stats.depth <= Circ.total_ops c);
  Alcotest.(check int) "cp gates are two-qubit" 15 s.Circuit.Stats.two_qubit_gates

(* regression: [cbits_written] used to return [] for conditioned ops
   instead of recursing into them *)
let test_cbits_written_cond () =
  let m = Op.Measure { qubit = 0; cbit = 1 } in
  Alcotest.(check (list int)) "plain measure" [ 1 ] (Op.cbits_written m);
  Alcotest.(check (list int)) "conditioned measure still writes" [ 1 ]
    (Op.cbits_written (Op.if_bit ~bit:0 ~value:true m));
  Alcotest.(check (list int)) "nested condition" [ 1 ]
    (Op.cbits_written
       (Op.if_bit ~bit:2 ~value:false (Op.if_bit ~bit:0 ~value:true m)));
  Alcotest.(check (list int)) "conditioned gate writes nothing" []
    (Op.cbits_written (Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 0)))

let suite =
  [ Alcotest.test_case "operation validation" `Quick test_validation
  ; Alcotest.test_case "cbits_written through conditions" `Quick
      test_cbits_written_cond
  ; Alcotest.test_case "circuit statistics" `Quick test_stats
  ; Alcotest.test_case "statistics on families" `Quick test_stats_families
  ; Alcotest.test_case "is_dynamic" `Quick test_is_dynamic
  ; Alcotest.test_case "paper gate-count formulas" `Quick test_op_counts_paper_formulas
  ; Alcotest.test_case "circuit inverse" `Quick test_inverse
  ; Alcotest.test_case "inverse rejects non-unitary" `Quick
      test_inverse_rejects_non_unitary
  ; Alcotest.test_case "remap" `Quick test_remap
  ; Alcotest.test_case "gate adjoints" `Quick test_gate_adjoints
  ; Alcotest.test_case "to_u3 phases" `Quick test_to_u3
  ; Alcotest.test_case "builder and op counts" `Quick test_builder_and_counts
  ; Alcotest.test_case "ascii drawing" `Quick test_draw
  ]
