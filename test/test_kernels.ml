(* Direct gate-application kernels: every kernel must produce the same
   physical edge (same hash-consed node, same interned weight) as the
   generic [Pkg.gate] + [Mat.apply]/[Mat.mul] path — canonical
   normalization makes the results bit-identical, not merely close. *)

module Cx = Cxnum.Cx
module Gates = Circuit.Gates
module T = Dd.Types

let gate_pool =
  [| Gates.X; Gates.Y; Gates.Z; Gates.H; Gates.S; Gates.Sdg; Gates.T
   ; Gates.SX; Gates.RX 0.7; Gates.RY (-1.2); Gates.RZ 2.5; Gates.P 0.9
   ; Gates.U3 (1.1, 0.4, -2.2)
  |]

(* a random (target, controls, 2x2) on [n] wires; controls are distinct
   wires both above and below the target with random polarity *)
let random_gate_case st n =
  let target = Random.State.int st n in
  let n_controls = Random.State.int st (min 3 n) in
  let rec pick acc k =
    if k = 0 then acc
    else begin
      let q = Random.State.int st n in
      if q = target || List.mem_assoc q acc then pick acc k
      else pick ((q, Random.State.bool st) :: acc) (k - 1)
    end
  in
  let controls = pick [] n_controls in
  let g = gate_pool.(Random.State.int st (Array.length gate_pool)) in
  (target, controls, Gates.matrix g)

(* physical equality of interned weight and hash-consed node; the [option]
   boxes themselves may be distinct allocations, so unwrap before [==] *)
let bit_identical_v (a : T.vedge) (b : T.vedge) =
  a.T.vw == b.T.vw
  &&
  match (a.T.vt, b.T.vt) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

let bit_identical_m (a : T.medge) (b : T.medge) =
  a.T.mw == b.T.mw
  &&
  match (a.T.mt, b.T.mt) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

let random_state p ~n ~seed =
  Qsim.Dd_sim.simulate p (Algorithms.Random_circuit.unitary ~seed ~qubits:n ~gates:12)

let random_unitary p ~n ~seed =
  Qsim.Dd_sim.build_unitary p
    (Algorithms.Random_circuit.unitary ~seed ~qubits:n ~gates:10)

let prop_apply_gate_matches_generic =
  QCheck.Test.make ~name:"apply_gate = Pkg.gate + Mat.apply (bit-identical)"
    ~count:150
    QCheck.(pair (int_range 1 6) (int_range 0 100000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; 0x6a7e |] in
      let target, controls, u = random_gate_case st n in
      let p = Dd.Pkg.create () in
      let v = random_state p ~n ~seed in
      let generic = Dd.Mat.apply p (Dd.Pkg.gate p ~n ~controls ~target u) v in
      let kernel = Dd.Mat.apply_gate p ~n ~controls ~target u v in
      bit_identical_v generic kernel)

let prop_mul_gate_left_matches_generic =
  QCheck.Test.make ~name:"mul_gate_left = Pkg.gate + Mat.mul (bit-identical)"
    ~count:100
    QCheck.(pair (int_range 1 5) (int_range 0 100000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; 0x1ef7 |] in
      let target, controls, u = random_gate_case st n in
      let p = Dd.Pkg.create () in
      let m = random_unitary p ~n ~seed in
      let g = Dd.Pkg.gate p ~n ~controls ~target u in
      bit_identical_m (Dd.Mat.mul p g m)
        (Dd.Mat.mul_gate_left p ~n ~controls ~target u m))

let prop_mul_gate_right_matches_generic =
  QCheck.Test.make
    ~name:"mul_gate_right = Mat.mul with Mat.adjoint (bit-identical)" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 0 100000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; 0x217 |] in
      let target, controls, u = random_gate_case st n in
      let p = Dd.Pkg.create () in
      let m = random_unitary p ~n ~seed in
      let g = Dd.Pkg.gate p ~n ~controls ~target u in
      bit_identical_m
        (Dd.Mat.mul p m (Dd.Mat.adjoint p g))
        (Dd.Mat.mul_gate_right p ~n ~controls ~target u m))

(* the old Dd_sim swap path: three CX matrix DDs and two multiplications —
   kept here as the regression oracle the native kernel is pinned against *)
let swap_via_cx p ~n a b =
  let x = Gates.matrix Gates.X in
  let cxg c t = Dd.Pkg.gate p ~n ~controls:[ (c, true) ] ~target:t x in
  let ab = cxg a b
  and ba = cxg b a in
  Dd.Mat.mul p ab (Dd.Mat.mul p ba ab)

let prop_swap_kernels_match_cx_decomposition =
  QCheck.Test.make ~name:"swap kernels = 3xCX decomposition (bit-identical)"
    ~count:80
    QCheck.(pair (int_range 2 6) (int_range 0 100000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; 0x5a9 |] in
      let a = Random.State.int st n in
      let b = (a + 1 + Random.State.int st (n - 1)) mod n in
      let p = Dd.Pkg.create () in
      let old = swap_via_cx p ~n a b in
      let v = random_state p ~n ~seed in
      let m = random_unitary p ~n ~seed:(seed + 1) in
      bit_identical_v (Dd.Mat.apply p old v) (Dd.Mat.apply_swap p ~n a b v)
      && bit_identical_m (Dd.Mat.mul p old m) (Dd.Mat.mul_swap_left p ~n a b m)
      && bit_identical_m (Dd.Mat.mul p m old) (Dd.Mat.mul_swap_right p ~n a b m))

let test_boundary_wires () =
  (* directed cases the generators only hit occasionally: target on the
     top/bottom wire, controls entirely below / entirely above it *)
  let n = 5 in
  let cases =
    [ (0, [])
    ; (n - 1, [])
    ; (n - 1, [ (0, true); (1, false) ]) (* all controls below the target *)
    ; (0, [ (n - 1, true); (2, false) ]) (* all controls above the target *)
    ; (2, [ (0, false); (4, true) ]) (* mixed *)
    ]
  in
  List.iteri
    (fun i (target, controls) ->
      let p = Dd.Pkg.create () in
      let u = Gates.matrix (Gates.U3 (0.9, -0.3, 1.7)) in
      let v = random_state p ~n ~seed:(1000 + i) in
      let m = random_unitary p ~n ~seed:(2000 + i) in
      let g = Dd.Pkg.gate p ~n ~controls ~target u in
      Alcotest.(check bool)
        (Fmt.str "vector case %d" i)
        true
        (bit_identical_v (Dd.Mat.apply p g v)
           (Dd.Mat.apply_gate p ~n ~controls ~target u v));
      Alcotest.(check bool)
        (Fmt.str "left case %d" i)
        true
        (bit_identical_m (Dd.Mat.mul p g m)
           (Dd.Mat.mul_gate_left p ~n ~controls ~target u m));
      Alcotest.(check bool)
        (Fmt.str "right case %d" i)
        true
        (bit_identical_m
           (Dd.Mat.mul p m (Dd.Mat.adjoint p g))
           (Dd.Mat.mul_gate_right p ~n ~controls ~target u m)))
    cases

let test_kernel_cache_hits () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let p = Dd.Pkg.create () in
      let n = 4 in
      let h = Gates.matrix Gates.H in
      let s = Dd.Pkg.zero_state p n in
      let before = Obs.Metrics.snapshot () in
      let first = Dd.Mat.apply_gate p ~n ~controls:[] ~target:2 h s in
      let second = Dd.Mat.apply_gate p ~n ~controls:[] ~target:2 h s in
      let d = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
      Alcotest.(check bool) "cached kernel result is pointer-identical" true
        (bit_identical_v first second);
      Alcotest.(check int) "two kernel calls recorded" 2
        (Obs.Metrics.find d "dd.kernel.calls");
      Alcotest.(check bool) "repeat application reports kernel hits" true
        (Obs.Metrics.find d "dd.kernel.hits" > 0))

let test_kernel_cache_eviction () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let config =
        { Dd.Pkg.caps = { Dd.Pkg.caps_unbounded with Dd.Pkg.kernel = 2 }
        ; gc_threshold = None
        }
      in
      let p = Dd.Pkg.create ~config () in
      let n = 5 in
      let before = Obs.Metrics.snapshot () in
      let s = ref (random_state p ~n ~seed:7) in
      for t = 0 to n - 1 do
        s := Dd.Mat.apply_gate p ~n ~controls:[] ~target:t (Gates.matrix Gates.H) !s
      done;
      let d = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
      Alcotest.(check bool) "tiny kernel cache evicts" true
        (Obs.Metrics.find d "dd.kernel.evictions" > 0);
      Alcotest.(check bool) "peak stays within capacity" true
        (Obs.Metrics.find d "dd.kernel.peak" <= 2))

let test_kernel_cache_zero_capacity () =
  (* capacity 0 disables storage entirely; results must still be
     bit-identical to an unbounded run because the unique tables, not the
     compute caches, define the numbers *)
  let n = 4 in
  let run config =
    let p = Dd.Pkg.create ?config () in
    let s = ref (Dd.Pkg.zero_state p n) in
    for t = 0 to n - 1 do
      s := Dd.Mat.apply_gate p ~n ~controls:[] ~target:t (Gates.matrix Gates.H) !s;
      s :=
        Dd.Mat.apply_gate p ~n
          ~controls:[ (t, true) ]
          ~target:((t + 1) mod n)
          (Gates.matrix (Gates.RY 0.4))
          !s
    done;
    Dd.Vec.to_array p !s ~n
  in
  let zero_cap =
    Some
      { Dd.Pkg.caps = { Dd.Pkg.caps_unbounded with Dd.Pkg.kernel = 0 }
      ; gc_threshold = None
      }
  in
  let reference = run None
  and disabled = run zero_cap in
  Alcotest.(check bool) "capacity-0 kernel cache changes nothing" true
    (Array.for_all2
       (fun (a : Cx.t) (b : Cx.t) -> a.Cx.re = b.Cx.re && a.Cx.im = b.Cx.im)
       reference disabled)

let suite =
  [ Alcotest.test_case "boundary wires and control layouts" `Quick
      test_boundary_wires
  ; Alcotest.test_case "kernel cache hits" `Quick test_kernel_cache_hits
  ; Alcotest.test_case "kernel cache eviction" `Quick test_kernel_cache_eviction
  ; Alcotest.test_case "kernel cache capacity 0" `Quick
      test_kernel_cache_zero_capacity
  ; Util.qtest prop_apply_gate_matches_generic
  ; Util.qtest prop_mul_gate_left_matches_generic
  ; Util.qtest prop_mul_gate_right_matches_generic
  ; Util.qtest prop_swap_kernels_match_cx_decomposition
  ]
