(* The cost-aware lookahead application scheme: scheduling must never
   change verdicts (bit-identical to proportional alternation, on every
   DD backend), it must pay for itself in peak intermediate nodes where
   the cost curves diverge, and the manifest/engine plumbing around
   ["scheme"] (auto routing included) must resolve as documented. *)

module Circ = Circuit.Circ
module Pair = Algorithms.Pair
module Job = Engine.Job
module Manifest = Engine.Manifest

module Vc = Qcec.Verify.Make (Dd.Classic)
module Vp = Qcec.Verify.Make (Dd.Packed)

let table1_pairs =
  [ Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:9 9)
  ; Algorithms.Qft.make 6
  ; Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:5 ~bits:5) ~bits:5
  ; Algorithms.Qpe.make_textbook
      ~theta:(Algorithms.Qpe.random_theta ~seed:5 ~bits:5) ~bits:5
  ]

let fingerprint (r : Qcec.Verify.functional_result) =
  (r.Qcec.Verify.equivalent, r.Qcec.Verify.exactly_equal)

(* lookahead and proportional agree on every Table 1 pair, under both the
   hash-consed and the packed-array backend *)
let test_verdicts_identical () =
  List.iter
    (fun (pair : Pair.t) ->
      let classic strategy =
        Vc.functional ~strategy ~perm:pair.Pair.dyn_to_static
          pair.Pair.static_circuit pair.Pair.dynamic_circuit
      in
      let packed strategy =
        Vp.functional ~strategy ~perm:pair.Pair.dyn_to_static
          pair.Pair.static_circuit pair.Pair.dynamic_circuit
      in
      let name = pair.Pair.static_circuit.Circ.name in
      Alcotest.(check (pair bool bool))
        (name ^ ": classic verdicts agree")
        (fingerprint (classic Qcec.Strategy.Proportional))
        (fingerprint (classic Qcec.Strategy.Lookahead));
      Alcotest.(check (pair bool bool))
        (name ^ ": packed verdicts agree")
        (fingerprint (packed Qcec.Strategy.Proportional))
        (fingerprint (packed Qcec.Strategy.Lookahead));
      Alcotest.(check bool) (name ^ ": equivalent") true
        (classic Qcec.Strategy.Lookahead).Qcec.Verify.equivalent)
    table1_pairs

(* an inequivalent pair must stay inequivalent under lookahead — the
   scheduler reorders multiplications, it cannot invent identity *)
let test_inequivalent_pair () =
  let pair = Algorithms.Qft.make 5 in
  let static = Circ.strip_measurements pair.Pair.static_circuit in
  let broken =
    Circ.make ~name:"broken" ~qubits:5 ~cbits:0
      (static.Circ.ops @ [ Circuit.Op.apply Circuit.Gates.T 0 ])
  in
  List.iter
    (fun strategy ->
      let r = Qcec.Verify.functional ~strategy static broken in
      Alcotest.(check bool)
        (Qcec.Strategy.name strategy ^ " rejects the broken pair")
        false r.Qcec.Verify.equivalent)
    [ Qcec.Strategy.Proportional; Qcec.Strategy.Lookahead ]

(* the acceptance gate: on the QPE pair, whose realizations skew their
   non-Clifford cost mass, lookahead's peak must not exceed proportional *)
let test_qpe_peak () =
  let pair =
    Algorithms.Qpe.make ~theta:(Algorithms.Qpe.random_theta ~seed:10 ~bits:10)
      ~bits:10
  in
  let run strategy =
    Qcec.Verify.functional ~strategy ~perm:pair.Pair.dyn_to_static
      pair.Pair.static_circuit pair.Pair.dynamic_circuit
  in
  let p = run Qcec.Strategy.Proportional in
  let l = run Qcec.Strategy.Lookahead in
  Alcotest.(check bool) "both equivalent" true
    (p.Qcec.Verify.equivalent && l.Qcec.Verify.equivalent);
  Alcotest.(check bool)
    (Fmt.str "peak did not regress (%d <= %d)" l.Qcec.Verify.peak_nodes
       p.Qcec.Verify.peak_nodes)
    true
    (l.Qcec.Verify.peak_nodes <= p.Qcec.Verify.peak_nodes)

(* -- manifest plumbing -------------------------------------------------- *)

let test_manifest_scheme () =
  let doc =
    Obs.Json.of_string
      {|{ "schema": "qcec-manifest/v1",
          "defaults": { "scheme": "auto" },
          "jobs": [
            { "a": "a.qasm", "b": "b.qasm" },
            { "a": "c.qasm", "b": "d.qasm", "scheme": "lookahead" },
            { "a": "e.qasm", "b": "f.qasm", "strategy": "sequential" } ] }|}
  in
  match Manifest.of_json doc with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let j = Array.of_list m.Manifest.jobs in
    Alcotest.(check bool) "defaults scheme=auto inherits" true
      (j.(0).Job.auto_scheme && j.(0).Job.strategy = None);
    Alcotest.(check bool) "per-job scheme pins lookahead" true
      ((not j.(1).Job.auto_scheme)
      && j.(1).Job.strategy = Some Qcec.Strategy.Lookahead);
    Alcotest.(check bool) "explicit strategy beats inherited auto" true
      ((not j.(2).Job.auto_scheme)
      && j.(2).Job.strategy = Some Qcec.Strategy.Sequential)

let test_manifest_scheme_errors () =
  match
    Manifest.of_json
      (Obs.Json.of_string
         {|{ "schema": "qcec-manifest/v1",
             "jobs": [ { "a": "a.qasm", "b": "b.qasm", "scheme": "frobnicate" } ] }|})
  with
  | Ok _ -> Alcotest.fail "unknown scheme must be rejected"
  | Error _ -> ()

(* scheme=auto through the pool: the analysis passes route each job after
   parsing, and the strategy recorded on the result is the routed one *)
let test_pool_auto_scheme () =
  let specs =
    List.mapi
      (fun index (pair : Pair.t) ->
        Job.circuits ~auto_scheme:true ~perm:pair.Pair.dyn_to_static ~index
          pair.Pair.static_circuit pair.Pair.dynamic_circuit)
      table1_pairs
  in
  let batch =
    Engine.Pool.run { Engine.Pool.default_config with Engine.Pool.workers = 2 } specs
  in
  List.iter
    (fun (r : Job.result) ->
      match r.Job.outcome with
      | Job.Verdict v ->
        Alcotest.(check bool) (r.Job.label ^ " equivalent") true v.Job.equivalent;
        Alcotest.(check bool)
          (r.Job.label ^ " routed to a deterministic scheme: " ^ v.Job.strategy)
          true
          (v.Job.strategy = "proportional" || v.Job.strategy = "lookahead")
      | Job.Failed { message; _ } -> Alcotest.fail message)
    batch.Engine.Pool.results

let suite =
  [ Alcotest.test_case "verdicts identical across schemes and backends" `Quick
      test_verdicts_identical
  ; Alcotest.test_case "inequivalent pair stays inequivalent" `Quick
      test_inequivalent_pair
  ; Alcotest.test_case "QPE peak nodes do not regress" `Quick test_qpe_peak
  ; Alcotest.test_case "manifest scheme field" `Quick test_manifest_scheme
  ; Alcotest.test_case "manifest scheme errors" `Quick test_manifest_scheme_errors
  ; Alcotest.test_case "pool scheme=auto routing" `Quick test_pool_auto_scheme
  ]
