(* The circuit static analyzer: dataflow lint rules (one positive and one
   negative case per rule), the scheme-applicability classifier, located
   diagnostics from both parsers, the qcec-lint/v1 JSON schema, and the
   agreement properties between the static pre-check and the run-time
   behaviour of the transformation and the unitary-only strategies. *)

module Circ = Circuit.Circ
module Op = Circuit.Op
module Gates = Circuit.Gates
module A = Analysis

let codes diags = List.map (fun d -> d.A.Diagnostic.code) diags

let has code diags = List.mem code (codes diags)

let check_has msg code diags = Alcotest.(check bool) msg true (has code diags)

let check_not msg code diags = Alcotest.(check bool) msg false (has code diags)

let lint = A.lint

(* -- lint rules -------------------------------------------------------- *)

let test_unused_qubit () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0 [ Op.apply Gates.H 0 ]
  in
  check_has "qubit 1 unused" "QA001" (lint c);
  (* a barrier is a layout hint, not a use *)
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0; Op.Barrier [ 1 ] ]
  in
  check_has "barrier does not count as a use" "QA001" (lint c);
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0; Op.apply Gates.X 1 ]
  in
  check_not "all qubits used" "QA001" (lint c)

let test_gate_after_measure () =
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:1
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.apply Gates.X 0
      ]
  in
  check_has "gate after final measure" "QA002" (lint c);
  (* an intervening reset excuses the gate *)
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:1
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.Reset 0
      ; Op.apply Gates.X 0
      ]
  in
  check_not "reset intervenes" "QA002" (lint c);
  (* a later measurement makes the earlier one non-final *)
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:2
      [ Op.Measure { qubit = 0; cbit = 0 }
      ; Op.apply Gates.X 0
      ; Op.Measure { qubit = 0; cbit = 1 }
      ]
  in
  check_not "gate between two measurements" "QA002" (lint c);
  (* a control commutes with the Z-basis measurement *)
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:1
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.controlled Gates.X ~control:0 ~target:1
      ]
  in
  check_not "control use after measure is fine" "QA002" (lint c)

let test_dead_write () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 }
      ; Op.Measure { qubit = 1; cbit = 0 }
      ]
  in
  check_has "overwrite without read" "QA003" (lint c);
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 }
      ; Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 1)
      ; Op.Measure { qubit = 1; cbit = 0 }
      ]
  in
  check_not "condition reads between the writes" "QA003" (lint c)

let test_cond_never_written () =
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:1
      [ Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 0) ]
  in
  let diags = lint c in
  check_has "condition on never-written bit" "QA004" diags;
  Alcotest.(check bool) "QA004 is an error" true (A.Diagnostic.has_errors diags);
  (* the write may come later in the program: QA004 is a whole-circuit
     property, unlike the run-time read-before-write of the transform *)
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 }
      ; Op.if_bit ~bit:0 ~value:true (Op.apply Gates.X 1)
      ]
  in
  check_not "bit is written" "QA004" (lint c)

let test_redundant_reset () =
  let c = Circ.make ~name:"c" ~qubits:1 ~cbits:0 [ Op.Reset 0 ] in
  check_has "reset of |0>" "QA005" (lint c);
  let c =
    Circ.make ~name:"c" ~qubits:1 ~cbits:0 [ Op.apply Gates.H 0; Op.Reset 0 ]
  in
  check_not "reset after a gate" "QA005" (lint c)

let test_overlapping_controls () =
  (* unreachable through the validating [Circ.make] *)
  let c =
    Circ.make_unchecked ~name:"c" ~qubits:2 ~cbits:0
      [ Op.apply ~controls:[ { Op.cq = 0; pos = true } ] Gates.X 0 ]
  in
  check_has "self-controlled gate" "QA006" (lint c);
  let c =
    Circ.make_unchecked ~name:"c" ~qubits:2 ~cbits:0 [ Op.Swap (1, 1) ]
  in
  check_has "self-swap" "QA006" (lint c);
  let c =
    Circ.make_unchecked ~name:"c" ~qubits:3 ~cbits:0
      [ Op.apply
          ~controls:[ { Op.cq = 1; pos = true }; { Op.cq = 1; pos = false } ]
          Gates.X 0
      ]
  in
  check_has "duplicate control" "QA006" (lint c);
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:0
      [ Op.controlled Gates.X ~control:0 ~target:1 ]
  in
  check_not "proper controlled gate" "QA006" (lint c)

let test_out_of_range () =
  let c =
    Circ.make_unchecked ~name:"c" ~qubits:2 ~cbits:1
      [ Op.apply Gates.H 5 ]
  in
  check_has "qubit out of range" "QA007" (lint c);
  let c =
    Circ.make_unchecked ~name:"c" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 3 } ]
  in
  check_has "cbit out of range" "QA007" (lint c);
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:1
      [ Op.Measure { qubit = 0; cbit = 0 } ]
  in
  check_not "in range" "QA007" (lint c)

let test_parse_error_diag () =
  let d = A.Lint.of_parse_error ~file:"bad.qasm" ~line:7 "unexpected token" in
  Alcotest.(check string) "code" "QA000" d.A.Diagnostic.code;
  Alcotest.(check (option int)) "line" (Some 7) d.A.Diagnostic.span.A.Diagnostic.line;
  Alcotest.(check bool) "is an error" true (A.Diagnostic.has_errors [ d ])

(* diagnostics carry the source line of the offending op when the circuit
   came from a located parse *)
let test_located_diagnostics () =
  let src =
    "OPENQASM 2.0;\n\
     qreg q[1];\n\
     creg c[1];\n\
     h q[0];\n\
     measure q[0] -> c[0];\n\
     x q[0];\n"
  in
  let c, lines = Circuit.Qasm_parser.parse_located ~name:"t" src in
  Alcotest.(check (array int)) "per-op lines" [| 4; 5; 6 |] lines;
  let diags = A.lint ~file:"t.qasm" ~lines c in
  let d =
    List.find (fun d -> d.A.Diagnostic.code = "QA002") diags
  in
  Alcotest.(check (option int)) "line of the offending gate" (Some 6)
    d.A.Diagnostic.span.A.Diagnostic.line;
  Alcotest.(check (option string)) "file attached" (Some "t.qasm")
    d.A.Diagnostic.span.A.Diagnostic.file

let test_located_qasm3 () =
  let src =
    "OPENQASM 3.0;\n\
     qubit[2] q;\n\
     bit[1] c;\n\
     h q[0];\n\
     c[0] = measure q[0];\n\
     if (c[0] == 1) {\n\
     \  x q[1];\n\
     \  z q[1];\n\
     }\n"
  in
  let _, lines = Circuit.Qasm3_parser.parse_located ~name:"t" src in
  Alcotest.(check (array int)) "if-block ops keep their own lines"
    [| 4; 5; 7; 8 |] lines;
  (* located parse errors carry the failing line *)
  match Circuit.Qasm3_parser.parse_located ~name:"t" "OPENQASM 3.0;\nqubit[1] q;\nfrobnicate;\n" with
  | exception Circuit.Qasm_parser.Parse_error (_, line) ->
    Alcotest.(check int) "error line" 3 line
  | _ -> Alcotest.fail "expected a parse error"

(* -- JSON -------------------------------------------------------------- *)

let test_lint_json_roundtrip () =
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:1
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.apply Gates.X 0
      ]
  in
  let doc = A.Diagnostic.report_to_json [ ("c.qasm", lint c) ] in
  let str = Obs.Json.to_string ~pretty:true doc in
  let back = Obs.Json.of_string str in
  Alcotest.(check bool) "round trips" true (Obs.Json.equal doc back);
  (match Obs.Json.member "schema" back with
   | Some (Obs.Json.String s) -> Alcotest.(check string) "schema" "qcec-lint/v1" s
   | _ -> Alcotest.fail "missing schema field");
  (match Obs.Json.member "summary" back with
   | Some summary ->
     (match Obs.Json.member "warnings" summary with
      | Some (Obs.Json.Int n) ->
        Alcotest.(check bool) "counted the QA002/QA001 warnings" true (n >= 1)
      | _ -> Alcotest.fail "missing warnings count")
   | None -> Alcotest.fail "missing summary");
  (* every emitted code exists in the catalogue *)
  List.iter
    (fun d ->
      match A.Rules.find d.A.Diagnostic.code with
      | Some meta ->
        Alcotest.(check string) "slug matches" meta.A.Rules.slug d.A.Diagnostic.rule
      | None -> Alcotest.failf "unknown code %s" d.A.Diagnostic.code)
    (lint c)

(* -- classifier -------------------------------------------------------- *)

let test_classify_kinds () =
  let unitary =
    Circ.make ~name:"u" ~qubits:2 ~cbits:0
      [ Op.apply Gates.H 0; Op.controlled Gates.X ~control:0 ~target:1 ]
  in
  let p = A.classify unitary in
  Alcotest.(check string) "unitary" "unitary" (A.Classify.kind_name p.A.Classify.kind);
  Alcotest.(check bool) "unitary admits unitary scheme" true
    (A.Classify.admits A.Classify.Unitary_scheme p);

  let terminal =
    Circ.make ~name:"t" ~qubits:1 ~cbits:1
      [ Op.apply Gates.H 0; Op.Measure { qubit = 0; cbit = 0 } ]
  in
  let p = A.classify terminal in
  Alcotest.(check string) "measure-terminal" "measure-terminal"
    (A.Classify.kind_name p.A.Classify.kind);
  Alcotest.(check bool) "terminal admits unitary scheme" true
    (A.Classify.admits A.Classify.Unitary_scheme p);

  let dynamic = Algorithms.Bv.dynamic (Algorithms.Bv.hidden_string ~seed:1 4) in
  let p = A.classify dynamic in
  Alcotest.(check string) "dynamic" "dynamic" (A.Classify.kind_name p.A.Classify.kind);
  Alcotest.(check bool) "dynamic rejected by unitary scheme" false
    (A.Classify.admits A.Classify.Unitary_scheme p);
  Alcotest.(check bool) "dynamic BV is transformable" true (A.Classify.transformable p);
  Alcotest.(check bool) "routes to the transformation" true
    (A.Classify.route p = A.Classify.Transformation)

let test_classify_untransformable () =
  (* a gate drives the measured qubit with no reset: deferral must reject,
     and so must the static mirror; extraction remains the only route *)
  let c =
    Circ.make ~name:"c" ~qubits:2 ~cbits:2
      [ Op.apply Gates.H 0
      ; Op.Measure { qubit = 0; cbit = 0 }
      ; Op.apply Gates.X 0
      ; Op.Measure { qubit = 0; cbit = 1 }
      ]
  in
  let p = A.classify c in
  Alcotest.(check bool) "dynamic" true (p.A.Classify.kind = A.Classify.Dynamic);
  Alcotest.(check bool) "not transformable" false (A.Classify.transformable p);
  Alcotest.(check bool) "routes to extraction" true
    (A.Classify.route p = A.Classify.Extraction);
  match A.Classify.scheme_rejection ~scheme:A.Classify.Transformation p with
  | Some d -> Alcotest.(check string) "QA008" "QA008" d.A.Diagnostic.code
  | None -> Alcotest.fail "expected a transformation rejection"

let test_scheme_rejection_located () =
  let dynamic = Algorithms.Bv.dynamic (Algorithms.Bv.hidden_string ~seed:3 4) in
  let p = A.classify dynamic in
  let lines = Array.init (Circ.total_ops dynamic) (fun i -> 100 + i) in
  match
    A.Classify.scheme_rejection ~file:"bv.qasm" ~lines
      ~scheme:A.Classify.Unitary_scheme p
  with
  | Some d ->
    Alcotest.(check string) "QA008" "QA008" d.A.Diagnostic.code;
    let i =
      match p.A.Classify.first_blocker with
      | Some (i, _) -> i
      | None -> Alcotest.fail "dynamic BV has a blocker"
    in
    Alcotest.(check (option int)) "anchored at the blocker" (Some i)
      d.A.Diagnostic.span.A.Diagnostic.op_index;
    Alcotest.(check (option int)) "line resolved through the array"
      (Some (100 + i)) d.A.Diagnostic.span.A.Diagnostic.line
  | None -> Alcotest.fail "expected a rejection"

(* -- verify pre-flight ------------------------------------------------- *)

let test_verify_reject () =
  let pair = Algorithms.Bv.make (Algorithms.Bv.hidden_string ~seed:2 4) in
  let static = pair.Algorithms.Pair.static_circuit in
  let dyn = pair.Algorithms.Pair.dynamic_circuit in
  (match Qcec.Verify.functional ~on_dynamic:`Reject static dyn with
   | exception Qcec.Verify.Rejected d ->
     Alcotest.(check string) "QA008" "QA008" d.A.Diagnostic.code
   | _ -> Alcotest.fail "expected rejection of the dynamic circuit");
  (* the default keeps transforming *)
  let r =
    Qcec.Verify.functional ~perm:pair.Algorithms.Pair.dyn_to_static static dyn
  in
  Alcotest.(check bool) "transform path still works" true r.Qcec.Verify.equivalent;
  (* static pairs pass the pre-flight untouched *)
  let r = Qcec.Verify.functional ~on_dynamic:`Reject static static in
  Alcotest.(check bool) "static pair accepted under `Reject" true
    r.Qcec.Verify.equivalent

(* -- QASM fixtures ------------------------------------------------------ *)

let lint_fixture name =
  let path = Filename.concat "fixtures" name in
  let c, lines = Circuit.Qasm3_parser.parse_any_file_located path in
  A.lint ~file:path ~lines c

let test_fixtures () =
  Alcotest.(check (list string)) "clean GHZ" [] (codes (lint_fixture "clean_ghz.qasm"));
  let teleport = lint_fixture "dynamic_teleport.qasm" in
  Alcotest.(check (list string)) "teleport is clean" [] (codes teleport);
  let warn = lint_fixture "warn_gate_after_measure.qasm" in
  check_has "QA001" "QA001" warn;
  check_has "QA002" "QA002" warn;
  check_has "QA003" "QA003" warn;
  check_has "QA005" "QA005" warn;
  Alcotest.(check bool) "no error-severity findings" false
    (A.Diagnostic.has_errors warn)

(* -- agreement properties ---------------------------------------------- *)

let arb_dynamic =
  QCheck.make
    ~print:(fun seed ->
      Fmt.str "%a"
        Circ.pp
        (Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:12))
    QCheck.Gen.(0 -- 10_000)

(* the transformed output of any transformable dynamic circuit is
   admissible for unitary-only checking and clean of the dynamic-dataflow
   errors *)
let prop_transform_output_admissible =
  QCheck.Test.make ~count:60 ~name:"Transform output admits unitary schemes"
    arb_dynamic (fun seed ->
      let c = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:12 in
      let p = A.classify c in
      if not (A.Classify.transformable p) then QCheck.assume_fail ()
      else begin
        let out = Transform.Dynamic.transform c in
        let p' = A.classify out in
        let diags = A.lint out in
        p'.A.Classify.kind <> A.Classify.Dynamic
        && A.Classify.admits A.Classify.Unitary_scheme p'
        && (not (has "QA002" diags))
        && (not (has "QA003" diags))
        && not (has "QA004" diags)
      end)

(* the static transform pre-check agrees with the transformation itself *)
let prop_transform_precheck_agrees =
  QCheck.Test.make ~count:100 ~name:"transformable iff the transform succeeds"
    arb_dynamic (fun seed ->
      let c = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:12 in
      let p = A.classify c in
      let succeeded =
        match Transform.Dynamic.transform c with
        | _ -> true
        | exception Invalid_argument _ -> false
      in
      A.Classify.transformable p = succeeded)

(* first_blocker predicts exactly when the unitary-only strategies raise
   Non_unitary at run time *)
let prop_first_blocker_agrees =
  QCheck.Test.make ~count:40 ~name:"first_blocker iff Strategy.Non_unitary"
    arb_dynamic (fun seed ->
      let c = Algorithms.Random_circuit.dynamic ~seed ~qubits:3 ~cbits:2 ~ops:10 in
      let p = A.classify c in
      let pkg = Dd.Pkg.create () in
      let raised =
        match Qcec.Strategy.check pkg Qcec.Strategy.Proportional c c with
        | _ -> false
        | exception Qcec.Strategy.Non_unitary _ -> true
      in
      (p.A.Classify.first_blocker <> None) = raised)

let suite =
  [ Alcotest.test_case "QA001 unused qubit" `Quick test_unused_qubit
  ; Alcotest.test_case "QA002 gate after final measure" `Quick
      test_gate_after_measure
  ; Alcotest.test_case "QA003 dead classical write" `Quick test_dead_write
  ; Alcotest.test_case "QA004 condition never written" `Quick
      test_cond_never_written
  ; Alcotest.test_case "QA005 redundant reset" `Quick test_redundant_reset
  ; Alcotest.test_case "QA006 overlapping controls" `Quick
      test_overlapping_controls
  ; Alcotest.test_case "QA007 operand out of range" `Quick test_out_of_range
  ; Alcotest.test_case "QA000 parse error diagnostic" `Quick
      test_parse_error_diag
  ; Alcotest.test_case "located diagnostics (QASM 2)" `Quick
      test_located_diagnostics
  ; Alcotest.test_case "located parse (QASM 3)" `Quick test_located_qasm3
  ; Alcotest.test_case "qcec-lint/v1 JSON" `Quick test_lint_json_roundtrip
  ; Alcotest.test_case "classifier kinds and routing" `Quick test_classify_kinds
  ; Alcotest.test_case "untransformable circuits" `Quick
      test_classify_untransformable
  ; Alcotest.test_case "located scheme rejection" `Quick
      test_scheme_rejection_located
  ; Alcotest.test_case "verify pre-flight rejection" `Quick test_verify_reject
  ; Alcotest.test_case "QASM fixtures" `Quick test_fixtures
  ; QCheck_alcotest.to_alcotest prop_transform_output_admissible
  ; QCheck_alcotest.to_alcotest prop_transform_precheck_agrees
  ; QCheck_alcotest.to_alcotest prop_first_blocker_agrees
  ]
