type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------------------------------------------------------------- *)
(* Serialization                                                    *)
(* ---------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* shorten when a lower precision already round-trips *)
    let short = Printf.sprintf "%.12g" f in
    Buffer.add_string buf (if float_of_string short = f then short else s)
  end

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent level =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ')
    end
  in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          indent (level + 1);
          go (level + 1) item)
        items;
      indent level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          indent (level + 1);
          escape_string buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (level + 1) item)
        fields;
      indent level;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true v);
      output_char oc '\n')

(* ---------------------------------------------------------------- *)
(* Parsing: a strict recursive-descent parser over the input string  *)
(* ---------------------------------------------------------------- *)

type parser_state =
  { src : string
  ; mutable pos : int
  }

let fail st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let len = String.length word in
  if st.pos + len <= String.length st.src && String.sub st.src st.pos len = word then begin
    st.pos <- st.pos + len;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match st.src.[st.pos] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "invalid \\u escape"
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

(* encode a unicode scalar as UTF-8 (surrogate pairs are combined first) *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
       | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
       | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
       | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
       | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
       | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
       | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
       | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
       | Some 'u' ->
         advance st;
         let cp = parse_hex4 st in
         let cp =
           (* high surrogate: a low surrogate must follow *)
           if cp >= 0xD800 && cp <= 0xDBFF
              && st.pos + 1 < String.length st.src
              && st.src.[st.pos] = '\\'
              && st.src.[st.pos + 1] = 'u'
           then begin
             st.pos <- st.pos + 2;
             let lo = parse_hex4 st in
             if lo >= 0xDC00 && lo <= 0xDFFF then
               0x10000 + ((cp - 0xD800) * 0x400) + (lo - 0xDC00)
             else fail st "invalid surrogate pair"
           end
           else cp
         in
         add_utf8 buf cp;
         go ()
       | _ -> fail st "invalid escape")
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  let has_frac = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s in
  if has_frac then begin
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number %S" s)
  end
  else begin
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> fail st (Printf.sprintf "invalid number %S" s))
  end

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage after JSON value";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> String.equal x y
  | List x, List y -> List.compare_lengths x y = 0 && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.compare_lengths x y = 0
    && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) x y
  | _ -> false

let pp ppf v = Format.pp_print_string ppf (to_string ~pretty:true v)
