(** Minimal, dependency-free JSON shared by every layer that speaks it:
    metric snapshots, span reports, benchmark rows, manifests, result
    streams — and the HTTP server's request/response bodies.  One value
    type, one serializer, and a strict parser, so what one layer emits any
    other can consume.

    Strings serialize as valid JSON for {e any} OCaml string: ["\""],
    ["\\"] and every control character below [0x20] are escaped (the
    common ones as [\n]/[\r]/[\t]/[\b]/[\f], the rest as [\u00XX]), so
    embedded QASM sources and failure messages round-trip byte-exactly.

    Serialization notes: [Float] values that are not finite have no JSON
    representation and are emitted as [null]; finite floats are printed with
    17 significant digits, which round-trips every IEEE double. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [to_string ?pretty v] serializes [v]; [pretty] (default [false]) adds
    newlines and two-space indentation. *)
val to_string : ?pretty:bool -> t -> string

(** [to_file path v] writes [to_string ~pretty:true v] plus a trailing
    newline to [path]. *)
val to_file : string -> t -> unit

(** [of_string s] parses a single JSON value, rejecting trailing garbage.
    Raises {!Parse_error}.  Numbers without [.], [e] or [E] that fit in an
    OCaml [int] parse as [Int]; all others as [Float]. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** [member key v] is the value bound to [key] if [v] is an object
    containing it. *)
val member : string -> t -> t option

(** [equal a b] is structural equality, with [Int]/[Float] compared
    numerically (so values survive a serialize/parse round trip even when
    a float prints without a decimal point). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
