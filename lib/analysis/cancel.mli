(** The cancellation/commutation pass.

    Detects local structure the application schemes (and the QA009/QA010
    lint rules) can exploit: adjacent gate pairs that multiply to the
    identity, adjacent same-axis rotations that merge into one, rotations
    by an angle congruent to zero, and runs of diagonal gates (which
    commute freely and have single-path DDs). *)

type finding =
  | Self_inverse_pair of
      { first : int  (** op index of the earlier gate *)
      ; second : int
      ; qubits : int list
      ; gate : string
      }
      (** two adjacent applications of a self-inverse gate (X;X, H;H,
          CX;CX, swap;swap, ...) on the same qubits with no intervening op
          on any of them — they cancel to the identity (QA009) *)
  | Adjoint_pair of
      { first : int
      ; second : int
      ; qubits : int list
      ; gate : string
      }
      (** adjacent gate followed by its adjoint (S;Sdg, T;Tdg,
          rz(a);rz(-a), ...) — cancels, but is not a self-inverse pair *)
  | Mergeable_rotation of
      { first : int
      ; second : int
      ; qubit : int
      ; gate : string
      }
      (** adjacent same-axis rotations on one qubit; their angles add *)
  | Zero_rotation of
      { op_index : int
      ; qubit : int
      ; gate : string
      }
      (** a rotation by an angle congruent to 0 (mod 2 pi) within
          tolerance — the identity up to global phase (QA010) *)
  | Diagonal_run of
      { start : int
      ; length : int
      }
      (** a maximal run of [length >= 2] consecutive diagonal ops *)

type result =
  { findings : finding list
  ; cancels : bool array  (** op is one half of a cancelling pair *)
  ; diagonal : bool array  (** op is diagonal in the computational basis *)
  }

val is_diagonal_op : Circuit.Op.t -> bool

val scan : Circuit.Circ.t -> result

val to_json : result -> Obs.Json.t
