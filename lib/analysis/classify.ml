module Circ = Circuit.Circ
module Op = Circuit.Op

type kind =
  | Unitary
  | Measure_terminal
  | Dynamic

let kind_name = function
  | Unitary -> "unitary"
  | Measure_terminal -> "measure-terminal"
  | Dynamic -> "dynamic"

type profile =
  { kind : kind
  ; num_qubits : int
  ; num_cbits : int
  ; gates : int
  ; measurements : int
  ; resets : int
  ; conditioned : int
  ; barriers : int
  ; first_non_unitary : (int * Op.t) option
  ; first_blocker : (int * Op.t) option
  ; transform_blocker : (int * string) option
  }

let transformable p = p.transform_blocker = None

(* Static mirror of the Section 4 preconditions ([Transform.Resets] then
   [Transform.Deferral]), so a transformation that would die mid-run with
   [Invalid_argument] is rejected up front with a located reason.  Reset
   elimination rewires a reset qubit onto a fresh wire, so a reset clears
   the qubit's "measured" status; classical bits are untouched by it. *)
let transform_precheck (c : Circ.t) =
  let measured = Array.make (max c.Circ.num_qubits 1) false in
  let written = Array.make (max c.Circ.num_cbits 1) false in
  let blocker = ref None in
  let block i msg = if !blocker = None then blocker := Some (i, msg) in
  let reused i op =
    List.iter
      (fun q ->
        if measured.(q) then
          block i
            (Fmt.str
               "qubit %d is driven by a gate after being measured, with no \
                reset in between; the deferred-measurement principle does \
                not apply"
               q))
      (Op.target_qubits op)
  in
  List.iteri
    (fun i op ->
      match (op : Op.t) with
      | Barrier _ -> ()
      | Apply _ | Swap _ -> reused i op
      | Measure { qubit; cbit } ->
        if measured.(qubit) then
          block i
            (Fmt.str "qubit %d is measured twice with no reset in between" qubit);
        if written.(cbit) then
          block i (Fmt.str "classical bit %d is written twice" cbit);
        measured.(qubit) <- true;
        written.(cbit) <- true
      | Reset q -> measured.(q) <- false
      | Cond { cond; op = inner } ->
        List.iter
          (fun b ->
            if not written.(b) then
              block i
                (Fmt.str
                   "the condition reads classical bit %d before any \
                    measurement writes it"
                   b))
          cond.bits;
        reused i inner)
    c.Circ.ops;
  !blocker

let classify (c : Circ.t) =
  let counts = Circ.op_counts c in
  let find pred =
    let rec go i = function
      | [] -> None
      | op :: rest -> if pred op then Some (i, op) else go (i + 1) rest
    in
    go 0 c.Circ.ops
  in
  let first_non_unitary = find Op.is_dynamic_primitive in
  let first_blocker =
    find (function Op.Reset _ | Op.Cond _ -> true | _ -> false)
  in
  let kind =
    if counts.Circ.measurements = 0 && first_non_unitary = None then Unitary
    else if Circ.is_dynamic c then Dynamic
    else Measure_terminal
  in
  { kind
  ; num_qubits = c.Circ.num_qubits
  ; num_cbits = c.Circ.num_cbits
  ; gates = counts.Circ.gates
  ; measurements = counts.Circ.measurements
  ; resets = counts.Circ.resets
  ; conditioned = counts.Circ.conditioned
  ; barriers = counts.Circ.barriers
  ; first_non_unitary
  ; first_blocker
  ; transform_blocker =
      (if first_non_unitary = None then None else transform_precheck c)
  }

type scheme =
  | Unitary_scheme
  | Transformation
  | Extraction

let scheme_name = function
  | Unitary_scheme -> "unitary equivalence checking"
  | Transformation -> "the Section 4 transformation"
  | Extraction -> "the Section 5 extraction"

let scheme_slug = function
  | Unitary_scheme -> "unitary"
  | Transformation -> "transformation"
  | Extraction -> "extraction"

(* The unitary-only strategies silently strip measurements and abort (at
   run time, with [Strategy.Non_unitary]) on the first reset or classical
   condition — exactly [first_blocker].  A [Dynamic] profile without a
   blocker (mid-circuit measurements whose qubits are reused) would not
   raise, but stripping its measurements changes its semantics, so the
   pre-check treats it as inadmissible too. *)
let admits scheme p =
  match scheme with
  | Unitary_scheme -> p.kind <> Dynamic
  | Transformation -> transformable p
  | Extraction -> true

let route p =
  match p.kind with
  | Unitary | Measure_terminal -> Unitary_scheme
  | Dynamic -> if transformable p then Transformation else Extraction

(* Once a pair is routed to a unitary-style scheme, the cost profiles
   decide the alternation order; re-exported so routing decisions live in
   one module. *)
let route_application = Cost.recommend

(* Portfolio composition is kind-aware: dynamic circuits cannot run the
   simulative candidates (mid-circuit measurement collapses the state), so
   the most-dynamic classification of the pair gates which candidates
   [Cost.compose_portfolio] may enter. *)
let compose_portfolio ?width ?shots kind a b =
  Cost.compose_portfolio ?width ?shots ~dynamic:(kind = Dynamic) a b

let pp_profile ppf p =
  Fmt.pf ppf
    "%s (%d qubits, %d cbits; %d gates, %d measurements, %d resets, %d \
     conditioned, %d barriers)%s"
    (kind_name p.kind) p.num_qubits p.num_cbits p.gates p.measurements p.resets
    p.conditioned p.barriers
    (if transformable p then "" else "; not transformable")

let to_json p =
  let first = function
    | None -> Obs.Json.Null
    | Some (i, op) ->
      Obs.Json.Obj
        [ ("op_index", Obs.Json.Int i)
        ; ("op", Obs.Json.String (Fmt.str "%a" Op.pp op))
        ]
  in
  Obs.Json.Obj
    [ ("kind", Obs.Json.String (kind_name p.kind))
    ; ("num_qubits", Obs.Json.Int p.num_qubits)
    ; ("num_cbits", Obs.Json.Int p.num_cbits)
    ; ("gates", Obs.Json.Int p.gates)
    ; ("measurements", Obs.Json.Int p.measurements)
    ; ("resets", Obs.Json.Int p.resets)
    ; ("conditioned", Obs.Json.Int p.conditioned)
    ; ("barriers", Obs.Json.Int p.barriers)
    ; ("first_non_unitary", first p.first_non_unitary)
    ; ("transformable", Obs.Json.Bool (transformable p))
    ]

(* A located QA008 for a profile a scheme cannot handle; [None] when the
   scheme applies. *)
let scheme_rejection ?file ?lines ~scheme p =
  if admits scheme p then None
  else begin
    let anchor =
      match scheme with
      | Transformation ->
        Option.map (fun (i, msg) -> (i, msg)) p.transform_blocker
      | Unitary_scheme | Extraction ->
        let blocking =
          match p.first_blocker with
          | Some _ as b -> b
          | None -> p.first_non_unitary
        in
        Option.map
          (fun (i, op) ->
            (i, Fmt.str "the circuit is dynamic (first non-unitary op: %a)" Op.pp op))
          blocking
    in
    let op_index = Option.map fst anchor in
    let line =
      match (op_index, lines) with
      | Some i, Some lines when i < Array.length lines -> Some lines.(i)
      | _ -> None
    in
    let reason =
      match anchor with
      | Some (_, msg) -> msg
      | None -> Fmt.str "the circuit classifies as %s" (kind_name p.kind)
    in
    Some
      (Rules.diagnostic ?file ?line ?op_index:(Option.map Fun.id op_index)
         Rules.scheme_blocked
         (Fmt.str "%s; %s does not apply — transform or extract instead"
            reason (scheme_name scheme)))
  end
