(** The qubit-interaction graph pass.

    Entangling ops (multi-qubit gates, swaps) couple their qubits; the
    resulting graph's connected components bound entanglement spread, and
    a greedy cut-width estimate over it is a static proxy for the width a
    decision diagram can reach during simulation or the alternating
    check. *)

type t =
  { num_qubits : int
  ; edges : ((int * int) * int) list
        (** [(lo, hi)] pairs with multiplicity, sorted *)
  ; entangling_ops : int
  ; components : int array  (** dense component id per qubit *)
  ; num_components : int
  ; cutwidth : int
        (** greedy linear-arrangement cut-width over distinct edges *)
  ; order : int array  (** the qubit order achieving {!field:cutwidth} *)
  }

val of_circ : Circuit.Circ.t -> t

val to_json : t -> Obs.Json.t
