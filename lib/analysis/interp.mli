(** A minimal forward abstract-interpretation framework over circuits.

    A pass is an abstract domain: an initial state derived from the
    circuit shell and a transfer function folded over the op list in
    program order.  The concrete passes ({!Clifford}, {!Interact},
    {!Cancel}) are built on it and folded together by {!Cost}. *)

type 'a pass =
  { name : string
  ; init : Circuit.Circ.t -> 'a
  ; transfer : 'a -> int -> Circuit.Op.t -> 'a
        (** [transfer state op_index op] is the state after [op] *)
  }

val make :
  name:string ->
  init:(Circuit.Circ.t -> 'a) ->
  transfer:('a -> int -> Circuit.Op.t -> 'a) ->
  'a pass

(** [run pass c] folds the pass over the whole circuit and returns the
    final abstract state. *)
val run : 'a pass -> Circuit.Circ.t -> 'a

(** [trace pass c] is the per-prefix state array: entry [i] is the state
    {e before} op [i], entry [total_ops c] the final state. *)
val trace : 'a pass -> Circuit.Circ.t -> 'a array
