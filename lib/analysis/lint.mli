(** The linter: run the {!Dataflow} pass and render its findings as
    located {!Diagnostic}s. *)

(** [run ?file ?lines c] lints [c]. [lines] maps op index to 1-based
    source line (as returned by [Qasm_parser.parse_located] and friends);
    indices beyond the array are left unlocated. The result is sorted by
    source position. *)
val run :
  ?file:string -> ?lines:int array -> Circuit.Circ.t -> Diagnostic.t list

(** A QA000 diagnostic for a front-end parse failure, so parse errors and
    lint findings share one report format. *)
val of_parse_error : ?file:string -> line:int -> string -> Diagnostic.t
