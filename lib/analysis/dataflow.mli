(** The single-pass dataflow engine behind the linter: a forward scan over
    a circuit's op list computing qubit liveness (initial-|0>/live/measured
    states) and classical-bit def-use, emitting semantic findings that
    {!Lint} renders into located {!Diagnostic}s.

    The engine is deliberately tolerant of structurally invalid circuits
    (built with {!Circuit.Circ.make_unchecked} or hand-rolled records):
    out-of-range operands are reported as findings and the offending op is
    skipped instead of crashing. *)

type finding =
  | Unused_qubit of { qubit : int }
      (** the qubit appears in no operation (barriers don't count) *)
  | Gate_after_measure of
      { qubit : int
      ; op_index : int  (** the offending gate *)
      ; measure_index : int  (** the qubit's final measurement *)
      }
      (** a gate drives the qubit after its final measurement with no
          intervening reset — no measurement observes the gate's effect.
          Gates between two measurements of the same qubit, and uses as a
          {e control} (which commute with the measurement), are fine. *)
  | Dead_write of
      { cbit : int
      ; write_index : int
      ; overwrite_index : int
      }
      (** two measurements write the cbit with no condition reading it in
          between: the first write is dead *)
  | Cond_never_written of
      { cbit : int
      ; op_index : int
      }
      (** the condition reads a cbit that no measurement in the whole
          circuit writes, so it is statically constant *)
  | Redundant_reset of
      { qubit : int
      ; op_index : int
      }
      (** the qubit is provably still in its initial |0> state *)
  | Overlapping_controls of
      { qubit : int  (** the shared qubit *)
      ; op_index : int
      }
      (** control and target sets overlap: self-controlled gate, duplicate
          control, or a swap of a qubit with itself *)
  | Out_of_range of
      { op_index : int
      ; operand : [ `Qubit of int | `Cbit of int ]
      }
      (** the operand indexes outside the declared registers (only
          reachable through unvalidated circuits) *)

(** [scan c] runs the pass and returns the findings, ordered by program
    position (whole-circuit findings last). *)
val scan : Circuit.Circ.t -> finding list
