(** Static circuit analysis: located diagnostics, a dataflow linter, a
    multi-pass abstract interpreter (Clifford domain, interaction graph,
    cancellation structure, cost profiles), and the scheme-applicability
    classifier used by the verify pre-flight. *)

module Diagnostic = Diagnostic
module Rules = Rules
module Dataflow = Dataflow
module Lint = Lint
module Interp = Interp
module Clifford = Clifford
module Interact = Interact
module Cancel = Cancel
module Cost = Cost
module Classify = Classify
module Report = Report

let lint = Lint.run

let classify = Classify.classify

let cost_profile = Cost.profile
