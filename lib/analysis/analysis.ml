(** Static circuit analysis: located diagnostics, a dataflow linter, and
    the scheme-applicability classifier used by the verify pre-flight. *)

module Diagnostic = Diagnostic
module Rules = Rules
module Dataflow = Dataflow
module Lint = Lint
module Classify = Classify

let lint = Lint.run

let classify = Classify.classify
