module Op = Circuit.Op

(* The qubit-interaction graph: one vertex per qubit, one (multi-)edge per
   pair of qubits coupled by an entangling op.  Connected components bound
   how far entanglement can spread; the greedy cut-width of the graph is a
   static proxy for the width a decision diagram can reach — every edge
   crossing a cut in the variable order is a channel along which the DD
   below the cut can depend on the wires above it. *)

type t =
  { num_qubits : int
  ; edges : ((int * int) * int) list
  ; entangling_ops : int
  ; components : int array
  ; num_components : int
  ; cutwidth : int
  ; order : int array
  }

(* union-find on qubit indices *)
let find parent q =
  let rec go q = if parent.(q) = q then q else go parent.(q) in
  let root = go q in
  let rec compress q =
    if parent.(q) <> root then begin
      let next = parent.(q) in
      parent.(q) <- root;
      compress next
    end
  in
  compress q;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

(* Pairwise couplings of one op: controls and targets form a clique (for
   the 2-qubit ops the front end emits this is a single edge). *)
let couplings op =
  let qs = List.sort_uniq compare (Op.qubits (Op.base op)) in
  let rec pairs = function
    | [] | [ _ ] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
  in
  match (Op.base op : Op.t) with
  | Op.Apply _ | Op.Swap _ -> pairs qs
  | Op.Measure _ | Op.Reset _ | Op.Barrier _ | Op.Cond _ -> []

(* Greedy linear arrangement: repeatedly place the qubit that minimizes
   the number of distinct edges crossing the cut between the placed and
   the unplaced set; the maximum over all prefixes is the cut-width
   estimate.  Ties break toward the lowest qubit index, which makes the
   order deterministic. *)
let greedy_cutwidth ~num_qubits edges =
  let adj = Array.make num_qubits [] in
  List.iter
    (fun ((a, b), _) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  let placed = Array.make num_qubits false in
  let order = Array.make num_qubits 0 in
  let cut_after q =
    (* edges crossing the cut once [q] joins the placed set *)
    let crossing = ref 0 in
    placed.(q) <- true;
    List.iter
      (fun ((a, b), _) ->
        if placed.(a) <> placed.(b) then incr crossing)
      edges;
    placed.(q) <- false;
    !crossing
  in
  let cutwidth = ref 0 in
  for slot = 0 to num_qubits - 1 do
    let best = ref (-1) and best_cut = ref max_int in
    for q = num_qubits - 1 downto 0 do
      if not placed.(q) then begin
        let c = cut_after q in
        if c <= !best_cut then begin
          best := q;
          best_cut := c
        end
      end
    done;
    order.(slot) <- !best;
    placed.(!best) <- true;
    cutwidth := max !cutwidth !best_cut
  done;
  (!cutwidth, order)

let of_circ (c : Circuit.Circ.t) =
  let num_qubits = c.Circuit.Circ.num_qubits in
  let parent = Array.init num_qubits Fun.id in
  let tbl = Hashtbl.create 64 in
  let entangling = ref 0 in
  List.iter
    (fun op ->
      match couplings op with
      | [] -> ()
      | pairs ->
        incr entangling;
        List.iter
          (fun (a, b) ->
            union parent a b;
            let key = (min a b, max a b) in
            Hashtbl.replace tbl key
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
          pairs)
    c.Circuit.Circ.ops;
  let edges =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
  in
  (* canonical component ids: dense, in order of first qubit *)
  let components = Array.make num_qubits 0 in
  let ids = Hashtbl.create 16 in
  for q = 0 to num_qubits - 1 do
    let root = find parent q in
    let id =
      match Hashtbl.find_opt ids root with
      | Some id -> id
      | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids root id;
        id
    in
    components.(q) <- id
  done;
  let cutwidth, order = greedy_cutwidth ~num_qubits edges in
  { num_qubits
  ; edges
  ; entangling_ops = !entangling
  ; components
  ; num_components = Hashtbl.length ids
  ; cutwidth
  ; order
  }

let to_json g =
  Obs.Json.Obj
    [ ("entangling_ops", Obs.Json.Int g.entangling_ops)
    ; ( "edges"
      , Obs.Json.List
          (List.map
             (fun ((a, b), m) ->
               Obs.Json.List [ Obs.Json.Int a; Obs.Json.Int b; Obs.Json.Int m ])
             g.edges) )
    ; ("components", Obs.Json.Int g.num_components)
    ; ("cutwidth", Obs.Json.Int g.cutwidth)
    ; ( "order"
      , Obs.Json.List
          (Array.to_list (Array.map (fun q -> Obs.Json.Int q) g.order)) )
    ]
