(** The [qcec-lint/v2] report document.

    v2 is a strict superset of [qcec-lint/v1] (written by
    {!Diagnostic.report_to_json}, which stays unchanged): the top-level
    [schema] string changes, and each file entry gains a ["classifier"]
    block — the {!Classify} profile, per-scheme admissibility, and the
    routed scheme slug — or [null] for files that failed to parse. *)

type entry =
  { file : string
  ; diagnostics : Diagnostic.t list
  ; profile : Classify.profile option
  }

val entry : ?profile:Classify.profile -> string -> Diagnostic.t list -> entry

val to_json : entry list -> Obs.Json.t
