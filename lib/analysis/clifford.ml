module Op = Circuit.Op
module Gates = Circuit.Gates

(* Angle tolerance: generated circuits produce angles like 2*pi*j/2^m whose
   floating representation drifts by a few ulps from the exact multiple. *)
let tol = 1e-9

(* theta = k * m for some integer k, within [tol]. *)
let multiple_of m theta =
  let r = Float.abs (Float.rem theta m) in
  r <= tol || m -. r <= tol

let half_pi = 0.5 *. Float.pi

(* Single-qubit gates in the Clifford group (up to global phase).  The
   rotation forms are Clifford exactly at multiples of pi/2; U2/U3 at
   Euler angles that are all multiples of pi/2 (a sufficient and, for the
   generators our front end emits, necessary condition). *)
let is_clifford_gate = function
  | Gates.I | Gates.X | Gates.Y | Gates.Z | Gates.H | Gates.S | Gates.Sdg
  | Gates.SX | Gates.SXdg -> true
  | Gates.T | Gates.Tdg -> false
  | Gates.RX t | Gates.RY t | Gates.RZ t | Gates.P t -> multiple_of half_pi t
  | Gates.U2 (phi, lam) -> multiple_of half_pi phi && multiple_of half_pi lam
  | Gates.U3 (theta, phi, lam) ->
    multiple_of half_pi theta && multiple_of half_pi phi
    && multiple_of half_pi lam

(* A singly-controlled gate is Clifford iff the target gate is a Pauli up
   to a pi/2-multiple phase: controlled-(e^{ia}C) factors into a phase
   gate P(a) on the control (Clifford iff a is a multiple of pi/2) times
   controlled-C, and controlled-X/Y/Z are Clifford.  Controlled-H and
   friends are not; neither is anything with two or more controls
   (Toffoli).  Negative controls conjugate by X and preserve all this. *)
let is_clifford_controlled gate =
  match gate with
  | Gates.I | Gates.X | Gates.Y | Gates.Z -> true
  | Gates.P t -> multiple_of Float.pi t
  | Gates.RX t | Gates.RY t | Gates.RZ t -> multiple_of Float.pi t
  | Gates.S | Gates.Sdg | Gates.T | Gates.Tdg | Gates.H | Gates.SX
  | Gates.SXdg | Gates.U2 _ | Gates.U3 _ -> false

(* Measurement, reset and barriers keep a stabilizer state simulable (the
   tableau formalism handles them), so only the gate content decides
   membership; a classically-conditioned gate is judged by its base op. *)
let rec is_clifford_op (op : Op.t) =
  match op with
  | Op.Apply { gate; controls = []; _ } -> is_clifford_gate gate
  | Op.Apply { gate; controls = [ _ ]; _ } -> is_clifford_controlled gate
  | Op.Apply _ -> false
  | Op.Swap _ -> true
  | Op.Measure _ | Op.Reset _ | Op.Barrier _ -> true
  | Op.Cond { op; _ } -> is_clifford_op op

type result =
  { per_op : bool array
  ; clifford_prefix : int
  ; first_non_clifford : int option
  ; clifford_ops : int
  ; non_clifford_ops : int
  ; all_clifford : bool
  }

let pass =
  Interp.make ~name:"clifford"
    ~init:(fun _ -> true)
    ~transfer:(fun in_fragment _ op -> in_fragment && is_clifford_op op)

let scan (c : Circuit.Circ.t) =
  let per_op =
    Array.of_list (List.map is_clifford_op c.Circuit.Circ.ops)
  in
  let n = Array.length per_op in
  let first = ref None in
  let clifford = ref 0 in
  for i = n - 1 downto 0 do
    if per_op.(i) then incr clifford else first := Some i
  done;
  let first_non_clifford = !first in
  { per_op
  ; clifford_prefix =
      (match first_non_clifford with None -> n | Some i -> i)
  ; first_non_clifford
  ; clifford_ops = !clifford
  ; non_clifford_ops = n - !clifford
  ; all_clifford = first_non_clifford = None
  }

let to_json r =
  Obs.Json.Obj
    [ ("all_clifford", Obs.Json.Bool r.all_clifford)
    ; ("clifford_prefix", Obs.Json.Int r.clifford_prefix)
    ; ( "first_non_clifford"
      , match r.first_non_clifford with
        | None -> Obs.Json.Null
        | Some i -> Obs.Json.Int i )
    ; ("clifford_ops", Obs.Json.Int r.clifford_ops)
    ; ("non_clifford_ops", Obs.Json.Int r.non_clifford_ops)
    ]
