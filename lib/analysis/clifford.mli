(** The Clifford/stabilizer abstract domain.

    Tracks, per prefix, whether the circuit stays inside the Clifford
    fragment.  Clifford prefixes are DD-cheap — stabilizer states have
    polynomial decision diagrams — so the first non-Clifford op marks the
    earliest point where DD growth can start; {!Cost} uses the per-op
    membership to weight gate positions. *)

(** [is_clifford_gate g] — the gate is in the single-qubit Clifford group
    up to global phase (rotations at multiples of pi/2 included, within a
    small tolerance). *)
val is_clifford_gate : Circuit.Gates.t -> bool

(** [is_clifford_op op] — the op keeps a stabilizer state a stabilizer
    state: Clifford gates, singly-controlled Paulis (CX/CY/CZ and their
    phase variants), swaps; measurement, reset and barriers count as
    in-fragment (the tableau formalism handles them); conditioned ops are
    judged by their base gate; multiply-controlled gates are out. *)
val is_clifford_op : Circuit.Op.t -> bool

type result =
  { per_op : bool array  (** op [i] keeps the state in the fragment *)
  ; clifford_prefix : int
        (** length of the maximal all-Clifford prefix *)
  ; first_non_clifford : int option
  ; clifford_ops : int
  ; non_clifford_ops : int
  ; all_clifford : bool
  }

(** The domain as an {!Interp} pass: state is "still inside the Clifford
    fragment"; [Interp.trace] gives the per-prefix membership. *)
val pass : bool Interp.pass

val scan : Circuit.Circ.t -> result

val to_json : result -> Obs.Json.t
