module Op = Circuit.Op
module Circ = Circuit.Circ

type scheme =
  | Proportional_order
  | Lookahead_order

let scheme_name = function
  | Proportional_order -> "proportional"
  | Lookahead_order -> "lookahead"

type t =
  { num_qubits : int
  ; total_ops : int
  ; clifford : Clifford.result
  ; graph : Interact.t
  ; cancel : Cancel.result
  ; weights : float array
  ; cumulative : float array
  ; total : float
  }

(* Per-op weight model.  The absolute scale is irrelevant — only the
   distribution of cost mass along the circuit matters — so the factors
   are coarse powers of two:

     base                      1.0
     non-Clifford op          x4    (DD growth can start here)
     entangling op            x2    (couples wires; widens the DD)
     diagonal op              x0.5  (single-path structure)
     half of a cancelling pair x0.25 (the product collapses again)
     barrier                   0

   Everything non-barrier is clamped to a small positive floor so the
   cumulative curve stays strictly increasing over real gates. *)
let min_weight = 0.05

let is_entangling op =
  match (Op.base op : Op.t) with
  | Op.Apply _ | Op.Swap _ ->
    List.length (List.sort_uniq compare (Op.qubits (Op.base op))) >= 2
  | Op.Measure _ | Op.Reset _ | Op.Cond _ | Op.Barrier _ -> false

let weights_of ~(clifford : Clifford.result) ~(cancel : Cancel.result) ops =
  Array.mapi
    (fun i op ->
      match (op : Op.t) with
      | Op.Barrier _ -> 0.0
      | _ ->
        let w = 1.0 in
        let w = if clifford.Clifford.per_op.(i) then w else w *. 4.0 in
        let w = if is_entangling op then w *. 2.0 else w in
        let w = if cancel.Cancel.diagonal.(i) then w *. 0.5 else w in
        let w = if cancel.Cancel.cancels.(i) then w *. 0.25 else w in
        Float.max w min_weight)
    ops

let cumulate weights =
  let n = Array.length weights in
  let cum = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    cum.(i + 1) <- cum.(i) +. weights.(i)
  done;
  cum

let profile (c : Circ.t) =
  let clifford = Clifford.scan c in
  let graph = Interact.of_circ c in
  let cancel = Cancel.scan c in
  let ops = Array.of_list c.Circ.ops in
  let weights = weights_of ~clifford ~cancel ops in
  let cumulative = cumulate weights in
  { num_qubits = c.Circ.num_qubits
  ; total_ops = Array.length ops
  ; clifford
  ; graph
  ; cancel
  ; weights
  ; cumulative
  ; total = cumulative.(Array.length ops)
  }

let op_weights ~num_qubits ops =
  let c = Circ.make_unchecked ~name:"cost" ~qubits:num_qubits ~cbits:0 ops in
  let clifford = Clifford.scan c in
  let cancel = Cancel.scan c in
  weights_of ~clifford ~cancel (Array.of_list ops)

(* ---------------------------------------------------------------- *)
(* Scheme recommendation                                            *)

let samples = 64
let divergence_threshold = 0.05

(* Normalized cumulative cost at fraction [s/samples] of the op stream,
   linearly interpolated.  A circuit with no cost mass contributes the
   identity curve (cost uniformly spread), which is what proportional
   scheduling implicitly assumes. *)
let curve p s =
  let frac = float_of_int s /. float_of_int samples in
  if p.total <= 0.0 || p.total_ops = 0 then frac
  else begin
    let x = frac *. float_of_int p.total_ops in
    let i = min (int_of_float (Float.floor x)) (p.total_ops - 1) in
    let rest = x -. float_of_int i in
    (p.cumulative.(i) +. (rest *. p.weights.(i))) /. p.total
  end

let divergence a b =
  let d = ref 0.0 in
  for s = 0 to samples do
    d := Float.max !d (Float.abs (curve a s -. curve b s))
  done;
  !d

let recommend a b =
  if a.clifford.Clifford.all_clifford && b.clifford.Clifford.all_clifford then
    (* stabilizer circuits keep DDs polynomial; counting ops is enough *)
    Proportional_order
  else if divergence a b > divergence_threshold then
    (* cost mass sits at different positions in the two circuits, so
       advancing by op counts misbalances the product — schedule by cost *)
    Lookahead_order
  else Proportional_order

(* ---------------------------------------------------------------- *)
(* Portfolio composition                                            *)

type candidate =
  | Proportional_candidate
  | Lookahead_candidate
  | Classical_stimuli of int
  | Local_stimuli of int
  | Global_stimuli of int

let candidate_name = function
  | Proportional_candidate -> "proportional"
  | Lookahead_candidate -> "lookahead"
  | Classical_stimuli k -> Fmt.str "stimuli:basis:%d" k
  | Local_stimuli k -> Fmt.str "stimuli:product:%d" k
  | Global_stimuli k -> Fmt.str "stimuli:entangled:%d" k

let default_shots = 16

(* Which candidates to enter into a first-verdict-wins race, best first.
   Candidate 0 is always the cost model's solo recommendation, so a race
   report can say whether the a-priori pick actually won.  The classifier
   kind orders the tail: on unitary pairs the global-quantum stimuli lead
   it (random stabilizer states distinguish non-equivalent pairs with
   probability exponentially close to one, and refute fastest in
   practice); on dynamic pairs both exact alternation orders come first —
   the Section 4 transform is their native path — and the cheap classical
   stimuli open the simulative tail.  The simulative candidates stay in
   the dynamic field because every candidate races the {e transformed}
   (hence unitary) pair; they are merely a worse a-priori bet there, as
   the transform's ancillas enlarge the simulated register. *)
let compose_portfolio ?(width = 4) ?(shots = default_shots) ~dynamic a b =
  let lead, other =
    match recommend a b with
    | Proportional_order -> (Proportional_candidate, Lookahead_candidate)
    | Lookahead_order -> (Lookahead_candidate, Proportional_candidate)
  in
  let tail =
    if dynamic then
      [ other; Classical_stimuli shots; Global_stimuli shots
      ; Local_stimuli shots ]
    else
      [ Global_stimuli shots; other; Classical_stimuli shots
      ; Local_stimuli shots ]
  in
  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | c :: rest -> c :: take (k - 1) rest
  in
  lead :: take (max 0 (width - 1)) tail

let to_json p =
  Obs.Json.Obj
    [ ("num_qubits", Obs.Json.Int p.num_qubits)
    ; ("total_ops", Obs.Json.Int p.total_ops)
    ; ("clifford", Clifford.to_json p.clifford)
    ; ("interaction", Interact.to_json p.graph)
    ; ("cancellation", Cancel.to_json p.cancel)
    ; ( "cost"
      , Obs.Json.Obj
          [ ("total", Obs.Json.Float p.total)
          ; ( "weights"
            , Obs.Json.List
                (Array.to_list
                   (Array.map (fun w -> Obs.Json.Float w) p.weights)) )
          ] )
    ]
