(** The lint-rule catalogue: stable codes, slugs and default severities.

    Codes are append-only — a code is never renumbered or reused, so
    downstream tooling can match on them.  The catalogue with examples is
    documented in [docs/ANALYSIS.md]. *)

type meta =
  { code : string  (** stable, e.g. ["QA001"] *)
  ; slug : string  (** kebab-case rule name *)
  ; severity : Diagnostic.severity
  ; summary : string  (** one-line description for the catalogue *)
  }

val parse_error : meta  (** QA000 — emitted by front ends, not the linter *)

val unused_qubit : meta  (** QA001 *)

val gate_after_measure : meta  (** QA002 *)

val dead_write : meta  (** QA003 *)

val cond_never_written : meta  (** QA004 *)

val redundant_reset : meta  (** QA005 *)

val overlapping_controls : meta  (** QA006 *)

val out_of_range : meta  (** QA007 *)

val scheme_blocked : meta  (** QA008 — emitted by the verify pre-flight *)

val self_inverse_pair : meta  (** QA009 — from the cancellation pass *)

val zero_rotation : meta  (** QA010 — from the cancellation pass *)

val all : meta list

val find : string -> meta option

(** [diagnostic ?file ?line ?op_index meta msg] builds a {!Diagnostic.t}
    with the rule's code, slug and severity. *)
val diagnostic :
  ?file:string -> ?line:int -> ?op_index:int -> meta -> string -> Diagnostic.t
