(* The qcec-lint/v2 report: everything qcec-lint/v1 carried, plus a
   per-file "classifier" block with the scheme-applicability profile.
   The v1 writer in {!Diagnostic.report_to_json} is kept unchanged for
   downstream tooling pinned to it. *)

type entry =
  { file : string
  ; diagnostics : Diagnostic.t list
  ; profile : Classify.profile option
        (* [None] when the file failed to parse — there is no circuit to
           classify, only QA000 diagnostics *)
  }

let entry ?profile file diagnostics = { file; diagnostics; profile }

let classifier_json p =
  let admits s = Obs.Json.Bool (Classify.admits s p) in
  Obs.Json.Obj
    [ ("profile", Classify.to_json p)
    ; ( "admits"
      , Obs.Json.Obj
          [ ("unitary", admits Classify.Unitary_scheme)
          ; ("transformation", admits Classify.Transformation)
          ; ("extraction", admits Classify.Extraction)
          ] )
    ; ("route", Obs.Json.String (Classify.scheme_slug (Classify.route p)))
    ]

let to_json entries =
  let total =
    Diagnostic.summarize (List.concat_map (fun e -> e.diagnostics) entries)
  in
  Obs.Json.Obj
    [ ("schema", Obs.Json.String "qcec-lint/v2")
    ; ( "files"
      , Obs.Json.List
          (List.map
             (fun e ->
               Obs.Json.Obj
                 ([ ("file", Obs.Json.String e.file)
                  ; ( "diagnostics"
                    , Obs.Json.List
                        (List.map Diagnostic.to_json
                           (Diagnostic.sort e.diagnostics)) )
                  ; ( "summary"
                    , Diagnostic.summary_json
                        (Diagnostic.summarize e.diagnostics) )
                  ]
                 @
                 match e.profile with
                 | None -> [ ("classifier", Obs.Json.Null) ]
                 | Some p -> [ ("classifier", classifier_json p) ]))
             entries) )
    ; ("summary", Diagnostic.summary_json total)
    ]
