module Circ = Circuit.Circ
module Op = Circuit.Op

type finding =
  | Unused_qubit of { qubit : int }
  | Gate_after_measure of
      { qubit : int
      ; op_index : int
      ; measure_index : int
      }
  | Dead_write of
      { cbit : int
      ; write_index : int
      ; overwrite_index : int
      }
  | Cond_never_written of
      { cbit : int
      ; op_index : int
      }
  | Redundant_reset of
      { qubit : int
      ; op_index : int
      }
  | Overlapping_controls of
      { qubit : int
      ; op_index : int
      }
  | Out_of_range of
      { op_index : int
      ; operand : [ `Qubit of int | `Cbit of int ]
      }

(* Abstract qubit state for the forward pass: [Zero] means provably still
   |0> (initial, or just reset and untouched since); [Live] after any gate
   drove it; [Measured i] after its measurement at op [i] with nothing
   unitary on it since. *)
type qstate =
  | Zero
  | Live
  | Measured of int

type qubit_facts =
  { mutable state : qstate
  ; mutable used : bool
  ; mutable pending : (int * int) list
        (* (gate op index, measure op index) uses of the qubit while in a
           [Measured] state; cancelled retroactively if a later measurement
           or reset of the qubit shows that measurement was not final *)
  }

type cbit_facts =
  { mutable last_write : int option  (* most recent still-unread write *)
  }

let scan (c : Circ.t) =
  let nq = c.Circ.num_qubits and nc = c.Circ.num_cbits in
  let in_q q = 0 <= q && q < nq in
  let in_c b = 0 <= b && b < nc in
  let qubits = Array.init nq (fun _ -> { state = Zero; used = false; pending = [] }) in
  let cbits = Array.init nc (fun _ -> { last_write = None }) in
  (* which cbits are written anywhere: the "never written" in QA004 is a
     whole-circuit property, so it needs this cheap pre-pass *)
  let written_anywhere = Array.make nc false in
  List.iter
    (fun op ->
      List.iter (fun b -> if in_c b then written_anywhere.(b) <- true)
        (Op.cbits_written op))
    c.Circ.ops;
  let rev_findings = ref [] in
  let emit f = rev_findings := f :: !rev_findings in
  (* out-of-range operands make an op unanalyzable: report every offending
     operand and skip the state updates (the arrays cannot hold them) *)
  let out_of_range i op =
    let bad = ref [] in
    List.iter
      (fun q -> if not (in_q q) then bad := `Qubit q :: !bad)
      (Op.qubits op);
    List.iter
      (fun b -> if not (in_c b) then bad := `Cbit b :: !bad)
      (Op.cbits_read op @ Op.cbits_written op);
    List.iter (fun operand -> emit (Out_of_range { op_index = i; operand })) !bad;
    !bad <> []
  in
  (* a gate drives [q]: record a pending gate-after-measure if it is
     currently measured, then mark it live *)
  let drive i q =
    let f = qubits.(q) in
    f.used <- true;
    (match f.state with
     | Measured m -> f.pending <- (i, m) :: f.pending
     | Zero | Live -> ());
    f.state <- Live
  in
  let control q = qubits.(q).used <- true in
  (* controls on a measured qubit are fine: they commute with the Z-basis
     measurement (the same rule the deferral transformation applies) *)
  let rec step i op =
    match (op : Op.t) with
    | Barrier _ -> () (* a layout hint: neither uses nor drives *)
    | Apply { controls; target; _ } ->
      let cqs = List.map (fun (ctl : Op.control) -> ctl.cq) controls in
      let dup = List.length (List.sort_uniq compare cqs) <> List.length cqs in
      if List.mem target cqs then
        emit (Overlapping_controls { qubit = target; op_index = i })
      else if dup then begin
        let rec first_dup = function
          | a :: (b :: _ as rest) -> if a = b then a else first_dup rest
          | _ -> -1
        in
        emit
          (Overlapping_controls
             { qubit = first_dup (List.sort compare cqs); op_index = i })
      end;
      List.iter control cqs;
      drive i target
    | Swap (a, b) ->
      if a = b then emit (Overlapping_controls { qubit = a; op_index = i })
      else begin
        drive i a;
        drive i b;
        (* a swap exchanges the abstract states (both are [Live] here by
           [drive], which is the sound approximation) *)
        let sa = qubits.(a).state in
        qubits.(a).state <- qubits.(b).state;
        qubits.(b).state <- sa
      end
    | Measure { qubit; cbit } ->
      let f = qubits.(qubit) in
      f.used <- true;
      (* this measurement proves any earlier one was not final *)
      f.pending <- [];
      f.state <- Measured i;
      let cf = cbits.(cbit) in
      (match cf.last_write with
       | Some j ->
         emit (Dead_write { cbit; write_index = j; overwrite_index = i })
       | None -> ());
      cf.last_write <- Some i
    | Reset q ->
      let f = qubits.(q) in
      f.used <- true;
      if f.state = Zero then emit (Redundant_reset { qubit = q; op_index = i });
      (* the reset discards the post-measurement state, which is the
         "intervening reset" QA002 excuses *)
      f.pending <- [];
      f.state <- Zero
    | Cond { cond; op = inner } ->
      List.iter
        (fun b ->
          if not written_anywhere.(b) then
            emit (Cond_never_written { cbit = b; op_index = i });
          cbits.(b).last_write <- None (* the write has now been read *))
        cond.bits;
      step i inner
  in
  List.iteri (fun i op -> if not (out_of_range i op) then step i op) c.Circ.ops;
  (* end of circuit: surviving pending entries sit after a final
     measurement; untouched qubits were never used *)
  Array.iteri
    (fun q f ->
      List.iter
        (fun (op_index, measure_index) ->
          emit (Gate_after_measure { qubit = q; op_index; measure_index }))
        (List.rev f.pending);
      if not f.used then emit (Unused_qubit { qubit = q }))
    qubits;
  List.rev !rev_findings
