(** Per-gate-position cost profiles.

    Folds the {!Clifford}, {!Interact} and {!Cancel} passes into one
    weight per op — a static estimate of how much that op can grow an
    intermediate decision diagram — plus the cumulative cost curve the
    lookahead application scheme schedules against. *)

(** Which alternation order a circuit pair calls for. This mirrors the
    core strategy names without depending on the core library. *)
type scheme =
  | Proportional_order  (** advance by op counts ([i * nr <= j * nl]) *)
  | Lookahead_order  (** advance by predicted cost balance *)

val scheme_name : scheme -> string

type t =
  { num_qubits : int
  ; total_ops : int
  ; clifford : Clifford.result
  ; graph : Interact.t
  ; cancel : Cancel.result
  ; weights : float array  (** one weight per op, barriers weigh 0 *)
  ; cumulative : float array
        (** length [total_ops + 1]; [cumulative.(i)] = cost of the
            length-[i] prefix *)
  ; total : float
  }

val profile : Circuit.Circ.t -> t

(** [op_weights ~num_qubits ops] — the weight model over a bare op list
    (e.g. the unitary core a strategy actually multiplies), without the
    interaction-graph pass. *)
val op_weights : num_qubits:int -> Circuit.Op.t list -> float array

(** Largest pointwise gap between the two normalized cumulative cost
    curves, sampled at 64 positions in [0, 1]. *)
val divergence : t -> t -> float

(** [recommend a b] — {!Proportional_order} when both circuits are pure
    Clifford (DDs stay small) or their cost curves track each other;
    {!Lookahead_order} when the curves diverge enough that op-count
    alternation would misbalance the product. *)
val recommend : t -> t -> scheme

(** One entrant in a first-verdict-wins portfolio race: either an
    alternation order or a simulative check with one of the three stimuli
    classes (shot count attached). Mirrors the core strategies without
    depending on the core library; [Qcec.Strategy.of_candidate] maps each
    onto a runnable strategy. *)
type candidate =
  | Proportional_candidate
  | Lookahead_candidate
  | Classical_stimuli of int  (** random basis states, [n] shots *)
  | Local_stimuli of int  (** random single-qubit product states *)
  | Global_stimuli of int  (** random stabilizer states *)

val candidate_name : candidate -> string

(** Shot count used for simulative candidates when none is given. *)
val default_shots : int

(** [compose_portfolio ?width ?shots ~dynamic a b] — which candidates to
    race for the pair profiled by [a]/[b], best guess first.  Candidate 0
    is always {!recommend}'s solo pick.  On [~dynamic] pairs (mid-circuit
    measurement or classical control) the two exact alternation orders
    lead the field and the simulative candidates trail it: every
    candidate races the transformed — unitary — pair, so the stimuli
    classes stay applicable, but the transform's ancillas make them a
    worse a-priori bet.  Returns between 1 and [width] candidates
    ([width] defaults to 4). *)
val compose_portfolio :
  ?width:int -> ?shots:int -> dynamic:bool -> t -> t -> candidate list

(** The per-file [qcec-analysis/v1] document body: [num_qubits],
    [total_ops], and one block per pass ([clifford], [interaction],
    [cancellation], [cost]). *)
val to_json : t -> Obs.Json.t
