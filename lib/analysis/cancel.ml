module Op = Circuit.Op
module Gates = Circuit.Gates

let tol = 1e-9
let two_pi = 2.0 *. Float.pi

type finding =
  | Self_inverse_pair of
      { first : int
      ; second : int
      ; qubits : int list
      ; gate : string
      }
  | Adjoint_pair of
      { first : int
      ; second : int
      ; qubits : int list
      ; gate : string
      }
  | Mergeable_rotation of
      { first : int
      ; second : int
      ; qubit : int
      ; gate : string
      }
  | Zero_rotation of
      { op_index : int
      ; qubit : int
      ; gate : string
      }
  | Diagonal_run of
      { start : int
      ; length : int
      }

type result =
  { findings : finding list
  ; cancels : bool array  (** op is one half of a pair that cancels *)
  ; diagonal : bool array  (** op is diagonal in the computational basis *)
  }

(* Diagonal gates commute with each other and have single-path DDs; any
   stack of controls keeps a diagonal gate diagonal. *)
let is_diagonal_gate = function
  | Gates.I | Gates.Z | Gates.S | Gates.Sdg | Gates.T | Gates.Tdg
  | Gates.RZ _ | Gates.P _ -> true
  | Gates.X | Gates.Y | Gates.H | Gates.SX | Gates.SXdg | Gates.RX _
  | Gates.RY _ | Gates.U2 _ | Gates.U3 _ -> false

let is_diagonal_op = function
  | Op.Apply { gate; _ } -> is_diagonal_gate gate
  | Op.Swap _ | Op.Measure _ | Op.Reset _ | Op.Cond _ | Op.Barrier _ -> false

let zero_angle theta =
  let r = Float.abs (Float.rem theta two_pi) in
  r <= tol || two_pi -. r <= tol

let rotation_name = function
  | Gates.RX _ -> Some "rx"
  | Gates.RY _ -> Some "ry"
  | Gates.RZ _ -> Some "rz"
  | Gates.P _ -> Some "p"
  | _ -> None

(* Structural equality of the non-gate shape of two [Apply]s: same target,
   same controls with the same polarities (order-insensitive). *)
let same_shape controls target controls' target' =
  let key cs = List.sort compare (List.map (fun c -> (c.Op.cq, c.Op.pos)) cs) in
  target = target' && key controls = key controls'

let scan (c : Circuit.Circ.t) =
  let ops = Array.of_list c.Circuit.Circ.ops in
  let n = Array.length ops in
  let nq = max c.Circuit.Circ.num_qubits 1 in
  (* last.(q) = index of the last op that touched qubit q, -1 initially *)
  let last = Array.make nq (-1) in
  let consumed = Array.make n false in
  let cancels = Array.make n false in
  let diagonal = Array.init n (fun i -> is_diagonal_op ops.(i)) in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  (* adjacent-pair relation between op [j] and op [i] on the same qubits *)
  let pair j i =
    match (ops.(j), ops.(i)) with
    | Op.Swap (a, b), Op.Swap (a', b')
      when (min a b, max a b) = (min a' b', max a' b') ->
      Some (Self_inverse_pair { first = j; second = i; qubits = [ a; b ]; gate = "swap" })
    | ( Op.Apply { gate = g; controls = cs; target = t }
      , Op.Apply { gate = g'; controls = cs'; target = t' } )
      when same_shape cs t cs' t' ->
      if Gates.equal ~tol g' (Gates.adjoint g) then begin
        let qubits = Op.qubits ops.(i) in
        if Gates.equal ~tol g (Gates.adjoint g) then
          Some
            (Self_inverse_pair
               { first = j; second = i; qubits; gate = Gates.name g })
        else
          Some
            (Adjoint_pair { first = j; second = i; qubits; gate = Gates.name g })
      end
      else begin
        match (rotation_name g, rotation_name g') with
        | Some r, Some r' when r = r' && cs = [] ->
          Some (Mergeable_rotation { first = j; second = i; qubit = t; gate = r })
        | _ -> None
      end
    | _ -> None
  in
  for i = 0 to n - 1 do
    (match ops.(i) with
     | Op.Apply { gate = (Gates.RX t | Gates.RY t | Gates.RZ t | Gates.P t) as g
                ; target
                ; _ }
       when zero_angle t ->
       emit (Zero_rotation { op_index = i; qubit = target; gate = Gates.name g })
     | _ -> ());
    let qs = Op.qubits ops.(i) in
    (* adjacency: every involved qubit was last touched by the same op *)
    (match qs with
     | [] -> ()
     (* out-of-range operands are QA007's problem, not ours *)
     | _ when not (List.for_all (fun q -> q >= 0 && q < nq) qs) -> ()
     | q0 :: rest ->
       let j = last.(q0) in
       if
         j >= 0
         && (not consumed.(j))
         && List.for_all (fun q -> last.(q) = j) rest
         && List.sort compare (Op.qubits ops.(j)) = List.sort compare qs
       then begin
         match pair j i with
         | Some (Self_inverse_pair _ | Adjoint_pair _) as f ->
           Option.iter emit f;
           consumed.(j) <- true;
           consumed.(i) <- true;
           cancels.(j) <- true;
           cancels.(i) <- true
         | Some f -> emit f
         | None -> ()
       end);
    List.iter (fun q -> if q >= 0 && q < nq then last.(q) <- i) qs
  done;
  (* maximal runs of >= 2 consecutive diagonal unitary ops *)
  let i = ref 0 in
  while !i < n do
    if diagonal.(!i) then begin
      let start = !i in
      while !i < n && diagonal.(!i) do
        incr i
      done;
      if !i - start >= 2 then emit (Diagonal_run { start; length = !i - start })
    end
    else incr i
  done;
  { findings = List.rev !findings; cancels; diagonal }

let finding_to_json f =
  let obj kind fields =
    Obs.Json.Obj (("kind", Obs.Json.String kind) :: fields)
  in
  match f with
  | Self_inverse_pair { first; second; qubits; gate } ->
    obj "self_inverse_pair"
      [ ("first", Obs.Json.Int first)
      ; ("second", Obs.Json.Int second)
      ; ("qubits", Obs.Json.List (List.map (fun q -> Obs.Json.Int q) qubits))
      ; ("gate", Obs.Json.String gate)
      ]
  | Adjoint_pair { first; second; qubits; gate } ->
    obj "adjoint_pair"
      [ ("first", Obs.Json.Int first)
      ; ("second", Obs.Json.Int second)
      ; ("qubits", Obs.Json.List (List.map (fun q -> Obs.Json.Int q) qubits))
      ; ("gate", Obs.Json.String gate)
      ]
  | Mergeable_rotation { first; second; qubit; gate } ->
    obj "mergeable_rotation"
      [ ("first", Obs.Json.Int first)
      ; ("second", Obs.Json.Int second)
      ; ("qubit", Obs.Json.Int qubit)
      ; ("gate", Obs.Json.String gate)
      ]
  | Zero_rotation { op_index; qubit; gate } ->
    obj "zero_rotation"
      [ ("op_index", Obs.Json.Int op_index)
      ; ("qubit", Obs.Json.Int qubit)
      ; ("gate", Obs.Json.String gate)
      ]
  | Diagonal_run { start; length } ->
    obj "diagonal_run"
      [ ("start", Obs.Json.Int start); ("length", Obs.Json.Int length) ]

let to_json r =
  let count pred = List.length (List.filter pred r.findings) in
  Obs.Json.Obj
    [ ( "cancelling_pairs"
      , Obs.Json.Int
          (count (function Self_inverse_pair _ | Adjoint_pair _ -> true | _ -> false)) )
    ; ( "mergeable_rotations"
      , Obs.Json.Int (count (function Mergeable_rotation _ -> true | _ -> false)) )
    ; ( "zero_rotations"
      , Obs.Json.Int (count (function Zero_rotation _ -> true | _ -> false)) )
    ; ( "diagonal_runs"
      , Obs.Json.Int (count (function Diagonal_run _ -> true | _ -> false)) )
    ; ("findings", Obs.Json.List (List.map finding_to_json r.findings))
    ]
