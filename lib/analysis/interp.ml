(* Forward abstract interpretation over the flat op list: a pass is an
   abstract domain (an initial state and a transfer function) and the
   framework folds it over the circuit, either to the final state or to
   the full per-prefix trace.  All the analysis passes (Clifford domain,
   interaction graph, cancellation) are phrased this way so they share
   one traversal discipline and compose in [Cost]. *)

type 'a pass =
  { name : string
  ; init : Circuit.Circ.t -> 'a
  ; transfer : 'a -> int -> Circuit.Op.t -> 'a
  }

let make ~name ~init ~transfer = { name; init; transfer }

let run pass (c : Circuit.Circ.t) =
  let _, final =
    List.fold_left
      (fun (i, st) op -> (i + 1, pass.transfer st i op))
      (0, pass.init c) c.Circuit.Circ.ops
  in
  final

(* [trace pass c].(i) is the abstract state before op [i]; the last entry
   (index [total_ops c]) is the final state.  Length is [total_ops c + 1]. *)
let trace pass (c : Circuit.Circ.t) =
  let ops = Array.of_list c.Circuit.Circ.ops in
  let n = Array.length ops in
  let states = Array.make (n + 1) (pass.init c) in
  for i = 0 to n - 1 do
    states.(i + 1) <- pass.transfer states.(i) i ops.(i)
  done;
  states
