type meta =
  { code : string
  ; slug : string
  ; severity : Diagnostic.severity
  ; summary : string
  }

let parse_error =
  { code = "QA000"
  ; slug = "parse-error"
  ; severity = Diagnostic.Error
  ; summary = "the OpenQASM source could not be parsed"
  }

let unused_qubit =
  { code = "QA001"
  ; slug = "unused-qubit"
  ; severity = Diagnostic.Warning
  ; summary = "a declared qubit is never operated on"
  }

let gate_after_measure =
  { code = "QA002"
  ; slug = "gate-after-final-measure"
  ; severity = Diagnostic.Warning
  ; summary =
      "a gate drives a qubit after its final measurement with no \
       intervening reset, so no measurement can observe its effect"
  }

let dead_write =
  { code = "QA003"
  ; slug = "dead-classical-write"
  ; severity = Diagnostic.Warning
  ; summary =
      "a measurement overwrites a classical bit whose previous value was \
       never read"
  }

let cond_never_written =
  { code = "QA004"
  ; slug = "cond-never-written"
  ; severity = Diagnostic.Error
  ; summary =
      "a classical condition reads a bit no measurement ever writes, so \
       the condition is statically constant"
  }

let redundant_reset =
  { code = "QA005"
  ; slug = "redundant-reset"
  ; severity = Diagnostic.Info
  ; summary = "a reset acts on a qubit still in its initial |0> state"
  }

let overlapping_controls =
  { code = "QA006"
  ; slug = "overlapping-controls"
  ; severity = Diagnostic.Error
  ; summary =
      "a gate's control and target sets overlap (self-controlled gate, \
       duplicate control, or self-swap)"
  }

let out_of_range =
  { code = "QA007"
  ; slug = "operand-out-of-range"
  ; severity = Diagnostic.Error
  ; summary = "an operand indexes outside the declared registers"
  }

let scheme_blocked =
  { code = "QA008"
  ; slug = "scheme-not-applicable"
  ; severity = Diagnostic.Error
  ; summary =
      "the circuit contains a non-unitary operation the selected checking \
       scheme cannot handle"
  }

let self_inverse_pair =
  { code = "QA009"
  ; slug = "adjacent-self-inverse-pair"
  ; severity = Diagnostic.Warning
  ; summary =
      "two adjacent applications of a self-inverse gate on the same \
       qubits cancel to the identity"
  }

let zero_rotation =
  { code = "QA010"
  ; slug = "zero-angle-rotation"
  ; severity = Diagnostic.Warning
  ; summary =
      "a rotation by an angle congruent to 0 (mod 2 pi) is the identity \
       up to global phase"
  }

let all =
  [ parse_error
  ; unused_qubit
  ; gate_after_measure
  ; dead_write
  ; cond_never_written
  ; redundant_reset
  ; overlapping_controls
  ; out_of_range
  ; scheme_blocked
  ; self_inverse_pair
  ; zero_rotation
  ]

let find code = List.find_opt (fun m -> m.code = code) all

let diagnostic ?file ?line ?op_index meta message =
  Diagnostic.make ?file ?line ?op_index ~code:meta.code ~rule:meta.slug
    ~severity:meta.severity message
