module Op = Circuit.Op

let line_of lines i =
  match lines with
  | Some lines when i >= 0 && i < Array.length lines -> Some lines.(i)
  | _ -> None

let of_finding ?file ?lines (f : Dataflow.finding) =
  let at ?op_index meta msg =
    let line = Option.bind op_index (fun i -> line_of lines i) in
    Rules.diagnostic ?file ?line ?op_index meta msg
  in
  match f with
  | Unused_qubit { qubit } ->
    at Rules.unused_qubit (Fmt.str "qubit %d is declared but never used" qubit)
  | Gate_after_measure { qubit; op_index; measure_index } ->
    at ~op_index Rules.gate_after_measure
      (Fmt.str
         "gate drives qubit %d after its final measurement (op %d); no \
          measurement observes its effect"
         qubit measure_index)
  | Dead_write { cbit; write_index; overwrite_index } ->
    at ~op_index:overwrite_index Rules.dead_write
      (Fmt.str
         "measurement overwrites classical bit %d, whose value from op %d \
          was never read"
         cbit write_index)
  | Cond_never_written { cbit; op_index } ->
    at ~op_index Rules.cond_never_written
      (Fmt.str
         "condition reads classical bit %d, which no measurement writes; \
          the condition is constant"
         cbit)
  | Redundant_reset { qubit; op_index } ->
    at ~op_index Rules.redundant_reset
      (Fmt.str "reset of qubit %d, which is still in |0>" qubit)
  | Overlapping_controls { qubit; op_index } ->
    at ~op_index Rules.overlapping_controls
      (Fmt.str "control and target sets overlap on qubit %d" qubit)
  | Out_of_range { op_index; operand } ->
    let what, idx, bound =
      match operand with
      | `Qubit q -> ("qubit", q, "num_qubits")
      | `Cbit b -> ("classical bit", b, "num_cbits")
    in
    at ~op_index Rules.out_of_range
      (Fmt.str "%s %d is outside the declared register (%s)" what idx bound)

let of_cancel ?file ?lines (f : Cancel.finding) =
  let at ?op_index meta msg =
    let line = Option.bind op_index (fun i -> line_of lines i) in
    Rules.diagnostic ?file ?line ?op_index meta msg
  in
  match f with
  | Cancel.Self_inverse_pair { first; second; qubits; gate } ->
    Some
      (at ~op_index:second Rules.self_inverse_pair
         (Fmt.str
            "adjacent %s pair on qubit%s %a cancels to the identity (ops %d \
             and %d)"
            gate
            (if List.length qubits > 1 then "s" else "")
            Fmt.(list ~sep:comma int)
            qubits first second))
  | Cancel.Zero_rotation { op_index; qubit; gate } ->
    Some
      (at ~op_index Rules.zero_rotation
         (Fmt.str
            "%s on qubit %d rotates by an angle congruent to 0 (mod 2 pi)"
            gate qubit))
  | Cancel.Adjoint_pair _ | Cancel.Mergeable_rotation _ | Cancel.Diagonal_run _
    ->
    (* cost-model inputs, not lint findings *)
    None

let run ?file ?lines c =
  let dataflow = Dataflow.scan c |> List.map (of_finding ?file ?lines) in
  let cancel =
    (Cancel.scan c).Cancel.findings |> List.filter_map (of_cancel ?file ?lines)
  in
  Diagnostic.sort (dataflow @ cancel)

let of_parse_error ?file ~line msg =
  Rules.diagnostic ?file ~line Rules.parse_error msg
