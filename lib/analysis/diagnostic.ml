type severity =
  | Error
  | Warning
  | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type span =
  { file : string option
  ; line : int option
  ; op_index : int option
  }

let no_span = { file = None; line = None; op_index = None }

type t =
  { code : string
  ; rule : string
  ; severity : severity
  ; message : string
  ; span : span
  }

let make ?file ?line ?op_index ~code ~rule ~severity message =
  { code; rule; severity; message; span = { file; line; op_index } }

let pp ppf d =
  (match (d.span.file, d.span.line) with
   | Some f, Some l -> Fmt.pf ppf "%s:%d: " f l
   | Some f, None -> Fmt.pf ppf "%s: " f
   | None, Some l -> Fmt.pf ppf "line %d: " l
   | None, None -> ());
  Fmt.pf ppf "%s %s [%s]: %s" (severity_label d.severity) d.code d.rule d.message;
  match d.span.op_index with
  | Some i -> Fmt.pf ppf " (op %d)" i
  | None -> ()

let to_string d = Fmt.str "%a" pp d

type summary =
  { errors : int
  ; warnings : int
  ; infos : int
  }

let summarize ds =
  List.fold_left
    (fun acc d ->
      match d.severity with
      | Error -> { acc with errors = acc.errors + 1 }
      | Warning -> { acc with warnings = acc.warnings + 1 }
      | Info -> { acc with infos = acc.infos + 1 })
    { errors = 0; warnings = 0; infos = 0 }
    ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* Stable presentation order: program position first (whole-circuit findings
   without an op index come last), then by severity, then by code. *)
let sort ds =
  let key d =
    ( Option.value ~default:max_int d.span.op_index
    , -severity_rank d.severity
    , d.code
    , d.message )
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) ds

(* -- qcec-lint/v1 ------------------------------------------------------ *)

let opt_int = function None -> Obs.Json.Null | Some i -> Obs.Json.Int i

let to_json d =
  Obs.Json.Obj
    [ ("code", Obs.Json.String d.code)
    ; ("rule", Obs.Json.String d.rule)
    ; ("severity", Obs.Json.String (severity_label d.severity))
    ; ("message", Obs.Json.String d.message)
    ; ("line", opt_int d.span.line)
    ; ("op_index", opt_int d.span.op_index)
    ]

let summary_json s =
  Obs.Json.Obj
    [ ("errors", Obs.Json.Int s.errors)
    ; ("warnings", Obs.Json.Int s.warnings)
    ; ("infos", Obs.Json.Int s.infos)
    ]

let report_to_json files =
  let total = summarize (List.concat_map snd files) in
  Obs.Json.Obj
    [ ("schema", Obs.Json.String "qcec-lint/v1")
    ; ( "files"
      , Obs.Json.List
          (List.map
             (fun (file, ds) ->
               Obs.Json.Obj
                 [ ("file", Obs.Json.String file)
                 ; ("diagnostics", Obs.Json.List (List.map to_json (sort ds)))
                 ; ("summary", summary_json (summarize ds))
                 ])
             files) )
    ; ("summary", summary_json total)
    ]
