(** Static scheme-applicability pre-check: classify a circuit by its
    non-unitary content and decide which checking schemes of the paper
    apply, before any decision-diagram package is built.

    This is the static counterpart of the run-time routing in
    [Qcec.Verify]: {!classify}'s {!profile} predicts exactly when the
    unitary-only strategies would raise [Strategy.Non_unitary]
    ({!field:profile.first_blocker}) and when the Section 4 transformation
    would reject the circuit ({!field:profile.transform_blocker}). *)

type kind =
  | Unitary  (** gates only — every scheme applies directly *)
  | Measure_terminal
      (** measurements exist but none is followed by a use of its qubit or
          a read of its cbit; stripping them is semantics-preserving *)
  | Dynamic
      (** resets, classical conditions, or mid-circuit measurements whose
          outcome matters — needs Section 4 or Section 5 *)

val kind_name : kind -> string

type profile =
  { kind : kind
  ; num_qubits : int
  ; num_cbits : int
  ; gates : int
  ; measurements : int
  ; resets : int
  ; conditioned : int
  ; barriers : int
  ; first_non_unitary : (int * Circuit.Op.t) option
      (** first measure/reset/cond, if any *)
  ; first_blocker : (int * Circuit.Op.t) option
      (** first reset or condition — the op on which the unitary-only
          strategies raise [Strategy.Non_unitary] at run time *)
  ; transform_blocker : (int * string) option
      (** why the Section 4 transformation would reject the circuit,
          located at the offending op; [None] when it applies *)
  }

val classify : Circuit.Circ.t -> profile

(** [transformable p] holds when the Section 4 transformation accepts the
    circuit (no blocker found by the static mirror of its preconditions). *)
val transformable : profile -> bool

(** The three ways the paper checks a pair of circuits. *)
type scheme =
  | Unitary_scheme  (** any of the Section 3 strategies, measurements
                        stripped *)
  | Transformation  (** Section 4: reset elimination + deferral, then a
                        unitary strategy *)
  | Extraction  (** Section 5: output-distribution comparison *)

val scheme_name : scheme -> string

(** Machine-readable scheme tag: ["unitary"], ["transformation"] or
    ["extraction"]; used by the [qcec-lint/v2] classifier block. *)
val scheme_slug : scheme -> string

(** [admits scheme p] holds when [scheme] can soundly check a circuit with
    profile [p]. [Extraction] always applies. *)
val admits : scheme -> profile -> bool

(** [route p] is the cheapest admissible scheme, mirroring the automatic
    routing [Verify.functional] performs. *)
val route : profile -> scheme

(** [route_application a b] picks the alternation order for a pair already
    routed to a unitary-style scheme (an alias of {!Cost.recommend}). *)
val route_application : Cost.t -> Cost.t -> Cost.scheme

(** [compose_portfolio ?width ?shots kind a b] — the candidates to enter
    into a first-verdict-wins race for a pair whose most-dynamic
    classification is [kind]: {!Cost.compose_portfolio} with the
    simulative candidates dropped for {!Dynamic} pairs. *)
val compose_portfolio :
  ?width:int -> ?shots:int -> kind -> Cost.t -> Cost.t -> Cost.candidate list

val pp_profile : Format.formatter -> profile -> unit

val to_json : profile -> Obs.Json.t

(** [scheme_rejection ?file ?lines ~scheme p] is a located QA008 diagnostic
    when [scheme] does not admit [p] ([lines] maps op index to source
    line, as returned by the located parsers), [None] when it does. *)
val scheme_rejection :
  ?file:string ->
  ?lines:int array ->
  scheme:scheme ->
  profile ->
  Diagnostic.t option
