(** Located, machine-readable diagnostics for the circuit static analyzer.

    Every diagnostic carries a stable rule code ([QA001], [QA002], ...; the
    catalogue lives in {!Rules} and is documented in [docs/ANALYSIS.md]), a
    severity, a human-readable message, and an optional source span (file,
    1-based line, op index into [Circ.ops]).  Renders both as compiler-style
    text ([file:line: warning QA001 [unused-qubit]: ...]) and as JSON under
    the [qcec-lint/v1] schema. *)

type severity =
  | Error  (** structurally invalid, or certainly a bug *)
  | Warning  (** suspicious dataflow; the circuit still executes *)
  | Info  (** harmless but redundant structure *)

val severity_label : severity -> string

(** [Info] < [Warning] < [Error]. *)
val severity_rank : severity -> int

type span =
  { file : string option
  ; line : int option  (** 1-based source line, from the parsers *)
  ; op_index : int option  (** index into [Circ.ops] *)
  }

val no_span : span

type t =
  { code : string  (** stable rule code, e.g. ["QA004"] *)
  ; rule : string  (** rule slug, e.g. ["cond-never-written"] *)
  ; severity : severity
  ; message : string
  ; span : span
  }

val make :
     ?file:string
  -> ?line:int
  -> ?op_index:int
  -> code:string
  -> rule:string
  -> severity:severity
  -> string
  -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type summary =
  { errors : int
  ; warnings : int
  ; infos : int
  }

val summarize : t list -> summary
val has_errors : t list -> bool

(** Program position, then severity (errors first), then code. *)
val sort : t list -> t list

(** {1 [qcec-lint/v1] JSON} *)

val to_json : t -> Obs.Json.t

val summary_json : summary -> Obs.Json.t

(** [report_to_json files] is the full lint report: a [qcec-lint/v1]
    document with one entry per [(file, diagnostics)] pair and per-file and
    overall severity summaries. *)
val report_to_json : (string * t list) list -> Obs.Json.t
