module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

type result =
  { counts : (string * int) list
  ; shots : int
  }

let empirical r =
  let total = float_of_int r.shots in
  List.map (fun (k, v) -> (k, float_of_int v /. total)) r.counts

module Make (B : Dd.Backend.S) = struct
  module Pkg = B.Pkg
  module Vec = B.Vec
  module Mat = B.Mat
  module Sim = Dd_sim.Make (B)

  let one_shot ~rng ~use_kernels p ~n (c : Circ.t) =
    let x_gate = Gates.matrix Gates.X in
    let apply_x state qubit =
      if use_kernels then Mat.apply_gate p ~n ~controls:[] ~target:qubit x_gate state
      else Mat.apply p (Pkg.gate p ~n ~controls:[] ~target:qubit x_gate) state
    in
    let cvals = Bytes.make c.Circ.num_cbits '0' in
    let sample state qubit =
      let p0, p1 = Vec.probabilities p state qubit in
      let outcome = if Random.State.float rng (p0 +. p1) < p0 then 0 else 1 in
      (outcome, Vec.project p state qubit outcome)
    in
    let step r op =
      let state = Pkg.vroot_edge r in
      (match (op : Op.t) with
       | Barrier _ -> ()
       | Apply _ | Swap _ ->
         Pkg.set_vroot r (Sim.apply_op p ~use_kernels ~n state op)
       | Cond { cond; op } ->
         if Classical.cond_holds cond cvals then
           Pkg.set_vroot r (Sim.apply_op p ~use_kernels ~n state op)
       | Measure { qubit; cbit } ->
         let outcome, state = sample state qubit in
         Bytes.set cvals cbit (if outcome = 1 then '1' else '0');
         Pkg.set_vroot r state
       | Reset qubit ->
         let outcome, state = sample state qubit in
         Pkg.set_vroot r (if outcome = 1 then apply_x state qubit else state));
      Pkg.checkpoint p
    in
    Pkg.with_root_v p (Pkg.zero_state p n) (fun r ->
        List.iter (step r) c.Circ.ops);
    Bytes.to_string cvals

  let run ~seed ~shots ?(use_kernels = true) ?dd_config (c : Circ.t) =
    let rng = Random.State.make [| seed; shots; 0x5a0d |] in
    let n = c.Circ.num_qubits in
    let counts = Hashtbl.create 64 in
    (* one package for all shots: states from different shots share nodes,
       which is exactly what makes repeated runs affordable *)
    let p = Pkg.create ?config:dd_config () in
    for _ = 1 to shots do
      let key = one_shot ~rng ~use_kernels p ~n c in
      let prev = Option.value ~default:0 (Hashtbl.find_opt counts key) in
      Hashtbl.replace counts key (prev + 1)
    done;
    let counts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    { counts; shots }
end

include Make (Dd.Classic)
