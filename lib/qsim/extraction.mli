(** Extraction of the complete measurement-outcome distribution of a
    dynamic quantum circuit by branching classical simulation — the paper's
    Section 5 scheme.

    Every measurement is a branching point: the probabilities of the
    measured qubit are check-pointed and simulation continues independently
    for both outcomes, with subsequent resets translated to no-op / X and
    classically-controlled operations resolved against the recorded
    outcome.  Resets that are not preceded by a measurement of the same
    qubit branch the same way, except that both branches contribute to the
    same classical assignment.  Branches whose accumulated probability falls
    below the pruning cutoff are never simulated.

    Backend-generic: {!Make} runs the walk on any {!Dd.Backend.S}; the
    unfunctorized values are the {!Dd.Classic} instance.  Result and tree
    types (and the [extract.*] metric totals) are shared across backends. *)

type stats =
  { leaves : int  (** simulation paths reaching the end of the circuit *)
  ; branch_points : int  (** measurements/resets encountered, over all paths *)
  ; pruned : int  (** branches cut off by the probability threshold *)
  ; gate_applications : int
  }

type result =
  { distribution : (string * float) list
        (** classical assignment (a '0'/'1' string indexed by cbit) to
            probability, sorted by assignment *)
  ; stats : stats
  }

(** {1 Branching-tree view (paper Fig. 4)} *)

type tree =
  | Leaf of
      { cvals : string
      ; probability : float  (** accumulated along the path *)
      }
  | Branch of
      { qubit : int
      ; cbit : int option  (** [None] for a bare reset *)
      ; p0 : float
      ; p1 : float  (** check-pointed outcome probabilities *)
      ; zero : tree option
      ; one : tree option  (** pruned successors are [None] *)
      }

(** [pp_tree] renders the tree with check-pointed probabilities, in the
    spirit of the paper's Fig. 4. *)
val pp_tree : Format.formatter -> tree -> unit

module Make (B : Dd.Backend.S) : sig
  (** [run c] extracts the distribution of the dynamic circuit [c] starting
      from |0...0>.

      [cutoff] prunes branches with accumulated probability at or below it
      (default [1e-12]).  [domains] > 1 distributes the first branch points
      over that many OCaml domains, each re-simulating its forced prefix
      with a private DD package (the paper notes the branches are
      embarrassingly parallel; its own evaluation is sequential, and so is
      the default here).  [use_kernels] (default [true]) routes gate
      applications through the direct kernels.  [dd_config] bounds the DD
      packages' operation caches and enables automatic compaction; the walk
      roots the state of every pending branch, so mid-walk sweeps are
      safe. *)
  val run :
       ?cutoff:float
    -> ?domains:int
    -> ?use_kernels:bool
    -> ?dd_config:Dd.Backend.config
    -> Circuit.Circ.t
    -> result

  (** [tree c] materializes the whole branching structure; only sensible
      for small numbers of measurements. *)
  val tree :
       ?cutoff:float
    -> ?use_kernels:bool
    -> ?dd_config:Dd.Backend.config
    -> Circuit.Circ.t
    -> tree
end

val run :
     ?cutoff:float
  -> ?domains:int
  -> ?use_kernels:bool
  -> ?dd_config:Dd.Pkg.config
  -> Circuit.Circ.t
  -> result

val tree :
     ?cutoff:float
  -> ?use_kernels:bool
  -> ?dd_config:Dd.Pkg.config
  -> Circuit.Circ.t
  -> tree
