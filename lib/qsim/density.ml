module Cx = Cxnum.Cx
module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

type rho = Cx.t array array

type t =
  { n : int
  ; ensemble : (string, rho) Hashtbl.t
  }

let dim_of n = 1 lsl n

let zero_rho n =
  let dim = dim_of n in
  Array.init dim (fun _ -> Array.make dim Cx.zero)

let init_rho n =
  let m = zero_rho n in
  m.(0).(0) <- Cx.one;
  m

(* Apply a (not necessarily unitary) 2x2 operator [k] to qubit [target] of
   rho from the left (k rho) and its adjoint from the right (rho k^dagger),
   i.e. rho <- k rho k^dagger, restricted to rows/columns where [controls]
   are satisfied.  Left action transforms row pairs; right action column
   pairs with the conjugated matrix. *)
let conjugate_by ~n ~controls ~target (k : Cx.t array) (m : rho) =
  let dim = dim_of n in
  let mask = 1 lsl target in
  let active i =
    List.for_all (fun (q, pos) -> (i lsr q) land 1 = Bool.to_int pos) controls
  in
  (* rows: m <- k m on active row pairs *)
  for i = 0 to dim - 1 do
    if i land mask = 0 && active i then begin
      let j = i lor mask in
      for c = 0 to dim - 1 do
        let a0 = m.(i).(c) and a1 = m.(j).(c) in
        m.(i).(c) <- Cx.add (Cx.mul k.(0) a0) (Cx.mul k.(1) a1);
        m.(j).(c) <- Cx.add (Cx.mul k.(2) a0) (Cx.mul k.(3) a1)
      done
    end
  done;
  (* columns: m <- m k^dagger on active column pairs;
     (m k^dagger)_{r,i} = m_{r,i} conj(k00) + m_{r,j} conj(k01) etc. *)
  for i = 0 to dim - 1 do
    if i land mask = 0 && active i then begin
      let j = i lor mask in
      for r = 0 to dim - 1 do
        let a0 = m.(r).(i) and a1 = m.(r).(j) in
        m.(r).(i) <- Cx.add (Cx.mul a0 (Cx.conj k.(0))) (Cx.mul a1 (Cx.conj k.(1)));
        m.(r).(j) <- Cx.add (Cx.mul a0 (Cx.conj k.(2))) (Cx.mul a1 (Cx.conj k.(3)))
      done
    end
  done

let copy_rho m = Array.map Array.copy m

let add_into dst src =
  Array.iteri (fun r row -> Array.iteri (fun c v -> dst.(r).(c) <- Cx.add dst.(r).(c) v) row) src

let trace_rho m =
  let t = ref 0.0 in
  Array.iteri (fun i row -> t := !t +. row.(i).Cx.re) m;
  !t

let projector outcome =
  if outcome = 0 then [| Cx.one; Cx.zero; Cx.zero; Cx.zero |]
  else [| Cx.zero; Cx.zero; Cx.zero; Cx.one |]

let x_matrix = Gates.matrix Gates.X

let apply_unitary ~n op m =
  match (op : Op.t) with
  | Apply { gate; controls; target } ->
    let controls = List.map (fun (c : Op.control) -> (c.cq, c.pos)) controls in
    conjugate_by ~n ~controls ~target (Gates.matrix gate) m
  | Swap (a, b) ->
    (* native: SWAP rho SWAP exchanges the rows, then the columns, of every
       index pair differing exactly in bits [a] and [b] *)
    let dim = dim_of n in
    let ma = 1 lsl a
    and mb = 1 lsl b in
    for i = 0 to dim - 1 do
      if i land ma <> 0 && i land mb = 0 then begin
        let j = i lxor ma lxor mb in
        let row = m.(i) in
        m.(i) <- m.(j);
        m.(j) <- row
      end
    done;
    for r = 0 to dim - 1 do
      let row = m.(r) in
      for i = 0 to dim - 1 do
        if i land ma <> 0 && i land mb = 0 then begin
          let j = i lxor ma lxor mb in
          let v = row.(i) in
          row.(i) <- row.(j);
          row.(j) <- v
        end
      done
    done
  | Measure _ | Reset _ | Cond _ | Barrier _ ->
    invalid_arg "Density.apply_unitary: non-unitary operation"

type state = t

type noise =
  { depolarizing : float
  ; amplitude_damping : float
  }

let noiseless = { depolarizing = 0.0; amplitude_damping = 0.0 }

(* rho <- sum_k K_k rho K_k^dagger on one qubit; each conjugation is applied
   to a private copy and the results summed. *)
let apply_kraus ~n ~target kraus (m : rho) =
  match kraus with
  | [] -> invalid_arg "Density.apply_kraus: empty channel"
  | first :: rest ->
    let parts =
      List.map
        (fun k ->
          let b = copy_rho m in
          conjugate_by ~n ~controls:[] ~target k b;
          b)
        rest
    in
    conjugate_by ~n ~controls:[] ~target first m;
    List.iter (fun b -> add_into m b) parts

let scale_matrix s k = Array.map (fun z -> Cx.scale s z) k

let apply_noise ~n noise qubits (m : rho) =
  let depolarizing_kraus =
    let p = noise.depolarizing in
    if p <= 0.0 then []
    else begin
      let w_id = Float.sqrt (1.0 -. p) and w_pauli = Float.sqrt (p /. 3.0) in
      [ scale_matrix w_id (Gates.matrix Gates.I)
      ; scale_matrix w_pauli (Gates.matrix Gates.X)
      ; scale_matrix w_pauli (Gates.matrix Gates.Y)
      ; scale_matrix w_pauli (Gates.matrix Gates.Z)
      ]
    end
  in
  let damping_kraus =
    let g = noise.amplitude_damping in
    if g <= 0.0 then []
    else
      [ [| Cx.one; Cx.zero; Cx.zero; Cx.of_float (Float.sqrt (1.0 -. g)) |]
      ; [| Cx.zero; Cx.of_float (Float.sqrt g); Cx.zero; Cx.zero |]
      ]
  in
  let apply target =
    if depolarizing_kraus <> [] then apply_kraus ~n ~target depolarizing_kraus m;
    if damping_kraus <> [] then apply_kraus ~n ~target damping_kraus m
  in
  List.iter apply (List.sort_uniq compare qubits)

let step ?(noise = noiseless) ~n (st : state) op =
  let noisy st =
    if noise = noiseless then st
    else begin
      let qubits = Op.qubits op in
      Hashtbl.iter (fun _ m -> apply_noise ~n noise qubits m) st.ensemble;
      st
    end
  in
  noisy
  @@
  match (op : Op.t) with
  | Barrier _ -> st
  | Apply _ | Swap _ ->
    Hashtbl.iter (fun _ m -> apply_unitary ~n op m) st.ensemble;
    st
  | Cond { cond; op } ->
    Hashtbl.iter
      (fun key m ->
        let cvals = Bytes.of_string key in
        if Classical.cond_holds cond cvals then apply_unitary ~n op m)
      st.ensemble;
    st
  | Reset q ->
    (* channel: P0 rho P0 + X P1 rho P1 X, entry by entry, no splitting *)
    Hashtbl.iter
      (fun _ m ->
        let keep = copy_rho m in
        conjugate_by ~n ~controls:[] ~target:q (projector 0) m;
        conjugate_by ~n ~controls:[] ~target:q (projector 1) keep;
        conjugate_by ~n ~controls:[] ~target:q x_matrix keep;
        add_into m keep)
      st.ensemble;
    st
  | Measure { qubit; cbit } ->
    let next = Hashtbl.create (2 * Hashtbl.length st.ensemble) in
    let merge key m =
      match Hashtbl.find_opt next key with
      | Some existing -> add_into existing m
      | None -> Hashtbl.replace next key m
    in
    Hashtbl.iter
      (fun key m ->
        let branch outcome =
          let b = copy_rho m in
          conjugate_by ~n ~controls:[] ~target:qubit (projector outcome) b;
          if trace_rho b > 1e-15 then begin
            let key' = Bytes.of_string key in
            Bytes.set key' cbit (if outcome = 1 then '1' else '0');
            merge (Bytes.to_string key') b
          end
        in
        branch 0;
        branch 1)
      st.ensemble;
    { st with ensemble = next }

let run_noisy ~noise (c : Circ.t) =
  let n = c.Circ.num_qubits in
  let st = { n; ensemble = Hashtbl.create 8 } in
  Hashtbl.replace st.ensemble (String.make c.Circ.num_cbits '0') (init_rho n);
  List.fold_left (fun st op -> step ~noise ~n st op) st c.Circ.ops

let run c = run_noisy ~noise:noiseless c

let num_qubits st = st.n
let entries st = Hashtbl.length st.ensemble

let distribution st =
  let dist = Hashtbl.create 16 in
  Hashtbl.iter (fun key m -> Classical.add_weighted dist key (trace_rho m)) st.ensemble;
  Classical.sorted_bindings dist

let final_density st =
  let total = zero_rho st.n in
  Hashtbl.iter (fun _ m -> add_into total m) st.ensemble;
  total

let trace st = trace_rho (final_density st)

let purity st =
  let m = final_density st in
  let dim = dim_of st.n in
  let p = ref 0.0 in
  for r = 0 to dim - 1 do
    for c = 0 to dim - 1 do
      (* Tr(rho^2) = sum_{r,c} rho_{r,c} rho_{c,r}; hermitian, so this is
         sum |rho_{r,c}|^2 *)
      p := !p +. (Cx.mul m.(r).(c) m.(c).(r)).Cx.re
    done
  done;
  !p

let qubit_probability st q =
  let m = final_density st in
  let dim = dim_of st.n in
  let mask = 1 lsl q in
  let p = ref 0.0 in
  for i = 0 to dim - 1 do
    if i land mask <> 0 then p := !p +. m.(i).(i).Cx.re
  done;
  !p
