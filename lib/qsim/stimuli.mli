(** The three stimuli classes of Burgholzer & Wille's "Advanced
    Equivalence Checking for Quantum Circuits" (PAPERS.md), as pure,
    seeded, backend-independent data.

    A simulative equivalence check feeds random input states through both
    circuits and compares the outputs; what it can catch depends on how
    the inputs are drawn:

    - {e classical} stimuli — random computational basis states — are the
      cheapest and catch permutation/logic errors;
    - {e local quantum} stimuli — random single-qubit product states —
      additionally expose phase errors a basis state is blind to;
    - {e global quantum} stimuli — random stabilizer states from a short
      random Clifford preparation — add entanglement across the register
      and catch discrepancies only visible on correlated inputs.

    A stimulus is described here as data (bits, amplitude pairs, or a
    Clifford preparation); {!Qcec.Strategy} materializes it as a DD vector
    on whatever backend runs the check, and {!tableau} replays stabilizer
    stimuli on the {!Stabilizer} backend as ground truth. *)

type kind =
  | Classical  (** random computational basis states *)
  | Local_quantum  (** random single-qubit product states *)
  | Global_quantum  (** random stabilizer states via a Clifford preparation *)

val kind_name : kind -> string

(** Inverse of {!kind_name}. *)
val kind_of_string : string -> kind option

type t =
  | Basis_state of bool array  (** one bit per qubit *)
  | Product_state of (Cxnum.Cx.t * Cxnum.Cx.t) array
      (** per-qubit [(alpha, beta)] of [alpha|0> + beta|1>], normalized *)
  | Stabilizer_state of
      { bits : bool array  (** the basis state the preparation starts from *)
      ; prep : Circuit.Op.t list  (** Clifford ops ([H]/[S]/[X]/[CX]) *)
      }

(** [rng ?seed ~num_qubits ~shots ()] — the shared seeding convention:
    deterministic in the instance shape alone, and an explicit [seed]
    {e extends} (never replaces) that basis, so derived seeds like
    [seed + candidate_index] yield distinct, reproducible streams. *)
val rng : ?seed:int -> num_qubits:int -> shots:int -> unit -> Random.State.t

(** [draw st kind ~num_qubits] draws one stimulus, advancing [st]. *)
val draw : Random.State.t -> kind -> num_qubits:int -> t

(** Number of Clifford operations a global stimulus applies ([2 * n]). *)
val prep_depth : int -> int

(** [tableau ~num_qubits s] replays [s] on the stabilizer tableau backend:
    [Some] for classical and global stimuli (which are stabilizer states
    by construction — the preparation only uses Clifford operations),
    [None] for local quantum stimuli (generic product states). *)
val tableau : num_qubits:int -> t -> Stabilizer.t option

val pp : Format.formatter -> t -> unit
