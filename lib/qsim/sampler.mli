(** Stochastic (shot-based) simulation of dynamic circuits — the first
    alternative the paper's Section 5 dismisses: realize every measurement
    and reset probabilistically and repeat the whole simulation, needing
    "huge amounts of individual runs" to pin down the distribution.

    Implemented over the decision-diagram backend; useful as yet another
    oracle (empirical distributions must converge to {!Extraction.run}'s
    exact ones at the usual [O(1/sqrt shots)] rate) and for the ablation
    benchmark quantifying the paper's argument.

    Backend-generic: {!Make} samples over any {!Dd.Backend.S}; the
    unfunctorized values are the {!Dd.Classic} instance. *)

type result =
  { counts : (string * int) list
        (** classical assignment to number of shots observing it *)
  ; shots : int
  }

(** [empirical r] normalizes counts into a distribution comparable with
    {!Extraction.run}. *)
val empirical : result -> (string * float) list

module Make (B : Dd.Backend.S) : sig
  (** [run ~seed ~shots c] performs [shots] independent end-to-end
      simulations, sampling every measurement and reset outcome.
      [use_kernels] (default [true]) uses the direct gate-application
      kernels; [dd_config] bounds the shared DD package's caches and
      enables automatic compaction between operations. *)
  val run :
       seed:int
    -> shots:int
    -> ?use_kernels:bool
    -> ?dd_config:Dd.Backend.config
    -> Circuit.Circ.t
    -> result
end

val run :
     seed:int
  -> shots:int
  -> ?use_kernels:bool
  -> ?dd_config:Dd.Pkg.config
  -> Circuit.Circ.t
  -> result
