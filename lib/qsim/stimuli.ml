module Op = Circuit.Op
module Gates = Circuit.Gates
module Cx = Cxnum.Cx

type kind =
  | Classical
  | Local_quantum
  | Global_quantum

let kind_name = function
  | Classical -> "classical"
  | Local_quantum -> "local"
  | Global_quantum -> "global"

let kind_of_string = function
  | "classical" -> Some Classical
  | "local" -> Some Local_quantum
  | "global" -> Some Global_quantum
  | _ -> None

type t =
  | Basis_state of bool array
  | Product_state of (Cx.t * Cx.t) array
  | Stabilizer_state of
      { bits : bool array
      ; prep : Op.t list
      }

(* The seeding convention every simulative consumer shares: the stream is
   a pure function of the instance shape (qubit and shot counts) plus an
   optional explicit seed that extends rather than replaces it, so batch
   runs can derive a distinct, reproducible stream per job (and, in a
   portfolio race, per candidate) from one base seed. *)
let rng ?seed ~num_qubits ~shots () =
  match seed with
  | None -> Random.State.make [| 0x51ab; num_qubits; shots |]
  | Some seed -> Random.State.make [| 0x51ab; num_qubits; shots; seed |]

let random_bits st n = Array.init n (fun _ -> Random.State.bool st)

(* Local quantum stimuli: an independent random point on each qubit's
   Bloch sphere, as the (alpha, beta) amplitude pair of
   cos(theta/2)|0> + e^{i phi} sin(theta/2)|1>. *)
let random_amplitudes st n =
  Array.init n (fun _ ->
    let theta = Random.State.float st Float.pi in
    let phi = Random.State.float st (2.0 *. Float.pi) in
    ( Cx.of_float (Float.cos (theta /. 2.0))
    , Cx.polar (Float.sin (theta /. 2.0)) phi ))

(* How many random Clifford operations a global stimulus applies on top of
   its random basis state: enough layers for every qubit to entangle with
   the rest of the register (each iteration touches one or two qubits, so
   2n iterations give each wire ~4 chances to interact). *)
let prep_depth n = 2 * n

(* Global quantum stimuli: a random stabilizer state, prepared as a short
   random Clifford circuit (H/S/X plus CX) applied to a random basis
   state.  Every generated operation is checked against the tableau
   backend's Clifford predicate, so the promise that {!tableau} can always
   replay the preparation holds by construction. *)
let random_clifford_prep st n =
  let gates = [| Gates.H; Gates.S; Gates.X |] in
  List.init (prep_depth n) (fun _ ->
    let op =
      if n >= 2 && Random.State.bool st then begin
        let a = Random.State.int st n in
        let rec other () =
          let b = Random.State.int st n in
          if b = a then other () else b
        in
        Op.controlled Gates.X ~control:a ~target:(other ())
      end
      else begin
        let g = gates.(Random.State.int st (Array.length gates)) in
        Op.apply g (Random.State.int st n)
      end
    in
    (match (op : Op.t) with
     | Op.Apply { gate; _ } when not (Stabilizer.is_clifford_gate gate) ->
       invalid_arg "Stimuli: generated a non-Clifford preparation gate"
     | _ -> ());
    op)

let draw st kind ~num_qubits:n =
  match kind with
  | Classical -> Basis_state (random_bits st n)
  | Local_quantum -> Product_state (random_amplitudes st n)
  | Global_quantum ->
    (* the bits are drawn before the preparation ops, fixing the stream
       layout other consumers (and the verdict cache) rely on *)
    let bits = random_bits st n in
    Stabilizer_state { bits; prep = random_clifford_prep st n }

(* Classical and global stimuli are stabilizer states; replaying the
   preparation on the tableau backend is both the ground truth the DD
   materialization must agree with and a structural check that the
   preparation really is Clifford.  Local stimuli are generic product
   states the tableau formalism cannot carry. *)
let tableau ~num_qubits:n = function
  | Product_state _ -> None
  | Basis_state bits ->
    let st = Stabilizer.init n in
    Array.iteri (fun q b -> if b then Stabilizer.apply_unitary_op st (Op.apply Gates.X q)) bits;
    Some st
  | Stabilizer_state { bits; prep } ->
    let st = Stabilizer.init n in
    Array.iteri (fun q b -> if b then Stabilizer.apply_unitary_op st (Op.apply Gates.X q)) bits;
    List.iter (Stabilizer.apply_unitary_op st) prep;
    Some st

let pp ppf = function
  | Basis_state bits ->
    Fmt.pf ppf "|%s>"
      (String.concat ""
         (Array.to_list (Array.map (fun b -> if b then "1" else "0") bits)))
  | Product_state amps -> Fmt.pf ppf "product state on %d qubits" (Array.length amps)
  | Stabilizer_state { bits; prep } ->
    Fmt.pf ppf "stabilizer state (%d qubits, %d Clifford preparation ops)"
      (Array.length bits) (List.length prep)
