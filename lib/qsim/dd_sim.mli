(** Decision-diagram based circuit simulation and unitary construction.

    This is the scalable backend (cf. [35] in the paper): circuits over a
    hundred qubits are routinely simulated as long as their states compress
    well.

    Backend-generic: {!Make} instantiates the simulator over any
    {!Dd.Backend.S} implementation; the unfunctorized values are the
    {!Dd.Classic} instance, preserving the historical API. *)

module Make (B : Dd.Backend.S) : sig
  (** [op_unitary p ~n op] is the matrix DD of a unitary operation ([Apply]
      or [Swap]; swaps are built from three CNOTs).  Raises
      [Invalid_argument] on non-unitary operations.  This is the generic
      path kept for tests and A/B comparison; the kernel paths below never
      materialize it. *)
  val op_unitary : B.pkg -> n:int -> Circuit.Op.t -> B.medge

  (** [apply_op p ~n state op] applies a unitary operation to a state.
      [use_kernels] (default [true]) routes through the direct
      gate-application kernels ([Mat.apply_gate]); [false] falls back to
      building the full gate DD. *)
  val apply_op :
    B.pkg -> ?use_kernels:bool -> n:int -> B.vedge -> Circuit.Op.t -> B.vedge

  (** [mul_op_left p ~use_kernels ~n op m] is [U_op * m]; the kernel path
      applies the gate in place without materializing its DD. *)
  val mul_op_left :
    B.pkg -> use_kernels:bool -> n:int -> Circuit.Op.t -> B.medge -> B.medge

  (** [mul_op_right p ~use_kernels ~n op m] is [m * U_op^dagger]; the kernel
      path conjugates the 2x2 entry-wise, with no adjoint pass. *)
  val mul_op_right :
    B.pkg -> use_kernels:bool -> n:int -> Circuit.Op.t -> B.medge -> B.medge

  (** [simulate p c] runs a unitary circuit from |0...0> (final measurements
      and barriers are skipped).  Raises [Invalid_argument] on dynamic
      circuits. *)
  val simulate : B.pkg -> ?use_kernels:bool -> Circuit.Circ.t -> B.vedge

  (** [build_unitary p c] multiplies all gate DDs into the circuit's system
      matrix.  Raises [Invalid_argument] if [c] contains non-unitary
      operations (strip measurements first). *)
  val build_unitary : B.pkg -> ?use_kernels:bool -> Circuit.Circ.t -> B.medge

  (** [measured_distribution p state ~n ~measures] marginalizes the final
      state onto the classical bits written by [measures] ([(qubit, cbit)]
      pairs): the result maps a classical assignment (a '0'/'1' string
      indexed by cbit, of length [num_cbits]) to its probability.
      Enumerates only paths with probability above [cutoff]; stops after
      [limit] basis states (default [2^22]). *)
  val measured_distribution :
       B.pkg
    -> B.vedge
    -> n:int
    -> num_cbits:int
    -> measures:(int * int) list
    -> ?cutoff:float
    -> ?limit:int
    -> unit
    -> (string * float) list
end

val op_unitary : Dd.Pkg.t -> n:int -> Circuit.Op.t -> Dd.Types.medge

val apply_op :
     Dd.Pkg.t
  -> ?use_kernels:bool
  -> n:int
  -> Dd.Types.vedge
  -> Circuit.Op.t
  -> Dd.Types.vedge

val mul_op_left :
     Dd.Pkg.t
  -> use_kernels:bool
  -> n:int
  -> Circuit.Op.t
  -> Dd.Types.medge
  -> Dd.Types.medge

val mul_op_right :
     Dd.Pkg.t
  -> use_kernels:bool
  -> n:int
  -> Circuit.Op.t
  -> Dd.Types.medge
  -> Dd.Types.medge

val simulate : Dd.Pkg.t -> ?use_kernels:bool -> Circuit.Circ.t -> Dd.Types.vedge

val build_unitary :
  Dd.Pkg.t -> ?use_kernels:bool -> Circuit.Circ.t -> Dd.Types.medge

val measured_distribution :
     Dd.Pkg.t
  -> Dd.Types.vedge
  -> n:int
  -> num_cbits:int
  -> measures:(int * int) list
  -> ?cutoff:float
  -> ?limit:int
  -> unit
  -> (string * float) list
