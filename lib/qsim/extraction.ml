module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates
module M = Obs.Metrics

(* observability: totals of the per-run counters below, accumulated across
   every extraction in the process (merged once per walk, so the branching
   loop itself stays uninstrumented).  The counters live outside the backend
   functor so classic and packed extractions share one set of totals. *)
let m_leaves = M.counter "extract.leaves"
let m_branch_points = M.counter "extract.branch_points"
let m_pruned = M.counter "extract.pruned"
let m_gates = M.counter "extract.gate_applications"
let m_runs = M.counter "extract.runs"

type stats =
  { leaves : int
  ; branch_points : int
  ; pruned : int
  ; gate_applications : int
  }

type result =
  { distribution : (string * float) list
  ; stats : stats
  }

type counters =
  { mutable c_leaves : int
  ; mutable c_branch_points : int
  ; mutable c_pruned : int
  ; mutable c_gates : int
  }

let new_counters () = { c_leaves = 0; c_branch_points = 0; c_pruned = 0; c_gates = 0 }

let publish_counters c =
  M.add m_leaves c.c_leaves;
  M.add m_branch_points c.c_branch_points;
  M.add m_pruned c.c_pruned;
  M.add m_gates c.c_gates

type tree =
  | Leaf of
      { cvals : string
      ; probability : float
      }
  | Branch of
      { qubit : int
      ; cbit : int option
      ; p0 : float
      ; p1 : float
      ; zero : tree option
      ; one : tree option
      }

let rec pp_tree ppf = function
  | Leaf { cvals; probability } -> Fmt.pf ppf "|%s> : %.4f" cvals probability
  | Branch { qubit; cbit; p0; p1; zero; one } ->
    let what =
      match cbit with
      | Some cb -> Fmt.str "measure q%d -> c%d" qubit cb
      | None -> Fmt.str "reset q%d" qubit
    in
    let pp_side ppf (label, prob, side) =
      match side with
      | None -> Fmt.pf ppf "%s (p=%.4f): pruned" label prob
      | Some t -> Fmt.pf ppf "@[<v 2>%s (p=%.4f):@,%a@]" label prob pp_tree t
    in
    Fmt.pf ppf "@[<v>%s@,%a@,%a@]" what pp_side ("0", p0, zero) pp_side ("1", p1, one)

module Make (B : Dd.Backend.S) = struct
  module Pkg = B.Pkg
  module Vec = B.Vec
  module Mat = B.Mat
  module Sim = Dd_sim.Make (B)

  (* Outcome probabilities of one qubit, renormalized against accumulated
     drift.  The state is kept normalized along every path, so p0 + p1 is 1
     up to rounding. *)
  let outcome_probs p state qubit =
    let p0, p1 = Vec.probabilities p state qubit in
    let total = p0 +. p1 in
    (p0 /. total, p1 /. total)

  (* The core branching walk.  [forced] optionally prescribes outcomes for
     the first branch points (used by the parallel driver); [on_branch] lets
     the tree builder observe the branching structure.

     Each branch frame holds its state in a registered root: the parent's
     pre-projection state stays rooted across the recursion into the first
     outcome, so automatic compaction at any checkpoint safepoint cannot
     sweep a state that a pending sibling branch still needs. *)
  let walk ~pkg:p ~use_kernels ~n ~cutoff ~counters ~record ?(forced = [||])
      circuit_ops cvals_init =
    let x_gate = Gates.matrix Gates.X in
    let apply_x state qubit =
      if use_kernels then Mat.apply_gate p ~n ~controls:[] ~target:qubit x_gate state
      else Mat.apply p (Pkg.gate p ~n ~controls:[] ~target:qubit x_gate) state
    in
    let rec go r ops cvals prob depth =
      match ops with
      | [] ->
        counters.c_leaves <- counters.c_leaves + 1;
        record (Bytes.to_string cvals) prob
      | op :: rest ->
        (match (op : Op.t) with
         | Barrier _ -> go r rest cvals prob depth
         | Apply _ | Swap _ ->
           counters.c_gates <- counters.c_gates + 1;
           Pkg.set_vroot r
             (Sim.apply_op p ~use_kernels ~n (Pkg.vroot_edge r) op);
           Pkg.checkpoint p;
           go r rest cvals prob depth
         | Cond { cond; op } ->
           if Classical.cond_holds cond cvals then begin
             counters.c_gates <- counters.c_gates + 1;
             Pkg.set_vroot r
               (Sim.apply_op p ~use_kernels ~n (Pkg.vroot_edge r) op);
             Pkg.checkpoint p
           end;
           go r rest cvals prob depth
         | Measure { qubit; cbit } ->
           counters.c_branch_points <- counters.c_branch_points + 1;
           let p0, p1 = outcome_probs p (Pkg.vroot_edge r) qubit in
           let take outcome p_out =
             let state' = Vec.project p (Pkg.vroot_edge r) qubit outcome in
             let cvals' = Bytes.copy cvals in
             Bytes.set cvals' cbit (if outcome = 1 then '1' else '0');
             Pkg.with_root_v p state' (fun r' ->
                 Pkg.checkpoint p;
                 go r' rest cvals' (prob *. p_out) (depth + 1))
           in
           if depth < Array.length forced then begin
             let outcome = forced.(depth) in
             let p_out = if outcome = 1 then p1 else p0 in
             if prob *. p_out > cutoff then take outcome p_out
           end
           else begin
             if prob *. p1 > cutoff then take 1 p1
             else counters.c_pruned <- counters.c_pruned + 1;
             if prob *. p0 > cutoff then take 0 p0
             else counters.c_pruned <- counters.c_pruned + 1
           end
         | Reset qubit ->
           counters.c_branch_points <- counters.c_branch_points + 1;
           let p0, p1 = outcome_probs p (Pkg.vroot_edge r) qubit in
           let take outcome p_out =
             let state' = Vec.project p (Pkg.vroot_edge r) qubit outcome in
             let state' = if outcome = 1 then apply_x state' qubit else state' in
             Pkg.with_root_v p state' (fun r' ->
                 Pkg.checkpoint p;
                 go r' rest cvals (prob *. p_out) (depth + 1))
           in
           if depth < Array.length forced then begin
             let outcome = forced.(depth) in
             let p_out = if outcome = 1 then p1 else p0 in
             if prob *. p_out > cutoff then take outcome p_out
           end
           else begin
             if prob *. p1 > cutoff then take 1 p1
             else counters.c_pruned <- counters.c_pruned + 1;
             if prob *. p0 > cutoff then take 0 p0
             else counters.c_pruned <- counters.c_pruned + 1
           end)
    in
    Pkg.with_root_v p (Pkg.zero_state p n) (fun r ->
        go r circuit_ops cvals_init 1.0 0)

  let run_sequential ~cutoff ~use_kernels ?dd_config (c : Circ.t) =
    let p = Pkg.create ?config:dd_config () in
    let counters = new_counters () in
    let dist : (string, float) Hashtbl.t = Hashtbl.create 64 in
    let record = Classical.add_weighted dist in
    Obs.Span.with_ "extract.walk" (fun () ->
      walk ~pkg:p ~use_kernels ~n:c.Circ.num_qubits ~cutoff ~counters ~record
        c.Circ.ops
        (Bytes.make c.Circ.num_cbits '0'));
    publish_counters counters;
    { distribution = Classical.sorted_bindings dist
    ; stats =
        { leaves = counters.c_leaves
        ; branch_points = counters.c_branch_points
        ; pruned = counters.c_pruned
        ; gate_applications = counters.c_gates
        }
    }

  (* Parallel driver: the first [depth] branch points are forced per task,
     so the 2^depth tasks partition the branching tree; each re-simulates
     its prefix in a private package (DD nodes cannot be shared across
     domains). *)
  let run_parallel ~cutoff ~use_kernels ~domains ?dd_config (c : Circ.t) =
    let branchy =
      List.exists (function Op.Measure _ | Op.Reset _ -> true | _ -> false) c.Circ.ops
    in
    if not branchy then run_sequential ~cutoff ~use_kernels ?dd_config c
    else begin
      let rec depth_for d = if 1 lsl d >= domains then d else depth_for (d + 1) in
      let n_branches =
        List.length
          (List.filter (function Op.Measure _ | Op.Reset _ -> true | _ -> false) c.Circ.ops)
      in
      let depth = min (depth_for 0) n_branches in
      let tasks = 1 lsl depth in
      let task_of idx () =
        let p = Pkg.create ?config:dd_config () in
        let counters = new_counters () in
        let dist : (string, float) Hashtbl.t = Hashtbl.create 64 in
        let record = Classical.add_weighted dist in
        let forced = Array.init depth (fun k -> (idx lsr k) land 1) in
        walk ~pkg:p ~use_kernels ~n:c.Circ.num_qubits ~cutoff ~counters ~record
          ~forced c.Circ.ops
          (Bytes.make c.Circ.num_cbits '0');
        (dist, counters)
      in
      (* run at most [domains] tasks simultaneously *)
      let results = Array.make tasks None in
      Obs.Span.with_ "extract.walk.parallel" (fun () ->
        let next = ref 0 in
        while !next < tasks do
          let batch = min domains (tasks - !next) in
          let handles =
            List.init batch (fun i -> (!next + i, Domain.spawn (task_of (!next + i))))
          in
          List.iter (fun (idx, h) -> results.(idx) <- Some (Domain.join h)) handles;
          next := !next + batch
        done);
      let dist : (string, float) Hashtbl.t = Hashtbl.create 64 in
      let counters = new_counters () in
      Array.iter
        (function
          | None -> ()
          | Some (d, ctr) ->
            Hashtbl.iter (fun k v -> Classical.add_weighted dist k v) d;
            counters.c_leaves <- counters.c_leaves + ctr.c_leaves;
            counters.c_branch_points <- counters.c_branch_points + ctr.c_branch_points;
            counters.c_pruned <- counters.c_pruned + ctr.c_pruned;
            counters.c_gates <- counters.c_gates + ctr.c_gates)
        results;
      publish_counters counters;
      { distribution = Classical.sorted_bindings dist
      ; stats =
          { leaves = counters.c_leaves
          ; branch_points = counters.c_branch_points
          ; pruned = counters.c_pruned
          ; gate_applications = counters.c_gates
          }
      }
    end

  let run ?(cutoff = 1e-12) ?(domains = 1) ?(use_kernels = true) ?dd_config c =
    M.incr m_runs;
    if domains <= 1 then run_sequential ~cutoff ~use_kernels ?dd_config c
    else run_parallel ~cutoff ~use_kernels ~domains ?dd_config c

  let tree ?(cutoff = 1e-12) ?(use_kernels = true) ?dd_config (c : Circ.t) =
    let p = Pkg.create ?config:dd_config () in
    let n = c.Circ.num_qubits in
    let x_gate = Gates.matrix Gates.X in
    let apply_x state qubit =
      if use_kernels then Mat.apply_gate p ~n ~controls:[] ~target:qubit x_gate state
      else Mat.apply p (Pkg.gate p ~n ~controls:[] ~target:qubit x_gate) state
    in
    let rec go r ops cvals prob =
      match ops with
      | [] -> Leaf { cvals = Bytes.to_string cvals; probability = prob }
      | op :: rest ->
        (match (op : Op.t) with
         | Barrier _ -> go r rest cvals prob
         | Apply _ | Swap _ ->
           Pkg.set_vroot r
             (Sim.apply_op p ~use_kernels ~n (Pkg.vroot_edge r) op);
           Pkg.checkpoint p;
           go r rest cvals prob
         | Cond { cond; op } ->
           if Classical.cond_holds cond cvals then begin
             Pkg.set_vroot r
               (Sim.apply_op p ~use_kernels ~n (Pkg.vroot_edge r) op);
             Pkg.checkpoint p
           end;
           go r rest cvals prob
         | Measure { qubit; cbit } ->
           let p0, p1 = outcome_probs p (Pkg.vroot_edge r) qubit in
           let side outcome p_out =
             if prob *. p_out > cutoff then begin
               let state' = Vec.project p (Pkg.vroot_edge r) qubit outcome in
               let cvals' = Bytes.copy cvals in
               Bytes.set cvals' cbit (if outcome = 1 then '1' else '0');
               Some
                 (Pkg.with_root_v p state' (fun r' ->
                      Pkg.checkpoint p;
                      go r' rest cvals' (prob *. p_out)))
             end
             else None
           in
           Branch { qubit; cbit = Some cbit; p0; p1; zero = side 0 p0; one = side 1 p1 }
         | Reset qubit ->
           let p0, p1 = outcome_probs p (Pkg.vroot_edge r) qubit in
           let side outcome p_out =
             if prob *. p_out > cutoff then begin
               let state' = Vec.project p (Pkg.vroot_edge r) qubit outcome in
               let state' = if outcome = 1 then apply_x state' qubit else state' in
               Some
                 (Pkg.with_root_v p state' (fun r' ->
                      Pkg.checkpoint p;
                      go r' rest cvals (prob *. p_out)))
             end
             else None
           in
           Branch { qubit; cbit = None; p0; p1; zero = side 0 p0; one = side 1 p1 })
    in
    Pkg.with_root_v p (Pkg.zero_state p n) (fun r ->
        go r c.Circ.ops (Bytes.make c.Circ.num_cbits '0') 1.0)
end

include Make (Dd.Classic)
