module Cx = Cxnum.Cx
module Gates = Circuit.Gates

type pauli =
  | I
  | X
  | Y
  | Z

type term =
  { coefficient : float
  ; paulis : (int * pauli) list
  }

type t = term list

let z q = [ { coefficient = 1.0; paulis = [ (q, Z) ] } ]
let zz a b = [ { coefficient = 1.0; paulis = [ (a, Z); (b, Z) ] } ]
let parity qubits = [ { coefficient = 1.0; paulis = List.map (fun q -> (q, Z)) qubits } ]

let number qubits =
  { coefficient = 0.5 *. float_of_int (List.length qubits); paulis = [] }
  :: List.map (fun q -> { coefficient = -0.5; paulis = [ (q, Z) ] }) qubits

let scale s obs = List.map (fun t -> { t with coefficient = s *. t.coefficient }) obs
let add a b = a @ b

let matrix_of_pauli = function
  | I -> Gates.matrix Gates.I
  | X -> Gates.matrix Gates.X
  | Y -> Gates.matrix Gates.Y
  | Z -> Gates.matrix Gates.Z

let validate_term term =
  let qs = List.map fst term.paulis in
  if List.length (List.sort_uniq compare qs) <> List.length qs then
    invalid_arg "Observable: duplicate qubit in a Pauli string"

module Make (B : Dd.Backend.S) = struct
  module Pkg = B.Pkg
  module Vec = B.Vec
  module Mat = B.Mat

  let expectation p state ~n obs =
    (* root the input and the per-term transformed state so the loop can
       pass through auto-GC safepoints between Pauli applications *)
    Pkg.with_root_v p state (fun rs ->
        let term_value term =
          validate_term term;
          Pkg.with_root_v p (Pkg.vroot_edge rs) (fun rt ->
              List.iter
                (fun (q, pauli) ->
                  match pauli with
                  | I -> ()
                  | _ ->
                    Pkg.set_vroot rt
                      (Mat.apply_gate p ~n ~controls:[] ~target:q
                         (matrix_of_pauli pauli) (Pkg.vroot_edge rt));
                    Pkg.checkpoint p)
                term.paulis;
              term.coefficient
              *. (Vec.inner_product p (Pkg.vroot_edge rs) (Pkg.vroot_edge rt))
                   .Cx.re)
        in
        List.fold_left (fun acc term -> acc +. term_value term) 0.0 obs)
end

include Make (Dd.Classic)

let expectation_dense (sv : Statevector.t) obs =
  let term_value term =
    validate_term term;
    let copy = Statevector.copy sv in
    List.iter
      (fun (q, pauli) ->
        match pauli with
        | I -> ()
        | _ -> Statevector.apply_gate copy ~controls:[] ~target:q (matrix_of_pauli pauli))
      term.paulis;
    let ip = ref Cx.zero in
    Array.iteri
      (fun i a -> ip := Cx.add !ip (Cx.mul (Cx.conj a) copy.Statevector.amps.(i)))
      sv.Statevector.amps;
    term.coefficient *. !ip.Cx.re
  in
  List.fold_left (fun acc term -> acc +. term_value term) 0.0 obs

let expectation_density d obs =
  let rho = Density.final_density d in
  let dim = Array.length rho in
  let n =
    let rec log2 x acc = if x = 1 then acc else log2 (x / 2) (acc + 1) in
    log2 dim 0
  in
  (* Tr(rho P) with P a Pauli string: sum over basis states of the matrix
     element <i| rho P |i>; evaluate P |i> = phase * |j> directly. *)
  let term_value term =
    validate_term term;
    let total = ref Cx.zero in
    for i = 0 to dim - 1 do
      (* compute P|i> = phase |j| *)
      let j = ref i and phase = ref Cx.one in
      List.iter
        (fun (q, pauli) ->
          if q >= n then invalid_arg "Observable.expectation_density: qubit range";
          let bit = (!j lsr q) land 1 in
          match pauli with
          | I -> ()
          | X -> j := !j lxor (1 lsl q)
          | Y ->
            j := !j lxor (1 lsl q);
            phase := Cx.mul !phase (if bit = 0 then Cx.i else Cx.neg Cx.i)
          | Z -> if bit = 1 then phase := Cx.neg !phase)
        term.paulis;
      (* <i| rho (phase |j>) ... careful: we need Tr(rho P) = sum_i (rho P)_{ii}
         = sum_i rho_{i,j(i)} * phase(i) where P|i> = phase |j> means
         P_{j,i} = phase, so (rho P)_{ii} = rho_{i,j} P_{j,i}. *)
      total := Cx.add !total (Cx.mul rho.(i).(!j) !phase)
    done;
    term.coefficient *. !total.Cx.re
  in
  List.fold_left (fun acc term -> acc +. term_value term) 0.0 obs
