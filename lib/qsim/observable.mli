(** Pauli-string observables and expectation values over both simulation
    backends — handy when a verification flow needs physical quantities
    (energies, magnetizations, parities) rather than full distributions. *)

type pauli =
  | I
  | X
  | Y
  | Z

(** One weighted Pauli string; qubits not listed act as identity.  A qubit
    may appear at most once per term. *)
type term =
  { coefficient : float
  ; paulis : (int * pauli) list
  }

(** A Hermitian observable as a real-weighted sum of Pauli strings. *)
type t = term list

(** {1 Constructors} *)

val z : int -> t
val zz : int -> int -> t

(** [parity qubits] is the tensor product of Z over [qubits]. *)
val parity : int list -> t

(** [number qubits] counts excitations: [sum_q (1 - Z_q) / 2]. *)
val number : int list -> t

val scale : float -> t -> t
val add : t -> t -> t

(** {1 Evaluation} *)

module Make (B : Dd.Backend.S) : sig
  (** [expectation p state ~n obs] is [<state| obs |state>] on the DD
      backend [B]. *)
  val expectation : B.pkg -> B.vedge -> n:int -> t -> float
end

(** [expectation p state ~n obs] is [<state| obs |state>] on the classic DD
    backend. *)
val expectation : Dd.Pkg.t -> Dd.Types.vedge -> n:int -> t -> float

(** [expectation_dense sv obs] is the dense-backend evaluation, used as the
    oracle in tests. *)
val expectation_dense : Statevector.t -> t -> float

(** [expectation_density d obs] evaluates [Tr(rho obs)] on a density-matrix
    simulation result (summed over its classical ensemble). *)
val expectation_density : Density.t -> t -> float
