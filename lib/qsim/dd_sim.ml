module Cx = Cxnum.Cx
module Op = Circuit.Op
module Circ = Circuit.Circ
module Gates = Circuit.Gates

let controls_of (cs : Op.control list) = List.map (fun (c : Op.control) -> (c.cq, c.pos)) cs

module Make (B : Dd.Backend.S) = struct
  module Pkg = B.Pkg
  module Vec = B.Vec
  module Mat = B.Mat

  let op_unitary p ~n op =
    match (op : Op.t) with
    | Apply { gate; controls; target } ->
      Pkg.gate p ~n ~controls:(controls_of controls) ~target (Gates.matrix gate)
    | Swap (a, b) ->
      let x = Gates.matrix Gates.X in
      let cx c t = Pkg.gate p ~n ~controls:[ (c, true) ] ~target:t x in
      let ab = cx a b and ba = cx b a in
      Mat.mul p ab (Mat.mul p ba ab)
    | Measure _ | Reset _ | Cond _ | Barrier _ ->
      invalid_arg "Dd_sim.op_unitary: non-unitary operation"

  let apply_op p ?(use_kernels = true) ~n state op =
    match (op : Op.t) with
    | Apply { gate; controls; target } when use_kernels ->
      Mat.apply_gate p ~n ~controls:(controls_of controls) ~target
        (Gates.matrix gate) state
    | Swap (a, b) when use_kernels -> Mat.apply_swap p ~n a b state
    | Apply _ | Swap _ -> Mat.apply p (op_unitary p ~n op) state
    | Measure _ | Reset _ | Cond _ | Barrier _ ->
      invalid_arg "Dd_sim.apply_op: non-unitary operation"

  let mul_op_left p ~use_kernels ~n op m =
    match (op : Op.t) with
    | Apply { gate; controls; target } when use_kernels ->
      Mat.mul_gate_left p ~n ~controls:(controls_of controls) ~target
        (Gates.matrix gate) m
    | Swap (a, b) when use_kernels -> Mat.mul_swap_left p ~n a b m
    | Apply _ | Swap _ -> Mat.mul p (op_unitary p ~n op) m
    | Measure _ | Reset _ | Cond _ | Barrier _ ->
      invalid_arg "Dd_sim.mul_op_left: non-unitary operation"

  let mul_op_right p ~use_kernels ~n op m =
    match (op : Op.t) with
    | Apply { gate; controls; target } when use_kernels ->
      Mat.mul_gate_right p ~n ~controls:(controls_of controls) ~target
        (Gates.matrix gate) m
    | Swap (a, b) when use_kernels -> Mat.mul_swap_right p ~n a b m
    | Apply _ | Swap _ -> Mat.mul p m (Mat.adjoint p (op_unitary p ~n op))
    | Measure _ | Reset _ | Cond _ | Barrier _ ->
      invalid_arg "Dd_sim.mul_op_right: non-unitary operation"

  let simulate p ?(use_kernels = true) (c : Circ.t) =
    if Circ.is_dynamic c then
      invalid_arg "Dd_sim.simulate: dynamic circuit (use Extraction.run)";
    let n = c.Circ.num_qubits in
    Pkg.with_root_v p (Pkg.zero_state p n) (fun r ->
        let step op =
          match (op : Op.t) with
          | Measure _ | Barrier _ -> ()
          | Apply _ | Swap _ ->
            Pkg.set_vroot r (apply_op p ~use_kernels ~n (Pkg.vroot_edge r) op);
            Pkg.checkpoint p
          | Reset _ | Cond _ -> assert false (* excluded by is_dynamic *)
        in
        List.iter step c.Circ.ops;
        Pkg.vroot_edge r)

  let build_unitary p ?(use_kernels = true) (c : Circ.t) =
    let n = c.Circ.num_qubits in
    Pkg.with_root_m p (Pkg.ident p n) (fun r ->
        let step op =
          match (op : Op.t) with
          | Barrier _ -> ()
          | Apply _ | Swap _ ->
            Pkg.set_mroot r
              (mul_op_left p ~use_kernels ~n op (Pkg.mroot_edge r));
            Pkg.checkpoint p
          | Measure _ | Reset _ | Cond _ ->
            invalid_arg "Dd_sim.build_unitary: non-unitary operation in circuit"
        in
        List.iter step c.Circ.ops;
        Pkg.mroot_edge r)

  let measured_distribution p state ~n ~num_cbits ~measures ?(cutoff = 1e-12)
      ?(limit = 1 lsl 22) () =
    let cbit_of = Hashtbl.create 16 in
    List.iter (fun (q, cb) -> Hashtbl.replace cbit_of q cb) measures;
    let paths = Vec.nonzero_paths p state ~n ~cutoff ~limit () in
    let dist : (string, float) Hashtbl.t = Hashtbl.create 64 in
    let record (bits, prob) =
      let key = Bytes.make num_cbits '0' in
      Array.iteri
        (fun q b ->
          match Hashtbl.find_opt cbit_of q with
          | Some cb -> if b = 1 then Bytes.set key cb '1'
          | None -> ())
        bits;
      let key = Bytes.to_string key in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt dist key) in
      Hashtbl.replace dist key (prev +. prob)
    in
    List.iter record paths;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) dist []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

include Make (Dd.Classic)
