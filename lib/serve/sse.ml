type event =
  { id : int option
  ; event : string option
  ; data : string
  }

let encode e =
  let b = Buffer.create (64 + String.length e.data) in
  (match e.id with
   | Some id -> Buffer.add_string b (Printf.sprintf "id: %d\n" id)
   | None -> ());
  (match e.event with
   | Some name -> Buffer.add_string b (Printf.sprintf "event: %s\n" name)
   | None -> ());
  (* multi-line payloads become one data: line each; the decoder joins
     them back with \n, per the SSE specification *)
  List.iter
    (fun line -> Buffer.add_string b (Printf.sprintf "data: %s\n" line))
    (String.split_on_char '\n' e.data);
  Buffer.add_char b '\n';
  Buffer.contents b

let comment msg = Printf.sprintf ": %s\n\n" msg

(* strictly-framed decoder for tests and clients: frames are separated by
   a blank line; unknown fields and comment lines are skipped *)
let decode s =
  let lines = String.split_on_char '\n' s in
  let strip l =
    let n = String.length l in
    if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
  in
  let field l name =
    let p = name ^ ":" in
    let pn = String.length p in
    if String.length l >= pn && String.sub l 0 pn = p then begin
      let v = String.sub l pn (String.length l - pn) in
      Some (if String.length v > 0 && v.[0] = ' ' then String.sub v 1 (String.length v - 1) else v)
    end
    else None
  in
  let flush (id, name, data) acc =
    match (id, name, data) with
    | None, None, [] -> acc
    | _ -> { id; event = name; data = String.concat "\n" (List.rev data) } :: acc
  in
  let rec go acc cur = function
    | [] -> List.rev (flush cur acc)
    | line :: rest ->
      let line = strip line in
      if line = "" then go (flush cur acc) (None, None, []) rest
      else if line.[0] = ':' then go acc cur rest
      else begin
        let id, name, data = cur in
        match field line "id" with
        | Some v -> go acc (int_of_string_opt v, name, data) rest
        | None ->
          (match field line "event" with
           | Some v -> go acc (id, Some v, data) rest
           | None ->
             (match field line "data" with
              | Some v -> go acc (id, name, v :: data) rest
              | None -> go acc cur rest))
      end
  in
  go [] (None, None, []) lines
