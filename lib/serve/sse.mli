(** Server-sent-events framing ([text/event-stream]).

    The daemon's per-job progress stream speaks this format: every frame
    carries a monotonically increasing [id] (the job-local sequence
    number, usable as [Last-Event-ID] on reconnect), an [event] name
    ([queued] / [started] / [progress] / [done]) and one JSON document as
    [data].  {!decode} inverts {!encode} exactly — the round-trip is
    pinned by tests. *)

type event =
  { id : int option
  ; event : string option
  ; data : string  (** may span lines; encoded as one [data:] line each *)
  }

val encode : event -> string

(** A keep-alive comment frame ([: msg]), ignored by decoders. *)
val comment : string -> string

(** [decode s] parses a complete stream (comments and unknown fields are
    skipped; frames end at a blank line). *)
val decode : string -> event list
