type bucket =
  { mutable tokens : float
  ; mutable at : float
  }

type t =
  { rate : float
  ; burst : float
  ; lock : Mutex.t
  ; buckets : (string, bucket) Hashtbl.t
  }

let create ~rate ~burst =
  { rate; burst = float_of_int (max 1 burst); lock = Mutex.create (); buckets = Hashtbl.create 64 }

(* drop buckets that have refilled completely: they hold no state a fresh
   one would not *)
let prune t now =
  let dead =
    Hashtbl.fold
      (fun k b acc ->
        if b.tokens +. ((now -. b.at) *. t.rate) >= t.burst then k :: acc else acc)
      t.buckets []
  in
  List.iter (Hashtbl.remove t.buckets) dead

let check t ~key ~now =
  if t.rate <= 0.0 then Ok ()
  else
    Mutex.protect t.lock (fun () ->
      if Hashtbl.length t.buckets > 4096 then prune t now;
      let b =
        match Hashtbl.find_opt t.buckets key with
        | Some b -> b
        | None ->
          let b = { tokens = t.burst; at = now } in
          Hashtbl.replace t.buckets key b;
          b
      in
      b.tokens <- Float.min t.burst (b.tokens +. ((now -. b.at) *. t.rate));
      b.at <- now;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        Ok ()
      end
      else Error ((1.0 -. b.tokens) /. t.rate))
