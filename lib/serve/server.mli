(** The verification daemon: an HTTP/1.1 service over the persistent
    {!Engine.Pool}, with bounded admission, per-client rate limits and live
    per-job progress streamed as server-sent events.

    Routes ([docs/SERVICE.md] has schemas and examples):
    - [GET /v1/health] — status, version, queue depth, job counts
    - [GET /v1/metrics] — server counters + merged per-job DD metrics
    - [POST /v1/jobs] — submit an inline pair ([{"a": <qasm>, "b": <qasm>,
      ...}]) or a full [qcec-manifest/v1] document; responds [202] with job
      ids, [429] + [Retry-After] when rate-limited or the admission queue
      is full, [503] while draining
    - [GET /v1/jobs] / [GET /v1/jobs/<id>] — listing / status (with the
      full [qcec-result/v1] document once done)
    - [DELETE /v1/jobs/<id>] — cooperative cancellation at the job's next
      DD safepoint
    - [GET /v1/jobs/<id>/events] — SSE stream of
      [queued]/[started]/[progress]/[done] frames; honours
      [Last-Event-ID] (or [?after=N]) for resumption

    Every error is a structured [qcec-serve/v1] JSON object
    [{"error": {"code", "message"}}].  Connections are one-shot
    ([Connection: close]). *)

val schema : string

type config =
  { host : string  (** bind address, default ["127.0.0.1"] *)
  ; port : int  (** [0] picks an ephemeral port (see {!port}) *)
  ; workers : int  (** persistent pool domains *)
  ; queue_capacity : int
        (** max jobs queued (not yet running); beyond it submissions get
            429 + [Retry-After] *)
  ; rate : float  (** submissions/second per client IP; [<= 0] disables *)
  ; burst : int  (** token-bucket burst per client *)
  ; max_body : int  (** request-body bound; beyond it, HTTP 413 *)
  ; heartbeat_interval : float
        (** progress-event cadence from the DD safepoint hook, and the SSE
            keep-alive comment interval *)
  ; default_timeout : float option  (** applied to jobs that set none *)
  ; node_limit : int option  (** pool-wide live-node budget *)
  ; dd_config : Dd.Pkg.config option
  ; cache : Cache_store.Store.t option
        (** verdict store shared across all requests; the caller owns it
            (the server never closes it) *)
  ; lint : bool
  ; max_connections : int  (** concurrent connections; beyond it, 503 *)
  ; stats : bool  (** enable {!Obs.Metrics} collection at startup *)
  ; log : (string -> unit) option  (** one line per event, no newline *)
  }

(** Loopback, ephemeral port, 2 workers, capacity 64, rate limiting off,
    4 MiB bodies, 0.25s heartbeat, stats on. *)
val default_config : config

type t

(** [start cfg] binds, spawns the accept thread and the worker pool, and
    returns immediately.  Ignores [SIGPIPE] process-wide (hangups surface
    as [EPIPE]).  Raises [Unix.Unix_error] if the bind fails. *)
val start : config -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

val stopping : t -> bool

(** [stop t] drains gracefully: stops accepting, waits for open
    connections and in-flight jobs to finish (queued jobs run to
    completion), then shuts the pool down and folds its registries into
    the calling domain.  Idempotent; blocks until fully stopped. *)
val stop : t -> unit
