module Json = Qcec_json
module Pool = Engine.Pool
module Job = Engine.Job

let schema = "qcec-serve/v1"

type config =
  { host : string
  ; port : int
  ; workers : int
  ; queue_capacity : int
  ; rate : float
  ; burst : int
  ; max_body : int
  ; heartbeat_interval : float
  ; default_timeout : float option
  ; node_limit : int option
  ; dd_config : Dd.Pkg.config option
  ; cache : Cache_store.Store.t option
  ; lint : bool
  ; max_connections : int
  ; stats : bool
  ; log : (string -> unit) option
  }

let default_config =
  { host = "127.0.0.1"
  ; port = 0
  ; workers = 2
  ; queue_capacity = 64
  ; rate = 0.0
  ; burst = 16
  ; max_body = 4 * 1024 * 1024
  ; heartbeat_interval = 0.25
  ; default_timeout = None
  ; node_limit = None
  ; dd_config = None
  ; cache = None
  ; lint = true
  ; max_connections = 64
  ; stats = true
  ; log = None
  }

type t =
  { cfg : config
  ; listener : Unix.file_descr
  ; port : int
  ; pool : Pool.pool
  ; registry : Registry.t
  ; limiter : Limiter.t
  ; started : float
  ; stopping : bool Atomic.t
  ; lock : Mutex.t
  ; idle : Condition.t
  ; mutable conns : int
  ; mutable next_index : int
  ; mutable job_metrics : Obs.Metrics.snapshot
  ; mutable submitted : int
  ; mutable completed : int
  ; mutable rejected : int
  ; mutable accept_thread : Thread.t option
  }

let port t = t.port
let stopping t = Atomic.get t.stopping

let logf t fmt =
  Printf.ksprintf
    (fun s ->
      match t.cfg.log with
      | Some f -> f s
      | None -> ())
    fmt

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

(* unwinds a connection handler into one structured error response *)
exception Reject of int * (string * string) list * string * string

let reject ?(headers = []) status code message = raise (Reject (status, headers, code, message))

let error_body code message =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.String schema)
       ; ("error", Json.Obj [ ("code", Json.String code); ("message", Json.String message) ])
       ])

let respond fd ?headers ~status body = Http.write_all fd (Http.response ?headers ~status body)

let respond_error fd ?headers ~status code message =
  respond fd ?headers ~status (error_body code message)

(* ------------------------------------------------------------------ *)
(* Inline submissions                                                  *)

let bad_field name kind = reject 400 "invalid_request" (Printf.sprintf "%s: expected %s" name kind)

let opt_string body name =
  match Json.member name body with
  | Some (Json.String s) -> Some s
  | Some _ -> bad_field name "a string"
  | None -> None

let opt_bool body name =
  match Json.member name body with
  | Some (Json.Bool b) -> Some b
  | Some _ -> bad_field name "a boolean"
  | None -> None

let opt_int body name =
  match Json.member name body with
  | Some (Json.Int i) -> Some i
  | Some _ -> bad_field name "an integer"
  | None -> None

let opt_float body name =
  match Json.member name body with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some _ -> bad_field name "a number"
  | None -> None

let parse_circuit body name =
  match Json.member name body with
  | Some (Json.String src) -> (
    try Circuit.Qasm3_parser.parse_any ~name src with
    | Circuit.Qasm_parser.Parse_error (msg, line) ->
      reject 400 "parse_error" (Printf.sprintf "circuit %s, line %d: %s" name line msg))
  | Some _ -> bad_field name "a string of QASM source"
  | None -> reject 400 "invalid_request" (Printf.sprintf "%s: required (inline QASM source)" name)

let parse_strategy body =
  let of_name field s =
    match Qcec.Strategy.of_string s with
    | Ok st -> Some st
    | Error e -> reject 400 "invalid_request" (Printf.sprintf "%s: %s" field e)
  in
  match opt_string body "scheme" with
  | Some "auto" -> (true, None)
  | Some s -> (false, of_name "scheme" s)
  | None -> (
    match opt_string body "strategy" with
    | Some s -> (false, of_name "strategy" s)
    | None -> (false, None))

let parse_perm body =
  match Json.member "perm" body with
  | Some (Json.List l) ->
    Some
      (Array.of_list
         (List.map
            (function
              | Json.Int i -> i
              | _ -> bad_field "perm" "a list of integers")
            l))
  | Some _ -> bad_field "perm" "a list of integers"
  | None -> None

let parse_backend body =
  match opt_string body "backend" with
  | None -> None
  | Some name -> (
    match Dd.Registry.find name with
    | Some _ -> Some name
    | None ->
      reject 400 "unknown_backend"
        (Printf.sprintf "backend %S not registered (have: %s)" name
           (String.concat ", " (Dd.Registry.names ()))))

(* ["portfolio": w] races w candidate deciders for the job, first verdict
   wins; the same validation as the manifest (>= 2, or 0 for "no race"). *)
let parse_portfolio body =
  match opt_int body "portfolio" with
  | None -> None
  | Some 0 -> None
  | Some w when w >= 2 -> Some w
  | Some w ->
    reject 400 "bad_portfolio"
      (Printf.sprintf "portfolio must be a width >= 2 (or 0 to disable), got %d" w)

(* one job spec from an inline {"a": <qasm>, "b": <qasm>, ...} document *)
let inline_spec ~index body =
  let a = parse_circuit body "a" in
  let b = parse_circuit body "b" in
  let auto_scheme, strategy = parse_strategy body in
  Job.circuits ?label:(opt_string body "label") ?strategy ~auto_scheme
    ?perm:(parse_perm body)
    ?transform:(opt_bool body "transform")
    ?timeout:(opt_float body "timeout")
    ?retries:(opt_int body "retries")
    ?seed:(opt_int body "seed")
    ?kernels:(opt_bool body "kernels")
    ?cache:(opt_bool body "cache")
    ?backend:(parse_backend body)
    ?portfolio:(parse_portfolio body) ~index a b

(* ------------------------------------------------------------------ *)
(* Job JSON                                                            *)

let events_path id = Printf.sprintf "/v1/jobs/%s/events" id

let job_summary t (j : Registry.job) =
  Json.Obj
    [ ("id", Json.String j.id)
    ; ("label", Json.String j.label)
    ; ("state", Json.String (Registry.state_string (Registry.state t.registry j)))
    ; ("events", Json.String (events_path j.id))
    ]

let job_json t (j : Registry.job) =
  let state = Registry.state t.registry j in
  let base =
    [ ("schema", Json.String schema)
    ; ("id", Json.String j.id)
    ; ("label", Json.String j.label)
    ; ("state", Json.String (Registry.state_string state))
    ; ("submitted", Json.Float j.submitted)
    ; ("events", Json.String (events_path j.id))
    ]
  in
  match state with
  | Registry.Done r -> Json.Obj (base @ [ ("result", Job.to_json r) ])
  | _ -> Json.Obj base

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)

let register_job t (spec : Job.spec) =
  (* the control's callbacks need the registry entry, which needs the
     control: tie the knot through a forward reference — safe because the
     job is only submitted (and can only start) after it is filled *)
  let jref = ref None in
  let with_job f =
    match !jref with
    | Some j -> f j
    | None -> ()
  in
  let on_start () =
    with_job (fun j ->
      Registry.set_state t.registry j Registry.Running;
      Registry.emit t.registry j ~event:"started"
        (Json.Obj [ ("label", Json.String j.label) ]))
  in
  let on_progress (p : Pool.progress) =
    with_job (fun j ->
      Registry.emit t.registry j ~event:"progress"
        (Json.Obj
           [ ("phase", Json.String p.phase)
           ; ("live_nodes", Json.Int p.live_nodes)
           ; ("elapsed", Json.Float p.elapsed)
           ]))
  in
  let control =
    Pool.control ~progress_interval:t.cfg.heartbeat_interval ~on_start ~on_progress ()
  in
  let j = Registry.add t.registry ~label:spec.Job.label ~control in
  jref := Some j;
  let on_done (r : Job.result) =
    Registry.set_state t.registry j (Registry.Done r);
    Mutex.protect t.lock (fun () ->
      t.completed <- t.completed + 1;
      t.job_metrics <- Obs.Metrics.merge [ t.job_metrics; r.Job.metrics ]);
    Registry.emit t.registry j ~event:"done" (Job.to_json r);
    logf t "job %s done: %s (%.3fs)" j.id (Job.exit_class r.Job.outcome) r.Job.duration
  in
  (j, control, on_done)

let submit_specs t specs =
  (* capacity check and submission are one critical section, so a burst of
     concurrent submissions cannot overshoot the admission queue *)
  Mutex.protect t.lock (fun () ->
    let n = List.length specs in
    if Pool.pending t.pool + n > t.cfg.queue_capacity then begin
      t.rejected <- t.rejected + 1;
      reject
        ~headers:[ ("Retry-After", "1") ]
        429 "queue_full"
        (Printf.sprintf "admission queue full (%d pending, capacity %d)"
           (Pool.pending t.pool) t.cfg.queue_capacity)
    end;
    List.map
      (fun spec ->
        let spec =
          match (spec.Job.timeout, t.cfg.default_timeout) with
          | None, (Some _ as d) -> { spec with Job.timeout = d }
          | _ -> spec
        in
        let j, control, on_done = register_job t spec in
        Registry.emit t.registry j ~event:"queued"
          (Json.Obj [ ("id", Json.String j.Registry.id); ("label", Json.String j.Registry.label) ]);
        (match Pool.submit t.pool ~control ~on_done spec with
         | Ok () -> ()
         | Error `Stopped -> reject 503 "draining" "server is shutting down");
        t.submitted <- t.submitted + 1;
        j)
      specs)

let fresh_indices t n =
  Mutex.protect t.lock (fun () ->
    let base = t.next_index in
    t.next_index <- t.next_index + n;
    base)

let handle_submit t fd peer (req : Http.request) =
  if stopping t then reject 503 "draining" "server is shutting down";
  (match Limiter.check t.limiter ~key:peer ~now:(Unix.gettimeofday ()) with
   | Ok () -> ()
   | Error wait ->
     Mutex.protect t.lock (fun () -> t.rejected <- t.rejected + 1);
     reject
       ~headers:[ ("Retry-After", string_of_int (int_of_float (Float.ceil wait))) ]
       429 "rate_limited"
       (Printf.sprintf "rate limit exceeded; retry in %.1fs" wait));
  let body =
    match Json.of_string_opt req.Http.body with
    | Some j -> j
    | None -> reject 400 "invalid_json" "request body is not valid JSON"
  in
  let specs =
    match Json.member "schema" body with
    | Some (Json.String s) when s = Engine.Manifest.schema -> (
      match Engine.Manifest.of_json ~dir:(Sys.getcwd ()) body with
      | Ok m ->
        if m.Engine.Manifest.jobs = [] then
          reject 400 "invalid_manifest" "manifest contains no jobs";
        let base = fresh_indices t (List.length m.Engine.Manifest.jobs) in
        List.mapi
          (fun i (spec : Job.spec) -> { spec with Job.index = base + i })
          m.Engine.Manifest.jobs
      | Error e -> reject 400 "invalid_manifest" e)
    | Some (Json.String s) -> reject 400 "invalid_request" (Printf.sprintf "unknown schema %S" s)
    | Some _ -> bad_field "schema" "a string"
    | None -> [ inline_spec ~index:(fresh_indices t 1) body ]
  in
  let jobs = submit_specs t specs in
  logf t "accepted %d job(s) from %s" (List.length jobs) peer;
  let listing = Json.List (List.map (job_summary t) jobs) in
  let body =
    match jobs with
    | [ j ] ->
      Json.Obj
        [ ("schema", Json.String schema)
        ; ("id", Json.String j.Registry.id)
        ; ("label", Json.String j.Registry.label)
        ; ("events", Json.String (events_path j.Registry.id))
        ; ("jobs", listing)
        ]
    | _ -> Json.Obj [ ("schema", Json.String schema); ("jobs", listing) ]
  in
  respond fd ~status:202 (Json.to_string body)

(* ------------------------------------------------------------------ *)
(* Streaming                                                           *)

let handle_events t fd (req : Http.request) (j : Registry.job) =
  let last =
    match Http.header req "last-event-id" with
    | Some v -> Option.value (int_of_string_opt v) ~default:0
    | None -> (
      match List.assoc_opt "after" req.Http.query with
      | Some v -> Option.value (int_of_string_opt v) ~default:0
      | None -> 0)
  in
  Http.write_all fd (Http.stream_head ~content_type:"text/event-stream" ~status:200 ());
  let write_event (seq, name, data) =
    Http.write_all fd
      (Sse.encode { Sse.id = Some seq; event = Some name; data = Json.to_string data })
  in
  let rec loop seq last_write =
    let events = Registry.events_after t.registry j ~seq in
    if events <> [] then begin
      List.iter write_event events;
      let seq = List.fold_left (fun acc (s, _, _) -> max acc s) seq events in
      if List.exists (fun (_, name, _) -> name = "done") events then ()
      else loop seq (Unix.gettimeofday ())
    end
    else begin
      let terminal =
        match Registry.state t.registry j with
        | Registry.Done _ -> seq >= j.Registry.seq
        | _ -> false
      in
      if not terminal then begin
        let now = Unix.gettimeofday () in
        let last_write =
          if now -. last_write > Float.max t.cfg.heartbeat_interval 0.05 then begin
            Http.write_all fd (Sse.comment "keep-alive");
            now
          end
          else last_write
        in
        (* stdlib [Condition] has no timed wait, so the stream polls; 20 Hz
           keeps latency invisible at negligible cost *)
        Thread.delay 0.05;
        loop seq last_write
      end
    end
  in
  loop last (Unix.gettimeofday ())

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let health_json t =
  let queued, running, finished = Registry.counts t.registry in
  Json.Obj
    [ ("schema", Json.String schema)
    ; ("status", Json.String (if stopping t then "draining" else "ok"))
    ; ("version", Json.String (Qcec.Version.string))
    ; ("uptime", Json.Float (Unix.gettimeofday () -. t.started))
    ; ("workers", Json.Int t.cfg.workers)
    ; ( "queue"
      , Json.Obj
          [ ("pending", Json.Int (Pool.pending t.pool))
          ; ("active", Json.Int (Pool.active t.pool))
          ; ("capacity", Json.Int t.cfg.queue_capacity)
          ] )
    ; ( "jobs"
      , Json.Obj
          [ ("queued", Json.Int queued)
          ; ("running", Json.Int running)
          ; ("done", Json.Int finished)
          ] )
    ]

let metrics_json t =
  Mutex.protect t.lock (fun () ->
    Json.Obj
      [ ("schema", Json.String schema)
      ; ( "server"
        , Json.Obj
            [ ("submitted", Json.Int t.submitted)
            ; ("completed", Json.Int t.completed)
            ; ("rejected", Json.Int t.rejected)
            ; ("connections", Json.Int t.conns)
            ] )
      ; ("metrics", Obs.Metrics.to_json t.job_metrics)
      ])

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let split_path p = List.filter (fun s -> s <> "") (String.split_on_char '/' p)

let find_job t id =
  match Registry.find t.registry id with
  | Some j -> j
  | None -> reject 404 "not_found" (Printf.sprintf "no such job %S" id)

let route t fd peer (req : Http.request) =
  match (req.Http.meth, split_path req.Http.path) with
  | "GET", [ "v1"; "health" ] -> respond fd ~status:200 (Json.to_string (health_json t))
  | "GET", [ "v1"; "metrics" ] -> respond fd ~status:200 (Json.to_string (metrics_json t))
  | "POST", [ "v1"; "jobs" ] -> handle_submit t fd peer req
  | "GET", [ "v1"; "jobs" ] ->
    (* collect under the registry lock, render outside it: [job_summary]
       re-enters the registry for the job state *)
    let jobs = List.rev (Registry.fold t.registry (fun acc j -> j :: acc) []) in
    respond fd ~status:200
      (Json.to_string
         (Json.Obj
            [ ("schema", Json.String schema)
            ; ("jobs", Json.List (List.map (job_summary t) jobs))
            ]))
  | "GET", [ "v1"; "jobs"; id ] ->
    respond fd ~status:200 (Json.to_string (job_json t (find_job t id)))
  | "DELETE", [ "v1"; "jobs"; id ] ->
    let j = find_job t id in
    (match Registry.state t.registry j with
     | Registry.Done _ -> reject 409 "finished" (Printf.sprintf "job %s already finished" id)
     | _ ->
       Pool.cancel j.Registry.control;
       logf t "job %s cancellation requested" id;
       respond fd ~status:202
         (Json.to_string
            (Json.Obj
               [ ("schema", Json.String schema)
               ; ("id", Json.String id)
               ; ("status", Json.String "cancelling")
               ])))
  | "GET", [ "v1"; "jobs"; id; "events" ] -> handle_events t fd req (find_job t id)
  | meth, ([ "v1"; "health" ] | [ "v1"; "metrics" ] | [ "v1"; "jobs" ] | [ "v1"; "jobs"; _ ]
          | [ "v1"; "jobs"; _; "events" ]) ->
    reject 405 "method_not_allowed" (Printf.sprintf "%s not supported on %s" meth req.Http.path)
  | _ -> reject 404 "not_found" (Printf.sprintf "no route for %s %s" req.Http.meth req.Http.path)

let handle_connection t fd peer =
  let finally () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Mutex.protect t.lock (fun () ->
      t.conns <- t.conns - 1;
      Condition.broadcast t.idle)
  in
  Fun.protect ~finally (fun () ->
    try
      let reader = Http.reader fd in
      match Http.read_request ~max_body:t.cfg.max_body reader with
      | None -> ()
      | Some req -> route t fd peer req
    with
    | Reject (status, headers, code, message) -> (
      try respond_error fd ~headers ~status code message with _ -> ())
    | Http.Bad_request msg -> (
      try respond_error fd ~status:400 "bad_request" msg with _ -> ())
    | Http.Payload_too_large limit -> (
      try
        respond_error fd ~status:413 "payload_too_large"
          (Printf.sprintf "request body exceeds %d bytes" limit)
      with _ -> ())
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
    | e -> (
      logf t "connection error from %s: %s" peer (Printexc.to_string e);
      try respond_error fd ~status:500 "internal_error" "internal server error" with _ -> ()))

let accept_loop t () =
  while not (stopping t) do
    match Unix.select [ t.listener ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listener with
      | exception Unix.Unix_error _ -> ()
      | fd, sa ->
        let peer =
          match sa with
          | Unix.ADDR_INET (addr, _) -> Unix.string_of_inet_addr addr
          | Unix.ADDR_UNIX p -> p
        in
        let admitted =
          Mutex.protect t.lock (fun () ->
            if t.conns >= t.cfg.max_connections then false
            else begin
              t.conns <- t.conns + 1;
              true
            end)
        in
        if not admitted then begin
          (try
             Http.write_all fd (Http.response ~status:503 (error_body "overloaded" "too many connections"))
           with _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else ignore (Thread.create (fun () -> handle_connection t fd peer) ()))
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start cfg =
  (* a peer hanging up mid-response must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if cfg.stats then Obs.Metrics.set_enabled true;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (try Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port))
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener 64;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let pool =
    Pool.create
      { Pool.default_config with
        Pool.workers = cfg.workers
      ; dd_config = cfg.dd_config
      ; node_limit = cfg.node_limit
      ; lint = cfg.lint
      ; cache = cfg.cache
      ; on_result = None
      }
  in
  let t =
    { cfg
    ; listener
    ; port
    ; pool
    ; registry = Registry.create ()
    ; limiter = Limiter.create ~rate:cfg.rate ~burst:cfg.burst
    ; started = Unix.gettimeofday ()
    ; stopping = Atomic.make false
    ; lock = Mutex.create ()
    ; idle = Condition.create ()
    ; conns = 0
    ; next_index = 0
    ; job_metrics = []
    ; submitted = 0
    ; completed = 0
    ; rejected = 0
    ; accept_thread = None
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  logf t "listening on %s:%d (%d workers, queue capacity %d)" cfg.host port cfg.workers
    cfg.queue_capacity;
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    logf t "draining: rejecting new admissions, finishing in-flight jobs";
    (match t.accept_thread with
     | Some th -> Thread.join th
     | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* in-flight jobs keep running below; their SSE streams end with the
       [done] frame, at which point the connection count reaches zero *)
    Mutex.protect t.lock (fun () ->
      while t.conns > 0 do
        Condition.wait t.idle t.lock
      done);
    Pool.shutdown ~drain:true t.pool;
    logf t "stopped (%d submitted, %d completed, %d rejected)" t.submitted t.completed t.rejected
  end
