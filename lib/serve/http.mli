(** A deliberately small HTTP/1.1 layer over [Unix] file descriptors — no
    cohttp, no lwt.  One request per connection ([Connection: close] on
    every response): the daemon's API is poll/submit/stream-shaped, where
    keep-alive buys little and a single-shot model keeps the server loop
    trivially robust.

    Bodies are read eagerly, bounded by [max_body]: a declared or chunked
    length beyond it raises {!Payload_too_large} (HTTP 413), anything
    structurally wrong raises {!Bad_request} (HTTP 400). *)

exception Bad_request of string
exception Payload_too_large of int

type request =
  { meth : string  (** verbatim, e.g. ["GET"] *)
  ; target : string  (** the raw request target, query string included *)
  ; path : string  (** target up to [?] *)
  ; query : (string * string) list  (** percent-decoded query pairs *)
  ; version : string
  ; headers : (string * string) list  (** names lowercased, values trimmed *)
  ; body : string  (** decoded (identity or chunked) body *)
  }

(** [header req name] is case-insensitive on [name]. *)
val header : request -> string -> string option

type reader

val reader : Unix.file_descr -> reader

(** [read_request ?max_body r] reads one full request.  [None] on a clean
    EOF before the request line (the peer connected and left).
    @raise Bad_request on malformed framing
    @raise Payload_too_large when the body exceeds [max_body]
    (default 4 MiB) *)
val read_request : ?max_body:int -> reader -> request option

val status_text : int -> string

(** [response ~status body] serializes a complete response with
    [Content-Length], [Content-Type] (default [application/json]) and
    [Connection: close]. *)
val response :
  ?headers:(string * string) list -> ?content_type:string -> status:int -> string -> string

(** Status line + headers only, for responses streamed incrementally
    (SSE); includes [Cache-Control: no-cache] and [Connection: close]. *)
val stream_head :
  ?headers:(string * string) list -> content_type:string -> status:int -> unit -> string

(** [write_all fd s] loops over partial writes.  Raises [Unix.Unix_error]
    ([EPIPE] once the peer is gone — callers treat that as a hangup). *)
val write_all : Unix.file_descr -> string -> unit
