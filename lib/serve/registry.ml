module Json = Qcec_json

type state =
  | Queued
  | Running
  | Done of Engine.Job.result

type job =
  { id : string
  ; label : string
  ; submitted : float
  ; control : Engine.Pool.control
  ; mutable state : state
  ; mutable events : (int * string * Json.t) list (* newest first *)
  ; mutable seq : int
  }

type t =
  { lock : Mutex.t
  ; jobs : (string, job) Hashtbl.t
  ; order : string Queue.t (* submission order, for listing *)
  ; mutable counter : int
  }

let create () =
  { lock = Mutex.create (); jobs = Hashtbl.create 64; order = Queue.create (); counter = 0 }

let state_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"

let add t ~label ~control =
  Mutex.protect t.lock (fun () ->
    t.counter <- t.counter + 1;
    let id = Printf.sprintf "job-%06d" t.counter in
    let j =
      { id; label; submitted = Unix.gettimeofday (); control; state = Queued; events = []; seq = 0 }
    in
    Hashtbl.replace t.jobs id j;
    Queue.add id t.order;
    j)

let find t id = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.jobs id)

let emit t j ~event data =
  Mutex.protect t.lock (fun () ->
    j.seq <- j.seq + 1;
    j.events <- (j.seq, event, data) :: j.events)

let set_state t j state = Mutex.protect t.lock (fun () -> j.state <- state)

let state t j = Mutex.protect t.lock (fun () -> j.state)

let events_after t j ~seq =
  Mutex.protect t.lock (fun () ->
    List.fold_left
      (fun acc ((s, _, _) as e) -> if s > seq then e :: acc else acc)
      [] j.events)

let fold t f init =
  Mutex.protect t.lock (fun () ->
    Queue.fold
      (fun acc id ->
        match Hashtbl.find_opt t.jobs id with
        | Some j -> f acc j
        | None -> acc)
      init t.order)

let counts t =
  fold t
    (fun (q, r, d) j ->
      match j.state with
      | Queued -> (q + 1, r, d)
      | Running -> (q, r + 1, d)
      | Done _ -> (q, r, d + 1))
    (0, 0, 0)
