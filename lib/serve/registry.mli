(** The daemon's job table: every submission gets an id, a lifecycle state
    and an append-only event log.

    Events are the SSE source of truth: each carries a job-local,
    monotonically increasing sequence number, so a streaming handler (or a
    reconnecting client with [Last-Event-ID]) asks for "everything after
    seq N" and never drops or duplicates a frame.  All operations are
    mutex-protected; callbacks from worker domains and connection threads
    may interleave freely. *)

module Json = Qcec_json

type state =
  | Queued
  | Running
  | Done of Engine.Job.result
      (** terminal — cancellations surface as a [Job.Cancelled] failure *)

type job = private
  { id : string
  ; label : string
  ; submitted : float  (** wall clock, [Unix.gettimeofday] *)
  ; control : Engine.Pool.control  (** cancel handle shared with the pool *)
  ; mutable state : state
  ; mutable events : (int * string * Json.t) list
  ; mutable seq : int
  }

type t

val create : unit -> t

(** [add t ~label ~control] registers a new job in state [Queued] and
    assigns it the next id ([job-000001], ...). *)
val add : t -> label:string -> control:Engine.Pool.control -> job

val find : t -> string -> job option
val state : t -> job -> state
val state_string : state -> string
val set_state : t -> job -> state -> unit

(** [emit t j ~event data] appends one event, stamping the next sequence
    number. *)
val emit : t -> job -> event:string -> Json.t -> unit

(** [events_after t j ~seq] — events with sequence number [> seq], oldest
    first. *)
val events_after : t -> job -> seq:int -> (int * string * Json.t) list

(** Fold over jobs in submission order. *)
val fold : t -> ('a -> job -> 'a) -> 'a -> 'a

(** [(queued, running, done)] totals. *)
val counts : t -> int * int * int
