(** Per-client token-bucket rate limiting for job submissions.

    Each client key (the daemon uses the peer IP) owns a bucket of
    [burst] tokens refilled at [rate] tokens/second; a submission spends
    one.  An empty bucket yields the seconds until the next token — the
    [Retry-After] the daemon sends with its 429. *)

type t

(** [rate <= 0.0] disables limiting entirely ({!check} always [Ok]). *)
val create : rate:float -> burst:int -> t

(** [check t ~key ~now] spends one token, or returns
    [Error seconds_until_a_token].  [now] is injected (monotonic seconds)
    so tests can drive refill deterministically.  Thread-safe. *)
val check : t -> key:string -> now:float -> (unit, float) result
