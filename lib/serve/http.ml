exception Bad_request of string
exception Payload_too_large of int

type request =
  { meth : string
  ; target : string
  ; path : string
  ; query : (string * string) list
  ; version : string
  ; headers : (string * string) list
  ; body : string
  }

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

(* ---------------------------------------------------------------- *)
(* Buffered reading from a file descriptor                          *)
(* ---------------------------------------------------------------- *)

type reader =
  { fd : Unix.file_descr
  ; buf : Bytes.t
  ; mutable pos : int
  ; mutable len : int
  }

let reader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

let refill r =
  let n = Unix.read r.fd r.buf 0 (Bytes.length r.buf) in
  r.pos <- 0;
  r.len <- n;
  n > 0

let read_byte r =
  if r.pos >= r.len && not (refill r) then raise End_of_file;
  let c = Bytes.get r.buf r.pos in
  r.pos <- r.pos + 1;
  c

(* One CRLF- (or bare-LF-) terminated line, without the terminator.  The
   bound keeps a hostile peer from growing an unbounded header line. *)
let max_line = 16 * 1024

let read_line r =
  let b = Buffer.create 64 in
  let rec go () =
    match read_byte r with
    | '\n' -> ()
    | c ->
      if Buffer.length b >= max_line then raise (Bad_request "header line too long");
      Buffer.add_char b c;
      go ()
  in
  go ();
  let s = Buffer.contents b in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_exact r n =
  let b = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if r.pos >= r.len && not (refill r) then
      raise (Bad_request "body shorter than its declared length");
    let take = min (n - !filled) (r.len - r.pos) in
    Bytes.blit r.buf r.pos b !filled take;
    r.pos <- r.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string b

(* ---------------------------------------------------------------- *)
(* Request parsing                                                  *)
(* ---------------------------------------------------------------- *)

let pct_decode s =
  let b = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Bad_request "invalid percent-encoding")
  in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
     | '%' ->
       if !i + 2 >= n then raise (Bad_request "truncated percent-encoding");
       Buffer.add_char b (Char.chr ((hex s.[!i + 1] * 16) + hex s.[!i + 2]));
       i := !i + 2
     | '+' -> Buffer.add_char b ' '
     | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let qs = String.sub target (q + 1) (String.length target - q - 1) in
    let pairs =
      String.split_on_char '&' qs
      |> List.filter (fun s -> s <> "")
      |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | None -> (pct_decode kv, "")
           | Some e ->
             ( pct_decode (String.sub kv 0 e)
             , pct_decode (String.sub kv (e + 1) (String.length kv - e - 1)) ))
    in
    (path, pairs)

let max_headers = 128

let read_headers r =
  let rec go acc n =
    match read_line r with
    | "" -> List.rev acc
    | line ->
      if n >= max_headers then raise (Bad_request "too many headers");
      (match String.index_opt line ':' with
       | None -> raise (Bad_request "malformed header line")
       | Some c ->
         let name = String.lowercase_ascii (String.trim (String.sub line 0 c)) in
         let value = String.trim (String.sub line (c + 1) (String.length line - c - 1)) in
         go ((name, value) :: acc) (n + 1))
  in
  go [] 0

(* chunked transfer decoding; chunk extensions (after ';') are ignored,
   trailer headers are read and dropped *)
let read_chunked r ~max_body =
  let b = Buffer.create 1024 in
  let rec go () =
    let line = read_line r in
    let size_str =
      match String.index_opt line ';' with
      | None -> String.trim line
      | Some i -> String.trim (String.sub line 0 i)
    in
    let size =
      match int_of_string_opt ("0x" ^ size_str) with
      | Some n when n >= 0 -> n
      | _ -> raise (Bad_request "malformed chunk size")
    in
    if Buffer.length b + size > max_body then raise (Payload_too_large max_body);
    if size = 0 then begin
      (* trailers, then the final blank line *)
      let rec trailers () = if read_line r <> "" then trailers () in
      trailers ()
    end
    else begin
      Buffer.add_string b (read_exact r size);
      (match read_line r with
       | "" -> ()
       | _ -> raise (Bad_request "missing CRLF after chunk"));
      go ()
    end
  in
  go ();
  Buffer.contents b

let read_request ?(max_body = 4 * 1024 * 1024) r =
  match read_line r with
  | exception End_of_file -> None
  | request_line ->
    let meth, target, version =
      match String.split_on_char ' ' request_line with
      | [ m; t; v ] when m <> "" && t <> "" -> (m, t, v)
      | _ -> raise (Bad_request "malformed request line")
    in
    if not (String.length version >= 8 && String.sub version 0 7 = "HTTP/1.") then
      raise (Bad_request "unsupported HTTP version");
    let headers = read_headers r in
    let body =
      match List.assoc_opt "transfer-encoding" headers with
      | Some te when String.lowercase_ascii te = "chunked" -> read_chunked r ~max_body
      | Some _ -> raise (Bad_request "unsupported transfer encoding")
      | None ->
        (match List.assoc_opt "content-length" headers with
         | None -> ""
         | Some l ->
           (match int_of_string_opt (String.trim l) with
            | Some n when n >= 0 ->
              if n > max_body then raise (Payload_too_large max_body);
              read_exact r n
            | _ -> raise (Bad_request "malformed content-length")))
    in
    let path, query = split_target target in
    Some { meth; target; path; query; version; headers; body }

(* ---------------------------------------------------------------- *)
(* Responses                                                        *)
(* ---------------------------------------------------------------- *)

let status_text = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | s -> Printf.sprintf "Status %d" s

let response ?(headers = []) ?(content_type = "application/json") ~status body =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  Buffer.add_string b body;
  Buffer.contents b

(* headers-only prologue for a streaming (SSE) response *)
let stream_head ?(headers = []) ~content_type ~status () =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string b "Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
  Buffer.contents b

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done
