(** The domain worker pool: runs a list of {!Job.spec}s across OCaml 5
    domains and collects one {!Job.result} per job.

    {2 Isolation}

    Each job constructs its own DD package (inside
    [Qcec.Verify.functional]) on the worker domain that runs it, so
    packages never cross domains — [Dd.Pkg]'s owner guard enforces the
    contract.  Metric and span registries are domain-local; the pool
    harvests every worker's readings at join time, folds them into the
    calling domain ({!Obs.Metrics.absorb} / {!Obs.Span.absorb}) and
    exposes the merged batch-attributable reading in {!batch.metrics}.

    {2 Robustness}

    A job never aborts the batch: parse errors, lint errors,
    [Strategy.Non_unitary], [Verify.Rejected], wall-clock timeouts and
    node-budget overruns all come back as structured
    [Job.Failed] outcomes.  Timeouts and node budgets cancel
    {e cooperatively}: a hook installed at the DD package's safepoints
    ([Dd.Pkg.checkpoint], reached after every gate application) raises
    {!Cancelled} when the attempt's deadline or the pool's node limit is
    exceeded — a tiny job may finish before its first safepoint even with
    a zero budget.  Timed-out jobs retry (up to [spec.retries] extra
    attempts) with the auto-GC threshold scaled by [gc_retry_scale],
    trading memory for time. *)

(** Raised inside a worker at a DD safepoint to unwind a cancelled
    attempt; classified into [Job.Timeout] / [Job.Node_limit]. *)
exception Cancelled of [ `Timeout | `Node_limit of int ]

type config =
  { workers : int  (** domain count; clamped to [1 .. max 1 (#jobs)] *)
  ; dd_config : Dd.Pkg.config option  (** per-job DD package bounds *)
  ; node_limit : int option  (** live-node budget, checked at safepoints *)
  ; lint : bool  (** run the lint pre-flight before each verification *)
  ; gc_retry_scale : int  (** GC-threshold multiplier for timeout retries *)
  ; on_result : (Job.result -> unit) option
        (** streaming callback, invoked under the pool lock as each job
            finishes (from a worker domain, in completion order) *)
  ; cache : Cache_store.Store.t option
        (** verdict store shared by every worker (lookups are lock-free,
            inserts serialize inside the store); jobs with
            [spec.cache = false] bypass it *)
  }

(** [workers = Domain.recommended_domain_count ()], no DD bounds, no node
    limit, lint on, [gc_retry_scale = 4], no callback, no verdict store. *)
val default_config : config

type batch =
  { results : Job.result list  (** in job-index order *)
  ; wall_seconds : float
  ; workers : int  (** domains actually used *)
  ; metrics : Obs.Metrics.snapshot
        (** merged worker registries — exactly the batch's work *)
  ; spans : Obs.Span.entry list  (** merged worker span reports *)
  }

(** [run config specs] executes the batch and blocks until every job has a
    result.  Worker domains are always spawned (also for [workers = 1]),
    so single- and multi-worker runs execute identically. *)
val run : config -> Job.spec list -> batch
