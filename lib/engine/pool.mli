(** The domain worker pool: runs a list of {!Job.spec}s across OCaml 5
    domains and collects one {!Job.result} per job.

    {2 Isolation}

    Each job constructs its own DD package (inside
    [Qcec.Verify.functional]) on the worker domain that runs it, so
    packages never cross domains — [Dd.Pkg]'s owner guard enforces the
    contract.  Metric and span registries are domain-local; the pool
    harvests every worker's readings at join time, folds them into the
    calling domain ({!Obs.Metrics.absorb} / {!Obs.Span.absorb}) and
    exposes the merged batch-attributable reading in {!batch.metrics}.

    {2 Robustness}

    A job never aborts the batch: parse errors, lint errors,
    [Strategy.Non_unitary], [Verify.Rejected], wall-clock timeouts and
    node-budget overruns all come back as structured
    [Job.Failed] outcomes.  Timeouts and node budgets cancel
    {e cooperatively}: a hook installed at the DD package's safepoints
    ([Dd.Pkg.checkpoint], reached after every gate application) raises
    {!Cancelled} when the attempt's deadline or the pool's node limit is
    exceeded — a tiny job may finish before its first safepoint even with
    a zero budget.  Timed-out jobs retry (up to [spec.retries] extra
    attempts) with the auto-GC threshold scaled by [gc_retry_scale],
    trading memory for time. *)

(** Raised inside a worker at a DD safepoint to unwind a cancelled
    attempt; classified into [Job.Timeout] / [Job.Node_limit] /
    [Job.Cancelled] (for [`Kill], a raised {!control} cancel flag). *)
exception Cancelled of [ `Timeout | `Node_limit of int | `Kill ]

(** {1 Per-job control: cancellation and live progress}

    A {!control} rides along with a job submission and plugs into the same
    safepoint hook that implements timeouts: raising the cancel flag
    unwinds the attempt at its next DD safepoint, and [on_progress] (if
    given) is invoked from that hook — on the worker domain — at most once
    per [progress_interval] seconds with the package's live node count and
    the attempt's elapsed wall clock.  This is what the daemon's
    [DELETE /v1/jobs/<id>] and SSE heartbeat stream are built on. *)

type progress =
  { phase : string
        (** ["check"] for a solo job (DD work underway);
            ["race:<strategy>"] for a portfolio job — the candidate that
            fired this heartbeat, i.e. the one currently leading the
            progress stream *)
  ; live_nodes : int
  ; elapsed : float  (** seconds since the attempt started *)
  }

type control

(** [control ()] makes a fresh, un-cancelled control.  [progress_interval]
    defaults to 0.25s; [on_start] fires on the worker just before the
    first attempt; [on_progress] must be thread-safe (it runs on the
    worker domain, between gate applications — keep it cheap). *)
val control :
     ?progress_interval:float
  -> ?on_start:(unit -> unit)
  -> ?on_progress:(progress -> unit)
  -> unit
  -> control

(** [cancel c] requests cooperative cancellation: a running job unwinds at
    its next safepoint into a [Job.Cancelled] failure; a queued job is
    skipped when a worker picks it up.  Idempotent, safe from any
    thread. *)
val cancel : control -> unit

val cancel_requested : control -> bool

type config =
  { workers : int  (** domain count; clamped to [1 .. max 1 (#jobs)] *)
  ; dd_config : Dd.Pkg.config option  (** per-job DD package bounds *)
  ; node_limit : int option  (** live-node budget, checked at safepoints *)
  ; lint : bool  (** run the lint pre-flight before each verification *)
  ; gc_retry_scale : int  (** GC-threshold multiplier for timeout retries *)
  ; on_result : (Job.result -> unit) option
        (** streaming callback, invoked under the pool lock as each job
            finishes (from a worker domain, in completion order) *)
  ; cache : Cache_store.Store.t option
        (** verdict store shared by every worker (lookups are lock-free,
            inserts serialize inside the store); jobs with
            [spec.cache = false] bypass it *)
  }

(** [workers = Domain.recommended_domain_count ()], no DD bounds, no node
    limit, lint on, [gc_retry_scale = 4], no callback, no verdict store. *)
val default_config : config

type batch =
  { results : Job.result list  (** in job-index order *)
  ; wall_seconds : float
  ; workers : int  (** domains actually used *)
  ; metrics : Obs.Metrics.snapshot
        (** merged worker registries — exactly the batch's work *)
  ; spans : Obs.Span.entry list  (** merged worker span reports *)
  }

(** [run config specs] executes the batch and blocks until every job has a
    result.  Worker domains are always spawned (also for [workers = 1]),
    so single- and multi-worker runs execute identically.

    Jobs with [spec.portfolio = Some w] ([w >= 2]) race candidate deciders
    via [Qcec.Verify.portfolio].  Candidate domains are borrowed from the
    worker budget: the pool never runs more than [config.workers] domains
    at once, so on a busy pool a race is granted fewer lanes (down to a
    single candidate) rather than oversubscribing the machine. *)
val run : config -> Job.spec list -> batch

(** {1 Persistent pool}

    The daemon's execution substrate: [config.workers] domains stay alive
    across submissions instead of being spawned per batch.  Jobs are
    queued (unboundedly — admission control is the {e caller's} policy)
    and every completion is delivered through its own callback, invoked on
    the worker domain that ran the job.  [config.on_result] is ignored in
    this mode. *)

type pool

val create : config -> pool

(** [submit pool ?control ~on_done spec] enqueues one job.  [on_done] runs
    on a worker domain and must be thread-safe.  [Error `Stopped] once
    {!shutdown} has begun.  A job whose [control] is cancelled while still
    queued is skipped: [on_done] receives a [Job.Cancelled] failure
    without any parsing or DD work. *)
val submit :
     pool
  -> ?control:control
  -> on_done:(Job.result -> unit)
  -> Job.spec
  -> (unit, [ `Stopped ]) result

(** Jobs queued but not yet picked up by a worker. *)
val pending : pool -> int

(** Jobs currently executing. *)
val active : pool -> int

(** [shutdown ?drain pool] stops the pool and blocks until every worker
    domain has exited, then folds their metric/span registries into the
    calling domain (as {!run} does).  With [drain = true] (default) queued
    jobs run to completion first; with [drain = false] they are abandoned
    — each still gets its [on_done] with a [Job.Cancelled] failure — and
    workers exit after their current job.  Further {!submit}s return
    [Error `Stopped] from the moment shutdown begins. *)
val shutdown : ?drain:bool -> pool -> unit
