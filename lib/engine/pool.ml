module M = Obs.Metrics

(* engine.* metric namespace (docs/OBSERVABILITY.md) *)
let m_scheduled = M.counter "engine.jobs.scheduled"
let m_completed = M.counter "engine.jobs.completed"
let m_failed = M.counter "engine.jobs.failed"
let m_timeout = M.counter "engine.jobs.timeout"
let m_retried = M.counter "engine.jobs.retried"
let m_workers = M.gauge "engine.workers.peak"

exception Cancelled of [ `Timeout | `Node_limit of int ]

(* Internal: carries rendered error-severity diagnostics out of the lint
   pre-flight to the per-job classifier. *)
exception Lint_failed of string

type config =
  { workers : int
  ; dd_config : Dd.Pkg.config option
  ; node_limit : int option
  ; lint : bool
  ; gc_retry_scale : int
  ; on_result : (Job.result -> unit) option
  ; cache : Cache_store.Store.t option
  }

let default_config =
  { workers = Domain.recommended_domain_count ()
  ; dd_config = None
  ; node_limit = None
  ; lint = true
  ; gc_retry_scale = 4
  ; on_result = None
  ; cache = None
  }

type batch =
  { results : Job.result list
  ; wall_seconds : float
  ; workers : int
  ; metrics : M.snapshot
  ; spans : Obs.Span.entry list
  }

let now = Obs.Clock.now

(* The cooperative cancellation point: [Pkg.checkpoint] (called by every
   strategy / simulator / extraction loop after each gate) fires this hook,
   which compares the monotonic clock against the attempt's deadline and the
   package's live-node count against the pool budget.  Raising here unwinds
   the verification; the worker's own package is dropped with it.  The hook
   is per backend (each keeps its own domain-local slot), so it is
   installed on whichever backend the job resolved to. *)
let with_guard (module B : Dd.Backend.S) ~deadline ~node_limit f =
  (match (deadline, node_limit) with
   | None, None -> ()
   | _ ->
     B.Pkg.set_safepoint_hook
       (Some
          (fun p ->
            (match deadline with
             | Some d when now () > d -> raise (Cancelled `Timeout)
             | _ -> ());
            match node_limit with
            | Some l when B.Pkg.live_nodes p > l -> raise (Cancelled (`Node_limit l))
            | _ -> ())));
  Fun.protect ~finally:(fun () -> B.Pkg.set_safepoint_hook None) f

let render_diagnostics diags =
  Analysis.Diagnostic.sort diags
  |> List.filter (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
  |> List.map Analysis.Diagnostic.to_string
  |> String.concat "; "

(* One verification attempt.  Parsing and linting happen inside the attempt
   so their failures are classified per job, and so the wall-clock deadline
   covers them too (cancellation between gates only triggers once DD work
   starts, which is where all the time goes). *)
let attempt cfg ~dd_config (spec : Job.spec) =
  let deadline = Option.map (fun s -> now () +. s) spec.timeout in
  (* resolved before any parsing so a bad registry name fails fast; the
     manifest and the CLI both validate up front, this covers direct
     programmatic [Job.spec]s *)
  let backend =
    match Dd.Registry.find spec.backend with
    | Some b -> b
    | None ->
      failwith
        (Fmt.str "unknown DD backend %S (expected one of: %s)" spec.backend
           (String.concat ", " (Dd.Registry.names ())))
  in
  let a, b, lint_inputs =
    match spec.source with
    | Job.Circuits { a; b } -> (a, b, [ (a, None); (b, None) ])
    | Job.Files { file_a; file_b } ->
      let a, lines_a = Circuit.Qasm3_parser.parse_any_file_located file_a in
      let b, lines_b = Circuit.Qasm3_parser.parse_any_file_located file_b in
      (a, b, [ (a, Some (file_a, lines_a)); (b, Some (file_b, lines_b)) ])
  in
  if cfg.lint then begin
    let errors =
      List.concat_map
        (fun (c, located) ->
          match located with
          | Some (file, lines) -> Analysis.lint ~file ~lines c
          | None -> Analysis.lint c)
        lint_inputs
      |> List.filter (fun d ->
           d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
    in
    if errors <> [] then raise (Lint_failed (render_diagnostics errors))
  end;
  with_guard backend ~deadline ~node_limit:cfg.node_limit (fun () ->
    let module B = (val backend : Dd.Backend.S) in
    let module V = Qcec.Verify.Make (B) in
    let on_dynamic = if spec.transform then `Transform else `Reject in
    (* the store is shared across workers by design: lookups are
       lock-free and inserts serialize inside [Cache_store.Store]; the key
       does not include the backend, so verdicts computed under one
       backend serve warm under any other *)
    let cache = if spec.cache then cfg.cache else None in
    (* manifest [scheme = "auto"]: the analysis passes route the job now
       that both circuits are parsed; an explicitly pinned strategy always
       wins (the manifest compiler never sets both) *)
    let strategy =
      match spec.strategy with
      | Some _ as s -> s
      | None when spec.auto_scheme ->
        Some
          (match
             Obs.Span.with_ "analysis.route" (fun () ->
               Analysis.Classify.route_application (Analysis.Cost.profile a)
                 (Analysis.Cost.profile b))
           with
           | Analysis.Cost.Proportional_order -> Qcec.Strategy.Proportional
           | Analysis.Cost.Lookahead_order -> Qcec.Strategy.Lookahead)
      | None -> None
    in
    let r =
      V.functional ?strategy ?perm:spec.perm ~on_dynamic
        ?dd_config ?seed:spec.seed ~use_kernels:spec.kernels ?cache a b
    in
    { Job.equivalent = r.Qcec.Verify.equivalent
    ; exactly_equal = r.Qcec.Verify.exactly_equal
    ; strategy = Qcec.Strategy.name r.Qcec.Verify.strategy
    ; t_transform = r.Qcec.Verify.t_transform
    ; t_check = r.Qcec.Verify.t_check
    ; transformed_qubits = r.Qcec.Verify.transformed_qubits
    ; peak_nodes = r.Qcec.Verify.peak_nodes
    ; cached = r.Qcec.Verify.cached
    })

let classify = function
  | Cancelled `Timeout -> (Job.Timeout, "wall-clock budget exhausted")
  | Cancelled (`Node_limit l) ->
    (Job.Node_limit, Fmt.str "live DD nodes exceeded the %d-node budget" l)
  | Lint_failed msg -> (Job.Lint_error, msg)
  | Circuit.Qasm_parser.Parse_error (msg, line) ->
    (Job.Parse_error, Fmt.str "line %d: %s" line msg)
  | Sys_error msg -> (Job.Parse_error, msg)
  | Qcec.Strategy.Non_unitary op ->
    (Job.Non_unitary, Fmt.str "non-unitary operation %a" Circuit.Op.pp op)
  | Qcec.Verify.Rejected d -> (Job.Rejected, Analysis.Diagnostic.to_string d)
  | e -> (Job.Crash, Printexc.to_string e)

(* Timed-out attempts may retry with a proportionally relaxed auto-GC
   threshold: a job that spent its budget collecting garbage gets to trade
   memory for time on the next try. *)
let relax cfg dd_config =
  match dd_config with
  | Some c ->
    Some
      { c with
        Dd.Pkg.gc_threshold =
          Option.map (fun t -> t * cfg.gc_retry_scale) c.Dd.Pkg.gc_threshold
      }
  | None -> None

let run_job cfg ~worker (spec : Job.spec) =
  let m0 = M.snapshot () in
  let t0 = now () in
  let rec go ~attempts dd_config =
    let outcome =
      match attempt cfg ~dd_config spec with
      | v -> Job.Verdict v
      | exception e ->
        let reason, message = classify e in
        Job.Failed { reason; message }
    in
    match outcome with
    | Job.Failed { reason = Job.Timeout; _ } when attempts <= spec.retries ->
      M.incr m_retried;
      go ~attempts:(attempts + 1) (relax cfg dd_config)
    | outcome -> (outcome, attempts)
  in
  let outcome, attempts = go ~attempts:1 cfg.dd_config in
  (match outcome with
   | Job.Verdict _ -> M.incr m_completed
   | Job.Failed { reason; _ } ->
     M.incr m_failed;
     if reason = Job.Timeout then M.incr m_timeout);
  { Job.index = spec.index
  ; label = spec.label
  ; files_checked =
      (match spec.source with
       | Job.Files { file_a; file_b } -> Some (file_a, file_b)
       | Job.Circuits _ -> None)
  ; outcome
  ; duration = now () -. t0
  ; attempts
  ; worker
  ; seed = spec.seed
  ; backend = spec.backend
  ; metrics = M.diff ~before:m0 ~after:(M.snapshot ())
  }

let run (cfg : config) specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  (* scheduling counters land on the calling domain; remember the delta so
     the batch aggregate (merged from worker registries) includes them *)
  let m_before = M.snapshot () in
  M.add m_scheduled n;
  let workers = max 1 (min cfg.workers (max 1 n)) in
  M.observe m_workers workers;
  let scheduling_delta = M.diff ~before:m_before ~after:(M.snapshot ()) in
  let t0 = now () in
  let lock = Mutex.create () in
  let next = ref 0 in
  let results = Array.make n None in
  let take () =
    Mutex.protect lock (fun () ->
      if !next >= n then None
      else begin
        let i = !next in
        incr next;
        Some i
      end)
  in
  let publish i r =
    Mutex.protect lock (fun () ->
      results.(i) <- Some r;
      match cfg.on_result with None -> () | Some f -> f r)
  in
  (* Workers are plain domains; each job builds its own [Dd.Pkg.t] inside
     [Verify.functional], so packages never cross domains (and the package
     owner guard would catch it if one did). *)
  let worker_fn wid () =
    let rec loop () =
      match take () with
      | None -> ()
      | Some i ->
        publish i (run_job cfg ~worker:wid specs.(i));
        loop ()
    in
    loop ();
    (M.snapshot (), Obs.Span.report ())
  in
  let harvests =
    let domains = List.init workers (fun wid -> Domain.spawn (worker_fn wid)) in
    List.map Domain.join domains
  in
  let wall_seconds = now () -. t0 in
  (* Fold worker registries into the calling domain so process-level
     reports ([qcec_cli stats], bench output) see the batch's work, and
     keep the merged reading for the batch aggregate. *)
  List.iter
    (fun (m, s) ->
      M.absorb m;
      Obs.Span.absorb s)
    harvests;
  let metrics = M.merge (scheduling_delta :: List.map fst harvests) in
  let spans =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (_, entries) ->
        List.iter
          (fun (e : Obs.Span.entry) ->
            match Hashtbl.find_opt tbl e.path with
            | None -> Hashtbl.replace tbl e.path e
            | Some prev ->
              Hashtbl.replace tbl e.path
                { e with
                  count = prev.Obs.Span.count + e.count
                ; seconds = prev.Obs.Span.seconds +. e.seconds
                })
          entries)
      harvests;
    Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
    |> List.sort (fun (a : Obs.Span.entry) b -> compare a.path b.path)
  in
  let results =
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index was taken and published *))
  in
  { results; wall_seconds; workers; metrics; spans }
