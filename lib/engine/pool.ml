module M = Obs.Metrics

(* engine.* metric namespace (docs/OBSERVABILITY.md) *)
let m_scheduled = M.counter "engine.jobs.scheduled"
let m_completed = M.counter "engine.jobs.completed"
let m_failed = M.counter "engine.jobs.failed"
let m_timeout = M.counter "engine.jobs.timeout"
let m_retried = M.counter "engine.jobs.retried"
let m_cancelled = M.counter "engine.jobs.cancelled"
let m_workers = M.gauge "engine.workers.peak"

exception Cancelled of [ `Timeout | `Node_limit of int | `Kill ]

(* Internal: carries rendered error-severity diagnostics out of the lint
   pre-flight to the per-job classifier. *)
exception Lint_failed of string

type config =
  { workers : int
  ; dd_config : Dd.Pkg.config option
  ; node_limit : int option
  ; lint : bool
  ; gc_retry_scale : int
  ; on_result : (Job.result -> unit) option
  ; cache : Cache_store.Store.t option
  }

let default_config =
  { workers = Domain.recommended_domain_count ()
  ; dd_config = None
  ; node_limit = None
  ; lint = true
  ; gc_retry_scale = 4
  ; on_result = None
  ; cache = None
  }

type batch =
  { results : Job.result list
  ; wall_seconds : float
  ; workers : int
  ; metrics : M.snapshot
  ; spans : Obs.Span.entry list
  }

let now = Obs.Clock.now

(* -- per-job control (cancellation + live progress) ------------------- *)

type progress =
  { phase : string
  ; live_nodes : int
  ; elapsed : float
  }

type control =
  { cancel : bool Atomic.t
  ; on_start : (unit -> unit) option
  ; on_progress : (progress -> unit) option
  ; progress_interval : float
  }

let control ?(progress_interval = 0.25) ?on_start ?on_progress () =
  { cancel = Atomic.make false; on_start; on_progress; progress_interval }

let cancel c = Atomic.set c.cancel true
let cancel_requested c = Atomic.get c.cancel

(* The cooperative cancellation point: [Pkg.checkpoint] (called by every
   strategy / simulator / extraction loop after each gate) fires this hook,
   which compares the monotonic clock against the attempt's deadline, the
   package's live-node count against the pool budget, and the control's
   cancel flag.  Raising here unwinds the verification; the worker's own
   package is dropped with it.  The hook is per backend (each keeps its own
   domain-local slot), so it is installed on whichever backend the job
   resolved to.  The same hook drives the daemon's heartbeat: at most one
   [on_progress] call per [progress_interval] seconds, carrying the live
   node count and elapsed wall clock. *)
let with_guard (module B : Dd.Backend.S) ~deadline ~node_limit ~control f =
  (match (deadline, node_limit, control) with
   | None, None, None -> ()
   | _ ->
     let t0 = now () in
     let last_beat = ref t0 in
     B.Pkg.set_safepoint_hook
       (Some
          (fun p ->
            (match control with
             | Some c when Atomic.get c.cancel -> raise (Cancelled `Kill)
             | _ -> ());
            (match deadline with
             | Some d when now () > d -> raise (Cancelled `Timeout)
             | _ -> ());
            (match node_limit with
             | Some l when B.Pkg.live_nodes p > l -> raise (Cancelled (`Node_limit l))
             | _ -> ());
            match control with
            | Some { on_progress = Some beat; progress_interval; _ } ->
              let t = now () in
              if t -. !last_beat >= progress_interval then begin
                last_beat := t;
                beat
                  { phase = "check"
                  ; live_nodes = B.Pkg.live_nodes p
                  ; elapsed = t -. t0
                  }
              end
            | _ -> ())));
  Fun.protect ~finally:(fun () -> B.Pkg.set_safepoint_hook None) f

(* -- the worker-slot bank (portfolio admission) ------------------------ *)

(* Portfolio jobs want extra domains for their candidate races, but the
   pool's domain budget is [config.workers] — full stop.  The bank tracks
   the free slots: every running job holds one (its worker), and a
   portfolio job may additionally borrow whatever is free at its start,
   non-blockingly, so a busy pool degrades the race width instead of
   oversubscribing the machine. *)
type bank =
  { bl : Mutex.t
  ; bc : Condition.t
  ; mutable bfree : int
  }

let bank workers = { bl = Mutex.create (); bc = Condition.create (); bfree = workers }

(* blocking: a worker takes its own slot before running a job *)
let bank_acquire b =
  Mutex.lock b.bl;
  while b.bfree <= 0 do
    Condition.wait b.bc b.bl
  done;
  b.bfree <- b.bfree - 1;
  Mutex.unlock b.bl

(* non-blocking: a race borrows up to [k] extra slots, possibly zero *)
let bank_try_borrow b k =
  Mutex.protect b.bl (fun () ->
    let granted = min k b.bfree in
    b.bfree <- b.bfree - granted;
    granted)

let bank_release b k =
  if k > 0 then begin
    Mutex.protect b.bl (fun () -> b.bfree <- b.bfree + k);
    Condition.broadcast b.bc
  end

let render_diagnostics diags =
  Analysis.Diagnostic.sort diags
  |> List.filter (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
  |> List.map Analysis.Diagnostic.to_string
  |> String.concat "; "

let rec take_at_most k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take_at_most (k - 1) rest

(* The racing attempt: compose a candidate field for the pair (the pinned
   strategy, if any, leads it) and hand the race to [Qcec.Verify.portfolio].
   The safepoint closure replicates [with_guard]'s checks — it runs on the
   candidate domains, where the DD safepoints actually fire — and reports
   progress under a ["race:<candidate>"] phase so SSE consumers see who is
   currently leading the pack. *)
let race_attempt cfg ~bank ~dd_config ~deadline ~control ~width (spec : Job.spec) a b =
  let granted = match bank with None -> width - 1 | Some bk -> bank_try_borrow bk (width - 1) in
  Fun.protect
    ~finally:(fun () -> Option.iter (fun bk -> bank_release bk granted) bank)
    (fun () ->
      let width = 1 + granted in
      let kind =
        (* the most dynamic classification of the pair gates the candidate
           set: simulative candidates cannot decide dynamic circuits *)
        let k c = (Analysis.classify c).Analysis.Classify.kind in
        let rank = function
          | Analysis.Classify.Unitary -> 0
          | Analysis.Classify.Measure_terminal -> 1
          | Analysis.Classify.Dynamic -> 2
        in
        if rank (k a) >= rank (k b) then k a else k b
      in
      let composed =
        Obs.Span.with_ "analysis.compose_portfolio" (fun () ->
          Analysis.Classify.compose_portfolio ~width kind
            (Analysis.Cost.profile a) (Analysis.Cost.profile b))
        |> List.map Qcec.Strategy.of_candidate
      in
      let strategies =
        match spec.strategy with
        | None -> composed
        | Some s -> take_at_most width (s :: List.filter (fun c -> c <> s) composed)
      in
      let candidates = List.map (fun s -> (s, spec.backend)) strategies in
      let t0 = now () in
      (* the throttle is shared by every candidate domain, hence the lock *)
      let beat_lock = Mutex.create () in
      let last_beat = ref t0 in
      let safepoint ~candidate ~live_nodes =
        (match control with
         | Some c when Atomic.get c.cancel -> raise (Cancelled `Kill)
         | _ -> ());
        (match deadline with
         | Some d when now () > d -> raise (Cancelled `Timeout)
         | _ -> ());
        (match cfg.node_limit with
         | Some l when live_nodes > l -> raise (Cancelled (`Node_limit l))
         | _ -> ());
        match control with
        | Some { on_progress = Some beat; progress_interval; _ } ->
          let t = now () in
          let fire =
            Mutex.protect beat_lock (fun () ->
              if t -. !last_beat >= progress_interval then begin
                last_beat := t;
                true
              end
              else false)
          in
          if fire then
            beat
              { phase = "race:" ^ candidate; live_nodes; elapsed = t -. t0 }
        | _ -> ()
      in
      let on_dynamic = if spec.transform then `Transform else `Reject in
      let cache = if spec.cache then cfg.cache else None in
      let r =
        Qcec.Verify.portfolio ~candidates ?perm:spec.perm ~on_dynamic ?dd_config
          ?seed:spec.seed ~use_kernels:spec.kernels ?cache ~safepoint a b
      in
      let w = r.Qcec.Verify.winner in
      { Job.equivalent = w.Qcec.Verify.equivalent
      ; exactly_equal = w.Qcec.Verify.exactly_equal
      ; strategy =
          (* a probabilistic winner (every survivor was simulative and all
             shots agreed) is flagged in the recorded strategy so batch
             consumers can tell it from an exact race verdict *)
          Fmt.str "portfolio(%s%s)"
            (Qcec.Strategy.name r.Qcec.Verify.winner_strategy)
            (if r.Qcec.Verify.winner_definitive then "" else ", probabilistic")
      ; t_transform = w.Qcec.Verify.t_transform
      ; t_check = w.Qcec.Verify.t_check
      ; transformed_qubits = w.Qcec.Verify.transformed_qubits
      ; peak_nodes = w.Qcec.Verify.peak_nodes
      ; cached = w.Qcec.Verify.cached
      })

(* One verification attempt.  Parsing and linting happen inside the attempt
   so their failures are classified per job, and so the wall-clock deadline
   covers them too (cancellation between gates only triggers once DD work
   starts, which is where all the time goes). *)
let attempt cfg ?bank ~dd_config ~control (spec : Job.spec) =
  let deadline = Option.map (fun s -> now () +. s) spec.timeout in
  (* resolved before any parsing so a bad registry name fails fast; the
     manifest and the CLI both validate up front, this covers direct
     programmatic [Job.spec]s *)
  let backend =
    match Dd.Registry.find spec.backend with
    | Some b -> b
    | None ->
      failwith
        (Fmt.str "unknown DD backend %S (expected one of: %s)" spec.backend
           (String.concat ", " (Dd.Registry.names ())))
  in
  let a, b, lint_inputs =
    match spec.source with
    | Job.Circuits { a; b } -> (a, b, [ (a, None); (b, None) ])
    | Job.Files { file_a; file_b } ->
      let a, lines_a = Circuit.Qasm3_parser.parse_any_file_located file_a in
      let b, lines_b = Circuit.Qasm3_parser.parse_any_file_located file_b in
      (a, b, [ (a, Some (file_a, lines_a)); (b, Some (file_b, lines_b)) ])
  in
  if cfg.lint then begin
    let errors =
      List.concat_map
        (fun (c, located) ->
          match located with
          | Some (file, lines) -> Analysis.lint ~file ~lines c
          | None -> Analysis.lint c)
        lint_inputs
      |> List.filter (fun d ->
           d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
    in
    if errors <> [] then raise (Lint_failed (render_diagnostics errors))
  end;
  match spec.portfolio with
  | Some w when w >= 2 ->
    race_attempt cfg ~bank ~dd_config ~deadline ~control ~width:w spec a b
  | _ ->
  with_guard backend ~deadline ~node_limit:cfg.node_limit ~control (fun () ->
    let module B = (val backend : Dd.Backend.S) in
    let module V = Qcec.Verify.Make (B) in
    let on_dynamic = if spec.transform then `Transform else `Reject in
    (* the store is shared across workers by design: lookups are
       lock-free and inserts serialize inside [Cache_store.Store]; the key
       does not include the backend, so verdicts computed under one
       backend serve warm under any other *)
    let cache = if spec.cache then cfg.cache else None in
    (* manifest [scheme = "auto"]: the analysis passes route the job now
       that both circuits are parsed; an explicitly pinned strategy always
       wins (the manifest compiler never sets both) *)
    let strategy =
      match spec.strategy with
      | Some _ as s -> s
      | None when spec.auto_scheme ->
        Some
          (match
             Obs.Span.with_ "analysis.route" (fun () ->
               Analysis.Classify.route_application (Analysis.Cost.profile a)
                 (Analysis.Cost.profile b))
           with
           | Analysis.Cost.Proportional_order -> Qcec.Strategy.Proportional
           | Analysis.Cost.Lookahead_order -> Qcec.Strategy.Lookahead)
      | None -> None
    in
    let r =
      V.functional ?strategy ?perm:spec.perm ~on_dynamic
        ?dd_config ?seed:spec.seed ~use_kernels:spec.kernels ?cache a b
    in
    { Job.equivalent = r.Qcec.Verify.equivalent
    ; exactly_equal = r.Qcec.Verify.exactly_equal
    ; strategy = Qcec.Strategy.name r.Qcec.Verify.strategy
    ; t_transform = r.Qcec.Verify.t_transform
    ; t_check = r.Qcec.Verify.t_check
    ; transformed_qubits = r.Qcec.Verify.transformed_qubits
    ; peak_nodes = r.Qcec.Verify.peak_nodes
    ; cached = r.Qcec.Verify.cached
    })

let classify = function
  | Cancelled `Timeout -> (Job.Timeout, "wall-clock budget exhausted")
  | Cancelled (`Node_limit l) ->
    (Job.Node_limit, Fmt.str "live DD nodes exceeded the %d-node budget" l)
  | Cancelled `Kill -> (Job.Cancelled, "cancelled by request")
  | Lint_failed msg -> (Job.Lint_error, msg)
  | Circuit.Qasm_parser.Parse_error (msg, line) ->
    (Job.Parse_error, Fmt.str "line %d: %s" line msg)
  | Sys_error msg -> (Job.Parse_error, msg)
  | Qcec.Strategy.Non_unitary op ->
    (Job.Non_unitary, Fmt.str "non-unitary operation %a" Circuit.Op.pp op)
  | Qcec.Verify.Rejected d -> (Job.Rejected, Analysis.Diagnostic.to_string d)
  | e -> (Job.Crash, Printexc.to_string e)

(* Timed-out attempts may retry with a proportionally relaxed auto-GC
   threshold: a job that spent its budget collecting garbage gets to trade
   memory for time on the next try. *)
let relax cfg dd_config =
  match dd_config with
  | Some c ->
    Some
      { c with
        Dd.Pkg.gc_threshold =
          Option.map (fun t -> t * cfg.gc_retry_scale) c.Dd.Pkg.gc_threshold
      }
  | None -> None

let run_job ?control ?bank cfg ~worker (spec : Job.spec) =
  let m0 = M.snapshot () in
  let t0 = now () in
  (match control with
   | Some { on_start = Some f; _ } -> f ()
   | _ -> ());
  let rec go ~attempts dd_config =
    let outcome =
      match attempt cfg ?bank ~dd_config ~control spec with
      | v -> Job.Verdict v
      | exception e ->
        let reason, message = classify e in
        Job.Failed { reason; message }
    in
    match outcome with
    | Job.Failed { reason = Job.Timeout; _ } when attempts <= spec.retries ->
      M.incr m_retried;
      go ~attempts:(attempts + 1) (relax cfg dd_config)
    | outcome -> (outcome, attempts)
  in
  let outcome, attempts = go ~attempts:1 cfg.dd_config in
  (match outcome with
   | Job.Verdict _ -> M.incr m_completed
   | Job.Failed { reason; _ } ->
     M.incr m_failed;
     if reason = Job.Timeout then M.incr m_timeout;
     if reason = Job.Cancelled then M.incr m_cancelled);
  { Job.index = spec.index
  ; label = spec.label
  ; files_checked =
      (match spec.source with
       | Job.Files { file_a; file_b } -> Some (file_a, file_b)
       | Job.Circuits _ -> None)
  ; outcome
  ; duration = now () -. t0
  ; attempts
  ; worker
  ; seed = spec.seed
  ; backend = spec.backend
  ; metrics = M.diff ~before:m0 ~after:(M.snapshot ())
  }

let run (cfg : config) specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  (* scheduling counters land on the calling domain; remember the delta so
     the batch aggregate (merged from worker registries) includes them *)
  let m_before = M.snapshot () in
  M.add m_scheduled n;
  let workers = max 1 (min cfg.workers (max 1 n)) in
  M.observe m_workers workers;
  let scheduling_delta = M.diff ~before:m_before ~after:(M.snapshot ()) in
  let t0 = now () in
  let lock = Mutex.create () in
  let next = ref 0 in
  let results = Array.make n None in
  (* every running job holds one bank slot; idle workers leave theirs free
     so portfolio races can borrow them (never exceeding [workers] domains) *)
  let bk = bank workers in
  let take () =
    bank_acquire bk;
    let i =
      Mutex.protect lock (fun () ->
        if !next >= n then None
        else begin
          let i = !next in
          incr next;
          Some i
        end)
    in
    if i = None then bank_release bk 1;
    i
  in
  let publish i r =
    Mutex.protect lock (fun () ->
      results.(i) <- Some r;
      match cfg.on_result with None -> () | Some f -> f r)
  in
  (* Workers are plain domains; each job builds its own [Dd.Pkg.t] inside
     [Verify.functional], so packages never cross domains (and the package
     owner guard would catch it if one did). *)
  let worker_fn wid () =
    let rec loop () =
      match take () with
      | None -> ()
      | Some i ->
        Fun.protect
          ~finally:(fun () -> bank_release bk 1)
          (fun () -> publish i (run_job ~bank:bk cfg ~worker:wid specs.(i)));
        loop ()
    in
    loop ();
    (M.snapshot (), Obs.Span.report ())
  in
  let harvests =
    let domains = List.init workers (fun wid -> Domain.spawn (worker_fn wid)) in
    List.map Domain.join domains
  in
  let wall_seconds = now () -. t0 in
  (* Fold worker registries into the calling domain so process-level
     reports ([qcec_cli stats], bench output) see the batch's work, and
     keep the merged reading for the batch aggregate. *)
  List.iter
    (fun (m, s) ->
      M.absorb m;
      Obs.Span.absorb s)
    harvests;
  let metrics = M.merge (scheduling_delta :: List.map fst harvests) in
  let spans =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (_, entries) ->
        List.iter
          (fun (e : Obs.Span.entry) ->
            match Hashtbl.find_opt tbl e.path with
            | None -> Hashtbl.replace tbl e.path e
            | Some prev ->
              Hashtbl.replace tbl e.path
                { e with
                  count = prev.Obs.Span.count + e.count
                ; seconds = prev.Obs.Span.seconds +. e.seconds
                })
          entries)
      harvests;
    Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
    |> List.sort (fun (a : Obs.Span.entry) b -> compare a.path b.path)
  in
  let results =
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index was taken and published *))
  in
  { results; wall_seconds; workers; metrics; spans }

(* -- persistent pool (the daemon's execution substrate) ---------------- *)

(* Unlike [run], which spawns domains for one batch and joins them, a
   persistent pool keeps its worker domains alive across submissions: jobs
   arrive one at a time (the daemon's admission queue feeds them in) and
   each completion is delivered through its own callback, on the worker
   domain that ran it.  Queueing here is deliberately unbounded — admission
   control (bounded queue, 429s) is the caller's policy, not the pool's. *)

type task =
  { spec : Job.spec
  ; control : control option
  ; on_done : Job.result -> unit
  }

type pool =
  { pcfg : config
  ; lock : Mutex.t
  ; nonempty : Condition.t  (** signalled on submit and on shutdown *)
  ; queue : task Queue.t
  ; pbank : bank  (** worker-slot bank portfolio races borrow from *)
  ; mutable stopping : bool
  ; mutable active : int  (** tasks currently executing on a worker *)
  ; mutable domains : (M.snapshot * Obs.Span.entry list) Domain.t list
  }

(* A structured result for a job that never ran (cancelled while queued,
   or abandoned by a non-draining shutdown). *)
let unstarted_result ~reason ~message (spec : Job.spec) =
  { Job.index = spec.index
  ; label = spec.label
  ; files_checked =
      (match spec.source with
       | Job.Files { file_a; file_b } -> Some (file_a, file_b)
       | Job.Circuits _ -> None)
  ; outcome = Job.Failed { reason; message }
  ; duration = 0.0
  ; attempts = 0
  ; worker = -1
  ; seed = spec.seed
  ; backend = spec.backend
  ; metrics = []
  }

let persistent_worker pool wid () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.nonempty pool.lock
    done;
    if Queue.is_empty pool.queue then begin
      (* stopping, and the queue is drained *)
      Mutex.unlock pool.lock;
      (M.snapshot (), Obs.Span.report ())
    end
    else begin
      let task = Queue.pop pool.queue in
      pool.active <- pool.active + 1;
      Mutex.unlock pool.lock;
      bank_acquire pool.pbank;
      let r =
        Fun.protect
          ~finally:(fun () -> bank_release pool.pbank 1)
          (fun () ->
            match task.control with
            | Some c when Atomic.get c.cancel ->
              M.incr m_cancelled;
              { (unstarted_result ~reason:Job.Cancelled
                   ~message:"cancelled while queued" task.spec)
                with Job.worker = wid }
            | control ->
              run_job ?control ~bank:pool.pbank pool.pcfg ~worker:wid task.spec)
      in
      (* a misbehaving completion callback must not kill the worker *)
      (try task.on_done r with _ -> ());
      Mutex.lock pool.lock;
      pool.active <- pool.active - 1;
      Mutex.unlock pool.lock;
      loop ()
    end
  in
  loop ()

let create (cfg : config) =
  let workers = max 1 cfg.workers in
  M.observe m_workers workers;
  let pool =
    { pcfg = { cfg with workers }
    ; lock = Mutex.create ()
    ; nonempty = Condition.create ()
    ; queue = Queue.create ()
    ; pbank = bank workers
    ; stopping = false
    ; active = 0
    ; domains = []
    }
  in
  pool.domains <-
    List.init workers (fun wid -> Domain.spawn (persistent_worker pool wid));
  pool

let submit pool ?control ~on_done spec =
  Mutex.protect pool.lock (fun () ->
    if pool.stopping then Error `Stopped
    else begin
      M.incr m_scheduled;
      Queue.push { spec; control; on_done } pool.queue;
      Condition.signal pool.nonempty;
      Ok ()
    end)

let pending pool = Mutex.protect pool.lock (fun () -> Queue.length pool.queue)
let active pool = Mutex.protect pool.lock (fun () -> pool.active)

let shutdown ?(drain = true) pool =
  let abandoned =
    Mutex.protect pool.lock (fun () ->
      pool.stopping <- true;
      let abandoned =
        if drain then []
        else begin
          let l = List.of_seq (Queue.to_seq pool.queue) in
          Queue.clear pool.queue;
          l
        end
      in
      Condition.broadcast pool.nonempty;
      abandoned)
  in
  List.iter
    (fun t ->
      M.incr m_cancelled;
      try
        t.on_done
          (unstarted_result ~reason:Job.Cancelled ~message:"pool shut down"
             t.spec)
      with _ -> ())
    abandoned;
  let harvests = List.map Domain.join pool.domains in
  pool.domains <- [];
  (* fold worker registries into the calling domain, as [run] does, so the
     daemon's process-level metrics include everything the pool executed *)
  List.iter
    (fun (m, s) ->
      M.absorb m;
      Obs.Span.absorb s)
    harvests
