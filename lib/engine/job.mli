(** The batch-verification job model: what one unit of work is, and what
    comes back — the [qcec-result/v1] line the {!Results} layer streams.

    A {!spec} is pure data: the pool compiles it into a call to
    [Qcec.Verify.functional] on some worker domain.  Everything that can go
    wrong is captured as a structured {!failure_class} rather than an
    exception, so one bad job never aborts a batch. *)

type source =
  | Files of
      { file_a : string
      ; file_b : string
      }  (** parsed (and lint-checked) on the worker *)
  | Circuits of
      { a : Circuit.Circ.t
      ; b : Circuit.Circ.t
      }  (** pre-parsed, e.g. from the benchmark generators *)

type spec =
  { index : int  (** position in the batch; results are reported per index *)
  ; label : string
  ; source : source
  ; strategy : Qcec.Strategy.t option  (** [None]: [Qcec.Strategy.default] *)
  ; auto_scheme : bool
        (** when [strategy] is [None]: run the [Analysis.Cost] passes on
            the parsed circuits and pick proportional or lookahead
            alternation from their cost profiles (manifest [scheme =
            "auto"]); default [false] *)
  ; perm : int array option  (** wire alignment, as in [Verify.functional] *)
  ; transform : bool
        (** [false] verifies with [~on_dynamic:`Reject]: dynamic inputs
            become a [Rejected] failure instead of being transformed *)
  ; timeout : float option  (** per-job wall-clock budget, seconds *)
  ; retries : int  (** extra attempts granted to timed-out jobs *)
  ; seed : int option  (** per-job stimuli seed (manifest seed + index) *)
  ; kernels : bool
        (** route gate applications through the direct DD kernels
            (default); [false] selects the generic
            build-gate-DD-then-multiply path for A/B runs *)
  ; cache : bool
        (** consult/populate the pool's verdict store (default; a no-op
            when the pool has none configured); [false] opts this job out *)
  ; backend : string
        (** DD backend registry name the job runs under (default
            [Dd.Registry.default], i.e. ["classic"]); the pool resolves it
            per job via {!Dd.Registry.find} *)
  ; portfolio : int option
        (** [Some w], [w >= 2]: race up to [w] candidate deciders for this
            job via [Qcec.Verify.portfolio] (extra domains are borrowed
            from the pool's worker budget, so the pool never
            oversubscribes; a busy pool may grant fewer than [w]).
            [None] or [Some 1]: the ordinary solo path.  When [strategy]
            is set it becomes the lead candidate; otherwise the
            [Analysis] portfolio composition picks the field *)
  }

val files :
     ?label:string
  -> ?strategy:Qcec.Strategy.t
  -> ?auto_scheme:bool
  -> ?perm:int array
  -> ?transform:bool
  -> ?timeout:float
  -> ?retries:int
  -> ?seed:int
  -> ?kernels:bool
  -> ?cache:bool
  -> ?backend:string
  -> ?portfolio:int
  -> index:int
  -> string
  -> string
  -> spec

val circuits :
     ?label:string
  -> ?strategy:Qcec.Strategy.t
  -> ?auto_scheme:bool
  -> ?perm:int array
  -> ?transform:bool
  -> ?timeout:float
  -> ?retries:int
  -> ?seed:int
  -> ?kernels:bool
  -> ?cache:bool
  -> ?backend:string
  -> ?portfolio:int
  -> index:int
  -> Circuit.Circ.t
  -> Circuit.Circ.t
  -> spec

(** A successful verification — the fields of
    [Qcec.Verify.functional_result] that serialize. *)
type verdict =
  { equivalent : bool
  ; exactly_equal : bool
  ; strategy : string
  ; t_transform : float
  ; t_check : float
  ; transformed_qubits : int
  ; peak_nodes : int
  ; cached : bool  (** served from the verdict store without a DD run *)
  }

type failure_class =
  | Timeout  (** wall-clock budget exhausted (cooperative, at DD safepoints) *)
  | Lint_error  (** lint pre-flight found error-severity diagnostics *)
  | Parse_error  (** unreadable or malformed QASM input *)
  | Non_unitary  (** [Strategy.Non_unitary] escaped (non-transformable op) *)
  | Rejected  (** dynamic input under [transform = false] *)
  | Node_limit  (** live DD nodes exceeded the pool's [node_limit] *)
  | Cancelled
      (** killed on request (the daemon's [DELETE /v1/jobs/<id>]): the
          cancel flag of the job's {!Pool.control} was raised, and the
          safepoint hook unwound the attempt — or the job was still
          queued and never started *)
  | Crash  (** any other exception, [Printexc]-rendered *)

type outcome =
  | Verdict of verdict
  | Failed of
      { reason : failure_class
      ; message : string
      }

type result =
  { index : int
  ; label : string
  ; files_checked : (string * string) option
  ; outcome : outcome
  ; duration : float  (** seconds across all attempts *)
  ; attempts : int
  ; worker : int  (** pool worker id that ran the job *)
  ; seed : int option
  ; backend : string
        (** DD backend that ran (or would have run) the check; result
            files predating the field parse as ["classic"] *)
  ; metrics : Obs.Metrics.snapshot
        (** per-job counter deltas from the worker's registry (all zeros
            unless collection is enabled) *)
  }

val failure_class_string : failure_class -> string
val failure_class_of_string : string -> failure_class option

(** [exit_class o] is the stable string the [exit] field of a result line
    carries: ["equivalent"], ["not_equivalent"], ["cached"] (a verdict
    served from the store — its [equivalent] flag still says which), or a
    failure class. *)
val exit_class : outcome -> string

(** [succeeded r] — the job ran to completion {e and} found the pair
    equivalent. *)
val succeeded : result -> bool

(** [same_outcome a b] compares outcomes modulo scheduling: verdict flags
    and strategy must match (timings, and whether the verdict came from
    the cache, may differ), failures must agree on the class (messages may
    differ).  This is the invariant batch runs maintain across worker
    counts — and that warm runs maintain against their cold run. *)
val same_outcome : outcome -> outcome -> bool

val pp_result : Format.formatter -> result -> unit

(** {1 [qcec-result/v1]} *)

val schema : string

val to_json : result -> Obs.Json.t

(** [of_json j] inverts {!to_json} exactly: for any [r],
    [of_json (of_string (Json.to_string (to_json r)))] is [Ok r]. *)
val of_json : Obs.Json.t -> (result, string) Stdlib.result

(** [of_string line] parses one JSONL line. *)
val of_string : string -> (result, string) Stdlib.result
