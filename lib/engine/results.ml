module Json = Obs.Json

let schema = "qcec-batch/v1"

let write_jsonl oc r =
  output_string oc (Json.to_string (Job.to_json r));
  output_char oc '\n';
  flush oc

let read_jsonl path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | lines ->
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else
          (match Job.of_string line with
           | Ok r -> go (r :: acc) (lineno + 1) rest
           | Error e -> Error (Fmt.str "%s:%d: %s" path lineno e))
    in
    go [] 1 lines

(* Percentile by nearest-rank on the sorted sample; the convention every
   latency dashboard expects (p100 = max, p0 = min). *)
let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let exit_counts results =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Job.result) ->
      let k = Job.exit_class r.Job.outcome in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    results;
  Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let aggregate (b : Pool.batch) =
  let durations =
    List.map (fun (r : Job.result) -> r.Job.duration) b.Pool.results
    |> Array.of_list
  in
  Array.sort compare durations;
  let cpu_seconds = Array.fold_left ( +. ) 0.0 durations in
  (* cpu/wall: how much sequential work the batch packed into each wall
     second.  With one worker this sits near 1.0 (scheduling overhead pulls
     it just below); the bench's sequential-vs-parallel comparison is the
     ground-truth speedup. *)
  let speedup =
    if b.Pool.wall_seconds > 0.0 then cpu_seconds /. b.Pool.wall_seconds else 1.0
  in
  Json.Obj
    [ ("schema", Json.String schema)
    ; ("jobs", Json.Int (List.length b.Pool.results))
    ; ("workers", Json.Int b.Pool.workers)
    ; ("wall_seconds", Json.Float b.Pool.wall_seconds)
    ; ("cpu_seconds", Json.Float cpu_seconds)
    ; ("speedup_vs_sequential", Json.Float speedup)
    ; ( "latency_seconds"
      , Json.Obj
          [ ("p50", Json.Float (percentile durations 50.0))
          ; ("p95", Json.Float (percentile durations 95.0))
          ; ("p99", Json.Float (percentile durations 99.0))
          ; ("max", Json.Float (percentile durations 100.0))
          ] )
    ; ("exit_classes", Json.Obj (exit_counts b.Pool.results))
    ; ("metrics", Obs.Metrics.to_json b.Pool.metrics)
    ; ("spans", Obs.Span.entries_to_json b.Pool.spans)
    ]
