(** Batch verification on OCaml 5 domains: compile a manifest (or file
    pairs) into {!Job.spec}s, run them on the {!Pool}, stream and
    aggregate with {!Results}.  See [docs/ENGINE.md]. *)

module Job = Job
module Manifest = Manifest
module Pool = Pool
module Results = Results
