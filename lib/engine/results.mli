(** The results layer: streaming [qcec-result/v1] JSONL and the
    end-of-run [qcec-batch/v1] aggregate. *)

val schema : string

(** [write_jsonl oc r] writes one result line and flushes, so a consumer
    tailing the file sees verdicts as they land.  Serialize calls
    externally when streaming from the pool callback (the pool already
    invokes [on_result] under its lock). *)
val write_jsonl : out_channel -> Job.result -> unit

(** [read_jsonl path] parses a results file back (blank lines are
    skipped); errors carry the 1-based line number. *)
val read_jsonl : string -> (Job.result list, string) result

(** [aggregate batch] is the [qcec-batch/v1] document: job and worker
    counts, wall/cpu seconds, cpu/wall speedup, nearest-rank p50/p95/p99/max
    latencies, per-exit-class counts, and the batch-attributable merged
    metrics and spans. *)
val aggregate : Pool.batch -> Obs.Json.t
