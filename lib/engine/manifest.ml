module Json = Obs.Json

type defaults =
  { strategy : Qcec.Strategy.t option
  ; auto_scheme : bool
  ; timeout : float option
  ; retries : int
  ; transform : bool
  ; kernels : bool
  ; cache : bool
  ; backend : string
  ; portfolio : int option
  }

let no_defaults =
  { strategy = None; auto_scheme = false; timeout = None; retries = 0
  ; transform = true; kernels = true; cache = true
  ; backend = Dd.Registry.default; portfolio = None }

type t =
  { seed : int option
  ; cache_dir : string option
  ; jobs : Job.spec list
  }

let schema = "qcec-manifest/v1"

let ( let* ) = Result.bind

(* Collect [Ok]s or return the first [Error]. *)
let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      let* y = f x in
      go (y :: acc) rest
  in
  go [] l

let job_seed ~manifest_seed ~index =
  match manifest_seed with None -> None | Some s -> Some (s + index)

let str_field name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Fmt.str "manifest: field %S must be a string" name)
  | None -> Ok None

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Fmt.str "manifest: field %S must be an integer" name)
  | None -> Ok None

let num_field name j =
  match Json.member name j with
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> Error (Fmt.str "manifest: field %S must be a number" name)
  | None -> Ok None

let bool_field name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Fmt.str "manifest: field %S must be a boolean" name)
  | None -> Ok None

(* Backend names are validated against the runtime registry at parse
   time, so a typo fails the whole manifest up front instead of surfacing
   as N per-job crashes. *)
let backend_field name j =
  let* s = str_field name j in
  match s with
  | None -> Ok None
  | Some b ->
    (match Dd.Registry.find b with
     | Some _ -> Ok (Some b)
     | None ->
       Error
         (Fmt.str "manifest: unknown backend %S (expected one of: %s)" b
            (String.concat ", " (Dd.Registry.names ()))))

(* A portfolio width of 1 is legal (a degenerate race) but almost always a
   typo for "no portfolio"; the manifest insists on >= 2 to keep intent
   explicit, while 0 turns a defaulted portfolio off per job. *)
let portfolio_field name j =
  let* w = int_field name j in
  match w with
  | None -> Ok None
  | Some 0 -> Ok (Some 0)
  | Some w when w >= 2 -> Ok (Some w)
  | Some w ->
    Error
      (Fmt.str
         "manifest: field %S must be a width >= 2 (or 0 to disable), got %d"
         name w)

let strategy_field name j =
  let* s = str_field name j in
  match s with
  | None -> Ok None
  | Some s ->
    (match Qcec.Strategy.of_string s with
     | Ok st -> Ok (Some st)
     | Error e -> Error (Fmt.str "manifest: %s" e))

(* ["scheme"] selects the application scheme: ["auto"] routes each job
   through the analysis passes at run time; any other value is a strategy
   synonym (so ["scheme": "lookahead"] and ["strategy": "lookahead"] are
   the same pin). *)
let scheme_field name j =
  let* s = str_field name j in
  match s with
  | None -> Ok None
  | Some "auto" -> Ok (Some `Auto)
  | Some s ->
    (match Qcec.Strategy.of_string s with
     | Ok st -> Ok (Some (`Fixed st))
     | Error e -> Error (Fmt.str "manifest: %s" e))

let perm_field j =
  match Json.member "perm" j with
  | None -> Ok None
  | Some (Json.List l) ->
    let* ints =
      map_result
        (function
          | Json.Int i -> Ok i
          | _ -> Error "manifest: \"perm\" must be a list of integers")
        l
    in
    Ok (Some (Array.of_list ints))
  | Some _ -> Error "manifest: \"perm\" must be a list of integers"

let defaults_of_json j =
  match Json.member "defaults" j with
  | None -> Ok no_defaults
  | Some d ->
    let* strategy = strategy_field "strategy" d in
    let* scheme = scheme_field "scheme" d in
    let* timeout = num_field "timeout" d in
    let* retries = int_field "retries" d in
    let* transform = bool_field "transform" d in
    let* kernels = bool_field "kernels" d in
    let* cache = bool_field "cache" d in
    let* backend = backend_field "backend" d in
    let* portfolio = portfolio_field "portfolio" d in
    let strategy, auto_scheme =
      match scheme with
      | Some `Auto -> (None, true)
      | Some (`Fixed st) -> (Some st, false)
      | None -> (strategy, false)
    in
    Ok
      { strategy
      ; auto_scheme
      ; timeout
      ; retries = Option.value retries ~default:0
      ; transform = Option.value transform ~default:true
      ; kernels = Option.value kernels ~default:true
      ; cache = Option.value cache ~default:true
      ; backend = Option.value backend ~default:Dd.Registry.default
      ; portfolio = (match portfolio with Some 0 -> None | p -> p)
      }

(* Paths in a manifest are relative to the manifest file, so a manifest can
   sit next to its circuits and be invoked from anywhere. *)
let resolve ~dir path =
  if Filename.is_relative path then Filename.concat dir path else path

(* A job with ["skip": true] compiles to [None]: it is dropped from the
   batch while the remaining jobs keep their manifest indices (and hence
   their derived seeds). *)
let job_of_json ~dir ~defaults ~manifest_seed ~index j =
  let* skip = bool_field "skip" j in
  if Option.value skip ~default:false then Ok None
  else
    let* a =
      match Json.member "a" j with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Fmt.str "manifest: job %d: missing string field \"a\"" index)
    in
    let* b =
      match Json.member "b" j with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Fmt.str "manifest: job %d: missing string field \"b\"" index)
    in
    let* label = str_field "label" j in
    let* strategy = strategy_field "strategy" j in
    let* scheme = scheme_field "scheme" j in
    let* perm = perm_field j in
    let* timeout = num_field "timeout" j in
    let* retries = int_field "retries" j in
    let* transform = bool_field "transform" j in
    let* kernels = bool_field "kernels" j in
    let* cache = bool_field "cache" j in
    let* backend = backend_field "backend" j in
    let* portfolio = portfolio_field "portfolio" j in
    let label =
      match label with
      | Some l -> l
      | None -> Filename.basename a ^ " vs " ^ Filename.basename b
    in
    let strategy, auto_scheme =
      match scheme with
      | Some `Auto -> (None, true)
      | Some (`Fixed st) -> (Some st, false)
      | None ->
        (match strategy with
         | Some _ as s -> (s, false)
         | None -> (defaults.strategy, defaults.auto_scheme))
    in
    Ok
      (Some
         { Job.index
         ; label
         ; source = Job.Files { file_a = resolve ~dir a; file_b = resolve ~dir b }
         ; strategy
         ; auto_scheme
         ; perm
         ; transform = Option.value transform ~default:defaults.transform
         ; timeout = (match timeout with Some _ as t -> t | None -> defaults.timeout)
         ; retries = Option.value retries ~default:defaults.retries
         ; seed = job_seed ~manifest_seed ~index
         ; kernels = Option.value kernels ~default:defaults.kernels
         ; cache = Option.value cache ~default:defaults.cache
         ; backend = Option.value backend ~default:defaults.backend
         ; portfolio =
             (match portfolio with
              | Some 0 -> None
              | Some _ as p -> p
              | None -> defaults.portfolio)
         })

let of_json ?(dir = Filename.current_dir_name) j =
  let* s =
    match Json.member "schema" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "manifest: missing string field \"schema\""
  in
  let* () =
    if s = schema then Ok ()
    else Error (Fmt.str "manifest: unexpected schema %S (want %S)" s schema)
  in
  let* manifest_seed = int_field "seed" j in
  let* cache_dir = str_field "cache_dir" j in
  let cache_dir = Option.map (resolve ~dir) cache_dir in
  let* defaults = defaults_of_json j in
  let* jobs_json =
    match Json.member "jobs" j with
    | Some (Json.List l) -> Ok l
    | _ -> Error "manifest: missing list field \"jobs\""
  in
  let* jobs =
    map_result
      (fun (index, j) -> job_of_json ~dir ~defaults ~manifest_seed ~index j)
      (List.mapi (fun i j -> (i, j)) jobs_json)
  in
  Ok { seed = manifest_seed; cache_dir; jobs = List.filter_map Fun.id jobs }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error (Fmt.str "manifest: %s" msg)
  | contents ->
    (match Json.of_string contents with
     | exception Json.Parse_error msg -> Error (Fmt.str "manifest: %s: %s" path msg)
     | j -> of_json ~dir:(Filename.dirname path) j)

let pair_files paths =
  let rec pair acc = function
    | [] -> Ok (List.rev acc)
    | [ odd ] -> Error (Fmt.str "odd number of circuit files (no partner for %s)" odd)
    | a :: b :: rest -> pair ((a, b) :: acc) rest
  in
  pair [] paths

let of_pairs ?seed ?(defaults = no_defaults) pairs =
  let jobs =
    List.mapi
      (fun index (a, b) ->
        Job.files ?strategy:defaults.strategy ~auto_scheme:defaults.auto_scheme
          ?timeout:defaults.timeout
          ~retries:defaults.retries ~transform:defaults.transform
          ~kernels:defaults.kernels ~cache:defaults.cache
          ~backend:defaults.backend ?portfolio:defaults.portfolio
          ?seed:(job_seed ~manifest_seed:seed ~index) ~index a b)
      pairs
  in
  { seed; cache_dir = None; jobs }
