(** [qcec-manifest/v1]: the on-disk description of a batch.

    {v
    { "schema": "qcec-manifest/v1",
      "seed": 42,
      "defaults": { "strategy": "proportional", "timeout": 30,
                    "retries": 1, "transform": true, "kernels": true,
                    "backend": "classic" },
      "jobs": [
        { "a": "bv6_dynamic.qasm", "b": "bv6_static.qasm",
          "label": "bv6", "strategy": "simulation:16",
          "perm": [0, 2, 1], "timeout": 5, "retries": 0,
          "transform": false } ] }
    v}

    Only ["schema"] and ["jobs"] (with per-job ["a"]/["b"]) are required;
    every other field is optional.  Per-job fields override the
    ["defaults"] block.  File paths are resolved relative to the manifest's
    directory.  The manifest-level ["seed"] derives one deterministic
    stimuli seed per job ([seed + job index]), so simulative strategies are
    reproducible — and identical — regardless of worker count or
    scheduling order.

    A ["scheme"] field (per job or in defaults) selects the application
    scheme: ["auto"] routes each job through the static analysis passes at
    run time (cost profiles pick proportional or lookahead alternation),
    while any other value is a synonym for ["strategy"].

    A job may carry ["skip": true]: it is dropped at compile time while
    the remaining jobs keep their manifest indices (and derived seeds), so
    skipping never reshuffles a batch.  ["cache_dir"] (manifest-relative)
    names a verdict store the runner should open; the CLI's [--cache-dir]
    overrides it and [--no-result-cache] disables both. *)

type defaults =
  { strategy : Qcec.Strategy.t option
  ; auto_scheme : bool
        (** from ["scheme": "auto"]: route each job through the analysis
            passes at run time; any other ["scheme"] value is a strategy
            synonym and lands in [strategy] instead *)
  ; timeout : float option
  ; retries : int
  ; transform : bool
  ; kernels : bool
        (** default [true]; ["kernels": false] (per job or in defaults)
            selects the generic gate-DD path for A/B comparison *)
  ; cache : bool
        (** default [true]; ["cache": false] (per job or in defaults)
            opts jobs out of the verdict store even when one is open *)
  ; backend : string
        (** default ["classic"]; ["backend"] (per job or in defaults)
            selects the DD backend by {!Dd.Registry} name — unknown names
            fail manifest compilation up front *)
  ; portfolio : int option
        (** ["portfolio": w] (per job or in defaults) races up to [w]
            candidate deciders per job, first verdict wins; [w] must be
            [>= 2] (a per-job [0] disables a defaulted portfolio).  Race
            domains are borrowed from the pool's worker budget, so
            [--jobs] still bounds total parallelism *)
  }

val no_defaults : defaults

type t =
  { seed : int option
  ; cache_dir : string option
        (** verdict store requested by the manifest, already resolved
            against the manifest directory *)
  ; jobs : Job.spec list
  }

val schema : string

(** [load path] reads and compiles a manifest file; paths inside resolve
    relative to [Filename.dirname path]. *)
val load : string -> (t, string) result

(** [of_json ?dir j] compiles an already-parsed manifest document.  [dir]
    (default ".") anchors relative circuit paths. *)
val of_json : ?dir:string -> Obs.Json.t -> (t, string) result

(** [pair_files paths] pairs a flat file list consecutively:
    [[a; b; c; d]] becomes [[(a, b); (c, d)]].  An odd count is an
    error. *)
val pair_files : string list -> ((string * string) list, string) result

(** [of_pairs ?seed ?defaults pairs] builds a manifest directly from file
    pairs — the globbed-QASM path of the CLI. *)
val of_pairs : ?seed:int -> ?defaults:defaults -> (string * string) list -> t
