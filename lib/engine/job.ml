module Circ = Circuit.Circ
module Json = Obs.Json

type source =
  | Files of
      { file_a : string
      ; file_b : string
      }
  | Circuits of
      { a : Circ.t
      ; b : Circ.t
      }

type spec =
  { index : int
  ; label : string
  ; source : source
  ; strategy : Qcec.Strategy.t option
  ; auto_scheme : bool
      (* when [strategy] is [None]: run the analysis passes on the parsed
         circuits and let the cost profiles pick the application scheme *)
  ; perm : int array option
  ; transform : bool
  ; timeout : float option
  ; retries : int
  ; seed : int option
  ; kernels : bool
  ; cache : bool
  ; backend : string
  ; portfolio : int option
  }

let files ?label ?strategy ?(auto_scheme = false) ?perm ?(transform = true)
    ?timeout ?(retries = 0) ?seed ?(kernels = true) ?(cache = true)
    ?(backend = Dd.Registry.default) ?portfolio ~index file_a file_b =
  let label =
    match label with
    | Some l -> l
    | None -> Filename.basename file_a ^ " vs " ^ Filename.basename file_b
  in
  { index; label; source = Files { file_a; file_b }; strategy; auto_scheme
  ; perm; transform; timeout; retries; seed; kernels; cache; backend; portfolio }

let circuits ?label ?strategy ?(auto_scheme = false) ?perm ?(transform = true)
    ?timeout ?(retries = 0) ?seed ?(kernels = true) ?(cache = true)
    ?(backend = Dd.Registry.default) ?portfolio ~index a b =
  let label =
    match label with Some l -> l | None -> a.Circ.name ^ " vs " ^ b.Circ.name
  in
  { index; label; source = Circuits { a; b }; strategy; auto_scheme; perm
  ; transform; timeout; retries; seed; kernels; cache; backend; portfolio }

type verdict =
  { equivalent : bool
  ; exactly_equal : bool
  ; strategy : string
  ; t_transform : float
  ; t_check : float
  ; transformed_qubits : int
  ; peak_nodes : int
  ; cached : bool
  }

type failure_class =
  | Timeout
  | Lint_error
  | Parse_error
  | Non_unitary
  | Rejected
  | Node_limit
  | Cancelled
  | Crash

type outcome =
  | Verdict of verdict
  | Failed of
      { reason : failure_class
      ; message : string
      }

type result =
  { index : int
  ; label : string
  ; files_checked : (string * string) option
  ; outcome : outcome
  ; duration : float
  ; attempts : int
  ; worker : int
  ; seed : int option
  ; backend : string
  ; metrics : Obs.Metrics.snapshot
  }

let failure_class_string = function
  | Timeout -> "timeout"
  | Lint_error -> "lint_error"
  | Parse_error -> "parse_error"
  | Non_unitary -> "non_unitary"
  | Rejected -> "rejected"
  | Node_limit -> "node_limit"
  | Cancelled -> "cancelled"
  | Crash -> "crash"

let failure_class_of_string = function
  | "timeout" -> Some Timeout
  | "lint_error" -> Some Lint_error
  | "parse_error" -> Some Parse_error
  | "non_unitary" -> Some Non_unitary
  | "rejected" -> Some Rejected
  | "node_limit" -> Some Node_limit
  | "cancelled" -> Some Cancelled
  | "crash" -> Some Crash
  | _ -> None

let exit_class = function
  | Verdict { cached = true; _ } -> "cached"
  | Verdict { equivalent = true; _ } -> "equivalent"
  | Verdict { equivalent = false; _ } -> "not_equivalent"
  | Failed { reason; _ } -> failure_class_string reason

let succeeded r = match r.outcome with Verdict { equivalent; _ } -> equivalent | _ -> false

(* Scheduling-independent equality: timings vary run to run (and failure
   messages may embed them); the verdict itself must not.  [cached] is
   ignored too — whether a verdict came from the store depends on what ran
   before, not on what the answer is (a warm run must agree with its cold
   run verdict for verdict). *)
let same_outcome a b =
  match (a, b) with
  | Verdict va, Verdict vb ->
    va.equivalent = vb.equivalent
    && va.exactly_equal = vb.exactly_equal
    && va.strategy = vb.strategy
  | Failed { reason = ra; _ }, Failed { reason = rb; _ } -> ra = rb
  | Verdict _, Failed _ | Failed _, Verdict _ -> false

let pp_result ppf r =
  match r.outcome with
  | Verdict v ->
    Fmt.pf ppf "[%d] %s: %s (%s, t_ver = %.4fs, %d peak nodes)" r.index r.label
      (if v.equivalent then "equivalent" else "NOT equivalent")
      v.strategy v.t_check v.peak_nodes
  | Failed { reason; message } ->
    Fmt.pf ppf "[%d] %s: %s (%s)" r.index r.label (failure_class_string reason) message

(* -- qcec-result/v1 ---------------------------------------------------- *)

let schema = "qcec-result/v1"

let to_json r =
  let opt f = function None -> Json.Null | Some v -> f v in
  let verdict_fields =
    match r.outcome with
    | Verdict v ->
      [ ("equivalent", Json.Bool v.equivalent)
      ; ("exactly_equal", Json.Bool v.exactly_equal)
      ; ("strategy", Json.String v.strategy)
      ; ("t_transform", Json.Float v.t_transform)
      ; ("t_check", Json.Float v.t_check)
      ; ("transformed_qubits", Json.Int v.transformed_qubits)
      ; ("peak_nodes", Json.Int v.peak_nodes)
      ; ("cached", Json.Bool v.cached)
      ; ("error", Json.Null)
      ]
    | Failed { message; _ } -> [ ("error", Json.String message) ]
  in
  Json.Obj
    ([ ("schema", Json.String schema)
     ; ("index", Json.Int r.index)
     ; ("label", Json.String r.label)
     ; ( "files"
       , opt (fun (a, b) -> Json.List [ Json.String a; Json.String b ]) r.files_checked )
     ; ("exit", Json.String (exit_class r.outcome))
     ]
    @ verdict_fields
    @ [ ("duration_seconds", Json.Float r.duration)
      ; ("attempts", Json.Int r.attempts)
      ; ("worker", Json.Int r.worker)
      ; ("seed", opt (fun s -> Json.Int s) r.seed)
      ; ("backend", Json.String r.backend)
      ; ("metrics", Obs.Metrics.to_json r.metrics)
      ])

let of_json j =
  let ( let* ) = Result.bind in
  let field name = Json.member name j in
  let str name =
    match field name with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Fmt.str "result: missing string field %S" name)
  in
  let int name =
    match field name with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Fmt.str "result: missing int field %S" name)
  in
  let num name =
    match field name with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Fmt.str "result: missing number field %S" name)
  in
  let bool name =
    match field name with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error (Fmt.str "result: missing bool field %S" name)
  in
  let* s = str "schema" in
  let* () = if s = schema then Ok () else Error (Fmt.str "unexpected schema %S" s) in
  let* index = int "index" in
  let* label = str "label" in
  let* files_checked =
    match field "files" with
    | Some (Json.List [ Json.String a; Json.String b ]) -> Ok (Some (a, b))
    | Some Json.Null | None -> Ok None
    | _ -> Error "result: malformed \"files\""
  in
  let* exit = str "exit" in
  let* outcome =
    match exit with
    | "equivalent" | "not_equivalent" | "cached" ->
      let* equivalent = bool "equivalent" in
      let* exactly_equal = bool "exactly_equal" in
      let* strategy = str "strategy" in
      let* t_transform = num "t_transform" in
      let* t_check = num "t_check" in
      let* transformed_qubits = int "transformed_qubits" in
      let* peak_nodes = int "peak_nodes" in
      (* absent in pre-cache result files *)
      let* cached =
        match field "cached" with
        | Some (Json.Bool b) -> Ok b
        | None -> Ok (exit = "cached")
        | _ -> Error "result: malformed \"cached\""
      in
      Ok
        (Verdict
           { equivalent; exactly_equal; strategy; t_transform; t_check
           ; transformed_qubits; peak_nodes; cached })
    | other ->
      (match failure_class_of_string other with
       | None -> Error (Fmt.str "result: unknown exit class %S" other)
       | Some reason ->
         let* message = str "error" in
         Ok (Failed { reason; message }))
  in
  let* duration = num "duration_seconds" in
  let* attempts = int "attempts" in
  let* worker = int "worker" in
  let* seed =
    match field "seed" with
    | Some (Json.Int s) -> Ok (Some s)
    | Some Json.Null | None -> Ok None
    | _ -> Error "result: malformed \"seed\""
  in
  (* absent in pre-backend result files: those ran the classic package *)
  let* backend =
    match field "backend" with
    | Some (Json.String b) -> Ok b
    | None -> Ok "classic"
    | _ -> Error "result: malformed \"backend\""
  in
  let* metrics =
    match field "metrics" with
    | Some (Json.Obj kvs) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match v with
          | Json.Int i -> Ok ((k, i) :: acc)
          | _ -> Error (Fmt.str "result: non-integer metric %S" k))
        (Ok []) kvs
      |> Result.map List.rev
    | Some Json.Null | None -> Ok []
    | _ -> Error "result: malformed \"metrics\""
  in
  Ok
    { index; label; files_checked; outcome; duration; attempts; worker; seed
    ; backend; metrics }

let of_string line =
  match Json.of_string_opt line with
  | None -> Error "result: not valid JSON"
  | Some j -> of_json j
