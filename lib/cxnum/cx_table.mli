(** Tolerance-based interning of complex numbers.

    Decision-diagram canonicity requires edge weights to be comparable by
    identity: two different gate sequences computing the same amplitude must
    yield the *same* weight object even in the presence of floating-point
    drift.  This module buckets complex values on a grid of width [tol] and
    returns a canonical {!value} (carrying a unique integer id) for every
    value within [tol] of a previously interned one.

    This reproduces the role of the "complex table" in MQT's DD package,
    which the QCEC tool used by the paper builds upon. *)

type value = private { re : float; im : float; id : int }

type t

(** [create ~tol ()] makes a fresh table.  [tol] is the absolute tolerance
    below which two complex numbers are identified (default [1e-10]). *)
val create : ?tol:float -> unit -> t

val tol : t -> float

(** [lookup t z] interns [z], returning the canonical representative.  The
    canonical values [0] and [1] are pre-interned with ids [0] and [1] and
    are shared between all tables. *)
val lookup : t -> Cx.t -> value

(** Number of distinct values currently interned (including 0 and 1). *)
val size : t -> int

(** [rebuild t survivors] garbage-collects the table: every binding is
    dropped and exactly [survivors] (each passed once; the pre-interned 0
    and 1 are implicit) are re-interned under their existing ids.  Ids are
    never recycled, so values *not* in [survivors] that a caller still
    holds remain distinguishable — they only lose sharing with any later
    re-interning of the same complex number. *)
val rebuild : t -> value list -> unit

(** Canonical zero, id 0.  Shared across tables. *)
val zero : value

(** Canonical one, id 1.  Shared across tables. *)
val one : value

val is_zero : value -> bool
val is_one : value -> bool

(** [to_cx v] forgets the id. *)
val to_cx : value -> Cx.t

val pp : Format.formatter -> value -> unit
