type value = { re : float; im : float; id : int }

(* observability: interning traffic across all tables in the process *)
let m_hits = Obs.Metrics.counter "cx.table.hits"
let m_inserts = Obs.Metrics.counter "cx.table.inserts"

let zero = { re = 0.0; im = 0.0; id = 0 }
let one = { re = 1.0; im = 0.0; id = 1 }
let is_zero v = v.id = 0
let is_one v = v.id = 1
let to_cx v = Cx.make v.re v.im

(* Interning is *relative*: two values are identified when their components
   agree within [tol] of their common magnitude scale.  Edge weights in a
   decision diagram range over many orders of magnitude (a 128-qubit
   Hadamard layer contributes (1/sqrt 2)^128 ~ 5e-20 to the root weight), so
   an absolute grid would collapse everything small to zero.  Values are
   bucketed by binary exponent of their dominant component plus a
   [tol]-grid over the exponent-normalized components; lookup probes the
   neighbouring grid cells and both neighbouring exponents, so any two
   relatively-close values share a representative. *)
type t =
  { tol : float
  ; buckets : (int * int * int, value list ref) Hashtbl.t
  ; mutable next_id : int
  ; mutable count : int (* live interned values, including 0 and 1 *)
  }

(* Values this small cannot be distinguished from exact zero by any
   computation we perform; they are also well below the smallest legitimate
   amplitude of a 400-qubit state. *)
let hard_zero = 1e-250

let magnitude (z : Cx.t) = Float.max (Float.abs z.Cx.re) (Float.abs z.Cx.im)

let exponent_of m =
  let _, e = Float.frexp m in
  e

let key_at t (z : Cx.t) e =
  let s = Float.ldexp 1.0 e in
  ( e
  , int_of_float (Float.round (z.Cx.re /. s /. t.tol))
  , int_of_float (Float.round (z.Cx.im /. s /. t.tol)) )

let create ?(tol = 1e-10) () =
  { tol; buckets = Hashtbl.create 4096; next_id = 2; count = 2 }

let tol t = t.tol

(* Relative comparison at the scale of the larger operand. *)
let matches t (z : Cx.t) (v : value) =
  let scale = Float.max (magnitude z) (Float.max (Float.abs v.re) (Float.abs v.im)) in
  Float.abs (v.re -. z.Cx.re) <= t.tol *. scale
  && Float.abs (v.im -. z.Cx.im) <= t.tol *. scale

let find_in_bucket t key z =
  match Hashtbl.find_opt t.buckets key with
  | None -> None
  | Some cell -> List.find_opt (matches t z) !cell

let insert t key v =
  t.count <- t.count + 1;
  match Hashtbl.find_opt t.buckets key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add t.buckets key (ref [ v ])

let lookup t (z : Cx.t) =
  let m = magnitude z in
  if m < hard_zero then begin
    Obs.Metrics.incr m_hits;
    zero
  end
  else if z.Cx.re = 1.0 && z.Cx.im = 0.0 then begin
    Obs.Metrics.incr m_hits;
    one
  end
  else begin
    let e = exponent_of m in
    let probes =
      List.concat_map
        (fun de ->
          let e' = e + de in
          let ke, kre, kim = key_at t z e' in
          List.concat_map
            (fun dre ->
              List.map (fun dim -> (ke, kre + dre, kim + dim)) [ 0; 1; -1 ])
            [ 0; 1; -1 ])
        [ 0; 1; -1 ]
    in
    let rec probe = function
      | [] ->
        if matches t z one then begin
          Obs.Metrics.incr m_hits;
          one
        end
        else begin
          let v = { re = z.Cx.re; im = z.Cx.im; id = t.next_id } in
          t.next_id <- t.next_id + 1;
          insert t (key_at t z e) v;
          Obs.Metrics.incr m_inserts;
          v
        end
      | key :: rest ->
        (match find_in_bucket t key z with
         | Some v ->
           Obs.Metrics.incr m_hits;
           v
         | None -> probe rest)
    in
    probe probes
  end

let size t = t.count

(* Garbage collection: re-seed the table with exactly the given survivors.
   Ids are *not* recycled — [next_id] keeps rising monotonically — so a
   stale value held by a caller can never collide with a freshly interned
   one; it merely loses sharing with the new representative of the same
   complex number.  Survivors with ids 0/1 (the pre-interned constants,
   which live outside the buckets) are skipped; the caller is expected to
   pass each survivor once. *)
let rebuild t survivors =
  Hashtbl.reset t.buckets;
  t.count <- 2;
  List.iter
    (fun (v : value) ->
      if v.id > 1 then begin
        let z = to_cx v in
        insert t (key_at t z (exponent_of (magnitude z))) v
      end)
    survivors

let pp ppf v = Cx.pp ppf (to_cx v)
