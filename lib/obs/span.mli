(** Nestable wall-clock timing spans.

    A span names a phase of work; spans opened while another is running
    nest under it, and all completions are aggregated per slash-separated
    path ([verify.functional/check], [extract/walk], ...).  Timing uses the
    monotonic {!Clock}, so durations are non-negative by construction.

    Spans obey the {!Metrics} global switch: when collection is disabled,
    {!with_} runs its thunk with no bookkeeping at all.

    Nesting state is per-process (not per-domain); open spans from multiple
    domains concurrently and the attribution becomes approximate — the
    same trade-off the counters make. *)

(** [with_ name f] runs [f ()] inside a span called [name], nested under
    the currently open span (if any).  The span is closed — and its
    duration recorded — even if [f] raises. *)
val with_ : string -> (unit -> 'a) -> 'a

type entry =
  { path : string  (** slash-joined nesting path *)
  ; count : int  (** completions recorded under this path *)
  ; seconds : float  (** total wall-clock time across completions *)
  }

(** All recorded aggregates, sorted by path. *)
val report : unit -> entry list

(** Drop all recorded aggregates and any stale nesting state. *)
val reset : unit -> unit

(** [to_json ()] is the report as a JSON array of
    [{"path": ..., "count": ..., "seconds": ...}] objects. *)
val to_json : unit -> Json.t
