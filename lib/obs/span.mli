(** Nestable wall-clock timing spans.

    A span names a phase of work; spans opened while another is running
    nest under it, and all completions are aggregated per slash-separated
    path ([verify.functional/check], [extract/walk], ...).  Timing uses the
    monotonic {!Clock}, so durations are non-negative by construction.

    Spans obey the {!Metrics} global switch: when collection is disabled,
    {!with_} runs its thunk with no bookkeeping at all.

    Nesting state and aggregates are {e domain-local}: spans opened by
    parallel workers nest within their own domain and never interleave
    with another domain's stack.  Harvest a worker's {!report} at join
    time and fold it into the calling domain with {!absorb}. *)

(** [with_ name f] runs [f ()] inside a span called [name], nested under
    the currently open span (if any).  The span is closed — and its
    duration recorded — even if [f] raises. *)
val with_ : string -> (unit -> 'a) -> 'a

type entry =
  { path : string  (** slash-joined nesting path *)
  ; count : int  (** completions recorded under this path *)
  ; seconds : float  (** total wall-clock time across completions *)
  }

(** The calling domain's recorded aggregates, sorted by path. *)
val report : unit -> entry list

(** [absorb entries] adds another domain's report into the calling
    domain's aggregates (counts and durations accumulate). *)
val absorb : entry list -> unit

(** Drop the calling domain's aggregates and any stale nesting state. *)
val reset : unit -> unit

(** [entries_to_json entries] serializes a report (e.g. one harvested from
    a worker domain). *)
val entries_to_json : entry list -> Json.t

(** [to_json ()] is [entries_to_json (report ())]. *)
val to_json : unit -> Json.t
