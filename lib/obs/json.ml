(* The JSON value type, printer and parser live in the dependency-free
   [Qcec_json] library so that layers with no observability needs (the
   HTTP server's request parsing, the manifest compiler) share one
   implementation.  [Obs.Json] re-exports it unchanged: every historical
   [Obs.Json.*] reference keeps compiling against the same type. *)

include Qcec_json
