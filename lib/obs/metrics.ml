type counter =
  { c_name : string
  ; mutable c_value : int
  }

type gauge =
  { g_name : string
  ; mutable g_peak : int
  }

type entry =
  | Counter of counter
  | Gauge of gauge

(* The global-off fast path: every hot-path operation checks this single
   flag first, so disabled instrumentation costs one load + branch. *)
let on = ref false
let enabled () = !on
let set_enabled b = on := b

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some (Gauge _) -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is a gauge")
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add registry name (Counter c);
    c

let incr c = if !on then c.c_value <- c.c_value + 1
let add c n = if !on then c.c_value <- c.c_value + n
let value c = c.c_value

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some (Counter _) -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " is a counter")
  | None ->
    let g = { g_name = name; g_peak = 0 } in
    Hashtbl.add registry name (Gauge g);
    g

let observe g v = if !on && v > g.g_peak then g.g_peak <- v
let peak g = g.g_peak

type snapshot = (string * int) list

let snapshot () =
  Hashtbl.fold
    (fun name entry acc ->
      let v = match entry with Counter c -> c.c_value | Gauge g -> g.g_peak in
      (name, v) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_gauge name =
  match Hashtbl.find_opt registry name with Some (Gauge _) -> true | _ -> false

let diff ~before ~after =
  List.map
    (fun (name, v) ->
      if is_gauge name then (name, v)
      else begin
        let b = match List.assoc_opt name before with Some b -> b | None -> 0 in
        (name, v - b)
      end)
    after

let find s name = match List.assoc_opt name s with Some v -> v | None -> 0

let reset () =
  Hashtbl.iter
    (fun _ entry ->
      match entry with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_peak <- 0)
    registry

let to_json s = Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) s)

(* silence unused-field warnings: names are carried for debugging *)
let _ = fun (c : counter) (g : gauge) -> (c.c_name, g.g_name)
