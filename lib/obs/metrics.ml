(* Domain-local metric registries.  Metric *names* are registered globally
   (under a mutex), but every domain holds its own value slots in
   domain-local storage: increments from parallel workers never race, and a
   worker's readings can be harvested with [snapshot] at join time and
   folded into another domain's registry with [absorb] (or combined
   off-registry with [merge]). *)

type kind =
  | Counter
  | Gauge

(* A metric handle is just its registration record; values live in the
   per-domain slot arrays below. *)
type meta =
  { name : string
  ; ix : int
  ; kind : kind
  }

type counter = meta
type gauge = meta

(* The global-off fast path: every hot-path operation checks this single
   flag first, so disabled instrumentation costs one load + branch.  An
   [Atomic] so the flag is well-defined when read from worker domains (on
   x86/arm the load compiles to a plain move). *)
let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

let lock = Mutex.create ()
let metas : (string, meta) Hashtbl.t = Hashtbl.create 64
let slot_count = ref 0

(* Per-domain value slots, grown on demand to the global slot count.  A
   fresh domain starts from all zeros: it observes only its own activity. *)
let slots_key : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let slots_for ix =
  let r = Domain.DLS.get slots_key in
  let a = !r in
  if ix < Array.length a then a
  else begin
    let target = Mutex.protect lock (fun () -> !slot_count) in
    let a' = Array.make (max target (ix + 1)) 0 in
    Array.blit a 0 a' 0 (Array.length a);
    r := a';
    a'
  end

let register kind name =
  Mutex.protect lock (fun () ->
    match Hashtbl.find_opt metas name with
    | Some m ->
      if m.kind <> kind then
        invalid_arg
          ("Obs.Metrics: " ^ name ^ " is already registered as a "
          ^ (match m.kind with Counter -> "counter" | Gauge -> "gauge"));
      m
    | None ->
      let m = { name; ix = !slot_count; kind } in
      incr slot_count;
      Hashtbl.add metas name m;
      m)

let counter name = register Counter name
let gauge name = register Gauge name

let incr c =
  if Atomic.get on then begin
    let a = slots_for c.ix in
    a.(c.ix) <- a.(c.ix) + 1
  end

let add c n =
  if Atomic.get on then begin
    let a = slots_for c.ix in
    a.(c.ix) <- a.(c.ix) + n
  end

let value c = (slots_for c.ix).(c.ix)

let observe g v =
  if Atomic.get on then begin
    let a = slots_for g.ix in
    if v > a.(g.ix) then a.(g.ix) <- v
  end

let peak g = (slots_for g.ix).(g.ix)

type snapshot = (string * int) list

let all_metas () =
  Mutex.protect lock (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) metas [])

let snapshot () =
  List.map (fun m -> (m.name, (slots_for m.ix).(m.ix))) (all_metas ())
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let kind_of name =
  Mutex.protect lock (fun () ->
    Option.map (fun m -> m.kind) (Hashtbl.find_opt metas name))

let is_gauge name = kind_of name = Some Gauge

let diff ~before ~after =
  List.map
    (fun (name, v) ->
      if is_gauge name then (name, v)
      else begin
        let b = match List.assoc_opt name before with Some b -> b | None -> 0 in
        (name, v - b)
      end)
    after

let merge snaps =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt tbl name with
          | None -> Hashtbl.add tbl name v
          | Some prev ->
            Hashtbl.replace tbl name (if is_gauge name then max prev v else prev + v))
        snap)
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let absorb snap =
  List.iter
    (fun (name, v) ->
      match Mutex.protect lock (fun () -> Hashtbl.find_opt metas name) with
      | None -> () (* a name no live registry knows; nothing to fold into *)
      | Some m ->
        let a = slots_for m.ix in
        a.(m.ix) <- (match m.kind with Counter -> a.(m.ix) + v | Gauge -> max a.(m.ix) v))
    snap

let find s name = match List.assoc_opt name s with Some v -> v | None -> 0

let reset () =
  let a = !(Domain.DLS.get slots_key) in
  Array.fill a 0 (Array.length a) 0

let to_json s = Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) s)
