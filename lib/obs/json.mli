(** Minimal, dependency-free JSON: just enough to serialize metric
    snapshots, span reports and benchmark rows into a stable schema, plus a
    strict parser so tests (and CI) can round-trip what we emit.

    Serialization notes: [Float] values that are not finite have no JSON
    representation and are emitted as [null]; finite floats are printed with
    17 significant digits, which round-trips every IEEE double. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [to_string ?pretty v] serializes [v]; [pretty] (default [false]) adds
    newlines and two-space indentation. *)
val to_string : ?pretty:bool -> t -> string

(** [to_file path v] writes [to_string ~pretty:true v] plus a trailing
    newline to [path]. *)
val to_file : string -> t -> unit

(** [of_string s] parses a single JSON value, rejecting trailing garbage.
    Raises {!Parse_error}.  Numbers without [.], [e] or [E] that fit in an
    OCaml [int] parse as [Int]; all others as [Float]. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** [member key v] is the value bound to [key] if [v] is an object
    containing it. *)
val member : string -> t -> t option

(** [equal a b] is structural equality, with [Int]/[Float] compared
    numerically (so values survive a serialize/parse round trip even when
    a float prints without a decimal point). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
