(** Re-export of {!Qcec_json}, the shared dependency-free JSON value type,
    serializer and strict parser (see [lib/json]).  Kept under [Obs] so the
    metric/span/report schemas and their historical [Obs.Json] consumers
    need no change; new code that only needs JSON should depend on
    [qcec_json] directly. *)

include module type of struct
  include Qcec_json
end
