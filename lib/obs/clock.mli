(** Monotonic wall clock.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] (via the bechamel stub), so
    readings never go backwards under NTP slew or manual clock adjustment —
    the property every reported duration in this repository relies on.  The
    epoch is arbitrary; only differences are meaningful. *)

(** [now_ns ()] is the current monotonic reading in nanoseconds. *)
val now_ns : unit -> int64

(** [now ()] is the same reading in seconds. *)
val now : unit -> float

(** [elapsed_s ~since] is the (non-negative) seconds elapsed since the
    [now_ns] reading [since]. *)
val elapsed_s : since:int64 -> float
