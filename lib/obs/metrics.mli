(** Observability counters for the DD substrate, with domain-local value
    registries.

    Metric {e names} are registered process-wide (typically at module
    initialization of the instrumented layer) and may be used from any
    domain, but every domain accumulates into its {e own} value slots: a
    counter incremented inside a worker domain is visible in that domain's
    {!snapshot} only.  Parallel drivers (the batch engine's worker pool)
    harvest each worker's snapshot at join time and either fold it into the
    calling domain's registry with {!absorb} or combine the readings
    off-registry with {!merge}.  Increments therefore never race across
    domains and no counts are dropped.

    Collection is globally disabled by default: a disabled
    {!incr}/{!add}/{!observe} costs exactly one load and one branch, so
    instrumentation can live inside the compute-cache and unique-table
    lookups without a measurable tax on uninstrumented runs. *)

(** {1 Global switch} *)

val enabled : unit -> bool

(** [set_enabled b] turns collection on or off (process-wide; spans
    ({!Span}) obey the same switch).  Flip it before spawning worker
    domains so they all observe the same setting. *)
val set_enabled : bool -> unit

(** {1 Counters (monotonic while enabled)} *)

type counter

(** [counter name] registers a counter under [name], or returns the
    existing one.  Dotted names ([dd.cache.mv.hits]) form the metric
    namespace documented in [docs/OBSERVABILITY.md].  Safe to call from
    any domain. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** [value c] is the calling domain's reading of [c]. *)
val value : counter -> int

(** {1 Peak gauges} *)

type gauge

val gauge : string -> gauge

(** [observe g v] raises the recorded peak to [v] if larger. *)
val observe : gauge -> int -> unit

val peak : gauge -> int

(** {1 Snapshots} *)

(** A point-in-time reading of every registered metric {e in the calling
    domain}, sorted by name. *)
type snapshot = (string * int) list

val snapshot : unit -> snapshot

(** [diff ~before ~after] is the reading attributable to the interval:
    counters are subtracted, peak gauges keep their [after] value (a peak
    cannot be meaningfully differenced). *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** [merge snaps] combines per-domain snapshots into one reading: counters
    are summed, peak gauges maxed.  Use it to aggregate worker registries
    collected at join. *)
val merge : snapshot list -> snapshot

(** [absorb snap] folds another domain's snapshot into the calling
    domain's registry (counters add, gauges max), so process-level reports
    taken on the main domain include work done by joined workers.  Names
    not registered in this process are ignored. *)
val absorb : snapshot -> unit

(** [find s name] is the value of [name] in [s], or [0]. *)
val find : snapshot -> string -> int

(** Zero every counter and gauge of the calling domain (registered names
    are kept). *)
val reset : unit -> unit

(** [to_json s] is the snapshot as a JSON object, one numeric field per
    metric. *)
val to_json : snapshot -> Json.t
