(** Process-wide observability counters for the DD substrate.

    Counters and peak gauges are registered once (typically at module
    initialization of the instrumented layer) and incremented from hot
    paths.  Collection is globally disabled by default: a disabled
    {!incr}/{!add}/{!observe} costs exactly one load and one branch, so
    instrumentation can live inside the compute-cache and unique-table
    lookups without a measurable tax on uninstrumented runs.

    Concurrency: increments are plain (non-atomic) stores.  Registration is
    expected to happen before any domains are spawned; increments from
    parallel extraction domains may race and drop counts, which is an
    accepted trade-off for a zero-cost hot path — the counters are
    diagnostics, not accounting. *)

(** {1 Global switch} *)

val enabled : unit -> bool

(** [set_enabled b] turns collection on or off; spans ({!Span}) obey the
    same switch. *)
val set_enabled : bool -> unit

(** {1 Counters (monotonic while enabled)} *)

type counter

(** [counter name] registers a counter under [name], or returns the
    existing one.  Dotted names ([dd.cache.mv.hits]) form the metric
    namespace documented in [docs/OBSERVABILITY.md]. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Peak gauges} *)

type gauge

val gauge : string -> gauge

(** [observe g v] raises the recorded peak to [v] if larger. *)
val observe : gauge -> int -> unit

val peak : gauge -> int

(** {1 Snapshots} *)

(** A point-in-time reading of every registered metric, sorted by name. *)
type snapshot = (string * int) list

val snapshot : unit -> snapshot

(** [diff ~before ~after] is the reading attributable to the interval:
    counters are subtracted, peak gauges keep their [after] value (a peak
    cannot be meaningfully differenced). *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** [find s name] is the value of [name] in [s], or [0]. *)
val find : snapshot -> string -> int

(** Zero every counter and gauge (the registry itself is kept). *)
val reset : unit -> unit

(** [to_json s] is the snapshot as a JSON object, one numeric field per
    metric. *)
val to_json : snapshot -> Json.t
