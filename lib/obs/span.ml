type agg =
  { mutable count : int
  ; mutable total_ns : int64
  }

(* Aggregates and the open-span stack are domain-local: spans opened by
   parallel workers nest and aggregate within their own domain, and the
   pool folds worker reports back with [absorb] at join time. *)
type state =
  { table : (string, agg) Hashtbl.t
  ; mutable stack : string list (* open span paths, innermost first *)
  }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { table = Hashtbl.create 32; stack = [] })

let record st path dt =
  let a =
    match Hashtbl.find_opt st.table path with
    | Some a -> a
    | None ->
      let a = { count = 0; total_ns = 0L } in
      Hashtbl.add st.table path a;
      a
  in
  a.count <- a.count + 1;
  a.total_ns <- Int64.add a.total_ns dt

let with_ name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let st = Domain.DLS.get state_key in
    let path =
      match st.stack with
      | [] -> name
      | parent :: _ -> parent ^ "/" ^ name
    in
    st.stack <- path :: st.stack;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Int64.sub (Clock.now_ns ()) t0 in
        (match st.stack with
         | p :: rest when String.equal p path -> st.stack <- rest
         | _ -> () (* a nested span leaked; keep going rather than corrupt *));
        record st path dt)
      f
  end

type entry =
  { path : string
  ; count : int
  ; seconds : float
  }

let report () =
  let st = Domain.DLS.get state_key in
  Hashtbl.fold
    (fun path (a : agg) acc ->
      { path; count = a.count; seconds = Int64.to_float a.total_ns *. 1e-9 } :: acc)
    st.table []
  |> List.sort (fun a b -> String.compare a.path b.path)

let absorb entries =
  let st = Domain.DLS.get state_key in
  List.iter
    (fun e ->
      let a =
        match Hashtbl.find_opt st.table e.path with
        | Some a -> a
        | None ->
          let a = { count = 0; total_ns = 0L } in
          Hashtbl.add st.table e.path a;
          a
      in
      a.count <- a.count + e.count;
      a.total_ns <- Int64.add a.total_ns (Int64.of_float (e.seconds *. 1e9)))
    entries

let reset () =
  let st = Domain.DLS.get state_key in
  Hashtbl.reset st.table;
  st.stack <- []

let entries_to_json entries =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [ ("path", Json.String e.path)
           ; ("count", Json.Int e.count)
           ; ("seconds", Json.Float e.seconds)
           ])
       entries)

let to_json () = entries_to_json (report ())
