type agg =
  { mutable count : int
  ; mutable total_ns : int64
  }

let table : (string, agg) Hashtbl.t = Hashtbl.create 32

(* stack of open span paths, innermost first *)
let stack : string list ref = ref []

let record path dt =
  let a =
    match Hashtbl.find_opt table path with
    | Some a -> a
    | None ->
      let a = { count = 0; total_ns = 0L } in
      Hashtbl.add table path a;
      a
  in
  a.count <- a.count + 1;
  a.total_ns <- Int64.add a.total_ns dt

let with_ name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let path =
      match !stack with
      | [] -> name
      | parent :: _ -> parent ^ "/" ^ name
    in
    stack := path :: !stack;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Int64.sub (Clock.now_ns ()) t0 in
        (match !stack with
         | p :: rest when String.equal p path -> stack := rest
         | _ -> () (* a nested span leaked; keep going rather than corrupt *));
        record path dt)
      f
  end

type entry =
  { path : string
  ; count : int
  ; seconds : float
  }

let report () =
  Hashtbl.fold
    (fun path (a : agg) acc ->
      { path; count = a.count; seconds = Int64.to_float a.total_ns *. 1e-9 } :: acc)
    table []
  |> List.sort (fun a b -> String.compare a.path b.path)

let reset () =
  Hashtbl.reset table;
  stack := []

let to_json () =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [ ("path", Json.String e.path)
           ; ("count", Json.Int e.count)
           ; ("seconds", Json.Float e.seconds)
           ])
       (report ()))
