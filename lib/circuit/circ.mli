(** Quantum circuits: a named sequence of operations over [num_qubits]
    qubits and [num_cbits] classical bits. *)

type t =
  { name : string
  ; num_qubits : int
  ; num_cbits : int
  ; ops : Op.t list
  }

(** [make ~name ~qubits ~cbits ops] validates every operation and raises
    [Invalid_argument] with a descriptive message on the first failure. *)
val make : name:string -> qubits:int -> cbits:int -> Op.t list -> t

(** [make_unchecked] skips per-operation validation.  Intended for feeding
    deliberately malformed circuits to the static analyzer ({!Analysis} in
    [lib/analysis]), whose structural rules re-detect what {!make} rejects;
    simulators and checkers assume validated circuits. *)
val make_unchecked : name:string -> qubits:int -> cbits:int -> Op.t list -> t

(** {1 Queries} *)

(** [gate_count c] counts unitary operations, looking through classical
    conditions (a conditioned gate counts as one gate); measurements, resets
    and barriers are counted separately by {!op_counts}. *)
val gate_count : t -> int

type op_counts =
  { gates : int
  ; measurements : int
  ; resets : int
  ; conditioned : int  (** subset of [gates] that carries a condition *)
  ; barriers : int
  }

val op_counts : t -> op_counts

(** [total_ops c] is the length of [c.ops]. *)
val total_ops : t -> int

(** A circuit is dynamic when it contains a reset, a classically-controlled
    operation, or a measurement followed by any further operation on the
    measured qubit or using its outcome.  Purely-final measurements do not
    make a circuit dynamic. *)
val is_dynamic : t -> bool

(** [measurements c] lists the (qubit, cbit) pairs in program order. *)
val measurements : t -> (int * int) list

(** [digest c] is a hex content digest of the canonical op stream:
    register sizes plus every non-barrier operation with gate parameters
    printed at full precision.  It is insensitive to anything that cannot
    change the implemented channel — the circuit name (and source-level
    metadata such as comments or line numbers, which never reach {!t}),
    barriers, control list order and swap operand order — while any
    single-gate edit changes it.

    With [perm_invariant] (default [false]) qubits are additionally
    relabeled by first use in structural order, so [digest ~perm_invariant:true
    (remap c ~perm)] equals [digest ~perm_invariant:true c] for every
    permutation.  Verdict caching uses the {e plain} digest: equivalence
    of a pair is not invariant under permuting one side alone. *)
val digest : ?perm_invariant:bool -> t -> string

(** {1 Transformations} *)

(** [strip_measurements c] removes measurements and barriers, for functional
    (unitary) comparison. *)
val strip_measurements : t -> t

(** [inverse c] reverses and adjoints a unitary circuit.  Raises
    [Invalid_argument] if [c] contains non-unitary operations (measurements
    are not allowed either; strip them first). *)
val inverse : t -> t

(** [remap c ~perm] renames qubit [q] to [perm.(q)]; [perm] must be a
    permutation of [0 .. num_qubits - 1]. *)
val remap : t -> perm:int array -> t

(** [append a b] concatenates two circuits over the same registers. *)
val append : t -> t -> t

(** [with_name c name] renames the circuit. *)
val with_name : t -> string -> t

val pp : Format.formatter -> t -> unit
