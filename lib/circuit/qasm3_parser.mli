(** Recursive-descent parser for an OpenQASM 3 subset covering the dynamic
    circuits this library is about.

    Supported statements: the [OPENQASM 3.x;] header, [include] (ignored),
    [qubit[n] name;] / [qubit name;] and [bit[n] name;] / [bit name;]
    declarations (flattened in declaration order), the stdgates
    applications the OpenQASM 2 parser accepts, [gate] definitions,
    measurement assignments [cbit = measure qubit;], [reset], [barrier],
    and [if (bit == int) stmt] / [if (bit) stmt] where [stmt] is a single
    statement or a brace-enclosed block (each statement in the block
    receives the condition).  Gate parameters are the same expressions as
    in the OpenQASM 2 parser. *)

(** [parse ?name src] parses a full program.
    @raise Qasm_parser.Parse_error on malformed input (the error type is
    shared with the OpenQASM 2 parser). *)
val parse : ?name:string -> string -> Circ.t

val parse_file : string -> Circ.t

(** [parse_located ?name src] additionally returns the 1-based source line
    of every operation, index-aligned with the op list (the same contract
    as {!Qasm_parser.parse_located}); statements inside an [if] block keep
    their own lines. *)
val parse_located : ?name:string -> string -> Circ.t * int array

(** [parse_any src] dispatches on the [OPENQASM] version header: 3.x goes
    to this parser, anything else to {!Qasm_parser.parse}. *)
val parse_any : ?name:string -> string -> Circ.t

val parse_any_file : string -> Circ.t

val parse_any_located : ?name:string -> string -> Circ.t * int array

val parse_any_file_located : string -> Circ.t * int array
