type control =
  { cq : int
  ; pos : bool
  }

type cond =
  { bits : int list
  ; value : int
  }

type t =
  | Apply of
      { gate : Gates.t
      ; controls : control list
      ; target : int
      }
  | Swap of int * int
  | Measure of
      { qubit : int
      ; cbit : int
      }
  | Reset of int
  | Cond of
      { cond : cond
      ; op : t
      }
  | Barrier of int list

let apply ?(controls = []) gate target = Apply { gate; controls; target }

let controlled gate ~control ~target =
  Apply { gate; controls = [ { cq = control; pos = true } ]; target }

let if_bit ~bit ~value op =
  Cond { cond = { bits = [ bit ]; value = (if value then 1 else 0) }; op }

let rec qubits = function
  | Apply { controls; target; _ } -> target :: List.map (fun c -> c.cq) controls
  | Swap (a, b) -> [ a; b ]
  | Measure { qubit; _ } -> [ qubit ]
  | Reset q -> [ q ]
  | Cond { op; _ } -> qubits op
  | Barrier qs -> qs

let rec cbits_read = function
  | Apply _ | Swap _ | Measure _ | Reset _ | Barrier _ -> []
  | Cond { cond; op } -> cond.bits @ cbits_read op

let rec cbits_written = function
  | Measure { cbit; _ } -> [ cbit ]
  (* a classically-controlled measurement still writes its cbit *)
  | Cond { op; _ } -> cbits_written op
  | Apply _ | Swap _ | Reset _ | Barrier _ -> []

let rec target_qubits = function
  | Apply { target; _ } -> [ target ]
  | Swap (a, b) -> [ a; b ]
  | Measure { qubit; _ } -> [ qubit ]
  | Reset q -> [ q ]
  | Cond { op; _ } -> target_qubits op
  | Barrier _ -> []

let rec control_qubits = function
  | Apply { controls; _ } -> List.map (fun c -> c.cq) controls
  | Cond { op; _ } -> control_qubits op
  | Swap _ | Measure _ | Reset _ | Barrier _ -> []

let rec base = function Cond { op; _ } -> base op | op -> op

let is_unitary = function
  | Apply _ | Swap _ -> true
  | Measure _ | Reset _ | Cond _ | Barrier _ -> false

let is_dynamic_primitive = function
  | Measure _ | Reset _ | Cond _ -> true
  | Apply _ | Swap _ | Barrier _ -> false

let rec map_qubits f = function
  | Apply { gate; controls; target } ->
    Apply
      { gate
      ; controls = List.map (fun c -> { c with cq = f c.cq }) controls
      ; target = f target
      }
  | Swap (a, b) -> Swap (f a, f b)
  | Measure { qubit; cbit } -> Measure { qubit = f qubit; cbit }
  | Reset q -> Reset (f q)
  | Cond { cond; op } -> Cond { cond; op = map_qubits f op }
  | Barrier qs -> Barrier (List.map f qs)

let rec map_cbits f = function
  | (Apply _ | Swap _ | Reset _ | Barrier _) as op -> op
  | Measure { qubit; cbit } -> Measure { qubit; cbit = f cbit }
  | Cond { cond; op } ->
    Cond { cond = { cond with bits = List.map f cond.bits }; op = map_cbits f op }

let adjoint = function
  | Apply { gate; controls; target } ->
    Apply { gate = Gates.adjoint gate; controls; target }
  | Swap (a, b) -> Swap (a, b)
  | (Measure _ | Reset _ | Cond _ | Barrier _) as op ->
    invalid_arg
      (Fmt.str "Op.adjoint: non-unitary operation %s"
         (match op with
          | Measure _ -> "measure"
          | Reset _ -> "reset"
          | Cond _ -> "classically-controlled"
          | _ -> "barrier"))

let rec validate ~num_qubits ~num_cbits op =
  let in_q q = 0 <= q && q < num_qubits in
  let in_c c = 0 <= c && c < num_cbits in
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  match op with
  | Apply { controls; target; _ } ->
    if not (in_q target) then err "target qubit %d out of range" target
    else begin
      let cqs = List.map (fun c -> c.cq) controls in
      if List.exists (fun q -> not (in_q q)) cqs then err "control qubit out of range"
      else if List.mem target cqs then err "control equals target %d" target
      else if List.length (List.sort_uniq compare cqs) <> List.length cqs then
        err "duplicate controls"
      else Ok ()
    end
  | Swap (a, b) ->
    if not (in_q a && in_q b) then err "swap qubit out of range"
    else if a = b then err "swap of qubit %d with itself" a
    else Ok ()
  | Measure { qubit; cbit } ->
    if not (in_q qubit) then err "measured qubit %d out of range" qubit
    else if not (in_c cbit) then err "classical bit %d out of range" cbit
    else Ok ()
  | Reset q -> if in_q q then Ok () else err "reset qubit %d out of range" q
  | Cond { cond; op } ->
    if List.exists (fun c -> not (in_c c)) cond.bits then
      err "condition bit out of range"
    else if cond.bits = [] then err "empty condition"
    else if cond.value < 0 || cond.value >= 1 lsl List.length cond.bits then
      err "condition value %d out of range" cond.value
    else if not (is_unitary op) then err "condition on a non-unitary operation"
    else validate ~num_qubits ~num_cbits op
  | Barrier qs ->
    if List.for_all in_q qs then Ok () else err "barrier qubit out of range"

let rec pp ppf = function
  | Apply { gate; controls = []; target } ->
    Fmt.pf ppf "%a q[%d]" Gates.pp gate target
  | Apply { gate; controls; target } ->
    let pp_ctrl ppf c = Fmt.pf ppf "%s%d" (if c.pos then "" else "!") c.cq in
    Fmt.pf ppf "c%a(%a) q[%d]" (Fmt.list ~sep:Fmt.comma pp_ctrl) controls Gates.pp
      gate target
  | Swap (a, b) -> Fmt.pf ppf "swap q[%d], q[%d]" a b
  | Measure { qubit; cbit } -> Fmt.pf ppf "measure q[%d] -> c[%d]" qubit cbit
  | Reset q -> Fmt.pf ppf "reset q[%d]" q
  | Cond { cond; op } ->
    Fmt.pf ppf "if (c%a == %d) %a"
      Fmt.(brackets (list ~sep:comma int))
      cond.bits cond.value pp op
  | Barrier qs -> Fmt.pf ppf "barrier %a" Fmt.(list ~sep:comma int) qs
