open Qasm_lexer

exception Parse_error of string * int

type register =
  { base : int  (** index of the register's bit 0 in the flat space *)
  ; size : int
  }

type body_stmt =
  { call_name : string
  ; call_args : ((string * float) list -> float) list
  ; call_operands : string list
  }

and gatedef =
  { formals : string list
  ; qargs : string list
  ; body : body_stmt list
  }

type state =
  { mutable tokens : (token * int) list
  ; qregs : (string, register) Hashtbl.t
  ; cregs : (string, register) Hashtbl.t
  ; defs : (string, gatedef) Hashtbl.t
  ; mutable num_qubits : int
  ; mutable num_cbits : int
  ; mutable rev_ops : Op.t list
  ; mutable rev_lines : int list  (** source line of each emitted op, parallel to [rev_ops] *)
  ; mutable last_line : int  (** line of the last consumed token, for EOF errors *)
  }

(* the 1-based source line of the next token; at EOF, of the last one *)
let line st = match st.tokens with (_, l) :: _ -> l | [] -> st.last_line

let fail st msg = raise (Parse_error (msg, line st))

let peek st = match st.tokens with (t, _) :: _ -> t | [] -> EOF

let advance st =
  match st.tokens with
  | (_, l) :: rest ->
    st.last_line <- l;
    st.tokens <- rest
  | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else fail st (Fmt.str "expected %a, found %a" pp_token tok pp_token (peek st))

let expect_ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> fail st (Fmt.str "expected identifier, found %a" pp_token t)

let expect_nat st =
  match peek st with
  | NUMBER f when Float.is_integer f && f >= 0.0 ->
    advance st;
    int_of_float f
  | t -> fail st (Fmt.str "expected integer, found %a" pp_token t)

(* Expressions: expr := term (('+'|'-') term)*,
   term := factor (('*'|'/') factor)*, factor := ['-'] atom,
   atom := number | pi | identifier | '(' expr ')'.
   Parsed into closures over a parameter environment so that gate-definition
   bodies can reference their formal parameters; top-level expressions are
   evaluated against the empty environment. *)
type expr = (string * float) list -> float

let rec parse_expr st : expr =
  let lhs = parse_term st in
  let rec loop acc =
    match peek st with
    | PLUS ->
      advance st;
      let rhs = parse_term st in
      loop (fun env -> acc env +. rhs env)
    | MINUS ->
      advance st;
      let rhs = parse_term st in
      loop (fun env -> acc env -. rhs env)
    | _ -> acc
  in
  loop lhs

and parse_term st : expr =
  let lhs = parse_factor st in
  let rec loop acc =
    match peek st with
    | STAR ->
      advance st;
      let rhs = parse_factor st in
      loop (fun env -> acc env *. rhs env)
    | SLASH ->
      advance st;
      let rhs = parse_factor st in
      loop (fun env -> acc env /. rhs env)
    | _ -> acc
  in
  loop lhs

and parse_factor st : expr =
  match peek st with
  | MINUS ->
    advance st;
    let inner = parse_factor st in
    fun env -> -.inner env
  | _ -> parse_atom st

and parse_atom st : expr =
  match peek st with
  | NUMBER f ->
    advance st;
    fun _ -> f
  | IDENT "pi" ->
    advance st;
    fun _ -> Float.pi
  | IDENT name ->
    let at = line st in
    advance st;
    fun env ->
      (match List.assoc_opt name env with
       | Some v -> v
       | None -> raise (Parse_error (Fmt.str "unbound parameter %s" name, at)))
  | LPAREN ->
    advance st;
    let v = parse_expr st in
    expect st RPAREN;
    v
  | t -> fail st (Fmt.str "expected expression, found %a" pp_token t)

let parse_arg_exprs st =
  match peek st with
  | LPAREN ->
    advance st;
    let rec loop acc =
      let v = parse_expr st in
      match peek st with
      | COMMA ->
        advance st;
        loop (v :: acc)
      | _ ->
        expect st RPAREN;
        List.rev (v :: acc)
    in
    loop []
  | _ -> []

let parse_args st = List.map (fun e -> e []) (parse_arg_exprs st)

(* A qubit operand [name[i]]; bare register names (broadcast) are only
   accepted for registers of size 1. *)
let parse_qubit st =
  let name = expect_ident st in
  let reg =
    match Hashtbl.find_opt st.qregs name with
    | Some r -> r
    | None -> fail st (Fmt.str "unknown quantum register %s" name)
  in
  match peek st with
  | LBRACKET ->
    advance st;
    let idx = expect_nat st in
    expect st RBRACKET;
    if idx >= reg.size then fail st (Fmt.str "index %d out of range for %s" idx name)
    else reg.base + idx
  | _ ->
    if reg.size = 1 then reg.base
    else fail st (Fmt.str "register %s used without index" name)

let parse_cbit st =
  let name = expect_ident st in
  let reg =
    match Hashtbl.find_opt st.cregs name with
    | Some r -> r
    | None -> fail st (Fmt.str "unknown classical register %s" name)
  in
  match peek st with
  | LBRACKET ->
    advance st;
    let idx = expect_nat st in
    expect st RBRACKET;
    if idx >= reg.size then fail st (Fmt.str "index %d out of range for %s" idx name)
    else reg.base + idx
  | _ ->
    if reg.size = 1 then reg.base
    else fail st (Fmt.str "register %s used without index" name)

let nth_arg st args k =
  match List.nth_opt args k with
  | Some v -> v
  | None -> fail st "missing gate parameter"

let gate_of_name st name args =
  let a k = nth_arg st args k in
  match (name, List.length args) with
  | "id", 0 -> Gates.I
  | "x", 0 -> Gates.X
  | "y", 0 -> Gates.Y
  | "z", 0 -> Gates.Z
  | "h", 0 -> Gates.H
  | "s", 0 -> Gates.S
  | "sdg", 0 -> Gates.Sdg
  | "t", 0 -> Gates.T
  | "tdg", 0 -> Gates.Tdg
  | "sx", 0 -> Gates.SX
  | "sxdg", 0 -> Gates.SXdg
  | "rx", 1 -> Gates.RX (a 0)
  | "ry", 1 -> Gates.RY (a 0)
  | "rz", 1 -> Gates.RZ (a 0)
  | ("p" | "u1"), 1 -> Gates.P (a 0)
  | "u2", 2 -> Gates.U2 (a 0, a 1)
  | ("u3" | "u" | "U"), 3 -> Gates.U3 (a 0, a 1, a 2)
  | _ -> fail st (Fmt.str "unknown gate %s with %d parameters" name (List.length args))

let emit_at st ~line op =
  st.rev_ops <- op :: st.rev_ops;
  st.rev_lines <- line :: st.rev_lines

(* Builtin (qelib1-style) gate applications, by name. *)
let builtin_ops st name args operands =
  let controlled base_name =
    match operands with
    | [ c; t ] ->
      let gate = gate_of_name st base_name args in
      [ Op.Apply { gate; controls = [ { cq = c; pos = true } ]; target = t } ]
    | _ -> fail st (Fmt.str "%s expects 2 operands" name)
  in
  match name with
  | "cx" | "CX" -> controlled "x"
  | "cy" -> controlled "y"
  | "cz" -> controlled "z"
  | "ch" -> controlled "h"
  | "cp" | "cu1" -> controlled "p"
  | "crz" -> controlled "rz"
  | "cu3" -> controlled "u3"
  | "swap" ->
    (match operands with
     | [ a; b ] -> [ Op.Swap (a, b) ]
     | _ -> fail st "swap expects 2 operands")
  | "ccx" ->
    (match operands with
     | [ c1; c2; t ] ->
       [ Op.Apply
           { gate = Gates.X
           ; controls = [ { cq = c1; pos = true }; { cq = c2; pos = true } ]
           ; target = t
           }
       ]
     | _ -> fail st "ccx expects 3 operands")
  | _ ->
    (match operands with
     | [ t ] ->
       [ Op.Apply { gate = gate_of_name st name args; controls = []; target = t } ]
     | _ -> fail st (Fmt.str "gate %s expects 1 operand" name))

(* Resolve a gate application, expanding user definitions recursively. *)
let rec resolve_gate st name args operands =
  match Hashtbl.find_opt st.defs name with
  | None -> builtin_ops st name args operands
  | Some def ->
    if List.length args <> List.length def.formals then
      fail st (Fmt.str "gate %s expects %d parameters" name (List.length def.formals));
    if List.length operands <> List.length def.qargs then
      fail st (Fmt.str "gate %s expects %d operands" name (List.length def.qargs));
    let env = List.combine def.formals args in
    let wire = List.combine def.qargs operands in
    List.concat_map
      (fun stmt ->
        let args = List.map (fun e -> e env) stmt.call_args in
        let operands =
          List.map
            (fun formal ->
              match List.assoc_opt formal wire with
              | Some q -> q
              | None -> fail st (Fmt.str "unknown operand %s in gate %s" formal name))
            stmt.call_operands
        in
        resolve_gate st stmt.call_name args operands)
      def.body

(* One operation statement (gate application, measure, reset, barrier);
   used both at top level and as the body of an [if]. *)
let rec parse_operation st =
  let name = expect_ident st in
  match name with
  | "measure" ->
    let q = parse_qubit st in
    expect st ARROW;
    let c = parse_cbit st in
    expect st SEMICOLON;
    [ Op.Measure { qubit = q; cbit = c } ]
  | "reset" ->
    let q = parse_qubit st in
    expect st SEMICOLON;
    [ Op.Reset q ]
  | "barrier" ->
    let rec operands acc =
      let q = parse_qubit st in
      match peek st with
      | COMMA ->
        advance st;
        operands (q :: acc)
      | _ ->
        expect st SEMICOLON;
        List.rev (q :: acc)
    in
    [ Op.Barrier (operands []) ]
  | "if" ->
    expect st LPAREN;
    let creg_name = expect_ident st in
    let reg =
      match Hashtbl.find_opt st.cregs creg_name with
      | Some r -> r
      | None -> fail st (Fmt.str "unknown classical register %s" creg_name)
    in
    expect st EQEQ;
    let value = expect_nat st in
    expect st RPAREN;
    let body = parse_operation st in
    let bits = List.init reg.size (fun i -> reg.base + i) in
    (* a condition distributes over an expanded gate definition *)
    List.map (fun op -> Op.Cond { cond = { bits; value }; op }) body
  | "cswap" -> fail st "cswap is not supported (decompose it upstream)"
  | _ ->
    let args = parse_args st in
    let operands =
      let rec loop acc =
        let q = parse_qubit st in
        match peek st with
        | COMMA ->
          advance st;
          loop (q :: acc)
        | _ ->
          expect st SEMICOLON;
          List.rev (q :: acc)
      in
      loop []
    in
    resolve_gate st name args operands

(* gate name(p1, ...) q1, q2 { body }   — bodies contain only gate
   applications on the formal operands, as OpenQASM 2 requires. *)
let parse_gate_definition st =
  expect st (IDENT "gate");
  let name = expect_ident st in
  let formals =
    match peek st with
    | LPAREN ->
      advance st;
      (match peek st with
       | RPAREN ->
         advance st;
         []
       | _ ->
         let rec loop acc =
           let p = expect_ident st in
           match peek st with
           | COMMA ->
             advance st;
             loop (p :: acc)
           | _ ->
             expect st RPAREN;
             List.rev (p :: acc)
         in
         loop [])
    | _ -> []
  in
  let qargs =
    let rec loop acc =
      let q = expect_ident st in
      match peek st with
      | COMMA ->
        advance st;
        loop (q :: acc)
      | _ -> List.rev (q :: acc)
    in
    loop []
  in
  expect st LBRACE;
  let body = ref [] in
  let rec statements () =
    match peek st with
    | RBRACE -> advance st
    | IDENT "barrier" ->
      (* barriers inside definitions are layout hints; skip to ';' *)
      let rec skip () =
        match peek st with
        | SEMICOLON ->
          advance st
        | EOF -> fail st "unterminated gate body"
        | _ ->
          advance st;
          skip ()
      in
      skip ();
      statements ()
    | IDENT call_name ->
      advance st;
      let call_args = parse_arg_exprs st in
      let call_operands =
        let rec loop acc =
          let q = expect_ident st in
          match peek st with
          | COMMA ->
            advance st;
            loop (q :: acc)
          | _ ->
            expect st SEMICOLON;
            List.rev (q :: acc)
        in
        loop []
      in
      body := { call_name; call_args; call_operands } :: !body;
      statements ()
    | t -> fail st (Fmt.str "unexpected %a in gate body" pp_token t)
  in
  statements ();
  Hashtbl.replace st.defs name { formals; qargs; body = List.rev !body }

let parse_statement st =
  match peek st with
  | EOF -> false
  | IDENT "OPENQASM" ->
    advance st;
    (match peek st with
     | NUMBER _ -> advance st
     | _ -> fail st "expected version number");
    expect st SEMICOLON;
    true
  | IDENT "include" ->
    advance st;
    (match peek st with
     | STRING _ -> advance st
     | _ -> fail st "expected file name");
    expect st SEMICOLON;
    true
  | IDENT "qreg" ->
    advance st;
    let name = expect_ident st in
    expect st LBRACKET;
    let size = expect_nat st in
    expect st RBRACKET;
    expect st SEMICOLON;
    Hashtbl.replace st.qregs name { base = st.num_qubits; size };
    st.num_qubits <- st.num_qubits + size;
    true
  | IDENT "creg" ->
    advance st;
    let name = expect_ident st in
    expect st LBRACKET;
    let size = expect_nat st in
    expect st RBRACKET;
    expect st SEMICOLON;
    Hashtbl.replace st.cregs name { base = st.num_cbits; size };
    st.num_cbits <- st.num_cbits + size;
    true
  | IDENT "gate" ->
    parse_gate_definition st;
    true
  | IDENT _ ->
    let at = line st in
    List.iter (emit_at st ~line:at) (parse_operation st);
    true
  | t -> fail st (Fmt.str "unexpected %a" pp_token t)

let make_state src =
  { tokens = tokenize src
  ; qregs = Hashtbl.create 4
  ; cregs = Hashtbl.create 4
  ; defs = Hashtbl.create 4
  ; num_qubits = 0
  ; num_cbits = 0
  ; rev_ops = []
  ; rev_lines = []
  ; last_line = 0
  }

let finish_located st ~name =
  ( Circ.make ~name ~qubits:st.num_qubits ~cbits:st.num_cbits (List.rev st.rev_ops)
  , Array.of_list (List.rev st.rev_lines) )

let parse_located ?(name = "qasm") src =
  let st = make_state src in
  let rec loop () = if parse_statement st then loop () in
  (try loop () with
   | Lex_error (msg, line) -> raise (Parse_error ("lexical error: " ^ msg, line)));
  finish_located st ~name

let parse ?name src = fst (parse_located ?name src)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let parse_file_located path =
  parse_located ~name:(Filename.remove_extension (Filename.basename path))
    (read_file path)

let parse_file path = fst (parse_file_located path)


(* Reusable machinery for other front ends (the OpenQASM 3 parser). *)
module Engine = struct
  type nonrec state = state

  let make = make_state
  let peek = peek

  let peek2 st =
    match st.tokens with _ :: (t, _) :: _ -> t | _ -> Qasm_lexer.EOF

  let advance = advance
  let expect = expect
  let expect_ident = expect_ident
  let expect_nat = expect_nat
  let fail = fail
  let line = line

  let declare_qreg st name size =
    Hashtbl.replace st.qregs name { base = st.num_qubits; size };
    st.num_qubits <- st.num_qubits + size

  let declare_creg st name size =
    Hashtbl.replace st.cregs name { base = st.num_cbits; size };
    st.num_cbits <- st.num_cbits + size

  let is_creg st name = Hashtbl.mem st.cregs name
  let parse_qubit = parse_qubit
  let parse_cbit = parse_cbit
  let parse_args = parse_args
  let resolve_gate = resolve_gate
  let parse_gate_definition = parse_gate_definition
  let emit_at = emit_at
  let finish_located = finish_located
  let finish st ~name = fst (finish_located st ~name)
end
