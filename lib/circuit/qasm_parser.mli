(** Recursive-descent parser for an OpenQASM 2.0 subset.

    Supported statements: the [OPENQASM 2.0;] header, [include] (ignored),
    [qreg]/[creg] declarations (multiple registers are flattened in
    declaration order), applications of the qelib1 gates
    [id x y z h s sdg t tdg sx sxdg rx ry rz p u1 u2 u3 u cx cy cz ch cp cu1
    crz cu3 ccx swap], the builtins [U] and [CX], [measure], [reset],
    [barrier], [if (creg == int) <op>;], and user [gate] definitions
    (unitary bodies referencing their formal parameters and operands; calls
    are expanded at the application site, recursively).  Gate parameters are
    expressions over numbers, [pi] and — inside definitions — the formal
    parameters, with [+ - * /] and parentheses.  An [if] over a defined
    gate distributes the condition over the expansion.

    An [if] over a single-bit register becomes a single-bit condition; over
    a wider register it becomes a multi-bit condition on all its bits. *)

exception Parse_error of string * int  (** message, line number *)

(** [parse ?name src] parses a full program. *)
val parse : ?name:string -> string -> Circ.t

val parse_file : string -> Circ.t

(** [parse_located ?name src] additionally returns the 1-based source line
    of every operation, index-aligned with the circuit's op list.  Ops
    produced by expanding a gate definition (or distributing an [if])
    carry the line of the statement that produced them.  The static
    analyzer ([lib/analysis]) threads these spans into its diagnostics. *)
val parse_located : ?name:string -> string -> Circ.t * int array

val parse_file_located : string -> Circ.t * int array

(**/**)

(** Internal machinery shared with {!Qasm3_parser}; not a stable API. *)
module Engine : sig
  type state

  val make : string -> state
  val peek : state -> Qasm_lexer.token
  val peek2 : state -> Qasm_lexer.token
  val advance : state -> unit
  val expect : state -> Qasm_lexer.token -> unit
  val expect_ident : state -> string
  val expect_nat : state -> int
  val fail : state -> string -> 'a

  (** Source line of the next token (of the last consumed one at EOF). *)
  val line : state -> int
  val declare_qreg : state -> string -> int -> unit
  val declare_creg : state -> string -> int -> unit
  val is_creg : state -> string -> bool
  val parse_qubit : state -> int
  val parse_cbit : state -> int
  val parse_args : state -> float list
  val resolve_gate : state -> string -> float list -> int list -> Op.t list
  val parse_gate_definition : state -> unit
  val emit_at : state -> line:int -> Op.t -> unit
  val finish : state -> name:string -> Circ.t
  val finish_located : state -> name:string -> Circ.t * int array
end

(**/**)
