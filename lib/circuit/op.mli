(** Circuit operations, including the non-unitary dynamic-circuit primitives
    the paper is about: mid-circuit measurement, reset, and
    classically-controlled operations. *)

(** A quantum control: [(q, true)] activates on |1>, [(q, false)] on |0>. *)
type control =
  { cq : int
  ; pos : bool
  }

(** A classical condition: the operation fires when the classical bits
    [bits] (least-significant first) currently hold the integer [value]. *)
type cond =
  { bits : int list
  ; value : int
  }

type t =
  | Apply of
      { gate : Gates.t
      ; controls : control list
      ; target : int
      }
  | Swap of int * int
  | Measure of
      { qubit : int
      ; cbit : int
      }
  | Reset of int
  | Cond of
      { cond : cond
      ; op : t  (** must satisfy {!is_unitary} *)
      }
  | Barrier of int list

(** {1 Convenience constructors} *)

val apply : ?controls:control list -> Gates.t -> int -> t
val controlled : Gates.t -> control:int -> target:int -> t
val if_bit : bit:int -> value:bool -> t -> t

(** {1 Queries} *)

(** Qubits touched, in no particular order, without duplicates. *)
val qubits : t -> int list

(** Classical bits read (by conditions). *)
val cbits_read : t -> int list

(** Classical bits written (by measurements, looking through conditions: a
    classically-controlled measurement still writes its cbit). *)
val cbits_written : t -> int list

(** Qubits whose state the operation can change: gate targets, swap
    operands, measured and reset qubits — but {e not} controls, and not
    barrier operands (a barrier is a layout hint).  Looks through
    conditions. *)
val target_qubits : t -> int list

(** Control qubits of a (possibly conditioned) gate application. *)
val control_qubits : t -> int list

(** [base op] strips any [Cond] wrappers and returns the innermost
    operation. *)
val base : t -> t

(** [is_unitary op] holds for gate applications and swaps (possibly nested
    in conditions they are still non-unitary: a [Cond] is never unitary). *)
val is_unitary : t -> bool

(** [is_dynamic_primitive op] holds for measure, reset and conditioned
    operations. *)
val is_dynamic_primitive : t -> bool

(** {1 Transformations} *)

(** [map_qubits f op] renames every qubit through [f]. *)
val map_qubits : (int -> int) -> t -> t

(** [map_cbits f op] renames every classical bit through [f]. *)
val map_cbits : (int -> int) -> t -> t

(** [adjoint op] inverts a unitary operation.  Raises [Invalid_argument] on
    non-unitary operations. *)
val adjoint : t -> t

(** [validate ~num_qubits ~num_cbits op] checks all indices are in range,
    controls are distinct from targets, and conditions wrap unitaries. *)
val validate : num_qubits:int -> num_cbits:int -> t -> (unit, string) result

val pp : Format.formatter -> t -> unit
