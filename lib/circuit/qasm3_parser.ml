open Qasm_lexer
module E = Qasm_parser.Engine

(* One statement, as the list of (operation, source line) pairs it expands
   to.  An enclosing [if]'s condition is distributed over every produced
   op; ops from a braced block keep their own statement's line. *)
let rec parse_statement_ops st : (Op.t * int) list =
  let at = E.line st in
  match E.peek st with
  | IDENT "if" ->
    E.advance st;
    E.expect st LPAREN;
    let bit = E.parse_cbit st in
    let value =
      match E.peek st with
      | EQEQ ->
        E.advance st;
        E.expect_nat st
      | _ -> 1 (* if (c[k]) means "is set" *)
    in
    E.expect st RPAREN;
    let body =
      match E.peek st with
      | LBRACE ->
        E.advance st;
        let rec block acc =
          match E.peek st with
          | RBRACE ->
            E.advance st;
            List.concat (List.rev acc)
          | EOF -> E.fail st "unterminated if block"
          | _ -> block (parse_statement_ops st :: acc)
        in
        block []
      | _ -> parse_statement_ops st
    in
    List.map
      (fun (op, line) -> (Op.Cond { cond = { bits = [ bit ]; value }; op }, line))
      body
  | IDENT "reset" ->
    E.advance st;
    let q = E.parse_qubit st in
    E.expect st SEMICOLON;
    [ (Op.Reset q, at) ]
  | IDENT "barrier" ->
    E.advance st;
    let rec operands acc =
      let q = E.parse_qubit st in
      match E.peek st with
      | COMMA ->
        E.advance st;
        operands (q :: acc)
      | _ ->
        E.expect st SEMICOLON;
        List.rev (q :: acc)
    in
    [ (Op.Barrier (operands []), at) ]
  | IDENT name when E.is_creg st name ->
    (* measurement assignment: c[i] = measure q[j]; *)
    let cbit = E.parse_cbit st in
    E.expect st EQUALS;
    (match E.expect_ident st with
     | "measure" -> ()
     | other -> E.fail st (Fmt.str "expected measure, found %s" other));
    let qubit = E.parse_qubit st in
    E.expect st SEMICOLON;
    [ (Op.Measure { qubit; cbit }, at) ]
  | IDENT _ ->
    let name = E.expect_ident st in
    let args = E.parse_args st in
    let operands =
      let rec loop acc =
        let q = E.parse_qubit st in
        match E.peek st with
        | COMMA ->
          E.advance st;
          loop (q :: acc)
        | _ ->
          E.expect st SEMICOLON;
          List.rev (q :: acc)
      in
      loop []
    in
    List.map (fun op -> (op, at)) (E.resolve_gate st name args operands)
  | t -> E.fail st (Fmt.str "unexpected %a" pp_token t)

let parse_declaration st kind =
  (* [qubit[n] name;] / [bit[n] name;] (size defaults to 1) *)
  E.advance st;
  let size =
    match E.peek st with
    | LBRACKET ->
      E.advance st;
      let n = E.expect_nat st in
      E.expect st RBRACKET;
      n
    | _ -> 1
  in
  let name = E.expect_ident st in
  E.expect st SEMICOLON;
  match kind with
  | `Qubit -> E.declare_qreg st name size
  | `Bit -> E.declare_creg st name size

let parse_top st =
  let rec loop () =
    match E.peek st with
    | EOF -> ()
    | IDENT "OPENQASM" ->
      E.advance st;
      (match E.peek st with
       | NUMBER _ -> E.advance st
       | _ -> E.fail st "expected version number");
      E.expect st SEMICOLON;
      loop ()
    | IDENT "include" ->
      E.advance st;
      (match E.peek st with
       | STRING _ -> E.advance st
       | _ -> E.fail st "expected file name");
      E.expect st SEMICOLON;
      loop ()
    | IDENT "qubit" ->
      parse_declaration st `Qubit;
      loop ()
    | IDENT "bit" ->
      parse_declaration st `Bit;
      loop ()
    | IDENT "gate" ->
      E.parse_gate_definition st;
      loop ()
    | _ ->
      List.iter (fun (op, line) -> E.emit_at st ~line op) (parse_statement_ops st);
      loop ()
  in
  loop ()

let parse_located ?(name = "qasm3") src =
  let st = E.make src in
  (try parse_top st with
   | Lex_error (msg, line) ->
     raise (Qasm_parser.Parse_error ("lexical error: " ^ msg, line)));
  E.finish_located st ~name

let parse ?name src = fst (parse_located ?name src)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let parse_file path =
  parse ~name:(Filename.remove_extension (Filename.basename path)) (read_file path)

(* Version dispatch: look for "OPENQASM 3" at the top; default to 2. *)
let looks_like_v3 src =
  let rec scan = function
    | (IDENT "OPENQASM", _) :: (NUMBER v, _) :: _ -> v >= 3.0
    | [] | [ _ ] -> false
    | _ :: rest -> scan rest
  in
  match tokenize src with
  | tokens -> scan tokens
  | exception Lex_error _ -> false

let parse_any_located ?name src =
  if looks_like_v3 src then parse_located ?name src
  else Qasm_parser.parse_located ?name src

let parse_any ?name src = fst (parse_any_located ?name src)

let parse_any_file_located path =
  parse_any_located
    ~name:(Filename.remove_extension (Filename.basename path))
    (read_file path)

let parse_any_file path = fst (parse_any_file_located path)
