type t =
  { name : string
  ; num_qubits : int
  ; num_cbits : int
  ; ops : Op.t list
  }

let make ~name ~qubits ~cbits ops =
  if qubits < 0 || cbits < 0 then invalid_arg "Circ.make: negative register size";
  List.iteri
    (fun i op ->
      match Op.validate ~num_qubits:qubits ~num_cbits:cbits op with
      | Ok () -> ()
      | Error msg ->
        invalid_arg (Fmt.str "Circ.make(%s): op %d invalid: %s" name i msg))
    ops;
  { name; num_qubits = qubits; num_cbits = cbits; ops }

let make_unchecked ~name ~qubits ~cbits ops =
  if qubits < 0 || cbits < 0 then
    invalid_arg "Circ.make_unchecked: negative register size";
  { name; num_qubits = qubits; num_cbits = cbits; ops }

type op_counts =
  { gates : int
  ; measurements : int
  ; resets : int
  ; conditioned : int
  ; barriers : int
  }

let op_counts c =
  let zero = { gates = 0; measurements = 0; resets = 0; conditioned = 0; barriers = 0 } in
  let count acc op =
    match op with
    | Op.Apply _ | Op.Swap _ -> { acc with gates = acc.gates + 1 }
    | Op.Measure _ -> { acc with measurements = acc.measurements + 1 }
    | Op.Reset _ -> { acc with resets = acc.resets + 1 }
    | Op.Cond _ ->
      { acc with gates = acc.gates + 1; conditioned = acc.conditioned + 1 }
    | Op.Barrier _ -> { acc with barriers = acc.barriers + 1 }
  in
  List.fold_left count zero c.ops

let gate_count c = (op_counts c).gates
let total_ops c = List.length c.ops

let is_dynamic c =
  (* A measurement is dynamic when anything after it acts on the measured
     qubit or reads its classical bit; resets and conditions always are. *)
  let rec scan = function
    | [] -> false
    | Op.Reset _ :: _ -> true
    | Op.Cond _ :: _ -> true
    | Op.Measure { qubit; cbit } :: rest ->
      let uses op =
        List.mem qubit (Op.qubits op) || List.mem cbit (Op.cbits_read op)
      in
      List.exists uses rest || scan rest
    | (Op.Apply _ | Op.Swap _ | Op.Barrier _) :: rest -> scan rest
  in
  scan c.ops

let measurements c =
  List.filter_map
    (function Op.Measure { qubit; cbit } -> Some (qubit, cbit) | _ -> None)
    c.ops

let strip_measurements c =
  let keep = function
    | Op.Measure _ | Op.Barrier _ -> false
    | Op.Apply _ | Op.Swap _ | Op.Reset _ | Op.Cond _ -> true
  in
  { c with ops = List.filter keep c.ops }

let inverse c =
  let inverted = List.rev_map Op.adjoint c.ops in
  { c with name = c.name ^ "_inv"; ops = inverted }

let remap c ~perm =
  if Array.length perm <> c.num_qubits then
    invalid_arg "Circ.remap: permutation size mismatch";
  let seen = Array.make c.num_qubits false in
  Array.iter
    (fun q ->
      if q < 0 || q >= c.num_qubits || seen.(q) then
        invalid_arg "Circ.remap: not a permutation";
      seen.(q) <- true)
    perm;
  { c with ops = List.map (Op.map_qubits (fun q -> perm.(q))) c.ops }

let append a b =
  if a.num_qubits <> b.num_qubits || a.num_cbits <> b.num_cbits then
    invalid_arg "Circ.append: register mismatch";
  { a with ops = a.ops @ b.ops }

let with_name c name = { c with name }

(* Content digest over the canonical op stream.  Everything that cannot
   change the implemented channel is left out: the circuit name (and any
   source-level metadata like comments or line numbers, which the parsers
   already discard), barriers, control list order, swap operand order.
   Under [perm_invariant] qubits are relabeled by first use in structural
   order — the label walk visits wire positions in the same sequence for a
   circuit and any [remap] of it, so permuted copies serialize
   identically. *)
let digest ?(perm_invariant = false) c =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "qcd/v1|q%d|c%d|" c.num_qubits c.num_cbits);
  let label =
    if not perm_invariant then fun q -> q
    else begin
      let map = Array.make (max c.num_qubits 1) (-1) in
      let next = ref 0 in
      fun q ->
        if map.(q) < 0 then begin
          map.(q) <- !next;
          incr next
        end;
        map.(q)
    end
  in
  let add_gate g =
    Buffer.add_string b (Gates.name g);
    List.iter
      (fun p -> Buffer.add_string b (Printf.sprintf ",%.17g" p))
      (Gates.params g)
  in
  let rec add_op op =
    (* fix labels in structural order (target before controls) so the
       relabeling is independent of the sort below *)
    List.iter (fun q -> ignore (label q)) (Op.qubits op);
    match (op : Op.t) with
    | Apply { gate; controls; target } ->
      Buffer.add_string b "A:";
      add_gate gate;
      Buffer.add_char b ';';
      List.map (fun (c : Op.control) -> (label c.cq, c.pos)) controls
      |> List.sort compare
      |> List.iter (fun (q, pos) ->
             Buffer.add_string b (Printf.sprintf "%c%d," (if pos then '+' else '-') q));
      Buffer.add_string b (Printf.sprintf ";%d" (label target))
    | Swap (x, y) ->
      let x = label x and y = label y in
      Buffer.add_string b (Printf.sprintf "S:%d,%d" (min x y) (max x y))
    | Measure { qubit; cbit } ->
      Buffer.add_string b (Printf.sprintf "M:%d,%d" (label qubit) cbit)
    | Reset q -> Buffer.add_string b (Printf.sprintf "R:%d" (label q))
    | Cond { cond; op } ->
      (* bit list order is semantic: [value] is read positionally *)
      Buffer.add_string b "C:";
      List.iter (fun bit -> Buffer.add_string b (string_of_int bit ^ ",")) cond.bits;
      Buffer.add_string b (Printf.sprintf "=%d{" cond.value);
      add_op op;
      Buffer.add_char b '}'
    | Barrier _ -> ()
  in
  List.iter
    (fun op ->
      match op with
      | Op.Barrier _ -> ()  (* no effect on any checking scheme *)
      | _ ->
        add_op op;
        Buffer.add_char b '\n')
    c.ops;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp ppf c =
  Fmt.pf ppf "@[<v>circuit %s (%d qubits, %d cbits):@,%a@]" c.name c.num_qubits
    c.num_cbits
    (Fmt.list ~sep:Fmt.cut Op.pp)
    c.ops
