(** Operations on matrix decision diagrams (quantum operators). *)

open Types

(** [add p a b] is the element-wise sum of same-dimension operators. *)
val add : Pkg.t -> medge -> medge -> medge

(** [apply p m v] is the matrix-vector product [m * v]. *)
val apply : Pkg.t -> medge -> vedge -> vedge

(** [mul p a b] is the matrix-matrix product [a * b]. *)
val mul : Pkg.t -> medge -> medge -> medge

(** [adjoint p a] is the conjugate transpose. *)
val adjoint : Pkg.t -> medge -> medge

(** {1 Direct gate-application kernels}

    These apply one (controlled) single-qubit gate or swap without building
    its full [n]-qubit matrix DD ({!Pkg.gate}) and without running the
    generic all-levels {!apply}/{!mul} recursion: the descent stops at the
    deepest involved qubit, levels above the gate's span are pure
    pass-through, and subtrees below it are returned untouched.  Results
    are bit-identical (same node, same interned weight) to the generic
    path thanks to canonical normalization.  Memoized in the package's
    kernel caches ([dd.kernel.*] metrics, [caps.kernel] capacity). *)

(** [apply_gate p ~n ~controls ~target u v] is [G * v] where [G] is the
    [n]-qubit operator applying the 2x2 matrix [u] (row-major) to [target]
    under [controls] — equal to
    [apply p (Pkg.gate p ~n ~controls ~target u) v]. *)
val apply_gate :
     Pkg.t
  -> n:int
  -> controls:(int * bool) list
  -> target:int
  -> Cxnum.Cx.t array
  -> vedge
  -> vedge

(** [apply_swap p ~n a b v] applies the SWAP of wires [a] and [b]. *)
val apply_swap : Pkg.t -> n:int -> int -> int -> vedge -> vedge

(** [mul_gate_left p ~n ~controls ~target u m] is [G * m]. *)
val mul_gate_left :
     Pkg.t
  -> n:int
  -> controls:(int * bool) list
  -> target:int
  -> Cxnum.Cx.t array
  -> medge
  -> medge

(** [mul_gate_right p ~n ~controls ~target u m] is [m * G^dagger]; the
    adjoint of the 2x2 is taken entry-wise, with no {!adjoint} pass over
    [m] and no gate DD. *)
val mul_gate_right :
     Pkg.t
  -> n:int
  -> controls:(int * bool) list
  -> target:int
  -> Cxnum.Cx.t array
  -> medge
  -> medge

(** [mul_swap_left p ~n a b m] is [SWAP(a,b) * m]. *)
val mul_swap_left : Pkg.t -> n:int -> int -> int -> medge -> medge

(** [mul_swap_right p ~n a b m] is [m * SWAP(a,b)] ([= m * SWAP^dagger]). *)
val mul_swap_right : Pkg.t -> n:int -> int -> int -> medge -> medge

(** [trace p a ~n] is the trace of an [n]-qubit operator. *)
val trace : Pkg.t -> medge -> n:int -> Cxnum.Cx.t

(** [entry p a ~n ~row ~col] is a single matrix element (qubit 0 least
    significant in both indices). *)
val entry : Pkg.t -> medge -> n:int -> row:int -> col:int -> Cxnum.Cx.t

(** [to_array p a ~n] materializes the dense matrix, row-major.  Only for
    small [n]. *)
val to_array : Pkg.t -> medge -> n:int -> Cxnum.Cx.t array array

(** [of_array p m] builds a DD from a dense square matrix whose dimension
    must be a power of two. *)
val of_array : Pkg.t -> Cxnum.Cx.t array array -> medge

(** [equal p a b] holds when the two operators are exactly equal (same node
    and approximately equal weights). *)
val equal : Pkg.t -> medge -> medge -> bool

(** [equal_up_to_phase p a b] holds when [a = exp(i phi) * b] for some
    global phase [phi]. *)
val equal_up_to_phase : Pkg.t -> medge -> medge -> bool

(** [is_identity p a ~n ~up_to_phase] checks against [Pkg.ident p n]. *)
val is_identity : Pkg.t -> medge -> n:int -> up_to_phase:bool -> bool

(** [process_fidelity p a b ~n] is [|Tr(a^dagger b)| / 2^n], 1 iff the
    unitaries are equal up to global phase. *)
val process_fidelity : Pkg.t -> medge -> medge -> n:int -> float

(** Number of distinct nodes reachable from this edge (terminal excluded). *)
val node_count : medge -> int
