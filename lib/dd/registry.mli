(** Runtime registry of DD backends.

    Maps backend names to first-class {!Backend.S} modules so
    non-functorized entry points (the CLI, the batch engine, bench)
    dispatch at runtime:

    {[
      match Dd.Registry.find name with
      | None -> ...        (* unknown backend: usage error *)
      | Some b ->
        let module B = (val b) in
        let module V = Qcec.Verify.Make (B) in
        V.functional ...
    ]}

    {!Classic} and {!Packed} are registered at startup. *)

(** [register (module B)] adds (or replaces) a backend under [B.name]. *)
val register : (module Backend.S) -> unit

(** [find name] resolves a backend by registry name. *)
val find : string -> (module Backend.S) option

(** Registered names, sorted ([["classic"; "packed"]] by default). *)
val names : unit -> string list

(** The default backend name, ["classic"]. *)
val default : string
