(** The reference {!Backend.S} implementation: the hash-consed {!Pkg} /
    {!Vec} / {!Mat} trio.  All types are shared with the historical
    modules, so edges built through [Dd.Classic] interoperate with code
    written directly against [Dd.Pkg]. *)

include
  Backend.S
    with type pkg = Pkg.t
     and type vedge = Types.vedge
     and type medge = Types.medge
     and type vroot = Pkg.vroot
     and type mroot = Pkg.mroot
     and type gate_sig = Pkg.gate_sig
