(* Graphviz export, backend-generic: the traversal runs on the structural
   views every backend exposes ({!Backend.S.vedge_view} and friends), so
   draw/debug dumps work identically for classic and packed DDs. *)

module Cx = Cxnum.Cx

module Make (B : Backend.S) = struct
  let weight_label z = Fmt.str "%a" Cx.pp z

  let vector p ppf (root : B.vedge) =
    Fmt.pf ppf "digraph vector_dd {@.";
    Fmt.pf ppf "  root [shape=point];@.";
    Fmt.pf ppf "  t [label=\"1\", shape=box];@.";
    let seen = Hashtbl.create 64 in
    let rec node e =
      match B.vedge_view p e with
      | None -> ()
      | Some nv ->
        if not (Hashtbl.mem seen nv.Backend.nv_id) then begin
          Hashtbl.add seen nv.Backend.nv_id ();
          Fmt.pf ppf "  v%d [label=\"q%d\", shape=circle];@." nv.Backend.nv_id
            nv.Backend.nv_var;
          edge nv.Backend.nv_id 0 nv.Backend.nv_edges.(0);
          edge nv.Backend.nv_id 1 nv.Backend.nv_edges.(1)
        end
    and edge src branch e =
      if not (B.vedge_is_zero p e) then begin
        let dst =
          match B.vedge_view p e with
          | None -> "t"
          | Some nv -> Fmt.str "v%d" nv.Backend.nv_id
        in
        let style = if branch = 0 then "dashed" else "solid" in
        Fmt.pf ppf "  v%d -> %s [label=\"%s\", style=%s];@." src dst
          (weight_label (B.vedge_weight p e))
          style;
        node e
      end
    in
    if B.vedge_is_zero p root then Fmt.pf ppf "  root -> t [label=\"0\"];@."
    else begin
      let dst =
        match B.vedge_view p root with
        | None -> "t"
        | Some nv -> Fmt.str "v%d" nv.Backend.nv_id
      in
      Fmt.pf ppf "  root -> %s [label=\"%s\"];@." dst
        (weight_label (B.vedge_weight p root));
      node root
    end;
    Fmt.pf ppf "}@."

  let matrix p ppf (root : B.medge) =
    Fmt.pf ppf "digraph matrix_dd {@.";
    Fmt.pf ppf "  root [shape=point];@.";
    Fmt.pf ppf "  t [label=\"1\", shape=box];@.";
    let seen = Hashtbl.create 64 in
    let branches = [| "00"; "01"; "10"; "11" |] in
    let rec node e =
      match B.medge_view p e with
      | None -> ()
      | Some nv ->
        if not (Hashtbl.mem seen nv.Backend.nv_id) then begin
          Hashtbl.add seen nv.Backend.nv_id ();
          Fmt.pf ppf "  m%d [label=\"q%d\", shape=circle];@." nv.Backend.nv_id
            nv.Backend.nv_var;
          Array.iteri
            (fun i child -> edge nv.Backend.nv_id branches.(i) child)
            nv.Backend.nv_edges
        end
    and edge src branch e =
      if not (B.medge_is_zero p e) then begin
        let dst =
          match B.medge_view p e with
          | None -> "t"
          | Some nv -> Fmt.str "m%d" nv.Backend.nv_id
        in
        Fmt.pf ppf "  m%d -> %s [label=\"%s:%s\"];@." src dst branch
          (weight_label (B.medge_weight p e));
        node e
      end
    in
    if B.medge_is_zero p root then Fmt.pf ppf "  root -> t [label=\"0\"];@."
    else begin
      let dst =
        match B.medge_view p root with
        | None -> "t"
        | Some nv -> Fmt.str "m%d" nv.Backend.nv_id
      in
      Fmt.pf ppf "  root -> %s [label=\"%s\"];@." dst
        (weight_label (B.medge_weight p root));
      node root
    end;
    Fmt.pf ppf "}@."

  let to_file path pp root =
    let oc = open_out path in
    let ppf = Format.formatter_of_out_channel oc in
    pp ppf root;
    Format.pp_print_flush ppf ();
    close_out oc

  let vector_to_file p path e = to_file path (vector p) e
  let matrix_to_file p path e = to_file path (matrix p) e
end

include Make (Classic)
