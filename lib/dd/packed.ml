(* The packed-array backend.

   Same quasi-reduced QMDD semantics as {!Classic}, different memory
   layout: nodes live in int-indexed growable arrays (stride 3 for
   vector nodes — var, e0, e1 — and stride 5 for matrix nodes), complex
   weights live in two unboxed float arrays, and an edge is one packed
   int: [(weight_id lsl 31) lor (node_idx + 1)], node index [-1] being
   the terminal.  The canonical zero edge is the literal [0].  No
   per-node or per-edge boxing means the kernel descent paths touch
   flat arrays instead of chasing pointers.

   Normalization, tolerance handling and operation order are ported
   verbatim from [Pkg]/[Vec]/[Mat], so for the same inputs the two
   backends build isomorphic DDs with identical weights — verdicts,
   counterexamples and node counts are bit-identical, which is what
   makes cross-backend differential testing (and serving a verdict
   cached under one backend to the other) sound.

   Bounded operation caches reuse {!Cache}, gate signatures reuse the
   process-wide blueprint tier in {!Backend}, and metrics publish under
   the same [dd.*] names as the classic package (the metric registry
   de-duplicates, so counters sum across backends). *)

module Cx = Cxnum.Cx
module M = Obs.Metrics

let name = "packed"

(* same counters as the classic package: creation deduplicates *)
let m_vuniq_hits = M.counter "dd.unique.vec.hits"
let m_vuniq_inserts = M.counter "dd.unique.vec.inserts"
let m_muniq_hits = M.counter "dd.unique.mat.hits"
let m_muniq_inserts = M.counter "dd.unique.mat.inserts"
let m_gc_runs = M.counter "dd.gc.runs"
let m_gc_auto = M.counter "dd.gc.auto"
let m_gc_swept_nodes = M.counter "dd.gc.swept.nodes"
let m_gc_swept_weights = M.counter "dd.gc.swept.weights"
let g_vnodes_peak = M.gauge "dd.unique.vec.peak"
let g_mnodes_peak = M.gauge "dd.unique.mat.peak"
let m_pkg_created = M.counter "dd.pkg.created"
let m_w_hits = M.counter "cx.table.hits"
let m_w_inserts = M.counter "cx.table.inserts"
let m_kernel_calls = M.counter "dd.kernel.calls"

(* -- edges -------------------------------------------------------------- *)

type vedge = int
type medge = int

let pack w t = (w lsl 31) lor (t + 1)
let ew e = e lsr 31
let et e = (e land 0x7fffffff) - 1
let one_t = pack 1 (-1) (* weight-one edge to the terminal *)

(* -- gate signatures ---------------------------------------------------- *)

(* Same shape as the classic package's signature record. *)
type gate_sig =
  { gs_id : int
  ; gs_u : Cx.t array
  ; gs_swap : bool
  ; gs_target : int
  ; gs_target2 : int
  ; gs_hi : int
  ; gs_lo : int
  ; gs_cmin : int
  ; gs_control_at : bool option array
  }

type sig_key = int * (int * bool) list * int list * int * int
type kkey = int * int * int * int

(* -- roots -------------------------------------------------------------- *)

type vroot =
  { vr_id : int
  ; mutable vr_edge : vedge
  }

type mroot =
  { mr_id : int
  ; mutable mr_edge : medge
  }

(* -- the package -------------------------------------------------------- *)

type t =
  { tol : float
    (* weight interning: floats indexed by id (0 = zero, 1 = one), with
       the same relative-tolerance bucket scheme as [Cx_table] *)
  ; mutable wre : float array
  ; mutable wim : float array
  ; mutable wnext : int
  ; wbuckets : (int * int * int, int list ref) Hashtbl.t
  ; mutable wcount : int (* live interned values, including 0 and 1 *)
    (* nodes: flat arrays, unique tables keyed on (var, successor edges) *)
  ; vtab : (int * int * int, int) Hashtbl.t
  ; mtab : (int * int * int * int * int, int) Hashtbl.t
  ; mutable varr : int array
  ; mutable vnext : int
  ; mutable marr : int array
  ; mutable mnext : int
  ; mutable idents : int array
  ; mutable nidents : int
  ; vadd : (int * int * int, vedge) Cache.t
  ; madd : (int * int * int, medge) Cache.t
  ; mv : (int * int, vedge) Cache.t
  ; mm : (int * int, medge) Cache.t
  ; ip : (int * int, Cx.t) Cache.t
  ; adj : (int, medge) Cache.t
  ; kv : (kkey, vedge * vedge) Cache.t
  ; km : (kkey, medge * medge) Cache.t
  ; sigs : (sig_key, gate_sig) Hashtbl.t
  ; mutable sig_next : int
  ; vroots : (int, vroot) Hashtbl.t
  ; mroots : (int, mroot) Hashtbl.t
  ; mutable root_next : int
  ; gc_threshold : int option
  ; mutable gc_baseline : int
  ; owner : int
  }

type pkg = t

let guard p =
  if Backend.guards_enabled () then begin
    let d = (Domain.self () :> int) in
    if d <> p.owner then
      raise
        (Backend.Cross_domain_use
           (Printf.sprintf
              "Dd.Packed: package owned by domain %d used from domain %d" p.owner d))
  end

let create ?(tol = 1e-10) ?(config = Backend.default_config) () =
  M.incr m_pkg_created;
  let caps = config.Backend.caps in
  let wre = Array.make 1024 0.0 and wim = Array.make 1024 0.0 in
  wre.(1) <- 1.0;
  { tol
  ; wre
  ; wim
  ; wnext = 2
  ; wbuckets = Hashtbl.create 4096
  ; wcount = 2
  ; vtab = Hashtbl.create 4096
  ; mtab = Hashtbl.create 4096
  ; varr = Array.make 3072 0
  ; vnext = 0
  ; marr = Array.make 5120 0
  ; mnext = 0
  ; idents = [||]
  ; nidents = 0
  ; vadd = Cache.create ~capacity:caps.Backend.vadd "vadd"
  ; madd = Cache.create ~capacity:caps.Backend.madd "madd"
  ; mv = Cache.create ~capacity:caps.Backend.mv "mv"
  ; mm = Cache.create ~capacity:caps.Backend.mm "mm"
  ; ip = Cache.create ~capacity:caps.Backend.ip "ip"
  ; adj = Cache.create ~capacity:caps.Backend.adj "adj"
  ; kv = Cache.create ~capacity:caps.Backend.kernel ~prefix:"dd." "kernel"
  ; km = Cache.create ~capacity:caps.Backend.kernel ~prefix:"dd." "kernel"
  ; sigs = Hashtbl.create 64
  ; sig_next = 0
  ; vroots = Hashtbl.create 16
  ; mroots = Hashtbl.create 16
  ; root_next = 0
  ; gc_threshold = config.Backend.gc_threshold
  ; gc_baseline = 0
  ; owner = (Domain.self () :> int)
  }

let tol p = p.tol

(* -- weight interning (port of Cx_table over flat float arrays) --------- *)

let hard_zero = 1e-250
let magnitude re im = Float.max (Float.abs re) (Float.abs im)

let exponent_of m =
  let _, e = Float.frexp m in
  e

let wkey_at p re im e =
  let s = Float.ldexp 1.0 e in
  ( e
  , int_of_float (Float.round (re /. s /. p.tol))
  , int_of_float (Float.round (im /. s /. p.tol)) )

let wmatches p re im id =
  let vre = p.wre.(id) and vim = p.wim.(id) in
  let scale = Float.max (magnitude re im) (magnitude vre vim) in
  Float.abs (vre -. re) <= p.tol *. scale && Float.abs (vim -. im) <= p.tol *. scale

let wfind_in_bucket p key re im =
  match Hashtbl.find_opt p.wbuckets key with
  | None -> None
  | Some cell -> List.find_opt (wmatches p re im) !cell

let winsert p key id =
  p.wcount <- p.wcount + 1;
  match Hashtbl.find_opt p.wbuckets key with
  | Some cell -> cell := id :: !cell
  | None -> Hashtbl.add p.wbuckets key (ref [ id ])

let weight p (z : Cx.t) =
  guard p;
  let re = z.Cx.re and im = z.Cx.im in
  let m = magnitude re im in
  if m < hard_zero then begin
    M.incr m_w_hits;
    0
  end
  else if re = 1.0 && im = 0.0 then begin
    M.incr m_w_hits;
    1
  end
  else begin
    let e = exponent_of m in
    let probes =
      List.concat_map
        (fun de ->
          let ke, kre, kim = wkey_at p re im (e + de) in
          List.concat_map
            (fun dre ->
              List.map (fun dim -> (ke, kre + dre, kim + dim)) [ 0; 1; -1 ])
            [ 0; 1; -1 ])
        [ 0; 1; -1 ]
    in
    let rec probe = function
      | [] ->
        if wmatches p re im 1 then begin
          M.incr m_w_hits;
          1
        end
        else begin
          let id = p.wnext in
          if id >= 0xffffffff then failwith "Dd.Packed: weight table overflow";
          if id >= Array.length p.wre then begin
            let cap = 2 * Array.length p.wre in
            let re' = Array.make cap 0.0 and im' = Array.make cap 0.0 in
            Array.blit p.wre 0 re' 0 id;
            Array.blit p.wim 0 im' 0 id;
            p.wre <- re';
            p.wim <- im'
          end;
          p.wre.(id) <- re;
          p.wim.(id) <- im;
          p.wnext <- id + 1;
          winsert p (wkey_at p re im e) id;
          M.incr m_w_inserts;
          id
        end
      | key :: rest ->
        (match wfind_in_bucket p key re im with
         | Some id ->
           M.incr m_w_hits;
           id
         | None -> probe rest)
    in
    probe probes
  end

let wf p id = Cx.make p.wre.(id) p.wim.(id)

(* -- node storage ------------------------------------------------------- *)

let vvar p i = p.varr.(3 * i)
let v0 p i = p.varr.((3 * i) + 1)
let v1 p i = p.varr.((3 * i) + 2)
let mvar p i = p.marr.(5 * i)
let m00 p i = p.marr.((5 * i) + 1)
let m01 p i = p.marr.((5 * i) + 2)
let m10 p i = p.marr.((5 * i) + 3)
let m11 p i = p.marr.((5 * i) + 4)

let hashcons_vnode p var e0 e1 =
  let key = (var, e0, e1) in
  match Hashtbl.find_opt p.vtab key with
  | Some i ->
    M.incr m_vuniq_hits;
    i
  | None ->
    let i = p.vnext in
    if i >= 0x7ffffffe then failwith "Dd.Packed: vector node index overflow";
    let base = 3 * i in
    if base + 3 > Array.length p.varr then begin
      let a = Array.make (2 * Array.length p.varr) 0 in
      Array.blit p.varr 0 a 0 base;
      p.varr <- a
    end;
    p.varr.(base) <- var;
    p.varr.(base + 1) <- e0;
    p.varr.(base + 2) <- e1;
    p.vnext <- i + 1;
    Hashtbl.add p.vtab key i;
    M.incr m_vuniq_inserts;
    M.observe g_vnodes_peak (Hashtbl.length p.vtab);
    i

let hashcons_mnode p var e00 e01 e10 e11 =
  let key = (var, e00, e01, e10, e11) in
  match Hashtbl.find_opt p.mtab key with
  | Some i ->
    M.incr m_muniq_hits;
    i
  | None ->
    let i = p.mnext in
    if i >= 0x7ffffffe then failwith "Dd.Packed: matrix node index overflow";
    let base = 5 * i in
    if base + 5 > Array.length p.marr then begin
      let a = Array.make (2 * Array.length p.marr) 0 in
      Array.blit p.marr 0 a 0 base;
      p.marr <- a
    end;
    p.marr.(base) <- var;
    p.marr.(base + 1) <- e00;
    p.marr.(base + 2) <- e01;
    p.marr.(base + 3) <- e10;
    p.marr.(base + 4) <- e11;
    p.mnext <- i + 1;
    Hashtbl.add p.mtab key i;
    M.incr m_muniq_inserts;
    M.observe g_mnodes_peak (Hashtbl.length p.mtab);
    i

(* -- edge construction (ports of Pkg) ----------------------------------- *)

let vterminal p z =
  let w = weight p z in
  if w = 0 then 0 else pack w (-1)

let mterminal p z =
  let w = weight p z in
  if w = 0 then 0 else pack w (-1)

let vscale p z e =
  if e = 0 then 0
  else begin
    let w = weight p (Cx.mul z (wf p (ew e))) in
    if w = 0 then 0 else pack w (et e)
  end

let mscale p z e =
  if e = 0 then 0
  else begin
    let w = weight p (Cx.mul z (wf p (ew e))) in
    if w = 0 then 0 else pack w (et e)
  end

(* Vector normalization: identical arithmetic to [Pkg.make_vnode]. *)
let make_vnode p var e0 e1 =
  guard p;
  if e0 = 0 && e1 = 0 then 0
  else begin
    let w0 = wf p (ew e0) and w1 = wf p (ew e1) in
    let norm = Float.sqrt (Cx.abs2 w0 +. Cx.abs2 w1) in
    let lead = if Cx.abs w0 > p.tol *. norm then w0 else w1 in
    let phase = Cx.scale (1.0 /. Cx.abs lead) lead in
    let factor = Cx.scale norm phase in
    let renorm w e =
      if e = 0 then 0
      else begin
        let w' = Cx.div w factor in
        if Cx.abs w' <= p.tol then 0
        else begin
          let wid = weight p w' in
          if wid = 0 then 0 else pack wid (et e)
        end
      end
    in
    let e0' = renorm w0 e0 and e1' = renorm w1 e1 in
    if e0' = 0 && e1' = 0 then 0
    else begin
      let n = hashcons_vnode p var e0' e1' in
      let fw = weight p factor in
      if fw = 0 then 0 else pack fw n
    end
  end

(* Matrix normalization: identical arithmetic to [Pkg.make_mnode]. *)
let make_mnode p var e00 e01 e10 e11 =
  guard p;
  let edges = [| e00; e01; e10; e11 |] in
  let mags = Array.map (fun e -> Cx.abs (wf p (ew e))) edges in
  let mmax = Array.fold_left Float.max 0.0 mags in
  if Array.for_all (fun e -> e = 0) edges then 0
  else if not (Float.is_finite mmax) then
    invalid_arg "Dd.Packed.make_mnode: non-finite edge weight (check gate angles)"
  else begin
    let rec lead_index k =
      if mags.(k) >= mmax *. (1.0 -. 1e-9) then k else lead_index (k + 1)
    in
    let k = lead_index 0 in
    let factor = wf p (ew edges.(k)) in
    let renorm idx e =
      if e = 0 then 0
      else if idx = k then pack 1 (et e)
      else begin
        let w' = Cx.div (wf p (ew e)) factor in
        if Cx.abs w' <= p.tol then 0
        else begin
          let wid = weight p w' in
          if wid = 0 then 0 else pack wid (et e)
        end
      end
    in
    let n =
      hashcons_mnode p var (renorm 0 e00) (renorm 1 e01) (renorm 2 e10)
        (renorm 3 e11)
    in
    let fw = weight p factor in
    if fw = 0 then 0 else pack fw n
  end

let ident p n =
  if n < p.nidents then p.idents.(n)
  else begin
    if n >= Array.length p.idents then begin
      let cap = max 16 (max (n + 1) (2 * Array.length p.idents)) in
      let grown = Array.make cap 0 in
      Array.blit p.idents 0 grown 0 p.nidents;
      p.idents <- grown
    end;
    for i = p.nidents to n do
      p.idents.(i) <-
        (if i = 0 then one_t
         else begin
           let below = p.idents.(i - 1) in
           make_mnode p (i - 1) below 0 0 below
         end)
    done;
    p.nidents <- n + 1;
    p.idents.(n)
  end

let basis_state p n bits =
  let rec build q acc =
    if q = n then acc
    else begin
      let acc' = if bits q then make_vnode p q 0 acc else make_vnode p q acc 0 in
      build (q + 1) acc'
    end
  in
  build 0 one_t

let zero_state p n = basis_state p n (fun _ -> false)

let product_state p amps =
  let n = Array.length amps in
  let rec build q acc =
    if q = n then acc
    else begin
      let a, b = amps.(q) in
      build (q + 1) (make_vnode p q (vscale p a acc) (vscale p b acc))
    end
  in
  build 0 one_t

let gate p ~n ~controls ~target u =
  assert (Array.length u = 4);
  assert (0 <= target && target < n);
  let control_at = Array.make n None in
  let set_control (q, pos) =
    assert (q <> target && 0 <= q && q < n);
    control_at.(q) <- Some pos
  in
  List.iter set_control controls;
  let entries = Array.map (fun z -> mterminal p z) u in
  for q = 0 to target - 1 do
    match control_at.(q) with
    | None ->
      for idx = 0 to 3 do
        let e = entries.(idx) in
        entries.(idx) <- make_mnode p q e 0 0 e
      done
    | Some pos ->
      for idx = 0 to 3 do
        let diag = if idx = 0 || idx = 3 then ident p q else 0 in
        let e = entries.(idx) in
        entries.(idx) <-
          (if pos then make_mnode p q diag 0 0 e else make_mnode p q e 0 0 diag)
      done
  done;
  let at_target =
    make_mnode p target entries.(0) entries.(1) entries.(2) entries.(3)
  in
  let rec extend q acc =
    if q = n then acc
    else begin
      let acc' =
        match control_at.(q) with
        | None -> make_mnode p q acc 0 0 acc
        | Some pos ->
          let below = ident p q in
          if pos then make_mnode p q below 0 0 acc
          else make_mnode p q acc 0 0 below
      in
      extend (q + 1) acc'
    end
  in
  extend (target + 1) at_target

(* -- gate signatures ---------------------------------------------------- *)

let gate_sig p ~controls ~target u =
  guard p;
  if Array.length u <> 4 then invalid_arg "Dd.Packed.gate_sig: u must have 4 entries";
  if List.exists (fun (q, _) -> q = target || q < 0) controls || target < 0 then
    invalid_arg "Dd.Packed.gate_sig: bad control/target wires";
  let controls = List.sort_uniq compare controls in
  let uw = Array.to_list (Array.map (fun z -> weight p z) u) in
  let key = (0, controls, uw, target, -1) in
  match Hashtbl.find_opt p.sigs key with
  | Some s -> s
  | None ->
    let bp = Backend.shared_blueprint ~controls ~target u in
    let s =
      { gs_id = p.sig_next
      ; gs_u = bp.Backend.b_u
      ; gs_swap = false
      ; gs_target = target
      ; gs_target2 = -1
      ; gs_hi = bp.Backend.b_hi
      ; gs_lo = bp.Backend.b_lo
      ; gs_cmin = bp.Backend.b_cmin
      ; gs_control_at = bp.Backend.b_control_at
      }
    in
    p.sig_next <- p.sig_next + 1;
    Hashtbl.replace p.sigs key s;
    s

let swap_sig p a b =
  guard p;
  if a = b || a < 0 || b < 0 then invalid_arg "Dd.Packed.swap_sig: bad wires";
  let hi = max a b and lo = min a b in
  let key = (1, [], [], hi, lo) in
  match Hashtbl.find_opt p.sigs key with
  | Some s -> s
  | None ->
    let s =
      { gs_id = p.sig_next
      ; gs_u = [||]
      ; gs_swap = true
      ; gs_target = hi
      ; gs_target2 = lo
      ; gs_hi = hi
      ; gs_lo = lo
      ; gs_cmin = max_int
      ; gs_control_at = Array.make (hi + 1) None
      }
    in
    p.sig_next <- p.sig_next + 1;
    Hashtbl.replace p.sigs key s;
    s

let sig_id (s : gate_sig) = s.gs_id

let sig_control_at (s : gate_sig) q =
  if q <= s.gs_hi then s.gs_control_at.(q) else None

(* -- roots -------------------------------------------------------------- *)

let root_v p e =
  guard p;
  let r = { vr_id = p.root_next; vr_edge = e } in
  p.root_next <- p.root_next + 1;
  Hashtbl.replace p.vroots r.vr_id r;
  r

let root_m p e =
  guard p;
  let r = { mr_id = p.root_next; mr_edge = e } in
  p.root_next <- p.root_next + 1;
  Hashtbl.replace p.mroots r.mr_id r;
  r

let vroot_edge r = r.vr_edge
let mroot_edge r = r.mr_edge
let set_vroot r e = r.vr_edge <- e
let set_mroot r e = r.mr_edge <- e
let release_v p r = Hashtbl.remove p.vroots r.vr_id
let release_m p r = Hashtbl.remove p.mroots r.mr_id

let with_root_v p e f =
  let r = root_v p e in
  Fun.protect ~finally:(fun () -> release_v p r) (fun () -> f r)

let with_root_m p e f =
  let r = root_m p e in
  Fun.protect ~finally:(fun () -> release_m p r) (fun () -> f r)

let live_roots p = Hashtbl.length p.vroots + Hashtbl.length p.mroots
let live_nodes p = Hashtbl.length p.vtab + Hashtbl.length p.mtab

let clear_caches p =
  Cache.clear p.vadd;
  Cache.clear p.madd;
  Cache.clear p.mv;
  Cache.clear p.mm;
  Cache.clear p.ip;
  Cache.clear p.adj;
  Cache.clear p.kv;
  Cache.clear p.km

(* -- compaction --------------------------------------------------------- *)

(* Port of [Pkg.compact]: unreachable nodes are dropped from the unique
   tables and the weight buckets are re-seeded from the survivors.  Node
   and weight ids stay monotonic (stale handles lose canonicity but never
   collide).  Array slots of dead nodes are retained until the package is
   dropped — the packed layout trades sweep-time reclamation for id
   stability; [live_nodes]/[stats] count unique-table entries, exactly as
   the classic backend does. *)
let compact p =
  guard p;
  M.incr m_gc_runs;
  let nodes_before = live_nodes p and weights_before = p.wcount in
  clear_caches p;
  Hashtbl.reset p.vtab;
  Hashtbl.reset p.mtab;
  let vseen = Hashtbl.create 256 and mseen = Hashtbl.create 256 in
  let weights : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let keep_w w = if w > 1 then Hashtbl.replace weights w () in
  let rec revisit_v t =
    if t >= 0 && not (Hashtbl.mem vseen t) then begin
      Hashtbl.add vseen t ();
      let e0 = v0 p t and e1 = v1 p t in
      Hashtbl.replace p.vtab (vvar p t, e0, e1) t;
      keep_w (ew e0);
      keep_w (ew e1);
      if e0 <> 0 then revisit_v (et e0);
      if e1 <> 0 then revisit_v (et e1)
    end
  in
  let rec revisit_m t =
    if t >= 0 && not (Hashtbl.mem mseen t) then begin
      Hashtbl.add mseen t ();
      let e00 = m00 p t and e01 = m01 p t and e10 = m10 p t and e11 = m11 p t in
      Hashtbl.replace p.mtab (mvar p t, e00, e01, e10, e11) t;
      let follow e =
        keep_w (ew e);
        if e <> 0 then revisit_m (et e)
      in
      follow e00;
      follow e01;
      follow e10;
      follow e11
    end
  in
  let root_vedge e =
    keep_w (ew e);
    if e <> 0 then revisit_v (et e)
  in
  let root_medge e =
    keep_w (ew e);
    if e <> 0 then revisit_m (et e)
  in
  Hashtbl.iter (fun _ r -> root_vedge r.vr_edge) p.vroots;
  Hashtbl.iter (fun _ r -> root_medge r.mr_edge) p.mroots;
  for i = 0 to p.nidents - 1 do
    root_medge p.idents.(i)
  done;
  Hashtbl.reset p.sigs;
  Hashtbl.reset p.wbuckets;
  p.wcount <- 2;
  Hashtbl.iter
    (fun id () ->
      let re = p.wre.(id) and im = p.wim.(id) in
      winsert p (wkey_at p re im (exponent_of (magnitude re im))) id)
    weights;
  p.gc_baseline <- live_nodes p;
  M.add m_gc_swept_nodes (nodes_before - live_nodes p);
  M.add m_gc_swept_weights (max 0 (weights_before - p.wcount))

let safepoint_hook : (t -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_safepoint_hook h = Domain.DLS.set safepoint_hook h

let checkpoint p =
  (match Domain.DLS.get safepoint_hook with None -> () | Some f -> f p);
  match p.gc_threshold with
  | Some threshold when live_nodes p - p.gc_baseline > threshold ->
    M.incr m_gc_auto;
    compact p
  | _ -> ()

let stats p =
  { Backend.vector_nodes = Hashtbl.length p.vtab
  ; matrix_nodes = Hashtbl.length p.mtab
  ; weights = p.wcount
  }

(* -- vector operations (ports of Vec) ----------------------------------- *)

let rec vec_add p a b =
  if a = 0 then b
  else if b = 0 then a
  else begin
    let a, b = if et a <= et b then (a, b) else (b, a) in
    let wa = wf p (ew a) and wb = wf p (ew b) in
    match (et a, et b) with
    | -1, -1 ->
      let s = Cx.add wa wb in
      if Cx.abs s <= p.tol *. Float.max (Cx.abs wa) (Cx.abs wb) then 0
      else vterminal p s
    | na, nb when na >= 0 && nb >= 0 ->
      let ratio = weight p (Cx.div wb wa) in
      let key = (na, nb, ratio) in
      let inner =
        match Cache.find p.vadd key with
        | Some e -> e
        | None ->
          let rb = wf p ratio in
          let e0 = vec_add p (v0 p na) (vscale p rb (v0 p nb)) in
          let e1 = vec_add p (v1 p na) (vscale p rb (v1 p nb)) in
          let e = make_vnode p (vvar p na) e0 e1 in
          Cache.add p.vadd key e;
          e
      in
      vscale p wa inner
    | _ -> invalid_arg "Packed.Vec.add: operands of different dimension"
  end

let rec inner_product_nodes p na nb =
  match (na, nb) with
  | -1, -1 -> Cx.one
  | a, b when a >= 0 && b >= 0 ->
    let key = (a, b) in
    (match Cache.find p.ip key with
     | Some z -> z
     | None ->
       let part ea eb =
         if ea = 0 || eb = 0 then Cx.zero
         else begin
           let sub = inner_product_nodes p (et ea) (et eb) in
           Cx.mul (Cx.mul (Cx.conj (wf p (ew ea))) (wf p (ew eb))) sub
         end
       in
       let z = Cx.add (part (v0 p a) (v0 p b)) (part (v1 p a) (v1 p b)) in
       Cache.add p.ip key z;
       z)
  | _ -> invalid_arg "Packed.Vec.inner_product: operands of different dimension"

let inner_product p a b =
  if a = 0 || b = 0 then Cx.zero
  else begin
    let sub = inner_product_nodes p (et a) (et b) in
    Cx.mul (Cx.mul (Cx.conj (wf p (ew a))) (wf p (ew b))) sub
  end

let vec_fidelity p a b = Cx.abs2 (inner_product p a b)
let vec_norm p a = Cx.abs (inner_product p a a) |> Float.sqrt

let probabilities p a q =
  let memo : (int, float * float) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    if t < 0 then invalid_arg "Packed.Vec.probabilities: qubit out of range"
    else begin
      match Hashtbl.find_opt memo t with
      | Some r -> r
      | None ->
        let r =
          if vvar p t = q then begin
            let e0 = v0 p t and e1 = v1 p t in
            let p0 = if e0 = 0 then 0.0 else Cx.abs2 (wf p (ew e0)) in
            let p1 = if e1 = 0 then 0.0 else Cx.abs2 (wf p (ew e1)) in
            (p0, p1)
          end
          else begin
            let part e =
              if e = 0 then (0.0, 0.0)
              else begin
                let w2 = Cx.abs2 (wf p (ew e)) in
                let s0, s1 = go (et e) in
                (w2 *. s0, w2 *. s1)
              end
            in
            let a0, a1 = part (v0 p t) and b0, b1 = part (v1 p t) in
            (a0 +. b0, a1 +. b1)
          end
        in
        Hashtbl.add memo t r;
        r
    end
  in
  if a = 0 then (0.0, 0.0)
  else begin
    let w2 = Cx.abs2 (wf p (ew a)) in
    let p0, p1 = go (et a) in
    (w2 *. p0, w2 *. p1)
  end

let project p a q outcome =
  let memo : (int, vedge) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    if t < 0 then invalid_arg "Packed.Vec.project: qubit out of range"
    else begin
      match Hashtbl.find_opt memo t with
      | Some e -> e
      | None ->
        let e =
          if vvar p t = q then
            if outcome = 0 then make_vnode p (vvar p t) (v0 p t) 0
            else make_vnode p (vvar p t) 0 (v1 p t)
          else begin
            let sub child =
              if child = 0 then 0
              else vscale p (wf p (ew child)) (go (et child))
            in
            make_vnode p (vvar p t) (sub (v0 p t)) (sub (v1 p t))
          end
        in
        Hashtbl.add memo t e;
        e
    end
  in
  if a = 0 then invalid_arg "Packed.Vec.project: zero state"
  else begin
    let projected = vscale p (wf p (ew a)) (go (et a)) in
    let nrm = vec_norm p projected in
    if nrm <= p.tol then
      invalid_arg "Packed.Vec.project: outcome has zero probability"
    else vscale p (Cx.of_float (1.0 /. nrm)) projected
  end

let amplitude p a ~n bits =
  let rec go e q acc =
    if e = 0 then Cx.zero
    else begin
      let acc = Cx.mul acc (wf p (ew e)) in
      let t = et e in
      if t < 0 then acc
      else begin
        let next = if bits (q - 1) then v1 p t else v0 p t in
        go next (q - 1) acc
      end
    end
  in
  go a n Cx.one

let vec_to_array p a ~n =
  let dim = 1 lsl n in
  let out = Array.make dim Cx.zero in
  for idx = 0 to dim - 1 do
    out.(idx) <- amplitude p a ~n (fun q -> (idx lsr q) land 1 = 1)
  done;
  out

let nonzero_paths p a ~n ?(cutoff = 1e-12) ~limit () =
  let results = ref [] in
  let count = ref 0 in
  let bits = Array.make n 0 in
  let rec go e q mass =
    if e <> 0 && mass > cutoff && !count < limit then begin
      let mass = mass *. Cx.abs2 (wf p (ew e)) in
      if mass > cutoff then begin
        let t = et e in
        if t < 0 then begin
          incr count;
          results := (Array.copy bits, mass) :: !results
        end
        else begin
          bits.(q - 1) <- 0;
          go (v0 p t) (q - 1) mass;
          bits.(q - 1) <- 1;
          go (v1 p t) (q - 1) mass
        end
      end
    end
  in
  go a n 1.0;
  List.rev !results

let vec_node_count p a =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if t >= 0 && not (Hashtbl.mem seen t) then begin
      Hashtbl.add seen t ();
      let e0 = v0 p t and e1 = v1 p t in
      if e0 <> 0 then go (et e0);
      if e1 <> 0 then go (et e1)
    end
  in
  if a <> 0 then go (et a);
  Hashtbl.length seen

(* -- matrix operations (ports of Mat) ----------------------------------- *)

let rec mat_add p a b =
  if a = 0 then b
  else if b = 0 then a
  else begin
    let a, b = if et a <= et b then (a, b) else (b, a) in
    let wa = wf p (ew a) and wb = wf p (ew b) in
    match (et a, et b) with
    | -1, -1 ->
      let s = Cx.add wa wb in
      if Cx.abs s <= p.tol *. Float.max (Cx.abs wa) (Cx.abs wb) then 0
      else mterminal p s
    | na, nb when na >= 0 && nb >= 0 ->
      let ratio = weight p (Cx.div wb wa) in
      let key = (na, nb, ratio) in
      let inner =
        match Cache.find p.madd key with
        | Some e -> e
        | None ->
          let rb = wf p ratio in
          let sum ea eb = mat_add p ea (mscale p rb eb) in
          let e =
            make_mnode p (mvar p na)
              (sum (m00 p na) (m00 p nb))
              (sum (m01 p na) (m01 p nb))
              (sum (m10 p na) (m10 p nb))
              (sum (m11 p na) (m11 p nb))
          in
          Cache.add p.madd key e;
          e
      in
      mscale p wa inner
    | _ -> invalid_arg "Packed.Mat.add: operands of different dimension"
  end

let rec mat_apply p m v =
  if m = 0 || v = 0 then 0
  else begin
    let w = Cx.mul (wf p (ew m)) (wf p (ew v)) in
    match (et m, et v) with
    | -1, -1 -> vterminal p w
    | mn, vn when mn >= 0 && vn >= 0 ->
      let key = (mn, vn) in
      let inner =
        match Cache.find p.mv key with
        | Some e -> e
        | None ->
          let r0 =
            vec_add p (mat_apply p (m00 p mn) (v0 p vn))
              (mat_apply p (m01 p mn) (v1 p vn))
          in
          let r1 =
            vec_add p (mat_apply p (m10 p mn) (v0 p vn))
              (mat_apply p (m11 p mn) (v1 p vn))
          in
          let e = make_vnode p (mvar p mn) r0 r1 in
          Cache.add p.mv key e;
          e
      in
      vscale p w inner
    | _ -> invalid_arg "Packed.Mat.apply: operands of different dimension"
  end

let msel p n i j =
  match (i, j) with
  | 0, 0 -> m00 p n
  | 0, 1 -> m01 p n
  | 1, 0 -> m10 p n
  | _ -> m11 p n

let rec mat_mul p a b =
  if a = 0 || b = 0 then 0
  else begin
    let w = Cx.mul (wf p (ew a)) (wf p (ew b)) in
    match (et a, et b) with
    | -1, -1 -> mterminal p w
    | na, nb when na >= 0 && nb >= 0 ->
      let key = (na, nb) in
      let inner =
        match Cache.find p.mm key with
        | Some e -> e
        | None ->
          let entry i j =
            mat_add p
              (mat_mul p (msel p na i 0) (msel p nb 0 j))
              (mat_mul p (msel p na i 1) (msel p nb 1 j))
          in
          let e =
            make_mnode p (mvar p na) (entry 0 0) (entry 0 1) (entry 1 0)
              (entry 1 1)
          in
          Cache.add p.mm key e;
          e
      in
      mscale p w inner
    | _ -> invalid_arg "Packed.Mat.mul: operands of different dimension"
  end

let rec mat_adjoint p a =
  if a = 0 then 0
  else begin
    let w = Cx.conj (wf p (ew a)) in
    let t = et a in
    if t < 0 then mterminal p w
    else begin
      let inner =
        match Cache.find p.adj t with
        | Some e -> e
        | None ->
          let e =
            make_mnode p (mvar p t) (mat_adjoint p (m00 p t))
              (mat_adjoint p (m10 p t))
              (mat_adjoint p (m01 p t))
              (mat_adjoint p (m11 p t))
          in
          Cache.add p.adj t e;
          e
      in
      mscale p w inner
    end
  end

let mat_trace p a ~n =
  let memo : (int, Cx.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go e levels =
    if e = 0 then Cx.zero
    else begin
      let t = et e in
      if t < 0 then wf p (ew e)
      else begin
        let sub =
          match Hashtbl.find_opt memo t with
          | Some z -> z
          | None ->
            let z =
              Cx.add (go (m00 p t) (levels - 1)) (go (m11 p t) (levels - 1))
            in
            Hashtbl.add memo t z;
            z
        in
        Cx.mul (wf p (ew e)) sub
      end
    end
  in
  go a n

let mat_entry p a ~n ~row ~col =
  let rec go e q acc =
    if e = 0 then Cx.zero
    else begin
      let acc = Cx.mul acc (wf p (ew e)) in
      let t = et e in
      if t < 0 then acc
      else begin
        let i = (row lsr (q - 1)) land 1 and j = (col lsr (q - 1)) land 1 in
        go (msel p t i j) (q - 1) acc
      end
    end
  in
  go a n Cx.one

let mat_to_array p a ~n =
  let dim = 1 lsl n in
  Array.init dim (fun row ->
    Array.init dim (fun col -> mat_entry p a ~n ~row ~col))

let mat_equal p a b =
  et a = et b && Cx.approx_eq ~tol:p.tol (wf p (ew a)) (wf p (ew b))

let mat_equal_up_to_phase p a b =
  et a = et b
  && Float.abs (Cx.abs (wf p (ew a)) -. Cx.abs (wf p (ew b))) <= p.tol

let mat_is_identity p a ~n ~up_to_phase =
  let id = ident p n in
  if up_to_phase then mat_equal_up_to_phase p a id else mat_equal p a id

let mat_node_count p a =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if t >= 0 && not (Hashtbl.mem seen t) then begin
      Hashtbl.add seen t ();
      let follow e = if e <> 0 then go (et e) in
      follow (m00 p t);
      follow (m01 p t);
      follow (m10 p t);
      follow (m11 p t)
    end
  in
  if a <> 0 then go (et a);
  Hashtbl.length seen

let mat_process_fidelity p a b ~n =
  let prod = mat_mul p (mat_adjoint p a) b in
  let tr = mat_trace p prod ~n in
  Cx.abs tr /. float_of_int (1 lsl n)

(* -- direct gate-application kernels ------------------------------------

   Ports of [Mat.kernel_apply_sig] / [Mat.kernel_mul_sig]: same opcode
   scheme, same cache-key layout, same paired recursions and diagonal
   fast path — the descent just reads flat int arrays instead of chasing
   node pointers.  See lib/dd/mat.ml for the full commentary. *)

let kernel_apply_sig p (s : gate_sig) ~n (v : vedge) =
  let sid = s.gs_id
  and target = s.gs_target
  and hi = s.gs_hi
  and lo = s.gs_lo
  and cmin = s.gs_cmin
  and u = s.gs_u in
  if n <= hi then invalid_arg "Packed.Mat.apply_gate: gate exceeds the register";
  M.incr m_kernel_calls;
  let kv = p.kv in
  let node q e0 e1 = make_vnode p q e0 e1 in
  let vsub e =
    if e = 0 then (0, 0)
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.apply_gate: state too shallow"
      else if ew e = 1 then (v0 p t, v1 p t)
      else begin
        let w = wf p (ew e) in
        (vscale p w (v0 p t), vscale p w (v1 p t))
      end
    end
  in
  let rec below2 x y =
    if x = 0 && y = 0 then (0, 0)
    else begin
      let lead, x, y =
        if x = 0 then (wf p (ew y), x, pack 1 (et y))
        else begin
          let wx = wf p (ew x) in
          let ratio = weight p (Cx.div (wf p (ew y)) wx) in
          let y = if ratio = 0 then 0 else pack ratio (et y) in
          (wx, pack 1 (et x), y)
        end
      in
      let xi = if x = 0 then -3 else et x in
      let key = ((sid lsl 4) lor 2, xi, et y, ew y) in
      let r0, r1 =
        match Cache.find kv key with
        | Some rs -> rs
        | None ->
          let q =
            let xt = et x and yt = et y in
            if xt >= 0 then vvar p xt else if yt >= 0 then vvar p yt else -1
          in
          let r0, r1 =
            if q < cmin then
              ( vec_add p (vscale p u.(0) x) (vscale p u.(1) y)
              , vec_add p (vscale p u.(2) x) (vscale p u.(3) y) )
            else begin
              let x0, x1 = vsub x
              and y0, y1 = vsub y in
              match sig_control_at s q with
              | None ->
                let a0, a1 = below2 x0 y0
                and b0, b1 = below2 x1 y1 in
                (node q a0 b0, node q a1 b1)
              | Some true ->
                let b0, b1 = below2 x1 y1 in
                (node q x0 b0, node q y0 b1)
              | Some false ->
                let a0, a1 = below2 x0 y0 in
                (node q a0 x1, node q a1 y1)
            end
          in
          Cache.add kv key (r0, r1);
          (r0, r1)
      in
      (vscale p lead r0, vscale p lead r1)
    end
  in
  let diag =
    Array.length u = 4 && Cx.is_zero ~tol:0.0 u.(1) && Cx.is_zero ~tol:0.0 u.(2)
  in
  let rec below_diag ~row e =
    if e = 0 then 0
    else begin
      let t = et e in
      if t < 0 then vscale p u.(3 * row) e
      else if vvar p t < cmin then vscale p u.(3 * row) e
      else begin
        let key = ((sid lsl 4) lor (8 + row), t, -2, -2) in
        let inner =
          match Cache.find kv key with
          | Some (r, _) -> r
          | None ->
            let q = vvar p t in
            let r =
              match sig_control_at s q with
              | None ->
                node q (below_diag ~row (v0 p t)) (below_diag ~row (v1 p t))
              | Some true -> node q (v0 p t) (below_diag ~row (v1 p t))
              | Some false -> node q (below_diag ~row (v0 p t)) (v1 p t)
            in
            Cache.add kv key (r, r);
            r
        in
        vscale p (wf p (ew e)) inner
      end
    end
  in
  let rec go e =
    if e = 0 then 0
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.apply_gate: state too shallow"
      else begin
        let key = (sid lsl 4, t, -2, -2) in
        let inner =
          match Cache.find kv key with
          | Some (r, _) -> r
          | None ->
            let q = vvar p t in
            let r =
              if q > target then
                match sig_control_at s q with
                | None -> node q (go (v0 p t)) (go (v1 p t))
                | Some true -> node q (v0 p t) (go (v1 p t))
                | Some false -> node q (go (v0 p t)) (v1 p t)
              else if cmin = max_int then
                node q
                  (vec_add p (vscale p u.(0) (v0 p t)) (vscale p u.(1) (v1 p t)))
                  (vec_add p (vscale p u.(2) (v0 p t)) (vscale p u.(3) (v1 p t)))
              else if diag then
                node q (below_diag ~row:0 (v0 p t)) (below_diag ~row:1 (v1 p t))
              else begin
                let r0, r1 = below2 (v0 p t) (v1 p t) in
                node q r0 r1
              end
            in
            Cache.add kv key (r, r);
            r
        in
        vscale p (wf p (ew e)) inner
      end
    end
  in
  let rec move2 ~put e =
    if e = 0 then (0, 0)
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.apply_swap: state too shallow"
      else begin
        let key = ((sid lsl 4) lor (4 + put), t, -2, -2) in
        let r0, r1 =
          match Cache.find kv key with
          | Some rs -> rs
          | None ->
            let q = vvar p t in
            let r0, r1 =
              if q > lo then begin
                let a0, a1 = move2 ~put (v0 p t)
                and b0, b1 = move2 ~put (v1 p t) in
                (node q a0 b0, node q a1 b1)
              end
              else begin
                let emit c = if put = 0 then node q c 0 else node q 0 c in
                (emit (v0 p t), emit (v1 p t))
              end
            in
            Cache.add kv key (r0, r1);
            (r0, r1)
        in
        let w = wf p (ew e) in
        (vscale p w r0, vscale p w r1)
      end
    end
  in
  let rec swap_go e =
    if e = 0 then 0
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.apply_swap: state too shallow"
      else begin
        let key = (sid lsl 4, t, -2, -2) in
        let inner =
          match Cache.find kv key with
          | Some (r, _) -> r
          | None ->
            let q = vvar p t in
            let r =
              if q > hi then node q (swap_go (v0 p t)) (swap_go (v1 p t))
              else begin
                let a0, a1 = move2 ~put:0 (v0 p t)
                and b0, b1 = move2 ~put:1 (v1 p t) in
                node q (vec_add p a0 b0) (vec_add p a1 b1)
              end
            in
            Cache.add kv key (r, r);
            r
        in
        vscale p (wf p (ew e)) inner
      end
    end
  in
  if s.gs_swap then swap_go v else go v

let kernel_mul_sig p (s : gate_sig) ~n ~left (m : medge) =
  let sid = s.gs_id
  and target = s.gs_target
  and hi = s.gs_hi
  and lo = s.gs_lo
  and cmin = s.gs_cmin
  and u = s.gs_u in
  if n <= hi then invalid_arg "Packed.Mat.mul_gate: gate exceeds the register";
  M.incr m_kernel_calls;
  let km = p.km in
  let node q a b c d = make_mnode p q a b c d in
  let side = if left then 0 else 1 in
  let coef k t = if left then u.((2 * k) + t) else Cx.conj u.((2 * k) + t) in
  let msub e =
    if e = 0 then (0, 0, 0, 0)
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.mul_gate: operand too shallow"
      else if ew e = 1 then (m00 p t, m01 p t, m10 p t, m11 p t)
      else begin
        let w = wf p (ew e) in
        ( mscale p w (m00 p t)
        , mscale p w (m01 p t)
        , mscale p w (m10 p t)
        , mscale p w (m11 p t) )
      end
    end
  in
  let rec below2 x y =
    if x = 0 && y = 0 then (0, 0)
    else begin
      let lead, x, y =
        if x = 0 then (wf p (ew y), x, pack 1 (et y))
        else begin
          let wx = wf p (ew x) in
          let ratio = weight p (Cx.div (wf p (ew y)) wx) in
          let y = if ratio = 0 then 0 else pack ratio (et y) in
          (wx, pack 1 (et x), y)
        end
      in
      let xi = if x = 0 then -3 else et x in
      let opcode = if left then 2 else 3 in
      let key = ((sid lsl 4) lor opcode, xi, et y, ew y) in
      let r0, r1 =
        match Cache.find km key with
        | Some rs -> rs
        | None ->
          let q =
            let xt = et x and yt = et y in
            if xt >= 0 then mvar p xt else if yt >= 0 then mvar p yt else -1
          in
          let r0, r1 =
            if q < cmin then
              ( mat_add p (mscale p (coef 0 0) x) (mscale p (coef 0 1) y)
              , mat_add p (mscale p (coef 1 0) x) (mscale p (coef 1 1) y) )
            else begin
              let x00, x01, x10, x11 = msub x
              and y00, y01, y10, y11 = msub y in
              match sig_control_at s q with
              | None ->
                let a0, a1 = below2 x00 y00
                and b0, b1 = below2 x01 y01
                and c0, c1 = below2 x10 y10
                and d0, d1 = below2 x11 y11 in
                (node q a0 b0 c0 d0, node q a1 b1 c1 d1)
              | Some true ->
                if left then begin
                  let c0, c1 = below2 x10 y10
                  and d0, d1 = below2 x11 y11 in
                  (node q x00 x01 c0 d0, node q y00 y01 c1 d1)
                end
                else begin
                  let b0, b1 = below2 x01 y01
                  and d0, d1 = below2 x11 y11 in
                  (node q x00 b0 x10 d0, node q y00 b1 y10 d1)
                end
              | Some false ->
                if left then begin
                  let a0, a1 = below2 x00 y00
                  and b0, b1 = below2 x01 y01 in
                  (node q a0 b0 x10 x11, node q a1 b1 y10 y11)
                end
                else begin
                  let a0, a1 = below2 x00 y00
                  and c0, c1 = below2 x10 y10 in
                  (node q a0 x01 c0 x11, node q a1 y01 c1 y11)
                end
            end
          in
          Cache.add km key (r0, r1);
          (r0, r1)
      in
      (mscale p lead r0, mscale p lead r1)
    end
  in
  let diag =
    Array.length u = 4 && Cx.is_zero ~tol:0.0 u.(1) && Cx.is_zero ~tol:0.0 u.(2)
  in
  let rec below_diag ~k e =
    if e = 0 then 0
    else begin
      let t = et e in
      if t < 0 then mscale p (coef k k) e
      else if mvar p t < cmin then mscale p (coef k k) e
      else begin
        let opcode = (if left then 8 else 10) + k in
        let key = ((sid lsl 4) lor opcode, t, -2, -2) in
        let inner =
          match Cache.find km key with
          | Some (r, _) -> r
          | None ->
            let q = mvar p t in
            let r =
              match sig_control_at s q with
              | None ->
                node q (below_diag ~k (m00 p t)) (below_diag ~k (m01 p t))
                  (below_diag ~k (m10 p t))
                  (below_diag ~k (m11 p t))
              | Some true ->
                if left then
                  node q (m00 p t) (m01 p t)
                    (below_diag ~k (m10 p t))
                    (below_diag ~k (m11 p t))
                else
                  node q (m00 p t)
                    (below_diag ~k (m01 p t))
                    (m10 p t)
                    (below_diag ~k (m11 p t))
              | Some false ->
                if left then
                  node q (below_diag ~k (m00 p t)) (below_diag ~k (m01 p t))
                    (m10 p t) (m11 p t)
                else
                  node q (below_diag ~k (m00 p t)) (m01 p t)
                    (below_diag ~k (m10 p t))
                    (m11 p t)
            in
            Cache.add km key (r, r);
            r
        in
        mscale p (wf p (ew e)) inner
      end
    end
  in
  let rec go e =
    if e = 0 then 0
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.mul_gate: operand too shallow"
      else begin
        let key = ((sid lsl 4) lor side, t, -2, -2) in
        let inner =
          match Cache.find km key with
          | Some (r, _) -> r
          | None ->
            let q = mvar p t in
            let r =
              if q > target then
                match sig_control_at s q with
                | None ->
                  node q (go (m00 p t)) (go (m01 p t)) (go (m10 p t))
                    (go (m11 p t))
                | Some true ->
                  if left then
                    node q (m00 p t) (m01 p t) (go (m10 p t)) (go (m11 p t))
                  else node q (m00 p t) (go (m01 p t)) (m10 p t) (go (m11 p t))
                | Some false ->
                  if left then
                    node q (go (m00 p t)) (go (m01 p t)) (m10 p t) (m11 p t)
                  else node q (go (m00 p t)) (m01 p t) (go (m10 p t)) (m11 p t)
              else begin
                let comb2 a b =
                  if cmin = max_int then
                    ( mat_add p (mscale p (coef 0 0) a) (mscale p (coef 0 1) b)
                    , mat_add p (mscale p (coef 1 0) a) (mscale p (coef 1 1) b) )
                  else if diag then (below_diag ~k:0 a, below_diag ~k:1 b)
                  else below2 a b
                in
                if left then begin
                  let a0, a1 = comb2 (m00 p t) (m10 p t)
                  and b0, b1 = comb2 (m01 p t) (m11 p t) in
                  node q a0 b0 a1 b1
                end
                else begin
                  let a0, a1 = comb2 (m00 p t) (m01 p t)
                  and b0, b1 = comb2 (m10 p t) (m11 p t) in
                  node q a0 a1 b0 b1
                end
              end
            in
            Cache.add km key (r, r);
            r
        in
        mscale p (wf p (ew e)) inner
      end
    end
  in
  let rec move2 ~put e =
    if e = 0 then (0, 0)
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.mul_swap: operand too shallow"
      else begin
        let base = if left then 4 else 6 in
        let key = ((sid lsl 4) lor (base + put), t, -2, -2) in
        let r0, r1 =
          match Cache.find km key with
          | Some rs -> rs
          | None ->
            let q = mvar p t in
            let r0, r1 =
              if q > lo then begin
                let a0, a1 = move2 ~put (m00 p t)
                and b0, b1 = move2 ~put (m01 p t)
                and c0, c1 = move2 ~put (m10 p t)
                and d0, d1 = move2 ~put (m11 p t) in
                (node q a0 b0 c0 d0, node q a1 b1 c1 d1)
              end
              else if left then begin
                let emit c0 c1 =
                  if put = 0 then node q c0 c1 0 0 else node q 0 0 c0 c1
                in
                (emit (m00 p t) (m01 p t), emit (m10 p t) (m11 p t))
              end
              else begin
                let emit c0 c1 =
                  if put = 0 then node q c0 0 c1 0 else node q 0 c0 0 c1
                in
                (emit (m00 p t) (m10 p t), emit (m01 p t) (m11 p t))
              end
            in
            Cache.add km key (r0, r1);
            (r0, r1)
        in
        let w = wf p (ew e) in
        (mscale p w r0, mscale p w r1)
      end
    end
  in
  let rec swap_go e =
    if e = 0 then 0
    else begin
      let t = et e in
      if t < 0 then invalid_arg "Packed.Mat.mul_swap: operand too shallow"
      else begin
        let key = ((sid lsl 4) lor side, t, -2, -2) in
        let inner =
          match Cache.find km key with
          | Some (r, _) -> r
          | None ->
            let q = mvar p t in
            let r =
              if q > hi then
                node q (swap_go (m00 p t)) (swap_go (m01 p t))
                  (swap_go (m10 p t))
                  (swap_go (m11 p t))
              else if left then begin
                let a0, a1 = move2 ~put:0 (m00 p t)
                and b0, b1 = move2 ~put:1 (m10 p t)
                and c0, c1 = move2 ~put:0 (m01 p t)
                and d0, d1 = move2 ~put:1 (m11 p t) in
                node q (mat_add p a0 b0) (mat_add p c0 d0) (mat_add p a1 b1)
                  (mat_add p c1 d1)
              end
              else begin
                let a0, a1 = move2 ~put:0 (m00 p t)
                and b0, b1 = move2 ~put:1 (m01 p t)
                and c0, c1 = move2 ~put:0 (m10 p t)
                and d0, d1 = move2 ~put:1 (m11 p t) in
                node q (mat_add p a0 b0) (mat_add p a1 b1) (mat_add p c0 d0)
                  (mat_add p c1 d1)
              end
            in
            Cache.add km key (r, r);
            r
        in
        mscale p (wf p (ew e)) inner
      end
    end
  in
  if s.gs_swap then swap_go m else go m

(* -- the Backend.S surface ---------------------------------------------- *)

module Pkg = struct
  type nonrec t = t

  let create = create
  let tol = tol
  let set_domain_guards = Backend.set_domain_guards
  let ident = ident
  let basis_state = basis_state
  let zero_state = zero_state
  let product_state = product_state
  let gate = gate
  let gate_sig = gate_sig
  let swap_sig = swap_sig
  let sig_id = sig_id
  let root_v = root_v
  let root_m = root_m
  let vroot_edge = vroot_edge
  let mroot_edge = mroot_edge
  let set_vroot = set_vroot
  let set_mroot = set_mroot
  let release_v = release_v
  let release_m = release_m
  let with_root_v = with_root_v
  let with_root_m = with_root_m
  let live_roots = live_roots
  let live_nodes = live_nodes
  let compact = compact
  let checkpoint = checkpoint
  let set_safepoint_hook = set_safepoint_hook
  let stats = stats
end

module Vec = struct
  let add = vec_add
  let inner_product = inner_product
  let fidelity = vec_fidelity
  let norm = vec_norm
  let probabilities = probabilities
  let project = project
  let amplitude = amplitude
  let to_array = vec_to_array
  let nonzero_paths = nonzero_paths
  let node_count = vec_node_count
end

module Mat = struct
  let add = mat_add
  let apply = mat_apply
  let mul = mat_mul
  let adjoint = mat_adjoint

  let apply_gate p ~n ~controls ~target u v =
    let s = gate_sig p ~controls ~target u in
    Obs.Span.with_ "apply.kernel.vec" (fun () -> kernel_apply_sig p s ~n v)

  let apply_swap p ~n a b v =
    let s = swap_sig p a b in
    Obs.Span.with_ "apply.kernel.vec" (fun () -> kernel_apply_sig p s ~n v)

  let mul_gate_left p ~n ~controls ~target u m =
    let s = gate_sig p ~controls ~target u in
    Obs.Span.with_ "apply.kernel.left" (fun () ->
      kernel_mul_sig p s ~n ~left:true m)

  let mul_gate_right p ~n ~controls ~target u m =
    let s = gate_sig p ~controls ~target u in
    Obs.Span.with_ "apply.kernel.right" (fun () ->
      kernel_mul_sig p s ~n ~left:false m)

  let mul_swap_left p ~n a b m =
    let s = swap_sig p a b in
    Obs.Span.with_ "apply.kernel.left" (fun () ->
      kernel_mul_sig p s ~n ~left:true m)

  let mul_swap_right p ~n a b m =
    let s = swap_sig p a b in
    Obs.Span.with_ "apply.kernel.right" (fun () ->
      kernel_mul_sig p s ~n ~left:false m)

  let trace = mat_trace
  let to_array = mat_to_array
  let equal = mat_equal
  let equal_up_to_phase = mat_equal_up_to_phase
  let is_identity = mat_is_identity
  let process_fidelity = mat_process_fidelity
  let node_count = mat_node_count
end

let vedge_is_zero (_ : pkg) e = e = 0
let medge_is_zero (_ : pkg) e = e = 0
let vedge_weight p e = wf p (ew e)
let medge_weight p e = wf p (ew e)

let vedge_view p e =
  let t = et e in
  if t < 0 then None
  else
    Some
      { Backend.nv_id = t
      ; nv_var = vvar p t
      ; nv_edges = [| v0 p t; v1 p t |]
      }

let medge_view p e =
  let t = et e in
  if t < 0 then None
  else
    Some
      { Backend.nv_id = t
      ; nv_var = mvar p t
      ; nv_edges = [| m00 p t; m01 p t; m10 p t; m11 p t |]
      }
