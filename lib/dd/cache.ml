module M = Obs.Metrics

(* A bounded compute cache with second-chance (clock) eviction.

   Entries carry a reference bit that is set on every hit.  When the cache
   is full, candidates are popped from a FIFO of insertion order: an entry
   whose bit is set gets a second chance (bit cleared, re-queued), the
   first entry found with a clear bit is evicted.  One full rotation clears
   every bit, so an eviction scan terminates after at most 2 * length
   steps and in practice after one or two.

   The queue holds exactly the table's keys (entries leave it only by being
   evicted or by [clear]), so no stale-entry bookkeeping is needed.  The
   reference bit is shared between the queue and the table entry: replacing
   a key's value keeps its queue position and bit. *)

type ('k, 'v) t =
  { tbl : ('k, 'v * bool ref) Hashtbl.t
  ; queue : ('k * bool ref) Queue.t
  ; capacity : int (* negative: unbounded; 0: disabled (never stores) *)
  ; m_hits : M.counter
  ; m_misses : M.counter
  ; m_evictions : M.counter
  ; g_peak : M.gauge
  }

let create ?(capacity = -1) ?(prefix = "dd.cache.") name =
  let initial = if capacity > 0 then max 16 (min capacity 1024) else 1024 in
  { tbl = Hashtbl.create initial
  ; queue = Queue.create ()
  ; capacity
  ; m_hits = M.counter (prefix ^ name ^ ".hits")
  ; m_misses = M.counter (prefix ^ name ^ ".misses")
  ; m_evictions = M.counter (prefix ^ name ^ ".evictions")
  ; g_peak = M.gauge (prefix ^ name ^ ".peak")
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some (v, bit) ->
    M.incr t.m_hits;
    bit := true;
    Some v
  | None ->
    M.incr t.m_misses;
    None

let evict_one t =
  let rec scan () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some ((key, bit) as entry) ->
      if !bit then begin
        bit := false;
        Queue.add entry t.queue;
        scan ()
      end
      else begin
        Hashtbl.remove t.tbl key;
        M.incr t.m_evictions
      end
  in
  scan ()

let add t key v =
  if t.capacity <> 0 then begin
    match Hashtbl.find_opt t.tbl key with
    | Some (_, bit) ->
      (* a re-computed key replaces the old binding instead of shadowing it
         (Hashtbl.add would accumulate duplicates) *)
      bit := true;
      Hashtbl.replace t.tbl key (v, bit)
    | None ->
      if t.capacity > 0 && Hashtbl.length t.tbl >= t.capacity then evict_one t;
      let bit = ref false in
      Hashtbl.replace t.tbl key (v, bit);
      Queue.add (key, bit) t.queue;
      M.observe t.g_peak (Hashtbl.length t.tbl)
  end

let clear t =
  Hashtbl.reset t.tbl;
  Queue.clear t.queue
