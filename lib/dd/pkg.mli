(** Decision-diagram package: owns the complex table, the unique tables for
    vector and matrix nodes, and all operation caches.

    A package is the unit of state: DDs created in one package must never be
    mixed with those of another.  Creating a package is cheap, so
    independent tasks (tests, extraction branches run in parallel) should
    each use their own.

    A package is also {e single-domain} state: it carries no internal
    synchronization, so it must only ever be used by the domain that
    created it.  Entry points enforce this with a cheap owner check (see
    {!Cross_domain_use}); parallel drivers give every worker domain its
    own package. *)

open Types

type t

(** {1 Domain ownership} *)

(** Raised when a package is used from a domain other than the one that
    created it — misuse that would otherwise corrupt the unique tables
    silently.  The payload names both domain ids.  The exception is shared
    by every backend (it is {!Backend.Cross_domain_use}). *)
exception Cross_domain_use of string

(** [set_domain_guards b] enables or disables the owner check (default
    enabled; the check costs one atomic load and an integer compare on the
    node-construction path, so disabling it is a last-resort
    micro-optimization, not a way to share packages). *)
val set_domain_guards : bool -> unit

(** {1 Memory configuration} *)

(** Per-cache capacities for the operation caches.  Negative values
    mean unbounded, [0] disables a cache (every lookup misses), positive
    values bound the entry count with second-chance eviction ({!Cache}).
    [kernel] bounds each of the two gate-kernel caches (vector and matrix;
    see {!Mat.apply_gate}), which report jointly under [dd.kernel.*].
    The record is {!Backend.caps}: one configuration type serves every
    backend. *)
type caps = Backend.caps =
  { vadd : int
  ; madd : int
  ; mv : int
  ; mm : int
  ; ip : int
  ; adj : int
  ; kernel : int
  }

val caps_unbounded : caps

(** [caps_uniform n] applies the same capacity to every cache. *)
val caps_uniform : int -> caps

type config = Backend.config =
  { caps : caps
  ; gc_threshold : int option
        (** run {!compact} automatically (at consumer {!checkpoint}s) once
            the unique tables have grown by this many nodes since the last
            sweep; [None] (the default) disables auto-GC *)
  }

(** Unbounded caches, no auto-GC — the historical behaviour. *)
val default_config : config

(** [create ?tol ?config ()] makes a fresh, empty package.  [tol] is the
    numerical tolerance used for interning complex weights (default
    [1e-10]); [config] bounds the operation caches and enables automatic
    compaction (default {!default_config}).  Every creation counts under
    [dd.pkg.created] — the verdict cache's warm-path acceptance check
    asserts this stays flat across cached runs. *)
val create : ?tol:float -> ?config:config -> unit -> t

val tol : t -> float
val ctab : t -> Cxnum.Cx_table.t

(** {1 Weights} *)

(** [weight p z] interns an amplitude. *)
val weight : t -> Cxnum.Cx.t -> weight

val w_zero : weight
val w_one : weight

(** {1 Edges and nodes} *)

(** The canonical zero vector / matrix of any dimension. *)
val vzero : vedge

val mzero : medge

(** Scalar edges to the terminal (0-qubit vector / matrix). *)
val vterminal : t -> Cxnum.Cx.t -> vedge

val mterminal : t -> Cxnum.Cx.t -> medge

(** [make_vnode p var e0 e1] builds the normalized, hash-consed node with the
    given successors and returns the edge to it (carrying the normalization
    factor).  Successor edges must be rooted at level [var - 1] (or be zero
    stubs).  Normalization: successor weights are divided by their 2-norm and
    by the phase of the first non-zero weight, so that the node's weights
    have unit norm and the first non-zero one is real positive. *)
val make_vnode : t -> int -> vedge -> vedge -> vedge

(** [make_mnode p var e00 e01 e10 e11] is the matrix analogue.
    Normalization divides by the largest-magnitude weight (ties broken by
    lowest index), so the largest weight becomes exactly 1. *)
val make_mnode : t -> int -> medge -> medge -> medge -> medge -> medge

(** [vscale p z e] multiplies an edge weight by [z]. *)
val vscale : t -> Cxnum.Cx.t -> vedge -> vedge

val mscale : t -> Cxnum.Cx.t -> medge -> medge

(** {1 Common diagrams} *)

(** [ident p n] is the identity matrix on [n] qubits (cached). *)
val ident : t -> int -> medge

(** [basis_state p n bits] is the computational basis state |b_{n-1} ... b_0>
    where [bits i] gives the value of qubit [i]. *)
val basis_state : t -> int -> (int -> bool) -> vedge

(** [zero_state p n] is |0...0> on [n] qubits. *)
val zero_state : t -> int -> vedge

(** [product_state p amps] builds the product state whose qubit [i] is
    [fst amps.(i)] |0> + [snd amps.(i)] |1>.  Amplitudes need not be
    normalized; the result is. *)
val product_state : t -> (Cxnum.Cx.t * Cxnum.Cx.t) array -> vedge

(** [gate p ~n ~controls ~target u] builds the matrix DD of the [n]-qubit
    operator applying the single-qubit matrix [u] (row-major
    [|u00; u01; u10; u11|]) to [target] under the given controls.  A control
    [(q, true)] activates on |1>, [(q, false)] on |0>. *)
val gate :
  t -> n:int -> controls:(int * bool) list -> target:int -> Cxnum.Cx.t array -> medge

(** {1 Gate signatures}

    Hash-consed descriptions of a single gate application — the 2x2 matrix
    entries, controls and target (or the two wires of a swap) — giving the
    direct application kernels ({!Mat.apply_gate} and friends) one small
    integer id per distinct gate to key their caches on.  The record is
    exposed read-only for {!Mat}; construct via {!gate_sig}/{!swap_sig}. *)

type gate_sig = private
  { gs_id : int  (** monotonic per package; never reused, even across GC *)
  ; gs_u : Cxnum.Cx.t array  (** row-major 2x2 entries; [[||]] for a swap *)
  ; gs_swap : bool
  ; gs_target : int  (** unary target; for a swap, the higher wire *)
  ; gs_target2 : int  (** swap: the lower wire; [-1] otherwise *)
  ; gs_hi : int  (** highest involved qubit (controls included) *)
  ; gs_lo : int  (** lowest involved qubit *)
  ; gs_cmin : int  (** lowest control below the target; [max_int] if none *)
  ; gs_control_at : bool option array  (** indexed by qubit, length [gs_hi+1] *)
  }

(** [gate_sig p ~controls ~target u] interns the signature of applying the
    2x2 matrix [u] (row-major, 4 entries) to [target] under [controls].
    Raises [Invalid_argument] on malformed wires.

    Interning is two-tier: a per-package table keyed on interned weight
    ids (fast path), backed by a process-wide read-mostly blueprint tier
    ({!Cache_store.Shared}, metrics [dd.sig.shared.*]) keyed on raw float
    bits, so concurrent packages verifying the same workload derive the
    wire extents and control table once.  Blueprints are immutable after
    publication, which keeps the {!Cross_domain_use} ownership guarantee:
    no mutable package state ever crosses domains. *)
val gate_sig :
  t -> controls:(int * bool) list -> target:int -> Cxnum.Cx.t array -> gate_sig

(** [swap_sig p a b] interns the signature of the SWAP of wires [a] and
    [b] ([a <> b]). *)
val swap_sig : t -> int -> int -> gate_sig

(** [sig_control_at s q] is the control polarity of [s] at qubit [q], if
    any (total: qubits above [gs_hi] answer [None]). *)
val sig_control_at : gate_sig -> int -> bool option

(** {1 Caches}

    Operation caches used by {!Vec} and {!Mat}; exposed for them only. *)

(** Kernel cache keys: signature id and an opcode naming the kernel's
    internal recursion packed as [(sid lsl 3) lor opcode], then operand
    node/weight ids (padded with [-2]).  Values are edge pairs — paired
    recursions store both result slices of one shared descent,
    single-valued ones duplicate their edge. *)
type kkey = int * int * int * int

val vadd_cache : t -> (int * int * int, vedge) Cache.t
val madd_cache : t -> (int * int * int, medge) Cache.t
val mv_cache : t -> (int * int, vedge) Cache.t
val mm_cache : t -> (int * int, medge) Cache.t
val ip_cache : t -> (int * int, Cxnum.Cx.t) Cache.t
val adj_cache : t -> (int, medge) Cache.t
val kernel_v_cache : t -> (kkey, vedge * vedge) Cache.t
val kernel_m_cache : t -> (kkey, medge * medge) Cache.t

(** Drop all operation caches (keeps the unique tables). *)
val clear_caches : t -> unit

(** {1 Roots and garbage collection}

    The package tracks its live data through registered roots: mutable
    cells holding the edges that must survive a sweep.  Consumers root
    every intermediate result that must outlive a potential {!compact} and
    advance the cell (with {!set_vroot}/{!set_mroot}) as the computation
    progresses. *)

type vroot
type mroot

(** [root_v p e] registers [e] as a live vector root; {!release_v} (or the
    {!with_root_v} bracket) unregisters it. *)
val root_v : t -> vedge -> vroot

val root_m : t -> medge -> mroot
val vroot_edge : vroot -> vedge
val mroot_edge : mroot -> medge

(** [set_vroot r e] advances the root to a new edge (the previous edge
    becomes collectable unless rooted elsewhere). *)
val set_vroot : vroot -> vedge -> unit

val set_mroot : mroot -> medge -> unit
val release_v : t -> vroot -> unit
val release_m : t -> mroot -> unit

(** [with_root_v p e f] registers [e], runs [f] on the handle, and releases
    it even on exceptions.  The edge held by the handle when [f] returns is
    only guaranteed to stay canonical until the next sweep; re-root it if
    it must survive longer. *)
val with_root_v : t -> vedge -> (vroot -> 'a) -> 'a

val with_root_m : t -> medge -> (mroot -> 'a) -> 'a

(** Number of currently registered roots / live unique-table nodes. *)
val live_roots : t -> int

val live_nodes : t -> int

(** [compact p] garbage-collects the package: only nodes reachable from the
    registered roots (plus the cached identities) survive, all operation
    caches are dropped, and the complex table is rebuilt from the weights
    actually reachable — so long-lived packages no longer leak interned
    weights.  Edges held in live roots stay valid; any other edge must no
    longer be used with this package. *)
val compact : t -> unit

(** [checkpoint p] fires the domain's safepoint hook (if any), then runs
    {!compact} if the growth policy asks for it: the unique tables grew
    past [config.gc_threshold] nodes since the last sweep.  Consumers call
    this at safepoints — between DD operations, when everything live is
    rooted.  A no-op (one comparison) otherwise. *)
val checkpoint : t -> unit

(** [set_safepoint_hook h] installs (or, with [None], removes) the calling
    domain's safepoint hook: a callback fired at every {!checkpoint} on
    any package used by this domain, before the auto-GC policy runs.
    Safepoints are exactly the places where consumers guarantee all live
    edges are rooted and no DD operation is in flight, which makes the
    hook the supported cooperative-cancellation point: raising from it
    (per-job wall-clock deadline, node-budget overrun) unwinds cleanly
    through the root brackets.  The hook is domain-local, so a worker's
    deadline never fires in another worker. *)
val set_safepoint_hook : (t -> unit) option -> unit

(** {1 Statistics} *)

type stats = Backend.stats =
  { vector_nodes : int  (** live vector nodes in the unique table *)
  ; matrix_nodes : int  (** live matrix nodes in the unique table *)
  ; weights : int  (** interned complex values *)
  }

val stats : t -> stats
