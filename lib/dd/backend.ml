(* The abstract DD-backend boundary.

   Everything consumers use of a decision-diagram package — lifecycle,
   rooted edges, safepoints/compaction, the arithmetic and gate-kernel
   surface of [Vec]/[Mat], gate signatures, cache/GC configuration — is
   captured by {!S}.  The historical hash-consed package is the reference
   implementation ({!Classic}); {!Packed} stores nodes in int-indexed
   growable arrays.  Consumers functorize over [S] and the CLI picks an
   implementation at runtime through {!Registry}, so adding a backend
   never touches callers.

   The types below ([caps], [config], [stats]) are deliberately concrete
   and shared by every backend: a [Dd.Pkg.config] built by the CLI flows
   into any backend unchanged. *)

module Cx = Cxnum.Cx

(* Per-cache capacities: negative means unbounded, 0 disables the cache
   (every lookup misses), positive bounds the entry count. *)
type caps =
  { vadd : int
  ; madd : int
  ; mv : int
  ; mm : int
  ; ip : int
  ; adj : int
  ; kernel : int
  }

let caps_unbounded =
  { vadd = -1; madd = -1; mv = -1; mm = -1; ip = -1; adj = -1; kernel = -1 }

let caps_uniform n =
  { vadd = n; madd = n; mv = n; mm = n; ip = n; adj = n; kernel = n }

type config =
  { caps : caps
  ; gc_threshold : int option
        (* automatic compaction once the unique tables have grown by this
           many nodes since the last sweep; [None] disables auto-GC *)
  }

let default_config = { caps = caps_unbounded; gc_threshold = None }

type stats =
  { vector_nodes : int
  ; matrix_nodes : int
  ; weights : int
  }

(* A package is single-domain state: using one from a domain other than
   its creator would corrupt its tables silently, so entry points carry a
   cheap owner check that turns misuse into a loud [Cross_domain_use].
   The exception and the kill switch are process-wide and shared by every
   backend. *)
exception Cross_domain_use of string

let domain_guards = Atomic.make true
let set_domain_guards b = Atomic.set domain_guards b
let guards_enabled () = Atomic.get domain_guards

(* Structural node view used by backend-generic traversals (the DOT
   renderer, debug dumps): node identity, its variable, and the successor
   edges — two for vectors, four row-major for matrices. *)
type 'edge node_view =
  { nv_id : int
  ; nv_var : int
  ; nv_edges : 'edge array
  }

(* -- shared gate-signature blueprints ----------------------------------

   Process-wide tier for the derived, package-independent part of a gate
   signature (wire extents and the control lookup array, plus the matrix
   itself), keyed on raw float bits rather than interned weight ids, so
   concurrent packages — of any backend — checking the same workload
   compute it once.  Blueprints are frozen after publish, which is what
   {!Cache_store.Shared} requires and keeps the domain-ownership guard
   intact: mutable package state never crosses domains, only these
   immutable derivations do. *)
type sig_blueprint =
  { b_u : Cx.t array
  ; b_hi : int
  ; b_lo : int
  ; b_cmin : int
  ; b_control_at : bool option array
  }

let sig_share : (int * (int * bool) list * int64 list, sig_blueprint) Cache_store.Shared.t =
  Cache_store.Shared.create ~metrics:"dd.sig.shared" ()

let shared_sig_key ~controls ~target u =
  let bits =
    Array.to_list u
    |> List.concat_map (fun (z : Cx.t) ->
           [ Int64.bits_of_float z.re; Int64.bits_of_float z.im ])
  in
  (target, controls, bits)

(* [controls] must already be sorted ([List.sort_uniq compare]). *)
let shared_blueprint ~controls ~target u =
  let skey = shared_sig_key ~controls ~target u in
  match Cache_store.Shared.find sig_share skey with
  | Some bp -> bp
  | None ->
    let involved = target :: List.map fst controls in
    let hi = List.fold_left max target involved in
    let lo = List.fold_left min target involved in
    let cmin =
      List.fold_left
        (fun acc (q, _) -> if q < target then min acc q else acc)
        max_int controls
    in
    let control_at = Array.make (hi + 1) None in
    List.iter (fun (q, pos) -> control_at.(q) <- Some pos) controls;
    let bp = { b_u = u; b_hi = hi; b_lo = lo; b_cmin = cmin; b_control_at = control_at } in
    Cache_store.Shared.publish sig_share skey bp;
    bp

(* -- the backend signature --------------------------------------------- *)

module type S = sig
  (* registry name, e.g. ["classic"] or ["packed"] *)
  val name : string

  type pkg
  type vedge
  type medge
  type vroot
  type mroot
  type gate_sig

  module Pkg : sig
    type t = pkg

    val create : ?tol:float -> ?config:config -> unit -> t
    val tol : t -> float
    val set_domain_guards : bool -> unit

    (* constructions *)
    val ident : t -> int -> medge
    val basis_state : t -> int -> (int -> bool) -> vedge
    val zero_state : t -> int -> vedge
    val product_state : t -> (Cx.t * Cx.t) array -> vedge

    val gate :
      t -> n:int -> controls:(int * bool) list -> target:int -> Cx.t array -> medge

    (* hash-consed gate signatures (kernel cache keys) *)
    val gate_sig :
      t -> controls:(int * bool) list -> target:int -> Cx.t array -> gate_sig

    val swap_sig : t -> int -> int -> gate_sig
    val sig_id : gate_sig -> int

    (* rooted edges: the reachability frontier for [compact] *)
    val root_v : t -> vedge -> vroot
    val root_m : t -> medge -> mroot
    val vroot_edge : vroot -> vedge
    val mroot_edge : mroot -> medge
    val set_vroot : vroot -> vedge -> unit
    val set_mroot : mroot -> medge -> unit
    val release_v : t -> vroot -> unit
    val release_m : t -> mroot -> unit
    val with_root_v : t -> vedge -> (vroot -> 'a) -> 'a
    val with_root_m : t -> medge -> (mroot -> 'a) -> 'a
    val live_roots : t -> int
    val live_nodes : t -> int

    (* memory management *)
    val compact : t -> unit
    val checkpoint : t -> unit
    val set_safepoint_hook : (t -> unit) option -> unit
    val stats : t -> stats
  end

  module Vec : sig
    val add : pkg -> vedge -> vedge -> vedge
    val inner_product : pkg -> vedge -> vedge -> Cx.t
    val fidelity : pkg -> vedge -> vedge -> float
    val norm : pkg -> vedge -> float
    val probabilities : pkg -> vedge -> int -> float * float
    val project : pkg -> vedge -> int -> int -> vedge
    val amplitude : pkg -> vedge -> n:int -> (int -> bool) -> Cx.t
    val to_array : pkg -> vedge -> n:int -> Cx.t array

    val nonzero_paths :
      pkg -> vedge -> n:int -> ?cutoff:float -> limit:int -> unit -> (int array * float) list

    val node_count : pkg -> vedge -> int
  end

  module Mat : sig
    val add : pkg -> medge -> medge -> medge
    val apply : pkg -> medge -> vedge -> vedge
    val mul : pkg -> medge -> medge -> medge
    val adjoint : pkg -> medge -> medge

    (* direct gate-application kernels *)
    val apply_gate :
      pkg -> n:int -> controls:(int * bool) list -> target:int -> Cx.t array
      -> vedge -> vedge

    val apply_swap : pkg -> n:int -> int -> int -> vedge -> vedge

    val mul_gate_left :
      pkg -> n:int -> controls:(int * bool) list -> target:int -> Cx.t array
      -> medge -> medge

    val mul_gate_right :
      pkg -> n:int -> controls:(int * bool) list -> target:int -> Cx.t array
      -> medge -> medge

    val mul_swap_left : pkg -> n:int -> int -> int -> medge -> medge
    val mul_swap_right : pkg -> n:int -> int -> int -> medge -> medge
    val trace : pkg -> medge -> n:int -> Cx.t
    val to_array : pkg -> medge -> n:int -> Cx.t array array
    val equal : pkg -> medge -> medge -> bool
    val equal_up_to_phase : pkg -> medge -> medge -> bool
    val is_identity : pkg -> medge -> n:int -> up_to_phase:bool -> bool
    val process_fidelity : pkg -> medge -> medge -> n:int -> float
    val node_count : pkg -> medge -> int
  end

  (* structural views for backend-generic traversals (DOT, debug) *)
  val vedge_is_zero : pkg -> vedge -> bool
  val medge_is_zero : pkg -> medge -> bool
  val vedge_weight : pkg -> vedge -> Cx.t
  val medge_weight : pkg -> medge -> Cx.t
  val vedge_view : pkg -> vedge -> vedge node_view option
  val medge_view : pkg -> medge -> medge node_view option
end
