(* The reference backend: the historical hash-consed package ({!Pkg},
   {!Vec}, {!Mat}) presented through the {!Backend.S} boundary.  Pure
   re-export — the only additions are the signatures' pkg-taking
   [node_count] wrappers and the structural views. *)

module Ct = Cxnum.Cx_table

let name = "classic"

type pkg = Pkg.t
type vedge = Types.vedge
type medge = Types.medge
type vroot = Pkg.vroot
type mroot = Pkg.mroot
type gate_sig = Pkg.gate_sig

module Pkg = struct
  include Pkg

  let sig_id (s : gate_sig) = s.gs_id
end

module Vec = struct
  include Vec

  let node_count (_ : pkg) e = Vec.node_count e
end

module Mat = struct
  include Mat

  let node_count (_ : pkg) e = Mat.node_count e
end

let vedge_is_zero (_ : pkg) e = Types.vedge_is_zero e
let medge_is_zero (_ : pkg) e = Types.medge_is_zero e
let vedge_weight (_ : pkg) (e : vedge) = Ct.to_cx e.Types.vw
let medge_weight (_ : pkg) (e : medge) = Ct.to_cx e.Types.mw

let vedge_view (_ : pkg) (e : vedge) =
  match e.Types.vt with
  | None -> None
  | Some n ->
    Some
      { Backend.nv_id = n.Types.vid
      ; nv_var = n.Types.vvar
      ; nv_edges = [| n.Types.v0; n.Types.v1 |]
      }

let medge_view (_ : pkg) (e : medge) =
  match e.Types.mt with
  | None -> None
  | Some n ->
    Some
      { Backend.nv_id = n.Types.mid
      ; nv_var = n.Types.mvar
      ; nv_edges = [| n.Types.m00; n.Types.m01; n.Types.m10; n.Types.m11 |]
      }
