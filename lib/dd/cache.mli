(** Bounded compute caches for the DD package.

    Every operation cache ({!Vec.add}, {!Mat.apply}, ...) used to be a raw,
    unbounded [Hashtbl]; this module replaces them with a capacity-bounded
    map using second-chance (clock) eviction: each entry carries a
    reference bit set on hit, and the eviction scan gives referenced
    entries one more round before dropping them.  Hits, misses, evictions
    and the peak size are reported through {!Obs.Metrics} under
    [dd.cache.<name>.{hits,misses,evictions,peak}].

    Insertions use replace semantics: re-computing a key overwrites the old
    binding rather than shadowing it, so the cache never holds duplicate
    bindings for a key. *)

type ('k, 'v) t

(** [create ?capacity ?prefix name] makes a cache publishing metrics under
    [<prefix><name>.*] ([prefix] defaults to ["dd.cache."]; the gate
    kernels use ["dd."] so their two caches share the [dd.kernel.*]
    counters).  A negative [capacity] (the default) means unbounded; [0]
    disables storage entirely (every lookup misses); a positive value
    bounds the entry count, evicting on overflow. *)
val create : ?capacity:int -> ?prefix:string -> string -> ('k, 'v) t

(** [find t k] looks [k] up, counting a hit or a miss and marking the entry
    as recently used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] binds [k] to [v], replacing any existing binding; evicts an
    old entry first when the cache is at capacity.  A no-op at capacity
    [0]. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** Drop every entry (capacity and counters are kept). *)
val clear : ('k, 'v) t -> unit

(** Current number of entries — never exceeds a positive capacity. *)
val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int
