(** Graphviz export of decision diagrams, for debugging and documentation.

    Backend-generic: {!Make} renders any {!Backend.S} implementation via
    its structural views.  The unfunctorized values are the {!Classic}
    instance. *)

module Make (B : Backend.S) : sig
  (** [vector p ppf e] prints a DOT digraph of the vector DD rooted at
      [e]. *)
  val vector : B.pkg -> Format.formatter -> B.vedge -> unit

  (** [matrix p ppf e] prints a DOT digraph of the matrix DD rooted at
      [e]. *)
  val matrix : B.pkg -> Format.formatter -> B.medge -> unit

  (** [vector_to_file p path e] and [matrix_to_file p path e] write the
      DOT text to [path]. *)
  val vector_to_file : B.pkg -> string -> B.vedge -> unit

  val matrix_to_file : B.pkg -> string -> B.medge -> unit
end

val vector : Pkg.t -> Format.formatter -> Types.vedge -> unit
val matrix : Pkg.t -> Format.formatter -> Types.medge -> unit
val vector_to_file : Pkg.t -> string -> Types.vedge -> unit
val matrix_to_file : Pkg.t -> string -> Types.medge -> unit
