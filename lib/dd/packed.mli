(** The packed-array {!Backend.S} implementation: nodes in int-indexed
    growable arrays (no per-node boxing), complex weights in unboxed
    float-pair arrays, edges packed into single ints.  Same semantics,
    normalization and tolerances as {!Classic} — the two backends build
    isomorphic DDs and produce bit-identical verdicts — with a flat,
    cache-local layout on the kernel descent paths.

    Edge and package types are abstract: packed DDs are only ever driven
    through the signature (directly or via the {!Registry}). *)

include Backend.S
