open Types
module Cx = Cxnum.Cx
module Ct = Cxnum.Cx_table

let wcx (w : weight) = Ct.to_cx w

(* compute-cache hit/miss/eviction counters live in {!Cache} *)

(* Addition is cached on (node a, node b, interned ratio w_b / w_a): the sum
   w_a * A + w_b * B equals w_a * (A + (w_b / w_a) * B), and the inner sum
   only depends on the two nodes and the ratio.  Commutativity is exploited
   by ordering the operands by node id. *)
let rec add p (a : vedge) (b : vedge) =
  if vedge_is_zero a then b
  else if vedge_is_zero b then a
  else begin
    let a, b = if vnode_id a.vt <= vnode_id b.vt then (a, b) else (b, a) in
    let wa = wcx a.vw and wb = wcx b.vw in
    match (a.vt, b.vt) with
    | None, None ->
      (* cancellation residue is tiny relative to the operands, not in
         absolute terms — test at the operands' scale *)
      let s = Cx.add wa wb in
      if Cx.abs s <= Pkg.tol p *. Float.max (Cx.abs wa) (Cx.abs wb) then Pkg.vzero
      else Pkg.vterminal p s
    | Some na, Some nb ->
      let ratio = Pkg.weight p (Cx.div wb wa) in
      let key = (na.vid, nb.vid, ratio.id) in
      let cache = Pkg.vadd_cache p in
      let inner =
        match Cache.find cache key with
        | Some e -> e
        | None ->
          let rb = wcx ratio in
          let e0 = add p na.v0 (Pkg.vscale p rb nb.v0) in
          let e1 = add p na.v1 (Pkg.vscale p rb nb.v1) in
          let e = Pkg.make_vnode p na.vvar e0 e1 in
          Cache.add cache key e;
          e
      in
      Pkg.vscale p wa inner
    | _ -> invalid_arg "Vec.add: operands of different dimension"
  end

let rec inner_product_nodes p na nb =
  match (na, nb) with
  | None, None -> Cx.one
  | Some a, Some b ->
    let key = (a.vid, b.vid) in
    let cache = Pkg.ip_cache p in
    (match Cache.find cache key with
     | Some z -> z
     | None ->
       let part (ea : vedge) (eb : vedge) =
         if vedge_is_zero ea || vedge_is_zero eb then Cx.zero
         else begin
           let sub = inner_product_nodes p ea.vt eb.vt in
           Cx.mul (Cx.mul (Cx.conj (wcx ea.vw)) (wcx eb.vw)) sub
         end
       in
       let z = Cx.add (part a.v0 b.v0) (part a.v1 b.v1) in
       Cache.add cache key z;
       z)
  | _ -> invalid_arg "Vec.inner_product: operands of different dimension"

let inner_product p (a : vedge) (b : vedge) =
  if vedge_is_zero a || vedge_is_zero b then Cx.zero
  else begin
    let sub = inner_product_nodes p a.vt b.vt in
    Cx.mul (Cx.mul (Cx.conj (wcx a.vw)) (wcx b.vw)) sub
  end

let fidelity p a b =
  let ip = inner_product p a b in
  Cx.abs2 ip

let norm p a = Cx.abs (inner_product p a a) |> Float.sqrt

let normalize p (a : vedge) =
  let nrm = norm p a in
  if nrm <= Pkg.tol p then invalid_arg "Vec.normalize: zero vector"
  else Pkg.vscale p (Cx.of_float (1.0 /. nrm)) a

(* Because every node is normalized to unit weight norm, the probability mass
   flowing through any non-zero edge into a node is exactly the squared
   weight magnitude; the per-node outcome masses for qubit [q] can thus be
   accumulated top-down with memoization on the node alone. *)
let probabilities _p (a : vedge) q =
  let memo : (int, float * float) Hashtbl.t = Hashtbl.create 64 in
  let rec go = function
    | None -> invalid_arg "Vec.probabilities: qubit out of range"
    | Some n ->
      (match Hashtbl.find_opt memo n.vid with
       | Some r -> r
       | None ->
         let r =
           if n.vvar = q then begin
             let p0 = if vedge_is_zero n.v0 then 0.0 else Cx.abs2 (wcx n.v0.vw) in
             let p1 = if vedge_is_zero n.v1 then 0.0 else Cx.abs2 (wcx n.v1.vw) in
             (p0, p1)
           end
           else begin
             let part (e : vedge) =
               if vedge_is_zero e then (0.0, 0.0)
               else begin
                 let w2 = Cx.abs2 (wcx e.vw) in
                 let s0, s1 = go e.vt in
                 (w2 *. s0, w2 *. s1)
               end
             in
             let a0, a1 = part n.v0 and b0, b1 = part n.v1 in
             (a0 +. b0, a1 +. b1)
           end
         in
         Hashtbl.add memo n.vid r;
         r)
  in
  if vedge_is_zero a then (0.0, 0.0)
  else begin
    let w2 = Cx.abs2 (wcx a.vw) in
    let p0, p1 = go a.vt in
    (w2 *. p0, w2 *. p1)
  end

let project p (a : vedge) q outcome =
  let memo : (int, vedge) Hashtbl.t = Hashtbl.create 64 in
  let rec go = function
    | None -> invalid_arg "Vec.project: qubit out of range"
    | Some n ->
      (match Hashtbl.find_opt memo n.vid with
       | Some e -> e
       | None ->
         let e =
           if n.vvar = q then
             if outcome = 0 then Pkg.make_vnode p n.vvar n.v0 Pkg.vzero
             else Pkg.make_vnode p n.vvar Pkg.vzero n.v1
           else begin
             let sub (child : vedge) =
               if vedge_is_zero child then Pkg.vzero
               else Pkg.vscale p (wcx child.vw) (go child.vt)
             in
             Pkg.make_vnode p n.vvar (sub n.v0) (sub n.v1)
           end
         in
         Hashtbl.add memo n.vid e;
         e)
  in
  if vedge_is_zero a then invalid_arg "Vec.project: zero state"
  else begin
    let projected = Pkg.vscale p (wcx a.vw) (go a.vt) in
    let nrm = norm p projected in
    if nrm <= Pkg.tol p then invalid_arg "Vec.project: outcome has zero probability"
    else Pkg.vscale p (Cx.of_float (1.0 /. nrm)) projected
  end

let amplitude _p (a : vedge) ~n bits =
  let rec go (e : vedge) q acc =
    if vedge_is_zero e then Cx.zero
    else begin
      let acc = Cx.mul acc (wcx e.vw) in
      match e.vt with
      | None -> acc
      | Some node ->
        let next = if bits (q - 1) then node.v1 else node.v0 in
        go next (q - 1) acc
    end
  in
  go a n Cx.one

let to_array p (a : vedge) ~n =
  let dim = 1 lsl n in
  let out = Array.make dim Cx.zero in
  for idx = 0 to dim - 1 do
    out.(idx) <- amplitude p a ~n (fun q -> (idx lsr q) land 1 = 1)
  done;
  out

let of_array p v =
  let len = Array.length v in
  let rec levels k = if 1 lsl k >= len then k else levels (k + 1) in
  let n = levels 0 in
  if 1 lsl n <> len then invalid_arg "Vec.of_array: length not a power of two";
  let rec build lo len =
    if len = 1 then Pkg.vterminal p v.(lo)
    else begin
      let half = len / 2 in
      let e0 = build lo half and e1 = build (lo + half) half in
      (* the variable of a node over a slice of length [len] is log2 len - 1 *)
      let rec log2 x acc = if x = 1 then acc else log2 (x / 2) (acc + 1) in
      Pkg.make_vnode p (log2 len 0 - 1) e0 e1
    end
  in
  build 0 len

let nonzero_paths p (a : vedge) ~n ?(cutoff = 1e-12) ~limit () =
  ignore p;
  let results = ref [] in
  let count = ref 0 in
  let bits = Array.make n 0 in
  let rec go (e : vedge) q mass =
    if (not (vedge_is_zero e)) && mass > cutoff && !count < limit then begin
      let mass = mass *. Cx.abs2 (wcx e.vw) in
      if mass > cutoff then begin
        match e.vt with
        | None ->
          incr count;
          results := (Array.copy bits, mass) :: !results
        | Some node ->
          bits.(q - 1) <- 0;
          go node.v0 (q - 1) mass;
          bits.(q - 1) <- 1;
          go node.v1 (q - 1) mass
      end
    end
  in
  go a n 1.0;
  List.rev !results

let node_count (a : vedge) =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | None -> ()
    | Some n ->
      if not (Hashtbl.mem seen n.vid) then begin
        Hashtbl.add seen n.vid ();
        if not (vedge_is_zero n.v0) then go n.v0.vt;
        if not (vedge_is_zero n.v1) then go n.v1.vt
      end
  in
  if not (vedge_is_zero a) then go a.vt;
  Hashtbl.length seen
